package sched

import (
	"testing"
	"testing/quick"

	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func defaultCaps(t *testing.T) []ClusterCap {
	t.Helper()
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	return CapsOf(chip)
}

func TestCapsOf(t *testing.T) {
	caps := defaultCaps(t)
	if len(caps) != 2 {
		t.Fatalf("caps = %d", len(caps))
	}
	if caps[0].MaxFreqHz != 1800e6 || caps[0].Cores != 4 {
		t.Fatalf("little caps %+v", caps[0])
	}
	if caps[1].MaxFreqHz != 2300e6 || caps[1].Cores != 4 {
		t.Fatalf("big caps %+v", caps[1])
	}
}

func TestDecompose(t *testing.T) {
	p := workload.Period{
		Demands: []soc.Demand{
			{Cycles: 100, Parallelism: 2},
			{Cycles: 300, Parallelism: 3},
		},
	}
	tasks := Decompose(p)
	if len(tasks) != 5 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Cycles != 50 || tasks[2].Cycles != 100 {
		t.Fatalf("per-task cycles wrong: %+v", tasks)
	}
	// IDs stable and distinct per (cluster, index).
	seen := map[int]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Fatalf("duplicate task ID %d", task.ID)
		}
		seen[task.ID] = true
	}
}

func TestDecomposeSkipsIdle(t *testing.T) {
	p := workload.Period{Demands: []soc.Demand{{}, {Cycles: 0, Parallelism: 3}}}
	if got := Decompose(p); len(got) != 0 {
		t.Fatalf("idle decompose = %v", got)
	}
}

func TestHMPPlacesLightTasksLittle(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	// 10e6 cycles per 50 ms = 200 MHz required — far below 60% of an
	// 1800 MHz LITTLE core.
	tasks := []Task{{ID: 1, Cycles: 10e6}, {ID: 2, Cycles: 5e6}}
	d := h.Assign(tasks, caps, 0.05)
	if d[0].Parallelism != 2 || d[1].Parallelism != 0 {
		t.Fatalf("light tasks not on LITTLE: %+v", d)
	}
	if d[0].Cycles != 15e6 {
		t.Fatalf("cycles = %v", d[0].Cycles)
	}
}

func TestHMPPlacesHeavyTasksBig(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	// 80e6 cycles per 50 ms = 1.6 GHz required — ≥ 60% of 1.8 GHz.
	tasks := []Task{{ID: 1, Cycles: 80e6}}
	d := h.Assign(tasks, caps, 0.05)
	if d[1].Parallelism != 1 || d[0].Parallelism != 0 {
		t.Fatalf("heavy task not on big: %+v", d)
	}
}

func TestHMPHysteresis(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	heavy := []Task{{ID: 7, Cycles: 80e6}}
	_ = h.Assign(heavy, caps, 0.05) // migrates up

	// Mid-band load (between 25% and 60% of LITTLE max): stays on big.
	mid := []Task{{ID: 7, Cycles: 45e6}} // 0.9 GHz = 50% of LITTLE max
	d := h.Assign(mid, caps, 0.05)
	if d[1].Parallelism != 1 {
		t.Fatalf("hysteresis broken, task moved down: %+v", d)
	}

	// Below the down threshold: migrates back.
	light := []Task{{ID: 7, Cycles: 20e6}} // 400 MHz = 22% < 25%
	d = h.Assign(light, caps, 0.05)
	if d[0].Parallelism != 1 {
		t.Fatalf("down-migration broken: %+v", d)
	}

	// Mid-band again: now stays on LITTLE.
	d = h.Assign(mid, caps, 0.05)
	if d[0].Parallelism != 1 {
		t.Fatalf("hysteresis after down-migration broken: %+v", d)
	}
}

func TestHMPNewMidTasksStartLittle(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	d := h.Assign([]Task{{ID: 42, Cycles: 45e6}}, caps, 0.05)
	if d[0].Parallelism != 1 {
		t.Fatalf("new mid-load task not on LITTLE: %+v", d)
	}
}

func TestHMPSpillsWhenFull(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	// Six light tasks, four LITTLE cores: two must spill to big.
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{ID: i, Cycles: 5e6})
	}
	d := h.Assign(tasks, caps, 0.05)
	if d[0].Parallelism != 4 || d[1].Parallelism != 2 {
		t.Fatalf("spill wrong: %+v", d)
	}
}

func TestHMPConservesWork(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	// Little-origin tasks: 10e6, 90e6, 45e6, 2e6. The 90e6 task (100% of
	// a max-speed LITTLE core) migrates up and its cycle count converts
	// by the IPC ratio; work (cycles·IPC) is conserved.
	tasks := []Task{{ID: 1, Cycles: 10e6}, {ID: 2, Cycles: 90e6}, {ID: 3, Cycles: 45e6}, {ID: 4, Cycles: 2e6}}
	d := h.Assign(tasks, caps, 0.05)
	var work float64
	var par int
	for c, dem := range d {
		work += dem.Cycles * caps[c].IPC
		par += dem.Parallelism
	}
	wantWork := 147e6 * caps[0].IPC
	if diff := work - wantWork; diff > 1 || diff < -1 || par != 4 {
		t.Fatalf("work not conserved: %v (want %v), %d tasks", work, wantWork, par)
	}
	if d[0].Cycles != 57e6 {
		t.Fatalf("little cycles = %v, want 57e6", d[0].Cycles)
	}
	wantBig := 90e6 * caps[0].IPC / caps[1].IPC
	if diff := d[1].Cycles - wantBig; diff > 1 || diff < -1 {
		t.Fatalf("big cycles = %v, want %v", d[1].Cycles, wantBig)
	}
}

func TestHMPPanicsOnBadInput(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("3-cluster caps accepted")
			}
		}()
		h.Assign(nil, append(caps, caps[0]), 0.05)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dt=0 accepted")
			}
		}()
		h.Assign(nil, caps, 0)
	}()
}

func TestHMPResetClearsPlacement(t *testing.T) {
	h := NewHMP()
	caps := defaultCaps(t)
	_ = h.Assign([]Task{{ID: 7, Cycles: 80e6}}, caps, 0.05) // up
	h.Reset()
	// Mid-band after reset: treated as new → LITTLE.
	d := h.Assign([]Task{{ID: 7, Cycles: 45e6}}, caps, 0.05)
	if d[0].Parallelism != 1 {
		t.Fatalf("placement survived Reset: %+v", d)
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	r := NewRoundRobin()
	caps := defaultCaps(t)
	tasks := []Task{{ID: 1, Cycles: 10}, {ID: 2, Cycles: 10}, {ID: 3, Cycles: 10}, {ID: 4, Cycles: 10}}
	d := r.Assign(tasks, caps, 0.05)
	if d[0].Parallelism != 2 || d[1].Parallelism != 2 {
		t.Fatalf("round robin uneven: %+v", d)
	}
	r.Reset()
	d = r.Assign(tasks[:1], caps, 0.05)
	if d[0].Parallelism != 1 {
		t.Fatalf("reset did not restart rotation: %+v", d)
	}
}

func TestNewScenarioValidation(t *testing.T) {
	spec, _ := workload.ByName("video")
	inner, _ := workload.New(spec, 2, 1)
	caps := defaultCaps(t)
	if _, err := NewScenario(nil, NewHMP(), caps); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := NewScenario(inner, nil, caps); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewScenario(inner, NewHMP(), nil); err == nil {
		t.Error("nil caps accepted")
	}
	if _, err := NewScenario(inner, NewHMP(), []ClusterCap{{0, 4, 1}, {1e9, 4, 1.7}}); err == nil {
		t.Error("zero-frequency cap accepted")
	}
}

func TestScenarioThroughSimulation(t *testing.T) {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.ByName("gaming")
	inner, _ := workload.New(spec, 2, 1)
	scen, err := NewScenario(inner, NewHMP(), CapsOf(chip))
	if err != nil {
		t.Fatal(err)
	}
	if scen.Name() != "gaming+hmp" {
		t.Fatalf("Name = %q", scen.Name())
	}
	res, err := sim.Run(chip, scen, fixedGov{}, sim.Config{PeriodS: 0.05, DurationS: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS.Periods != 200 || res.QoS.TotalEnergyJ <= 0 {
		t.Fatalf("scheduled run degenerate: %+v", res.QoS)
	}
}

func TestHMPMoreEfficientThanRoundRobin(t *testing.T) {
	// Load-aware placement keeps light work on the efficient cluster;
	// blind alternation burns big-cluster energy on it. On the light
	// "mixed" workload HMP must finish with less energy per useful QoS.
	run := func(s Scheduler) (eq, q float64) {
		chip, _ := soc.NewChip(soc.DefaultChipSpec())
		spec, _ := workload.ByName("mixed")
		inner, _ := workload.New(spec, 2, 1)
		scen, err := NewScenario(inner, s, CapsOf(chip))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(chip, scen, fixedGov{}, sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoS.EnergyPerQoS, res.QoS.MeanQoS
	}
	hmpEQ, hmpQ := run(NewHMP())
	rrEQ, rrQ := run(NewRoundRobin())
	if hmpEQ >= rrEQ {
		t.Fatalf("HMP energy/QoS %v >= round-robin %v", hmpEQ, rrEQ)
	}
	if hmpQ < rrQ-0.05 {
		t.Fatalf("HMP gave up too much QoS: %v vs %v", hmpQ, rrQ)
	}
}

type fixedGov struct{}

func (fixedGov) Name() string { return "fixed-mid" }
func (fixedGov) Reset()       {}
func (fixedGov) Decide(obs []sim.Observation) []int {
	out := make([]int, len(obs))
	for i, o := range obs {
		out[i] = o.NumLevels / 2
	}
	return out
}

// Property: HMP conserves total work and task count for any task set
// (equal IPCs, so cycles are work).
func TestHMPConservationProperty(t *testing.T) {
	caps := []ClusterCap{{MaxFreqHz: 1.8e9, Cores: 4, IPC: 1}, {MaxFreqHz: 2.3e9, Cores: 4, IPC: 1}}
	f := func(raw []uint32) bool {
		h := NewHMP()
		var tasks []Task
		var want float64
		for i, v := range raw {
			c := float64(v % 200e6)
			tasks = append(tasks, Task{ID: i, Cycles: c})
			want += c
		}
		d := h.Assign(tasks, caps, 0.05)
		var got float64
		par := 0
		for _, dem := range d {
			got += dem.Cycles
			par += dem.Parallelism
		}
		return got == want && par == len(tasks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
