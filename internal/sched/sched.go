// Package sched models the big.LITTLE task scheduler that sits between
// the applications and the clusters.
//
// The generator scenarios in internal/workload hardwire which cluster each
// demand stream runs on. Real systems don't: an HMP/EAS-style scheduler
// watches per-task load and migrates tasks between the LITTLE and big
// clusters with hysteresis. This package reproduces that layer — periods
// are decomposed into per-thread tasks, the scheduler places each task,
// and the result is fed to the chip as per-cluster demands. The governor
// under test then manages frequencies on top of scheduler-produced load,
// exactly as on a device.
package sched

import (
	"fmt"

	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// Task is one runnable thread's demand for a control period.
type Task struct {
	// ID is stable across periods for threads of the same stream index,
	// so migration hysteresis has an identity to attach to.
	ID int
	// Cycles this task wants to execute this period, expressed in the
	// cycles of its origin cluster.
	Cycles float64
	// Origin is the cluster the demand was calibrated for; migrating the
	// task converts its cycle count by the clusters' IPC ratio.
	Origin int
}

// Decompose splits a workload period's per-cluster demands into per-thread
// tasks: each cluster's cycle demand divides evenly over its parallelism.
// Task IDs encode (origin cluster, thread index) so they are stable.
func Decompose(p workload.Period) []Task {
	var tasks []Task
	for c, d := range p.Demands {
		if d.Parallelism == 0 || d.Cycles == 0 {
			continue
		}
		per := d.Cycles / float64(d.Parallelism)
		for i := 0; i < d.Parallelism; i++ {
			tasks = append(tasks, Task{ID: c*64 + i, Cycles: per, Origin: c})
		}
	}
	return tasks
}

// ClusterCap describes one cluster's placement-relevant capacity.
type ClusterCap struct {
	MaxFreqHz float64
	Cores     int
	// IPC is the cluster's relative work per cycle (see soc.ClusterSpec).
	IPC float64
}

// CapsOf extracts placement capacities from a chip.
func CapsOf(chip *soc.Chip) []ClusterCap {
	caps := make([]ClusterCap, chip.NumClusters())
	for i := range caps {
		cl := chip.Cluster(i)
		caps[i] = ClusterCap{
			MaxFreqHz: cl.OPPAt(cl.NumLevels() - 1).FreqHz,
			Cores:     cl.Spec().NumCores,
			IPC:       cl.Spec().IPC,
		}
	}
	return caps
}

// convert re-expresses a task's cycle demand in the cycles of the cluster
// it is placed on: work is cycles·IPC_origin, so cycles on the target are
// work / IPC_target.
func convert(t Task, caps []ClusterCap, target int) float64 {
	if t.Origin == target || len(caps) == 0 {
		return t.Cycles
	}
	return t.Cycles * caps[t.Origin].IPC / caps[target].IPC
}

// Scheduler places tasks onto clusters for one period.
type Scheduler interface {
	Name() string
	// Assign returns one demand per cluster in caps. dtS is the period.
	Assign(tasks []Task, caps []ClusterCap, dtS float64) []soc.Demand
	// Reset clears migration state.
	Reset()
}

// HMP is the heterogeneous multi-processing scheduler: a task migrates up
// to the big cluster when its required speed exceeds UpRatio of a LITTLE
// core at maximum frequency, and back down when it falls below DownRatio —
// the classic up/down-migration thresholds with hysteresis. The defaults
// (60/25) migrate tasks up well before they would saturate a LITTLE core,
// leaving DVFS headroom, which is how shipping HMP tunings behave. Within a
// cluster, tasks pack onto cores up to the core count; overflow tasks of
// the LITTLE cluster spill upward (and vice versa when big is full).
//
// HMP assumes caps[0] is the LITTLE cluster and caps[1] the big cluster.
type HMP struct {
	UpRatio   float64 // default 0.60
	DownRatio float64 // default 0.25
	placement map[int]int
}

// NewHMP returns an HMP scheduler with 60/25 thresholds.
func NewHMP() *HMP {
	return &HMP{UpRatio: 0.60, DownRatio: 0.25, placement: map[int]int{}}
}

// Name implements Scheduler.
func (*HMP) Name() string { return "hmp" }

// Reset implements Scheduler.
func (h *HMP) Reset() { h.placement = map[int]int{} }

// Assign implements Scheduler.
func (h *HMP) Assign(tasks []Task, caps []ClusterCap, dtS float64) []soc.Demand {
	if len(caps) != 2 {
		panic(fmt.Sprintf("sched: HMP requires exactly 2 clusters, got %d", len(caps)))
	}
	if dtS <= 0 {
		panic("sched: non-positive period")
	}
	littleCoreCap := caps[0].MaxFreqHz * dtS

	demands := make([]soc.Demand, 2)
	slots := []int{caps[0].Cores, caps[1].Cores}

	place := func(t Task, cluster int) {
		// Spill to the other cluster when full; if both are full, keep
		// the preferred cluster (the demand just oversubscribes it).
		if slots[cluster] == 0 && slots[1-cluster] > 0 {
			cluster = 1 - cluster
		}
		if slots[cluster] > 0 {
			slots[cluster]--
		}
		demands[cluster].Cycles += convert(t, caps, cluster)
		demands[cluster].Parallelism++
		h.placement[t.ID] = cluster
	}

	for _, t := range tasks {
		// Fraction of a max-speed LITTLE core this task needs.
		required := convert(t, caps, 0) / littleCoreCap
		prev, seen := h.placement[t.ID]
		var want int
		switch {
		case required >= h.UpRatio:
			want = 1
		case required <= h.DownRatio:
			want = 0
		case seen:
			want = prev // hysteresis band: stay put
		default:
			want = 0 // new mid-load tasks start small
		}
		place(t, want)
	}
	return demands
}

// RoundRobin is the naive baseline scheduler: tasks alternate clusters
// with no load awareness. It exists to show in the ablation what HMP's
// placement buys.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the baseline scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "roundrobin" }

// Reset implements Scheduler.
func (r *RoundRobin) Reset() { r.next = 0 }

// Assign implements Scheduler.
func (r *RoundRobin) Assign(tasks []Task, caps []ClusterCap, dtS float64) []soc.Demand {
	if dtS <= 0 {
		panic("sched: non-positive period")
	}
	demands := make([]soc.Demand, len(caps))
	for _, t := range tasks {
		c := r.next % len(caps)
		r.next++
		demands[c].Cycles += convert(t, caps, c)
		demands[c].Parallelism++
	}
	return demands
}

// Scenario wraps a workload scenario so that its demands flow through a
// scheduler before reaching the chip: decompose into tasks, place, emit.
type Scenario struct {
	inner workload.Scenario
	sched Scheduler
	caps  []ClusterCap
}

// NewScenario builds the scheduler-mediated scenario. caps must describe
// the chip the simulation will run on.
func NewScenario(inner workload.Scenario, s Scheduler, caps []ClusterCap) (*Scenario, error) {
	if inner == nil || s == nil {
		return nil, fmt.Errorf("sched: nil scenario or scheduler")
	}
	if len(caps) == 0 {
		return nil, fmt.Errorf("sched: no cluster capacities")
	}
	for i, c := range caps {
		if c.MaxFreqHz <= 0 || c.Cores <= 0 {
			return nil, fmt.Errorf("sched: invalid capacity for cluster %d: %+v", i, c)
		}
	}
	return &Scenario{inner: inner, sched: s, caps: caps}, nil
}

// Name implements workload.Scenario.
func (s *Scenario) Name() string { return s.inner.Name() + "+" + s.sched.Name() }

// Reset implements workload.Scenario.
func (s *Scenario) Reset(seed uint64) {
	s.inner.Reset(seed)
	s.sched.Reset()
}

// Next implements workload.Scenario.
func (s *Scenario) Next(dtS float64) workload.Period {
	p := s.inner.Next(dtS)
	tasks := Decompose(p)
	return workload.Period{
		Demands:  s.sched.Assign(tasks, s.caps, dtS),
		Critical: p.Critical,
		Phase:    p.Phase,
	}
}
