package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rlpm/internal/leaktest"
)

// echoServer accepts connections and echoes bytes until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}
}

// TestZeroConfigByteTransparent pins the package's core discipline: with
// all rates zero, the proxied stream is bit-identical to a direct
// connection and no fault counters move.
func TestZeroConfigByteTransparent(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := make([]byte, 64<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	go func() {
		c.Write(msg)
	}()
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero-rate proxy altered the byte stream")
	}
	st := p.Stats()
	if st.Drops+st.Stalls+st.Partials+st.Corrupts+st.Delays != 0 {
		t.Fatalf("zero-rate proxy injected faults: %+v", st)
	}
	if st.BytesUp != uint64(len(msg)) || st.BytesDown != uint64(len(msg)) {
		t.Fatalf("byte accounting %+v, want %d each way", st, len(msg))
	}
}

// TestDropSeversConnection proves a certain drop kills the connection on
// the first forwarded chunk and is counted.
func TestDropSeversConnection(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{Seed: 2, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := c.Read(one[:]); err == nil {
		t.Fatal("read succeeded through a DropRate=1 proxy")
	}
	if st := p.Stats(); st.Drops == 0 {
		t.Fatalf("no drop counted: %+v", st)
	}
}

// TestCorruptFlipsExactlyOneBit proves corruption perturbs the stream
// without changing its length, and is deterministic for a given seed.
func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()

	run := func(seed uint64) []byte {
		p, err := NewProxy(addr, Config{Seed: seed, CorruptRate: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		msg := []byte("the quick brown fox jumps over the lazy dog")
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatalf("read back: %v", err)
		}
		return got
	}

	msg := []byte("the quick brown fox jumps over the lazy dog")
	got := run(7)
	if bytes.Equal(got, msg) {
		t.Fatal("CorruptRate=1 proxy left the stream untouched")
	}
	diffBits := 0
	for i := range msg {
		for b := 0; b < 8; b++ {
			if (got[i]^msg[i])>>b&1 == 1 {
				diffBits++
			}
		}
	}
	// One chunk each way, one bit flipped per corrupt site: at most 2.
	if diffBits == 0 || diffBits > 2 {
		t.Fatalf("%d bits flipped, want 1 or 2", diffBits)
	}
}

// TestProxyCloseSeversActiveConns proves Close unblocks in-flight reads
// and reaps all pump goroutines (the deferred leak check enforces it).
func TestProxyCloseSeversActiveConns(t *testing.T) {
	defer leaktest.Check(t)()
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("connection survived proxy close")
	}
}

// TestRoundTripperDrops proves the HTTP fault sites return typed
// ErrInjected failures and that the after-response site consumes the
// server's execution (the dedup-forcing shape).
func TestRoundTripperDrops(t *testing.T) {
	defer leaktest.Check(t)()
	var served int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Write([]byte("ok"))
	}))
	defer hs.Close()

	rt := NewRoundTripper(hs.Client().Transport, Config{Seed: 4, DropRate: 1})
	client := &http.Client{Transport: rt}
	_, err := client.Get(hs.URL)
	if err == nil {
		t.Fatal("DropRate=1 round-tripper let a request through")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("drop error %v does not chain to ErrInjected", err)
	}
	if st := rt.Stats(); st.Drops == 0 {
		t.Fatalf("no drop counted: %+v", st)
	}

	// Zero config is transparent: request served, response intact.
	rt0 := NewRoundTripper(hs.Client().Transport, Config{Seed: 4})
	client0 := &http.Client{Transport: rt0}
	resp, err := client0.Get(hs.URL)
	if err != nil {
		t.Fatalf("zero-config round trip: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("zero-config body %q", body)
	}
	if st := rt0.Stats(); st.Drops+st.Stalls+st.Delays != 0 {
		t.Fatalf("zero-config round-tripper injected faults: %+v", st)
	}
	if served == 0 {
		t.Fatal("server never executed a request")
	}
}
