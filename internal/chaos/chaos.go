// Package chaos is the deterministic network/process fault-injection
// layer for the serving path.
//
// internal/fault made the hardware-policy path breakable on demand; this
// package does the same for the network between serving clients and
// servers. A seeded TCP proxy sits between a client and a live server
// and, per forwarded chunk, may sever the connection, stall, deliver a
// partial write before severing, flip a payload bit, or inject a latency
// spike. An HTTP RoundTripper applies the analogous faults to the
// JSON path — including the nastiest one, "request executed but the
// response was lost", which is what forces retries to be deduplicated.
//
// The package follows internal/fault's discipline: every fault site is
// driven by its own internal/rng stream derived from Config.Seed, and a
// zero rate draws no randomness at its site. An all-zero Config is
// byte-transparent — the proxied stream is bit-identical to a direct
// connection (the tests pin this), so resilience machinery can stay wired
// in production paths at zero cost.
//
// Fault *schedules* are deterministic per (seed, connection, direction,
// chunk index); wall-clock interleaving of chunks is not, so end-to-end
// determinism is asserted at the decision level by the chaos harness
// (decisions byte-identical to a fault-free oracle), not at the packet
// level.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/rng"
)

// ErrInjected is the sentinel wrapped by every failure this package
// fabricates, so tests can tell injected faults from genuine ones.
var ErrInjected = errors.New("chaos: injected fault")

// Config sets the per-chunk fault rates for a proxy or round-tripper.
// All rates are probabilities in [0,1]; a zero rate disables its site
// entirely (no RNG draws). The zero value is byte-transparent.
type Config struct {
	// Seed drives all fault streams; each connection direction gets its
	// own rng stream so schedules are reproducible per connection.
	Seed uint64

	// DropRate is the per-chunk probability the connection is severed
	// before the chunk is forwarded. On the HTTP round-tripper it is
	// split into a before-send and an after-response site so both
	// "request lost" and "response lost" shapes occur.
	DropRate float64
	// StallRate is the per-chunk probability the pump pauses StallFor
	// before forwarding — long enough to trip client deadlines.
	StallRate float64
	// StallFor is the stall duration; defaults to 50ms.
	StallFor time.Duration
	// PartialWriteRate is the per-chunk probability only a strict prefix
	// of the chunk is forwarded before the connection is severed.
	PartialWriteRate float64
	// CorruptRate is the per-chunk probability one uniformly chosen bit
	// of the chunk is flipped before forwarding (the wire trailer CRC
	// must catch it).
	CorruptRate float64
	// LatencyRate is the per-chunk probability of an added LatencyFor
	// delay before forwarding.
	LatencyRate float64
	// LatencyFor is the injected latency; defaults to 5ms.
	LatencyFor time.Duration
}

func (c Config) withDefaults() Config {
	if c.StallFor <= 0 {
		c.StallFor = 50 * time.Millisecond
	}
	if c.LatencyFor <= 0 {
		c.LatencyFor = 5 * time.Millisecond
	}
	return c
}

// Stats counts the faults a proxy or round-tripper has injected.
type Stats struct {
	Conns     uint64 // connections accepted (proxy) / requests seen (RT)
	Drops     uint64 // connections severed / requests failed
	Stalls    uint64
	Partials  uint64
	Corrupts  uint64
	Delays    uint64
	BytesUp   uint64 // client→server bytes forwarded
	BytesDown uint64 // server→client bytes forwarded
}

type stats struct {
	conns, drops, stalls, partials, corrupts, delays atomic.Uint64
	bytesUp, bytesDown                               atomic.Uint64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Conns:     s.conns.Load(),
		Drops:     s.drops.Load(),
		Stalls:    s.stalls.Load(),
		Partials:  s.partials.Load(),
		Corrupts:  s.corrupts.Load(),
		Delays:    s.delays.Load(),
		BytesUp:   s.bytesUp.Load(),
		BytesDown: s.bytesDown.Load(),
	}
}

// Proxy is a fault-injecting TCP proxy. It listens on a loopback port and
// forwards each accepted connection to the target address, running the
// fault schedule independently on each direction of each connection.
// Severing one direction severs the whole connection — half-open TCP is
// not a shape the serving protocol distinguishes.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener
	st     stats

	mu     sync.Mutex
	conns  map[*proxyConn]struct{}
	connID uint64
	closed bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy on an ephemeral loopback port forwarding to
// target. Close releases it.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		cfg:    cfg.withDefaults(),
		target: target,
		ln:     ln,
		conns:  make(map[*proxyConn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() Stats { return p.st.snapshot() }

// Close stops accepting, severs every active connection, and waits for
// the pump goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.sever()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.st.conns.Add(1)
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			// Target down (e.g. mid-restart): the client sees exactly
			// what it would see dialing a dead server.
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		id := p.connID
		p.connID++
		pc := &proxyConn{client: client, server: server}
		p.conns[pc] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(2)
		go p.pump(pc, id, 0)
		go p.pump(pc, id, 1)
	}
}

type proxyConn struct {
	client, server net.Conn
	once           sync.Once
}

// sever closes both sides exactly once; either pump or Proxy.Close may
// trigger it.
func (c *proxyConn) sever() {
	c.once.Do(func() {
		c.client.Close()
		c.server.Close()
	})
}

// pump forwards one direction of a connection, applying the fault
// schedule per chunk. dir 0 is client→server, dir 1 is server→client.
func (p *Proxy) pump(pc *proxyConn, connID uint64, dir int) {
	defer p.wg.Done()
	defer func() {
		pc.sever()
		p.mu.Lock()
		delete(p.conns, pc)
		p.mu.Unlock()
	}()

	src, dst := pc.client, pc.server
	bytesFwd := &p.st.bytesUp
	if dir == 1 {
		src, dst = pc.server, pc.client
		bytesFwd = &p.st.bytesDown
	}
	r := rng.NewStream(p.cfg.Seed, connID*2+uint64(dir))
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if !p.forward(dst, chunk, r, bytesFwd) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// forward applies the fault schedule to one chunk and writes it to dst.
// It reports false when the connection was severed. Draw order is fixed —
// drop, stall, partial, corrupt, latency — and a zero rate draws nothing,
// so enabling one site never perturbs another site's schedule.
func (p *Proxy) forward(dst net.Conn, chunk []byte, r *rng.Rand, bytesFwd *atomic.Uint64) bool {
	cfg := &p.cfg
	if cfg.DropRate > 0 && r.Float64() < cfg.DropRate {
		p.st.drops.Add(1)
		return false
	}
	if cfg.StallRate > 0 && r.Float64() < cfg.StallRate {
		p.st.stalls.Add(1)
		time.Sleep(cfg.StallFor)
	}
	if cfg.PartialWriteRate > 0 && len(chunk) > 1 && r.Float64() < cfg.PartialWriteRate {
		p.st.partials.Add(1)
		prefix := chunk[:1+r.Intn(len(chunk)-1)]
		if n, err := dst.Write(prefix); err == nil {
			bytesFwd.Add(uint64(n))
		}
		return false
	}
	if cfg.CorruptRate > 0 && r.Float64() < cfg.CorruptRate {
		p.st.corrupts.Add(1)
		bit := r.Intn(len(chunk) * 8)
		chunk[bit/8] ^= 1 << (bit % 8)
	}
	if cfg.LatencyRate > 0 && r.Float64() < cfg.LatencyRate {
		p.st.delays.Add(1)
		time.Sleep(cfg.LatencyFor)
	}
	n, err := dst.Write(chunk)
	bytesFwd.Add(uint64(n))
	return err == nil
}

// RoundTripper wraps an http.RoundTripper with seeded fault injection.
// DropRate is applied at two sites: before the request is sent (request
// lost — server never saw it) and after the response arrives (response
// lost — the server executed the request, so a blind retry would
// duplicate it; this is the case that forces request deduplication).
type RoundTripper struct {
	base http.RoundTripper
	cfg  Config
	st   stats

	mu sync.Mutex
	r  *rng.Rand
}

// NewRoundTripper wraps base (http.DefaultTransport when nil) with cfg's
// fault schedule.
func NewRoundTripper(base http.RoundTripper, cfg Config) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{base: base, cfg: cfg.withDefaults(), r: rng.New(cfg.Seed)}
}

// Stats returns a snapshot of the injected-fault counters.
func (t *RoundTripper) Stats() Stats { return t.st.snapshot() }

// draw runs one rate site under the lock; a zero rate draws nothing.
func (t *RoundTripper) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	t.mu.Lock()
	hit := t.r.Float64() < rate
	t.mu.Unlock()
	return hit
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.st.conns.Add(1)
	if t.draw(t.cfg.DropRate) {
		t.st.drops.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: request dropped before send", ErrInjected)
	}
	if t.draw(t.cfg.LatencyRate) {
		t.st.delays.Add(1)
		time.Sleep(t.cfg.LatencyFor)
	}
	if t.draw(t.cfg.StallRate) {
		t.st.stalls.Add(1)
		time.Sleep(t.cfg.StallFor)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.draw(t.cfg.DropRate) {
		t.st.drops.Add(1)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped after server execution", ErrInjected)
	}
	return resp, nil
}
