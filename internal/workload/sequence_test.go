package workload

import (
	"testing"
)

func TestNewSequenceValidation(t *testing.T) {
	if _, err := NewSequence("", []Segment{{IdleSpec(), 10}}, 2, 1); err == nil {
		t.Error("no name accepted")
	}
	if _, err := NewSequence("x", nil, 2, 1); err == nil {
		t.Error("no segments accepted")
	}
	if _, err := NewSequence("x", []Segment{{IdleSpec(), 0}}, 2, 1); err == nil {
		t.Error("zero duration accepted")
	}
	bad := IdleSpec()
	bad.Initial = "ghost"
	if _, err := NewSequence("x", []Segment{{bad, 10}}, 2, 1); err == nil {
		t.Error("invalid segment spec accepted")
	}
	if _, err := NewSequence("x", []Segment{{IdleSpec(), 10}}, 4, 1); err == nil {
		t.Error("bad cluster count accepted")
	}
}

func TestDaySession(t *testing.T) {
	s, err := DaySession(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "day" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Segments() != "idle→browsing→video→gaming→camera→mixed" {
		t.Fatalf("Segments = %q", s.Segments())
	}
	if s.Current() != "idle" {
		t.Fatalf("Current = %q", s.Current())
	}
}

func TestSequenceAdvancesThroughSegments(t *testing.T) {
	s, err := NewSequence("two", []Segment{{IdleSpec(), 1}, {VideoSpec(), 1}}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	// 1 s per segment at 50 ms = 20 periods each; 50 periods covers both
	// plus the loop back to the first.
	for i := 0; i < 50; i++ {
		seen[s.Current()] = true
		s.Next(0.05)
	}
	if !seen["idle"] || !seen["video"] {
		t.Fatalf("segments visited: %v", seen)
	}
	// After 40 periods it loops back to idle.
	s.Reset(3)
	for i := 0; i < 40; i++ {
		s.Next(0.05)
	}
	if s.Current() != "idle" {
		t.Fatalf("did not loop: current = %q", s.Current())
	}
}

func TestSequenceDeterministicAcrossReset(t *testing.T) {
	s, _ := NewSequence("two", []Segment{{BrowsingSpec(), 2}, {GamingSpec(), 2}}, 2, 7)
	var first []float64
	for i := 0; i < 100; i++ {
		first = append(first, s.Next(0.05).Demands[1].Cycles)
	}
	s.Reset(7)
	for i := 0; i < 100; i++ {
		if got := s.Next(0.05).Demands[1].Cycles; got != first[i] {
			t.Fatalf("period %d diverged after Reset", i)
		}
	}
}

func TestSequenceSegmentsHaveIndependentStreams(t *testing.T) {
	// Two segments of the same spec must not replay identical demands
	// (they are seeded per segment index).
	s, _ := NewSequence("twin", []Segment{{GamingSpec(), 1}, {GamingSpec(), 1}}, 2, 5)
	var a, b []float64
	for i := 0; i < 20; i++ {
		a = append(a, s.Next(0.05).Demands[1].Cycles)
	}
	for i := 0; i < 20; i++ {
		b = append(b, s.Next(0.05).Demands[1].Cycles)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("twin segments replayed %d/20 identical demands", same)
	}
}

func TestSequencePanicsOnBadDt(t *testing.T) {
	s, _ := DaySession(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dt=0 did not panic")
		}
	}()
	s.Next(0)
}
