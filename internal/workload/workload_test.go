package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range AllSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	base := func() Spec { return GamingSpec() }
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"unknown initial", func(s *Spec) { s.Initial = "nope" }},
		{"unnamed phase", func(s *Spec) { s.Phases[0].Name = "" }},
		{"dup phase", func(s *Spec) { s.Phases[1].Name = s.Phases[0].Name }},
		{"zero duration", func(s *Spec) { s.Phases[0].MeanDurS = 0 }},
		{"neg mean", func(s *Spec) { s.Phases[0].Little.MeanCPS = -1 }},
		{"bad burst prob", func(s *Spec) { s.Phases[0].Big.BurstProb = 2 }},
		{"cycles no parallelism", func(s *Spec) {
			s.Phases[0].Little.MeanCPS = 1e9
			s.Phases[0].Little.Parallelism = 0
		}},
		{"unknown successor", func(s *Spec) { s.Phases[0].Next = map[string]float64{"ghost": 1} }},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("gaming")
	if err != nil || s.Name != "gaming" {
		t.Fatalf("ByName(gaming) = %v, %v", s.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestNamesMatchesSpecs(t *testing.T) {
	names := Names()
	specs := AllSpecs()
	if len(names) != len(specs) {
		t.Fatalf("%d names vs %d specs", len(names), len(specs))
	}
	if len(names) != 7 {
		t.Fatalf("expected the paper's 7 scenarios, got %d", len(names))
	}
	for i := range names {
		if names[i] != specs[i].Name {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestNewRejectsBadClusterCount(t *testing.T) {
	for _, n := range []int{0, 4, -1} {
		if _, err := New(VideoSpec(), n, 1); err == nil {
			t.Errorf("clusters=%d accepted", n)
		}
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	s := VideoSpec()
	s.Initial = "ghost"
	if _, err := New(s, 2, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(GamingSpec(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(GamingSpec(), 2, 42)
	for i := 0; i < 2000; i++ {
		pa, pb := a.Next(0.05), b.Next(0.05)
		if pa.Phase != pb.Phase || pa.Critical != pb.Critical {
			t.Fatalf("period %d metadata diverged", i)
		}
		for c := range pa.Demands {
			if pa.Demands[c] != pb.Demands[c] {
				t.Fatalf("period %d cluster %d demand diverged", i, c)
			}
		}
	}
}

func TestResetReproduces(t *testing.T) {
	g, _ := New(BrowsingSpec(), 2, 7)
	var first []float64
	for i := 0; i < 500; i++ {
		first = append(first, g.Next(0.05).Demands[1].Cycles)
	}
	g.Reset(7)
	for i := 0; i < 500; i++ {
		if got := g.Next(0.05).Demands[1].Cycles; got != first[i] {
			t.Fatalf("period %d after Reset: %v != %v", i, got, first[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := New(GamingSpec(), 2, 1)
	b, _ := New(GamingSpec(), 2, 2)
	identical := 0
	for i := 0; i < 200; i++ {
		if a.Next(0.05).Demands[1].Cycles == b.Next(0.05).Demands[1].Cycles {
			identical++
		}
	}
	if identical > 100 {
		t.Fatalf("different seeds produced %d/200 identical draws", identical)
	}
}

func TestMergedClustersConserveDemand(t *testing.T) {
	// With the same seed, the 1-cluster view must carry the sum of the
	// 2-cluster demands period by period.
	two, _ := New(CameraSpec(), 2, 99)
	one, _ := New(CameraSpec(), 1, 99)
	for i := 0; i < 1000; i++ {
		p2 := two.Next(0.05)
		p1 := one.Next(0.05)
		sum := p2.Demands[0].Cycles + p2.Demands[1].Cycles
		if math.Abs(p1.Demands[0].Cycles-sum) > 1e-6 {
			t.Fatalf("period %d: merged %v != sum %v", i, p1.Demands[0].Cycles, sum)
		}
		par := p2.Demands[0].Parallelism + p2.Demands[1].Parallelism
		if p1.Demands[0].Parallelism != par {
			t.Fatalf("period %d: merged parallelism %d != %d", i, p1.Demands[0].Parallelism, par)
		}
	}
}

func TestAllPhasesReachable(t *testing.T) {
	// Long runs must visit every phase of every scenario.
	for _, spec := range AllSpecs() {
		g, err := New(spec, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for i := 0; i < 60000; i++ { // 50 simulated minutes
			seen[g.Next(0.05).Phase] = true
		}
		for _, p := range spec.Phases {
			if !seen[p.Name] {
				t.Errorf("%s: phase %s never reached", spec.Name, p.Name)
			}
		}
	}
}

func TestDemandMeansApproximateSpec(t *testing.T) {
	// Per-phase sample means should track the spec (within 15% over a
	// long run); guards the log-normal parameterization.
	spec := GamingSpec()
	g, _ := New(spec, 2, 11)
	sums := map[string][2]float64{}
	counts := map[string]int{}
	const dt = 0.05
	for i := 0; i < 200000; i++ {
		p := g.Next(dt)
		s := sums[p.Phase]
		s[0] += p.Demands[0].Cycles
		s[1] += p.Demands[1].Cycles
		sums[p.Phase] = s
		counts[p.Phase]++
	}
	for _, ph := range spec.Phases {
		n := counts[ph.Name]
		if n < 1000 {
			continue // not enough visits for a tight mean
		}
		meanLittle := sums[ph.Name][0] / float64(n) / dt
		// Burst inflates the mean by (1 + p*(mult-1)).
		want := ph.Little.MeanCPS * (1 + ph.Little.BurstProb*(ph.Little.BurstMult-1))
		if want > 0 && math.Abs(meanLittle-want)/want > 0.15 {
			t.Errorf("%s little mean %.3g, want %.3g", ph.Name, meanLittle, want)
		}
	}
}

func TestCriticalPhasesEmitCriticalPeriods(t *testing.T) {
	g, _ := New(VideoSpec(), 2, 3)
	sawCritical := false
	for i := 0; i < 1000; i++ {
		p := g.Next(0.05)
		if p.Phase == "play" && !p.Critical {
			t.Fatal("play phase not critical")
		}
		sawCritical = sawCritical || p.Critical
	}
	if !sawCritical {
		t.Fatal("no critical periods in video scenario")
	}
}

func TestNextPanicsOnBadDt(t *testing.T) {
	g, _ := New(IdleSpec(), 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dt=0 did not panic")
		}
	}()
	g.Next(0)
}

// Property: demands are always non-negative with parallelism implied by
// cycles, for every scenario and seed.
func TestDemandInvariantProperty(t *testing.T) {
	specs := AllSpecs()
	f := func(seed uint64, which uint8, steps uint8) bool {
		spec := specs[int(which)%len(specs)]
		g, err := New(spec, 2, seed)
		if err != nil {
			return false
		}
		for i := 0; i < int(steps)+1; i++ {
			p := g.Next(0.05)
			if len(p.Demands) != 2 {
				return false
			}
			for _, d := range p.Demands {
				if d.Cycles < 0 || d.Parallelism < 0 {
					return false
				}
				if d.Cycles > 0 && d.Parallelism == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioDemandWithinChipReach(t *testing.T) {
	// Mean demand of every phase must be below the chip's max capacity —
	// otherwise no governor could ever meet QoS and the comparison is
	// degenerate.
	const littleMax = 1.8e9 * 4
	const bigMax = 2.3e9 * 4
	for _, spec := range AllSpecs() {
		for _, ph := range spec.Phases {
			if ph.Little.MeanCPS >= littleMax {
				t.Errorf("%s/%s little demand %g exceeds capacity", spec.Name, ph.Name, ph.Little.MeanCPS)
			}
			if ph.Big.MeanCPS >= bigMax {
				t.Errorf("%s/%s big demand %g exceeds capacity", spec.Name, ph.Name, ph.Big.MeanCPS)
			}
		}
	}
}

func BenchmarkNext(b *testing.B) {
	g, _ := New(GamingSpec(), 2, 1)
	for i := 0; i < b.N; i++ {
		g.Next(0.05)
	}
}

func TestThreeClusterScenarioEmitsGPUDemand(t *testing.T) {
	g, err := New(GamingSpec(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sawGPU := false
	for i := 0; i < 2000; i++ {
		p := g.Next(0.05)
		if len(p.Demands) != 3 {
			t.Fatalf("period %d has %d demands", i, len(p.Demands))
		}
		if p.Demands[2].Cycles > 0 {
			sawGPU = true
			if p.Demands[2].Parallelism == 0 {
				t.Fatal("GPU demand without shader threads")
			}
		}
	}
	if !sawGPU {
		t.Fatal("gaming never produced GPU work")
	}
}

func TestTwoClusterViewUnchangedByGPUSpec(t *testing.T) {
	// The GPU field must not perturb the CPU demand streams of 1- and
	// 2-cluster scenarios: same seed, same CPU draws regardless.
	withGPU := GamingSpec()
	without := GamingSpec()
	for i := range without.Phases {
		without.Phases[i].GPU = DemandSpec{}
	}
	a, _ := New(withGPU, 2, 9)
	b, _ := New(without, 2, 9)
	for i := 0; i < 1000; i++ {
		pa, pb := a.Next(0.05), b.Next(0.05)
		if pa.Demands[0] != pb.Demands[0] || pa.Demands[1] != pb.Demands[1] {
			t.Fatalf("period %d CPU demands differ with/without GPU spec", i)
		}
	}
}

func TestGPUDemandWithinGPUCapacity(t *testing.T) {
	// GPU phase demands must be below the GPU's max capacity
	// (850 MHz × 8 cores = 6.8 Gcycle/s) so the comparison is feasible.
	const gpuMax = 850e6 * 8
	for _, spec := range AllSpecs() {
		for _, ph := range spec.Phases {
			if ph.GPU.MeanCPS >= gpuMax {
				t.Errorf("%s/%s GPU demand %g exceeds capacity", spec.Name, ph.Name, ph.GPU.MeanCPS)
			}
		}
	}
}
