package workload

import (
	"fmt"
	"strings"
)

// Segment is one leg of a Sequence: a scenario played for a fixed wall
// time.
type Segment struct {
	Spec      Spec
	DurationS float64
}

// Sequence chains scenarios back to back — a user session ("check the
// phone, browse, watch a video, play a game") rather than a single app.
// It is the stress test for online adaptation: phase statistics shift at
// every boundary. The sequence loops when it reaches the end.
type Sequence struct {
	name     string
	segments []Segment
	scens    []Scenario
	clusters int
	seed     uint64

	idx     int
	remainS float64
}

// NewSequence builds a looping session from segments.
func NewSequence(name string, segments []Segment, clusters int, seed uint64) (*Sequence, error) {
	if name == "" {
		return nil, fmt.Errorf("workload: sequence has no name")
	}
	if len(segments) == 0 {
		return nil, fmt.Errorf("workload: sequence %s has no segments", name)
	}
	s := &Sequence{name: name, segments: segments, clusters: clusters, seed: seed}
	for i, seg := range segments {
		if seg.DurationS <= 0 {
			return nil, fmt.Errorf("workload: sequence %s segment %d has non-positive duration", name, i)
		}
		scen, err := New(seg.Spec, clusters, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, fmt.Errorf("workload: sequence %s segment %d: %w", name, i, err)
		}
		s.scens = append(s.scens, scen)
	}
	s.Reset(seed)
	return s, nil
}

// DaySession returns the default composite session: idle → browsing →
// video → gaming → camera → mixed, a compressed slice of a day of use.
func DaySession(clusters int, seed uint64) (*Sequence, error) {
	return NewSequence("day", []Segment{
		{IdleSpec(), 20},
		{BrowsingSpec(), 25},
		{VideoSpec(), 30},
		{GamingSpec(), 30},
		{CameraSpec(), 15},
		{MixedSpec(), 20},
	}, clusters, seed)
}

// Name implements Scenario.
func (s *Sequence) Name() string { return s.name }

// Segments lists the segment scenario names in order (for reporting).
func (s *Sequence) Segments() string {
	names := make([]string, len(s.segments))
	for i, seg := range s.segments {
		names[i] = seg.Spec.Name
	}
	return strings.Join(names, "→")
}

// Current returns the name of the currently playing segment scenario.
func (s *Sequence) Current() string { return s.segments[s.idx].Spec.Name }

// Reset implements Scenario: restarts from the first segment.
func (s *Sequence) Reset(seed uint64) {
	s.seed = seed
	for i, scen := range s.scens {
		scen.Reset(seed + uint64(i)*0x9e37)
	}
	s.idx = 0
	s.remainS = s.segments[0].DurationS
}

// Next implements Scenario.
func (s *Sequence) Next(dtS float64) Period {
	if dtS <= 0 {
		panic("workload: non-positive control period")
	}
	p := s.scens[s.idx].Next(dtS)
	s.remainS -= dtS
	if s.remainS <= 0 {
		s.idx = (s.idx + 1) % len(s.segments)
		s.remainS = s.segments[s.idx].DurationS
	}
	return p
}
