package workload

import "fmt"

// The seven evaluation scenarios. Demand magnitudes are in cycles per
// second and are sized against the default chip's capacity bands
// (LITTLE: 1.6–7.2 Gcycle/s across its OPP range at 4 cores;
// big: 2.4–9.2 Gcycle/s) so that every scenario is feasible at high OPPs
// and infeasible at the lowest ones — the regime where governor choice
// matters.

// IdleSpec: mostly background sync with rare notification bursts.
func IdleSpec() Spec {
	return Spec{
		Name:    "idle",
		Initial: "background",
		Phases: []PhaseSpec{
			{
				Name:     "background",
				MeanDurS: 20,
				Little:   DemandSpec{MeanCPS: 0.15e9, CV: 0.080, Parallelism: 1},
				Big:      DemandSpec{},
				Next:     map[string]float64{"notification": 1},
			},
			{
				Name:     "notification",
				MeanDurS: 0.4,
				Little:   DemandSpec{MeanCPS: 1.2e9, CV: 0.12, Parallelism: 2},
				Big:      DemandSpec{},
				Critical: true,
				Next:     map[string]float64{"background": 1},
			},
		},
	}
}

// BrowsingSpec: read (light) / scroll (render-critical) / page load (burst).
func BrowsingSpec() Spec {
	return Spec{
		Name:    "browsing",
		Initial: "read",
		Phases: []PhaseSpec{
			{
				Name:     "read",
				MeanDurS: 6,
				Little:   DemandSpec{MeanCPS: 0.6e9, CV: 0.15, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 0.2e9, CV: 0.15, Parallelism: 1},
				Next:     map[string]float64{"scroll": 3, "load": 1},
			},
			{
				Name:     "scroll",
				MeanDurS: 2,
				Little:   DemandSpec{MeanCPS: 1.4e9, CV: 0.12, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 2.6e9, CV: 0.14, Parallelism: 2, BurstProb: 0.05, BurstMult: 1.25},
				GPU:      DemandSpec{MeanCPS: 1.2e9, CV: 0.12, Parallelism: 8},
				Critical: true,
				Next:     map[string]float64{"read": 2, "load": 1},
			},
			{
				Name:     "load",
				MeanDurS: 1.2,
				Little:   DemandSpec{MeanCPS: 1.8e9, CV: 0.15, Parallelism: 3},
				Big:      DemandSpec{MeanCPS: 5.2e9, CV: 0.15, Parallelism: 4, BurstProb: 0.08, BurstMult: 1.2},
				Critical: true,
				Next:     map[string]float64{"read": 1},
			},
		},
	}
}

// VideoSpec: steady 30 fps decode (mostly LITTLE + fixed-function assist)
// with occasional seeks.
func VideoSpec() Spec {
	return Spec{
		Name:    "video",
		Initial: "play",
		Phases: []PhaseSpec{
			{
				Name:     "play",
				MeanDurS: 30,
				Little:   DemandSpec{MeanCPS: 1.1e9, CV: 0.05, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 1.0e9, CV: 0.06, Parallelism: 1},
				GPU:      DemandSpec{MeanCPS: 1.0e9, CV: 0.06, Parallelism: 8},
				Critical: true,
				Next:     map[string]float64{"seek": 1},
			},
			{
				Name:     "seek",
				MeanDurS: 0.5,
				Little:   DemandSpec{MeanCPS: 1.6e9, CV: 0.12, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 3.8e9, CV: 0.12, Parallelism: 3},
				Critical: true,
				Next:     map[string]float64{"play": 1},
			},
		},
	}
}

// GamingSpec: menu / 60 fps play / cutscene; play is the hard sustained
// phase with high variance.
func GamingSpec() Spec {
	return Spec{
		Name:    "gaming",
		Initial: "menu",
		Phases: []PhaseSpec{
			{
				Name:     "menu",
				MeanDurS: 4,
				Little:   DemandSpec{MeanCPS: 0.8e9, CV: 0.10, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 1.0e9, CV: 0.10, Parallelism: 1},
				GPU:      DemandSpec{MeanCPS: 0.8e9, CV: 0.10, Parallelism: 8},
				Next:     map[string]float64{"play": 1},
			},
			{
				Name:     "play",
				MeanDurS: 25,
				Little:   DemandSpec{MeanCPS: 1.8e9, CV: 0.120, Parallelism: 3},
				Big:      DemandSpec{MeanCPS: 5.6e9, CV: 0.14, Parallelism: 4, BurstProb: 0.06, BurstMult: 1.25},
				GPU:      DemandSpec{MeanCPS: 4.6e9, CV: 0.14, Parallelism: 8, BurstProb: 0.06, BurstMult: 1.2},
				Critical: true,
				Next:     map[string]float64{"cutscene": 1, "menu": 1},
			},
			{
				Name:     "cutscene",
				MeanDurS: 6,
				Little:   DemandSpec{MeanCPS: 1.2e9, CV: 0.06, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 3.0e9, CV: 0.06, Parallelism: 2},
				GPU:      DemandSpec{MeanCPS: 2.8e9, CV: 0.08, Parallelism: 8},
				Critical: true,
				Next:     map[string]float64{"play": 1},
			},
		},
	}
}

// CameraSpec: viewfinder / record (sustained critical) / still capture
// (short burst).
func CameraSpec() Spec {
	return Spec{
		Name:    "camera",
		Initial: "viewfinder",
		Phases: []PhaseSpec{
			{
				Name:     "viewfinder",
				MeanDurS: 5,
				Little:   DemandSpec{MeanCPS: 1.5e9, CV: 0.08, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 2.2e9, CV: 0.08, Parallelism: 2},
				GPU:      DemandSpec{MeanCPS: 1.4e9, CV: 0.08, Parallelism: 8},
				Critical: true,
				Next:     map[string]float64{"record": 2, "capture": 1},
			},
			{
				Name:     "record",
				MeanDurS: 12,
				Little:   DemandSpec{MeanCPS: 2.0e9, CV: 0.06, Parallelism: 3},
				Big:      DemandSpec{MeanCPS: 4.4e9, CV: 0.08, Parallelism: 3},
				GPU:      DemandSpec{MeanCPS: 1.8e9, CV: 0.08, Parallelism: 8},
				Critical: true,
				Next:     map[string]float64{"viewfinder": 1},
			},
			{
				Name:     "capture",
				MeanDurS: 0.6,
				Little:   DemandSpec{MeanCPS: 2.4e9, CV: 0.12, Parallelism: 3},
				Big:      DemandSpec{MeanCPS: 7.0e9, CV: 0.12, Parallelism: 4},
				Critical: true,
				Next:     map[string]float64{"viewfinder": 1},
			},
		},
	}
}

// AppLaunchSpec: repeated cold launches (heavy burst) followed by light use.
func AppLaunchSpec() Spec {
	return Spec{
		Name:    "applaunch",
		Initial: "launch",
		Phases: []PhaseSpec{
			{
				Name:     "launch",
				MeanDurS: 1.5,
				Little:   DemandSpec{MeanCPS: 2.2e9, CV: 0.12, Parallelism: 4},
				Big:      DemandSpec{MeanCPS: 6.8e9, CV: 0.12, Parallelism: 4},
				Critical: true,
				Next:     map[string]float64{"use": 1},
			},
			{
				Name:     "use",
				MeanDurS: 8,
				Little:   DemandSpec{MeanCPS: 0.9e9, CV: 0.15, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 0.8e9, CV: 0.080, Parallelism: 1},
				Next:     map[string]float64{"launch": 1},
			},
		},
	}
}

// MixedSpec: music playback with periodic navigation re-routing — the
// "background + periodic critical work" pattern.
func MixedSpec() Spec {
	return Spec{
		Name:    "mixed",
		Initial: "music",
		Phases: []PhaseSpec{
			{
				Name:     "music",
				MeanDurS: 7,
				Little:   DemandSpec{MeanCPS: 0.5e9, CV: 0.08, Parallelism: 1},
				Big:      DemandSpec{},
				Next:     map[string]float64{"navigate": 1},
			},
			{
				Name:     "navigate",
				MeanDurS: 3,
				Little:   DemandSpec{MeanCPS: 1.0e9, CV: 0.10, Parallelism: 2},
				Big:      DemandSpec{MeanCPS: 2.4e9, CV: 0.12, Parallelism: 2, BurstProb: 0.05, BurstMult: 1.3},
				Critical: true,
				Next:     map[string]float64{"music": 1},
			},
		},
	}
}

// AllSpecs returns every evaluation scenario in table order.
func AllSpecs() []Spec {
	return []Spec{
		IdleSpec(),
		BrowsingSpec(),
		VideoSpec(),
		GamingSpec(),
		CameraSpec(),
		AppLaunchSpec(),
		MixedSpec(),
	}
}

// ByName returns the scenario spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown scenario %q", name)
}

// Names lists all scenario names in table order.
func Names() []string {
	specs := AllSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
