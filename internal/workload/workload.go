// Package workload generates the mobile user scenarios the governors are
// evaluated on.
//
// The paper evaluates its policy on "diverse scenarios" running on a mobile
// device (the companion paper names the classes: web browsing, video
// playback, gaming, camera, app launch, and idle/background). Real Android
// traces are not available offline, so each scenario is a phase-structured
// stochastic generator: a small Markov chain over phases (e.g. gaming =
// menu → play → cutscene), each phase emitting per-control-period cycle
// demands for the LITTLE and big clusters from a log-normal distribution
// with occasional bursts. Seeded generation makes every experiment
// reproducible.
package workload

import (
	"fmt"
	"math"
	"sort"

	"rlpm/internal/rng"
	"rlpm/internal/soc"
)

// Period is the demand a scenario presents for one DVFS control period.
type Period struct {
	// Demands holds one entry per chip cluster (LITTLE first, then big for
	// the default chip; a single merged entry for symmetric chips).
	// Generators may reuse the backing array between Next calls, so
	// callers that retain a Period past the next call must copy it (the
	// replay recorder does).
	Demands []soc.Demand
	// Critical marks periods whose demand carries a user-visible deadline
	// (frame rendering, shutter-to-shot); only these can register QoS
	// violations.
	Critical bool
	// Phase is the generating phase name, for traces.
	Phase string
}

// Scenario produces a stream of Periods.
type Scenario interface {
	// Name identifies the scenario in tables.
	Name() string
	// Next returns the demand for the next control period of length dtS.
	Next(dtS float64) Period
	// Reset restarts the scenario from its initial phase with a new seed.
	Reset(seed uint64)
}

// DemandSpec describes one cluster's per-period demand inside a phase, in
// units of cycles per second (so the generator scales with the control
// period).
type DemandSpec struct {
	MeanCPS     float64 // mean demanded cycles per second
	CV          float64 // coefficient of variation of the log-normal draw
	Parallelism int     // runnable threads
	BurstProb   float64 // per-period probability of a burst
	BurstMult   float64 // demand multiplier during a burst
}

// PhaseSpec is one phase of a scenario.
type PhaseSpec struct {
	Name string
	// MeanDurS is the mean phase duration; actual durations are
	// exponentially distributed (memoryless phase changes).
	MeanDurS float64
	Little   DemandSpec
	Big      DemandSpec
	// GPU demand only materializes on GPU-equipped chips (3-cluster
	// scenarios); on CPU-only chips the GPU work is assumed to run on
	// unmodeled fixed-function hardware.
	GPU      DemandSpec
	Critical bool
	// Next maps successor phase names to transition weights. Empty means
	// uniform over all phases except self.
	Next map[string]float64
}

// Spec is a full scenario description.
type Spec struct {
	Name    string
	Initial string
	Phases  []PhaseSpec
}

// Validate checks structural invariants.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: scenario has no name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: scenario %s has no phases", s.Name)
	}
	names := map[string]bool{}
	for _, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("workload: scenario %s has unnamed phase", s.Name)
		}
		if names[p.Name] {
			return fmt.Errorf("workload: scenario %s duplicate phase %q", s.Name, p.Name)
		}
		names[p.Name] = true
		if p.MeanDurS <= 0 {
			return fmt.Errorf("workload: scenario %s phase %s non-positive duration", s.Name, p.Name)
		}
		for _, d := range []DemandSpec{p.Little, p.Big, p.GPU} {
			if d.MeanCPS < 0 || d.CV < 0 || d.Parallelism < 0 || d.BurstProb < 0 || d.BurstProb > 1 || d.BurstMult < 0 {
				return fmt.Errorf("workload: scenario %s phase %s bad demand spec", s.Name, p.Name)
			}
			if d.MeanCPS > 0 && d.Parallelism == 0 {
				return fmt.Errorf("workload: scenario %s phase %s demands cycles with zero parallelism", s.Name, p.Name)
			}
		}
	}
	if !names[s.Initial] {
		return fmt.Errorf("workload: scenario %s initial phase %q unknown", s.Name, s.Initial)
	}
	for _, p := range s.Phases {
		for succ := range p.Next {
			if !names[succ] {
				return fmt.Errorf("workload: scenario %s phase %s transitions to unknown %q", s.Name, p.Name, succ)
			}
		}
	}
	return nil
}

// generator is the Scenario implementation over a Spec.
type generator struct {
	spec      Spec
	clusters  int // 1 (merged) or 2 (little,big)
	seed      uint64
	r         *rng.Rand
	phaseIdx  int
	remainS   float64
	phaseByNm map[string]int

	// plans holds each phase's successor table (sorted names resolved to
	// indices and weights), precomputed at New so a phase transition draws
	// from the same distribution without rebuilding and re-sorting it.
	plans []phasePlan

	// demandBuf backs Period.Demands: each Next reuses it, so the steady
	// state of the generator performs no allocation.
	demandBuf [3]soc.Demand
}

// phasePlan is one phase's precomputed transition table.
type phasePlan struct {
	succIdx []int // successor phase indices, in sorted-name order
	weights []float64
}

// New builds a Scenario from spec for a chip with the given number of
// clusters: 1 (symmetric chip: little+big demand merged onto the single
// cluster), 2 (big.LITTLE), or 3 (big.LITTLE + GPU domain).
func New(spec Spec, clusters int, seed uint64) (Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if clusters < 1 || clusters > 3 {
		return nil, fmt.Errorf("workload: unsupported cluster count %d", clusters)
	}
	g := &generator{spec: spec, clusters: clusters, phaseByNm: map[string]int{}}
	for i, p := range spec.Phases {
		g.phaseByNm[p.Name] = i
	}
	g.plans = make([]phasePlan, len(spec.Phases))
	for i, p := range spec.Phases {
		if len(p.Next) == 0 {
			continue
		}
		// Deterministic draw order: successors sorted by name, exactly as
		// the previous per-transition rebuild did.
		names := make([]string, 0, len(p.Next))
		for n := range p.Next {
			names = append(names, n)
		}
		sort.Strings(names)
		plan := phasePlan{succIdx: make([]int, len(names)), weights: make([]float64, len(names))}
		for j, n := range names {
			plan.succIdx[j] = g.phaseByNm[n]
			plan.weights[j] = p.Next[n]
		}
		g.plans[i] = plan
	}
	g.Reset(seed)
	return g, nil
}

func (g *generator) Name() string { return g.spec.Name }

func (g *generator) Reset(seed uint64) {
	g.seed = seed
	g.r = rng.NewStream(seed, hashName(g.spec.Name))
	g.phaseIdx = g.phaseByNm[g.spec.Initial]
	g.remainS = g.r.Exp(1 / g.spec.Phases[g.phaseIdx].MeanDurS)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next implements Scenario.
func (g *generator) Next(dtS float64) Period {
	if dtS <= 0 {
		panic("workload: non-positive control period")
	}
	phase := g.spec.Phases[g.phaseIdx]

	little := g.draw(phase.Little, dtS)
	big := g.draw(phase.Big, dtS)
	p := Period{Critical: phase.Critical, Phase: phase.Name}
	switch g.clusters {
	case 3:
		g.demandBuf[0], g.demandBuf[1], g.demandBuf[2] = little, big, g.draw(phase.GPU, dtS)
		p.Demands = g.demandBuf[:3]
	case 2:
		g.demandBuf[0], g.demandBuf[1] = little, big
		p.Demands = g.demandBuf[:2]
	default:
		g.demandBuf[0] = soc.Demand{
			Cycles:      little.Cycles + big.Cycles,
			Parallelism: little.Parallelism + big.Parallelism,
		}
		p.Demands = g.demandBuf[:1]
	}

	// Advance phase clock and transition when it expires.
	g.remainS -= dtS
	if g.remainS <= 0 {
		g.transition()
	}
	return p
}

func (g *generator) draw(d DemandSpec, dtS float64) soc.Demand {
	if d.MeanCPS == 0 {
		return soc.Demand{}
	}
	mean := d.MeanCPS * dtS
	cycles := mean
	if d.CV > 0 {
		// Log-normal with the requested mean and CV:
		// sigma² = ln(1+CV²), mu = ln(mean) − sigma²/2.
		sigma2 := math.Log(1 + d.CV*d.CV)
		mu := math.Log(mean) - sigma2/2
		cycles = g.r.LogNorm(mu, math.Sqrt(sigma2))
	}
	if d.BurstProb > 0 && g.r.Bernoulli(d.BurstProb) {
		cycles *= d.BurstMult
	}
	return soc.Demand{Cycles: cycles, Parallelism: d.Parallelism}
}

func (g *generator) transition() {
	plan := g.plans[g.phaseIdx]
	var next int
	if len(plan.succIdx) == 0 {
		// Uniform over other phases (or self-loop for single-phase specs).
		if len(g.spec.Phases) == 1 {
			next = g.phaseIdx
		} else {
			next = g.r.Intn(len(g.spec.Phases) - 1)
			if next >= g.phaseIdx {
				next++
			}
		}
	} else {
		next = plan.succIdx[g.r.Choice(plan.weights)]
	}
	g.phaseIdx = next
	g.remainS = g.r.Exp(1 / g.spec.Phases[next].MeanDurS)
}
