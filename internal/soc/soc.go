// Package soc models the multiprocessor system-on-chip that the power
// management policy controls.
//
// The model is the standard architecture-level abstraction used in DVFS
// studies: per-cluster operating performance points (OPPs — frequency plus
// the minimum stable voltage for it), dynamic power P = Ceff·V²·f·u, a
// temperature-dependent leakage term, and a first-order RC thermal model
// with a throttling ceiling. The paper evaluated on a physical big.LITTLE
// mobile MPSoC; this package is the simulated substitute (see DESIGN.md §2)
// and exposes exactly the observation/actuation surface a cpufreq governor
// sees: per-cluster utilization in, OPP index out.
package soc

import (
	"fmt"
	"math"
)

// OPP is one operating performance point: a frequency and the voltage the
// cluster must run at to sustain it.
type OPP struct {
	FreqHz float64 // core clock in Hz
	VoltV  float64 // supply voltage in volts
}

// ClusterSpec is the static description of one CPU cluster.
type ClusterSpec struct {
	Name     string
	NumCores int
	// OPPs must be sorted by ascending frequency with strictly positive
	// frequency and voltage.
	OPPs []OPP
	// CeffF is the effective switched capacitance per core in farads;
	// dynamic power is CeffF · V² · f · (utilized cores).
	CeffF float64
	// LeakA0 is the per-core leakage current at ThermalSpec.AmbientC, in
	// amperes. Leakage doubles every LeakDoubleC degrees.
	LeakA0      float64
	LeakDoubleC float64
	// SwitchLatencyS is the stall a DVFS transition costs (PLL relock +
	// regulator ramp); during it the cluster executes nothing. Zero means
	// free transitions.
	SwitchLatencyS float64
	// SwitchEnergyJ is the energy overhead of one DVFS transition.
	SwitchEnergyJ float64
	// IPC is the cluster's relative work per cycle (instructions per
	// cycle normalized across clusters): an out-of-order big core
	// retires more work per cycle than an in-order LITTLE core. Demand
	// expressed in one cluster's cycles converts to another's by the IPC
	// ratio (the scheduler does this when it migrates tasks).
	IPC float64
}

// ThermalSpec is the first-order RC thermal model for one cluster.
type ThermalSpec struct {
	AmbientC   float64 // ambient/skin temperature, °C
	RthCPerW   float64 // junction-to-ambient thermal resistance, °C/W
	CthJPerC   float64 // thermal capacitance, J/°C
	ThrottleC  float64 // junction temperature that engages throttling
	ThrottleLv int     // highest OPP index allowed while throttled
}

// Validate checks the spec for the invariants the simulator relies on.
func (s ClusterSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc: cluster has no name")
	}
	if s.NumCores <= 0 {
		return fmt.Errorf("soc: cluster %s has %d cores", s.Name, s.NumCores)
	}
	if len(s.OPPs) == 0 {
		return fmt.Errorf("soc: cluster %s has no OPPs", s.Name)
	}
	prev := 0.0
	for i, o := range s.OPPs {
		if o.FreqHz <= 0 || o.VoltV <= 0 {
			return fmt.Errorf("soc: cluster %s OPP %d non-positive (%v Hz, %v V)", s.Name, i, o.FreqHz, o.VoltV)
		}
		if o.FreqHz <= prev {
			return fmt.Errorf("soc: cluster %s OPPs not ascending at index %d", s.Name, i)
		}
		prev = o.FreqHz
	}
	if s.CeffF <= 0 {
		return fmt.Errorf("soc: cluster %s Ceff must be positive", s.Name)
	}
	if s.LeakA0 < 0 || s.LeakDoubleC <= 0 {
		return fmt.Errorf("soc: cluster %s bad leakage parameters", s.Name)
	}
	if s.SwitchLatencyS < 0 || s.SwitchEnergyJ < 0 {
		return fmt.Errorf("soc: cluster %s negative DVFS switch cost", s.Name)
	}
	if s.IPC <= 0 {
		return fmt.Errorf("soc: cluster %s IPC must be positive, got %v", s.Name, s.IPC)
	}
	return nil
}

// Demand is the work presented to a cluster for one control period.
type Demand struct {
	// Cycles is the total cycle demand across all runnable threads.
	Cycles float64
	// Parallelism is the number of concurrently runnable threads; it caps
	// how many cores can contribute capacity. Zero means idle.
	Parallelism int
}

// StepResult reports what happened during one control period.
type StepResult struct {
	CompletedCycles float64 // cycles actually executed
	CapacityCycles  float64 // cycles the runnable threads could have executed
	// Utilization is completed cycles over the capacity of the cores the
	// workload could actually use (min(parallelism, cores)), i.e. the
	// busiest-core utilization a cpufreq governor samples. 1.0 means the
	// runnable threads are fully compute-bound at this OPP. 0 when idle.
	Utilization   float64
	DynamicPowerW float64 // average dynamic power over the period
	LeakPowerW    float64 // average leakage power over the period
	EnergyJ       float64 // total energy over the period (incl. switch cost)
	TempC         float64 // junction temperature at the end of the period
	Throttled     bool    // true if the thermal governor capped the level
	Level         int     // OPP level in effect during the period
	Switched      bool    // true if this period began with a DVFS transition
}

// PowerW returns the average dynamic-plus-leakage power; DVFS transition
// overhead is accounted in EnergyJ but not here.
func (r StepResult) PowerW() float64 { return r.DynamicPowerW + r.LeakPowerW }

// Cluster is the dynamic state of one cluster.
type Cluster struct {
	spec    ClusterSpec
	thermal ThermalSpec
	level   int     // requested OPP index
	tempC   float64 // junction temperature

	prevEffLevel int    // effective level of the previous period
	hasPrev      bool   // false until the first Step
	switches     uint64 // DVFS transitions performed

	// Invariants of the spec, hoisted out of the per-period Step. The
	// multiplication order inside each coefficient matches the original
	// inline expressions exactly, so results stay bit-identical.
	dynCoefW []float64 // per OPP: CeffF·V·V·f — dynamic power per busy core
	leakVA   []float64 // per OPP: V·LeakA0 — leakage volt-amps per core
	coresF   float64   // float64(NumCores)
	tauS     float64   // thermal time constant Rth·Cth

	// One-entry decay cache: dt is fixed within a run, so the thermal
	// factor exp(-dt/tau) is recomputed only when dt changes.
	cachedDtS   float64
	cachedDecay float64
}

// NewCluster builds a cluster at the lowest OPP and ambient temperature.
func NewCluster(spec ClusterSpec, thermal ThermalSpec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if thermal.RthCPerW <= 0 || thermal.CthJPerC <= 0 {
		return nil, fmt.Errorf("soc: cluster %s has non-positive thermal RC", spec.Name)
	}
	if thermal.ThrottleLv < 0 || thermal.ThrottleLv >= len(spec.OPPs) {
		return nil, fmt.Errorf("soc: cluster %s throttle level %d out of range", spec.Name, thermal.ThrottleLv)
	}
	c := &Cluster{spec: spec, thermal: thermal, tempC: thermal.AmbientC}
	c.dynCoefW = make([]float64, len(spec.OPPs))
	c.leakVA = make([]float64, len(spec.OPPs))
	for i, o := range spec.OPPs {
		c.dynCoefW[i] = spec.CeffF * o.VoltV * o.VoltV * o.FreqHz
		c.leakVA[i] = o.VoltV * spec.LeakA0
	}
	c.coresF = float64(spec.NumCores)
	c.tauS = thermal.RthCPerW * thermal.CthJPerC
	return c, nil
}

// Spec returns the static spec.
func (c *Cluster) Spec() ClusterSpec { return c.spec }

// NumLevels returns the number of OPPs.
func (c *Cluster) NumLevels() int { return len(c.spec.OPPs) }

// OPPAt returns OPP i.
func (c *Cluster) OPPAt(i int) OPP { return c.spec.OPPs[i] }

// Level returns the requested OPP index (before thermal capping).
func (c *Cluster) Level() int { return c.level }

// TempC returns the current junction temperature.
func (c *Cluster) TempC() float64 { return c.tempC }

// SetLevel requests OPP index lvl, clamping into the valid range. It
// returns the level actually stored. Clamping rather than erroring matches
// cpufreq semantics where out-of-range requests clip to policy limits.
func (c *Cluster) SetLevel(lvl int) int {
	if lvl < 0 {
		lvl = 0
	}
	if lvl >= len(c.spec.OPPs) {
		lvl = len(c.spec.OPPs) - 1
	}
	c.level = lvl
	return lvl
}

// Switches returns how many DVFS transitions the cluster has performed.
func (c *Cluster) Switches() uint64 { return c.switches }

// Reset restores ambient temperature and the lowest OPP.
func (c *Cluster) Reset() {
	c.level = 0
	c.tempC = c.thermal.AmbientC
	c.prevEffLevel = 0
	c.hasPrev = false
	c.switches = 0
}

// effectiveLevel applies the thermal cap.
func (c *Cluster) effectiveLevel() (int, bool) {
	if c.tempC >= c.thermal.ThrottleC && c.level > c.thermal.ThrottleLv {
		return c.thermal.ThrottleLv, true
	}
	return c.level, false
}

// leakPowerW returns per-cluster leakage at OPP level lvl and temperature t.
func (c *Cluster) leakPowerW(lvl int, t float64) float64 {
	scale := math.Exp2((t - c.thermal.AmbientC) / c.spec.LeakDoubleC)
	return c.leakVA[lvl] * scale * c.coresF
}

// decayFactor returns exp(-dt/tau), cached for the run's fixed dt.
func (c *Cluster) decayFactor(dt float64) float64 {
	if dt != c.cachedDtS {
		c.cachedDtS = dt
		c.cachedDecay = math.Exp(-dt / c.tauS)
	}
	return c.cachedDecay
}

// Step advances the cluster by dt seconds under demand d and returns what
// happened. dt must be positive; demand fields must be non-negative.
func (c *Cluster) Step(d Demand, dt float64) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("soc: non-positive dt %v", dt)
	}
	if d.Cycles < 0 || d.Parallelism < 0 {
		return StepResult{}, fmt.Errorf("soc: negative demand %+v", d)
	}
	lvl, throttled := c.effectiveLevel()
	opp := c.spec.OPPs[lvl]

	// DVFS transition: the cluster stalls for the switch latency and pays
	// the regulator-ramp energy.
	switched := c.hasPrev && lvl != c.prevEffLevel
	switchEnergy := 0.0
	effectiveDt := dt
	if switched {
		c.switches++
		switchEnergy = c.spec.SwitchEnergyJ
		stall := c.spec.SwitchLatencyS
		if stall > dt {
			stall = dt
		}
		effectiveDt = dt - stall
	}
	c.prevEffLevel, c.hasPrev = lvl, true

	usableCores := d.Parallelism
	if usableCores > c.spec.NumCores {
		usableCores = c.spec.NumCores
	}
	capacity := opp.FreqHz * effectiveDt * float64(usableCores)
	completed := d.Cycles
	if completed > capacity {
		completed = capacity
	}
	util := 0.0
	if capacity > 0 {
		util = completed / capacity
	}

	// Dynamic power: Ceff·V²·f scaled by the average number of busy cores
	// (completed cycles / (f·dt) core-seconds of work).
	busyCores := 0.0
	if opp.FreqHz > 0 {
		busyCores = completed / (opp.FreqHz * dt)
	}
	dyn := c.dynCoefW[lvl] * busyCores
	leak := c.leakPowerW(lvl, c.tempC)
	power := dyn + leak + switchEnergy/dt

	// First-order RC: dT/dt = (P·Rth + Tamb − T) / (Rth·Cth), integrated
	// exactly over the period for the constant-power step.
	tInf := c.thermal.AmbientC + power*c.thermal.RthCPerW
	c.tempC = tInf + (c.tempC-tInf)*c.decayFactor(dt)

	return StepResult{
		CompletedCycles: completed,
		CapacityCycles:  capacity,
		Utilization:     util,
		DynamicPowerW:   dyn,
		LeakPowerW:      leak,
		EnergyJ:         power * dt,
		TempC:           c.tempC,
		Throttled:       throttled,
		Level:           lvl,
		Switched:        switched,
	}, nil
}

// Chip bundles the clusters of an MPSoC plus an uncore (memory controller,
// interconnect, display pipeline) power floor that every scenario pays.
type Chip struct {
	clusters     []*Cluster
	uncoreIdleW  float64
	uncoreBusyW  float64 // additional uncore power at full CPU activity
	totalEnergyJ float64
	totalTimeS   float64
}

// ChipSpec describes a chip.
type ChipSpec struct {
	Clusters    []ClusterSpec
	Thermal     ThermalSpec
	UncoreIdleW float64 // constant platform floor
	UncoreBusyW float64 // extra uncore power scaled by mean CPU utilization
}

// NewChip builds a chip with one Cluster per spec, all sharing the thermal
// spec (each cluster integrates its own RC instance).
func NewChip(spec ChipSpec) (*Chip, error) {
	if len(spec.Clusters) == 0 {
		return nil, fmt.Errorf("soc: chip needs at least one cluster")
	}
	if spec.UncoreIdleW < 0 || spec.UncoreBusyW < 0 {
		return nil, fmt.Errorf("soc: negative uncore power")
	}
	ch := &Chip{uncoreIdleW: spec.UncoreIdleW, uncoreBusyW: spec.UncoreBusyW}
	seen := map[string]bool{}
	for _, cs := range spec.Clusters {
		if seen[cs.Name] {
			return nil, fmt.Errorf("soc: duplicate cluster name %q", cs.Name)
		}
		seen[cs.Name] = true
		cl, err := NewCluster(cs, spec.Thermal)
		if err != nil {
			return nil, err
		}
		ch.clusters = append(ch.clusters, cl)
	}
	return ch, nil
}

// NumClusters returns the cluster count.
func (ch *Chip) NumClusters() int { return len(ch.clusters) }

// Cluster returns cluster i.
func (ch *Chip) Cluster(i int) *Cluster { return ch.clusters[i] }

// ChipStep aggregates a whole-chip step.
type ChipStep struct {
	Clusters     []StepResult
	UncorePowerW float64
	EnergyJ      float64 // clusters + uncore
}

// Step advances every cluster by dt under the given per-cluster demands.
// It allocates a fresh Clusters slice per call; hot loops should hold a
// ChipStep and use StepInto instead.
func (ch *Chip) Step(demands []Demand, dt float64) (ChipStep, error) {
	var out ChipStep
	if err := ch.StepInto(&out, demands, dt); err != nil {
		return ChipStep{}, err
	}
	return out, nil
}

// StepInto is Step writing into a caller-owned result: dst.Clusters is
// reused when its capacity suffices, so a steady-state control loop that
// keeps one ChipStep across periods performs no allocation per step. On
// error dst is left unchanged apart from a possible Clusters resize.
func (ch *Chip) StepInto(dst *ChipStep, demands []Demand, dt float64) error {
	if len(demands) != len(ch.clusters) {
		return fmt.Errorf("soc: %d demands for %d clusters", len(demands), len(ch.clusters))
	}
	if cap(dst.Clusters) >= len(ch.clusters) {
		dst.Clusters = dst.Clusters[:len(ch.clusters)]
	} else {
		dst.Clusters = make([]StepResult, len(ch.clusters))
	}
	var utilSum float64
	var clusterEnergy float64
	for i, cl := range ch.clusters {
		r, err := cl.Step(demands[i], dt)
		if err != nil {
			return err
		}
		dst.Clusters[i] = r
		utilSum += r.Utilization
		clusterEnergy += r.EnergyJ
	}
	meanUtil := utilSum / float64(len(ch.clusters))
	dst.UncorePowerW = ch.uncoreIdleW + ch.uncoreBusyW*meanUtil
	dst.EnergyJ = clusterEnergy + dst.UncorePowerW*dt
	ch.totalEnergyJ += dst.EnergyJ
	ch.totalTimeS += dt
	return nil
}

// TotalEnergyJ returns the accumulated energy since construction/Reset.
func (ch *Chip) TotalEnergyJ() float64 { return ch.totalEnergyJ }

// TotalTimeS returns the accumulated simulated time.
func (ch *Chip) TotalTimeS() float64 { return ch.totalTimeS }

// Reset restores all clusters and clears accumulators.
func (ch *Chip) Reset() {
	for _, cl := range ch.clusters {
		cl.Reset()
	}
	ch.totalEnergyJ = 0
	ch.totalTimeS = 0
}
