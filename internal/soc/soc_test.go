package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(LittleClusterSpec(), DefaultThermal())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpecValidate(t *testing.T) {
	good := LittleClusterSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*ClusterSpec)
	}{
		{"no name", func(s *ClusterSpec) { s.Name = "" }},
		{"zero cores", func(s *ClusterSpec) { s.NumCores = 0 }},
		{"no OPPs", func(s *ClusterSpec) { s.OPPs = nil }},
		{"zero freq", func(s *ClusterSpec) { s.OPPs[0].FreqHz = 0 }},
		{"zero volt", func(s *ClusterSpec) { s.OPPs[2].VoltV = 0 }},
		{"descending", func(s *ClusterSpec) { s.OPPs[1].FreqHz = s.OPPs[0].FreqHz }},
		{"zero ceff", func(s *ClusterSpec) { s.CeffF = 0 }},
		{"neg leak", func(s *ClusterSpec) { s.LeakA0 = -1 }},
		{"zero leak doubling", func(s *ClusterSpec) { s.LeakDoubleC = 0 }},
	}
	for _, c := range cases {
		s := LittleClusterSpec()
		s.OPPs = append([]OPP(nil), s.OPPs...)
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad spec", c.name)
		}
	}
}

func TestNewClusterRejectsBadThermal(t *testing.T) {
	th := DefaultThermal()
	th.RthCPerW = 0
	if _, err := NewCluster(LittleClusterSpec(), th); err == nil {
		t.Fatal("zero Rth accepted")
	}
	th = DefaultThermal()
	th.ThrottleLv = 99
	if _, err := NewCluster(LittleClusterSpec(), th); err == nil {
		t.Fatal("out-of-range throttle level accepted")
	}
}

func TestSetLevelClamps(t *testing.T) {
	c := testCluster(t)
	if got := c.SetLevel(-3); got != 0 {
		t.Errorf("SetLevel(-3) = %d", got)
	}
	if got := c.SetLevel(999); got != c.NumLevels()-1 {
		t.Errorf("SetLevel(999) = %d", got)
	}
	if got := c.SetLevel(2); got != 2 || c.Level() != 2 {
		t.Errorf("SetLevel(2) = %d, Level() = %d", got, c.Level())
	}
}

func TestStepValidatesArgs(t *testing.T) {
	c := testCluster(t)
	if _, err := c.Step(Demand{Cycles: 1, Parallelism: 1}, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := c.Step(Demand{Cycles: -1, Parallelism: 1}, 0.05); err == nil {
		t.Error("negative cycles accepted")
	}
	if _, err := c.Step(Demand{Cycles: 1, Parallelism: -1}, 0.05); err == nil {
		t.Error("negative parallelism accepted")
	}
}

func TestStepCompletesBoundedWork(t *testing.T) {
	c := testCluster(t)
	c.SetLevel(0) // 400 MHz
	dt := 0.05
	// Demand more than one core can do but with parallelism 1.
	demand := Demand{Cycles: 100e6, Parallelism: 1}
	r, err := c.Step(demand, dt)
	if err != nil {
		t.Fatal(err)
	}
	wantCap := 400e6 * dt * 1
	if r.CapacityCycles != wantCap {
		t.Errorf("capacity = %v, want %v", r.CapacityCycles, wantCap)
	}
	if r.CompletedCycles != wantCap {
		t.Errorf("completed = %v, want saturated %v", r.CompletedCycles, wantCap)
	}
	// Utilization is against usable cores (the one runnable thread), so a
	// saturated single-thread load reads 100% — cpufreq's busiest-core view.
	if math.Abs(r.Utilization-1.0) > 1e-12 {
		t.Errorf("utilization = %v, want 1.0", r.Utilization)
	}
	// Half the demand on the same single core reads 50%.
	c2 := testCluster(t)
	c2.SetLevel(0)
	r2, err := c2.Step(Demand{Cycles: 10e6, Parallelism: 1}, dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Utilization-0.5) > 1e-12 {
		t.Errorf("half-load utilization = %v, want 0.5", r2.Utilization)
	}
}

func TestStepIdleHasOnlyLeakage(t *testing.T) {
	c := testCluster(t)
	r, err := c.Step(Demand{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicPowerW != 0 {
		t.Errorf("idle dynamic power = %v", r.DynamicPowerW)
	}
	if r.LeakPowerW <= 0 {
		t.Errorf("idle leakage = %v, want positive", r.LeakPowerW)
	}
	if r.Utilization != 0 || r.CompletedCycles != 0 {
		t.Errorf("idle did work: %+v", r)
	}
}

func TestHigherFreqCompletesMore(t *testing.T) {
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	lo := testCluster(t)
	hi := testCluster(t)
	lo.SetLevel(0)
	hi.SetLevel(hi.NumLevels() - 1)
	rl, _ := lo.Step(demand, 0.05)
	rh, _ := hi.Step(demand, 0.05)
	if rh.CompletedCycles <= rl.CompletedCycles {
		t.Fatalf("high freq completed %v <= low freq %v", rh.CompletedCycles, rl.CompletedCycles)
	}
}

func TestHigherFreqUsesMoreEnergyForSameSaturatingLoad(t *testing.T) {
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	lo := testCluster(t)
	hi := testCluster(t)
	lo.SetLevel(0)
	hi.SetLevel(hi.NumLevels() - 1)
	rl, _ := lo.Step(demand, 0.05)
	rh, _ := hi.Step(demand, 0.05)
	// Energy per completed cycle must be worse at the high OPP (V² scaling):
	// this is the entire premise of DVFS.
	eppLo := rl.EnergyJ / rl.CompletedCycles
	eppHi := rh.EnergyJ / rh.CompletedCycles
	if eppHi <= eppLo {
		t.Fatalf("energy/cycle hi=%v <= lo=%v; V² scaling broken", eppHi, eppLo)
	}
}

func TestRaceToIdleTradeoffExists(t *testing.T) {
	// For a fixed *finite* job, running faster finishes sooner; the model
	// must charge dynamic energy only for cycles executed, so dynamic
	// energy for the job scales with V² — the slow OPP must win on energy.
	job := 20e6 // cycles
	lo := testCluster(t)
	hi := testCluster(t)
	lo.SetLevel(0)
	hi.SetLevel(hi.NumLevels() - 1)
	rl, _ := lo.Step(Demand{Cycles: job, Parallelism: 1}, 0.05)
	rh, _ := hi.Step(Demand{Cycles: job, Parallelism: 1}, 0.05)
	if rl.CompletedCycles != job || rh.CompletedCycles != job {
		t.Fatalf("job did not complete: lo=%v hi=%v", rl.CompletedCycles, rh.CompletedCycles)
	}
	dynLo := rl.DynamicPowerW * 0.05
	dynHi := rh.DynamicPowerW * 0.05
	if dynLo >= dynHi {
		t.Fatalf("dynamic energy lo=%v >= hi=%v for the same job", dynLo, dynHi)
	}
}

func TestThermalHeatsUnderLoadAndThrottles(t *testing.T) {
	th := DefaultThermal()
	th.ThrottleC = 45 // low ceiling so the test hits it fast
	c, err := NewCluster(BigClusterSpec(), th)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLevel(c.NumLevels() - 1)
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	var sawThrottle bool
	prevTemp := c.TempC()
	for i := 0; i < 2000; i++ {
		r, err := c.Step(demand, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throttled {
			sawThrottle = true
			if r.Level != th.ThrottleLv {
				t.Fatalf("throttled to level %d, want %d", r.Level, th.ThrottleLv)
			}
			break
		}
		if r.TempC < prevTemp-1e-9 {
			t.Fatalf("temperature fell under full load: %v -> %v", prevTemp, r.TempC)
		}
		prevTemp = r.TempC
	}
	if !sawThrottle {
		t.Fatalf("never throttled; final temp %v", c.TempC())
	}
}

func TestThermalCoolsWhenIdle(t *testing.T) {
	c := testCluster(t)
	c.SetLevel(c.NumLevels() - 1)
	for i := 0; i < 400; i++ {
		_, _ = c.Step(Demand{Cycles: 1e12, Parallelism: 4}, 0.05)
	}
	hot := c.TempC()
	c.SetLevel(0)
	for i := 0; i < 400; i++ {
		_, _ = c.Step(Demand{}, 0.05)
	}
	if c.TempC() >= hot {
		t.Fatalf("idle cluster did not cool: %v -> %v", hot, c.TempC())
	}
}

func TestReset(t *testing.T) {
	c := testCluster(t)
	c.SetLevel(5)
	for i := 0; i < 100; i++ {
		_, _ = c.Step(Demand{Cycles: 1e12, Parallelism: 4}, 0.05)
	}
	c.Reset()
	if c.Level() != 0 || c.TempC() != DefaultThermal().AmbientC {
		t.Fatalf("Reset left level=%d temp=%v", c.Level(), c.TempC())
	}
}

func TestChipStepAggregates(t *testing.T) {
	ch, err := NewChip(DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d", ch.NumClusters())
	}
	res, err := ch.Step([]Demand{
		{Cycles: 10e6, Parallelism: 2},
		{Cycles: 50e6, Parallelism: 2},
	}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Clusters {
		sum += r.EnergyJ
	}
	sum += res.UncorePowerW * 0.05
	if math.Abs(res.EnergyJ-sum) > 1e-12 {
		t.Fatalf("chip energy %v != parts %v", res.EnergyJ, sum)
	}
	if ch.TotalEnergyJ() != res.EnergyJ {
		t.Fatalf("accumulator %v != step %v", ch.TotalEnergyJ(), res.EnergyJ)
	}
	if ch.TotalTimeS() != 0.05 {
		t.Fatalf("total time %v", ch.TotalTimeS())
	}
}

func TestChipStepDemandMismatch(t *testing.T) {
	ch, _ := NewChip(DefaultChipSpec())
	if _, err := ch.Step([]Demand{{}}, 0.05); err == nil {
		t.Fatal("demand/cluster mismatch accepted")
	}
}

func TestChipValidation(t *testing.T) {
	if _, err := NewChip(ChipSpec{}); err == nil {
		t.Fatal("empty chip accepted")
	}
	spec := DefaultChipSpec()
	spec.UncoreIdleW = -1
	if _, err := NewChip(spec); err == nil {
		t.Fatal("negative uncore accepted")
	}
	spec = DefaultChipSpec()
	spec.Clusters = []ClusterSpec{LittleClusterSpec(), LittleClusterSpec()}
	if _, err := NewChip(spec); err == nil {
		t.Fatal("duplicate cluster names accepted")
	}
}

func TestChipReset(t *testing.T) {
	ch, _ := NewChip(DefaultChipSpec())
	_, _ = ch.Step([]Demand{{Cycles: 1e6, Parallelism: 1}, {}}, 0.05)
	ch.Reset()
	if ch.TotalEnergyJ() != 0 || ch.TotalTimeS() != 0 {
		t.Fatal("Reset did not clear accumulators")
	}
}

func TestSymmetricChipSpec(t *testing.T) {
	ch, err := NewChip(SymmetricChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumClusters() != 1 || ch.Cluster(0).Spec().NumCores != 8 {
		t.Fatalf("symmetric chip wrong shape")
	}
}

// Property: completed cycles never exceed capacity or demand, and
// utilization stays in [0,1].
func TestStepInvariantsProperty(t *testing.T) {
	c := testCluster(t)
	f := func(cyclesRaw uint32, par uint8, lvl uint8) bool {
		c.Reset()
		c.SetLevel(int(lvl) % c.NumLevels())
		d := Demand{Cycles: float64(cyclesRaw) * 1e3, Parallelism: int(par % 9)}
		r, err := c.Step(d, 0.05)
		if err != nil {
			return false
		}
		if r.CompletedCycles > r.CapacityCycles+1e-9 || r.CompletedCycles > d.Cycles+1e-9 {
			return false
		}
		if r.Utilization < 0 || r.Utilization > 1+1e-12 {
			return false
		}
		return r.EnergyJ >= 0 && r.DynamicPowerW >= 0 && r.LeakPowerW >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is monotone in level for a saturating load (same period).
func TestEnergyMonotoneInLevelProperty(t *testing.T) {
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	prev := -1.0
	c := testCluster(t)
	for lvl := 0; lvl < c.NumLevels(); lvl++ {
		c.Reset()
		c.SetLevel(lvl)
		r, err := c.Step(demand, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.EnergyJ <= prev {
			t.Fatalf("energy not increasing at level %d: %v <= %v", lvl, r.EnergyJ, prev)
		}
		prev = r.EnergyJ
	}
}

func TestDefaultPowerEnvelope(t *testing.T) {
	// Full-tilt big cluster should land in the 3–7 W band a mobile SoC
	// actually dissipates; this guards the calibration constants.
	c, _ := NewCluster(BigClusterSpec(), DefaultThermal())
	c.SetLevel(c.NumLevels() - 1)
	r, _ := c.Step(Demand{Cycles: 1e12, Parallelism: 4}, 0.05)
	if p := r.PowerW(); p < 3 || p > 7 {
		t.Fatalf("big cluster full power = %v W, want 3–7 W", p)
	}
	l, _ := NewCluster(LittleClusterSpec(), DefaultThermal())
	l.SetLevel(l.NumLevels() - 1)
	rl, _ := l.Step(Demand{Cycles: 1e12, Parallelism: 4}, 0.05)
	if p := rl.PowerW(); p < 0.8 || p > 3 {
		t.Fatalf("little cluster full power = %v W, want 0.8–3 W", p)
	}
}

func BenchmarkClusterStep(b *testing.B) {
	c, _ := NewCluster(BigClusterSpec(), DefaultThermal())
	c.SetLevel(4)
	d := Demand{Cycles: 50e6, Parallelism: 3}
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChipStep(b *testing.B) {
	ch, _ := NewChip(DefaultChipSpec())
	d := []Demand{{Cycles: 20e6, Parallelism: 2}, {Cycles: 60e6, Parallelism: 2}}
	for i := 0; i < b.N; i++ {
		if _, err := ch.Step(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
