package soc

import (
	"math"
	"testing"
)

// switchSpec returns a little-cluster spec with pronounced switch costs so
// the effects are easy to assert.
func switchSpec() ClusterSpec {
	s := LittleClusterSpec()
	s.SwitchLatencyS = 5e-3 // 10% of a 50 ms period
	s.SwitchEnergyJ = 10e-3
	return s
}

func TestSwitchCostValidation(t *testing.T) {
	s := LittleClusterSpec()
	s.SwitchLatencyS = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative switch latency accepted")
	}
	s = LittleClusterSpec()
	s.SwitchEnergyJ = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative switch energy accepted")
	}
}

func TestFirstStepIsNotASwitch(t *testing.T) {
	c, err := NewCluster(switchSpec(), DefaultThermal())
	if err != nil {
		t.Fatal(err)
	}
	c.SetLevel(5)
	r, err := c.Step(Demand{Cycles: 1e6, Parallelism: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Switched {
		t.Fatal("first step counted as a switch")
	}
	if c.Switches() != 0 {
		t.Fatalf("switch counter = %d", c.Switches())
	}
}

func TestLevelChangeCostsCapacityAndEnergy(t *testing.T) {
	mk := func() *Cluster {
		c, err := NewCluster(switchSpec(), DefaultThermal())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	const dt = 0.05

	// Steady cluster at level 3.
	steady := mk()
	steady.SetLevel(3)
	_, _ = steady.Step(demand, dt)
	rs, _ := steady.Step(demand, dt)

	// Switching cluster: level 2 then level 3.
	switching := mk()
	switching.SetLevel(2)
	_, _ = switching.Step(demand, dt)
	switching.SetLevel(3)
	rw, _ := switching.Step(demand, dt)

	if !rw.Switched {
		t.Fatal("level change not flagged")
	}
	if switching.Switches() != 1 {
		t.Fatalf("switch counter = %d", switching.Switches())
	}
	// 10% of the period stalls: capacity drops by exactly that fraction.
	wantCap := rs.CapacityCycles * (1 - 5e-3/dt)
	if math.Abs(rw.CapacityCycles-wantCap) > 1 {
		t.Fatalf("switch capacity = %v, want %v", rw.CapacityCycles, wantCap)
	}
	// Energy includes the transition overhead; compare at equal completed
	// work fraction is awkward, so check the explicit overhead bound: the
	// switching period must cost at least SwitchEnergyJ minus the energy
	// saved by the stalled cycles.
	if rw.EnergyJ <= rs.EnergyJ*(1-5e-3/dt) {
		t.Fatalf("switch energy %v suspiciously low vs steady %v", rw.EnergyJ, rs.EnergyJ)
	}
}

func TestRepeatedSameLevelDoesNotSwitch(t *testing.T) {
	c, _ := NewCluster(switchSpec(), DefaultThermal())
	c.SetLevel(4)
	for i := 0; i < 10; i++ {
		r, err := c.Step(Demand{Cycles: 1e6, Parallelism: 1}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.Switched {
			t.Fatalf("step %d flagged a switch without a level change", i)
		}
	}
	if c.Switches() != 0 {
		t.Fatalf("switch counter = %d", c.Switches())
	}
}

func TestThermalThrottleTransitionCountsAsSwitch(t *testing.T) {
	th := DefaultThermal()
	th.ThrottleC = 35 // trip quickly
	spec := BigClusterSpec()
	spec.SwitchLatencyS = 1e-3
	c, err := NewCluster(spec, th)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLevel(c.NumLevels() - 1)
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	sawThrottleSwitch := false
	for i := 0; i < 3000; i++ {
		r, err := c.Step(demand, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throttled && r.Switched {
			sawThrottleSwitch = true
			break
		}
	}
	if !sawThrottleSwitch {
		t.Fatal("throttle engagement never registered as a DVFS transition")
	}
}

func TestSwitchLatencyClampedToPeriod(t *testing.T) {
	s := LittleClusterSpec()
	s.SwitchLatencyS = 1 // longer than the period
	c, err := NewCluster(s, DefaultThermal())
	if err != nil {
		t.Fatal(err)
	}
	c.SetLevel(0)
	_, _ = c.Step(Demand{Cycles: 1e6, Parallelism: 1}, 0.05)
	c.SetLevel(5)
	r, err := c.Step(Demand{Cycles: 1e6, Parallelism: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.CapacityCycles != 0 {
		t.Fatalf("capacity = %v, want 0 for a full-period stall", r.CapacityCycles)
	}
	if r.CompletedCycles != 0 || r.Utilization != 0 {
		t.Fatalf("work done during full stall: %+v", r)
	}
}

func TestResetClearsSwitchState(t *testing.T) {
	c, _ := NewCluster(switchSpec(), DefaultThermal())
	c.SetLevel(0)
	_, _ = c.Step(Demand{}, 0.05)
	c.SetLevel(5)
	_, _ = c.Step(Demand{}, 0.05)
	if c.Switches() != 1 {
		t.Fatalf("switches = %d", c.Switches())
	}
	c.Reset()
	if c.Switches() != 0 {
		t.Fatal("Reset did not clear the switch counter")
	}
	// After reset the first step must again be free.
	c.SetLevel(7)
	r, _ := c.Step(Demand{}, 0.05)
	if r.Switched {
		t.Fatal("first step after Reset counted as a switch")
	}
}

func TestZeroCostSwitchesAreFree(t *testing.T) {
	s := LittleClusterSpec()
	s.SwitchLatencyS = 0
	s.SwitchEnergyJ = 0
	c, _ := NewCluster(s, DefaultThermal())
	demand := Demand{Cycles: 1e12, Parallelism: 4}
	c.SetLevel(0)
	_, _ = c.Step(demand, 0.05)
	c.SetLevel(3)
	r, _ := c.Step(demand, 0.05)
	if !r.Switched {
		t.Fatal("switch not flagged")
	}
	wantCap := s.OPPs[3].FreqHz * 0.05 * 4
	if r.CapacityCycles != wantCap {
		t.Fatalf("zero-cost switch lost capacity: %v vs %v", r.CapacityCycles, wantCap)
	}
}
