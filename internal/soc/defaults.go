package soc

// Default specs model an Exynos/Snapdragon-class mobile big.LITTLE MPSoC —
// the platform class the paper evaluates on. The OPP tables follow the
// published cpufreq tables of Cortex-A53/A73-class clusters; capacitance
// and leakage are calibrated so that full-tilt big-cluster power lands near
// 4–5 W and the idle platform floor near 0.5 W, matching typical published
// mobile power breakdowns.

// MHz converts megahertz to Hz.
func MHz(f float64) float64 { return f * 1e6 }

// LittleClusterSpec returns the default LITTLE (efficiency) cluster:
// 4 in-order cores, 8 OPPs from 400 MHz to 1.8 GHz.
func LittleClusterSpec() ClusterSpec {
	return ClusterSpec{
		Name:     "little",
		NumCores: 4,
		OPPs: []OPP{
			{MHz(400), 0.575},
			{MHz(600), 0.600},
			{MHz(800), 0.650},
			{MHz(1000), 0.700},
			{MHz(1200), 0.750},
			{MHz(1400), 0.800},
			{MHz(1600), 0.875},
			{MHz(1800), 0.950},
		},
		CeffF:          0.22e-9,
		LeakA0:         0.012,
		LeakDoubleC:    20,
		SwitchLatencyS: 100e-6,
		SwitchEnergyJ:  0.3e-3,
		IPC:            1.0,
	}
}

// BigClusterSpec returns the default big (performance) cluster: 4
// out-of-order cores, 9 OPPs from 600 MHz to 2.3 GHz.
func BigClusterSpec() ClusterSpec {
	return ClusterSpec{
		Name:     "big",
		NumCores: 4,
		OPPs: []OPP{
			{MHz(600), 0.600},
			{MHz(800), 0.650},
			{MHz(1000), 0.700},
			{MHz(1200), 0.750},
			{MHz(1400), 0.800},
			{MHz(1600), 0.850},
			{MHz(1800), 0.900},
			{MHz(2000), 0.950},
			{MHz(2300), 1.050},
		},
		CeffF:          0.50e-9,
		LeakA0:         0.040,
		LeakDoubleC:    20,
		SwitchLatencyS: 150e-6,
		SwitchEnergyJ:  0.6e-3,
		IPC:            1.7,
	}
}

// DefaultThermal returns the default thermal model: ~12 s time constant,
// throttling at 85 °C down to a mid-table OPP.
func DefaultThermal() ThermalSpec {
	return ThermalSpec{
		AmbientC:   30,
		RthCPerW:   8,
		CthJPerC:   1.5,
		ThrottleC:  85,
		ThrottleLv: 3,
	}
}

// DefaultChipSpec returns the full default MPSoC: LITTLE + big clusters,
// shared thermal spec, and the platform uncore floor.
func DefaultChipSpec() ChipSpec {
	return ChipSpec{
		Clusters:    []ClusterSpec{LittleClusterSpec(), BigClusterSpec()},
		Thermal:     DefaultThermal(),
		UncoreIdleW: 0.25,
		UncoreBusyW: 0.55,
	}
}

// SymmetricChipSpec returns a symmetric 8-core single-cluster variant, used
// to mirror the companion paper's symmetric-multicore evaluation.
func SymmetricChipSpec() ChipSpec {
	spec := LittleClusterSpec()
	spec.Name = "symm"
	spec.NumCores = 8
	spec.CeffF = 0.30e-9
	return ChipSpec{
		Clusters:    []ClusterSpec{spec},
		Thermal:     DefaultThermal(),
		UncoreIdleW: 0.25,
		UncoreBusyW: 0.55,
	}
}

// GPUClusterSpec returns a mobile GPU modeled as a third DVFS domain:
// 8 shader cores with a 5-point OPP table. Its effective capacitance is
// higher than the CPU clusters' (wide SIMD datapaths switch more charge
// per clock), which is why GPU frequency scaling dominates gaming power.
func GPUClusterSpec() ClusterSpec {
	return ClusterSpec{
		Name:     "gpu",
		NumCores: 8,
		OPPs: []OPP{
			{MHz(250), 0.600},
			{MHz(400), 0.650},
			{MHz(550), 0.700},
			{MHz(700), 0.800},
			{MHz(850), 0.900},
		},
		CeffF:          1.10e-9,
		LeakA0:         0.030,
		LeakDoubleC:    20,
		SwitchLatencyS: 200e-6,
		SwitchEnergyJ:  0.8e-3,
		IPC:            1.0,
	}
}

// GPUChipSpec returns the three-domain MPSoC: LITTLE + big CPU clusters
// plus the GPU, each with independent DVFS — the extended platform the
// gaming evaluation uses.
func GPUChipSpec() ChipSpec {
	return ChipSpec{
		Clusters:    []ClusterSpec{LittleClusterSpec(), BigClusterSpec(), GPUClusterSpec()},
		Thermal:     DefaultThermal(),
		UncoreIdleW: 0.25,
		UncoreBusyW: 0.55,
	}
}
