package soc

import "testing"

// TestStepIntoAllocFree pins the steady-state chip step at zero
// allocations: after the first call sizes the reusable ChipStep, every
// subsequent StepInto must run without touching the heap.
func TestStepIntoAllocFree(t *testing.T) {
	ch, err := NewChip(DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	demands := []Demand{{Cycles: 20e6, Parallelism: 2}, {Cycles: 50e6, Parallelism: 4}}
	var res ChipStep
	if err := ch.StepInto(&res, demands, 0.05); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := ch.StepInto(&res, demands, 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Chip.StepInto allocates %.1f times per step, want 0", allocs)
	}
}

// TestClusterStepAllocFree pins the single-cluster step at zero
// allocations.
func TestClusterStepAllocFree(t *testing.T) {
	ch, err := NewChip(DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	cl := ch.Cluster(0)
	d := Demand{Cycles: 20e6, Parallelism: 2}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := cl.Step(d, 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Cluster.Step allocates %.1f times per step, want 0", allocs)
	}
}
