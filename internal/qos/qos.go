// Package qos defines the quality-of-service metric the paper optimizes.
//
// Following the paper's framing (and the companion paper's definition of
// "just enough processing speed to process the requested amount of work"),
// per-period *service ratio* is completed work over demanded work, capped
// at 1. A period with no demand is fully satisfied by definition. A
// *violation* is a critical period (one carrying a user-visible deadline)
// whose service ratio falls below the violation threshold — this is the
// "compromised user satisfaction" the policy must avoid.
//
// Useful QoS distinguishes deadline work from best-effort work: a
// non-critical period contributes its service ratio, while a critical
// period contributes its service ratio only if it met the threshold — a
// frame that missed its deadline is dropped and delivers no quality, no
// matter how much of it was computed. The headline metric is energy per
// unit of useful QoS: total energy divided by accumulated useful QoS, in
// joules per fully-served period.
package qos

import (
	"fmt"
	"math"
)

// DefaultViolationThreshold is the service ratio below which a critical
// period counts as a QoS violation. 0.95 mirrors the common "no more than
// 5% of a frame budget missed" criterion in mobile DVFS studies.
const DefaultViolationThreshold = 0.95

// PeriodQoS returns the service ratio for one period: min(1,
// completed/demanded), or 1 when nothing was demanded. Negative inputs are
// a programming error and panic.
func PeriodQoS(demanded, completed float64) float64 {
	if demanded < 0 || completed < 0 {
		panic(fmt.Sprintf("qos: negative work (demanded=%v completed=%v)", demanded, completed))
	}
	if demanded == 0 {
		return 1
	}
	q := completed / demanded
	if q > 1 {
		q = 1
	}
	return q
}

// Tracker accumulates QoS and energy over a run. The zero value is ready
// to use with the default violation threshold; use NewTracker to override.
type Tracker struct {
	threshold float64

	periods         int
	criticalPeriods int
	violations      int
	totalService    float64 // raw service ratios
	totalQoS        float64 // useful QoS (violated critical periods drop to 0)
	minQoS          float64
	totalEnergyJ    float64
}

// NewTracker returns a Tracker with the given violation threshold in (0,1].
func NewTracker(threshold float64) (*Tracker, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("qos: violation threshold %v out of (0,1]", threshold)
	}
	return &Tracker{threshold: threshold, minQoS: math.Inf(1)}, nil
}

func (t *Tracker) thresholdOrDefault() float64 {
	if t.threshold == 0 {
		return DefaultViolationThreshold
	}
	return t.threshold
}

// Record adds one period. Returns that period's service ratio.
func (t *Tracker) Record(demanded, completed, energyJ float64, critical bool) float64 {
	if energyJ < 0 {
		panic(fmt.Sprintf("qos: negative energy %v", energyJ))
	}
	q := PeriodQoS(demanded, completed)
	t.periods++
	t.totalService += q
	t.totalEnergyJ += energyJ
	if t.periods == 1 || q < t.minQoS {
		t.minQoS = q
	}
	useful := q
	if critical {
		t.criticalPeriods++
		if q < t.thresholdOrDefault() {
			t.violations++
			useful = 0 // the frame missed its deadline: dropped
		}
	}
	t.totalQoS += useful
	return q
}

// Summary is the digest of a run.
type Summary struct {
	Periods         int
	CriticalPeriods int
	Violations      int
	MeanService     float64 // average raw service ratio
	MeanQoS         float64 // average useful QoS (deadline misses count 0)
	MinQoS          float64 // minimum raw service ratio
	TotalQoS        float64 // sum of useful QoS ("served periods")
	TotalEnergyJ    float64
	EnergyPerQoS    float64 // J per fully-served period — the paper's metric
	ViolationRate   float64 // violations / critical periods
}

// Summary returns the current digest.
func (t *Tracker) Summary() Summary {
	s := Summary{
		Periods:         t.periods,
		CriticalPeriods: t.criticalPeriods,
		Violations:      t.violations,
		TotalQoS:        t.totalQoS,
		TotalEnergyJ:    t.totalEnergyJ,
	}
	if t.periods > 0 {
		s.MeanService = t.totalService / float64(t.periods)
		s.MeanQoS = t.totalQoS / float64(t.periods)
		s.MinQoS = t.minQoS
	}
	if t.totalQoS > 0 {
		s.EnergyPerQoS = t.totalEnergyJ / t.totalQoS
	} else if t.totalEnergyJ > 0 {
		s.EnergyPerQoS = math.Inf(1)
	}
	if t.criticalPeriods > 0 {
		s.ViolationRate = float64(t.violations) / float64(t.criticalPeriods)
	}
	return s
}

// Reset clears all accumulators, keeping the threshold.
func (t *Tracker) Reset() {
	th := t.threshold
	*t = Tracker{threshold: th, minQoS: math.Inf(1)}
}
