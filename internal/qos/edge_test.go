package qos

import (
	"math"
	"testing"
)

// Single-sample edge cases: a tracker that saw exactly one period must
// report that period, not an aggregate artifact.
func TestTrackerSinglePeriod(t *testing.T) {
	var tr Tracker
	q := tr.Record(10, 8, 0.5, false)
	if q != 0.8 {
		t.Fatalf("service ratio %v, want 0.8", q)
	}
	s := tr.Summary()
	if s.Periods != 1 || s.MeanService != 0.8 || s.MeanQoS != 0.8 || s.MinQoS != 0.8 {
		t.Fatalf("single-period summary %+v", s)
	}
	if s.EnergyPerQoS != 0.5/0.8 {
		t.Fatalf("energy per QoS %v, want %v", s.EnergyPerQoS, 0.5/0.8)
	}
}

func TestTrackerSingleViolatedPeriod(t *testing.T) {
	var tr Tracker
	tr.Record(10, 1, 2.0, true) // q=0.1 < 0.95: violated critical period
	s := tr.Summary()
	if s.Violations != 1 || s.ViolationRate != 1 {
		t.Fatalf("summary %+v, want one violation at rate 1", s)
	}
	if s.TotalQoS != 0 || s.MeanQoS != 0 {
		t.Fatalf("violated period leaked useful QoS: %+v", s)
	}
	if !math.IsInf(s.EnergyPerQoS, 1) {
		t.Fatalf("energy with zero useful QoS should be +Inf J/QoS, got %v", s.EnergyPerQoS)
	}
	if s.MinQoS != 0.1 {
		t.Fatalf("min raw service ratio %v, want 0.1", s.MinQoS)
	}
}

// The violation comparison is strict: exactly meeting the threshold is not
// a violation.
func TestThresholdBoundaryIsNotViolation(t *testing.T) {
	tr, err := NewTracker(0.9)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	tr.Record(100, 90, 1, true) // q = 0.9 == threshold
	if s := tr.Summary(); s.Violations != 0 {
		t.Fatalf("q == threshold counted as a violation: %+v", s)
	}
	tr.Record(100, 89.999, 1, true) // just below
	if s := tr.Summary(); s.Violations != 1 {
		t.Fatalf("q just below threshold not counted: %+v", s)
	}
}

// Zero-demand periods are fully satisfied by definition — even critical
// ones, even with zero completed work.
func TestZeroDemandPeriods(t *testing.T) {
	var tr Tracker
	if q := tr.Record(0, 0, 0, true); q != 1 {
		t.Fatalf("idle critical period scored %v, want 1", q)
	}
	if q := tr.Record(0, 123, 0, false); q != 1 {
		t.Fatalf("spurious completion with no demand scored %v, want 1", q)
	}
	s := tr.Summary()
	if s.Violations != 0 || s.TotalQoS != 2 || s.MinQoS != 1 {
		t.Fatalf("summary %+v", s)
	}
}

// Over-completion is capped: finishing more than demanded is full service,
// not bonus QoS that could mask violations elsewhere.
func TestOverCompletionCapped(t *testing.T) {
	var tr Tracker
	tr.Record(10, 25, 1, false)
	tr.Record(10, 0, 1, false)
	s := tr.Summary()
	if s.TotalQoS != 1 {
		t.Fatalf("total useful QoS %v, want 1 (capped 1 + 0)", s.TotalQoS)
	}
	if s.MeanService != 0.5 {
		t.Fatalf("mean service %v, want 0.5", s.MeanService)
	}
}

func TestResetClearsSinglePeriodState(t *testing.T) {
	tr, err := NewTracker(0.5)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	tr.Record(10, 1, 5, true)
	tr.Reset()
	s := tr.Summary()
	if s.Periods != 0 || s.Violations != 0 || s.TotalEnergyJ != 0 || s.MinQoS != 0 {
		t.Fatalf("summary after reset %+v", s)
	}
	// Threshold survives the reset.
	tr.Record(10, 4, 1, true) // q=0.4 < 0.5
	if s := tr.Summary(); s.Violations != 1 {
		t.Fatalf("threshold lost across Reset: %+v", s)
	}
}
