package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodQoS(t *testing.T) {
	cases := []struct{ d, c, want float64 }{
		{0, 0, 1},
		{0, 100, 1},
		{100, 100, 1},
		{100, 150, 1}, // over-service caps at 1
		{100, 50, 0.5},
		{100, 0, 0},
	}
	for _, cse := range cases {
		if got := PeriodQoS(cse.d, cse.c); got != cse.want {
			t.Errorf("PeriodQoS(%v,%v) = %v, want %v", cse.d, cse.c, got, cse.want)
		}
	}
}

func TestPeriodQoSPanicsOnNegative(t *testing.T) {
	for _, args := range [][2]float64{{-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PeriodQoS(%v,%v) did not panic", args[0], args[1])
				}
			}()
			PeriodQoS(args[0], args[1])
		}()
	}
}

func TestNewTrackerValidation(t *testing.T) {
	for _, th := range []float64{0, -0.1, 1.01} {
		if _, err := NewTracker(th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
	if _, err := NewTracker(0.9); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueTrackerUsesDefaultThreshold(t *testing.T) {
	var tr Tracker
	tr.Record(100, 94, 1, true) // 0.94 < 0.95 default
	tr.Record(100, 96, 1, true) // 0.96 >= 0.95
	s := tr.Summary()
	if s.Violations != 1 || s.CriticalPeriods != 2 {
		t.Fatalf("summary %+v", s)
	}
}

func TestTrackerAccumulates(t *testing.T) {
	tr, _ := NewTracker(0.9)
	tr.Record(100, 100, 2, true) // QoS 1
	tr.Record(100, 50, 3, false) // QoS 0.5, non-critical: no violation
	tr.Record(100, 80, 5, true)  // QoS 0.8 < 0.9: violation
	tr.Record(0, 0, 1, false)    // idle: QoS 1
	s := tr.Summary()
	if s.Periods != 4 {
		t.Errorf("Periods = %d", s.Periods)
	}
	if s.CriticalPeriods != 2 || s.Violations != 1 {
		t.Errorf("critical/violations = %d/%d", s.CriticalPeriods, s.Violations)
	}
	// Useful QoS drops the violated critical period (0.8) to zero:
	// 1 + 0.5 + 0 + 1 = 2.5; raw service sums to 3.3.
	if s.TotalQoS != 2.5 {
		t.Errorf("TotalQoS = %v", s.TotalQoS)
	}
	if s.TotalEnergyJ != 11 {
		t.Errorf("TotalEnergyJ = %v", s.TotalEnergyJ)
	}
	if math.Abs(s.EnergyPerQoS-11/2.5) > 1e-12 {
		t.Errorf("EnergyPerQoS = %v", s.EnergyPerQoS)
	}
	if math.Abs(s.MeanQoS-2.5/4) > 1e-12 {
		t.Errorf("MeanQoS = %v", s.MeanQoS)
	}
	if math.Abs(s.MeanService-3.3/4) > 1e-12 {
		t.Errorf("MeanService = %v", s.MeanService)
	}
	if s.MinQoS != 0.5 {
		t.Errorf("MinQoS = %v", s.MinQoS)
	}
	if s.ViolationRate != 0.5 {
		t.Errorf("ViolationRate = %v", s.ViolationRate)
	}
}

func TestEmptySummary(t *testing.T) {
	var tr Tracker
	s := tr.Summary()
	if s.Periods != 0 || s.MeanQoS != 0 || s.EnergyPerQoS != 0 || s.ViolationRate != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestZeroQoSWithEnergyIsInf(t *testing.T) {
	var tr Tracker
	tr.Record(100, 0, 5, false)
	s := tr.Summary()
	if !math.IsInf(s.EnergyPerQoS, 1) {
		t.Fatalf("EnergyPerQoS = %v, want +Inf", s.EnergyPerQoS)
	}
}

func TestRecordReturnsQoS(t *testing.T) {
	var tr Tracker
	if got := tr.Record(200, 100, 1, false); got != 0.5 {
		t.Fatalf("Record returned %v", got)
	}
}

func TestRecordPanicsOnNegativeEnergy(t *testing.T) {
	var tr Tracker
	defer func() {
		if recover() == nil {
			t.Fatal("negative energy did not panic")
		}
	}()
	tr.Record(1, 1, -1, false)
}

func TestReset(t *testing.T) {
	tr, _ := NewTracker(0.8)
	tr.Record(100, 10, 4, true)
	tr.Reset()
	s := tr.Summary()
	if s.Periods != 0 || s.TotalEnergyJ != 0 || s.Violations != 0 {
		t.Fatalf("Reset left %+v", s)
	}
	// Threshold survives: 0.85 >= 0.8 is not a violation.
	tr.Record(100, 85, 1, true)
	if got := tr.Summary().Violations; got != 0 {
		t.Fatalf("threshold lost after Reset: violations=%d", got)
	}
}

// Property: QoS per period is always in [0,1] and the tracker's mean stays
// in [0,1].
func TestQoSBoundsProperty(t *testing.T) {
	f := func(pairs []struct{ D, C uint32 }) bool {
		var tr Tracker
		for _, p := range pairs {
			q := tr.Record(float64(p.D), float64(p.C), 0.1, p.D%2 == 0)
			if q < 0 || q > 1 {
				return false
			}
		}
		s := tr.Summary()
		return s.MeanQoS >= 0 && s.MeanQoS <= 1 && s.Violations <= s.CriticalPeriods
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy per QoS is monotone in energy for fixed QoS stream.
func TestEnergyPerQoSMonotoneProperty(t *testing.T) {
	f := func(e1, e2 uint16) bool {
		lo, hi := float64(e1), float64(e1)+float64(e2)+1
		var a, b Tracker
		a.Record(100, 90, lo, false)
		b.Record(100, 90, hi, false)
		return a.Summary().EnergyPerQoS < b.Summary().EnergyPerQoS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
