package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// AblationSwitchCost (A4) sweeps the DVFS transition cost and compares
// how the governors degrade: reactive governors that hop between OPPs
// every few periods pay the stall and ramp energy far more often than the
// learned policy, which settles per state. This is the substrate-realism
// ablation DESIGN.md calls out for the transition-cost design choice.
type AblationSwitchCost struct {
	Rows []SwitchCostRow
}

// SwitchCostRow is one sweep point on the gaming scenario.
type SwitchCostRow struct {
	LatencyUS float64 // switch stall in microseconds
	EnergyMJ  float64 // switch energy in millijoules
	// Per governor: energy-per-QoS and total switch count.
	EnergyPerQoS map[string]float64
	Switches     map[string]uint64
}

// switchGovernors returns the governors compared in the sweep.
func switchGovernorNames() []string {
	return []string{"ondemand", "conservative", "interactive", "rl-policy"}
}

// RunAblationSwitchCost executes the sweep.
func RunAblationSwitchCost(opt Options) (*AblationSwitchCost, error) {
	opt = opt.normalized()
	const scenario = "gaming"
	sweep := []struct {
		latencyUS float64
		energyMJ  float64
	}{
		{0, 0},
		{100, 0.3},
		{500, 1.5},
		{2000, 6.0},
	}
	govNames := switchGovernorNames()
	// One engine cell per (sweep point, governor); each builds its own
	// cost-adjusted chip and scenario.
	cells, err := mapCells(opt, len(sweep)*len(govNames), func(i int) (sim.Result, error) {
		pt := sweep[i/len(govNames)]
		name := govNames[i%len(govNames)]
		spec := soc.DefaultChipSpec()
		for c := range spec.Clusters {
			spec.Clusters[c].SwitchLatencyS = pt.latencyUS * 1e-6
			spec.Clusters[c].SwitchEnergyJ = pt.energyMJ * 1e-3
		}
		chip, err := soc.NewChip(spec)
		if err != nil {
			return sim.Result{}, err
		}
		wspec, err := workload.ByName(scenario)
		if err != nil {
			return sim.Result{}, err
		}
		scen, err := workload.New(wspec, chip.NumClusters(), opt.Seed)
		if err != nil {
			return sim.Result{}, err
		}
		var gov sim.Governor
		if name == "rl-policy" {
			p, err := core.NewPolicy(coreConfig())
			if err != nil {
				return sim.Result{}, err
			}
			if _, err := core.Train(chip, scen, p, opt.simConfig(), opt.TrainEpisodes); err != nil {
				return sim.Result{}, err
			}
			p.SetLearning(false)
			gov = p
		} else {
			gov, err = governor.New(name)
			if err != nil {
				return sim.Result{}, err
			}
		}
		res, err := sim.Run(chip, scen, gov, opt.simConfig())
		if err != nil {
			return sim.Result{}, fmt.Errorf("bench: A4 %s at %vµs: %w", name, pt.latencyUS, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	out := &AblationSwitchCost{}
	for pi, pt := range sweep {
		row := SwitchCostRow{
			LatencyUS:    pt.latencyUS,
			EnergyMJ:     pt.energyMJ,
			EnergyPerQoS: map[string]float64{},
			Switches:     map[string]uint64{},
		}
		for gi, name := range govNames {
			res := cells[pi*len(govNames)+gi]
			row.EnergyPerQoS[name] = res.QoS.EnergyPerQoS
			row.Switches[name] = res.Switches
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteText renders the sweep.
func (a *AblationSwitchCost) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A4: DVFS transition cost vs governor energy/QoS (gaming)")
	writeRule(w, 100)
	fmt.Fprintf(w, "%10s %9s", "stall(µs)", "ramp(mJ)")
	for _, g := range switchGovernorNames() {
		fmt.Fprintf(w, " %12s %9s", g, "switches")
	}
	fmt.Fprintln(w)
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%10.0f %9.1f", r.LatencyUS, r.EnergyMJ)
		for _, g := range switchGovernorNames() {
			fmt.Fprintf(w, " %12s %9d", fmtEQ(r.EnergyPerQoS[g]), r.Switches[g])
		}
		fmt.Fprintln(w)
	}
}
