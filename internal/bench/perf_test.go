package bench

import "testing"

// Hot-path benchmarks (bodies in perf.go, shared with cmd/pmperf).

func BenchmarkClusterStep(b *testing.B)  { BenchClusterStep(b) }
func BenchmarkChipStepInto(b *testing.B) { BenchChipStepInto(b) }
func BenchmarkAgentStep(b *testing.B)    { BenchAgentStep(b) }

func BenchmarkSimRun(b *testing.B) {
	for _, name := range PerfGovernors() {
		b.Run(name, BenchSimRun(name))
	}
}

func BenchmarkEngineQuickAll(b *testing.B) { BenchEngineQuickAll(b) }
