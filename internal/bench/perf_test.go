package bench

import (
	"fmt"
	"testing"
)

// Hot-path benchmarks (bodies in perf.go, shared with cmd/pmperf).

func BenchmarkClusterStep(b *testing.B)  { BenchClusterStep(b) }
func BenchmarkChipStepInto(b *testing.B) { BenchChipStepInto(b) }
func BenchmarkAgentStep(b *testing.B)    { BenchAgentStep(b) }

func BenchmarkSimRun(b *testing.B) {
	for _, name := range PerfGovernors() {
		b.Run(name, BenchSimRun(name))
	}
}

func BenchmarkPointerLookup(b *testing.B) {
	for _, batch := range []int{32, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), BenchPointerLookup(batch))
	}
}

func BenchmarkFlatLookup(b *testing.B) {
	for _, batch := range []int{32, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), BenchFlatLookup(batch))
	}
}

// TestLookupBenchLayoutsAgree pins the two lookup benchmark bodies to the
// same answers — the microbenchmark compares layouts, not policies.
func TestLookupBenchLayoutsAgree(t *testing.T) {
	tables, ft, lk := lookupBenchFixture(512)
	if ft == nil {
		t.Fatal("flat tables rejected the benchmark shape")
	}
	keys := make([]uint64, len(lk))
	out := make([]int, len(lk))
	for j, l := range lk {
		keys[j] = ft.Key(l.c, l.s, j)
	}
	ft.LookupManyInto(keys, out, ft.NewMemo())
	for j, l := range lk {
		row := tables[l.c][l.s]
		idx, best := 0, row[0]
		for a := 1; a < len(row); a++ {
			if row[a] > best {
				idx, best = a, row[a]
			}
		}
		if out[j] != idx {
			t.Fatalf("lookup %d (cluster %d state %d): flat=%d pointer=%d", j, l.c, l.s, out[j], idx)
		}
	}
}

// TestFlatLookupBenchAllocFree pins the flat benchmark body's steady state
// at zero allocations per batch.
func TestFlatLookupBenchAllocFree(t *testing.T) {
	_, ft, lk := lookupBenchFixture(256)
	if ft == nil {
		t.Fatal("flat tables rejected the benchmark shape")
	}
	memo := ft.NewMemo()
	keys := make([]uint64, len(lk))
	out := make([]int, len(lk))
	if n := testing.AllocsPerRun(100, func() {
		for j, l := range lk {
			keys[j] = ft.Key(l.c, l.s, j)
		}
		ft.LookupManyInto(keys, out, memo)
	}); n != 0 {
		t.Fatalf("flat lookup batch allocates %v times per run, want 0", n)
	}
}

func BenchmarkEngineQuickAll(b *testing.B) { BenchEngineQuickAll(b) }
