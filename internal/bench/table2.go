package bench

import (
	"fmt"
	"io"
	"time"

	"rlpm/internal/bench/engine"
	"rlpm/internal/bus"
	"rlpm/internal/hwpolicy"
)

// Table2 reproduces the decision-latency comparison between the
// software-implemented and hardware-implemented policy.
//
// Paper claims: decision-making by the hardware policy is 3.92× faster
// than by the software policy (journal), and the hardware implementation
// reduces the average latency by up to 40× (LBR) once the software
// invocation path is counted.
type Table2 struct {
	SWDecision time.Duration
	SWTotal    time.Duration
	SWTail     time.Duration
	HWCompute  time.Duration
	HWTotal    time.Duration

	SpeedupDecision float64 // paper: 3.92×
	SpeedupTotal    float64
	SpeedupTail     float64 // paper: up to 40×

	// MeasuredSimLatency is the mean MMIO-transaction latency observed
	// while the hardware policy drove a full closed-loop simulation —
	// cross-checks the single-transaction analysis.
	MeasuredSimLatency time.Duration
	Decisions          uint64

	// Batched3 is the latency of deciding all three DVFS domains of the
	// GPU chip in one multi-channel transaction; Sequential3 is the cost
	// of three single-channel transactions — the extension showing the
	// interface amortizes with domain count.
	Batched3    time.Duration
	Sequential3 time.Duration
}

// RunTable2 executes the experiment. Its three analyses — the
// single-transaction comparison, the closed-loop cross-check, and the
// multi-channel extension — are independent cells and run on the engine.
func RunTable2(opt Options) (*Table2, error) {
	opt = opt.normalized()

	var (
		cmp        hwpolicy.Comparison
		decisions  uint64
		mean       time.Duration
		batched    time.Duration
		sequential time.Duration
	)
	chParams := []hwpolicy.Params{
		{NumStates: 768, NumActions: 8, Banks: 4, LFSRSeed: 0xACE1},
		{NumStates: 864, NumActions: 9, Banks: 4, LFSRSeed: 0xACE3},
		{NumStates: 480, NumActions: 5, Banks: 2, LFSRSeed: 0xACE5},
	}
	cells := []engine.Cell{
		{ID: "t2/single-transaction", Run: func() error {
			accel, err := hwpolicy.New(hwpolicy.DefaultParams())
			if err != nil {
				return err
			}
			driver, err := hwpolicy.NewDriver(bus.DefaultConfig(), accel)
			if err != nil {
				return err
			}
			cmp, err = hwpolicy.Compare(hwpolicy.DefaultSWLatency(), driver)
			return err
		}},
		{ID: "t2/closed-loop", Run: func() error {
			// Cross-check with a closed-loop run of the hardware governor.
			gov, err := hwpolicy.NewGovernor(coreConfig(), bus.DefaultConfig(), hwpolicy.DefaultParams().Banks)
			if err != nil {
				return err
			}
			chip, err := newChip()
			if err != nil {
				return err
			}
			scen, err := newScenario("gaming", opt.Seed)
			if err != nil {
				return err
			}
			cfg := opt.simConfig()
			if cfg.DurationS > 30 {
				cfg.DurationS = 30 // latency statistics converge quickly
			}
			if _, err := simRun(chip, scen, gov, cfg); err != nil {
				return err
			}
			decisions, mean, _ = gov.LatencyStats()
			return nil
		}},
		{ID: "t2/multi-channel", Run: func() error {
			// Multi-channel extension: three domains in one conversation.
			multi, err := hwpolicy.NewMulti(chParams)
			if err != nil {
				return err
			}
			md, err := hwpolicy.NewMultiDriver(bus.DefaultConfig(), multi)
			if err != nil {
				return err
			}
			if _, batched, err = md.StepAll([]int{0, 0, 0}, []float64{0, 0, 0}); err != nil {
				return err
			}
			for _, p := range chParams {
				a, err := hwpolicy.New(p)
				if err != nil {
					return err
				}
				sd, err := hwpolicy.NewDriver(bus.DefaultConfig(), a)
				if err != nil {
					return err
				}
				_, lat, err := sd.Step(0, 0)
				if err != nil {
					return err
				}
				sequential += lat
			}
			return nil
		}},
	}
	if err := engine.Run(opt.Parallel, cells); err != nil {
		return nil, err
	}

	return &Table2{
		SWDecision:         cmp.SWDecision,
		SWTotal:            cmp.SWTotal,
		SWTail:             cmp.SWTail,
		HWCompute:          cmp.HWDecision,
		HWTotal:            cmp.HWTotal,
		SpeedupDecision:    cmp.SpeedupDecision,
		SpeedupTotal:       cmp.SpeedupTotal,
		SpeedupTail:        cmp.SpeedupTail,
		MeasuredSimLatency: mean,
		Decisions:          decisions,
		Batched3:           batched,
		Sequential3:        sequential,
	}, nil
}

// WriteText renders the table.
func (t *Table2) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Table 2: policy decision latency, software vs hardware implementation")
	writeRule(w, 72)
	fmt.Fprintf(w, "  software decision kernel             %10v\n", t.SWDecision)
	fmt.Fprintf(w, "  software incl. mean invocation path  %10v\n", t.SWTotal)
	fmt.Fprintf(w, "  software incl. tail invocation path  %10v\n", t.SWTail)
	fmt.Fprintf(w, "  hardware compute (accelerator only)  %10v\n", t.HWCompute)
	fmt.Fprintf(w, "  hardware full MMIO transaction       %10v\n", t.HWTotal)
	writeRule(w, 72)
	fmt.Fprintf(w, "  decision speedup (HW vs SW kernel)     %6.2fx   (paper: 3.92x)\n", t.SpeedupDecision)
	fmt.Fprintf(w, "  average latency reduction              %6.2fx\n", t.SpeedupTotal)
	fmt.Fprintf(w, "  latency reduction, loaded-system tail  %6.2fx   (paper: up to 40x)\n", t.SpeedupTail)
	fmt.Fprintf(w, "  closed-loop cross-check: %d decisions at mean %v per MMIO transaction\n",
		t.Decisions, t.MeasuredSimLatency)
	fmt.Fprintf(w, "  multi-channel extension (3 DVFS domains): %v batched vs %v sequential (%.2fx)\n",
		t.Batched3, t.Sequential3, float64(t.Sequential3)/float64(t.Batched3))
}
