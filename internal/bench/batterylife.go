package bench

import (
	"fmt"
	"io"

	"rlpm/internal/battery"
)

// BatteryLife converts the Fig. 3 energy numbers into the user-facing
// quantity: hours of battery life per scenario under each governor, using
// the default 4000 mAh cell model. This is the motivation table the
// paper's introduction gestures at ("lower energy consumption without
// compromising the user satisfaction").
type BatteryLife struct {
	Scenarios []string
	Governors []string
	// Hours[scenario][governor].
	Hours map[string]map[string]float64
	// ExtraMinutesVsOndemand[scenario] for the RL policy.
	ExtraMinutesVsOndemand map[string]float64
}

// RunBatteryLife executes the experiment (reuses the Fig. 3 runs).
func RunBatteryLife(opt Options) (*BatteryLife, error) {
	opt = opt.normalized()
	f3, err := RunFig3(opt)
	if err != nil {
		return nil, err
	}
	spec := battery.DefaultSpec()
	out := &BatteryLife{
		Scenarios:              f3.Scenarios,
		Governors:              f3.Governors,
		Hours:                  map[string]map[string]float64{},
		ExtraMinutesVsOndemand: map[string]float64{},
	}
	for _, sc := range f3.Scenarios {
		out.Hours[sc] = map[string]float64{}
		for _, g := range f3.Governors {
			meanPowerW := f3.EnergyJ[sc][g] / opt.DurationS
			h, err := battery.LifeHours(spec, meanPowerW)
			if err != nil {
				return nil, fmt.Errorf("bench: battery life %s/%s: %w", sc, g, err)
			}
			out.Hours[sc][g] = h
		}
		out.ExtraMinutesVsOndemand[sc] = 60 * (out.Hours[sc]["rl-policy"] - out.Hours[sc]["ondemand"])
	}
	return out, nil
}

// WriteText renders the table.
func (b *BatteryLife) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Battery life: hours on a 4000 mAh cell per scenario (higher is better)")
	writeRule(w, 104)
	fmt.Fprintf(w, "%-10s", "scenario")
	for _, g := range b.Governors {
		fmt.Fprintf(w, " %12s", g)
	}
	fmt.Fprintf(w, " %12s\n", "vs ondemand")
	for _, sc := range b.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range b.Governors {
			fmt.Fprintf(w, " %11.1fh", b.Hours[sc][g])
		}
		fmt.Fprintf(w, " %+9.0f min\n", b.ExtraMinutesVsOndemand[sc])
	}
}
