package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/qos"
	"rlpm/internal/sim"
)

// AblationObsNoise (A6) sweeps utilization-sampling noise. Real cpufreq
// accounting is noisy (tick quantization, idle bookkeeping, aliasing); in
// simulation the baselines see perfect samples, which makes them stronger
// than their real-platform counterparts and compresses the improvement
// numbers relative to the paper (see EXPERIMENTS.md). This ablation makes
// that argument quantitative: as observation noise grows, the reactive
// governors' proportional rules mis-track while the RL policy's coarse
// state bins absorb the noise.
type AblationObsNoise struct {
	Rows []NoiseRow
}

// NoiseRow is one sweep point on gaming.
type NoiseRow struct {
	NoiseCV float64
	// EnergyPerQoS and ViolationRate per governor.
	EnergyPerQoS  map[string]float64
	ViolationRate map[string]float64
}

func noiseGovernorNames() []string {
	return []string{"ondemand", "conservative", "interactive", "rl-policy"}
}

// RunAblationObsNoise executes the sweep.
func RunAblationObsNoise(opt Options) (*AblationObsNoise, error) {
	opt = opt.normalized()
	const scenario = "gaming"
	cvs := []float64{0, 0.15, 0.30, 0.50}
	govNames := noiseGovernorNames()
	// One engine cell per (noise level, governor).
	cells, err := mapCells(opt, len(cvs)*len(govNames), func(i int) (qos.Summary, error) {
		cv := cvs[i/len(govNames)]
		name := govNames[i%len(govNames)]
		simCfg := opt.simConfig()
		simCfg.ObsNoiseCV = cv
		chip, err := newChip()
		if err != nil {
			return qos.Summary{}, err
		}
		scen, err := newScenario(scenario, opt.Seed)
		if err != nil {
			return qos.Summary{}, err
		}
		var gov sim.Governor
		if name == "rl-policy" {
			// The policy trains under the same noise it is evaluated
			// with — online learning sees what the deployment sees.
			p, err := core.NewPolicy(coreConfig())
			if err != nil {
				return qos.Summary{}, err
			}
			trainCfg := simCfg
			for ep := 0; ep < opt.TrainEpisodes; ep++ {
				c := trainCfg
				c.Seed = trainCfg.Seed + uint64(ep)*0x9e3779b9
				if _, err := sim.Run(chip, scen, p, c); err != nil {
					return qos.Summary{}, err
				}
			}
			p.SetLearning(false)
			gov = p
		} else {
			gov, err = governor.New(name)
			if err != nil {
				return qos.Summary{}, err
			}
		}
		res, err := sim.Run(chip, scen, gov, simCfg)
		if err != nil {
			return qos.Summary{}, fmt.Errorf("bench: A6 %s at cv=%v: %w", name, cv, err)
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}

	out := &AblationObsNoise{}
	for ci, cv := range cvs {
		row := NoiseRow{
			NoiseCV:       cv,
			EnergyPerQoS:  map[string]float64{},
			ViolationRate: map[string]float64{},
		}
		for gi, name := range govNames {
			s := cells[ci*len(govNames)+gi]
			row.EnergyPerQoS[name] = s.EnergyPerQoS
			row.ViolationRate[name] = s.ViolationRate
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteText renders the sweep.
func (a *AblationObsNoise) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A6: utilization-sampling noise vs governor quality (gaming)")
	writeRule(w, 108)
	fmt.Fprintf(w, "%8s", "noiseCV")
	for _, g := range noiseGovernorNames() {
		fmt.Fprintf(w, " %12s %9s", g, "viol")
	}
	fmt.Fprintln(w)
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%8.2f", r.NoiseCV)
		for _, g := range noiseGovernorNames() {
			fmt.Fprintf(w, " %12s %9.4f", fmtEQ(r.EnergyPerQoS[g]), r.ViolationRate[g])
		}
		fmt.Fprintln(w)
	}
}
