package bench

import (
	"fmt"
	"io"
)

// Renderable is what every experiment produces: a table or figure that
// renders itself as text. Figures additionally implement CSVWriter.
type Renderable interface {
	WriteText(io.Writer)
}

// CSVWriter is implemented by figure results that can emit their series
// for plotting (Fig2, Fig4).
type CSVWriter interface {
	WriteCSV(io.Writer) error
}

// Experiment is one entry of the evaluation: an id (the -exp selector in
// cmd/pmbench), a human title, and the runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (Renderable, error)
}

// Experiments returns the full evaluation in canonical order — the order
// `pmbench -exp all` runs and EXPERIMENTS.md documents. Every experiment
// fans its evaluation cells out over the engine according to
// Options.Parallel, and every one is deterministic in (Options, id):
// the determinism suite asserts parallel == serial output for each entry.
func Experiments() []Experiment {
	return []Experiment{
		{"t1", "Table 1: energy/QoS vs six governors", func(o Options) (Renderable, error) { return RunTable1(o) }},
		{"t2", "Table 2: SW vs HW decision latency", func(o Options) (Renderable, error) { return RunTable2(o) }},
		{"t3", "Table 3: FPGA resource estimates", func(o Options) (Renderable, error) { return RunTable3(o) }},
		{"f2", "Fig. 2: learning convergence", func(o Options) (Renderable, error) { return RunFig2(o) }},
		{"f3", "Fig. 3: energy & QoS bars", func(o Options) (Renderable, error) { return RunFig3(o) }},
		{"f4", "Fig. 4: trace summary", func(o Options) (Renderable, error) { return RunFig4(o) }},
		{"a1", "Ablation A1: state-space granularity", func(o Options) (Renderable, error) { return RunAblationStateBins(o) }},
		{"a2", "Ablation A2: Q-table precision", func(o Options) (Renderable, error) { return RunAblationPrecision(o) }},
		{"a3", "Ablation A3: violation penalty λ", func(o Options) (Renderable, error) { return RunAblationLambda(o) }},
		{"a4", "Ablation A4: DVFS transition cost", func(o Options) (Renderable, error) { return RunAblationSwitchCost(o) }},
		{"a5", "Ablation A5: TD algorithm", func(o Options) (Renderable, error) { return RunAblationAlgorithm(o) }},
		{"a6", "Ablation A6: observation noise", func(o Options) (Renderable, error) { return RunAblationObsNoise(o) }},
		{"oracle", "Oracle: best static OPP pin", func(o Options) (Renderable, error) { return RunOracleStatic(o) }},
		{"life", "Battery-life projection", func(o Options) (Renderable, error) { return RunBatteryLife(o) }},
		{"symm", "Symmetric 8-core chip evaluation", func(o Options) (Renderable, error) { return RunSymmetric(o) }},
		{"gpu", "Three-domain (LITTLE+big+GPU) evaluation", func(o Options) (Renderable, error) { return RunGPUDomain(o) }},
		{"seeds", "Table 1 over 5 seeds (mean ± CI)", func(o Options) (Renderable, error) { return RunTable1Seeds(o, 5) }},
		{"faults", "Faults: HW path under injected faults", func(o Options) (Renderable, error) { return RunFaults(o) }},
	}
}

// ExperimentIDs returns the ids in canonical order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentByID looks an experiment up by its id.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
