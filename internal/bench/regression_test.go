package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFig4RenderOrderDeterministic is the regression test for the Fig. 4
// map-iteration bug: WriteText used to range over a
// map[string]*trace.Recorder, so the rl-policy and ondemand lines came out
// in whatever order the runtime hashed that run — different bytes from the
// same result. The render now walks an ordered slice; repeated renders
// must be byte-identical with rl-policy first.
func TestFig4RenderOrderDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the RL policy")
	}
	f, err := RunFig4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	f.WriteText(&first)
	// Map iteration order varies between range statements, not just
	// processes — re-rendering the same value many times is an effective
	// probe even in a single test binary.
	for i := 0; i < 16; i++ {
		var again bytes.Buffer
		f.WriteText(&again)
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs from render 0:\n%s\nvs\n%s", i+1, &first, &again)
		}
	}
	out := first.String()
	rl := strings.Index(out, "rl-policy")
	od := strings.Index(out, "ondemand")
	if rl < 0 || od < 0 {
		t.Fatalf("expected both governor lines in output:\n%s", out)
	}
	if rl > od {
		t.Errorf("rl-policy line must render before ondemand:\n%s", out)
	}
}
