package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/qos"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// AblationAlgorithm (A5) compares the TD update rules — Q-learning (the
// paper's choice, hardware-friendly), SARSA, and Double Q-learning — on
// gaming and video with equal training budgets.
type AblationAlgorithm struct {
	Rows []AlgorithmRow
}

// AlgorithmRow is one algorithm's results.
type AlgorithmRow struct {
	Algorithm     core.Algorithm
	GamingEQ      float64
	VideoEQ       float64
	GamingViol    float64
	VideoViol     float64
	TablesPerAgnt int // memory cost in Q-tables (the HW argument)
}

// RunAblationAlgorithm executes the comparison, one engine cell per
// (algorithm, scenario) train-and-evaluate pair.
func RunAblationAlgorithm(opt Options) (*AblationAlgorithm, error) {
	opt = opt.normalized()
	algos := []core.Algorithm{core.QLearning, core.SARSA, core.DoubleQ}
	scenarios := []string{"gaming", "video"}
	cells, err := mapCells(opt, len(algos)*len(scenarios), func(i int) (qos.Summary, error) {
		algo := algos[i/len(scenarios)]
		scenario := scenarios[i%len(scenarios)]
		cfg := coreConfig()
		cfg.Algorithm = algo
		p, err := trainedPolicy(scenario, opt, cfg)
		if err != nil {
			return qos.Summary{}, fmt.Errorf("bench: A5 %s on %s: %w", algo, scenario, err)
		}
		res, err := evalGovernor(scenario, p, opt)
		if err != nil {
			return qos.Summary{}, err
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationAlgorithm{}
	for ai, algo := range algos {
		row := AlgorithmRow{Algorithm: algo, TablesPerAgnt: 1}
		if algo == core.DoubleQ {
			row.TablesPerAgnt = 2
		}
		gaming := cells[ai*len(scenarios)]
		video := cells[ai*len(scenarios)+1]
		row.GamingEQ, row.GamingViol = gaming.EnergyPerQoS, gaming.ViolationRate
		row.VideoEQ, row.VideoViol = video.EnergyPerQoS, video.ViolationRate
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteText renders the comparison.
func (a *AblationAlgorithm) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A5: TD algorithm vs policy quality (equal training budget)")
	writeRule(w, 84)
	fmt.Fprintf(w, "%-12s %12s %10s %12s %10s %8s\n",
		"algorithm", "gaming E/QoS", "viol", "video E/QoS", "viol", "tables")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-12s %12.4f %10.4f %12.4f %10.4f %8d\n",
			r.Algorithm, r.GamingEQ, r.GamingViol, r.VideoEQ, r.VideoViol, r.TablesPerAgnt)
	}
}

// Symmetric runs the companion-paper evaluation on the symmetric 8-core
// chip: the same governor comparison but with a single cluster, mirroring
// the "symmetric multicore CPU" results (maximum 30.7% energy saving in
// that paper).
type Symmetric struct {
	Scenarios []string
	Governors []string
	// EnergyPerQoS[scenario][governor].
	EnergyPerQoS  map[string]map[string]float64
	ViolationRate map[string]map[string]float64
	AvgImprovePct float64
}

// RunSymmetric executes the experiment.
func RunSymmetric(opt Options) (*Symmetric, error) {
	opt = opt.normalized()
	out := &Symmetric{
		EnergyPerQoS:  map[string]map[string]float64{},
		ViolationRate: map[string]map[string]float64{},
	}
	baseNames := governor.BaselineNames()
	out.Governors = append(out.Governors, baseNames...)
	out.Governors = append(out.Governors, "rl-policy")
	out.Scenarios = scenarioNames()

	mk := func() (*soc.Chip, error) { return soc.NewChip(soc.SymmetricChipSpec()) }
	mkScen := func(name string) (workload.Scenario, error) {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		return workload.New(spec, 1, opt.Seed)
	}
	run := func(sc string, gov sim.Governor) (sim.Result, error) {
		chip, err := mk()
		if err != nil {
			return sim.Result{}, err
		}
		scen, err := mkScen(sc)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(chip, scen, gov, opt.simConfig())
	}

	// One engine cell per (scenario, governor), RL cell last per scenario.
	nGov := len(baseNames) + 1
	cells, err := mapCells(opt, len(out.Scenarios)*nGov, func(i int) (qos.Summary, error) {
		sc := out.Scenarios[i/nGov]
		gi := i % nGov
		if gi == len(baseNames) {
			// RL: train on the symmetric chip, then evaluate frozen.
			chip, err := mk()
			if err != nil {
				return qos.Summary{}, err
			}
			scen, err := mkScen(sc)
			if err != nil {
				return qos.Summary{}, err
			}
			p, err := core.NewPolicy(coreConfig())
			if err != nil {
				return qos.Summary{}, err
			}
			if _, err := core.Train(chip, scen, p, opt.simConfig(), opt.TrainEpisodes); err != nil {
				return qos.Summary{}, err
			}
			p.SetLearning(false)
			res, err := run(sc, p)
			if err != nil {
				return qos.Summary{}, err
			}
			return res.QoS, nil
		}
		g, err := governor.New(baseNames[gi])
		if err != nil {
			return qos.Summary{}, err
		}
		res, err := run(sc, g)
		if err != nil {
			return qos.Summary{}, fmt.Errorf("bench: symm %s/%s: %w", sc, baseNames[gi], err)
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}

	var imps []float64
	for si, sc := range out.Scenarios {
		out.EnergyPerQoS[sc] = map[string]float64{}
		out.ViolationRate[sc] = map[string]float64{}
		for gi, gov := range out.Governors {
			s := cells[si*nGov+gi]
			out.EnergyPerQoS[sc][gov] = s.EnergyPerQoS
			out.ViolationRate[sc][gov] = s.ViolationRate
		}
		rl := cells[si*nGov+len(baseNames)]
		for _, name := range baseNames {
			imps = append(imps, improvementPct(out.EnergyPerQoS[sc][name], rl.EnergyPerQoS))
		}
	}
	var sum float64
	for _, v := range imps {
		sum += v
	}
	if len(imps) > 0 {
		out.AvgImprovePct = sum / float64(len(imps))
	}
	return out, nil
}

// WriteText renders the table.
func (s *Symmetric) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Symmetric 8-core chip: energy per unit QoS (companion-paper setting)")
	writeRule(w, 96)
	fmt.Fprintf(w, "%-10s", "scenario")
	for _, g := range s.Governors {
		fmt.Fprintf(w, " %12s", g)
	}
	fmt.Fprintln(w)
	for _, sc := range s.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range s.Governors {
			fmt.Fprintf(w, " %12s", fmtEQ(s.EnergyPerQoS[sc][g]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Average capped improvement vs the six governors: %.2f%%\n", s.AvgImprovePct)
}
