package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/qos"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// GPUDomain evaluates the governors on the three-domain chip
// (LITTLE + big + GPU), the extension platform where gaming power is
// GPU-dominated. The policy architecture is domain-count agnostic — one
// Q-learning agent per DVFS domain — so the same code scales from the
// paper's two CPU clusters to three domains without change.
type GPUDomain struct {
	Scenarios []string
	Governors []string
	// EnergyPerQoS[scenario][governor].
	EnergyPerQoS  map[string]map[string]float64
	ViolationRate map[string]map[string]float64
	AvgImprovePct float64
}

// gpuScenarios are the GPU-exercising evaluation scenarios.
func gpuScenarios() []string { return []string{"browsing", "video", "gaming", "camera"} }

// RunGPUDomain executes the experiment.
func RunGPUDomain(opt Options) (*GPUDomain, error) {
	opt = opt.normalized()
	out := &GPUDomain{
		Scenarios:     gpuScenarios(),
		EnergyPerQoS:  map[string]map[string]float64{},
		ViolationRate: map[string]map[string]float64{},
	}
	baseNames := governor.BaselineNames()
	out.Governors = append(out.Governors, baseNames...)
	out.Governors = append(out.Governors, "rl-policy")

	mkChip := func() (*soc.Chip, error) { return soc.NewChip(soc.GPUChipSpec()) }
	mkScen := func(name string) (workload.Scenario, error) {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		return workload.New(spec, 3, opt.Seed)
	}
	run := func(sc string, gov sim.Governor) (sim.Result, error) {
		chip, err := mkChip()
		if err != nil {
			return sim.Result{}, err
		}
		scen, err := mkScen(sc)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(chip, scen, gov, opt.simConfig())
	}

	// One engine cell per (scenario, governor), RL cell last per scenario.
	nGov := len(baseNames) + 1
	cells, err := mapCells(opt, len(out.Scenarios)*nGov, func(i int) (qos.Summary, error) {
		sc := out.Scenarios[i/nGov]
		gi := i % nGov
		if gi == len(baseNames) {
			chip, err := mkChip()
			if err != nil {
				return qos.Summary{}, err
			}
			scen, err := mkScen(sc)
			if err != nil {
				return qos.Summary{}, err
			}
			p, err := core.NewPolicy(coreConfig())
			if err != nil {
				return qos.Summary{}, err
			}
			if _, err := core.Train(chip, scen, p, opt.simConfig(), opt.TrainEpisodes); err != nil {
				return qos.Summary{}, err
			}
			p.SetLearning(false)
			res, err := run(sc, p)
			if err != nil {
				return qos.Summary{}, err
			}
			return res.QoS, nil
		}
		g, err := governor.New(baseNames[gi])
		if err != nil {
			return qos.Summary{}, err
		}
		res, err := run(sc, g)
		if err != nil {
			return qos.Summary{}, fmt.Errorf("bench: gpu %s/%s: %w", sc, baseNames[gi], err)
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}

	var imps []float64
	for si, sc := range out.Scenarios {
		out.EnergyPerQoS[sc] = map[string]float64{}
		out.ViolationRate[sc] = map[string]float64{}
		for gi, gov := range out.Governors {
			s := cells[si*nGov+gi]
			out.EnergyPerQoS[sc][gov] = s.EnergyPerQoS
			out.ViolationRate[sc][gov] = s.ViolationRate
		}
		rl := cells[si*nGov+len(baseNames)]
		for _, name := range baseNames {
			imps = append(imps, improvementPct(out.EnergyPerQoS[sc][name], rl.EnergyPerQoS))
		}
	}
	var sum float64
	for _, v := range imps {
		sum += v
	}
	if len(imps) > 0 {
		out.AvgImprovePct = sum / float64(len(imps))
	}
	return out, nil
}

// WriteText renders the table.
func (g *GPUDomain) WriteText(w io.Writer) {
	fmt.Fprintln(w, "GPU-domain chip (LITTLE + big + GPU): energy per unit QoS")
	writeRule(w, 96)
	fmt.Fprintf(w, "%-10s", "scenario")
	for _, gov := range g.Governors {
		fmt.Fprintf(w, " %12s", gov)
	}
	fmt.Fprintln(w)
	for _, sc := range g.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, gov := range g.Governors {
			fmt.Fprintf(w, " %12s", fmtEQ(g.EnergyPerQoS[sc][gov]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "violation rates:")
	for _, sc := range g.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, gov := range g.Governors {
			fmt.Fprintf(w, " %12.4f", g.ViolationRate[sc][gov])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Average capped improvement vs the six governors: %.2f%%\n", g.AvgImprovePct)
}
