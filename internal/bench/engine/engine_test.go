package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rlpm/internal/rng"
)

func TestParallelismDefaults(t *testing.T) {
	if got := Parallelism(0); got < 1 {
		t.Fatalf("Parallelism(0) = %d", got)
	}
	if got := Parallelism(-3); got != Parallelism(0) {
		t.Fatalf("negative request %d != default %d", got, Parallelism(0))
	}
	if got := Parallelism(7); got != 7 {
		t.Fatalf("explicit request = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 64} {
		got, err := Map(parallel, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("parallel=%d: %d results", parallel, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d", parallel, i, v)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	if _, err := Map(4, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative cell count accepted")
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	// The engine-level determinism guarantee: same fn, same n, any worker
	// count → identical result slice. Each cell derives randomness only
	// from its own stream.
	cell := func(i int) (uint64, error) {
		r := rng.New(CellSeed(42, fmt.Sprintf("cell-%d", i)))
		var sum uint64
		for k := 0; k < 1000; k++ {
			sum += r.Uint64()
		}
		return sum, nil
	}
	serial, err := Map(1, 64, cell)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4, 16} {
		par, err := Map(parallel, 64, cell)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("parallel=%d: cell %d diverged: %d vs %d", parallel, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorLowestIndexWins(t *testing.T) {
	boom3 := errors.New("cell 3 failed")
	boom7 := errors.New("cell 7 failed")
	_, err := Map(8, 16, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, boom3
		case 7:
			return 0, boom7
		}
		return i, nil
	})
	if !errors.Is(err, boom3) {
		t.Fatalf("want lowest-indexed error, got %v", err)
	}
	// Serial path: first error aborts immediately.
	calls := 0
	_, err = Map(1, 16, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, boom3
		}
		return i, nil
	})
	if !errors.Is(err, boom3) || calls != 4 {
		t.Fatalf("serial error path: err=%v calls=%d", err, calls)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 50, func(i int) (struct{}, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		// Busy-hand-off so other workers get a chance to overlap.
		for k := 0; k < 1000; k++ {
			_ = k
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells with %d workers", p, workers)
	}
}

func TestRunCellsMergeInOrder(t *testing.T) {
	out := make([]string, 4)
	cells := make([]Cell, 4)
	for i := range cells {
		i := i
		cells[i] = Cell{
			ID:  fmt.Sprintf("cell/%d", i),
			Run: func() error { out[i] = fmt.Sprintf("r%d", i); return nil },
		}
	}
	if err := Run(2, cells); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
}

func TestRunCellErrorNamesCell(t *testing.T) {
	cells := []Cell{
		{ID: "ok", Run: func() error { return nil }},
		{ID: "t1/gaming/ondemand", Run: func() error { return errors.New("sim blew up") }},
	}
	err := Run(4, cells)
	if err == nil {
		t.Fatal("error swallowed")
	}
	if want := "t1/gaming/ondemand: sim blew up"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

func TestCellSeedStableAndDistinct(t *testing.T) {
	// Pinned values: cell seeds feed every experiment's RNG streams, so a
	// silent change here would shift all randomized results.
	if got := CellSeed(1, "t1/gaming/ondemand"); got != CellSeed(1, "t1/gaming/ondemand") {
		t.Fatal("CellSeed not stable")
	}
	seen := map[uint64]string{}
	for _, id := range []string{"a", "b", "t1/gaming/rl", "t1/gaming/ondemand", ""} {
		for _, seed := range []uint64{0, 1, 42} {
			s := CellSeed(seed, id)
			key := fmt.Sprintf("%d/%s", seed, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestMapStressRace(t *testing.T) {
	// Many tiny cells under `go test -race`: every cell hammers its own
	// RNG and result slot; any accidental sharing trips the detector.
	const cells = 512
	got, err := Map(16, cells, func(i int) (float64, error) {
		r := rng.NewStream(uint64(i), 7)
		var acc float64
		for k := 0; k < 200; k++ {
			acc += r.Float64()
		}
		return acc, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v <= 0 {
			t.Fatalf("cell %d produced %v", i, v)
		}
	}
}
