// Package engine fans experiment cells out over a bounded worker pool
// while keeping the results — and therefore every rendered table and
// figure — byte-identical to a serial run.
//
// The experiment harness is embarrassingly parallel: each evaluation cell
// (governor × scenario × seed × ablation variant) constructs its own chip,
// scenario generator, and governor, and shares no mutable state with any
// other cell. The engine exploits that by dispatching cell indices to
// workers through a shared queue (workers pull the next cell as soon as
// they finish one, so load balances dynamically regardless of per-cell
// cost) and merging results back in canonical submission order.
//
// Determinism contract:
//
//   - Each cell derives all randomness from its own deterministic RNG
//     streams (internal/rng streams keyed by the experiment seed and the
//     cell's identity — see CellSeed), never from shared generator state,
//     so execution order cannot perturb any cell's result.
//   - Map returns results indexed exactly like the input, so downstream
//     merge/render code iterates in the same canonical order as the
//     serial path.
//   - Consequently Map(1, n, fn) and Map(k, n, fn) produce identical
//     result slices; the determinism suite in internal/bench asserts this
//     end-to-end for every experiment id.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rlpm/internal/rng"
)

// Parallelism resolves a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0) (the default), anything else is returned as-is.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// CellSeed derives a deterministic RNG seed for one evaluation cell from
// the experiment seed and the cell's identity string. Distinct cell ids
// yield statistically independent streams (splitmix64 finalizer over an
// FNV-1a hash of the id), so adding or reordering cells never perturbs
// another cell's randomness.
func CellSeed(seed uint64, cellID string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(cellID); i++ {
		h ^= uint64(cellID[i])
		h *= 1099511628211
	}
	return rng.Mix64(rng.Mix64(seed) ^ rng.Mix64(h^0xd1b54a32d192ed03))
}

// Map runs fn(0), …, fn(n-1) on up to parallel workers and returns the
// results in index order. parallel <= 0 means GOMAXPROCS. fn must be safe
// to call concurrently from multiple goroutines with distinct indices.
//
// On failure Map returns the error of the lowest-indexed failing cell
// (matching what a serial loop would have surfaced first); cells not yet
// dispatched when the first error is observed are skipped.
func Map[T any](parallel, n int, fn func(int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative cell count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	workers := Parallelism(parallel)
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	if workers == 1 {
		// Serial fast path: no goroutines, so the engine itself cannot
		// reorder anything — this is the reference the determinism suite
		// compares parallel runs against.
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break // stop dispatching; in-flight cells drain below
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Cell is one named unit of experiment work whose result is captured by
// the closure itself (for callers that want heterogeneous cells without
// a common result type).
type Cell struct {
	// ID names the cell in canonical form, e.g. "t1/gaming/ondemand";
	// it labels errors and can key CellSeed.
	ID  string
	Run func() error
}

// Run executes the cells on up to parallel workers. Cells must be
// mutually independent; each cell's Run typically writes its result into
// a distinct, pre-allocated slot so the caller can merge in canonical
// order afterwards. Error selection follows Map.
func Run(parallel int, cells []Cell) error {
	_, err := Map(parallel, len(cells), func(i int) (struct{}, error) {
		if err := cells[i].Run(); err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", cells[i].ID, err)
		}
		return struct{}{}, nil
	})
	return err
}
