package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// goldenExperiments are the experiments pinned byte-for-byte. Tables only:
// they are pure functions of (Options, seed), so any drift is a real
// behavior change — either a bug or an intentional model change that must
// be re-blessed with -update. "faults" is pinned too: the fault injector
// is fully seed-driven, so its table is as reproducible as the clean ones.
var goldenExperiments = []string{"t1", "t2", "t3", "faults"}

// TestGoldenOutput locks the rendered quick-mode tables against
// testdata/<id>_quick.golden. Regenerate with:
//
//	go test ./internal/bench -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	for _, id := range goldenExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ExperimentByID(id)
			if err != nil {
				t.Fatal(err)
			}
			got := renderExperiment(t, e, 0)
			path := filepath.Join("testdata", id+"_quick.golden")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s output drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
					id, path, got, want)
			}
		})
	}
}
