package bench

import (
	"fmt"
	"io"

	"rlpm/internal/hwpolicy"
)

// Table3 reproduces the journal extension's FPGA implementation-cost
// sweep: resource utilization and timing estimates for accelerator sizes
// from small state spaces to well beyond the evaluation configuration.
type Table3 struct {
	Rows []Table3Row
}

// Table3Row is one accelerator sizing.
type Table3Row struct {
	States    int
	Actions   int
	Banks     int
	Cycles    uint64 // per decision
	Resources hwpolicy.Resources
}

// RunTable3 executes the sweep, one engine cell per accelerator sizing.
func RunTable3(opt Options) (*Table3, error) {
	opt = opt.normalized()
	sizings := []struct {
		states, actions, banks int
	}{
		{256, 5, 1},
		{512, 8, 2},
		{864, 9, 4}, // the evaluation configuration
		{2048, 9, 4},
		{4096, 16, 8},
		{16384, 16, 8},
	}
	rows, err := mapCells(opt, len(sizings), func(i int) (Table3Row, error) {
		s := sizings[i]
		p := hwpolicy.Params{NumStates: s.states, NumActions: s.actions, Banks: s.banks, LFSRSeed: 1}
		res, err := hwpolicy.EstimateResources(p)
		if err != nil {
			return Table3Row{}, fmt.Errorf("bench: table3 sizing %+v: %w", s, err)
		}
		accel, err := hwpolicy.New(p)
		if err != nil {
			return Table3Row{}, err
		}
		return Table3Row{
			States:    s.states,
			Actions:   s.actions,
			Banks:     s.banks,
			Cycles:    accel.StepCycles(),
			Resources: res,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3{Rows: rows}, nil
}

// WriteText renders the table.
func (t *Table3) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Table 3: FPGA resource and timing estimates for the policy accelerator")
	writeRule(w, 86)
	fmt.Fprintf(w, "%8s %8s %6s %8s %8s %7s %8s %8s %9s\n",
		"states", "actions", "banks", "cyc/dec", "BRAM36", "DSP48", "LUT", "FF", "Fmax(MHz)")
	writeRule(w, 86)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%8d %8d %6d %8d %8d %7d %8d %8d %9.0f\n",
			r.States, r.Actions, r.Banks, r.Cycles,
			r.Resources.BRAM36, r.Resources.DSP48, r.Resources.LUT, r.Resources.FF, r.Resources.FmaxMHz)
	}
}
