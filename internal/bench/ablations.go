package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
)

// AblationStateBins (A1) sweeps the state-space granularity: how many
// load/QoS/trend bands the policy discretizes into, against the final
// energy-per-QoS on gaming+video. Shows the design point DESIGN.md calls
// out (8×4×3) sits at the knee: coarser states underfit, much finer states
// learn too slowly for the training budget.
type AblationStateBins struct {
	Rows []StateBinsRow
}

// StateBinsRow is one sweep point.
type StateBinsRow struct {
	Load, QoS, Trend int
	States           int // for a 9-level cluster
	GamingEQ         float64
	VideoEQ          float64
}

// RunAblationStateBins executes the sweep.
func RunAblationStateBins(opt Options) (*AblationStateBins, error) {
	opt = opt.normalized()
	configs := []core.StateConfig{
		{LoadBins: 2, QoSBins: 2, TrendBins: 1},
		{LoadBins: 4, QoSBins: 2, TrendBins: 1},
		{LoadBins: 4, QoSBins: 4, TrendBins: 3},
		{LoadBins: 8, QoSBins: 4, TrendBins: 3}, // the design point
		{LoadBins: 16, QoSBins: 8, TrendBins: 3},
	}
	scenarios := []string{"gaming", "video"}
	// One engine cell per (state config, scenario): each trains its own
	// policy and evaluates it frozen.
	cells, err := mapCells(opt, len(configs)*len(scenarios), func(i int) (float64, error) {
		sc := configs[i/len(scenarios)]
		scenario := scenarios[i%len(scenarios)]
		cfg := coreConfig()
		cfg.State = sc
		p, err := trainedPolicy(scenario, opt, cfg)
		if err != nil {
			return 0, fmt.Errorf("bench: A1 %v on %s: %w", sc, scenario, err)
		}
		res, err := evalGovernor(scenario, p, opt)
		if err != nil {
			return 0, err
		}
		return res.QoS.EnergyPerQoS, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationStateBins{}
	for ci, sc := range configs {
		out.Rows = append(out.Rows, StateBinsRow{
			Load: sc.LoadBins, QoS: sc.QoSBins, Trend: sc.TrendBins, States: sc.States(9),
			GamingEQ: cells[ci*len(scenarios)],
			VideoEQ:  cells[ci*len(scenarios)+1],
		})
	}
	return out, nil
}

// WriteText renders the sweep.
func (a *AblationStateBins) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A1: state-space granularity vs energy per QoS")
	writeRule(w, 64)
	fmt.Fprintf(w, "%6s %5s %6s %8s %12s %12s\n", "load", "qos", "trend", "states", "gaming", "video")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%6d %5d %6d %8d %12.4f %12.4f\n", r.Load, r.QoS, r.Trend, r.States, r.GamingEQ, r.VideoEQ)
	}
}

// AblationLambda (A3) sweeps the violation penalty λ, exposing the
// energy/QoS trade-off dial: λ→0 collapses toward powersave-like
// violations; large λ over-provisions toward performance-like energy.
type AblationLambda struct {
	Rows []LambdaRow
}

// LambdaRow is one sweep point on gaming.
type LambdaRow struct {
	Lambda        float64
	EnergyPerQoS  float64
	EnergyJ       float64
	ViolationRate float64
}

// RunAblationLambda executes the sweep, one engine cell per λ.
func RunAblationLambda(opt Options) (*AblationLambda, error) {
	opt = opt.normalized()
	lambdas := []float64{0, 0.5, 1.5, 3.0, 6.0, 12.0}
	rows, err := mapCells(opt, len(lambdas), func(i int) (LambdaRow, error) {
		lambda := lambdas[i]
		cfg := coreConfig()
		cfg.LambdaViolation = lambda
		p, err := trainedPolicy("gaming", opt, cfg)
		if err != nil {
			return LambdaRow{}, fmt.Errorf("bench: A3 λ=%v: %w", lambda, err)
		}
		res, err := evalGovernor("gaming", p, opt)
		if err != nil {
			return LambdaRow{}, err
		}
		return LambdaRow{
			Lambda:        lambda,
			EnergyPerQoS:  res.QoS.EnergyPerQoS,
			EnergyJ:       res.QoS.TotalEnergyJ,
			ViolationRate: res.QoS.ViolationRate,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationLambda{Rows: rows}, nil
}

// WriteText renders the sweep.
func (a *AblationLambda) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A3: violation penalty λ vs energy/QoS trade-off (gaming)")
	writeRule(w, 56)
	fmt.Fprintf(w, "%8s %14s %10s %10s\n", "lambda", "energy/QoS", "energy(J)", "violRate")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%8.1f %14.4f %10.1f %10.4f\n", r.Lambda, r.EnergyPerQoS, r.EnergyJ, r.ViolationRate)
	}
}

// OracleStatic searches all pinned per-cluster OPP pairs and reports the
// best static configuration per scenario — a lower-bound reference showing
// how much headroom remains beyond any static policy and how close the RL
// policy gets.
type OracleStatic struct {
	Rows []OracleRow
}

// OracleRow is one scenario's oracle result.
type OracleRow struct {
	Scenario     string
	LittleLevel  int
	BigLevel     int
	EnergyPerQoS float64
	RLEnergyEQ   float64 // the RL policy on the same scenario
	GapPct       float64 // how far RL is above the static oracle
}

// RunOracleStatic executes the search.
func RunOracleStatic(opt Options) (*OracleStatic, error) {
	opt = opt.normalized()
	chipProbe, err := newChip()
	if err != nil {
		return nil, err
	}
	littleLevels := chipProbe.Cluster(0).NumLevels()
	bigLevels := chipProbe.Cluster(1).NumLevels()

	// Flatten to one engine cell per (scenario, pin) plus one RL cell per
	// scenario; the best pin is selected during the ordered merge, walking
	// pins in the same (little-major, big-minor) order as the serial
	// search so ties resolve identically.
	names := scenarioNames()
	pins := littleLevels * bigLevels
	perScen := pins + 1
	cells, err := mapCells(opt, len(names)*perScen, func(i int) (float64, error) {
		sc := names[i/perScen]
		ci := i % perScen
		if ci == pins {
			p, err := trainedPolicy(sc, opt, coreConfig())
			if err != nil {
				return 0, err
			}
			res, err := evalGovernor(sc, p, opt)
			if err != nil {
				return 0, err
			}
			return res.QoS.EnergyPerQoS, nil
		}
		g, err := governor.NewFixed([]int{ci / bigLevels, ci % bigLevels})
		if err != nil {
			return 0, err
		}
		res, err := evalGovernor(sc, g, opt)
		if err != nil {
			return 0, err
		}
		return res.QoS.EnergyPerQoS, nil
	})
	if err != nil {
		return nil, err
	}

	out := &OracleStatic{}
	for si, sc := range names {
		best := OracleRow{Scenario: sc, EnergyPerQoS: inf()}
		for l := 0; l < littleLevels; l++ {
			for b := 0; b < bigLevels; b++ {
				eq := cells[si*perScen+l*bigLevels+b]
				if eq < best.EnergyPerQoS {
					best.LittleLevel, best.BigLevel = l, b
					best.EnergyPerQoS = eq
				}
			}
		}
		best.RLEnergyEQ = cells[si*perScen+pins]
		if best.EnergyPerQoS > 0 {
			best.GapPct = 100 * (best.RLEnergyEQ - best.EnergyPerQoS) / best.EnergyPerQoS
		}
		out.Rows = append(out.Rows, best)
	}
	return out, nil
}

// WriteText renders the oracle table.
func (o *OracleStatic) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Oracle: best static per-cluster OPP pin vs the RL policy")
	writeRule(w, 72)
	fmt.Fprintf(w, "%-10s %7s %6s %14s %14s %8s\n", "scenario", "little", "big", "oracle E/QoS", "RL E/QoS", "gap")
	for _, r := range o.Rows {
		fmt.Fprintf(w, "%-10s %7d %6d %14.4f %14.4f %7.1f%%\n",
			r.Scenario, r.LittleLevel, r.BigLevel, r.EnergyPerQoS, r.RLEnergyEQ, r.GapPct)
	}
}

func inf() float64 { return 1e308 }

// AblationPrecision (A2) compares the float64 software policy against its
// Q16.16 hardware deployment (and a deliberately crippled Q4.4-style
// quantization) on video — quantization of the Q-table must not change
// the policy's quality.
type AblationPrecision struct {
	Rows []PrecisionRow
}

// PrecisionRow is one precision point.
type PrecisionRow struct {
	Name         string
	EnergyPerQoS float64
	MeanQoS      float64
}

// RunAblationPrecision executes the comparison.
func RunAblationPrecision(opt Options) (*AblationPrecision, error) {
	opt = opt.normalized()
	const scenario = "video"
	p, err := trainedPolicy(scenario, opt, coreConfig())
	if err != nil {
		return nil, err
	}
	// The three precision deployments derive from the one trained policy:
	// build each governor serially (they snapshot/copy p's tables), then
	// fan the independent evaluations out. Each evaluation drives its own
	// governor instance, so no Q-table state is shared across cells.
	deployments := []struct {
		name string
		gov  sim.Governor
	}{
		{"float64 (software)", p},
		{"Q16.16 (hardware)", hwFromPolicy(p)},
		{"Q12.4 (coarse)", quantizePolicy(p, 4)}, // keep 4 fractional bits
	}
	rows, err := mapCells(opt, len(deployments), func(i int) (PrecisionRow, error) {
		res, err := evalGovernor(scenario, deployments[i].gov, opt)
		if err != nil {
			return PrecisionRow{}, err
		}
		return PrecisionRow{deployments[i].name, res.QoS.EnergyPerQoS, res.QoS.MeanQoS}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationPrecision{Rows: rows}, nil
}

// WriteText renders the comparison.
func (a *AblationPrecision) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Ablation A2: Q-table precision vs policy quality (video)")
	writeRule(w, 56)
	fmt.Fprintf(w, "%-22s %14s %10s\n", "precision", "energy/QoS", "meanQoS")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-22s %14.4f %10.4f\n", r.Name, r.EnergyPerQoS, r.MeanQoS)
	}
}

// quantizePolicy returns a frozen copy of p whose Q-values keep only
// fracBits fractional bits.
func quantizePolicy(p *core.Policy, fracBits uint) sim.Governor {
	snap, err := p.Snapshot()
	if err != nil {
		panic(err) // caller trained the policy, agents exist
	}
	scale := float64(uint64(1) << fracBits)
	for _, table := range snap.Tables {
		for _, row := range table {
			for i, v := range row {
				row[i] = float64(int64(v*scale)) / scale
			}
		}
	}
	q := core.MustPolicy(coreConfig())
	// Drive once to materialize agents with the right shapes, then load.
	return &deferredRestore{policy: q, snap: snap}
}

// deferredRestore loads a snapshot into a policy on its first Decide (the
// policy's agents only exist after it has seen the cluster shapes).
type deferredRestore struct {
	policy *core.Policy
	snap   core.Snapshot
	loaded bool
}

func (d *deferredRestore) Name() string { return "rl-policy-quantized" }
func (d *deferredRestore) Reset()       { d.policy.Reset() }
func (d *deferredRestore) Decide(obs []sim.Observation) []int {
	out := d.policy.Decide(obs)
	if !d.loaded {
		if err := d.policy.Restore(d.snap); err != nil {
			panic(err)
		}
		d.policy.SetLearning(false)
		d.loaded = true
		out = d.policy.Decide(obs)
	}
	return out
}
