package bench

// Hot-path benchmark bodies. They live in a non-test file so cmd/pmperf
// can drive them through testing.Benchmark and emit machine-readable
// results (BENCH_pr3.json); perf_test.go wraps the same bodies as ordinary
// Benchmark* functions for `go test -bench`.

import (
	"fmt"
	"io"
	"testing"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/rng"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
)

// PerfGovernors are the governor names BenchSimRun covers: the built-in
// cpufreq baselines plus the software RL policy.
func PerfGovernors() []string {
	return []string{"ondemand", "conservative", "interactive", "schedutil", "performance", "rl-policy"}
}

func perfGovernor(name string) (sim.Governor, error) {
	switch name {
	case "ondemand":
		return governor.NewOndemand(), nil
	case "conservative":
		return governor.NewConservative(), nil
	case "interactive":
		return governor.NewInteractive(), nil
	case "schedutil":
		return governor.NewSchedutil(), nil
	case "performance":
		return governor.NewPerformance(), nil
	case "rl-policy":
		return core.MustPolicy(core.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("bench: unknown perf governor %q", name)
}

// BenchClusterStep measures one cluster's physics step (power, thermal,
// QoS bookkeeping) in isolation.
func BenchClusterStep(b *testing.B) {
	chip, err := newChip()
	if err != nil {
		b.Fatal(err)
	}
	cl := chip.Cluster(1)
	d := soc.Demand{Cycles: 50e6, Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Step(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchChipStepInto measures a whole-chip step through the allocation-free
// StepInto path, reusing one ChipStep across iterations the way the
// simulation loop does.
func BenchChipStepInto(b *testing.B) {
	chip, err := newChip()
	if err != nil {
		b.Fatal(err)
	}
	demands := []soc.Demand{{Cycles: 20e6, Parallelism: 2}, {Cycles: 50e6, Parallelism: 4}}
	var res soc.ChipStep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chip.StepInto(&res, demands, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchSimRun returns the benchmark body for a full closed-loop simulation
// (workload → governor → chip) under the named governor. It reports the
// derived ns/step metric alongside the stock ns/op (one op = one 60 s run,
// 1200 control periods).
func BenchSimRun(name string) func(b *testing.B) {
	return func(b *testing.B) {
		chip, err := newChip()
		if err != nil {
			b.Fatal(err)
		}
		scen, err := newScenario("gaming", 1)
		if err != nil {
			b.Fatal(err)
		}
		gov, err := perfGovernor(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}
		steps := int(cfg.DurationS / cfg.PeriodS)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(chip, scen, gov, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
	}
}

// lookupRef is one (cluster, state) greedy query of the lookup benchmarks.
type lookupRef struct{ c, s int }

// lookupBenchFixture builds serving-shaped Q-tables (two clusters with
// different state/action counts, deterministic pseudo-random values) in
// both layouts, plus a reproducible batch of lookups over them. The batch
// has fleet-shaped state duplication: most devices sit in one of a few hot
// operating points at any instant, with a uniform tail — the distribution
// the server's batcher actually hands the backend.
func lookupBenchFixture(batch int) ([][][]float64, *core.FlatTables, []lookupRef) {
	r := rng.New(42)
	shape := []struct{ states, actions int }{{864, 9}, {100, 5}}
	tables := make([][][]float64, 0, len(shape))
	for _, sh := range shape {
		t := make([][]float64, sh.states)
		for s := range t {
			row := make([]float64, sh.actions)
			for a := range row {
				row[a] = r.Float64()*2 - 1
			}
			t[s] = row
		}
		tables = append(tables, t)
	}
	const hotStates = 4 // hot operating points per cluster
	lk := make([]lookupRef, batch)
	for i := range lk {
		c := i % len(tables) // a device frame contributes one lookup per cluster
		s := r.Intn(len(tables[c]))
		if r.Float64() < 0.9 {
			s = s % hotStates * (len(tables[c]) / hotStates) // spread hot rows across the table
		}
		lk[i] = lookupRef{c, s}
	}
	return tables, core.NewFlatTables(tables), lk
}

// lookupSink keeps the lookup benchmarks' results observable so the
// compiler cannot discard the measured work.
var lookupSink int

// BenchPointerLookup returns the benchmark body resolving `batch` greedy
// lookups per op through the pointer-chasing [][][]float64 layout — the
// serving read path before the flat arena: two dependent loads per lookup
// (row pointer, then row data) against rows scattered across the heap.
func BenchPointerLookup(batch int) func(*testing.B) {
	return func(b *testing.B) {
		tables, _, lk := lookupBenchFixture(batch)
		out := make([]int, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, l := range lk {
				row := tables[l.c][l.s]
				idx, best := 0, row[0]
				for a := 1; a < len(row); a++ {
					if row[a] > best {
						idx, best = a, row[a]
					}
				}
				out[j] = idx
			}
		}
		lookupSink = out[0]
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/lookup")
	}
}

// BenchFlatLookup returns the benchmark body resolving the same batch
// through core.FlatTables.LookupManyInto: pack offset keys, resolve
// against the contiguous arena with the epoch-tagged per-row memo, so
// each distinct row is scanned once per batch. Key packing is charged to
// the measured op — it is part of the serving cost.
func BenchFlatLookup(batch int) func(*testing.B) {
	return func(b *testing.B) {
		_, ft, lk := lookupBenchFixture(batch)
		if ft == nil {
			b.Fatal("flat tables rejected the benchmark shape")
		}
		memo := ft.NewMemo()
		keys := make([]uint64, batch)
		out := make([]int, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, l := range lk {
				keys[j] = ft.Key(l.c, l.s, j)
			}
			ft.LookupManyInto(keys, out, memo)
		}
		lookupSink = out[0]
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/lookup")
	}
}

// BenchAgentStep measures one tabular Q-learning decision+update step.
func BenchAgentStep(b *testing.B) {
	a, err := core.NewAgent(core.DefaultConfig(), 9, 0)
	if err != nil {
		b.Fatal(err)
	}
	freqs := []float64{4e8, 6e8, 8e8, 1e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9, 2e9}
	o := sim.Observation{
		Utilization: 0.7, DemandRatio: 0.9, QoS: 0.97, ClusterQoS: 0.97,
		Level: 4, NumLevels: 9, FreqsHz: freqs, EnergyJ: 0.1,
		ClusterEnergyJ: 0.05, TempC: 45, PeriodS: 0.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Level = a.Step(o)
	}
}

// BenchEngineQuickAll measures regenerating the entire evaluation (every
// experiment, quick mode) through the parallel experiment engine — the
// end-to-end cost a contributor pays per `make test` determinism check.
func BenchEngineQuickAll(b *testing.B) {
	opt := DefaultOptions()
	opt.Quick = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range Experiments() {
			r, err := e.Run(opt)
			if err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
			r.WriteText(io.Discard)
		}
	}
}
