package bench

// Hot-path benchmark bodies. They live in a non-test file so cmd/pmperf
// can drive them through testing.Benchmark and emit machine-readable
// results (BENCH_pr3.json); perf_test.go wraps the same bodies as ordinary
// Benchmark* functions for `go test -bench`.

import (
	"fmt"
	"io"
	"testing"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
)

// PerfGovernors are the governor names BenchSimRun covers: the built-in
// cpufreq baselines plus the software RL policy.
func PerfGovernors() []string {
	return []string{"ondemand", "conservative", "interactive", "schedutil", "performance", "rl-policy"}
}

func perfGovernor(name string) (sim.Governor, error) {
	switch name {
	case "ondemand":
		return governor.NewOndemand(), nil
	case "conservative":
		return governor.NewConservative(), nil
	case "interactive":
		return governor.NewInteractive(), nil
	case "schedutil":
		return governor.NewSchedutil(), nil
	case "performance":
		return governor.NewPerformance(), nil
	case "rl-policy":
		return core.MustPolicy(core.DefaultConfig()), nil
	}
	return nil, fmt.Errorf("bench: unknown perf governor %q", name)
}

// BenchClusterStep measures one cluster's physics step (power, thermal,
// QoS bookkeeping) in isolation.
func BenchClusterStep(b *testing.B) {
	chip, err := newChip()
	if err != nil {
		b.Fatal(err)
	}
	cl := chip.Cluster(1)
	d := soc.Demand{Cycles: 50e6, Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Step(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchChipStepInto measures a whole-chip step through the allocation-free
// StepInto path, reusing one ChipStep across iterations the way the
// simulation loop does.
func BenchChipStepInto(b *testing.B) {
	chip, err := newChip()
	if err != nil {
		b.Fatal(err)
	}
	demands := []soc.Demand{{Cycles: 20e6, Parallelism: 2}, {Cycles: 50e6, Parallelism: 4}}
	var res soc.ChipStep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chip.StepInto(&res, demands, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchSimRun returns the benchmark body for a full closed-loop simulation
// (workload → governor → chip) under the named governor. It reports the
// derived ns/step metric alongside the stock ns/op (one op = one 60 s run,
// 1200 control periods).
func BenchSimRun(name string) func(b *testing.B) {
	return func(b *testing.B) {
		chip, err := newChip()
		if err != nil {
			b.Fatal(err)
		}
		scen, err := newScenario("gaming", 1)
		if err != nil {
			b.Fatal(err)
		}
		gov, err := perfGovernor(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}
		steps := int(cfg.DurationS / cfg.PeriodS)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(chip, scen, gov, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
	}
}

// BenchAgentStep measures one tabular Q-learning decision+update step.
func BenchAgentStep(b *testing.B) {
	a, err := core.NewAgent(core.DefaultConfig(), 9, 0)
	if err != nil {
		b.Fatal(err)
	}
	freqs := []float64{4e8, 6e8, 8e8, 1e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9, 2e9}
	o := sim.Observation{
		Utilization: 0.7, DemandRatio: 0.9, QoS: 0.97, ClusterQoS: 0.97,
		Level: 4, NumLevels: 9, FreqsHz: freqs, EnergyJ: 0.1,
		ClusterEnergyJ: 0.05, TempC: 45, PeriodS: 0.05,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Level = a.Step(o)
	}
}

// BenchEngineQuickAll measures regenerating the entire evaluation (every
// experiment, quick mode) through the parallel experiment engine — the
// end-to-end cost a contributor pays per `make test` determinism check.
func BenchEngineQuickAll(b *testing.B) {
	opt := DefaultOptions()
	opt.Quick = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range Experiments() {
			r, err := e.Run(opt)
			if err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
			r.WriteText(io.Discard)
		}
	}
}
