package bench

import (
	"fmt"
	"io"

	"rlpm/internal/governor"
	"rlpm/internal/qos"
	"rlpm/internal/stats"
)

// Table1 is the headline experiment: energy per unit QoS for the six
// baseline DVFS governors and the proposed RL policy across all seven
// mobile scenarios, with the average improvement of the proposed policy.
//
// Paper claim (journal abstract): the proposed policy's average energy per
// QoS is 31.66% lower than the previous six governors'.
type Table1 struct {
	Scenarios []string
	Governors []string // six baselines, then "rl-policy"
	// EnergyPerQoS[scenario][governor].
	EnergyPerQoS map[string]map[string]float64
	// MeanQoS[scenario][governor] and ViolationRate[scenario][governor]
	// qualify the headline metric.
	MeanQoS       map[string]map[string]float64
	ViolationRate map[string]map[string]float64
	// ImprovementPct[scenario][baseline] is the capped improvement of the
	// RL policy vs that baseline on that scenario.
	ImprovementPct map[string]map[string]float64
	// AvgImprovementPct averages ImprovementPct over all scenarios and
	// baselines, with no QoS qualification.
	AvgImprovementPct float64
	// PerGovernorImprovementPct averages over scenarios for each baseline.
	PerGovernorImprovementPct map[string]float64
	// AvgConstrainedPct is the satisfaction-constrained aggregate — the
	// number matching the paper's framing ("lower energy per QoS without
	// compromising the user satisfaction"): a baseline that drops more
	// than SatisfactionViolLimit of a scenario's critical frames has
	// compromised satisfaction and fails that scenario (counted as the
	// 100% cap); compliant baselines compare on energy-per-QoS as usual.
	AvgConstrainedPct         float64
	PerGovernorConstrainedPct map[string]float64
	SatisfactionViolLimit     float64
	ProposedMaxViolationRate  float64 // the RL policy's own worst rate
}

// RunTable1 executes the experiment. Every (scenario, governor) cell —
// including each scenario's train-then-evaluate RL cell — fans out over
// the experiment engine; the merge below walks the cells in canonical
// (scenario-major, governor-minor) order so the table is byte-identical
// at any Options.Parallel.
func RunTable1(opt Options) (*Table1, error) {
	opt = opt.normalized()
	t := &Table1{
		EnergyPerQoS:              map[string]map[string]float64{},
		MeanQoS:                   map[string]map[string]float64{},
		ViolationRate:             map[string]map[string]float64{},
		ImprovementPct:            map[string]map[string]float64{},
		PerGovernorImprovementPct: map[string]float64{},
		PerGovernorConstrainedPct: map[string]float64{},
		SatisfactionViolLimit:     0.10,
	}
	baseNames := governor.BaselineNames()
	t.Governors = append(t.Governors, baseNames...)
	t.Governors = append(t.Governors, "rl-policy")

	scenarioNames := scenarios()
	t.Scenarios = scenarioNames

	// One cell per (scenario, governor) with the RL cell last per
	// scenario; each cell builds a fresh governor instance so no mutable
	// governor state (e.g. interactive's hold timers) crosses cells.
	nGov := len(baseNames) + 1
	cells, err := mapCells(opt, len(scenarioNames)*nGov, func(i int) (qos.Summary, error) {
		sc := scenarioNames[i/nGov]
		gi := i % nGov
		if gi == len(baseNames) {
			p, err := trainedPolicy(sc, opt, coreConfig())
			if err != nil {
				return qos.Summary{}, fmt.Errorf("bench: table1 training on %s: %w", sc, err)
			}
			res, err := evalGovernor(sc, p, opt)
			if err != nil {
				return qos.Summary{}, fmt.Errorf("bench: table1 %s/rl: %w", sc, err)
			}
			return res.QoS, nil
		}
		g, err := governor.New(baseNames[gi])
		if err != nil {
			return qos.Summary{}, err
		}
		res, err := evalGovernor(sc, g, opt)
		if err != nil {
			return qos.Summary{}, fmt.Errorf("bench: table1 %s/%s: %w", sc, g.Name(), err)
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}

	var allImps, allCons []float64
	perGov := map[string][]float64{}
	perGovCons := map[string][]float64{}
	for si, sc := range scenarioNames {
		t.EnergyPerQoS[sc] = map[string]float64{}
		t.MeanQoS[sc] = map[string]float64{}
		t.ViolationRate[sc] = map[string]float64{}
		t.ImprovementPct[sc] = map[string]float64{}

		for gi, gov := range t.Governors {
			s := cells[si*nGov+gi]
			t.EnergyPerQoS[sc][gov] = s.EnergyPerQoS
			t.MeanQoS[sc][gov] = s.MeanQoS
			t.ViolationRate[sc][gov] = s.ViolationRate
		}

		rl := cells[si*nGov+len(baseNames)]
		if rl.ViolationRate > t.ProposedMaxViolationRate {
			t.ProposedMaxViolationRate = rl.ViolationRate
		}
		for _, g := range baseNames {
			imp := improvementPct(t.EnergyPerQoS[sc][g], rl.EnergyPerQoS)
			t.ImprovementPct[sc][g] = imp
			allImps = append(allImps, imp)
			perGov[g] = append(perGov[g], imp)

			cons := imp
			if t.ViolationRate[sc][g] > t.SatisfactionViolLimit {
				cons = 100 // compromised satisfaction: the baseline fails the scenario
			}
			allCons = append(allCons, cons)
			perGovCons[g] = append(perGovCons[g], cons)
		}
	}
	t.AvgImprovementPct, _ = stats.Mean(allImps)
	t.AvgConstrainedPct, _ = stats.Mean(allCons)
	for g, imps := range perGov {
		t.PerGovernorImprovementPct[g], _ = stats.Mean(imps)
	}
	for g, imps := range perGovCons {
		t.PerGovernorConstrainedPct[g], _ = stats.Mean(imps)
	}
	return t, nil
}

// WriteText renders the table.
func (t *Table1) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Table 1: energy per unit QoS (J/served-period); lower is better")
	writeRule(w, 96)
	fmt.Fprintf(w, "%-10s", "scenario")
	for _, g := range t.Governors {
		fmt.Fprintf(w, " %12s", g)
	}
	fmt.Fprintln(w)
	writeRule(w, 96)
	for _, sc := range t.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range t.Governors {
			fmt.Fprintf(w, " %12s", fmtEQ(t.EnergyPerQoS[sc][g]))
		}
		fmt.Fprintln(w)
	}
	writeRule(w, 96)
	fmt.Fprintln(w, "QoS violation rate (fraction of critical periods missed)")
	for _, sc := range t.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range t.Governors {
			fmt.Fprintf(w, " %12.4f", t.ViolationRate[sc][g])
		}
		fmt.Fprintln(w)
	}
	writeRule(w, 96)
	fmt.Fprintln(w, "RL-policy improvement over each baseline (%, capped at 100)")
	fmt.Fprintf(w, "  %-16s %14s %28s\n", "", "unconstrained", "satisfaction-constrained")
	for _, g := range t.Governors[:len(t.Governors)-1] {
		fmt.Fprintf(w, "  vs %-13s %13.2f%% %27.2f%%\n", g,
			t.PerGovernorImprovementPct[g], t.PerGovernorConstrainedPct[g])
	}
	fmt.Fprintf(w, "Average improvement, unconstrained:              %6.2f%%\n", t.AvgImprovementPct)
	fmt.Fprintf(w, "Average improvement, satisfaction-constrained:   %6.2f%%  (paper: 31.66%%)\n", t.AvgConstrainedPct)
	fmt.Fprintf(w, "  (baselines dropping >%0.f%% of a scenario's critical frames fail it; the\n", 100*t.SatisfactionViolLimit)
	fmt.Fprintf(w, "   RL policy's own worst violation rate is %.1f%%)\n", 100*t.ProposedMaxViolationRate)
}

// scenarios returns the evaluation scenario names.
func scenarios() []string { return scenarioNames() }
