package bench

import (
	"testing"

	"rlpm/internal/governor"
	"rlpm/internal/sim"
)

// freqGuard wraps a governor and fails the test if the wrapped governor —
// or anything else — mutates the shared FreqsHz slices the simulator hands
// out. Observations alias the chip's OPP tables (one backing array per
// cluster, reused every period), so a single in-place write would corrupt
// every later period and every concurrently running cell.
type freqGuard struct {
	t     *testing.T
	inner sim.Governor
	seen  map[*float64][]float64 // backing array -> first-seen contents
}

func newFreqGuard(t *testing.T, inner sim.Governor) *freqGuard {
	return &freqGuard{t: t, inner: inner, seen: map[*float64][]float64{}}
}

func (g *freqGuard) Name() string { return g.inner.Name() }
func (g *freqGuard) Reset()       { g.inner.Reset() }

func (g *freqGuard) check(obs []sim.Observation, when string) {
	for ci, o := range obs {
		if len(o.FreqsHz) == 0 {
			continue
		}
		key := &o.FreqsHz[0]
		prev, ok := g.seen[key]
		if !ok {
			g.seen[key] = append([]float64(nil), o.FreqsHz...)
			continue
		}
		for i := range o.FreqsHz {
			if o.FreqsHz[i] != prev[i] {
				g.t.Errorf("%s: cluster %d FreqsHz[%d] mutated %s Decide: %v -> %v",
					g.inner.Name(), ci, i, when, prev[i], o.FreqsHz[i])
			}
		}
	}
}

func (g *freqGuard) Decide(obs []sim.Observation) []int {
	g.check(obs, "before")
	levels := g.inner.Decide(obs)
	g.check(obs, "inside")
	return levels
}

// TestGovernorsDoNotMutateSharedInputs drives every baseline governor, the
// trained RL policy, and its hardware deployment through a real simulation
// behind freqGuard. The FreqsHz tables in Observation are shared slices
// (see sim.Observation); parallel cells rely on no governor writing them.
func TestGovernorsDoNotMutateSharedInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated runs")
	}
	opt := quickOpt().normalized()

	govs := map[string]sim.Governor{}
	for _, name := range governor.BaselineNames() {
		g, err := governor.New(name)
		if err != nil {
			t.Fatal(err)
		}
		govs[name] = g
	}
	p, err := trainedPolicy("gaming", opt, coreConfig())
	if err != nil {
		t.Fatal(err)
	}
	govs["rl-policy"] = p
	govs["hw-policy"] = hwFromPolicy(p)

	for name, gov := range govs {
		name, gov := name, gov
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if _, err := evalGovernor("gaming", newFreqGuard(t, gov), opt); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelCellStress floods the engine with many small simulation
// cells at high parallelism — far more cells than workers, stateful
// governors included — and asserts that cells with identical inputs
// produce identical results. Run under `go test -race` this doubles as
// the data-race probe for the bench package's cell bodies.
func TestParallelCellStress(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulated runs")
	}
	opt := quickOpt().normalized()
	opt.Parallel = 16
	names := governor.BaselineNames()
	const repeats = 8
	n := repeats * len(names)
	results, err := mapCells(opt, n, func(i int) (float64, error) {
		gov, err := governor.New(names[i%len(names)])
		if err != nil {
			return 0, err
		}
		res, err := evalGovernor("mixed", gov, opt)
		if err != nil {
			return 0, err
		}
		return res.QoS.EnergyPerQoS, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		want := results[i%len(names)]
		if v != want {
			t.Errorf("cell %d (%s) = %v, first identical cell = %v — identical inputs diverged under contention",
				i, names[i%len(names)], v, want)
		}
	}
}

// TestTable1CellsIndependentOfOrdering is the regression test for the
// shared-governor bug: Table 1 used to reuse one governor instance across
// scenarios, so a stateful governor (interactive keeps holdS/prev between
// Decide calls and sim.Run deliberately does not Reset) carried state from
// whatever scenario happened to run before. Every cell now constructs a
// fresh instance, so the (gaming, interactive) cell must match an isolated
// fresh-instance run exactly.
func TestTable1CellsIndependentOfOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	opt := quickOpt()
	tab, err := RunTable1(opt)
	if err != nil {
		t.Fatal(err)
	}
	gov, err := governor.New("interactive")
	if err != nil {
		t.Fatal(err)
	}
	res, err := evalGovernor("gaming", gov, opt.normalized())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tab.EnergyPerQoS["gaming"]["interactive"], res.QoS.EnergyPerQoS; got != want {
		t.Errorf("Table1 gaming/interactive = %v, isolated fresh-instance run = %v — cell leaked state from another cell",
			got, want)
	}
}
