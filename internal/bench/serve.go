package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"rlpm/internal/fault"
	"rlpm/internal/serve"
)

// ServeOptions parameterizes the `serve` experiment: train a policy, host
// it behind cmd/pmserve's HTTP stack on a loopback listener, and drive it
// with a fleet of simulated devices, reporting decision latency and
// throughput. Unlike the table/figure experiments this one measures
// wall-clock behaviour of a concurrent server, so it is reported through
// BENCH_pr6.json (cmd/pmload, `make bench-serve`) rather than the
// deterministic golden registry.
type ServeOptions struct {
	Options
	// Devices is the simulated fleet size.
	Devices int
	// Duration is the wall-clock load window.
	Duration time.Duration
	// Backend selects the serving arm of the A/B: "sw" (in-memory table
	// walk) or "hw" (modeled accelerator behind the MMIO driver).
	Backend string
	// Proto selects the decision transport: "json" (default) or "bin"
	// (the internal/wire binary protocol over its own loopback listener).
	Proto string
	// MaxBatch and Linger tune the server's lookup coalescing.
	MaxBatch int
	Linger   time.Duration
	// Epsilon is the per-session exploration rate devices request.
	Epsilon float64
	// Scenario is the workload every device runs (default "gaming").
	Scenario string
	// PeriodsPerFrame bundles that many control periods per decide frame
	// (bin protocol only; default 1).
	PeriodsPerFrame int
	// Fault optionally wraps the hw backend with the PR-2 injector so the
	// retry/degradation path serves under load.
	Fault *fault.Config
	// CheckpointPath, when set, is where the hosted server persists its
	// model on POST /v1/checkpoint.
	CheckpointPath string
}

// ServeResult is the load report plus the server-side metrics snapshot.
type ServeResult struct {
	Backend         string           `json:"backend"`
	Proto           string           `json:"proto"`
	PeriodsPerFrame int              `json:"periods_per_frame,omitempty"`
	Report          serve.LoadReport `json:"report"`
	// Batcher coalescing evidence from the server side (self-hosted runs
	// only): total backend batches, mean lookups per batch, and the
	// largest batch observed. Batches well below Report.Decisions means
	// pipelined frames from different sessions shared backend batches.
	Batches            uint64  `json:"batches,omitempty"`
	MeanBatchOccupancy float64 `json:"mean_batch_occupancy,omitempty"`
	MaxBatchOccupancy  uint64  `json:"max_batch_occupancy,omitempty"`
}

// WriteText implements Renderable for ad-hoc printing. It prints both the
// exact sample quantiles and the histogram-recovered ones so a drift
// between the two (beyond bucket resolution) is visible at a glance.
func (r *ServeResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "serve: backend=%s proto=%s devices=%d decisions=%d errors=%d %.0f dec/s p50=%.0fns p99=%.0fns\n",
		r.Backend, r.Proto, r.Report.Devices, r.Report.Decisions, r.Report.Errors,
		r.Report.DecisionsPerSec, r.Report.LatencyNs.P50, r.Report.LatencyNs.P99)
	if len(r.Report.LatencyBuckets) > 0 {
		fmt.Fprintf(w, "serve: histogram p50=%.0fns p90=%.0fns p99=%.0fns max=%.0fns over %d populated buckets\n",
			r.Report.LatencyHistNs.P50, r.Report.LatencyHistNs.P90,
			r.Report.LatencyHistNs.P99, r.Report.LatencyHistNs.Max,
			len(r.Report.LatencyBuckets))
	}
	if r.Batches > 0 {
		fmt.Fprintf(w, "serve: batches=%d mean_occupancy=%.2f max_occupancy=%d\n",
			r.Batches, r.MeanBatchOccupancy, r.MaxBatchOccupancy)
	}
}

// TrainedServeModel trains a policy on opt's settings and freezes it into
// a serving model with its backend — the pieces NewServeServer assembles,
// exposed separately for harnesses (the chaos runner) that manage server
// lifecycles themselves.
func TrainedServeModel(o ServeOptions) (*serve.Model, serve.Backend, error) {
	opt := o.Options.normalized()
	scen := o.Scenario
	if scen == "" {
		scen = "gaming"
	}
	p, err := trainedPolicy(scen, opt, coreConfig())
	if err != nil {
		return nil, nil, err
	}
	model, err := serve.ModelFromPolicy(p, coreConfig())
	if err != nil {
		return nil, nil, err
	}
	var backend serve.Backend
	switch o.Backend {
	case "", "sw":
		backend = serve.NewSWBackend(model)
	case "hw":
		hwCfg := serve.DefaultHWBackendConfig()
		if o.Fault != nil {
			inj, err := fault.NewInjector(*o.Fault)
			if err != nil {
				return nil, nil, err
			}
			hwCfg.Injector = inj
		}
		backend, err = serve.NewHWBackend(model, hwCfg)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("bench: unknown serve backend %q", o.Backend)
	}
	return model, backend, nil
}

// NewServeServer trains a policy on opt's settings and assembles a
// serve.Server around it — the exact construction cmd/pmserve performs,
// shared so the experiment, the smoke tests, and the self-hosted load
// generator measure the same stack.
func NewServeServer(o ServeOptions) (*serve.Server, error) {
	model, backend, err := TrainedServeModel(o)
	if err != nil {
		return nil, err
	}
	return serve.New(model, backend, serve.Config{
		MaxBatch:       o.MaxBatch,
		Linger:         o.Linger,
		CheckpointPath: o.CheckpointPath,
	})
}

// RunServe hosts a freshly trained server on a loopback listener and runs
// the load generator against it — the self-contained form of the serve
// experiment.
func RunServe(ctx context.Context, o ServeOptions) (*ServeResult, error) {
	if o.Devices == 0 {
		o.Devices = 50
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	srv, err := NewServeServer(o)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	defer func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
		<-done
	}()

	proto := o.Proto
	if proto == "" {
		proto = "json"
	}
	var binAddr string
	if proto == "bin" {
		binLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		binAddr = binLn.Addr().String()
		binDone := make(chan error, 1)
		go func() { binDone <- srv.ServeBin(binLn) }()
		defer func() {
			binLn.Close()
			<-binDone
		}()
	}

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:         "http://" + ln.Addr().String(),
		Proto:           proto,
		BinAddr:         binAddr,
		Devices:         o.Devices,
		Duration:        o.Duration,
		Scenario:        o.Scenario,
		Seed:            o.Seed,
		Epsilon:         o.Epsilon,
		PeriodsPerFrame: o.PeriodsPerFrame,
	})
	if err != nil {
		return nil, err
	}
	backend := o.Backend
	if backend == "" {
		backend = "sw"
	}
	met := srv.MetricsSnapshot()
	return &ServeResult{
		Backend:            backend,
		Proto:              proto,
		PeriodsPerFrame:    rep.PeriodsPerFrame,
		Report:             *rep,
		Batches:            met.Batches,
		MeanBatchOccupancy: met.MeanBatchOccupancy,
		MaxBatchOccupancy:  met.MaxBatchOccupancy,
	}, nil
}
