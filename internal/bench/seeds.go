package bench

import (
	"fmt"
	"io"

	"rlpm/internal/stats"
)

// Table1Seeds replicates the headline experiment across independent seeds
// and reports the mean and 95% confidence interval of both Table 1
// aggregates — the statistical check that the headline number is not an
// artifact of one workload realization.
type Table1Seeds struct {
	Seeds []uint64
	// Per-seed aggregates.
	Unconstrained []float64
	Constrained   []float64
	// Summary statistics.
	MeanUnconstrained float64
	CIUnconstrained   float64
	MeanConstrained   float64
	CIConstrained     float64
	// WorstRLViolation is the maximum RL violation rate seen across all
	// seeds and scenarios.
	WorstRLViolation float64
}

// RunTable1Seeds executes Table 1 for n seeds starting at opt.Seed.
func RunTable1Seeds(opt Options, n int) (*Table1Seeds, error) {
	if n < 2 {
		return nil, fmt.Errorf("bench: seed replication needs at least 2 seeds, got %d", n)
	}
	opt = opt.normalized()
	// One engine cell per seed replication; each replication's RunTable1
	// fans its own cells out in turn. Pools don't share workers, but every
	// cell is CPU-bound and the Go scheduler multiplexes them over
	// GOMAXPROCS, so nesting costs only idle goroutines. Every replication
	// is fully determined by its seed, so the merge order below fixes the
	// output regardless of scheduling.
	tables, err := mapCells(opt, n, func(i int) (*Table1, error) {
		o := opt
		o.Seed = opt.Seed + uint64(i)
		t, err := RunTable1(o)
		if err != nil {
			return nil, fmt.Errorf("bench: seed %d: %w", o.Seed, err)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Table1Seeds{}
	for i, t := range tables {
		out.Seeds = append(out.Seeds, opt.Seed+uint64(i))
		out.Unconstrained = append(out.Unconstrained, t.AvgImprovementPct)
		out.Constrained = append(out.Constrained, t.AvgConstrainedPct)
		if t.ProposedMaxViolationRate > out.WorstRLViolation {
			out.WorstRLViolation = t.ProposedMaxViolationRate
		}
	}
	if out.MeanUnconstrained, err = stats.Mean(out.Unconstrained); err != nil {
		return nil, err
	}
	if out.CIUnconstrained, err = stats.CI95(out.Unconstrained); err != nil {
		return nil, err
	}
	if out.MeanConstrained, err = stats.Mean(out.Constrained); err != nil {
		return nil, err
	}
	if out.CIConstrained, err = stats.CI95(out.Constrained); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteText renders the replication summary.
func (t *Table1Seeds) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Table 1 replicated over %d seeds\n", len(t.Seeds))
	writeRule(w, 64)
	fmt.Fprintf(w, "%6s %16s %16s\n", "seed", "unconstrained", "constrained")
	for i, s := range t.Seeds {
		fmt.Fprintf(w, "%6d %15.2f%% %15.2f%%\n", s, t.Unconstrained[i], t.Constrained[i])
	}
	writeRule(w, 64)
	fmt.Fprintf(w, "unconstrained improvement: %.2f%% ± %.2f%% (95%% CI)\n", t.MeanUnconstrained, t.CIUnconstrained)
	fmt.Fprintf(w, "constrained improvement:   %.2f%% ± %.2f%% (95%% CI; paper: 31.66%%)\n", t.MeanConstrained, t.CIConstrained)
	fmt.Fprintf(w, "worst RL violation rate across seeds/scenarios: %.1f%%\n", 100*t.WorstRLViolation)
}
