package bench

import (
	"fmt"
	"io"

	"rlpm/internal/core"
	"rlpm/internal/governor"
	"rlpm/internal/qos"
	"rlpm/internal/sim"
	"rlpm/internal/stats"
	"rlpm/internal/trace"
)

// Fig2 is the learning-convergence figure: per-episode energy-per-QoS,
// mean QoS, violation rate, and exploration rate while the policy trains
// online on the gaming scenario.
type Fig2 struct {
	Scenario      string
	EnergyPerQoS  []float64
	MeanQoS       []float64
	ViolationRate []float64
	Epsilon       []float64
}

// RunFig2 executes the experiment.
func RunFig2(opt Options) (*Fig2, error) {
	opt = opt.normalized()
	const scenario = "gaming"
	chip, err := newChip()
	if err != nil {
		return nil, err
	}
	scen, err := newScenario(scenario, opt.Seed)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPolicy(coreConfig())
	if err != nil {
		return nil, err
	}
	tr, err := core.Train(chip, scen, p, opt.simConfig(), opt.TrainEpisodes)
	if err != nil {
		return nil, err
	}
	return &Fig2{
		Scenario:      scenario,
		EnergyPerQoS:  tr.EnergyPerQoS,
		MeanQoS:       tr.MeanQoS,
		ViolationRate: tr.ViolationRate,
		Epsilon:       tr.Epsilon,
	}, nil
}

// Converged reports whether training improved from the first few episodes
// to the final quarter — the property the figure exists to show. Both the
// energy metric and the violation rate must improve (the violation rate is
// the sharper signal: it typically falls by an order of magnitude).
func (f *Fig2) Converged() bool {
	n := len(f.EnergyPerQoS)
	if n < 4 {
		return false
	}
	early := n / 10
	if early < 3 {
		early = 3
	}
	late := n / 4
	earlyEQ, err1 := stats.Mean(f.EnergyPerQoS[:early])
	lateEQ, err2 := stats.Mean(f.EnergyPerQoS[n-late:])
	earlyViol, err3 := stats.Mean(f.ViolationRate[:early])
	lateViol, err4 := stats.Mean(f.ViolationRate[n-late:])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return false
	}
	// Energy/QoS plateaus within a few episodes and then wanders with
	// workload noise; allow 5% slack on it and require the violation rate
	// (the sharp signal) to at least halve.
	return lateEQ <= earlyEQ*1.05 && lateViol < earlyViol/2
}

// WriteText renders the series.
func (f *Fig2) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig. 2: online learning convergence (%s scenario)\n", f.Scenario)
	writeRule(w, 64)
	fmt.Fprintf(w, "%8s %14s %10s %10s %8s\n", "episode", "energy/QoS", "meanQoS", "violRate", "epsilon")
	for i := range f.EnergyPerQoS {
		fmt.Fprintf(w, "%8d %14.4f %10.4f %10.4f %8.4f\n",
			i+1, f.EnergyPerQoS[i], f.MeanQoS[i], f.ViolationRate[i], f.Epsilon[i])
	}
	writeRule(w, 64)
	fmt.Fprintf(w, "converged (improved from the early episodes): %v\n", f.Converged())
}

// WriteCSV emits the series for plotting.
func (f *Fig2) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "episode,energy_per_qos,mean_qos,violation_rate,epsilon"); err != nil {
		return err
	}
	for i := range f.EnergyPerQoS {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g\n",
			i+1, f.EnergyPerQoS[i], f.MeanQoS[i], f.ViolationRate[i], f.Epsilon[i]); err != nil {
			return err
		}
	}
	return nil
}

// Fig3 is the per-scenario energy and QoS bars: total energy and mean QoS
// side by side for every governor, showing the RL policy cuts energy
// without giving up QoS.
type Fig3 struct {
	Scenarios []string
	Governors []string
	EnergyJ   map[string]map[string]float64
	MeanQoS   map[string]map[string]float64
}

// RunFig3 executes the experiment: one engine cell per (scenario,
// governor), merged in canonical order.
func RunFig3(opt Options) (*Fig3, error) {
	opt = opt.normalized()
	f := &Fig3{
		EnergyJ: map[string]map[string]float64{},
		MeanQoS: map[string]map[string]float64{},
	}
	baseNames := governor.BaselineNames()
	f.Governors = append(f.Governors, baseNames...)
	f.Governors = append(f.Governors, "rl-policy")
	f.Scenarios = scenarioNames()

	nGov := len(baseNames) + 1
	cells, err := mapCells(opt, len(f.Scenarios)*nGov, func(i int) (qos.Summary, error) {
		sc := f.Scenarios[i/nGov]
		gi := i % nGov
		if gi == len(baseNames) {
			p, err := trainedPolicy(sc, opt, coreConfig())
			if err != nil {
				return qos.Summary{}, err
			}
			res, err := evalGovernor(sc, p, opt)
			if err != nil {
				return qos.Summary{}, err
			}
			return res.QoS, nil
		}
		g, err := governor.New(baseNames[gi])
		if err != nil {
			return qos.Summary{}, err
		}
		res, err := evalGovernor(sc, g, opt)
		if err != nil {
			return qos.Summary{}, err
		}
		return res.QoS, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range f.Scenarios {
		f.EnergyJ[sc] = map[string]float64{}
		f.MeanQoS[sc] = map[string]float64{}
		for gi, gov := range f.Governors {
			s := cells[si*nGov+gi]
			f.EnergyJ[sc][gov] = s.TotalEnergyJ
			f.MeanQoS[sc][gov] = s.MeanQoS
		}
	}
	return f, nil
}

// WriteText renders grouped bars as text.
func (f *Fig3) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3: total energy (J) and mean useful QoS per scenario")
	writeRule(w, 96)
	fmt.Fprintf(w, "%-10s", "scenario")
	for _, g := range f.Governors {
		fmt.Fprintf(w, " %12s", g)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "energy (J):")
	for _, sc := range f.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range f.Governors {
			fmt.Fprintf(w, " %12.1f", f.EnergyJ[sc][g])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "mean QoS:")
	for _, sc := range f.Scenarios {
		fmt.Fprintf(w, "%-10s", sc)
		for _, g := range f.Governors {
			fmt.Fprintf(w, " %12.4f", f.MeanQoS[sc][g])
		}
		fmt.Fprintln(w)
	}
}

// Fig4 is the time-series figure: OPP level, power and QoS traces of the
// RL policy against ondemand over a gaming window.
type Fig4 struct {
	Scenario string
	RL       *trace.Recorder
	Ondemand *trace.Recorder
}

// RunFig4 executes the experiment.
func RunFig4(opt Options) (*Fig4, error) {
	opt = opt.normalized()
	const scenario = "gaming"
	windowS := opt.DurationS
	if windowS > 30 {
		windowS = 30
	}

	runWith := func(gov sim.Governor) (*trace.Recorder, error) {
		chip, err := newChip()
		if err != nil {
			return nil, err
		}
		scen, err := newScenario(scenario, opt.Seed)
		if err != nil {
			return nil, err
		}
		rec, err := trace.NewRecorder(sim.RecorderColumns(chip.NumClusters())...)
		if err != nil {
			return nil, err
		}
		cfg := opt.simConfig()
		cfg.DurationS = windowS
		cfg.Recorder = rec
		if _, err := sim.Run(chip, scen, gov, cfg); err != nil {
			return nil, err
		}
		return rec, nil
	}

	p, err := trainedPolicy(scenario, opt, coreConfig())
	if err != nil {
		return nil, err
	}
	// The two traced runs are independent cells (each builds its own chip,
	// scenario, and recorder) — fan them out.
	recs, err := mapCells(opt, 2, func(i int) (*trace.Recorder, error) {
		if i == 0 {
			return runWith(p)
		}
		return runWith(governor.NewOndemand())
	})
	if err != nil {
		return nil, err
	}
	return &Fig4{Scenario: scenario, RL: recs[0], Ondemand: recs[1]}, nil
}

// WriteText summarizes both traces (full series go to CSV).
func (f *Fig4) WriteText(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4: %s trace summary (use pmtrace for the full CSV)\n", f.Scenario)
	// Fixed order (a map here would render the two governors in random
	// order run to run, breaking golden/determinism comparisons).
	for _, entry := range []struct {
		label string
		rec   *trace.Recorder
	}{{"rl-policy", f.RL}, {"ondemand", f.Ondemand}} {
		label, rec := entry.label, entry.rec
		power, err := rec.Series("power")
		if err != nil {
			fmt.Fprintf(w, "  %s: %v\n", label, err)
			continue
		}
		qosSeries, _ := rec.Series("qos")
		meanP, _ := stats.Mean(power)
		meanQ, _ := stats.Mean(qosSeries)
		energy, _ := rec.Integrate("power")
		h, _ := stats.NewHistogram(0, 8, 16)
		for _, v := range power {
			h.Add(v)
		}
		fmt.Fprintf(w, "  %-10s meanPower=%.3fW meanQoS=%.4f energy=%.1fJ power-histogram %s\n",
			label, meanP, meanQ, energy, h.Sparkline())
	}
}

// WriteCSV emits both traces, prefixing columns with the governor name.
func (f *Fig4) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# rl-policy trace"); err != nil {
		return err
	}
	if err := f.RL.WriteCSV(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# ondemand trace"); err != nil {
		return err
	}
	return f.Ondemand.WriteCSV(w)
}
