package bench

import (
	"bytes"
	"testing"
)

// renderExperiment runs experiment e at the given engine parallelism and
// returns its rendered text.
func renderExperiment(t *testing.T, e Experiment, parallel int) []byte {
	t.Helper()
	opt := quickOpt()
	opt.Parallel = parallel
	r, err := e.Run(opt)
	if err != nil {
		t.Fatalf("%s at parallel=%d: %v", e.ID, parallel, err)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	return buf.Bytes()
}

// TestExperimentsDeterministicAcrossParallelism is the engine's central
// guarantee: every experiment renders byte-identical output whether its
// evaluation cells run serially or fan out over 8 workers. Each cell owns
// its RNG streams (engine.CellSeed / rng.NewStream) and results merge in
// canonical index order, so scheduling cannot leak into the output.
func TestExperimentsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick evaluation twice")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serial := renderExperiment(t, e, 1)
			parallel := renderExperiment(t, e, 8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s: parallel=8 output differs from parallel=1\n--- serial ---\n%s\n--- parallel ---\n%s",
					e.ID, serial, parallel)
			}
		})
	}
}

// TestExperimentsDeterministicAcrossRuns guards against hidden global
// state: running the same experiment twice in one process must render the
// same bytes (map-iteration ordering, package-level RNGs, and cached
// mutable singletons would all show up here).
func TestExperimentsDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick evaluation twice")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			first := renderExperiment(t, e, 4)
			second := renderExperiment(t, e, 4)
			if !bytes.Equal(first, second) {
				t.Errorf("%s: two identical runs rendered different bytes", e.ID)
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiments, got %d: %v", len(ids), ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatalf("ExperimentByID(%q): %v", id, err)
		}
		if e.ID != id || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete: %+v", id, e)
		}
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("unknown id did not error")
	}
}
