package bench

import (
	"fmt"
	"io"

	"rlpm/internal/bench/engine"
	"rlpm/internal/fault"
	"rlpm/internal/governor"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/sim"
)

// FaultTable is the robustness evaluation: the hardware policy path under
// injected faults, degrading gracefully, with the energy/QoS cost of
// surviving quantified per fault class and rate.
//
// Grid: fault class (interconnect, Q BRAM, telemetry) × injection rate ×
// stack. The "resilient" stack is the full ladder — watchdog-bounded
// hardware policy → shadow software policy → ondemand — with BRAM parity
// scrubbing enabled for the bram class; "ondemand" is the kernel baseline
// behind the same telemetry filter, for reference. Rate 0 rows pin the
// fault-free behaviour (identical to the plain hardware deployment).
type FaultTable struct {
	Rows []FaultRow
}

// FaultRow is one (class, rate, stack) evaluation cell on gaming.
type FaultRow struct {
	Class string  // "bus", "bram", "telemetry"
	Rate  float64 // base injection rate
	Stack string  // "resilient", "ondemand"

	EnergyPerQoS  float64
	ViolationRate float64

	Injected uint64 // faults the injector actually delivered

	// Resilient-stack health ledger (zero for the ondemand stack).
	HWFaults   uint64
	Retries    uint64
	Demotions  uint64
	Promotions uint64
	Scrubs     uint64
	PctHW      float64 // share of periods decided on each rung
	PctSW      float64
	PctOD      float64
}

// faultClasses returns the fault classes in table order.
func faultClasses() []string { return []string{"bus", "bram", "telemetry"} }

// faultRates returns the base injection rates in table order: clean,
// a field-plausible transient rate the retries should absorb, and a
// stress rate that forces the ladder to demote.
func faultRates() []float64 { return []float64{0, 0.05, 0.30} }

// faultStacks returns the evaluated stacks in table order.
func faultStacks() []string { return []string{"resilient", "ondemand"} }

// faultConfig maps a (class, base rate) pair onto the injector's per-site
// rates. The scaling keeps one knob per row while exercising every site
// of the class.
func faultConfig(class string, rate float64, seed uint64) fault.Config {
	c := fault.Config{Seed: seed}
	switch class {
	case "bus":
		c.ReadErrorRate = rate
		c.WriteErrorRate = rate / 2
		c.ReadFlipRate = rate / 2
		c.StallRate = rate
		c.TimeoutRate = rate / 4
	case "bram":
		c.QFlipRate = rate
	case "telemetry":
		c.ObsStaleRate = rate
		c.ObsDropRate = rate
	}
	return c
}

// RunFaults executes the robustness grid.
func RunFaults(opt Options) (*FaultTable, error) {
	opt = opt.normalized()
	const scenario = "gaming"
	classes, rates, stacks := faultClasses(), faultRates(), faultStacks()
	n := len(classes) * len(rates) * len(stacks)

	cells, err := mapCells(opt, n, func(i int) (FaultRow, error) {
		class := classes[i/(len(rates)*len(stacks))]
		rate := rates[(i/len(stacks))%len(rates)]
		stack := stacks[i%len(stacks)]
		cellID := fmt.Sprintf("faults/%s/%g/%s", class, rate, stack)

		inj, err := fault.NewInjector(faultConfig(class, rate, engine.CellSeed(opt.Seed, cellID)))
		if err != nil {
			return FaultRow{}, fmt.Errorf("bench: %s: %w", cellID, err)
		}

		chip, err := newChip()
		if err != nil {
			return FaultRow{}, err
		}
		scen, err := newScenario(scenario, opt.Seed)
		if err != nil {
			return FaultRow{}, err
		}

		row := FaultRow{Class: class, Rate: rate, Stack: stack}
		var gov sim.Governor
		var res *hwpolicy.Resilient
		switch stack {
		case "resilient":
			// Train clean (deployment trains in the lab, faults arrive in
			// the field), then deploy onto the faulty hardware path.
			p, err := trainedPolicy(scenario, opt, coreConfig())
			if err != nil {
				return FaultRow{}, err
			}
			rc := hwpolicy.DefaultResilientConfig()
			rc.Scrub = class == "bram"
			res, err = hwpolicy.NewResilient(p, rc, inj)
			if err != nil {
				return FaultRow{}, err
			}
			gov = res
		default: // "ondemand"
			gov = fault.Wrap(governor.NewOndemand(), inj)
		}

		r, err := sim.Run(chip, scen, gov, opt.simConfig())
		if err != nil {
			return FaultRow{}, fmt.Errorf("bench: %s: %w", cellID, err)
		}
		row.EnergyPerQoS = r.QoS.EnergyPerQoS
		row.ViolationRate = r.QoS.ViolationRate
		row.Injected = inj.Stats().Total()
		if res != nil {
			st := res.Stats()
			row.HWFaults = st.HWFaults
			row.Retries = st.Retries
			row.Demotions = st.Demotions
			row.Promotions = st.Promotions
			row.Scrubs = res.Scrubs()
			if st.Decisions > 0 {
				row.PctHW = 100 * float64(st.PeriodsHW) / float64(st.Decisions)
				row.PctSW = 100 * float64(st.PeriodsSW) / float64(st.Decisions)
				row.PctOD = 100 * float64(st.PeriodsOD) / float64(st.Decisions)
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultTable{Rows: cells}, nil
}

// WriteText renders the robustness table.
func (t *FaultTable) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Faults: hardware policy path under injected faults (gaming)")
	fmt.Fprintln(w, "degradation ladder: HW policy -> SW policy -> ondemand; probation re-promotes")
	writeRule(w, 118)
	fmt.Fprintf(w, "%-10s %6s %-10s %9s %8s %8s %7s %7s %5s %5s %6s %6s %6s %6s\n",
		"class", "rate", "stack", "E/QoS", "viol", "injected",
		"hwfail", "retry", "dem", "pro", "scrub", "%hw", "%sw", "%od")
	writeRule(w, 118)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %6.2f %-10s %9s %8.4f %8d %7d %7d %5d %5d %6d %6.1f %6.1f %6.1f\n",
			r.Class, r.Rate, r.Stack, fmtEQ(r.EnergyPerQoS), r.ViolationRate, r.Injected,
			r.HWFaults, r.Retries, r.Demotions, r.Promotions, r.Scrubs,
			r.PctHW, r.PctSW, r.PctOD)
	}
}
