package bench

import (
	"math"
	"strings"
	"testing"
)

// quickOpt keeps harness tests fast; headline numbers are validated by the
// full-length runs in the repository root's bench_test.go.
func quickOpt() Options {
	o := DefaultOptions()
	o.Quick = true
	return o
}

func TestOptionsNormalized(t *testing.T) {
	n := Options{}.normalized()
	if n.PeriodS != 0.05 || n.DurationS != 120 || n.TrainEpisodes != 120 || n.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", n)
	}
	q := quickOpt().normalized()
	if q.DurationS >= 120 || q.TrainEpisodes >= 60 {
		t.Fatalf("quick mode did not shrink: %+v", q)
	}
}

func TestImprovementPct(t *testing.T) {
	if got := improvementPct(100, 70); got != 30 {
		t.Fatalf("improvement = %v", got)
	}
	if got := improvementPct(math.Inf(1), 70); got != 100 {
		t.Fatalf("inf baseline = %v", got)
	}
	if got := improvementPct(0, 70); got != 0 {
		t.Fatalf("zero baseline = %v", got)
	}
	if got := improvementPct(1, -100); got != 100 {
		t.Fatalf("cap = %v", got)
	}
}

func TestRunTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	tab, err := RunTable1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Scenarios) != 7 || len(tab.Governors) != 7 {
		t.Fatalf("table shape %dx%d", len(tab.Scenarios), len(tab.Governors))
	}
	for _, sc := range tab.Scenarios {
		for _, g := range tab.Governors {
			if _, ok := tab.EnergyPerQoS[sc][g]; !ok {
				t.Fatalf("missing cell %s/%s", sc, g)
			}
		}
	}
	// Even in quick mode the policy must not be behind the pack on
	// average (each baseline comparison averaged over scenarios).
	if tab.AvgImprovementPct < 0 {
		t.Fatalf("average improvement %.2f%% negative", tab.AvgImprovementPct)
	}
	// The satisfaction-constrained aggregate can only raise the number
	// (failing baselines count as the cap).
	if tab.AvgConstrainedPct < tab.AvgImprovementPct {
		t.Fatalf("constrained %.2f%% below unconstrained %.2f%%",
			tab.AvgConstrainedPct, tab.AvgImprovementPct)
	}
	if tab.SatisfactionViolLimit != 0.10 {
		t.Fatalf("constraint limit = %v", tab.SatisfactionViolLimit)
	}
	var b strings.Builder
	tab.WriteText(&b)
	out := b.String()
	for _, want := range []string{"Table 1", "rl-policy", "31.66%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2(t *testing.T) {
	tab, err := RunTable2(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's bands.
	if tab.SpeedupDecision < 2.5 || tab.SpeedupDecision > 6 {
		t.Fatalf("decision speedup %.2f out of band", tab.SpeedupDecision)
	}
	if tab.SpeedupTail < 20 || tab.SpeedupTail > 60 {
		t.Fatalf("tail speedup %.2f out of band", tab.SpeedupTail)
	}
	if tab.Decisions == 0 || tab.MeasuredSimLatency <= 0 {
		t.Fatalf("closed-loop cross-check missing: %+v", tab)
	}
	// The closed-loop mean transaction latency should agree with the
	// single-transaction analysis within 2×.
	ratio := float64(tab.MeasuredSimLatency) / float64(tab.HWTotal)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("closed-loop latency %v disagrees with analysis %v", tab.MeasuredSimLatency, tab.HWTotal)
	}
	var b strings.Builder
	tab.WriteText(&b)
	if !strings.Contains(b.String(), "3.92x") {
		t.Fatal("rendered table missing the paper anchor")
	}
}

func TestRunTable3(t *testing.T) {
	tab, err := RunTable3(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("only %d sizings", len(tab.Rows))
	}
	prevBRAM := 0
	for _, r := range tab.Rows {
		if r.Resources.BRAM36 < prevBRAM {
			t.Fatalf("BRAM not monotone over sizings")
		}
		prevBRAM = r.Resources.BRAM36
		if r.Cycles == 0 {
			t.Fatal("zero-cycle decision")
		}
	}
	var b strings.Builder
	tab.WriteText(&b)
	if !strings.Contains(b.String(), "BRAM36") {
		t.Fatal("rendered table missing header")
	}
}

func TestRunFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	opt := Options{PeriodS: 0.05, DurationS: 10, TrainEpisodes: 12, Seed: 1}
	f, err := RunFig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.EnergyPerQoS) != 12 {
		t.Fatalf("episodes = %d", len(f.EnergyPerQoS))
	}
	// Epsilon must decay monotonically.
	for i := 1; i < len(f.Epsilon); i++ {
		if f.Epsilon[i] > f.Epsilon[i-1] {
			t.Fatalf("epsilon rose at episode %d", i)
		}
	}
	var b strings.Builder
	f.WriteText(&b)
	if !strings.Contains(b.String(), "Fig. 2") {
		t.Fatal("rendered figure missing header")
	}
	var csv strings.Builder
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 13 { // header + 12
		t.Fatalf("CSV lines = %d", lines)
	}
}

func TestRunFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	f, err := RunFig4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if f.RL.Len() == 0 || f.Ondemand.Len() == 0 {
		t.Fatal("empty traces")
	}
	if f.RL.Len() != f.Ondemand.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", f.RL.Len(), f.Ondemand.Len())
	}
	var b strings.Builder
	f.WriteText(&b)
	if !strings.Contains(b.String(), "meanPower") {
		t.Fatal("summary missing power stats")
	}
	var csv strings.Builder
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "# ondemand trace") {
		t.Fatal("CSV missing second trace")
	}
}

func TestRunAblationLambdaQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	a, err := RunAblationLambda(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// The dial must move: λ=0 should violate more than the largest λ.
	if a.Rows[0].ViolationRate <= a.Rows[len(a.Rows)-1].ViolationRate {
		t.Fatalf("violation penalty has no effect: λ=0 %.4f vs λ=max %.4f",
			a.Rows[0].ViolationRate, a.Rows[len(a.Rows)-1].ViolationRate)
	}
	var b strings.Builder
	a.WriteText(&b)
	if !strings.Contains(b.String(), "lambda") {
		t.Fatal("rendered ablation missing header")
	}
}

func TestRunAblationPrecisionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	a, err := RunAblationPrecision(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	sw, hw := a.Rows[0], a.Rows[1]
	rel := math.Abs(hw.EnergyPerQoS-sw.EnergyPerQoS) / sw.EnergyPerQoS
	if rel > 0.05 {
		t.Fatalf("Q16.16 deployment deviates %.1f%% from float64", rel*100)
	}
}

func TestRunAblationSwitchCostQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	a, err := RunAblationSwitchCost(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Reactive governors must switch far more than the learned policy at
	// the highest cost point, and everyone's switch counts must be
	// positive on gaming.
	last := a.Rows[len(a.Rows)-1]
	for _, g := range switchGovernorNames() {
		if last.Switches[g] == 0 {
			t.Fatalf("%s recorded zero switches", g)
		}
	}
	// Energy/QoS must not decrease as switch costs rise (per governor,
	// first vs last sweep point).
	first := a.Rows[0]
	for _, g := range []string{"ondemand", "conservative", "interactive"} {
		if last.EnergyPerQoS[g] < first.EnergyPerQoS[g]*0.98 {
			t.Fatalf("%s got cheaper with costly switches: %v -> %v", g, first.EnergyPerQoS[g], last.EnergyPerQoS[g])
		}
	}
	var b strings.Builder
	a.WriteText(&b)
	if !strings.Contains(b.String(), "stall") {
		t.Fatal("rendered ablation missing header")
	}
}

func TestRunBatteryLifeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	l, err := RunBatteryLife(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range l.Scenarios {
		for _, g := range l.Governors {
			h := l.Hours[sc][g]
			if h <= 0 || h > 100 {
				t.Fatalf("implausible battery life %s/%s: %vh", sc, g, h)
			}
		}
		// Performance always burns more than powersave.
		if l.Hours[sc]["performance"] >= l.Hours[sc]["powersave"] {
			t.Fatalf("%s: performance outlives powersave", sc)
		}
	}
	var b strings.Builder
	l.WriteText(&b)
	if !strings.Contains(b.String(), "4000 mAh") {
		t.Fatal("rendered table missing header")
	}
}

func TestRunAblationAlgorithmQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	a, err := RunAblationAlgorithm(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		if r.GamingEQ <= 0 || r.VideoEQ <= 0 {
			t.Fatalf("%s has degenerate results: %+v", r.Algorithm, r)
		}
	}
	if a.Rows[2].TablesPerAgnt != 2 {
		t.Fatal("DoubleQ memory cost not reported")
	}
	var b strings.Builder
	a.WriteText(&b)
	if !strings.Contains(b.String(), "doubleq") {
		t.Fatal("rendered ablation missing doubleq row")
	}
}

func TestRunSymmetricQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	s, err := RunSymmetric(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 7 || len(s.Governors) != 7 {
		t.Fatalf("shape %dx%d", len(s.Scenarios), len(s.Governors))
	}
	for _, sc := range s.Scenarios {
		if _, ok := s.EnergyPerQoS[sc]["rl-policy"]; !ok {
			t.Fatalf("missing RL cell for %s", sc)
		}
	}
	var b strings.Builder
	s.WriteText(&b)
	if !strings.Contains(b.String(), "Symmetric") {
		t.Fatal("rendered table missing header")
	}
}

func TestRunGPUDomainQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario run")
	}
	g, err := RunGPUDomain(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Scenarios) != 4 || len(g.Governors) != 7 {
		t.Fatalf("shape %dx%d", len(g.Scenarios), len(g.Governors))
	}
	// The GPU domain must make gaming materially more expensive than on
	// the CPU-only chip (performance governor total energy comparison is
	// implicit in E/QoS; just require valid cells here).
	for _, sc := range g.Scenarios {
		for _, gov := range g.Governors {
			if _, ok := g.EnergyPerQoS[sc][gov]; !ok {
				t.Fatalf("missing cell %s/%s", sc, gov)
			}
		}
	}
	var b strings.Builder
	g.WriteText(&b)
	if !strings.Contains(b.String(), "GPU-domain") {
		t.Fatal("rendered table missing header")
	}
}

func TestRunAblationObsNoiseQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	a, err := RunAblationObsNoise(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Reactive governors must get worse with noise (first vs last point,
	// generous 2% slack for run-to-run structure).
	first, last := a.Rows[0], a.Rows[len(a.Rows)-1]
	for _, g := range []string{"ondemand", "interactive"} {
		if last.EnergyPerQoS[g] < first.EnergyPerQoS[g]*0.98 {
			t.Errorf("%s improved under noise: %v -> %v", g, first.EnergyPerQoS[g], last.EnergyPerQoS[g])
		}
	}
	var b strings.Builder
	a.WriteText(&b)
	if !strings.Contains(b.String(), "noiseCV") {
		t.Fatal("rendered ablation missing header")
	}
}

func TestRunTable1SeedsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated run")
	}
	if _, err := RunTable1Seeds(quickOpt(), 1); err == nil {
		t.Fatal("single seed accepted")
	}
	s, err := RunTable1Seeds(quickOpt(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Seeds) != 3 || len(s.Constrained) != 3 {
		t.Fatalf("shape: %+v", s.Seeds)
	}
	if s.CIConstrained < 0 {
		t.Fatalf("negative CI %v", s.CIConstrained)
	}
	for i := range s.Seeds {
		if s.Constrained[i] < s.Unconstrained[i] {
			t.Fatalf("seed %d: constrained < unconstrained", s.Seeds[i])
		}
	}
	var b strings.Builder
	s.WriteText(&b)
	if !strings.Contains(b.String(), "95% CI") {
		t.Fatal("rendered summary missing CI")
	}
}
