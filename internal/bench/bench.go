// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §5) from the simulator,
// the baseline governors, the RL policy, and the hardware model.
//
// Each experiment is a pure function returning a result struct with a
// WriteText method; cmd/pmbench selects experiments by id and prints them,
// and bench_test.go wraps each in a testing.B benchmark so
// `go test -bench` regenerates the whole evaluation.
package bench

import (
	"fmt"
	"io"
	"math"

	"rlpm/internal/bench/engine"
	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// Options parameterizes a full evaluation run.
type Options struct {
	// PeriodS is the DVFS control period (default 50 ms).
	PeriodS float64
	// DurationS is the evaluated time per scenario (default 120 s).
	DurationS float64
	// TrainEpisodes is how many episodes the RL policy trains before its
	// frozen evaluation (default 120).
	TrainEpisodes int
	// Seed drives scenarios and exploration (default 1).
	Seed uint64
	// Quick shrinks durations/episodes ~10× for smoke tests.
	Quick bool
	// Parallel is the worker count the experiment engine fans evaluation
	// cells out over. 0 (the default) selects runtime.GOMAXPROCS; 1 forces
	// the serial path. Results are byte-identical at any setting: every
	// cell owns its RNG streams and results merge in canonical order.
	Parallel int
}

// DefaultOptions returns the evaluation configuration used in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{PeriodS: 0.05, DurationS: 120, TrainEpisodes: 120, Seed: 1}
}

func (o Options) normalized() Options {
	if o.PeriodS == 0 {
		o.PeriodS = 0.05
	}
	if o.DurationS == 0 {
		o.DurationS = 120
	}
	if o.TrainEpisodes == 0 {
		o.TrainEpisodes = 120
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Quick {
		o.DurationS = math.Max(o.PeriodS*40, o.DurationS/10)
		o.TrainEpisodes = maxInt(3, o.TrainEpisodes/10)
		// Clear the flag so normalization is idempotent — experiments
		// that compose other experiments re-normalize their options.
		o.Quick = false
	}
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (o Options) simConfig() sim.Config {
	return sim.Config{PeriodS: o.PeriodS, DurationS: o.DurationS, Seed: o.Seed}
}

// newChip builds the default evaluation chip.
func newChip() (*soc.Chip, error) {
	return soc.NewChip(soc.DefaultChipSpec())
}

// newScenario builds scenario name for the default two-cluster chip.
func newScenario(name string, seed uint64) (workload.Scenario, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.New(spec, 2, seed)
}

// trainedPolicy trains a fresh RL policy on scenario name and freezes it.
func trainedPolicy(name string, opt Options, cfg core.Config) (*core.Policy, error) {
	chip, err := newChip()
	if err != nil {
		return nil, err
	}
	scen, err := newScenario(name, opt.Seed)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := core.Train(chip, scen, p, opt.simConfig(), opt.TrainEpisodes); err != nil {
		return nil, err
	}
	p.SetLearning(false)
	return p, nil
}

// evalGovernor runs one (scenario, governor) cell.
func evalGovernor(name string, gov sim.Governor, opt Options) (sim.Result, error) {
	chip, err := newChip()
	if err != nil {
		return sim.Result{}, err
	}
	scen, err := newScenario(name, opt.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(chip, scen, gov, opt.simConfig())
}

// improvementPct is the capped relative improvement of proposed over
// baseline in percent. Baselines whose energy-per-QoS diverged (no useful
// QoS at all) count as the 100% cap.
func improvementPct(baseline, proposed float64) float64 {
	if math.IsInf(baseline, 1) {
		return 100
	}
	if baseline <= 0 {
		return 0
	}
	imp := 100 * (baseline - proposed) / baseline
	if imp > 100 {
		imp = 100
	}
	return imp
}

// fmtEQ formats an energy-per-QoS cell.
func fmtEQ(v float64) string {
	if math.IsInf(v, 1) {
		return "    inf"
	}
	return fmt.Sprintf("%7.4f", v)
}

// scenarioNames returns the evaluation scenarios in table order.
func scenarioNames() []string { return workload.Names() }

// simRun aliases sim.Run for the experiment files.
var simRun = sim.Run

// coreConfig is the RL configuration used across all experiments.
func coreConfig() core.Config { return core.DefaultConfig() }

// hwFromPolicy deploys a trained software policy onto the modeled
// accelerator with the default bus and banking.
func hwFromPolicy(p *core.Policy) sim.Governor {
	g, err := hwpolicy.FromPolicy(p, coreConfig(), bus.DefaultConfig(), hwpolicy.DefaultParams().Banks)
	if err != nil {
		panic(err) // callers pass trained policies; shapes always match
	}
	return g
}

// mapCells fans n evaluation cells out over opt.Parallel workers via the
// experiment engine and returns the per-cell results in canonical index
// order. Each cell must construct its own chip/scenario/governor — the
// engine guarantees ordered merge, the cell guarantees isolation.
func mapCells[T any](opt Options, n int, fn func(int) (T, error)) ([]T, error) {
	return engine.Map(opt.Parallel, n, fn)
}

// writeRule draws a separator line.
func writeRule(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
