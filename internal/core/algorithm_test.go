package core

import (
	"testing"

	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func TestAlgorithmValidate(t *testing.T) {
	for _, a := range []Algorithm{"", QLearning, SARSA, DoubleQ} {
		if err := a.Validate(); err != nil {
			t.Errorf("%q rejected: %v", a, err)
		}
	}
	if err := Algorithm("dqn").Validate(); err == nil {
		t.Error("unknown algorithm accepted")
	}
	cfg := DefaultConfig()
	cfg.Algorithm = "dqn"
	if err := cfg.Validate(); err == nil {
		t.Error("config with unknown algorithm accepted")
	}
}

func TestAlgorithmNormalize(t *testing.T) {
	if Algorithm("").normalize() != QLearning {
		t.Fatal("empty does not normalize to qlearning")
	}
	if SARSA.normalize() != SARSA {
		t.Fatal("sarsa does not normalize to itself")
	}
}

func algoConfig(a Algorithm) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = a
	return cfg
}

func TestAllAlgorithmsLearnTheBandit(t *testing.T) {
	// The single-state energy bandit from core_test.go: every algorithm
	// must converge to the cheapest action.
	for _, algo := range []Algorithm{QLearning, SARSA, DoubleQ} {
		cfg := algoConfig(algo)
		cfg.State = StateConfig{LoadBins: 1, QoSBins: 1, TrendBins: 1}
		cfg.EpsilonDecay = 0.999
		a, err := NewAgent(cfg, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for i := 0; i < 30000; i++ {
			o := obsFor(0.5, 1, 0.5, prev, 5, false, 0.05*float64(prev+1))
			prev = a.Step(o)
		}
		a.SetLearning(false)
		got := a.Step(obsFor(0.5, 1, 0.5, prev, 5, false, 0.05*float64(prev+1)))
		if got != 0 {
			t.Errorf("%s converged to action %d, want 0", algo, got)
		}
	}
}

func TestAlgorithmsDeterministic(t *testing.T) {
	for _, algo := range []Algorithm{SARSA, DoubleQ} {
		run := func() []int {
			a, _ := NewAgent(algoConfig(algo), 9, 3)
			var acts []int
			for i := 0; i < 500; i++ {
				acts = append(acts, a.Step(obsFor(float64(i%10)/10, 1, 0.5, i%9, 9, false, 0.1)))
			}
			return acts
		}
		x, y := run(), run()
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s diverged at step %d", algo, i)
			}
		}
	}
}

func TestDoubleQTablesExistAndAverage(t *testing.T) {
	a, err := NewAgent(algoConfig(DoubleQ), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.q2 == nil {
		t.Fatal("DoubleQ agent has no second table")
	}
	for i := 0; i < 2000; i++ {
		a.Step(obsFor(0.5, 0.9, 0.5, i%4, 4, true, 0.1))
	}
	// Table() must be the mean of both tables.
	tab := a.Table()
	for s := range tab {
		for x := range tab[s] {
			want := (a.q[s][x] + a.q2[s][x]) / 2
			if tab[s][x] != want {
				t.Fatalf("Table[%d][%d] = %v, want mean %v", s, x, tab[s][x], want)
			}
		}
	}
}

func TestDoubleQLoadTableSetsBoth(t *testing.T) {
	a, _ := NewAgent(algoConfig(DoubleQ), 4, 0)
	tab := a.Table()
	tab[0][2] = 7.5
	if err := a.LoadTable(tab); err != nil {
		t.Fatal(err)
	}
	if a.q[0][2] != 7.5 || a.q2[0][2] != 7.5 {
		t.Fatal("LoadTable did not set both tables")
	}
}

func TestDoubleQResetClearsBoth(t *testing.T) {
	a, _ := NewAgent(algoConfig(DoubleQ), 4, 0)
	for i := 0; i < 1000; i++ {
		a.Step(obsFor(0.5, 0.9, 0.5, i%4, 4, true, 0.1))
	}
	a.Reset()
	for s := range a.q {
		for x := range a.q[s] {
			if a.q[s][x] != 0 || a.q2[s][x] != 0 {
				t.Fatal("Reset left residue in a table")
			}
		}
	}
}

func TestQLearningHasNoSecondTable(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 4, 0)
	if a.q2 != nil {
		t.Fatal("QLearning agent allocated a second table")
	}
}

func TestAlgorithmsCloseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	// All three algorithms should land in the same quality ballpark on
	// video after equal training (within 20% of each other).
	results := map[Algorithm]float64{}
	for _, algo := range []Algorithm{QLearning, SARSA, DoubleQ} {
		chip, err := soc.NewChip(soc.DefaultChipSpec())
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := workload.ByName("video")
		scen, _ := workload.New(spec, 2, 1)
		cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}
		p := MustPolicy(algoConfig(algo))
		if _, err := Train(chip, scen, p, cfg, 25); err != nil {
			t.Fatal(err)
		}
		p.SetLearning(false)
		res, err := sim.Run(chip, scen, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[algo] = res.QoS.EnergyPerQoS
	}
	base := results[QLearning]
	for algo, eq := range results {
		if eq > base*1.2 || eq < base*0.8 {
			t.Errorf("%s E/QoS %v deviates >20%% from QLearning %v", algo, eq, base)
		}
	}
}
