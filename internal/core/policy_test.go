package core

import (
	"bytes"
	"testing"

	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func twoClusterObs(level0, level1 int) []sim.Observation {
	mk := func(lvl, n int) sim.Observation {
		return sim.Observation{
			Utilization:    0.6,
			DemandRatio:    0.7,
			QoS:            0.98,
			ClusterQoS:     0.98,
			Level:          lvl,
			NumLevels:      n,
			EnergyJ:        0.1,
			ClusterEnergyJ: 0.05,
			PeriodS:        0.05,
		}
	}
	return []sim.Observation{mk(level0, 8), mk(level1, 9)}
}

func TestNewPolicyValidates(t *testing.T) {
	if _, err := NewPolicy(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewPolicy(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestMustPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPolicy with bad config did not panic")
		}
	}()
	MustPolicy(Config{})
}

func TestPolicyLazyAgentCreation(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	if p.Agents() != nil {
		t.Fatal("agents exist before first Decide")
	}
	levels := p.Decide(twoClusterObs(0, 0))
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levels)
	}
	agents := p.Agents()
	if len(agents) != 2 {
		t.Fatalf("agents = %d", len(agents))
	}
	if agents[0].NumActions() != 8 || agents[1].NumActions() != 9 {
		t.Fatalf("agent action counts %d/%d", agents[0].NumActions(), agents[1].NumActions())
	}
}

func TestPolicyPanicsOnClusterCountChange(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	p.Decide(twoClusterObs(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("cluster count change did not panic")
		}
	}()
	p.Decide(twoClusterObs(0, 0)[:1])
}

func TestPolicyName(t *testing.T) {
	if got := MustPolicy(DefaultConfig()).Name(); got != "rl-policy" {
		t.Fatalf("Name = %q", got)
	}
}

func TestPolicyMeanEpsilonBeforeAndAfter(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	if got := p.MeanEpsilon(); got != DefaultConfig().EpsilonStart {
		t.Fatalf("pre-Decide MeanEpsilon = %v", got)
	}
	for i := 0; i < 3000; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	if got := p.MeanEpsilon(); got >= DefaultConfig().EpsilonStart {
		t.Fatalf("epsilon did not decay: %v", got)
	}
}

func TestPolicyMeanTD(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	if p.MeanTD() != 0 {
		t.Fatal("pre-Decide MeanTD nonzero")
	}
	for i := 0; i < 100; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	if p.MeanTD() < 0 {
		t.Fatal("negative TD magnitude")
	}
}

func TestPolicyResetClearsLearning(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	var first [][]int
	for i := 0; i < 200; i++ {
		first = append(first, p.Decide(twoClusterObs(i%8, i%9)))
	}
	p.Reset()
	for i := 0; i < 200; i++ {
		got := p.Decide(twoClusterObs(i%8, i%9))
		if got[0] != first[i][0] || got[1] != first[i][1] {
			t.Fatalf("decision %d after Reset diverged", i)
		}
	}
}

func TestPolicyBoostExploration(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	for i := 0; i < 20000; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	floor := p.MeanEpsilon()
	p.BoostExploration(0.2)
	if got := p.MeanEpsilon(); got <= floor || got != 0.2 {
		t.Fatalf("boost to 0.2 gave %v (floor %v)", got, floor)
	}
	// Boost above EpsilonStart caps at EpsilonStart.
	p.BoostExploration(0.99)
	if got := p.MeanEpsilon(); got != DefaultConfig().EpsilonStart {
		t.Fatalf("boost cap gave %v", got)
	}
	// Boost below current is ignored.
	p.BoostExploration(0.01)
	if got := p.MeanEpsilon(); got != DefaultConfig().EpsilonStart {
		t.Fatalf("downward boost applied: %v", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	for i := 0; i < 1000; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Tables) != 2 {
		t.Fatalf("tables = %d", len(snap.Tables))
	}

	q := MustPolicy(DefaultConfig())
	q.Decide(twoClusterObs(0, 0)) // materialize agents
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	qa := q.Agents()
	pa := p.Agents()
	for c := range qa {
		qt, pt := qa[c].Table(), pa[c].Table()
		for s := range qt {
			for x := range qt[s] {
				if qt[s][x] != pt[s][x] {
					t.Fatalf("cluster %d Q[%d][%d] differs after restore", c, s, x)
				}
			}
		}
	}
}

func TestSnapshotErrorsBeforeDecide(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	if _, err := p.Snapshot(); err == nil {
		t.Fatal("snapshot of undriven policy accepted")
	}
	if err := p.Restore(Snapshot{}); err == nil {
		t.Fatal("restore into undriven policy accepted")
	}
}

func TestRestoreValidatesShape(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	p.Decide(twoClusterObs(0, 0))
	snap, _ := p.Snapshot()

	// Mismatched state config.
	bad := snap
	bad.State.LoadBins = 99
	if err := p.Restore(bad); err == nil {
		t.Fatal("mismatched state config accepted")
	}
	// Wrong cluster count.
	bad = snap
	bad.Tables = snap.Tables[:1]
	if err := p.Restore(bad); err == nil {
		t.Fatal("short table list accepted")
	}
	// Ragged table.
	bad = snap
	bad.Tables = [][][]float64{snap.Tables[0][:3], snap.Tables[1]}
	if err := p.Restore(bad); err == nil {
		t.Fatal("ragged tables accepted")
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	for i := 0; i < 500; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	snap, _ := p.Snapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != snap.State || len(got.Tables) != len(snap.Tables) {
		t.Fatalf("decoded snapshot shape mismatch")
	}
	for c := range snap.Tables {
		for s := range snap.Tables[c] {
			for x := range snap.Tables[c][s] {
				if got.Tables[c][s][x] != snap.Tables[c][s][x] {
					t.Fatal("decoded snapshot values differ")
				}
			}
		}
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("not a gob")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestTrainValidatesEpisodes(t *testing.T) {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := workload.ByName("idle")
	scen, _ := workload.New(spec, 2, 1)
	p := MustPolicy(DefaultConfig())
	if _, err := Train(chip, scen, p, sim.Config{PeriodS: 0.05, DurationS: 1}, 0); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

func TestTrainProducesFullCurves(t *testing.T) {
	chip, _ := soc.NewChip(soc.DefaultChipSpec())
	spec, _ := workload.ByName("video")
	scen, _ := workload.New(spec, 2, 1)
	p := MustPolicy(DefaultConfig())
	tr, err := Train(chip, scen, p, sim.Config{PeriodS: 0.05, DurationS: 5, Seed: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.EnergyPerQoS) != 6 || len(tr.MeanQoS) != 6 || len(tr.ViolationRate) != 6 || len(tr.Epsilon) != 6 {
		t.Fatalf("curve lengths %d/%d/%d/%d", len(tr.EnergyPerQoS), len(tr.MeanQoS), len(tr.ViolationRate), len(tr.Epsilon))
	}
	for i := 1; i < len(tr.Epsilon); i++ {
		if tr.Epsilon[i] > tr.Epsilon[i-1] {
			t.Fatalf("epsilon rose between episodes %d and %d", i, i+1)
		}
	}
}

func TestTrainedPolicyIsFrozen(t *testing.T) {
	spec, _ := workload.ByName("idle")
	scen, _ := workload.New(spec, 2, 1)
	p, err := TrainedPolicy(DefaultConfig(), scen, sim.Config{PeriodS: 0.05, DurationS: 2, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Agents() {
		if a.Learning() {
			t.Fatal("TrainedPolicy returned a learning policy")
		}
	}
}

func TestPolicyEndToEndBeatsWorstGovernors(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// Integration: after training on video, the policy must be strictly
	// better on energy-per-QoS than the performance governor and must
	// keep the violation rate within 5%.
	chip, _ := soc.NewChip(soc.DefaultChipSpec())
	spec, _ := workload.ByName("video")
	scen, _ := workload.New(spec, 2, 1)
	cfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}
	p := MustPolicy(DefaultConfig())
	if _, err := Train(chip, scen, p, cfg, 30); err != nil {
		t.Fatal(err)
	}
	p.SetLearning(false)
	rl, err := sim.Run(chip, scen, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perf := &pinAll{level: 99}
	pr, err := sim.Run(chip, scen, perf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rl.QoS.EnergyPerQoS >= pr.QoS.EnergyPerQoS {
		t.Fatalf("RL %v not better than performance %v", rl.QoS.EnergyPerQoS, pr.QoS.EnergyPerQoS)
	}
	if rl.QoS.ViolationRate > 0.05 {
		t.Fatalf("RL violation rate %v > 5%%", rl.QoS.ViolationRate)
	}
}

type pinAll struct{ level int }

func (g *pinAll) Name() string { return "pin-all" }
func (g *pinAll) Reset()       {}
func (g *pinAll) Decide(obs []sim.Observation) []int {
	out := make([]int, len(obs))
	for i := range out {
		out[i] = g.level
	}
	return out
}

func BenchmarkPolicyDecide(b *testing.B) {
	p := MustPolicy(DefaultConfig())
	obs := twoClusterObs(4, 5)
	p.Decide(obs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Decide(obs)
	}
}
