package core

import (
	"fmt"

	"rlpm/internal/sim"
)

// Policy is the chip-level power management policy: one Q-learning Agent
// per cluster behind the sim.Governor interface, so it drops into the same
// control loop as the baseline governors.
type Policy struct {
	cfg    Config
	agents []*Agent
}

var _ sim.InPlaceGovernor = (*Policy)(nil)

// NewPolicy creates a policy; agents are instantiated lazily on the first
// Decide call, when the cluster count and OPP table sizes are known.
func NewPolicy(cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Policy{cfg: cfg}, nil
}

// MustPolicy is NewPolicy for static configurations; panics on error.
func MustPolicy(cfg Config) *Policy {
	p, err := NewPolicy(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements sim.Governor.
func (*Policy) Name() string { return "rl-policy" }

// Decide implements sim.Governor: one Q-learning step per cluster.
func (p *Policy) Decide(obs []sim.Observation) []int {
	return p.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor: after the lazy first-call
// agent construction, the decision path performs no allocation.
func (p *Policy) DecideInto(dst []int, obs []sim.Observation) []int {
	if p.agents == nil {
		p.agents = make([]*Agent, len(obs))
		for i, o := range obs {
			a, err := NewAgent(p.cfg, o.NumLevels, uint64(i))
			if err != nil {
				panic(err) // cfg validated in NewPolicy; only bad NumLevels can land here
			}
			p.agents[i] = a
		}
	}
	if len(obs) != len(p.agents) {
		panic(fmt.Sprintf("core: policy built for %d clusters, got %d observations", len(p.agents), len(obs)))
	}
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		dst[i] = p.agents[i].Step(o)
	}
	return dst
}

// Reset implements sim.Governor: clears all learned state.
func (p *Policy) Reset() {
	for _, a := range p.agents {
		a.Reset()
	}
}

// SetLearning toggles learning/exploration on every agent.
func (p *Policy) SetLearning(on bool) {
	for _, a := range p.agents {
		a.SetLearning(on)
	}
}

// BoostExploration raises every agent's exploration rate to eps (capped at
// the configured start rate) without discarding learned values — the knob
// for adapting to a workload shift.
func (p *Policy) BoostExploration(eps float64) {
	for _, a := range p.agents {
		a.BoostExploration(eps)
	}
}

// Agents returns the per-cluster agents (nil before the first Decide).
func (p *Policy) Agents() []*Agent { return p.agents }

// MeanEpsilon returns the average exploration rate across agents, a
// convergence indicator for Fig. 2.
func (p *Policy) MeanEpsilon() float64 {
	if len(p.agents) == 0 {
		return p.cfg.EpsilonStart
	}
	var sum float64
	for _, a := range p.agents {
		sum += a.Epsilon()
	}
	return sum / float64(len(p.agents))
}

// MeanTD returns the average last TD-error magnitude across agents.
func (p *Policy) MeanTD() float64 {
	if len(p.agents) == 0 {
		return 0
	}
	var sum float64
	for _, a := range p.agents {
		sum += a.LastTD()
	}
	return sum / float64(len(p.agents))
}
