package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: the durable, versioned image of a trained policy that
// the serving layer (internal/serve, cmd/pmserve) persists and restores.
// Unlike the gob-based Encode/ReadSnapshot pair — which is convenient for
// same-binary round trips but has no integrity protection and no version
// negotiation — the checkpoint codec is a fixed little-endian layout with a
// magic, an explicit version, and a trailing CRC32, so a serving fleet can
// reject a truncated upload, a bit-rotted disk block, or a file written by
// an incompatible release with a typed error instead of serving garbage
// Q-values.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "RLPMCKPT"
//	8       4     version (currently 1)
//	12      4     LoadBins
//	16      4     QoSBins
//	20      4     TrendBins
//	24      4     table count
//	...           per table: states uint32, actions uint32,
//	              then states×actions float64 bit patterns (row-major)
//	end-4   4     CRC32 (IEEE) of every preceding byte
//
// Versioning rules: readers accept exactly the versions they know; any
// other version fails with ErrCheckpointVersion (never a best-effort
// parse). Layout changes — new fields, different table encoding — bump the
// version. Additions that can live entirely inside the existing fields do
// not.
const CheckpointVersion = 1

// checkpointMagic identifies a checkpoint file.
var checkpointMagic = [8]byte{'R', 'L', 'P', 'M', 'C', 'K', 'P', 'T'}

// ErrCheckpointCorrupt is wrapped by every decode failure caused by the
// bytes themselves: bad magic, truncation, checksum mismatch, or a payload
// whose structure is inconsistent (e.g. a table shape that contradicts the
// recorded state configuration).
var ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")

// ErrCheckpointVersion is wrapped when the file is a well-formed checkpoint
// of a version this binary does not speak.
var ErrCheckpointVersion = errors.New("core: unsupported checkpoint version")

// checkpointHeaderLen is magic + version + 3 state-config fields + count.
const checkpointHeaderLen = 8 + 4 + 4*3 + 4

// EncodeCheckpoint writes the snapshot in the checkpoint format. The
// encoding is canonical: equal snapshots produce identical bytes (float64
// values are stored as their exact bit patterns, so even NaN payloads
// round-trip).
func (s Snapshot) EncodeCheckpoint(w io.Writer) error {
	if err := s.validateForCheckpoint(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	putU32(&buf, CheckpointVersion)
	putU32(&buf, uint32(s.State.LoadBins))
	putU32(&buf, uint32(s.State.QoSBins))
	putU32(&buf, uint32(s.State.TrendBins))
	putU32(&buf, uint32(len(s.Tables)))
	for _, t := range s.Tables {
		putU32(&buf, uint32(len(t)))
		putU32(&buf, uint32(len(t[0])))
		for _, row := range t {
			for _, v := range row {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf.Write(b[:])
			}
		}
	}
	putU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// validateForCheckpoint rejects snapshots the canonical layout cannot
// represent: only consistent rectangular tables whose state count matches
// the recorded configuration have a unique encoding.
func (s Snapshot) validateForCheckpoint() error {
	if err := s.State.Validate(); err != nil {
		return err
	}
	if len(s.Tables) == 0 {
		return fmt.Errorf("core: checkpoint needs at least one table")
	}
	for c, t := range s.Tables {
		if len(t) == 0 || len(t[0]) == 0 {
			return fmt.Errorf("core: checkpoint table %d is empty", c)
		}
		actions := len(t[0])
		if len(t) != s.State.States(actions) {
			return fmt.Errorf("core: checkpoint table %d has %d states, config %+v with %d actions needs %d",
				c, len(t), s.State, actions, s.State.States(actions))
		}
		for r, row := range t {
			if len(row) != actions {
				return fmt.Errorf("core: checkpoint table %d row %d has %d actions, row 0 has %d", c, r, len(row), actions)
			}
		}
	}
	return nil
}

// DecodeCheckpoint parses a checkpoint written by EncodeCheckpoint. Any
// corruption — wrong magic, truncation, flipped bits (checksum), trailing
// garbage, or a structurally inconsistent payload — fails with an error
// wrapping ErrCheckpointCorrupt; a clean file of an unknown version fails
// with ErrCheckpointVersion. It never panics on arbitrary input, and its
// allocations are bounded by the input length.
func DecodeCheckpoint(r io.Reader) (Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Snapshot{}, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	return decodeCheckpoint(raw)
}

func decodeCheckpoint(raw []byte) (Snapshot, error) {
	if len(raw) < checkpointHeaderLen+4 {
		return Snapshot{}, fmt.Errorf("%w: %d bytes is shorter than the minimal checkpoint", ErrCheckpointCorrupt, len(raw))
	}
	if !bytes.Equal(raw[:8], checkpointMagic[:]) {
		return Snapshot{}, fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != CheckpointVersion {
		return Snapshot{}, fmt.Errorf("%w: file is version %d, this build reads %d", ErrCheckpointVersion, v, CheckpointVersion)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return Snapshot{}, fmt.Errorf("%w: checksum %#x != computed %#x", ErrCheckpointCorrupt, got, want)
	}

	p := body[12:]
	var s Snapshot
	s.State.LoadBins = int(int32(takeU32(&p)))
	s.State.QoSBins = int(int32(takeU32(&p)))
	s.State.TrendBins = int(int32(takeU32(&p)))
	if err := s.State.Validate(); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	count := takeU32(&p)
	for c := uint32(0); c < count; c++ {
		if len(p) < 8 {
			return Snapshot{}, fmt.Errorf("%w: truncated at table %d header", ErrCheckpointCorrupt, c)
		}
		states, actions := takeU32(&p), takeU32(&p)
		if states == 0 || actions == 0 {
			return Snapshot{}, fmt.Errorf("%w: table %d has shape %d×%d", ErrCheckpointCorrupt, c, states, actions)
		}
		// The state count is redundant with the configuration; enforcing the
		// relation rejects structurally inconsistent payloads early and caps
		// the allocation below at what the remaining bytes can actually hold.
		if int(states) != s.State.States(int(actions)) {
			return Snapshot{}, fmt.Errorf("%w: table %d claims %d states for %d actions, config %+v needs %d",
				ErrCheckpointCorrupt, c, states, actions, s.State, s.State.States(int(actions)))
		}
		words := uint64(states) * uint64(actions)
		if uint64(len(p)) < words*8 {
			return Snapshot{}, fmt.Errorf("%w: table %d needs %d bytes, %d remain", ErrCheckpointCorrupt, c, words*8, len(p))
		}
		t := make([][]float64, states)
		flat := make([]float64, words)
		for i := range flat {
			flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[words*8:]
		for i := range t {
			t[i] = flat[uint64(i)*uint64(actions) : (uint64(i)+1)*uint64(actions) : (uint64(i)+1)*uint64(actions)]
		}
		s.Tables = append(s.Tables, t)
	}
	if len(p) != 0 {
		return Snapshot{}, fmt.Errorf("%w: %d trailing bytes after last table", ErrCheckpointCorrupt, len(p))
	}
	if len(s.Tables) == 0 {
		return Snapshot{}, fmt.Errorf("%w: checkpoint has no tables", ErrCheckpointCorrupt)
	}
	return s, nil
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

// takeU32 consumes a little-endian uint32 from the front of *p. Callers
// guarantee at least 4 bytes remain (the fixed header is length-checked up
// front; variable sections check before each pair).
func takeU32(p *[]byte) uint32 {
	v := binary.LittleEndian.Uint32((*p)[:4])
	*p = (*p)[4:]
	return v
}
