package core

import (
	"fmt"

	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// TrainResult reports per-episode learning progress (the series behind
// Fig. 2).
type TrainResult struct {
	EnergyPerQoS  []float64 // one point per episode
	MeanQoS       []float64
	ViolationRate []float64
	Epsilon       []float64 // exploration rate at episode end
}

// Train runs the policy online for the given number of episodes of the
// scenario on the chip and returns the learning curve. The policy keeps
// its table afterwards; call p.SetLearning(false) to freeze it for
// evaluation.
func Train(chip *soc.Chip, scen workload.Scenario, p *Policy, cfg sim.Config, episodes int) (TrainResult, error) {
	if episodes <= 0 {
		return TrainResult{}, fmt.Errorf("core: non-positive episode count %d", episodes)
	}
	p.SetLearning(true)
	var tr TrainResult
	results, err := sim.RunEpisodes(chip, scen, p, cfg, episodes)
	if err != nil {
		return TrainResult{}, err
	}
	for _, r := range results {
		tr.EnergyPerQoS = append(tr.EnergyPerQoS, r.QoS.EnergyPerQoS)
		tr.MeanQoS = append(tr.MeanQoS, r.QoS.MeanQoS)
		tr.ViolationRate = append(tr.ViolationRate, r.QoS.ViolationRate)
		tr.Epsilon = append(tr.Epsilon, p.MeanEpsilon())
	}
	return tr, nil
}

// TrainedPolicy is a convenience that builds a policy with cfg, trains it
// for episodes of scenario on a fresh default chip, freezes it, and
// returns it ready for evaluation.
func TrainedPolicy(cfg Config, scen workload.Scenario, simCfg sim.Config, episodes int) (*Policy, error) {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return nil, err
	}
	p, err := NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := Train(chip, scen, p, simCfg, episodes); err != nil {
		return nil, err
	}
	p.SetLearning(false)
	return p, nil
}
