package core

import (
	"errors"
	"math"
	"testing"

	"rlpm/internal/rng"
)

// updaterSnapshot builds a deterministic snapshot for the given per-cluster
// action counts, with table values from a fixed rng stream.
func updaterSnapshot(cfg Config, levels ...int) Snapshot {
	snap := Snapshot{State: cfg.State}
	r := rng.New(42)
	for _, n := range levels {
		states := cfg.State.States(n)
		table := make([][]float64, states)
		for s := range table {
			row := make([]float64, n)
			for a := range row {
				row[a] = r.Float64()*2 - 1
			}
			table[s] = row
		}
		snap.Tables = append(snap.Tables, table)
	}
	return snap
}

// TestTDUpdaterFirstStepHandComputed exploits the q = q2 = mean hydration
// convention: on the very first update both tables are identical, so the
// TD step is computable without knowing the Double-Q coin outcome.
func TestTDUpdaterFirstStepHandComputed(t *testing.T) {
	cfg := DefaultConfig()
	snap := updaterSnapshot(cfg, 4)
	const alpha, gamma = 0.5, 0.9
	u, err := NewTDUpdater(cfg, snap, 7, alpha, gamma)
	if err != nil {
		t.Fatalf("NewTDUpdater: %v", err)
	}
	tr := Transition{Cluster: 0, State: 3, Action: 1, NextState: 5, Reward: -0.25}

	next := snap.Tables[0][tr.NextState]
	best := next[0]
	for _, v := range next[1:] {
		if v > best {
			best = v
		}
	}
	wantTD := tr.Reward + gamma*best - snap.Tables[0][tr.State][tr.Action]

	td, err := u.Apply(tr)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(td-wantTD) > 1e-12 {
		t.Fatalf("td = %v, want %v", td, wantTD)
	}
	if got := u.Applied(); got != 1 {
		t.Fatalf("Applied = %d, want 1", got)
	}
	// Only one of the two tables moved, so the published mean moves by
	// alpha*td/2.
	wantMean := snap.Tables[0][tr.State][tr.Action] + alpha*wantTD/2
	got := u.Snapshot().Tables[0][tr.State][tr.Action]
	if math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("snapshot mean = %v, want %v", got, wantMean)
	}
}

func TestTDUpdaterSeededDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	snap := updaterSnapshot(cfg, 4, 3)
	mk := func(seed uint64) *TDUpdater {
		u, err := NewTDUpdater(cfg, snap, seed, 0.3, 0.8)
		if err != nil {
			t.Fatalf("NewTDUpdater: %v", err)
		}
		return u
	}
	gen := rng.New(99)
	trs := make([]Transition, 200)
	states := cfg.State.States(4)
	for i := range trs {
		trs[i] = Transition{
			Cluster:   gen.Intn(2),
			State:     gen.Intn(states),
			Action:    gen.Intn(3), // valid for both clusters
			NextState: gen.Intn(states),
			Reward:    gen.Float64()*2 - 1,
		}
		if trs[i].Cluster == 1 {
			trs[i].State %= cfg.State.States(3)
			trs[i].NextState %= cfg.State.States(3)
		}
	}
	a, b := mk(11), mk(11)
	for _, tr := range trs {
		tda, erra := a.Apply(tr)
		tdb, errb := b.Apply(tr)
		if erra != nil || errb != nil {
			t.Fatalf("Apply: %v / %v", erra, errb)
		}
		if tda != tdb {
			t.Fatalf("same-seed TD divergence: %v != %v", tda, tdb)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for c := range sa.Tables {
		for s := range sa.Tables[c] {
			for i := range sa.Tables[c][s] {
				if sa.Tables[c][s][i] != sb.Tables[c][s][i] {
					t.Fatalf("same-seed table divergence at [%d][%d][%d]", c, s, i)
				}
			}
		}
	}
}

// TestTDUpdaterRejectsWithoutSideEffects pins the property the seeded
// replay mode depends on: a rejected transition must not advance the coin
// stream, the applied counter, or the tables — an updater that saw (and
// rejected) garbage stays bit-identical to one that never saw it.
func TestTDUpdaterRejectsWithoutSideEffects(t *testing.T) {
	cfg := DefaultConfig()
	snap := updaterSnapshot(cfg, 4)
	states := cfg.State.States(4)
	bad := []Transition{
		{Cluster: -1, State: 0, Action: 0, NextState: 0},
		{Cluster: 1, State: 0, Action: 0, NextState: 0},
		{Cluster: 0, State: -1, Action: 0, NextState: 0},
		{Cluster: 0, State: states, Action: 0, NextState: 0},
		{Cluster: 0, State: 0, Action: 0, NextState: states},
		{Cluster: 0, State: 0, Action: -1, NextState: 0},
		{Cluster: 0, State: 0, Action: 4, NextState: 0},
		{Cluster: 0, State: 0, Action: 0, NextState: 0, Reward: math.NaN()},
		{Cluster: 0, State: 0, Action: 0, NextState: 0, Reward: math.Inf(1)},
	}
	good := []Transition{
		{Cluster: 0, State: 1, Action: 2, NextState: 3, Reward: 0.5},
		{Cluster: 0, State: 3, Action: 0, NextState: 1, Reward: -0.5},
		{Cluster: 0, State: 2, Action: 3, NextState: 2, Reward: 0.1},
	}

	poisoned, _ := NewTDUpdater(cfg, snap, 5, 0.4, 0.7)
	clean, _ := NewTDUpdater(cfg, snap, 5, 0.4, 0.7)
	for i, tr := range good {
		for _, b := range bad {
			if _, err := poisoned.Apply(b); err == nil {
				t.Fatalf("Apply(%+v) accepted", b)
			}
		}
		tdp, err := poisoned.Apply(tr)
		if err != nil {
			t.Fatalf("Apply good %d: %v", i, err)
		}
		tdc, err := clean.Apply(tr)
		if err != nil {
			t.Fatalf("Apply good %d: %v", i, err)
		}
		if tdp != tdc {
			t.Fatalf("good apply %d diverged after rejected garbage: %v != %v", i, tdp, tdc)
		}
	}
	if poisoned.Applied() != uint64(len(good)) {
		t.Fatalf("Applied = %d, want %d", poisoned.Applied(), len(good))
	}
	sp, sc := poisoned.Snapshot(), clean.Snapshot()
	for s := range sp.Tables[0] {
		for a := range sp.Tables[0][s] {
			if sp.Tables[0][s][a] != sc.Tables[0][s][a] {
				t.Fatalf("tables diverged at [%d][%d]", s, a)
			}
		}
	}
	if _, err := poisoned.Apply(Transition{Reward: math.NaN()}); !errors.Is(err, ErrBadObservation) {
		t.Fatalf("NaN reward error = %v, want ErrBadObservation", err)
	}
}

func TestTDUpdaterConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	snap := updaterSnapshot(cfg, 4)
	if _, err := NewTDUpdater(cfg, snap, 1, -0.1, 0.9); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewTDUpdater(cfg, snap, 1, 0.5, 1.0); err == nil {
		t.Fatal("gamma 1.0 accepted")
	}
	if _, err := NewTDUpdater(cfg, Snapshot{State: cfg.State}, 1, 0.5, 0.9); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	other := cfg
	other.State.LoadBins++
	if _, err := NewTDUpdater(other, snap, 1, 0.5, 0.9); err == nil {
		t.Fatal("state-config mismatch accepted")
	}
	// alpha/gamma 0 select the config values.
	u, err := NewTDUpdater(cfg, snap, 1, 0, 0)
	if err != nil {
		t.Fatalf("NewTDUpdater with config alpha/gamma: %v", err)
	}
	if u.alpha != cfg.Alpha || u.gamma != cfg.Gamma {
		t.Fatalf("alpha/gamma = %v/%v, want config %v/%v", u.alpha, u.gamma, cfg.Alpha, cfg.Gamma)
	}
}

func TestValidateObservation(t *testing.T) {
	cfg := DefaultConfig()
	ok := obsFor(0.5, 0.97, 1.2, 2, 4, false, 0.1)
	if err := cfg.ValidateObservation(ok); err != nil {
		t.Fatalf("valid observation rejected: %v", err)
	}
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.01}
	fields := []string{"DemandRatio", "QoS", "ClusterQoS", "Utilization"}
	for _, f := range fields {
		for _, v := range bads {
			o := ok
			switch f {
			case "DemandRatio":
				o.DemandRatio = v
			case "QoS":
				o.QoS = v
			case "ClusterQoS":
				o.ClusterQoS = v
			case "Utilization":
				o.Utilization = v
			}
			err := cfg.ValidateObservation(o)
			if !errors.Is(err, ErrBadObservation) {
				t.Fatalf("%s=%v: err = %v, want ErrBadObservation", f, v, err)
			}
		}
	}
}
