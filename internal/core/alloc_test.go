package core

import (
	"testing"

	"rlpm/internal/sim"
)

func allocObs() []sim.Observation {
	little := []float64{400e6, 600e6, 800e6, 1000e6, 1200e6, 1400e6, 1600e6, 1800e6}
	big := []float64{600e6, 800e6, 1000e6, 1200e6, 1400e6, 1600e6, 1800e6, 2000e6, 2300e6}
	mk := func(freqs []float64) sim.Observation {
		return sim.Observation{
			Utilization: 0.7, DemandRatio: 0.9, QoS: 0.97, ClusterQoS: 0.97,
			Level: 3, NumLevels: len(freqs), FreqsHz: freqs,
			EnergyJ: 0.1, ClusterEnergyJ: 0.05, TempC: 45, PeriodS: 0.05,
		}
	}
	return []sim.Observation{mk(little), mk(big)}
}

// TestAgentStepAllocFree pins one decide+learn step at zero allocations
// for every TD algorithm (DoubleQ exercises the summed-table action
// selection, which needs its own scratch buffer).
func TestAgentStepAllocFree(t *testing.T) {
	for _, algo := range []Algorithm{QLearning, SARSA, DoubleQ} {
		t.Run(string(algo), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Algorithm = algo
			a, err := NewAgent(cfg, 9, 0)
			if err != nil {
				t.Fatal(err)
			}
			o := allocObs()[1]
			o.Level = a.Step(o) // warm-up: lazy table growth happens here
			allocs := testing.AllocsPerRun(200, func() {
				o.Level = a.Step(o)
			})
			if allocs != 0 {
				t.Fatalf("%s Agent.Step allocates %.1f times per step, want 0", algo, allocs)
			}
		})
	}
}

// TestPolicyDecideIntoAllocFree pins the chip-level policy decision at
// zero allocations after the lazy first call constructs the agents.
func TestPolicyDecideIntoAllocFree(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	obs := allocObs()
	dst := make([]int, len(obs))
	dst = p.DecideInto(dst, obs) // warm-up: agent construction
	allocs := testing.AllocsPerRun(200, func() {
		dst = p.DecideInto(dst, obs)
	})
	if allocs != 0 {
		t.Fatalf("Policy.DecideInto allocates %.1f times per call, want 0", allocs)
	}
}
