package core

import "fmt"

// Algorithm selects the temporal-difference update rule the agent runs.
//
// The paper implements tabular Q-learning — the only of the three whose
// datapath is a single argmax plus one MAC, which is why it is what the
// FPGA accelerates. SARSA and Double Q-learning are provided for the
// algorithm ablation: SARSA is on-policy (its target follows the ε-greedy
// action actually taken), and Double Q-learning decorrelates action
// selection from evaluation to counter Q-learning's maximization bias at
// the cost of a second table.
type Algorithm string

// Supported algorithms. The empty string means QLearning.
const (
	QLearning Algorithm = "qlearning"
	SARSA     Algorithm = "sarsa"
	DoubleQ   Algorithm = "doubleq"
)

// Validate checks the algorithm name.
func (a Algorithm) Validate() error {
	switch a {
	case "", QLearning, SARSA, DoubleQ:
		return nil
	default:
		return fmt.Errorf("core: unknown algorithm %q", a)
	}
}

// normalize maps the empty default to QLearning.
func (a Algorithm) normalize() Algorithm {
	if a == "" {
		return QLearning
	}
	return a
}
