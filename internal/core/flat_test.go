package core

import (
	"testing"

	"rlpm/internal/rng"
)

// flatTestTables builds deterministic pseudo-random tables shaped like a
// two-cluster serving model (different state and action counts per cluster).
func flatTestTables(seed uint64) [][][]float64 {
	r := rng.New(seed)
	shape := []struct{ states, actions int }{{864, 9}, {100, 5}}
	var tables [][][]float64
	for _, sh := range shape {
		t := make([][]float64, sh.states)
		for s := range t {
			row := make([]float64, sh.actions)
			for a := range row {
				row[a] = r.Float64()*2 - 1
			}
			// Sprinkle exact ties so the ties-break-low rule is exercised,
			// not just assumed.
			if s%7 == 0 && sh.actions > 2 {
				row[sh.actions-1] = row[1]
			}
			t[s] = row
		}
		tables = append(tables, t)
	}
	return tables
}

// TestFlatTablesArgmaxEquivalence pins the flat kernel to argmaxF over
// every (cluster, state) row — same winner, ties break low.
func TestFlatTablesArgmaxEquivalence(t *testing.T) {
	tables := flatTestTables(42)
	ft := NewFlatTables(tables)
	if ft == nil {
		t.Fatal("NewFlatTables rejected a representable shape")
	}
	if ft.Clusters() != len(tables) {
		t.Fatalf("Clusters() = %d, want %d", ft.Clusters(), len(tables))
	}
	for c, tab := range tables {
		if ft.Width(c) != len(tab[0]) {
			t.Fatalf("Width(%d) = %d, want %d", c, ft.Width(c), len(tab[0]))
		}
		for s, row := range tab {
			want, _ := argmaxF(row)
			if got := ft.Argmax(c, s); got != want {
				t.Fatalf("cluster %d state %d: flat argmax %d, argmaxF %d", c, s, got, want)
			}
		}
	}
}

// TestFlatTablesLookupMany pins the batched kernel against per-lookup
// Argmax on a batch with heavy state repetition (the memoized-row path)
// and unsorted input order.
func TestFlatTablesLookupMany(t *testing.T) {
	tables := flatTestTables(7)
	ft := NewFlatTables(tables)
	if ft == nil {
		t.Fatal("NewFlatTables rejected a representable shape")
	}
	r := rng.New(99)
	const batch = 500
	type lk struct{ c, s int }
	lookups := make([]lk, batch)
	keys := make([]uint64, batch)
	out := make([]int, batch)
	for i := range lookups {
		c := r.Intn(len(tables))
		s := r.Intn(len(tables[c]) / 4) // small state range → many duplicates
		lookups[i] = lk{c, s}
		keys[i] = ft.Key(c, s, i)
	}
	memo := ft.NewMemo()
	// Resolve the same batch repeatedly through one memo: the second and
	// third calls must not reuse the previous call's entries as-is (the
	// epoch tag is what invalidates them) and must still agree with Argmax.
	for call := 0; call < 3; call++ {
		ft.LookupManyInto(keys, out, memo)
		for i, l := range lookups {
			if want := ft.Argmax(l.c, l.s); out[i] != want {
				t.Fatalf("call %d lookup %d (cluster %d state %d): batch %d, direct %d", call, i, l.c, l.s, out[i], want)
			}
		}
	}
}

// TestFlatMemoEpochWraps pins the epoch-rollover path: when the call
// counter reaches the tag's epoch-field capacity, entries written 16M
// calls ago must not read as fresh.
func TestFlatMemoEpochWraps(t *testing.T) {
	tables := flatTestTables(11)
	ft := NewFlatTables(tables)
	if ft == nil {
		t.Fatal("NewFlatTables rejected a representable shape")
	}
	memo := ft.NewMemo()
	keys := []uint64{ft.Key(0, 3, 0), ft.Key(1, 4, 1), ft.Key(0, 3, 2)}
	out := make([]int, len(keys))
	// Poison an entry with a wrong action under what will become the
	// post-wrap epoch: if the wrap fails to clear the memo, this stale
	// entry reads as fresh and surfaces the wrong action.
	wrong := uint32(ft.Argmax(0, 3)+1) % uint32(ft.Width(0))
	memo.tag[keys[0]>>(flatKeyIdxBits+flatKeyWidthBits)] = 1<<flatMemoActBits | wrong
	memo.cur = 1<<(32-flatMemoActBits) - 1 // next call wraps
	ft.LookupManyInto(keys, out, memo)
	if memo.cur != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", memo.cur)
	}
	want := []int{ft.Argmax(0, 3), ft.Argmax(1, 4), ft.Argmax(0, 3)}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("post-wrap lookup %d: got %d, want %d", i, out[i], want[i])
		}
	}
}

// TestFlatTablesUnrepresentable pins the nil fallbacks: shapes the packed
// key cannot express must be rejected, not silently mis-encoded.
func TestFlatTablesUnrepresentable(t *testing.T) {
	wide := make([]float64, 256)
	cases := map[string][][][]float64{
		"empty table":    {{}},
		"empty row":      {{{}}},
		"width over 255": {{wide}},
		"ragged rows":    {{{1, 2}, {1, 2, 3}}},
	}
	for name, tables := range cases {
		if NewFlatTables(tables) != nil {
			t.Errorf("%s: NewFlatTables accepted an unrepresentable shape", name)
		}
	}
}

// TestFlatLookupManyAllocFree pins the batched kernel at zero allocations —
// the property the serving backend's hot path depends on.
func TestFlatLookupManyAllocFree(t *testing.T) {
	ft := NewFlatTables(flatTestTables(3))
	if ft == nil {
		t.Fatal("NewFlatTables rejected a representable shape")
	}
	const batch = 64
	proto := make([]uint64, batch)
	r := rng.New(5)
	for i := range proto {
		proto[i] = ft.Key(r.Intn(2), r.Intn(100), i)
	}
	keys := make([]uint64, batch)
	out := make([]int, batch)
	memo := ft.NewMemo()
	allocs := testing.AllocsPerRun(200, func() {
		copy(keys, proto)
		ft.LookupManyInto(keys, out, memo)
	})
	if allocs != 0 {
		t.Fatalf("LookupManyInto allocated %.1f times per batch, want 0", allocs)
	}
}
