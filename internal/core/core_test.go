package core

import (
	"math"
	"testing"
	"testing/quick"

	"rlpm/internal/sim"
)

func obsFor(util, qosv, demand float64, level, numLevels int, critical bool, energy float64) sim.Observation {
	return sim.Observation{
		Utilization:    util,
		DemandRatio:    demand,
		QoS:            qosv,
		Critical:       critical,
		Level:          level,
		NumLevels:      numLevels,
		EnergyJ:        energy,
		ClusterEnergyJ: energy,
		ClusterQoS:     qosv,
		PeriodS:        0.05,
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"alpha 0", func(c *Config) { c.Alpha = 0 }},
		{"alpha >1", func(c *Config) { c.Alpha = 1.5 }},
		{"gamma 1", func(c *Config) { c.Gamma = 1 }},
		{"gamma neg", func(c *Config) { c.Gamma = -0.1 }},
		{"eps min > start", func(c *Config) { c.EpsilonMin = 0.9 }},
		{"eps start >1", func(c *Config) { c.EpsilonStart = 1.5 }},
		{"decay 0", func(c *Config) { c.EpsilonDecay = 0 }},
		{"neg lambda", func(c *Config) { c.LambdaViolation = -1 }},
		{"qos threshold 0", func(c *Config) { c.QoSThreshold = 0 }},
		{"energy scale 0", func(c *Config) { c.EnergyScaleJ = 0 }},
		{"util bins 0", func(c *Config) { c.State.LoadBins = 0 }},
		{"trend bins 2", func(c *Config) { c.State.TrendBins = 2 }},
	}
	for _, cse := range cases {
		c := DefaultConfig()
		cse.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", cse.name)
		}
	}
}

func TestStateConfigStates(t *testing.T) {
	s := DefaultStateConfig()
	if got := s.States(9); got != 8*4*3*9 {
		t.Fatalf("States(9) = %d", got)
	}
}

func TestEncodeStateInRangeExhaustive(t *testing.T) {
	cfg := DefaultConfig()
	const numLevels = 9
	max := cfg.State.States(numLevels)
	seen := map[int]bool{}
	for _, util := range []float64{0, 0.1, 0.49, 0.5, 0.99, 1.0, 1.5} {
		for _, q := range []float64{0, 0.3, 0.6, 0.96, 1} {
			for _, dr := range []float64{0, 0.5, 2} {
				for _, prev := range []float64{0, 0.5, 2} {
					for lvl := 0; lvl < numLevels; lvl++ {
						o := obsFor(util, q, dr, lvl, numLevels, false, 0.1)
						s := cfg.EncodeState(o, prev)
						if s < 0 || s >= max {
							t.Fatalf("state %d out of [0,%d) for util=%v qos=%v", s, max, util, q)
						}
						seen[s] = true
					}
				}
			}
		}
	}
	if len(seen) < 50 {
		t.Fatalf("encoding collapses too much: only %d distinct states", len(seen))
	}
}

func TestEncodeStateTrend(t *testing.T) {
	cfg := DefaultConfig()
	o := obsFor(0.5, 1, 0.5, 0, 9, false, 0.1)
	up := cfg.EncodeState(o, 0.2)
	down := cfg.EncodeState(o, 0.9)
	flat := cfg.EncodeState(o, 0.5)
	if up == down || up == flat || down == flat {
		t.Fatalf("trend bands not distinguished: up=%d down=%d flat=%d", up, down, flat)
	}
}

func TestEncodeStateTrendDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.State.TrendBins = 1
	o := obsFor(0.5, 1, 0.5, 0, 9, false, 0.1)
	if cfg.EncodeState(o, 0.2) != cfg.EncodeState(o, 0.9) {
		t.Fatal("trend bins=1 still distinguishes trends")
	}
}

func TestRewardShape(t *testing.T) {
	cfg := DefaultConfig()
	// More energy → lower reward.
	lo := cfg.Reward(obsFor(0.5, 1, 0.5, 4, 9, false, 0.05))
	hi := cfg.Reward(obsFor(0.5, 1, 0.5, 4, 9, false, 0.30))
	if hi >= lo {
		t.Fatalf("reward not decreasing in energy: %v >= %v", hi, lo)
	}
	// Violation on a critical period is penalized beyond the QoS shaping.
	viol := cfg.Reward(obsFor(0.5, 0.5, 0.5, 4, 9, true, 0.05))
	same := cfg.Reward(obsFor(0.5, 0.5, 0.5, 4, 9, false, 0.05))
	if math.Abs((same-viol)-cfg.LambdaViolation) > 1e-12 {
		t.Fatalf("violation penalty = %v, want %v", same-viol, cfg.LambdaViolation)
	}
	// No penalty when QoS meets the threshold on a critical period.
	ok := cfg.Reward(obsFor(0.5, 0.99, 0.5, 4, 9, true, 0.05))
	okNC := cfg.Reward(obsFor(0.5, 0.99, 0.5, 4, 9, false, 0.05))
	if ok != okNC {
		t.Fatalf("penalty applied despite meeting threshold: %v vs %v", ok, okNC)
	}
}

func TestNewAgentValidates(t *testing.T) {
	if _, err := NewAgent(DefaultConfig(), 0, 0); err == nil {
		t.Fatal("0 levels accepted")
	}
	bad := DefaultConfig()
	bad.Alpha = 0
	if _, err := NewAgent(bad, 9, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAgentStepPanicsOnLevelMismatch(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched NumLevels did not panic")
		}
	}()
	a.Step(obsFor(0.5, 1, 0.5, 0, 8, false, 0.1))
}

func TestAgentActionsInRange(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	for i := 0; i < 5000; i++ {
		o := obsFor(float64(i%11)/10, float64(i%7)/6, float64(i%5)/2, i%9, 9, i%3 == 0, 0.1)
		act := a.Step(o)
		if act < 0 || act >= 9 {
			t.Fatalf("action %d out of range at step %d", act, i)
		}
	}
}

func TestAgentDeterministic(t *testing.T) {
	run := func() []int {
		a, _ := NewAgent(DefaultConfig(), 9, 3)
		var acts []int
		for i := 0; i < 1000; i++ {
			o := obsFor(float64(i%10)/10, 1, 0.5, i%9, 9, false, 0.1)
			acts = append(acts, a.Step(o))
		}
		return acts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged", i)
		}
	}
}

func TestAgentLearnsSimpleBandit(t *testing.T) {
	// Stationary single-state problem: action k yields reward via energy
	// proportional to k, so the greedy policy must converge to action 0.
	cfg := DefaultConfig()
	cfg.State = StateConfig{LoadBins: 1, QoSBins: 1, TrendBins: 1}
	cfg.EpsilonDecay = 0.999
	a, err := NewAgent(cfg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reward depends on the observation that *follows* the action; feed
	// back energy proportional to the previous action.
	prev := 0
	for i := 0; i < 20000; i++ {
		o := obsFor(0.5, 1, 0.5, prev, 5, false, 0.05*float64(prev+1))
		prev = a.Step(o)
	}
	a.SetLearning(false)
	o := obsFor(0.5, 1, 0.5, prev, 5, false, 0.05*float64(prev+1))
	if got := a.Step(o); got != 0 {
		t.Fatalf("bandit converged to action %d, want 0 (cheapest)", got)
	}
}

func TestAgentAvoidsViolations(t *testing.T) {
	// Two regimes: low actions trigger critical violations (QoS 0.5),
	// high actions avoid them but cost more energy. The violation penalty
	// must push the greedy choice to a non-violating action.
	cfg := DefaultConfig()
	cfg.State = StateConfig{LoadBins: 1, QoSBins: 2, TrendBins: 1}
	a, _ := NewAgent(cfg, 4, 0)
	prev := 0
	for i := 0; i < 30000; i++ {
		var q float64
		var energy float64
		if prev < 2 {
			q, energy = 0.5, 0.02*float64(prev+1)
		} else {
			q, energy = 1.0, 0.08*float64(prev+1)
		}
		prev = a.Step(obsFor(0.5, q, 0.5, prev, 4, true, energy))
	}
	a.SetLearning(false)
	final := a.Step(obsFor(0.5, 1, 0.5, prev, 4, true, 0.08))
	if final < 2 {
		t.Fatalf("policy settled on violating action %d", final)
	}
}

func TestEpsilonDecays(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	start := a.Epsilon()
	for i := 0; i < 5000; i++ {
		a.Step(obsFor(0.5, 1, 0.5, 0, 9, false, 0.1))
	}
	if a.Epsilon() >= start {
		t.Fatalf("epsilon did not decay: %v -> %v", start, a.Epsilon())
	}
	for i := 0; i < 200000; i++ {
		a.Step(obsFor(0.5, 1, 0.5, 0, 9, false, 0.1))
	}
	if got := a.Epsilon(); math.Abs(got-DefaultConfig().EpsilonMin) > 1e-9 {
		t.Fatalf("epsilon floor = %v, want %v", got, DefaultConfig().EpsilonMin)
	}
}

func TestFrozenAgentDoesNotLearnOrExplore(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	for i := 0; i < 1000; i++ {
		a.Step(obsFor(0.5, 1, 0.5, i%9, 9, false, 0.1))
	}
	a.SetLearning(false)
	before := a.Table()
	var acts []int
	for i := 0; i < 500; i++ {
		acts = append(acts, a.Step(obsFor(0.5, 1, 0.5, 4, 9, false, 0.1)))
	}
	after := a.Table()
	for s := range before {
		for x := range before[s] {
			if before[s][x] != after[s][x] {
				t.Fatal("frozen agent mutated its table")
			}
		}
	}
	for _, act := range acts[1:] {
		if act != acts[0] {
			t.Fatal("frozen agent in a fixed state is not deterministic")
		}
	}
}

func TestTableLoadRoundTrip(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	for i := 0; i < 2000; i++ {
		a.Step(obsFor(float64(i%10)/10, 1, 0.5, i%9, 9, false, 0.1))
	}
	tab := a.Table()
	b, _ := NewAgent(DefaultConfig(), 9, 0)
	if err := b.LoadTable(tab); err != nil {
		t.Fatal(err)
	}
	bt := b.Table()
	for s := range tab {
		for x := range tab[s] {
			if tab[s][x] != bt[s][x] {
				t.Fatal("table round trip lost values")
			}
		}
	}
	// Shape mismatches rejected.
	if err := b.LoadTable(tab[:5]); err == nil {
		t.Fatal("short table accepted")
	}
	badRow := a.Table()
	badRow[0] = badRow[0][:3]
	if err := b.LoadTable(badRow); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestTableIsDeepCopy(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	tab := a.Table()
	tab[0][0] = 123
	if a.Table()[0][0] == 123 {
		t.Fatal("Table aliases internal storage")
	}
}

func TestResetRestoresInitialBehaviour(t *testing.T) {
	a, _ := NewAgent(DefaultConfig(), 9, 5)
	var first []int
	for i := 0; i < 300; i++ {
		first = append(first, a.Step(obsFor(0.5, 1, 0.5, i%9, 9, false, 0.1)))
	}
	a.Reset()
	if a.Epsilon() != DefaultConfig().EpsilonStart {
		t.Fatalf("epsilon after reset = %v", a.Epsilon())
	}
	for i := 0; i < 300; i++ {
		if got := a.Step(obsFor(0.5, 1, 0.5, i%9, 9, false, 0.1)); got != first[i] {
			t.Fatalf("step %d after Reset diverged", i)
		}
	}
}

// Property: encoded states are always in range for arbitrary observations.
func TestEncodeStateRangeProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(util, q, dr, prev float64, lvl uint8) bool {
		if math.IsNaN(util) || math.IsNaN(q) || math.IsNaN(dr) || math.IsNaN(prev) {
			return true
		}
		o := obsFor(clamp01(util), clamp01(q), math.Abs(dr), int(lvl)%9, 9, false, 0.1)
		s := cfg.EncodeState(o, math.Abs(prev))
		return s >= 0 && s < cfg.State.States(9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	v = math.Abs(v)
	if v > 1 {
		return 1
	}
	return v
}

// Property: reward is finite for finite inputs and monotone in energy.
func TestRewardMonotoneProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(e1, e2 uint16, q uint8, critical bool) bool {
		lo := float64(e1) / 1000
		hi := lo + float64(e2)/1000 + 0.001
		qv := float64(q%101) / 100
		rLo := cfg.Reward(obsFor(0.5, qv, 0.5, 4, 9, critical, lo))
		rHi := cfg.Reward(obsFor(0.5, qv, 0.5, 4, 9, critical, hi))
		return rHi < rLo && !math.IsNaN(rLo) && !math.IsInf(rLo, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAgentStep(b *testing.B) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	o := obsFor(0.63, 0.97, 0.7, 4, 9, true, 0.12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(o)
	}
}

func BenchmarkAgentStepFrozen(b *testing.B) {
	a, _ := NewAgent(DefaultConfig(), 9, 0)
	for i := 0; i < 10000; i++ {
		a.Step(obsFor(0.63, 0.97, 0.7, i%9, 9, true, 0.12))
	}
	a.SetLearning(false)
	o := obsFor(0.63, 0.97, 0.7, 4, 9, true, 0.12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(o)
	}
}
