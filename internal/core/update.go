// Incremental update API: the serving tier's half of online learning.
//
// Training (internal/core/train.go, Policy/Agent) owns the full
// observe→reward→update loop; a serving learner cannot reuse it because
// the serving path has already split that loop apart — devices encode
// observations into decide frames, the server answers greedy actions, and
// rewards arrive later, batched and out of band. TDUpdater is the piece
// that remains once selection is elsewhere: a pair of Q-tables plus the
// exact Double-Q TD step Agent.Step applies, driven by explicit
// Transitions instead of an observation stream. It is single-goroutine by
// design (the serve learner is the only writer); publication to readers
// happens via Snapshot → immutable model swap, never by sharing these
// tables.
package core

import (
	"fmt"
	"math"

	"rlpm/internal/rng"
)

// Transition is one (s, a, r, s') learning sample for one cluster agent,
// as reconstructed by the serving tier from a device's decide history and
// its reward report.
type Transition struct {
	Cluster   int
	State     int
	Action    int
	NextState int
	Reward    float64
}

// TDUpdater applies Double Q-learning TD steps to a shadow copy of a
// served policy's tables. Both tables start from the snapshot (a
// checkpoint stores the mean table, so q = q2 = mean at hydration — the
// same convention Agent.LoadTable uses), and the update rule mirrors
// Agent.Step's DoubleQ branch: a fair coin from the updater's own seeded
// stream picks the table to update, the other provides the bootstrap.
type TDUpdater struct {
	state   StateConfig
	levels  []int
	q       [][][]float64 // q[cluster][state][action]
	q2      [][][]float64
	alpha   float64
	gamma   float64
	r       *rng.Rand
	applied uint64
}

// NewTDUpdater builds an updater over snap's tables. alpha/gamma of 0
// select cfg's values; seed drives the Double-Q coin (the whole point of
// seeding it is the serve tier's deterministic replay mode).
func NewTDUpdater(cfg Config, snap Snapshot, seed uint64, alpha, gamma float64) (*TDUpdater, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snap.State != cfg.State {
		return nil, fmt.Errorf("core: snapshot state config %+v != config %+v", snap.State, cfg.State)
	}
	if len(snap.Tables) == 0 {
		return nil, fmt.Errorf("core: snapshot has no tables")
	}
	if alpha == 0 {
		alpha = cfg.Alpha
	}
	if gamma == 0 {
		gamma = cfg.Gamma
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha %v out of (0,1]", alpha)
	}
	if gamma < 0 || gamma >= 1 {
		return nil, fmt.Errorf("core: gamma %v out of [0,1)", gamma)
	}
	u := &TDUpdater{
		state: cfg.State,
		alpha: alpha,
		gamma: gamma,
		r:     rng.New(seed),
	}
	for c, tbl := range snap.Tables {
		if len(tbl) == 0 || len(tbl[0]) == 0 {
			return nil, fmt.Errorf("core: cluster %d: empty table", c)
		}
		actions := len(tbl[0])
		if cfg.State.States(actions) != len(tbl) {
			return nil, fmt.Errorf("core: cluster %d: %d states for %d actions, config wants %d",
				c, len(tbl), actions, cfg.State.States(actions))
		}
		q := make([][]float64, len(tbl))
		q2 := make([][]float64, len(tbl))
		for s, row := range tbl {
			if len(row) != actions {
				return nil, fmt.Errorf("core: cluster %d: ragged row %d", c, s)
			}
			q[s] = append([]float64(nil), row...)
			q2[s] = append([]float64(nil), row...)
		}
		u.levels = append(u.levels, actions)
		u.q = append(u.q, q)
		u.q2 = append(u.q2, q2)
	}
	return u, nil
}

// Clusters returns the number of per-cluster agents.
func (u *TDUpdater) Clusters() int { return len(u.levels) }

// Applied returns the number of transitions applied so far.
func (u *TDUpdater) Applied() uint64 { return u.applied }

// Apply performs one Double-Q TD step for t and returns the signed TD
// error. Out-of-range indices and non-finite rewards are rejected without
// touching the tables or the coin stream, so a poisoned report can neither
// corrupt the policy nor desynchronize a seeded replay.
func (u *TDUpdater) Apply(t Transition) (float64, error) {
	if t.Cluster < 0 || t.Cluster >= len(u.levels) {
		return 0, fmt.Errorf("core: transition cluster %d out of [0,%d)", t.Cluster, len(u.levels))
	}
	states, actions := len(u.q[t.Cluster]), u.levels[t.Cluster]
	if t.State < 0 || t.State >= states || t.NextState < 0 || t.NextState >= states {
		return 0, fmt.Errorf("core: transition states %d->%d out of [0,%d)", t.State, t.NextState, states)
	}
	if t.Action < 0 || t.Action >= actions {
		return 0, fmt.Errorf("core: transition action %d out of [0,%d)", t.Action, actions)
	}
	if math.IsNaN(t.Reward) || math.IsInf(t.Reward, 0) {
		return 0, fmt.Errorf("%w: reward %v", ErrBadObservation, t.Reward)
	}
	upd, eval := u.q[t.Cluster], u.q2[t.Cluster]
	if u.r.Bernoulli(0.5) {
		upd, eval = eval, upd
	}
	idx, _ := argmaxF(upd[t.NextState])
	td := t.Reward + u.gamma*eval[t.NextState][idx] - upd[t.State][t.Action]
	upd[t.State][t.Action] += u.alpha * td
	u.applied++
	return td, nil
}

// Snapshot returns the mean of the two tables — the greedy policy the
// learned state implies, in the same form Agent.Table publishes, ready for
// NewModel / EncodeCheckpoint.
func (u *TDUpdater) Snapshot() Snapshot {
	s := Snapshot{State: u.state}
	for c := range u.q {
		tbl := make([][]float64, len(u.q[c]))
		for i, row := range u.q[c] {
			out := make([]float64, len(row))
			for j := range row {
				out[j] = (row[j] + u.q2[c][i][j]) / 2
			}
			tbl[i] = out
		}
		s.Tables = append(s.Tables, tbl)
	}
	return s
}
