// Package core implements the paper's contribution: a Q-learning-based
// power management policy for mobile MPSoCs.
//
// The policy observes each cluster's behaviour once per DVFS control
// period, encodes it into a discrete state (utilization band × QoS band ×
// demand trend × current OPP level), and learns a tabular action-value
// function over OPP levels with an ε-greedy exploration schedule. The
// reward is the negative energy-per-QoS of the period with an additional
// penalty for QoS violations, so the learned policy minimizes exactly the
// metric the paper reports while preserving user satisfaction.
//
// Tabular Q-learning (rather than a function approximator) is what the
// paper implements in hardware: the Q-table maps directly onto BRAM and the
// update onto a single MAC datapath. internal/hwpolicy models that
// hardware and is kept bit-compatible with the fixed-point variant of this
// package's update rule.
package core

import (
	"errors"
	"fmt"
	"math"

	"rlpm/internal/rng"
	"rlpm/internal/sim"
)

// ErrBadObservation marks an observation whose numeric fields cannot be
// discretized meaningfully (NaN, ±Inf, or negative ratios). The bin
// functions would otherwise silently map such values onto a valid bin —
// NaN fails every `<` comparison, so a poisoned demand ratio lands in the
// top load band and a poisoned QoS in the bottom band — which is merely
// misleading for a frozen policy but corrupts the table once observations
// drive live Q-updates. Callers on learning paths must validate first.
var ErrBadObservation = errors.New("core: bad observation")

// badRatio reports whether v is unusable as a nonnegative ratio.
func badRatio(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

// ValidateObservation rejects observations whose demand or QoS fields are
// NaN, infinite, or negative, returning an error wrapping
// ErrBadObservation that names the offending field. Utilization is checked
// on the same terms; Level/NumLevels range checks stay with the callers
// that know the cluster shape.
func (c Config) ValidateObservation(o sim.Observation) error {
	switch {
	case badRatio(o.DemandRatio):
		return fmt.Errorf("%w: demand ratio %v", ErrBadObservation, o.DemandRatio)
	case badRatio(o.QoS):
		return fmt.Errorf("%w: qos %v", ErrBadObservation, o.QoS)
	case badRatio(o.ClusterQoS):
		return fmt.Errorf("%w: cluster qos %v", ErrBadObservation, o.ClusterQoS)
	case badRatio(o.Utilization):
		return fmt.Errorf("%w: utilization %v", ErrBadObservation, o.Utilization)
	}
	return nil
}

// StateConfig controls discretization of the observation space.
type StateConfig struct {
	// LoadBins discretizes the demand ratio (required speedup at the
	// current OPP) over [0, MaxLoadRatio).
	LoadBins int
	// QoSBins discretizes the period's service ratio. With the default 4
	// bins the edges are {0.90, 0.95, 0.99} — concentrated near 1, where
	// all the decision-relevant QoS variation lives; other bin counts use
	// uniform edges.
	QoSBins int
	// TrendBins encodes the demand trend: 3 = falling/flat/rising,
	// 1 = disabled.
	TrendBins int
}

// MaxLoadRatio is the clip point of the demand-ratio discretization: a
// cluster needing more than 2× its current speed saturates the top band.
const MaxLoadRatio = 2.0

// DefaultStateConfig returns the discretization used in the evaluation:
// 8 load bands, 4 QoS bands, 3 trend bands. With a 9-level OPP table this
// is 864 states — a Q-table that comfortably fits FPGA BRAM.
func DefaultStateConfig() StateConfig {
	return StateConfig{LoadBins: 8, QoSBins: 4, TrendBins: 3}
}

// Validate checks the state configuration.
func (s StateConfig) Validate() error {
	if s.LoadBins < 1 || s.QoSBins < 1 || s.TrendBins < 1 {
		return fmt.Errorf("core: state bins must be >= 1, got %+v", s)
	}
	if s.TrendBins != 1 && s.TrendBins != 3 {
		return fmt.Errorf("core: trend bins must be 1 (disabled) or 3, got %d", s.TrendBins)
	}
	return nil
}

// States returns the number of discrete states for a cluster with
// numLevels OPPs.
func (s StateConfig) States(numLevels int) int {
	return s.LoadBins * s.QoSBins * s.TrendBins * numLevels
}

// Config parameterizes the policy.
type Config struct {
	State StateConfig
	// Algorithm selects the TD update rule; empty means QLearning (the
	// paper's choice, and the one the hardware model implements).
	Algorithm Algorithm
	// Alpha is the learning rate in (0,1].
	Alpha float64
	// Gamma is the discount factor in [0,1).
	Gamma float64
	// EpsilonStart/EpsilonMin/EpsilonDecay define the exploration
	// schedule: ε starts at EpsilonStart and is multiplied by EpsilonDecay
	// after every decision until it reaches EpsilonMin.
	EpsilonStart float64
	EpsilonMin   float64
	EpsilonDecay float64
	// LambdaViolation is the reward penalty applied when a critical
	// period misses its QoS threshold.
	LambdaViolation float64
	// LambdaQoS weights the (1−QoS) shaping term that keeps service up
	// even on non-critical periods.
	LambdaQoS float64
	// QoSThreshold is the violation boundary used inside the reward.
	QoSThreshold float64
	// EnergyScaleJ normalizes period energy in the reward; it should be
	// on the order of the chip's typical per-period energy so reward
	// magnitudes stay O(1) (important for the fixed-point table).
	EnergyScaleJ float64
	// Seed drives exploration.
	Seed uint64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		State:           DefaultStateConfig(),
		Alpha:           0.20,
		Gamma:           0.85,
		EpsilonStart:    0.40,
		EpsilonMin:      0.02,
		EpsilonDecay:    0.9995,
		LambdaViolation: 5.0,
		LambdaQoS:       2.0,
		QoSThreshold:    0.95,
		EnergyScaleJ:    0.10, // ≈ one cluster's energy in a mid-load 50 ms period
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.State.Validate(); err != nil {
		return err
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v out of (0,1]", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: gamma %v out of [0,1)", c.Gamma)
	}
	if c.EpsilonStart < 0 || c.EpsilonStart > 1 || c.EpsilonMin < 0 || c.EpsilonMin > c.EpsilonStart {
		return fmt.Errorf("core: bad epsilon schedule start=%v min=%v", c.EpsilonStart, c.EpsilonMin)
	}
	if c.EpsilonDecay <= 0 || c.EpsilonDecay > 1 {
		return fmt.Errorf("core: epsilon decay %v out of (0,1]", c.EpsilonDecay)
	}
	if c.LambdaViolation < 0 || c.LambdaQoS < 0 {
		return fmt.Errorf("core: negative reward weights")
	}
	if c.QoSThreshold <= 0 || c.QoSThreshold > 1 {
		return fmt.Errorf("core: QoS threshold %v out of (0,1]", c.QoSThreshold)
	}
	if c.EnergyScaleJ <= 0 {
		return fmt.Errorf("core: energy scale must be positive")
	}
	if err := c.Algorithm.Validate(); err != nil {
		return err
	}
	return nil
}

// Reward computes the per-period reward from an observation. Exposed so
// the hardware model and the ablation benches use the identical function.
// Both the energy term and the QoS terms use the cluster's own attributed
// quantities so each agent is rewarded only for decisions it controls.
func (c Config) Reward(o sim.Observation) float64 {
	r := -(o.ClusterEnergyJ / c.EnergyScaleJ)
	r -= c.LambdaQoS * (1 - o.ClusterQoS)
	if o.Critical && o.ClusterQoS < c.QoSThreshold {
		r -= c.LambdaViolation
	}
	return r
}

// EncodeState maps an observation (plus the previous demand ratio, for the
// trend band) to a state index in [0, States(numLevels)).
func (c Config) EncodeState(o sim.Observation, prevDemandRatio float64) int {
	s := c.State
	u := loadBin(o.DemandRatio, s.LoadBins)
	q := qosBin(o.ClusterQoS, s.QoSBins)
	t := 0
	if s.TrendBins == 3 {
		const deadband = 0.05
		switch {
		case o.DemandRatio > prevDemandRatio+deadband:
			t = 2
		case o.DemandRatio < prevDemandRatio-deadband:
			t = 0
		default:
			t = 1
		}
	}
	lvl := o.Level
	if lvl >= o.NumLevels {
		lvl = o.NumLevels - 1
	}
	return ((u*s.QoSBins+q)*s.TrendBins+t)*o.NumLevels + lvl
}

// binOf discretizes v in [0,1] into bins uniform bands.
func binOf(v float64, bins int) int {
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		return bins - 1
	}
	return int(v * float64(bins))
}

// loadBinEdges8 is the non-uniform discretization of the demand ratio for
// the default 8 load bins: fine resolution around 1.0, where the
// just-enough frequency decision lives.
var loadBinEdges8 = [7]float64{0.25, 0.50, 0.70, 0.85, 0.95, 1.05, 1.25}

// loadBin discretizes the demand ratio over [0, MaxLoadRatio). The default
// 8-bin layout uses loadBinEdges8; other bin counts use uniform bands.
func loadBin(ratio float64, bins int) int {
	if bins == 8 {
		for i, e := range loadBinEdges8 {
			if ratio < e {
				return i
			}
		}
		return 7
	}
	return binOf(ratio/MaxLoadRatio, bins)
}

// qosBin discretizes a service ratio. All decision-relevant QoS variation
// is near 1, so the default 4-bin layout uses edges {0.90, 0.95, 0.99};
// other bin counts fall back to uniform bands.
func qosBin(q float64, bins int) int {
	if bins == 4 {
		switch {
		case q >= 0.99:
			return 3
		case q >= 0.95:
			return 2
		case q >= 0.90:
			return 1
		default:
			return 0
		}
	}
	return binOf(q, bins)
}

// Agent is the per-cluster Q-learning agent.
type Agent struct {
	cfg       Config
	numLevels int
	stream    uint64
	algo      Algorithm
	q         [][]float64 // q[state][action]
	q2        [][]float64 // second table (Double Q-learning only)
	sumBuf    []float64   // scratch row for Double Q action selection
	eps       float64
	r         *rng.Rand
	learning  bool

	prevDemandRatio float64
	lastState       int
	lastAction      int
	hasLast         bool

	// lastReward and lastTD expose learning progress for Fig. 2.
	lastReward float64
	lastTD     float64
}

// NewAgent creates an agent for a cluster with numLevels OPPs.
func NewAgent(cfg Config, numLevels int, stream uint64) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numLevels < 1 {
		return nil, fmt.Errorf("core: agent needs at least one OPP level")
	}
	a := &Agent{cfg: cfg, numLevels: numLevels, stream: stream, algo: cfg.Algorithm.normalize(), learning: true}
	a.q = make([][]float64, cfg.State.States(numLevels))
	for i := range a.q {
		a.q[i] = make([]float64, numLevels)
	}
	if a.algo == DoubleQ {
		a.q2 = make([][]float64, len(a.q))
		for i := range a.q2 {
			a.q2[i] = make([]float64, numLevels)
		}
		a.sumBuf = make([]float64, numLevels)
	}
	a.eps = cfg.EpsilonStart
	a.r = rng.NewStream(cfg.Seed, stream)
	return a, nil
}

// NumStates returns the Q-table's state count.
func (a *Agent) NumStates() int { return len(a.q) }

// NumActions returns the Q-table's action count.
func (a *Agent) NumActions() int { return a.numLevels }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps }

// LastReward returns the reward computed on the most recent step.
func (a *Agent) LastReward() float64 { return a.lastReward }

// LastTD returns the magnitude of the most recent temporal-difference
// error, a convergence signal.
func (a *Agent) LastTD() float64 { return a.lastTD }

// SetLearning enables or disables updates and exploration. With learning
// off the agent acts greedily on its frozen table — the deployment mode.
func (a *Agent) SetLearning(on bool) { a.learning = on }

// BoostExploration raises the exploration rate back to eps (without
// touching the learned table) — used when the workload distribution
// shifts and the decayed ε would adapt too slowly. Values at or below the
// current ε are ignored.
func (a *Agent) BoostExploration(eps float64) {
	if eps > a.eps {
		if eps > a.cfg.EpsilonStart {
			eps = a.cfg.EpsilonStart
		}
		a.eps = eps
	}
}

// Learning reports whether updates are enabled.
func (a *Agent) Learning() bool { return a.learning }

// Step consumes the observation that resulted from the agent's previous
// action, performs the TD update of the configured algorithm, and returns
// the next action (OPP level).
func (a *Agent) Step(o sim.Observation) int {
	if o.NumLevels != a.numLevels {
		panic(fmt.Sprintf("core: observation has %d levels, agent built for %d", o.NumLevels, a.numLevels))
	}
	state := a.cfg.EncodeState(o, a.prevDemandRatio)
	a.prevDemandRatio = o.DemandRatio

	reward := a.cfg.Reward(o)
	a.lastReward = reward

	var action int
	switch a.algo {
	case SARSA:
		// On-policy: select the next action first, then bootstrap from
		// the value of that very action.
		action = a.selectAction(a.q[state])
		if a.learning && a.hasLast {
			target := reward + a.cfg.Gamma*a.q[state][action]
			a.update(a.q, target)
		}
	case DoubleQ:
		// Decorrelate selection and evaluation: a fair coin picks which
		// table to update; the other provides the bootstrap value.
		if a.learning && a.hasLast {
			upd, eval := a.q, a.q2
			if a.r.Bernoulli(0.5) {
				upd, eval = a.q2, a.q
			}
			idx, _ := argmaxF(upd[state])
			target := reward + a.cfg.Gamma*eval[state][idx]
			a.update(upd, target)
		}
		action = a.selectAction(a.sumRow(state))
	default: // QLearning
		_, best := argmaxF(a.q[state])
		if a.learning && a.hasLast {
			target := reward + a.cfg.Gamma*best
			a.update(a.q, target)
		}
		action = a.selectAction(a.q[state])
	}

	if a.learning {
		a.eps *= a.cfg.EpsilonDecay
		if a.eps < a.cfg.EpsilonMin {
			a.eps = a.cfg.EpsilonMin
		}
	}

	a.lastState, a.lastAction, a.hasLast = state, action, true
	return action
}

// selectAction is ε-greedy over the given action-value row.
func (a *Agent) selectAction(row []float64) int {
	if a.learning && a.r.Float64() < a.eps {
		return a.r.Intn(a.numLevels)
	}
	idx, _ := argmaxF(row)
	return idx
}

// update applies the TD step to table[lastState][lastAction] and records
// the TD-error magnitude.
func (a *Agent) update(table [][]float64, target float64) {
	td := target - table[a.lastState][a.lastAction]
	table[a.lastState][a.lastAction] += a.cfg.Alpha * td
	a.lastTD = math.Abs(td)
}

// sumRow returns q[state]+q2[state] for Double Q action selection, written
// into the agent's scratch row so the decision path stays allocation-free.
func (a *Agent) sumRow(state int) []float64 {
	row := a.sumBuf
	for i := range row {
		row[i] = a.q[state][i] + a.q2[state][i]
	}
	return row
}

// argmaxF returns the index and value of the maximum; ties break low, the
// same convention as the hardware comparator tree.
func argmaxF(vals []float64) (int, float64) {
	idx, best := 0, vals[0]
	for i := 1; i < len(vals); i++ {
		if vals[i] > best {
			idx, best = i, vals[i]
		}
	}
	return idx, best
}

// Table returns a deep copy of the Q-table. For Double Q-learning it
// returns the mean of the two tables — the greedy policy the agent
// actually follows.
func (a *Agent) Table() [][]float64 {
	out := make([][]float64, len(a.q))
	for i, row := range a.q {
		out[i] = append([]float64(nil), row...)
		if a.q2 != nil {
			for j := range out[i] {
				out[i][j] = (out[i][j] + a.q2[i][j]) / 2
			}
		}
	}
	return out
}

// LoadTable replaces the Q-table with t (deep-copied). The shape must
// match.
func (a *Agent) LoadTable(t [][]float64) error {
	if len(t) != len(a.q) {
		return fmt.Errorf("core: table has %d states, agent needs %d", len(t), len(a.q))
	}
	for i, row := range t {
		if len(row) != a.numLevels {
			return fmt.Errorf("core: table row %d has %d actions, agent needs %d", i, len(row), a.numLevels)
		}
	}
	for i, row := range t {
		copy(a.q[i], row)
		if a.q2 != nil {
			copy(a.q2[i], row)
		}
	}
	return nil
}

// Reset clears learned state and restarts the exploration schedule.
func (a *Agent) Reset() {
	for i := range a.q {
		for j := range a.q[i] {
			a.q[i][j] = 0
		}
		if a.q2 != nil {
			for j := range a.q2[i] {
				a.q2[i][j] = 0
			}
		}
	}
	a.eps = a.cfg.EpsilonStart
	a.r = rng.NewStream(a.cfg.Seed, a.stream)
	a.hasLast = false
	a.prevDemandRatio = 0
	a.lastReward, a.lastTD = 0, 0
}
