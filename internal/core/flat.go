// Flat Q-table layout for the serving read path. Training mutates tables
// row by row, so the [][]float64 pointer layout is right there — but a
// frozen serving model only ever does argmax reads, and the pointer walk
// costs two dependent loads (row pointer, then row data) per lookup with
// rows scattered across the heap. FlatTables packs every cluster's table
// into one contiguous row-major arena with precomputed row offsets, so a
// lookup is one offset computation plus a linear scan of an
// already-cache-resident row. A *batch* of lookups additionally resolves
// each distinct row at most once per call: a fleet batch is dominated by
// devices observing the same few hot states, and FlatMemo's epoch-tagged
// per-row cache collapses those repeats into one scan plus O(1) replays —
// with no sort and no per-call reset of the cache.

package core

// MaxFlatBatch bounds the lookups one LookupManyInto call can carry: the
// packed lookup key reserves 16 bits for the caller's batch index.
const MaxFlatBatch = 1 << 16

// flatKeyIdxBits is the batch-index field width in a packed lookup key.
const (
	flatKeyIdxBits   = 16
	flatKeyWidthBits = 8
	flatKeyIdxMask   = MaxFlatBatch - 1
	flatKeyWidthMask = (1 << flatKeyWidthBits) - 1
)

// FlatTables is a frozen Q-table set flattened into one contiguous
// row-major float64 arena shared by all clusters. It is immutable after
// construction and safe for concurrent readers; batch lookups carry their
// mutable state in a caller-owned FlatMemo.
type FlatTables struct {
	arena []float64
	off   []int // per-cluster arena offset of row 0
	width []int // per-cluster row width (action count), 1..255
}

// flatMemoActBits is the action field width in a memo tag; the rest of the
// uint32 is the call epoch, so the epoch wraps (and the memo pays one real
// clear) every 2^24 calls.
const flatMemoActBits = 8

// FlatMemo is the caller-owned scratch for LookupManyInto: an epoch-tagged
// per-row argmax cache indexed by arena offset. Each entry packs the call
// epoch that wrote it with the memoized action in one uint32 — a row's
// entry is valid only when its epoch matches the current call's, so
// "resetting" the cache between calls is one counter increment, not a
// clear, and a memo hit is a single load. One goroutine at a time may use
// a given memo (the batch worker owns the backend's).
type FlatMemo struct {
	tag []uint32 // epoch<<flatMemoActBits | action, indexed by row arena offset
	cur uint32
}

// NewMemo allocates a lookup memo sized for this arena (4 bytes per arena
// slot; only row-start slots are ever touched).
func (f *FlatTables) NewMemo() *FlatMemo {
	return &FlatMemo{tag: make([]uint32, len(f.arena))}
}

// Fits reports whether the memo is large enough to serve lookups against
// f's arena. Memos are sized by arena length, and the arena length is a
// pure function of the table shape — so a memo allocated for one model
// keeps fitting every same-shape model an online learner swaps in.
func (m *FlatMemo) Fits(f *FlatTables) bool {
	return len(m.tag) >= len(f.arena)
}

// NewFlatTables flattens tables ([cluster][state][action]) into an arena.
// It returns nil when the shape cannot be packed into the lookup key
// encoding (an action count outside 1..255, or an arena too large for
// the 40-bit row-offset field) — callers fall back to the pointer layout.
// Rows are copied; the source tables are not retained.
func NewFlatTables(tables [][][]float64) *FlatTables {
	f := &FlatTables{}
	for _, t := range tables {
		if len(t) == 0 {
			return nil
		}
		w := len(t[0])
		if w < 1 || w > flatKeyWidthMask {
			return nil
		}
		f.off = append(f.off, len(f.arena))
		f.width = append(f.width, w)
		for _, row := range t {
			if len(row) != w {
				return nil
			}
			f.arena = append(f.arena, row...)
		}
	}
	if len(f.arena) >= 1<<(64-flatKeyIdxBits-flatKeyWidthBits) {
		return nil
	}
	return f
}

// Clusters returns the number of tables packed into the arena.
func (f *FlatTables) Clusters() int { return len(f.off) }

// Width returns cluster's action count.
func (f *FlatTables) Width(cluster int) int { return f.width[cluster] }

// Argmax returns the greedy action for (cluster, state); ties break low,
// matching argmaxF and the hardware comparator tree.
func (f *FlatTables) Argmax(cluster, state int) int {
	w := f.width[cluster]
	start := f.off[cluster] + state*w
	row := f.arena[start : start+w]
	idx, best := 0, row[0]
	for i := 1; i < len(row); i++ {
		if row[i] > best {
			idx, best = i, row[i]
		}
	}
	return idx
}

// Key packs one lookup of a LookupManyInto batch: the row's arena offset
// and width in the high bits (everything the inner loop needs to slice the
// row without touching the per-cluster metadata again), and the caller's
// batch index idx (0 ≤ idx < MaxFlatBatch) in the low bits so the result
// lands back in the caller's slot.
func (f *FlatTables) Key(cluster, state, idx int) uint64 {
	start := uint64(f.off[cluster] + state*f.width[cluster])
	return start<<(flatKeyIdxBits+flatKeyWidthBits) |
		uint64(f.width[cluster])<<flatKeyIdxBits |
		uint64(idx)
}

// LookupManyInto resolves a batch of packed lookup keys, writing the greedy
// action for each key into out[key's idx]. Each distinct row is scanned at
// most once per call: the first lookup of a row argmaxes it and records the
// action in the memo under the call's epoch; every repeat (distinct fleet
// devices observing the same state) is a single tagged read. keys is not
// modified.
func (f *FlatTables) LookupManyInto(keys []uint64, out []int, m *FlatMemo) {
	m.cur++
	if m.cur >= 1<<(32-flatMemoActBits) { // epoch wrapped: stale tags from
		clear(m.tag) // 16M calls ago would read as fresh, so pay one reset
		m.cur = 1
	}
	curTag := m.cur << flatMemoActBits
	tag, arena := m.tag, f.arena
	for _, k := range keys {
		start := k >> (flatKeyIdxBits + flatKeyWidthBits)
		t := tag[start]
		a := int(t) & (1<<flatMemoActBits - 1)
		if t&^uint32(1<<flatMemoActBits-1) != curTag {
			w := k >> flatKeyIdxBits & flatKeyWidthMask
			row := arena[start : start+w]
			a = 0
			best := row[0]
			for i := 1; i < len(row); i++ {
				if row[i] > best {
					a, best = i, row[i]
				}
			}
			tag[start] = curTag | uint32(a)
		}
		out[k&flatKeyIdxMask] = a
	}
}
