package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot is a serializable image of a trained policy: one Q-table per
// cluster plus the state configuration it was trained with, so a loader
// can reject incompatible shapes.
type Snapshot struct {
	State  StateConfig
	Tables [][][]float64 // [cluster][state][action]
}

// Snapshot captures the current tables. It errors before the first Decide,
// when no agents exist yet.
func (p *Policy) Snapshot() (Snapshot, error) {
	if len(p.agents) == 0 {
		return Snapshot{}, fmt.Errorf("core: policy has no agents yet (run at least one Decide)")
	}
	s := Snapshot{State: p.cfg.State}
	for _, a := range p.agents {
		s.Tables = append(s.Tables, a.Table())
	}
	return s, nil
}

// Restore loads a snapshot into the policy's agents. The policy must have
// been driven at least once (so agents exist) and shapes must match.
func (p *Policy) Restore(s Snapshot) error {
	if len(p.agents) == 0 {
		return fmt.Errorf("core: policy has no agents yet (run at least one Decide)")
	}
	if s.State != p.cfg.State {
		return fmt.Errorf("core: snapshot state config %+v != policy %+v", s.State, p.cfg.State)
	}
	if len(s.Tables) != len(p.agents) {
		return fmt.Errorf("core: snapshot has %d tables, policy has %d agents", len(s.Tables), len(p.agents))
	}
	for i, t := range s.Tables {
		if err := p.agents[i].LoadTable(t); err != nil {
			return fmt.Errorf("core: cluster %d: %w", i, err)
		}
	}
	return nil
}

// Encode serializes the snapshot to w.
func (s Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// ReadSnapshot deserializes a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return s, nil
}
