package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rlpm/internal/rng"
)

// checkpointSnapshot builds a small but non-trivial snapshot: two clusters
// with different OPP counts, deterministic pseudo-random table values, and
// a few special floats (zero, negative, subnormal, NaN) to pin the
// bit-exact round trip.
func checkpointSnapshot(t *testing.T) Snapshot {
	t.Helper()
	st := StateConfig{LoadBins: 2, QoSBins: 2, TrendBins: 3}
	s := Snapshot{State: st}
	r := rng.New(7)
	for c, levels := range []int{3, 5} {
		tab := make([][]float64, st.States(levels))
		for i := range tab {
			tab[i] = make([]float64, levels)
			for j := range tab[i] {
				tab[i][j] = r.Float64()*4 - 2
			}
		}
		tab[0][0] = 0
		tab[1][0] = math.Copysign(0, -1)
		tab[2][0] = math.SmallestNonzeroFloat64
		if c == 1 {
			tab[3][0] = math.NaN()
		}
		s.Tables = append(s.Tables, tab)
	}
	return s
}

func encodeCheckpoint(t *testing.T, s Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.EncodeCheckpoint(&buf); err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	return buf.Bytes()
}

// snapshotsBitEqual compares snapshots with bit-level float equality, so
// NaN payloads and signed zeros count as preserved.
func snapshotsBitEqual(a, b Snapshot) bool {
	if a.State != b.State || len(a.Tables) != len(b.Tables) {
		return false
	}
	for c := range a.Tables {
		if len(a.Tables[c]) != len(b.Tables[c]) {
			return false
		}
		for i := range a.Tables[c] {
			if len(a.Tables[c][i]) != len(b.Tables[c][i]) {
				return false
			}
			for j := range a.Tables[c][i] {
				if math.Float64bits(a.Tables[c][i][j]) != math.Float64bits(b.Tables[c][i][j]) {
					return false
				}
			}
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := checkpointSnapshot(t)
	enc := encodeCheckpoint(t, want)
	got, err := DecodeCheckpoint(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !snapshotsBitEqual(want, got) {
		t.Fatal("decoded snapshot differs from encoded one")
	}
	// Canonical form: re-encoding the decoded snapshot reproduces the bytes.
	re := encodeCheckpoint(t, got)
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

func TestCheckpointRoundTripFromPolicy(t *testing.T) {
	p := MustPolicy(DefaultConfig())
	for i := 0; i < 1000; i++ {
		p.Decide(twoClusterObs(i%8, i%9))
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	enc := encodeCheckpoint(t, snap)
	got, err := DecodeCheckpoint(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !snapshotsBitEqual(snap, got) {
		t.Fatal("trained-policy snapshot did not round-trip bit-exactly")
	}
	if err := p.Restore(got); err != nil {
		t.Fatalf("Restore(decoded): %v", err)
	}
}

// TestCheckpointFlippedByteRejected is the integrity property: flipping any
// single byte of a valid checkpoint must make decoding fail with one of the
// typed errors, never succeed and never panic. (A flip in the version field
// surfaces as ErrCheckpointVersion; everywhere else the CRC catches it.)
func TestCheckpointFlippedByteRejected(t *testing.T) {
	enc := encodeCheckpoint(t, checkpointSnapshot(t))
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		_, err := DecodeCheckpoint(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("decode succeeded with byte %d flipped", i)
		}
		if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointVersion) {
			t.Fatalf("byte %d: error %v is not a typed checkpoint error", i, err)
		}
	}
}

func TestCheckpointTruncationRejected(t *testing.T) {
	enc := encodeCheckpoint(t, checkpointSnapshot(t))
	for _, n := range []int{0, 1, 7, 8, 11, 12, checkpointHeaderLen, checkpointHeaderLen + 4, len(enc) - 1} {
		_, err := DecodeCheckpoint(bytes.NewReader(enc[:n]))
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrCheckpointCorrupt", n, err)
		}
	}
}

func TestCheckpointTrailingGarbageRejected(t *testing.T) {
	enc := encodeCheckpoint(t, checkpointSnapshot(t))
	_, err := DecodeCheckpoint(bytes.NewReader(append(append([]byte(nil), enc...), 0xAA)))
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointUnknownVersionRejected(t *testing.T) {
	enc := encodeCheckpoint(t, checkpointSnapshot(t))
	mut := append([]byte(nil), enc...)
	mut[8] = 0x7F // version low byte
	_, err := DecodeCheckpoint(bytes.NewReader(mut))
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future version: got %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointEncodeRejectsMalformedSnapshots(t *testing.T) {
	good := checkpointSnapshot(t)
	cases := map[string]func(Snapshot) Snapshot{
		"no tables":  func(s Snapshot) Snapshot { s.Tables = nil; return s },
		"bad config": func(s Snapshot) Snapshot { s.State.LoadBins = 0; return s },
		"state count mismatch": func(s Snapshot) Snapshot {
			s.Tables = append([][][]float64{}, s.Tables...)
			s.Tables[0] = s.Tables[0][:len(s.Tables[0])-1]
			return s
		},
		"ragged rows": func(s Snapshot) Snapshot {
			tab := make([][]float64, len(s.Tables[0]))
			copy(tab, s.Tables[0])
			tab[1] = tab[1][:1]
			s.Tables = [][][]float64{tab, s.Tables[1]}
			return s
		},
	}
	for name, mutate := range cases {
		var buf bytes.Buffer
		if err := mutate(good).EncodeCheckpoint(&buf); err == nil {
			t.Errorf("%s: encode succeeded", name)
		}
	}
}

// FuzzCheckpointDecode drives the decoder with arbitrary bytes: it must
// never panic, anything it accepts must re-encode to exactly the input
// (canonical form), and every rejection must be a typed error.
func FuzzCheckpointDecode(f *testing.F) {
	st := StateConfig{LoadBins: 2, QoSBins: 1, TrendBins: 1}
	tiny := Snapshot{State: st, Tables: [][][]float64{{{0.5, -1}, {1, 2}, {3, 4}, {0, 0}}}}
	var buf bytes.Buffer
	if err := tiny.EncodeCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RLPMCKPT"))
	f.Add(bytes.Repeat([]byte{0}, checkpointHeaderLen+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var re bytes.Buffer
		if err := snap.EncodeCheckpoint(&re); err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatal("accepted checkpoint is not in canonical form")
		}
	})
}
