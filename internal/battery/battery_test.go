package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func newBattery(t *testing.T) *Battery {
	t.Helper()
	b, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{CapacityWh: 0, FullV: 4.3, EmptyV: 3.4, InternalOhm: 0.1},
		{CapacityWh: 15, FullV: 3.4, EmptyV: 3.4, InternalOhm: 0.1},
		{CapacityWh: 15, FullV: 4.3, EmptyV: 0, InternalOhm: 0.1},
		{CapacityWh: 15, FullV: 4.3, EmptyV: 3.4, InternalOhm: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestFreshBatteryState(t *testing.T) {
	b := newBattery(t)
	if b.SoC() != 1 {
		t.Fatalf("SoC = %v", b.SoC())
	}
	if b.Voltage() != DefaultSpec().FullV {
		t.Fatalf("Voltage = %v", b.Voltage())
	}
	if b.Empty() {
		t.Fatal("fresh battery empty")
	}
	wantJ := DefaultSpec().CapacityWh * 3600
	if b.RemainingJ() != wantJ {
		t.Fatalf("RemainingJ = %v, want %v", b.RemainingJ(), wantJ)
	}
}

func TestDrawAccounting(t *testing.T) {
	b := newBattery(t)
	removed, err := b.Draw(2, 3600) // 2 W for an hour
	if err != nil {
		t.Fatal(err)
	}
	// Removed = load + I²R loss; both tracked.
	if removed <= 2*3600 {
		t.Fatalf("removed %v should exceed pure load energy", removed)
	}
	if got := b.DeliveredJ(); got != 2*3600 {
		t.Fatalf("DeliveredJ = %v", got)
	}
	if b.LossJ() <= 0 {
		t.Fatal("no resistance loss recorded")
	}
	if math.Abs(removed-(b.DeliveredJ()+b.LossJ())) > 1e-9 {
		t.Fatal("energy conservation violated")
	}
}

func TestDrawValidation(t *testing.T) {
	b := newBattery(t)
	if _, err := b.Draw(-1, 1); err == nil {
		t.Fatal("negative power accepted")
	}
	if _, err := b.Draw(1, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestVoltageSags(t *testing.T) {
	b := newBattery(t)
	v0 := b.Voltage()
	if _, err := b.Draw(5, 3600); err != nil {
		t.Fatal(err)
	}
	if b.Voltage() >= v0 {
		t.Fatalf("voltage did not sag: %v -> %v", v0, b.Voltage())
	}
}

func TestHighDrawIsLessEfficient(t *testing.T) {
	// Delivering the same load energy at 8 W must burn more total cell
	// energy than at 1 W (I²R scaling) — the race-to-idle caveat.
	lo := newBattery(t)
	hi := newBattery(t)
	if _, err := lo.Draw(1, 8000); err != nil { // 8000 J load
		t.Fatal(err)
	}
	if _, err := hi.Draw(8, 1000); err != nil { // 8000 J load
		t.Fatal(err)
	}
	if hi.LossJ() <= lo.LossJ() {
		t.Fatalf("high draw loss %v <= low draw loss %v", hi.LossJ(), lo.LossJ())
	}
	if hi.RemainingJ() >= lo.RemainingJ() {
		t.Fatal("high draw left more charge for the same delivered energy")
	}
}

func TestDrainToEmpty(t *testing.T) {
	spec := DefaultSpec()
	spec.CapacityWh = 0.001 // 3.6 J
	b, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := b.Draw(100, 10) // far more than capacity
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(removed-3.6) > 1e-9 {
		t.Fatalf("final draw removed %v, want 3.6", removed)
	}
	if !b.Empty() || b.SoC() != 0 {
		t.Fatalf("battery not empty: SoC=%v", b.SoC())
	}
	if _, err := b.Draw(1, 1); err == nil {
		t.Fatal("draw from empty accepted")
	}
}

func TestRuntime(t *testing.T) {
	b := newBattery(t)
	d, err := b.Runtime(2)
	if err != nil {
		t.Fatal(err)
	}
	// 15.4 Wh at ~2 W (plus small loss) ≈ 7.5 h.
	if d.Hours() < 7 || d.Hours() > 7.8 {
		t.Fatalf("runtime at 2W = %v h", d.Hours())
	}
	if _, err := b.Runtime(0); err == nil {
		t.Fatal("zero power accepted")
	}
}

func TestLifeHours(t *testing.T) {
	h, err := LifeHours(DefaultSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if h < 4.5 || h > 5.2 {
		t.Fatalf("LifeHours(3W) = %v", h)
	}
	if _, err := LifeHours(Spec{}, 3); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := LifeHours(DefaultSpec(), 0); err == nil {
		t.Fatal("zero power accepted")
	}
}

func TestReset(t *testing.T) {
	b := newBattery(t)
	_, _ = b.Draw(5, 3600)
	b.Reset()
	if b.SoC() != 1 || b.LossJ() != 0 || b.DeliveredJ() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: SoC is monotone non-increasing under draws and always in [0,1].
func TestSoCMonotoneProperty(t *testing.T) {
	f := func(draws []uint16) bool {
		b, _ := New(DefaultSpec())
		prev := b.SoC()
		for _, d := range draws {
			p := float64(d%100) / 10 // 0..9.9 W
			if p == 0 {
				continue
			}
			if _, err := b.Draw(p, 60); err != nil {
				return b.Empty() // only acceptable failure is empty
			}
			s := b.SoC()
			if s > prev || s < 0 || s > 1 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total removed energy equals delivered + loss.
func TestConservationProperty(t *testing.T) {
	f := func(draws []uint8) bool {
		b, _ := New(DefaultSpec())
		var removed float64
		for _, d := range draws {
			p := float64(d%50)/10 + 0.1
			r, err := b.Draw(p, 30)
			if err != nil {
				return b.Empty()
			}
			removed += r
		}
		total := b.DeliveredJ() + b.LossJ()
		return math.Abs(removed-total) < 1e-6*math.Max(1, removed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
