// Package battery models the mobile device's energy source, turning the
// simulator's joule counts into the quantity a user experiences: hours of
// battery life.
//
// The model is a coulomb-counting cell with internal resistance: drawing
// power P at terminal voltage V forces current I = P/V through the cell's
// internal resistance R, dissipating an extra I²R — so heavy draws drain
// the battery disproportionately, the effect that makes sustained
// performance-governor gaming so costly on real devices. Terminal voltage
// sags linearly with depth of discharge between the full and empty knees.
package battery

import (
	"fmt"
	"time"
)

// Spec describes a cell.
type Spec struct {
	// CapacityWh is the nominal energy capacity (a 4000 mAh cell at a
	// 3.85 V nominal is 15.4 Wh).
	CapacityWh float64
	// FullV and EmptyV are the open-circuit voltages at 100% and 0%
	// state of charge.
	FullV  float64
	EmptyV float64
	// InternalOhm is the cell's internal resistance.
	InternalOhm float64
}

// DefaultSpec returns a typical modern phone cell: 4000 mAh, 4.35→3.40 V,
// 120 mΩ.
func DefaultSpec() Spec {
	return Spec{CapacityWh: 15.4, FullV: 4.35, EmptyV: 3.40, InternalOhm: 0.120}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.CapacityWh <= 0 {
		return fmt.Errorf("battery: capacity must be positive, got %v Wh", s.CapacityWh)
	}
	if s.FullV <= s.EmptyV || s.EmptyV <= 0 {
		return fmt.Errorf("battery: voltage knees must satisfy 0 < empty < full, got %v..%v", s.EmptyV, s.FullV)
	}
	if s.InternalOhm < 0 {
		return fmt.Errorf("battery: negative internal resistance")
	}
	return nil
}

// Battery is a discharging cell. Create with New.
type Battery struct {
	spec       Spec
	capacityJ  float64
	remainingJ float64
	lossJ      float64 // cumulative I²R dissipation
	drawnJ     float64 // cumulative load energy delivered
}

// New returns a fully charged battery.
func New(spec Spec) (*Battery, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	capJ := spec.CapacityWh * 3600
	return &Battery{spec: spec, capacityJ: capJ, remainingJ: capJ}, nil
}

// SoC returns the state of charge in [0,1].
func (b *Battery) SoC() float64 { return b.remainingJ / b.capacityJ }

// RemainingJ returns the remaining stored energy in joules.
func (b *Battery) RemainingJ() float64 { return b.remainingJ }

// LossJ returns the cumulative internal-resistance dissipation.
func (b *Battery) LossJ() float64 { return b.lossJ }

// DeliveredJ returns the cumulative energy delivered to the load.
func (b *Battery) DeliveredJ() float64 { return b.drawnJ }

// Voltage returns the current open-circuit terminal voltage (linear sag
// with depth of discharge).
func (b *Battery) Voltage() float64 {
	return b.spec.EmptyV + (b.spec.FullV-b.spec.EmptyV)*b.SoC()
}

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remainingJ <= 0 }

// Draw discharges the battery by a load of powerW for dtS seconds,
// including the internal-resistance loss. It returns the energy actually
// removed from the cell. Drawing from an empty battery is an error; a
// draw that crosses empty is truncated at empty.
func (b *Battery) Draw(powerW, dtS float64) (float64, error) {
	if powerW < 0 || dtS <= 0 {
		return 0, fmt.Errorf("battery: invalid draw %v W for %v s", powerW, dtS)
	}
	if b.Empty() {
		return 0, fmt.Errorf("battery: empty")
	}
	v := b.Voltage()
	i := powerW / v
	loss := i * i * b.spec.InternalOhm
	total := (powerW + loss) * dtS
	if total > b.remainingJ {
		// Truncate the final draw at empty, attributing loss pro rata.
		frac := b.remainingJ / total
		b.drawnJ += powerW * dtS * frac
		b.lossJ += loss * dtS * frac
		removed := b.remainingJ
		b.remainingJ = 0
		return removed, nil
	}
	b.remainingJ -= total
	b.drawnJ += powerW * dtS
	b.lossJ += loss * dtS
	return total, nil
}

// Runtime estimates how long the remaining charge lasts at a constant
// load of powerW (including resistance loss at the current voltage).
func (b *Battery) Runtime(powerW float64) (time.Duration, error) {
	if powerW <= 0 {
		return 0, fmt.Errorf("battery: runtime needs positive power, got %v", powerW)
	}
	v := b.Voltage()
	i := powerW / v
	total := powerW + i*i*b.spec.InternalOhm
	seconds := b.remainingJ / total
	return time.Duration(seconds * float64(time.Second)), nil
}

// LifeHours is a convenience: full-capacity life at a constant average
// power for the given cell spec.
func LifeHours(spec Spec, avgPowerW float64) (float64, error) {
	b, err := New(spec)
	if err != nil {
		return 0, err
	}
	d, err := b.Runtime(avgPowerW)
	if err != nil {
		return 0, err
	}
	return d.Hours(), nil
}

// Reset restores full charge.
func (b *Battery) Reset() {
	b.remainingJ = b.capacityJ
	b.lossJ = 0
	b.drawnJ = 0
}
