// Package obs is the fleet observability layer: a lightweight,
// allocation-free metrics registry (atomic counters, gauges, and
// log-bucketed latency histograms) plus a bounded ring-buffer event log
// for structured runtime events.
//
// The journal extension of the paper makes decision latency a headline
// claim, so the serving stack has to measure itself with the same rigor
// the experiment harness applies to energy numbers. This package is what
// the decide path, the health ladder, and the checkpoint store report
// into:
//
//   - Counter and Gauge are single atomic words; Add/Set/Observe never
//     allocate, never lock, and are safe from any goroutine — the
//     hot-path contract pinned by the AllocsPerRun regression test;
//   - Histogram buckets nanosecond latencies into log-spaced bins (4
//     sub-buckets per power of two), so p50/p90/p99 are recoverable
//     within bucket resolution from a fixed ~1 KiB footprint, and
//     snapshots merge across shards and devices;
//   - Registry renders everything in Prometheus text exposition format
//     with deterministic metric and label ordering, so scrapes diff
//     cleanly and the exposition test can pin a golden fixture;
//   - EventLog keeps the last N structured events (health-ladder
//     transitions, checkpoint outcomes, injected faults) in a bounded
//     ring, served by GET /debug/events.
//
// Everything is dependency-free (standard library only) so any layer —
// hwpolicy, fault, serve, the cmd binaries — can report into it without
// import cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to a metric at
// registration. Labels are sorted by key and pre-rendered, so exposition
// ordering is stable by construction.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Uint64
	desc desc
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	desc desc
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// desc is the identity and rendering info shared by all metric kinds.
type desc struct {
	name   string
	help   string
	labels string // pre-rendered `k1="v1",k2="v2"`, "" when unlabeled
	typ    string // prometheus TYPE: counter | gauge | histogram
}

// metric is the registry's internal view of one registered series.
type metric struct {
	desc  desc
	write func(w io.Writer) error
	// snap captures the series' current value in process-portable form —
	// what Registry.Snapshot serializes for cross-process scrape-merge.
	snap func() SeriesSnapshot
}

// Registry holds registered metrics and renders them in Prometheus text
// exposition format. Registration locks; reads of registered metrics do
// not. Metrics are keyed by (name, labels): registering the same name
// twice with a different type or help panics — that is a programming
// error, caught at wiring time.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]string // name -> type, for cross-registration checks
	keys    map[string]bool   // name+labels uniqueness
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]string), keys: make(map[string]bool)}
}

// register validates and stores a series, keeping the slice sorted by
// (name, labels) so exposition order is deterministic.
func (r *Registry) register(m metric) {
	if !validName(m.desc.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.desc.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if typ, ok := r.byName[m.desc.name]; ok && typ != m.desc.typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", m.desc.name, typ, m.desc.typ))
	}
	key := m.desc.name + "{" + m.desc.labels + "}"
	if r.keys[key] {
		panic(fmt.Sprintf("obs: duplicate metric %s", key))
	}
	r.keys[key] = true
	r.byName[m.desc.name] = m.desc.typ
	i := sort.Search(len(r.metrics), func(i int) bool {
		d := &r.metrics[i].desc
		if d.name != m.desc.name {
			return d.name > m.desc.name
		}
		return d.labels > m.desc.labels
	})
	r.metrics = append(r.metrics, metric{})
	copy(r.metrics[i+1:], r.metrics[i:])
	r.metrics[i] = m
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{desc: desc{name: name, help: help, labels: renderLabels(labels), typ: "counter"}}
	r.register(metric{desc: c.desc, write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", series(c.desc.name, c.desc.labels), c.Load())
		return err
	}, snap: func() SeriesSnapshot {
		return scalarSnapshot(c.desc, float64(c.Load()))
	}})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{desc: desc{name: name, help: help, labels: renderLabels(labels), typ: "gauge"}}
	r.register(metric{desc: g.desc, write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", series(g.desc.name, g.desc.labels), formatFloat(g.Load()))
		return err
	}, snap: func() SeriesSnapshot {
		return scalarSnapshot(g.desc, g.Load())
	}})
	return g
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters owned elsewhere.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	d := desc{name: name, help: help, labels: renderLabels(labels), typ: "counter"}
	r.register(metric{desc: d, write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", series(d.name, d.labels), fn())
		return err
	}, snap: func() SeriesSnapshot {
		return scalarSnapshot(d, float64(fn()))
	}})
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time (uptime, live-session counts, checkpoint age).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	d := desc{name: name, help: help, labels: renderLabels(labels), typ: "gauge"}
	r.register(metric{desc: d, write: func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %s\n", series(d.name, d.labels), formatFloat(fn()))
		return err
	}, snap: func() SeriesSnapshot {
		return scalarSnapshot(d, fn())
	}})
}

// NewHistogram registers and returns a latency histogram (see hist.go for
// the bucket layout).
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{desc: desc{name: name, help: help, labels: renderLabels(labels), typ: "histogram"}}
	r.register(metric{desc: h.desc, write: h.writeProm, snap: func() SeriesSnapshot {
		hs := h.Snapshot()
		return SeriesSnapshot{Name: h.desc.name, Labels: h.desc.labels, Help: h.desc.help, Type: "histogram", Hist: &hs}
	}})
	return h
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Series are ordered by (name, labels);
// HELP/TYPE headers are emitted once per metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	prev := ""
	for _, m := range ms {
		if m.desc.name != prev {
			if m.desc.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.desc.name, m.desc.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.desc.name, m.desc.typ); err != nil {
				return err
			}
			prev = m.desc.name
		}
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// series renders `name` or `name{labels}`.
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// seriesLe renders `name_bucket{labels,le="bound"}` without caring whether
// labels is empty.
func seriesLe(name, labels, le string) string {
	if labels == "" {
		return name + `_bucket{le="` + le + `"}`
	}
	return name + `_bucket{` + labels + `,le="` + le + `"}`
}

// renderLabels sorts labels by key and renders the inner `k="v"` list.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := ""
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out
}

// escapeLabel applies the exposition-format escapes for label values.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// formatFloat renders a float the way Prometheus expects (shortest exact
// form; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
