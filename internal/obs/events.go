package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one structured runtime occurrence: a health-ladder transition,
// a checkpoint save/restore outcome, an injected fault. Events are for
// the rare, narratable moments — per-decision measurements belong in
// histograms and counters.
type Event struct {
	// Seq is the event's global sequence number (1-based, never reused),
	// so a reader polling /debug/events can detect both ordering and how
	// many events the bounded ring dropped between polls.
	Seq uint64 `json:"seq"`
	// At is the wall-clock capture instant.
	At time.Time `json:"at"`
	// Kind groups events for filtering: "checkpoint", "hwpolicy",
	// "fault", "serve", ...
	Kind string `json:"kind"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
}

// EventLog is a bounded ring buffer of events. Appends are O(1) and never
// grow memory past the configured capacity: when full, the oldest event
// is overwritten. Safe for concurrent use.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	start int    // index of the oldest event
	n     int    // live events in buf
	total uint64 // events ever recorded (== last Seq)
}

// NewEventLog creates a log holding the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Add records an event.
func (l *EventLog) Add(kind, msg string) {
	l.mu.Lock()
	l.total++
	e := Event{Seq: l.total, At: time.Now(), Kind: kind, Msg: msg}
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
	}
	l.mu.Unlock()
}

// Addf records a formatted event.
func (l *EventLog) Addf(kind, format string, args ...any) {
	l.Add(kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Total returns how many events were ever recorded (retained or evicted).
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Len returns how many events are currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
