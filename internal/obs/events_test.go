package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestEventLogRingEviction(t *testing.T) {
	l := NewEventLog(3)
	for i := 1; i <= 5; i++ {
		l.Addf("k", "event %d", i)
	}
	if l.Total() != 5 {
		t.Fatalf("total %d, want 5", l.Total())
	}
	if l.Len() != 3 {
		t.Fatalf("len %d, want capacity 3", l.Len())
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("%d retained events, want 3", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(3 + i) // events 3,4,5 survive, oldest first
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Msg != fmt.Sprintf("event %d", wantSeq) {
			t.Fatalf("event %d msg %q", i, e.Msg)
		}
		if e.Kind != "k" {
			t.Fatalf("event %d kind %q", i, e.Kind)
		}
		if e.At.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
}

func TestEventLogMinimumCapacity(t *testing.T) {
	l := NewEventLog(0)
	l.Add("k", "a")
	l.Add("k", "b")
	if l.Len() != 1 || l.Events()[0].Msg != "b" {
		t.Fatalf("capacity-0 log retained %d events, last %+v", l.Len(), l.Events())
	}
}

// TestEventLogConcurrent exercises the log from many goroutines under the
// race detector: total must equal the adds, seqs must be unique.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Addf("k", "g%d-%d", g, i)
				_ = l.Events()
			}
		}(g)
	}
	wg.Wait()
	if l.Total() != goroutines*per {
		t.Fatalf("total %d, want %d", l.Total(), goroutines*per)
	}
	seen := map[uint64]bool{}
	for _, e := range l.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
