package obs

import (
	"math"
	"sort"
	"testing"

	"rlpm/internal/rng"
)

// TestBucketBoundsMonotone pins the bucket layout: strictly increasing
// bounds, the documented first bound, and the +Inf overflow bucket.
func TestBucketBoundsMonotone(t *testing.T) {
	if got := BucketUpperBound(0); got != 64 {
		t.Fatalf("bucket 0 upper bound %v, want 64", got)
	}
	for i := 1; i < NumBuckets; i++ {
		if BucketUpperBound(i) <= BucketUpperBound(i-1) {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v",
				i, BucketUpperBound(i), BucketUpperBound(i-1))
		}
	}
	if !math.IsInf(BucketUpperBound(NumBuckets-1), 1) {
		t.Fatalf("overflow bound %v, want +Inf", BucketUpperBound(NumBuckets-1))
	}
}

// TestBucketIdxProperty checks, across the full value range, that every
// sample lands in the unique bucket whose half-open interval contains it.
func TestBucketIdxProperty(t *testing.T) {
	check := func(v int64) {
		i := bucketIdx(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, i)
		}
		if float64(v) >= BucketUpperBound(i) {
			t.Fatalf("value %d at or above its bucket %d bound %v", v, i, BucketUpperBound(i))
		}
		if i > 0 && float64(v) < BucketUpperBound(i-1) {
			t.Fatalf("value %d below bucket %d's lower bound %v", v, i, BucketUpperBound(i-1))
		}
	}
	// Edges: every bound, one below, one above.
	for i := 0; i < NumBuckets-1; i++ {
		b := int64(BucketUpperBound(i))
		check(b - 1)
		check(b)
		check(b + 1)
	}
	check(0)
	check(1)
	check(math.MaxInt64)
	r := rng.New(99)
	for k := 0; k < 10000; k++ {
		shift := uint(r.Intn(62))
		check(int64(r.Uint64() >> shift))
	}
	if got := bucketIdx(-5); got != 0 {
		t.Fatalf("negative sample bucket %d, want 0 (clamped)", got)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram("h", "")
	samples := []int64{10, 100, 100, 5000, 1 << 20, -3}
	for _, s := range samples {
		h.Observe(s)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Fatalf("count %d, want %d", s.Count, len(samples))
	}
	wantSum := int64(10 + 100 + 100 + 5000 + 1<<20 + 0) // -3 clamps to 0
	if s.Sum != wantSum {
		t.Fatalf("sum %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max %d, want %d", s.Max, int64(1)<<20)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	if got, want := s.Mean(), float64(wantSum)/float64(len(samples)); got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

// TestQuantileWithinResolution draws a known sample set and checks every
// recovered quantile is an upper bound of the true quantile's bucket:
// never below the true value, never past the next bound (or the max).
func TestQuantileWithinResolution(t *testing.T) {
	h := NewHistogram("h", "")
	r := rng.New(7)
	samples := make([]int64, 5000)
	for i := range samples {
		samples[i] = int64(r.Intn(10_000_000)) // 0..10ms
	}
	for _, s := range samples {
		h.Observe(s)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999} {
		got := snap.Quantile(q)
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		truth := float64(sorted[rank-1])
		if got < truth {
			t.Fatalf("q=%v: recovered %v below true value %v", q, got, truth)
		}
		ub := BucketUpperBound(bucketIdx(int64(truth)))
		if ub > float64(snap.Max) {
			ub = float64(snap.Max)
		}
		if got > ub {
			t.Fatalf("q=%v: recovered %v past the true value's bucket bound %v", q, got, ub)
		}
	}
	if got := snap.Quantile(1); got != float64(snap.Max) {
		t.Fatalf("Quantile(1) = %v, want exact max %v", got, float64(snap.Max))
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile %v, want 0", got)
	}
}

// TestQuantileNeverExceedsMax: a single huge sample puts the quantile
// bucket's bound far above the sample; the clamp must report the exact max.
func TestQuantileNeverExceedsMax(t *testing.T) {
	h := NewHistogram("h", "")
	h.Observe(1_000_001)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1_000_001 {
			t.Fatalf("q=%v: %v, want the exact max 1000001", q, got)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b, all := NewHistogram("a", ""), NewHistogram("b", ""), NewHistogram("all", "")
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		v := int64(r.Intn(1 << 24))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	sa, sall := a.Snapshot(), all.Snapshot()
	sb := b.Snapshot()
	sa.Merge(&sb)
	if sa != sall {
		t.Fatalf("merged snapshot differs from the union histogram")
	}
}

func TestNonZeroBuckets(t *testing.T) {
	h := NewHistogram("h", "")
	h.Observe(10)      // bucket 0
	h.Observe(10)      //
	h.Observe(100)     // mid bucket
	h.Observe(1 << 40) // overflow
	snap := h.Snapshot()
	nz := snap.NonZero()
	if len(nz) != 3 {
		t.Fatalf("%d populated buckets, want 3: %+v", len(nz), nz)
	}
	if nz[0].LeNs != 64 || nz[0].Count != 2 {
		t.Fatalf("first bucket %+v, want le=64 count=2", nz[0])
	}
	if nz[2].LeNs != -1 || nz[2].Count != 1 {
		t.Fatalf("overflow bucket %+v, want le=-1 count=1", nz[2])
	}
	for i := 1; i < len(nz)-1; i++ {
		if nz[i].LeNs <= nz[i-1].LeNs {
			t.Fatalf("NonZero not ascending at %d", i)
		}
	}
}

// TestHotPathAllocationFree is the acceptance gate: Counter.Add, Gauge.Set
// and Histogram.Observe must not allocate — they run on every decision.
func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "")
	g := reg.NewGauge("g", "")
	h := reg.NewHistogram("h_ns", "")
	var n int64
	if a := testing.AllocsPerRun(1000, func() {
		n++
		c.Add(1)
		g.Set(float64(n))
		h.Observe(n * 37)
	}); a != 0 {
		t.Fatalf("hot path allocates %.1f allocs/op, want 0", a)
	}
}
