// Registry snapshots: a process-portable, mergeable form of every
// registered series. A shard serializes its registry to JSON (GET
// /debug/obs), the router deserializes N of them, folds them together with
// Merge, and renders the fleet-wide view in the same Prometheus text
// format a single process would — counters sum, histograms merge
// bucket-wise (so fleet quantiles stay exact within bucket resolution),
// and gauges sum (live-session counts and queue depths aggregate across
// shards; rates and ages should be scraped per shard, not merged).
package obs

import (
	"fmt"
	"io"
	"sort"
)

// SeriesSnapshot is one series' point-in-time value. Exactly one of Value
// (counter, gauge) or Hist (histogram) is meaningful, selected by Type.
type SeriesSnapshot struct {
	Name   string             `json:"name"`
	Labels string             `json:"labels,omitempty"` // pre-rendered `k1="v1",k2="v2"`
	Help   string             `json:"help,omitempty"`
	Type   string             `json:"type"` // counter | gauge | histogram
	Value  float64            `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"hist,omitempty"`
}

func scalarSnapshot(d desc, v float64) SeriesSnapshot {
	return SeriesSnapshot{Name: d.name, Labels: d.labels, Help: d.help, Type: d.typ, Value: v}
}

// RegistrySnapshot is every registered series, ordered by (name, labels) —
// the same deterministic order WritePrometheus uses.
type RegistrySnapshot struct {
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures the registry's current state. The result is safe to
// serialize (JSON), merge with snapshots from other processes, and render.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := RegistrySnapshot{Series: make([]SeriesSnapshot, 0, len(ms))}
	for _, m := range ms {
		if m.snap == nil {
			continue
		}
		out.Series = append(out.Series, m.snap())
	}
	return out
}

// sortSeries restores (name, labels) order — merged snapshots interleave
// series from differently shaped registries.
func (s *RegistrySnapshot) sortSeries() {
	sort.Slice(s.Series, func(i, j int) bool {
		a, b := &s.Series[i], &s.Series[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
}

// Merge folds other into s by (name, labels): counters and gauges add,
// histograms merge bucket-wise with max-of-max. Series present only in
// other are appended. A type conflict for the same series is an error —
// the snapshots came from incompatible registry shapes.
func (s *RegistrySnapshot) Merge(other *RegistrySnapshot) error {
	idx := make(map[string]int, len(s.Series))
	for i := range s.Series {
		ss := &s.Series[i]
		idx[ss.Name+"{"+ss.Labels+"}"] = i
	}
	for i := range other.Series {
		os := &other.Series[i]
		j, ok := idx[os.Name+"{"+os.Labels+"}"]
		if !ok {
			cp := *os
			if os.Hist != nil {
				h := *os.Hist
				cp.Hist = &h
			}
			idx[os.Name+"{"+os.Labels+"}"] = len(s.Series)
			s.Series = append(s.Series, cp)
			continue
		}
		ss := &s.Series[j]
		if ss.Type != os.Type {
			return fmt.Errorf("obs: merge type conflict for %s{%s}: %s vs %s", ss.Name, ss.Labels, ss.Type, os.Type)
		}
		switch ss.Type {
		case "histogram":
			if ss.Hist == nil {
				ss.Hist = &HistogramSnapshot{}
			}
			if os.Hist != nil {
				ss.Hist.Merge(os.Hist)
			}
		default:
			ss.Value += os.Value
		}
	}
	s.sortSeries()
	return nil
}

// Find returns the series with the given name and labels, or nil.
func (s *RegistrySnapshot) Find(name, labels string) *SeriesSnapshot {
	for i := range s.Series {
		if s.Series[i].Name == name && s.Series[i].Labels == labels {
			return &s.Series[i]
		}
	}
	return nil
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format, identical to what Registry.WritePrometheus would produce for a
// single process holding the merged values.
func (s *RegistrySnapshot) WritePrometheus(w io.Writer) error {
	s.sortSeries()
	prev := ""
	for i := range s.Series {
		ss := &s.Series[i]
		if ss.Name != prev {
			if ss.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ss.Name, ss.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ss.Name, ss.Type); err != nil {
				return err
			}
			prev = ss.Name
		}
		var err error
		switch ss.Type {
		case "histogram":
			hs := ss.Hist
			if hs == nil {
				hs = &HistogramSnapshot{}
			}
			err = writePromHist(w, ss.Name, ss.Labels, hs)
		case "counter":
			// Counters are integral in the native exposition; keep that shape.
			_, err = fmt.Fprintf(w, "%s %d\n", series(ss.Name, ss.Labels), uint64(ss.Value))
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", series(ss.Name, ss.Labels), formatFloat(ss.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHist renders one histogram snapshot in Prometheus histogram
// form: cumulative _bucket series with le labels, then _sum and _count.
func writePromHist(w io.Writer, name, labels string, s *HistogramSnapshot) error {
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if _, err := io.WriteString(w, seriesLe(name, labels, formatFloat(bucketBounds[i]))+" "+utoa(cum)+"\n"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, series(name+"_sum", labels)+" "+itoa(s.Sum)+"\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, series(name+"_count", labels)+" "+utoa(s.Count)+"\n")
	return err
}
