package obs

import (
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Bucket layout: log-spaced nanosecond bins with histSub sub-buckets per
// power of two, HDR-histogram style. Bucket 0 holds [0, 2^histMinExp);
// the last bucket is the overflow above 2^histMaxExp. In between, the
// octave [2^o, 2^(o+1)) is split into histSub equal-width bins, so the
// worst-case relative quantile error is 1/histSub ≈ 25% of the value's
// octave — tight enough to separate the paper's 3.92×–40× HW-vs-SW
// latency gap by orders of magnitude, cheap enough (NumBuckets uint64
// words ≈ 1 KiB) to put one histogram on every decide stage.
const (
	histMinExp  = 6  // bucket 0: [0, 64 ns)
	histMaxExp  = 36 // overflow bucket: [2^36 ns ≈ 68.7 s, +Inf)
	histSubBits = 2
	histSub     = 1 << histSubBits

	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = 1 + (histMaxExp-histMinExp)*histSub + 1
)

// bucketBounds[i] is the exclusive upper bound of bucket i in ns;
// the overflow bucket's bound is +Inf.
var bucketBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	b[0] = float64(uint64(1) << histMinExp)
	for i := 1; i < NumBuckets-1; i++ {
		oct := histMinExp + (i-1)/histSub
		sub := (i - 1) % histSub
		b[i] = float64((uint64(1) << oct) + uint64(sub+1)<<(oct-histSubBits))
	}
	b[NumBuckets-1] = math.Inf(1)
	return b
}()

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<histMinExp {
		return 0
	}
	oct := bits.Len64(u) - 1
	if oct >= histMaxExp {
		return NumBuckets - 1
	}
	sub := (u >> (uint(oct) - histSubBits)) & (histSub - 1)
	return 1 + (oct-histMinExp)*histSub + int(sub)
}

// BucketUpperBound returns bucket i's exclusive upper bound in ns (+Inf
// for the overflow bucket).
func BucketUpperBound(i int) float64 { return bucketBounds[i] }

// Histogram is a fixed-bucket latency histogram over nanosecond samples.
// Observe is lock-free and allocation-free; concurrent observers only
// contend on atomic adds. Create one with Registry.NewHistogram (to
// expose it) or NewHistogram (standalone, e.g. the load generator's
// client-side latencies).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	desc   desc
}

// NewHistogram creates a standalone histogram (not attached to a
// registry). name/help only matter if the histogram is later rendered.
func NewHistogram(name, help string, labels ...Label) *Histogram {
	return &Histogram{desc: desc{name: name, help: help, labels: renderLabels(labels), typ: "histogram"}}
}

// Observe records one nanosecond sample. Negative samples clamp to 0 so a
// stepped clock can never corrupt the distribution. Allocation-free.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a copy of the histogram state. Snapshots taken while
// observers are running are per-field atomic (the totals may trail the
// bucket sums by in-flight observations, never the reverse by more than
// the races in progress).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	// Read the totals first: if observers race the loop below, count/sum
	// undercount the buckets rather than claiming samples the buckets
	// don't hold.
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// writeProm renders the histogram in Prometheus histogram form:
// cumulative _bucket series with le labels, then _sum and _count.
func (h *Histogram) writeProm(w io.Writer) error {
	s := h.Snapshot()
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if _, err := io.WriteString(w, seriesLe(h.desc.name, h.desc.labels, formatFloat(bucketBounds[i]))+" "+utoa(cum)+"\n"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, series(h.desc.name+"_sum", h.desc.labels)+" "+itoa(s.Sum)+"\n"); err != nil {
		return err
	}
	_, err := io.WriteString(w, series(h.desc.name+"_count", h.desc.labels)+" "+utoa(s.Count)+"\n")
	return err
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable
// across shards/devices and queryable for quantiles.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    int64 // ns
	Max    int64 // ns, exact
}

// Merge folds other into s (bucket-wise addition; max of maxes).
func (s *HistogramSnapshot) Merge(other *HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Mean returns the mean sample in ns (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-th quantile (q in [0,1]) in ns, exact within
// bucket resolution: the reported value is the upper bound of the bucket
// containing the target rank, clamped to the exactly-tracked Max (so
// Quantile(1) is the true maximum and no quantile overshoots it).
// Returns 0 for an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			ub := bucketBounds[i]
			if ub > float64(s.Max) {
				ub = float64(s.Max)
			}
			return ub
		}
	}
	return float64(s.Max)
}

// Bucket is one non-empty histogram bin, the compact JSON form reports
// use (the full fixed array is mostly zeros).
type Bucket struct {
	// LeNs is the bin's exclusive upper bound in ns (+Inf rendered by
	// encoding as the exact Max would lose the overflow marker, so the
	// overflow bin reports LeNs = -1).
	LeNs  float64 `json:"le_ns"`
	Count uint64  `json:"count"`
}

// NonZero returns the populated buckets in ascending bound order.
func (s *HistogramSnapshot) NonZero() []Bucket {
	var out []Bucket
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		le := bucketBounds[i]
		if math.IsInf(le, 1) {
			le = -1
		}
		out = append(out, Bucket{LeNs: le, Count: c})
	}
	return out
}

// utoa / itoa avoid fmt in the exposition inner loop.
func utoa(v uint64) string { return formatUint(v) }
func itoa(v int64) string {
	if v < 0 {
		return "-" + formatUint(uint64(-v))
	}
	return formatUint(uint64(v))
}

func formatUint(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}
