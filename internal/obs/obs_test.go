package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte for a small
// registry: HELP/TYPE emitted once per name, series sorted by (name,
// labels), label keys sorted inside each series, values escaped.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Registered deliberately out of name order and with unsorted label
	// keys: the exposition must come out sorted anyway.
	zz := reg.NewCounter("zz_total", "last by name")
	up := reg.NewGauge("aa_up", "first by name")
	b := reg.NewCounter("mid_total", "two series, one name",
		Label{Key: "stage", Value: "backend"})
	a := reg.NewCounter("mid_total", "two series, one name",
		Label{Key: "stage", Value: "assemble"})
	reg.NewGaugeFunc("fn_gauge", "scrape-time value", func() float64 { return 1.5 })
	esc := reg.NewCounter("esc_total", "escaped label",
		Label{Key: "zkey", Value: `quote " slash \ nl` + "\n"}, Label{Key: "akey", Value: "v"})

	zz.Add(7)
	up.Set(0.25)
	a.Add(1)
	b.Add(2)
	esc.Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP aa_up first by name
# TYPE aa_up gauge
aa_up 0.25
# HELP esc_total escaped label
# TYPE esc_total counter
esc_total{akey="v",zkey="quote \" slash \\ nl\n"} 1
# HELP fn_gauge scrape-time value
# TYPE fn_gauge gauge
fn_gauge 1.5
# HELP mid_total two series, one name
# TYPE mid_total counter
mid_total{stage="assemble"} 1
mid_total{stage="backend"} 2
# HELP zz_total last by name
# TYPE zz_total counter
zz_total 7
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted from the golden fixture:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusHistogram checks the histogram rendering contract:
// cumulative buckets over every bound, a +Inf bucket equal to _count, and
// _sum in ns.
func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat_ns", "latency", Label{Key: "stage", Value: "http"})
	h.Observe(100) // bucket [96,112)
	h.Observe(100)
	h.Observe(40) // bucket 0

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	for _, line := range []string{
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{stage="http",le="64"} 1`,
		`lat_ns_bucket{stage="http",le="96"} 1`,
		`lat_ns_bucket{stage="http",le="112"} 3`,
		`lat_ns_bucket{stage="http",le="+Inf"} 3`,
		`lat_ns_sum{stage="http"} 240`,
		`lat_ns_count{stage="http"} 3`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
	// Exactly one bucket line per bound plus sum and count.
	lines := strings.Count(got, "\n")
	if want := 2 + NumBuckets + 2; lines != want {
		t.Fatalf("%d exposition lines, want %d", lines, want)
	}
	// Cumulative counts never decrease.
	prev := -1
	for _, l := range strings.Split(got, "\n") {
		if !strings.HasPrefix(l, "lat_ns_bucket") {
			continue
		}
		v, err := strconv.Atoi(l[strings.LastIndexByte(l, ' ')+1:])
		if err != nil {
			t.Fatalf("parsing %q: %v", l, err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket count decreased at %q", l)
		}
		prev = v
	}
}

// TestRegistryPanics pins the wiring-time programming-error checks.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.NewCounter("ok_total", "")
	mustPanic("invalid name", func() { reg.NewCounter("bad name", "") })
	mustPanic("empty name", func() { reg.NewCounter("", "") })
	mustPanic("duplicate series", func() { reg.NewCounter("ok_total", "") })
	mustPanic("type conflict", func() { reg.NewGauge("ok_total", "") })
	mustPanic("invalid label key", func() {
		reg.NewCounter("lbl_total", "", Label{Key: "0bad", Value: "v"})
	})
	// Same name with different labels is fine.
	reg.NewCounter("ok_total", "", Label{Key: "k", Value: "v"})
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter %d, want 5", c.Load())
	}
	g := reg.NewGauge("g", "")
	g.Set(-2.5)
	if g.Load() != -2.5 {
		t.Fatalf("gauge %v, want -2.5", g.Load())
	}
}
