package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"rlpm/internal/rng"
)

// shardRegistry builds a registry shaped like one serving shard's: a
// decisions counter, a live-sessions gauge, and a latency histogram, each
// fed the given samples.
func shardRegistry(t *testing.T, decisions uint64, sessions float64, samples []int64) *Registry {
	t.Helper()
	r := NewRegistry()
	c := r.NewCounter("serve_decisions_total", "Decisions served.")
	c.Add(decisions)
	g := r.NewGauge("serve_sessions_live", "Live sessions.")
	g.Set(sessions)
	h := r.NewHistogram("serve_decide_latency_ns", "Decide latency.", Label{Key: "stage", Value: "total"})
	for _, s := range samples {
		h.Observe(s)
	}
	return r
}

// overTheWire simulates a cross-process scrape: serialize the snapshot to
// JSON and decode it into a fresh value, as the router does with each
// shard's GET /debug/obs response.
func overTheWire(t *testing.T, s RegistrySnapshot) *RegistrySnapshot {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out RegistrySnapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &out
}

// TestSnapshotMergeAcrossProcesses pins the router's fleet scrape-merge:
// N shard registries are snapshotted, serialized through JSON (the process
// boundary), merged, and the merged view must agree with a single-process
// oracle registry that saw every sample — counters sum exactly, and every
// histogram quantile is bucket-for-bucket identical.
func TestSnapshotMergeAcrossProcesses(t *testing.T) {
	r := rng.New(7)
	var all []int64
	shards := make([]*Registry, 3)
	var wantDecisions uint64
	for i := range shards {
		n := 500 + r.Intn(500)
		samples := make([]int64, n)
		for j := range samples {
			samples[j] = int64(r.Intn(1 << 20))
		}
		all = append(all, samples...)
		wantDecisions += uint64(n)
		shards[i] = shardRegistry(t, uint64(n), float64(i+1), samples)
	}

	merged := overTheWire(t, shards[0].Snapshot())
	for _, sh := range shards[1:] {
		if err := merged.Merge(overTheWire(t, sh.Snapshot())); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}

	if c := merged.Find("serve_decisions_total", ""); c == nil || uint64(c.Value) != wantDecisions {
		t.Fatalf("merged decisions = %+v, want %d", c, wantDecisions)
	}
	if g := merged.Find("serve_sessions_live", ""); g == nil || g.Value != 1+2+3 {
		t.Fatalf("merged sessions gauge = %+v, want 6", g)
	}

	// Single-process oracle: one histogram that observed every sample.
	oh := NewHistogram("serve_decide_latency_ns", "Decide latency.")
	for _, s := range all {
		oh.Observe(s)
	}
	want := oh.Snapshot()
	got := merged.Find("serve_decide_latency_ns", `stage="total"`)
	if got == nil || got.Hist == nil {
		t.Fatalf("merged histogram missing: %+v", got)
	}
	if got.Hist.Count != want.Count || got.Hist.Sum != want.Sum || got.Hist.Counts != want.Counts {
		t.Fatalf("merged histogram differs from single-process oracle:\n got count=%d sum=%d\nwant count=%d sum=%d",
			got.Hist.Count, got.Hist.Sum, want.Count, want.Sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if g, w := got.Hist.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("q%.2f: merged %v != oracle %v", q, g, w)
		}
	}
	// And the recovered quantile brackets the exact one within bucket
	// resolution: the exact sample quantile lies at or below the recovered
	// bucket upper bound.
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	exact := float64(all[len(all)/2])
	if rec := got.Hist.Quantile(0.5); rec < exact {
		t.Fatalf("recovered p50 %v below exact sample p50 %v", rec, exact)
	}
}

// TestSnapshotPrometheusMatchesRegistry pins that rendering a snapshot
// produces byte-identical exposition to the live registry it came from —
// the router's merged view is indistinguishable in shape from a single
// process's /metrics.
func TestSnapshotPrometheusMatchesRegistry(t *testing.T) {
	reg := shardRegistry(t, 42, 3, []int64{10, 100, 5000, 1 << 30})
	reg.NewGaugeFunc("serve_uptime_s", "Uptime.", func() float64 { return 12.5 })
	reg.NewCounterFunc("serve_rewards_total", "Rewards.", func() uint64 { return 9 })

	var live, snap bytes.Buffer
	if err := reg.WritePrometheus(&live); err != nil {
		t.Fatalf("registry write: %v", err)
	}
	s := overTheWire(t, reg.Snapshot())
	if err := s.WritePrometheus(&snap); err != nil {
		t.Fatalf("snapshot write: %v", err)
	}
	if live.String() != snap.String() {
		t.Fatalf("snapshot exposition differs from live registry:\n--- live ---\n%s\n--- snapshot ---\n%s", live.String(), snap.String())
	}
	if !strings.Contains(snap.String(), "serve_decide_latency_ns_bucket") {
		t.Fatalf("exposition missing histogram buckets:\n%s", snap.String())
	}
}

// TestSnapshotMergeDisjointSeries checks that series present on only one
// shard survive the merge and land in deterministic (name, labels) order.
func TestSnapshotMergeDisjointSeries(t *testing.T) {
	a := NewRegistry()
	a.NewCounter("alpha_total", "A.").Add(1)
	b := NewRegistry()
	b.NewCounter("beta_total", "B.").Add(2)
	b.NewCounter("alpha_total", "A.").Add(10)

	m := overTheWire(t, b.Snapshot())
	if err := m.Merge(overTheWire(t, a.Snapshot())); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(m.Series) != 2 {
		t.Fatalf("merged series count %d, want 2", len(m.Series))
	}
	if m.Series[0].Name != "alpha_total" || m.Series[1].Name != "beta_total" {
		t.Fatalf("merged order wrong: %s, %s", m.Series[0].Name, m.Series[1].Name)
	}
	if m.Series[0].Value != 11 || m.Series[1].Value != 2 {
		t.Fatalf("merged values %v, %v; want 11, 2", m.Series[0].Value, m.Series[1].Value)
	}
}

// TestSnapshotMergeTypeConflict checks that merging incompatible registry
// shapes fails loudly rather than silently summing unlike kinds.
func TestSnapshotMergeTypeConflict(t *testing.T) {
	a := NewRegistry()
	a.NewCounter("x_total", "X.").Add(1)
	b := NewRegistry()
	b.NewGauge("x_total", "X.").Set(1)
	m := overTheWire(t, a.Snapshot())
	if err := m.Merge(overTheWire(t, b.Snapshot())); err == nil {
		t.Fatal("merge of counter vs gauge succeeded, want error")
	}
}
