// Package replay records workload demand traces and plays them back as
// scenarios.
//
// The paper's evaluation runs real applications; offline we generate
// scenarios stochastically (internal/workload), but a downstream user with
// real per-period demand traces (e.g. extracted from ftrace/perfetto on a
// device) can load them here and evaluate every governor on the exact
// recorded workload. The repository also uses replay to freeze a generated
// scenario into a byte-identical regression fixture.
package replay

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// Period is one recorded control period.
type Period struct {
	Demands  []soc.Demand
	Critical bool
	Phase    string
}

// Trace is a recorded demand sequence.
type Trace struct {
	Name     string
	Clusters int
	Periods  []Period
}

// Record runs scenario scen for n periods of dtS and captures its demand
// stream.
func Record(scen workload.Scenario, n int, dtS float64, seed uint64) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("replay: non-positive period count %d", n)
	}
	if dtS <= 0 {
		return nil, fmt.Errorf("replay: non-positive period %v", dtS)
	}
	scen.Reset(seed)
	t := &Trace{Name: scen.Name()}
	for i := 0; i < n; i++ {
		p := scen.Next(dtS)
		if i == 0 {
			t.Clusters = len(p.Demands)
		} else if len(p.Demands) != t.Clusters {
			return nil, fmt.Errorf("replay: cluster count changed mid-trace at period %d", i)
		}
		t.Periods = append(t.Periods, Period{
			Demands:  append([]soc.Demand(nil), p.Demands...),
			Critical: p.Critical,
			Phase:    p.Phase,
		})
	}
	return t, nil
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("replay: trace has no name")
	}
	if t.Clusters < 1 {
		return fmt.Errorf("replay: trace has %d clusters", t.Clusters)
	}
	if len(t.Periods) == 0 {
		return fmt.Errorf("replay: trace has no periods")
	}
	for i, p := range t.Periods {
		if len(p.Demands) != t.Clusters {
			return fmt.Errorf("replay: period %d has %d demands, want %d", i, len(p.Demands), t.Clusters)
		}
		for c, d := range p.Demands {
			if d.Cycles < 0 || d.Parallelism < 0 {
				return fmt.Errorf("replay: period %d cluster %d negative demand", i, c)
			}
			if d.Cycles > 0 && d.Parallelism == 0 {
				return fmt.Errorf("replay: period %d cluster %d demands cycles with no threads", i, c)
			}
		}
	}
	return nil
}

// WriteCSV serializes the trace. Format:
//
//	# name=<name> clusters=<n>
//	critical,phase,cycles0,par0[,cycles1,par1...]
//	...
func (t *Trace) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# name=%s clusters=%d\n", t.Name, t.Clusters); err != nil {
		return err
	}
	header := []string{"critical", "phase"}
	for c := 0; c < t.Clusters; c++ {
		header = append(header, fmt.Sprintf("cycles%d", c), fmt.Sprintf("par%d", c))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, p := range t.Periods {
		fields := make([]string, 0, 2+2*t.Clusters)
		crit := "0"
		if p.Critical {
			crit = "1"
		}
		fields = append(fields, crit, p.Phase)
		for _, d := range p.Demands {
			fields = append(fields,
				strconv.FormatFloat(d.Cycles, 'g', -1, 64),
				strconv.Itoa(d.Parallelism))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("replay: empty input")
	}
	head := sc.Text()
	t := &Trace{}
	if _, err := fmt.Sscanf(head, "# name=%s", &t.Name); err != nil {
		return nil, fmt.Errorf("replay: bad header %q", head)
	}
	// The name token may carry the clusters suffix if unspaced; parse
	// clusters from the full header explicitly.
	if idx := strings.Index(head, "clusters="); idx >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(head[idx+len("clusters="):]))
		if err != nil {
			return nil, fmt.Errorf("replay: bad clusters in header %q", head)
		}
		t.Clusters = n
	} else {
		return nil, fmt.Errorf("replay: header %q missing clusters", head)
	}
	t.Name = strings.TrimSpace(strings.TrimSuffix(t.Name, ","))
	if !sc.Scan() {
		return nil, fmt.Errorf("replay: missing column header")
	}
	wantCols := 2 + 2*t.Clusters
	line := 2
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, ",")
		if len(fields) != wantCols {
			return nil, fmt.Errorf("replay: line %d has %d fields, want %d", line, len(fields), wantCols)
		}
		p := Period{Critical: fields[0] == "1", Phase: fields[1]}
		for c := 0; c < t.Clusters; c++ {
			cycles, err := strconv.ParseFloat(fields[2+2*c], 64)
			if err != nil {
				return nil, fmt.Errorf("replay: line %d cycles%d: %w", line, c, err)
			}
			par, err := strconv.Atoi(fields[3+2*c])
			if err != nil {
				return nil, fmt.Errorf("replay: line %d par%d: %w", line, c, err)
			}
			p.Demands = append(p.Demands, soc.Demand{Cycles: cycles, Parallelism: par})
		}
		t.Periods = append(t.Periods, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// scenario replays a trace, looping when it reaches the end.
type scenario struct {
	trace *Trace
	pos   int
}

// Scenario wraps the trace as a workload.Scenario. Reset rewinds to the
// start (the seed is ignored: a recorded trace is already deterministic).
// Playback loops, so runs longer than the trace repeat it.
func (t *Trace) Scenario() (workload.Scenario, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &scenario{trace: t}, nil
}

func (s *scenario) Name() string { return s.trace.Name + "-replay" }

func (s *scenario) Reset(uint64) { s.pos = 0 }

func (s *scenario) Next(dtS float64) workload.Period {
	if dtS <= 0 {
		panic("replay: non-positive control period")
	}
	p := s.trace.Periods[s.pos]
	s.pos = (s.pos + 1) % len(s.trace.Periods)
	return workload.Period{
		Demands:  append([]soc.Demand(nil), p.Demands...),
		Critical: p.Critical,
		Phase:    p.Phase,
	}
}
