package replay

import (
	"strings"
	"testing"

	"rlpm/internal/soc"
)

// Empty-trace edge cases: a trace with no periods must be rejected at every
// boundary — validation, serialization, playback, and parsing.
func TestEmptyTraceRejectedEverywhere(t *testing.T) {
	empty := &Trace{Name: "empty", Clusters: 1}
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted a trace with no periods")
	}
	var sb strings.Builder
	if err := empty.WriteCSV(&sb); err == nil {
		t.Error("WriteCSV serialized a trace with no periods")
	}
	if _, err := empty.Scenario(); err == nil {
		t.Error("Scenario built a playback over no periods")
	}
}

func TestReadCSVEmptyInputs(t *testing.T) {
	cases := map[string]string{
		"zero bytes":       "",
		"header only":      "# name=x clusters=1\n",
		"no data rows":     "# name=x clusters=1\ncritical,phase,cycles0,par0\n",
		"only blank lines": "# name=x clusters=1\ncritical,phase,cycles0,par0\n\n\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadCSV accepted input with no periods", name)
		}
	}
}

func TestSinglePeriodTrace(t *testing.T) {
	tr := &Trace{
		Name:     "one",
		Clusters: 2,
		Periods: []Period{{
			Demands:  []soc.Demand{{Cycles: 1e6, Parallelism: 1}, {Cycles: 0, Parallelism: 0}},
			Critical: true,
			Phase:    "burst",
		}},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back.Periods) != 1 || back.Clusters != 2 {
		t.Fatalf("round trip produced %d periods, %d clusters", len(back.Periods), back.Clusters)
	}

	// A one-period trace loops that period forever.
	scen, err := tr.Scenario()
	if err != nil {
		t.Fatalf("Scenario: %v", err)
	}
	for i := 0; i < 3; i++ {
		p := scen.Next(0.05)
		if !p.Critical || p.Phase != "burst" || p.Demands[0].Cycles != 1e6 {
			t.Fatalf("loop iteration %d replayed %+v", i, p)
		}
	}
}

func TestReadCSVRejectsNegativeDemand(t *testing.T) {
	input := "# name=x clusters=1\ncritical,phase,cycles0,par0\n0,p,-5,1\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Fatal("negative cycles passed validation")
	}
	input = "# name=x clusters=1\ncritical,phase,cycles0,par0\n0,p,5,0\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Fatal("cycles with zero parallelism passed validation")
	}
}
