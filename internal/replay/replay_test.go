package replay

import (
	"strings"
	"testing"
	"testing/quick"

	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func recordedTrace(t *testing.T, n int) *Trace {
	t.Helper()
	spec, err := workload.ByName("gaming")
	if err != nil {
		t.Fatal(err)
	}
	scen, err := workload.New(spec, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(scen, n, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordBasics(t *testing.T) {
	tr := recordedTrace(t, 100)
	if tr.Name != "gaming" || tr.Clusters != 2 || len(tr.Periods) != 100 {
		t.Fatalf("trace shape: %s %d %d", tr.Name, tr.Clusters, len(tr.Periods))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordValidation(t *testing.T) {
	spec, _ := workload.ByName("idle")
	scen, _ := workload.New(spec, 2, 1)
	if _, err := Record(scen, 0, 0.05, 1); err == nil {
		t.Fatal("zero periods accepted")
	}
	if _, err := Record(scen, 10, 0, 1); err == nil {
		t.Fatal("zero dt accepted")
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	good := recordedTrace(t, 5)
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"no name", func(tr *Trace) { tr.Name = "" }},
		{"no clusters", func(tr *Trace) { tr.Clusters = 0 }},
		{"no periods", func(tr *Trace) { tr.Periods = nil }},
		{"wrong demand count", func(tr *Trace) { tr.Periods[2].Demands = tr.Periods[2].Demands[:1] }},
		{"negative cycles", func(tr *Trace) { tr.Periods[1].Demands[0].Cycles = -1 }},
		{"cycles no threads", func(tr *Trace) {
			tr.Periods[1].Demands[0] = soc.Demand{Cycles: 5, Parallelism: 0}
		}},
	}
	for _, c := range cases {
		tr := recordedTrace(t, 5)
		c.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		_ = good
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := recordedTrace(t, 200)
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Clusters != tr.Clusters || len(got.Periods) != len(tr.Periods) {
		t.Fatalf("round trip shape: %+v", got)
	}
	for i := range tr.Periods {
		a, bb := tr.Periods[i], got.Periods[i]
		if a.Critical != bb.Critical || a.Phase != bb.Phase {
			t.Fatalf("period %d metadata differs", i)
		}
		for c := range a.Demands {
			if a.Demands[c] != bb.Demands[c] {
				t.Fatalf("period %d cluster %d demand differs: %v vs %v", i, c, a.Demands[c], bb.Demands[c])
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"# name=x\nheader\n", // missing clusters
		"# name=x clusters=2\ncritical,phase,cycles0,par0,cycles1,par1\n1,play,100\n",      // short row
		"# name=x clusters=2\ncritical,phase,cycles0,par0,cycles1,par1\n1,play,a,1,2,1\n",  // bad float
		"# name=x clusters=2\ncritical,phase,cycles0,par0,cycles1,par1\n1,play,10,x,2,1\n", // bad int
		"# name=x clusters=2\ncritical,phase,cycles0,par0,cycles1,par1\n1,play,10,0,2,1\n", // cycles w/o threads
		"# name=x clusters=bad\ncritical,phase\n",                                          // bad clusters
		"# name=x clusters=2\n", // no column header
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestScenarioReplaysExactly(t *testing.T) {
	tr := recordedTrace(t, 150)
	scen, err := tr.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		p := scen.Next(0.05)
		want := tr.Periods[i]
		if p.Critical != want.Critical || p.Phase != want.Phase {
			t.Fatalf("period %d metadata differs", i)
		}
		for c := range want.Demands {
			if p.Demands[c] != want.Demands[c] {
				t.Fatalf("period %d demand differs", i)
			}
		}
	}
}

func TestScenarioLoops(t *testing.T) {
	tr := recordedTrace(t, 10)
	scen, _ := tr.Scenario()
	for i := 0; i < 10; i++ {
		scen.Next(0.05)
	}
	p := scen.Next(0.05) // wrapped
	want := tr.Periods[0]
	if p.Phase != want.Phase || p.Demands[0] != want.Demands[0] {
		t.Fatal("replay did not loop to the start")
	}
}

func TestScenarioResetRewinds(t *testing.T) {
	tr := recordedTrace(t, 20)
	scen, _ := tr.Scenario()
	first := scen.Next(0.05)
	for i := 0; i < 7; i++ {
		scen.Next(0.05)
	}
	scen.Reset(12345) // seed ignored
	again := scen.Next(0.05)
	if first.Phase != again.Phase || first.Demands[1] != again.Demands[1] {
		t.Fatal("Reset did not rewind")
	}
}

func TestScenarioName(t *testing.T) {
	tr := recordedTrace(t, 5)
	scen, _ := tr.Scenario()
	if scen.Name() != "gaming-replay" {
		t.Fatalf("Name = %q", scen.Name())
	}
}

func TestScenarioPanicsOnBadDt(t *testing.T) {
	tr := recordedTrace(t, 5)
	scen, _ := tr.Scenario()
	defer func() {
		if recover() == nil {
			t.Fatal("dt=0 did not panic")
		}
	}()
	scen.Next(0)
}

func TestReplayDrivesSimulationIdentically(t *testing.T) {
	// A replayed trace must produce the same simulation outcome as the
	// live scenario it was recorded from.
	spec, _ := workload.ByName("video")
	live, _ := workload.New(spec, 2, 4)
	const periods = 400
	tr, err := Record(live, periods, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	replayScen, _ := tr.Scenario()

	run := func(scen workload.Scenario) float64 {
		chip, err := soc.NewChip(soc.DefaultChipSpec())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(chip, scen, &pin{level: 4}, sim.Config{
			PeriodS: 0.05, DurationS: float64(periods) * 0.05, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoS.TotalEnergyJ
	}
	if a, b := run(live), run(replayScen); a != b {
		t.Fatalf("replay diverged from live: %v vs %v", a, b)
	}
}

type pin struct{ level int }

func (g *pin) Name() string { return "pin" }
func (g *pin) Reset()       {}
func (g *pin) Decide(obs []sim.Observation) []int {
	out := make([]int, len(obs))
	for i := range out {
		out[i] = g.level
	}
	return out
}

// Property: any recorded trace survives a CSV round trip bit-identically.
func TestCSVRoundTripProperty(t *testing.T) {
	specs := workload.AllSpecs()
	f := func(seed uint64, which uint8, nRaw uint8) bool {
		spec := specs[int(which)%len(specs)]
		scen, err := workload.New(spec, 2, seed)
		if err != nil {
			return false
		}
		n := int(nRaw%50) + 1
		tr, err := Record(scen, n, 0.05, seed)
		if err != nil {
			return false
		}
		var b strings.Builder
		if err := tr.WriteCSV(&b); err != nil {
			return false
		}
		got, err := ReadCSV(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if got.Name != tr.Name || len(got.Periods) != len(tr.Periods) {
			return false
		}
		for i := range tr.Periods {
			for c := range tr.Periods[i].Demands {
				if got.Periods[i].Demands[c] != tr.Periods[i].Demands[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
