package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference vectors computed from the canonical C implementation
	// (Vigna, 2015) with seed 1234567.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64 draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d differs: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws of 100", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 of seed 7 collide %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(8)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	const mean, sd = 3.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Norm mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	const rate = 4.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if got, want := sum/n, 1/rate; math.Abs(got-want) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", got, want)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestLogNormPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.LogNorm(0, 1); v <= 0 {
			t.Fatalf("LogNorm returned non-positive %v", v)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(19)
	const n = 100000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestChoiceRespectWeights(t *testing.T) {
	r := New(23)
	weights := []float64{1, 0, 3}
	const n = 100000
	var counts [3]int
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight-3/weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	cases := [][]float64{{0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", w)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: Range(lo,hi) always lands in [lo,hi) for lo<hi.
func TestRangeProperty(t *testing.T) {
	r := New(31)
	f := func(a, b float64, steps uint8) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		for i := 0; i < int(steps%16)+1; i++ {
			v := r.Range(lo, hi)
			if v < lo || v >= hi {
				// hi-lo may overflow to +Inf; skip those.
				if math.IsInf(hi-lo, 0) {
					return true
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mix64 is injective on a sample (collision would be a bug
// for stream derivation).
func TestMix64NoEasyCollisions(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm(0, 1)
	}
	_ = sink
}
