// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must regenerate bit-identically from a seed. The standard
// library's math/rand/v2 would work, but its generator family is not pinned
// across Go releases; this package pins splitmix64 (for seeding) and
// xoshiro256** (for streams) so traces are stable forever.
package rng

import (
	"errors"
	"math"
)

// SplitMix64 is the seeding generator recommended by the xoshiro authors.
// It is also useful on its own for cheap, stateless hashing of integers.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 round. Useful for deriving
// independent stream seeds from (seed, streamID) pairs.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or NewStream.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as the xoshiro
// authors recommend (never seed xoshiro state with correlated words).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// All-zero state is invalid for xoshiro; splitmix64 output of four
	// consecutive draws is never all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// NewStream returns a generator for (seed, stream) that is statistically
// independent of other streams with the same seed. Used to give each
// scenario phase, each cluster, and the agent's exploration their own
// streams so adding a consumer never perturbs the others.
func NewStream(seed, stream uint64) *Rand {
	return New(Mix64(seed) ^ Mix64(stream^0xd1b54a32d192ed03))
}

// State exports the generator's raw xoshiro256** state so a session can be
// suspended and resumed bit-exactly (the serving tier's crash-recovery path
// carries it across server restarts).
func (r *Rand) State() [4]uint64 { return r.s }

// NewFromState reconstructs a generator from a State() export. The all-zero
// state is invalid for xoshiro and is rejected so a zero-filled transport
// buffer can never produce a degenerate generator.
func NewFromState(s [4]uint64) (*Rand, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, errors.New("rng: all-zero xoshiro state")
	}
	return &Rand{s: s}, nil
}

// SetState restores a state previously exported with State, in place and
// without allocating — the serving tier's transactional decide path uses
// it to roll a generator back when a batched lookup fails, so a retried
// request replays the exact same draws. Rejects the all-zero state.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("rng: all-zero xoshiro state")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, biased variant is fine
	// for n << 2^64 but we use the exact rejection form for correctness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Range returns a uniform float64 in [lo, hi). Requires lo <= hi.
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the polar Box–Muller method.
func (r *Rand) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has parameters mu and sigma.
func (r *Rand) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// Float64 is in [0,1); 1-u is in (0,1] so the log is finite.
	return -math.Log(1-u) / rate
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Choice returns a uniformly chosen index weighted by weights. All weights
// must be non-negative; at least one must be positive.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // x landed exactly on total due to rounding
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
