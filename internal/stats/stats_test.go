package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v", got)
	}
}

func TestVariance(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7)
	}
	if _, err := Variance([]float64{1}); err != ErrEmpty {
		t.Fatalf("Variance of 1 sample err = %v", err)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil || !almostEq(g, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("GeoMean with 0 did not error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatalf("GeoMean(nil) err = %v", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 7 {
		t.Fatalf("Min/Max = %v/%v", mn, mx)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatal("Min(nil) no error")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatal("Max(nil) no error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("P%v = %v (%v), want %v", c.p, got, err, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile no error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("p=-1 no error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("p=101 no error")
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{42}, 99)
	if err != nil || got != 42 {
		t.Fatalf("single-sample percentile = %v, %v", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	m, _ := Median([]float64{5, 1, 3})
	if m != 3 {
		t.Fatalf("Median = %v", m)
	}
}

func TestCI95(t *testing.T) {
	ci, err := CI95([]float64{10, 10, 10, 10})
	if err != nil || ci != 0 {
		t.Fatalf("CI of constant = %v, %v", ci, err)
	}
	ci, _ = CI95([]float64{0, 2})
	want := 1.96 * math.Sqrt(2) / math.Sqrt(2)
	if !almostEq(ci, want, 1e-12) {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Fatalf("Ratio(0,0) = %v", got)
	}
	if got := Ratio(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("Ratio(1,0) = %v", got)
	}
	if got := Ratio(-1, 0); !math.IsInf(got, -1) {
		t.Fatalf("Ratio(-1,0) = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 68.34); !almostEq(got, 31.66, 1e-9) {
		t.Fatalf("Improvement = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement with zero baseline = %v", got)
	}
	if got := Improvement(100, 120); got != -20 {
		t.Fatalf("regression Improvement = %v", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 7, 7, -11}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	bm, _ := Mean(xs)
	bv, _ := Variance(xs)
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if !almostEq(o.Mean(), bm, 1e-12) {
		t.Errorf("online mean %v vs %v", o.Mean(), bm)
	}
	if !almostEq(o.Variance(), bv, 1e-9) {
		t.Errorf("online var %v vs %v", o.Variance(), bv)
	}
	if o.Min() != mn || o.Max() != mx {
		t.Errorf("online min/max %v/%v vs %v/%v", o.Min(), o.Max(), mn, mx)
	}
	if o.N() != len(xs) {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 || o.N() != 0 {
		t.Fatal("zero-value Online not neutral")
	}
}

func TestOnlineMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var a, b, whole Online
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() || !almostEq(a.Mean(), whole.Mean(), 1e-12) ||
		!almostEq(a.Variance(), whole.Variance(), 1e-9) ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged %+v vs whole %+v", a, whole)
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, empty Online
	a.Add(5)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging empty changed accumulator")
	}
	var c Online
	c.Merge(&a)
	if c != a {
		t.Fatal("merge into empty did not copy")
	}
}

// Property: online mean equals batch mean for random samples.
func TestOnlineMeanProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, v := range raw {
			xs[i] = float64(v) / 7
			o.Add(xs[i])
		}
		bm, _ := Mean(xs)
		return almostEq(o.Mean(), bm, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		va, _ := Percentile(xs, a)
		vb, _ := Percentile(xs, b)
		return va <= vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -5, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -5 clamps into bin 0, 100 clamps into bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -5
		t.Fatalf("bin0 = %d, counts=%v", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9.99, 100
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.Mode(); got != 1 {
		t.Fatalf("Mode = %v", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("0 bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("lo==hi accepted")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Fatal("lo>hi accepted")
	}
}

func TestHistogramSparkline(t *testing.T) {
	h, _ := NewHistogram(0, 4, 4)
	if got := h.Sparkline(); len([]rune(got)) != 4 {
		t.Fatalf("empty sparkline = %q", got)
	}
	for i := 0; i < 8; i++ {
		h.Add(3.5)
	}
	h.Add(0.5)
	sp := []rune(h.Sparkline())
	if sp[3] != '█' {
		t.Fatalf("hottest bin rune = %q", sp[3])
	}
	if sp[1] != ' ' {
		t.Fatalf("empty bin rune = %q", sp[1])
	}
}

// Property: histogram never loses samples.
func TestHistogramConservesProperty(t *testing.T) {
	f := func(raw []int16) bool {
		h, _ := NewHistogram(-100, 100, 7)
		for _, v := range raw {
			h.Add(float64(v))
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
