// Package stats provides the summary statistics the experiment harness
// reports: means, geometric means, percentiles, confidence intervals,
// histograms, and online (Welford) accumulators.
//
// Everything here is deliberately dependency-free and deterministic so that
// table rows regenerate identically across runs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by reductions over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the unbiased sample variance (n-1 denominator).
// Requires at least two samples.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// GeoMean returns the geometric mean. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks (the "R-7" definition used by
// numpy). The input is copied and sorted internally; use
// PercentileSorted to amortize the sort over several percentiles.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile over an already ascending-sorted sample:
// no copy, no sort, identical values. Callers extracting several
// percentiles from one sample sort once and call this for each — the two
// paths are pinned to agree by the stats tests.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96 * sem). Requires >= 2 samples.
func CI95(xs []float64) (float64, error) {
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return 1.96 * sd / math.Sqrt(float64(len(xs))), nil
}

// Ratio returns a/b, guarding the degenerate denominators that arise when a
// scenario accrues zero QoS (returns +Inf for positive a, 0 for a==0).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(sign(a))
	}
	return a / b
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Improvement returns the relative improvement of "proposed" over
// "baseline" in percent: 100*(baseline-proposed)/baseline. Positive means
// proposed is lower (better, for costs like energy-per-QoS).
func Improvement(baseline, proposed float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - proposed) / baseline
}

// Online is a Welford accumulator for streaming mean/variance with
// min/max tracking. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for no samples).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased running variance (0 for fewer than two
// samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample (0 for no samples).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 for no samples).
func (o *Online) Max() float64 { return o.max }

// Merge folds other into o (parallel Welford merge).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Out-of-range samples
// clamp into the edge bins so nothing is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo,hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v,%v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records x.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin (lowest index wins
// ties).
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Sparkline renders the histogram as a compact unicode bar string, used in
// pmbench's figure output.
func (h *Histogram) Sparkline() string {
	if h.total == 0 {
		return strings.Repeat(" ", len(h.Counts))
	}
	ticks := []rune(" ▁▂▃▄▅▆▇█")
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for _, c := range h.Counts {
		idx := 0
		if maxC > 0 {
			idx = c * (len(ticks) - 1) / maxC
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
