package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := NewRecorder("a", "a"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewRecorder("a", ""); err == nil {
		t.Fatal("empty column accepted")
	}
	if _, err := NewRecorder("a", "b"); err != nil {
		t.Fatal(err)
	}
}

func TestMustRecorderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRecorder with bad columns did not panic")
		}
	}()
	MustRecorder()
}

func TestRecordAndSeries(t *testing.T) {
	r := MustRecorder("power", "freq")
	for i := 0; i < 3; i++ {
		err := r.Record(float64(i), map[string]float64{
			"power": float64(i) * 2,
			"freq":  100 + float64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	p, err := r.Series("power")
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 2 || p[2] != 4 {
		t.Fatalf("power series = %v", p)
	}
	last, err := r.Last("freq")
	if err != nil || last != 102 {
		t.Fatalf("Last = %v, %v", last, err)
	}
}

func TestRecordRejectsUnknownAndMissing(t *testing.T) {
	r := MustRecorder("a", "b")
	if err := r.Record(0, map[string]float64{"a": 1, "c": 2}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := r.Record(0, map[string]float64{"a": 1}); err == nil {
		t.Fatal("missing column accepted")
	}
	if r.Len() != 0 {
		t.Fatal("failed Record still appended a row")
	}
}

func TestSeriesUnknown(t *testing.T) {
	r := MustRecorder("a")
	if _, err := r.Series("nope"); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := r.Last("nope"); err == nil {
		t.Fatal("unknown Last accepted")
	}
	if _, err := r.Last("a"); err == nil {
		t.Fatal("Last on empty recorder accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	r := MustRecorder("x")
	_ = r.Record(0.5, map[string]float64{"x": 1.25})
	_ = r.Record(1.0, map[string]float64{"x": -3})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "time,x\n0.5,1.25\n1,-3\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestColumnsCopy(t *testing.T) {
	r := MustRecorder("a", "b")
	cols := r.Columns()
	cols[0] = "mutated"
	if r.Columns()[0] != "a" {
		t.Fatal("Columns returned aliased slice")
	}
}

func TestDownsample(t *testing.T) {
	r := MustRecorder("v")
	for i := 0; i < 10; i++ {
		_ = r.Record(float64(i), map[string]float64{"v": float64(i)})
	}
	d, err := r.Downsample(3)
	if err != nil {
		t.Fatal(err)
	}
	times := d.Times()
	if len(times) != 4 || times[0] != 0 || times[3] != 9 {
		t.Fatalf("downsampled times = %v", times)
	}
	if _, err := r.Downsample(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestWindow(t *testing.T) {
	r := MustRecorder("v")
	for i := 0; i < 10; i++ {
		_ = r.Record(float64(i), map[string]float64{"v": float64(i)})
	}
	w := r.Window(2.5, 6)
	times := w.Times()
	if len(times) != 3 || times[0] != 3 || times[2] != 5 {
		t.Fatalf("window times = %v", times)
	}
	if w.Window(100, 200).Len() != 0 {
		t.Fatal("out-of-range window not empty")
	}
}

func TestIntegrateConstant(t *testing.T) {
	r := MustRecorder("p")
	for i := 0; i < 5; i++ {
		_ = r.Record(float64(i)*0.5, map[string]float64{"p": 2})
	}
	// Constant 2 W over 5 samples at 0.5 s step = 2 * 2.5 = 5 J.
	got, err := r.Integrate("p")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("Integrate = %v, want 5", got)
	}
}

func TestIntegrateEdges(t *testing.T) {
	r := MustRecorder("p")
	if got, err := r.Integrate("p"); err != nil || got != 0 {
		t.Fatalf("empty Integrate = %v, %v", got, err)
	}
	_ = r.Record(0, map[string]float64{"p": 1})
	if _, err := r.Integrate("p"); err == nil {
		t.Fatal("single-sample Integrate accepted")
	}
	if _, err := r.Integrate("nope"); err == nil {
		t.Fatal("unknown column Integrate accepted")
	}
}

// Property: integral of constant c over n uniform steps dt equals c*n*dt.
func TestIntegrateConstantProperty(t *testing.T) {
	f := func(cRaw int16, nRaw, dtRaw uint8) bool {
		c := float64(cRaw) / 16
		n := int(nRaw%50) + 2
		dt := float64(dtRaw%20+1) / 10
		r := MustRecorder("p")
		for i := 0; i < n; i++ {
			_ = r.Record(float64(i)*dt, map[string]float64{"p": c})
		}
		got, err := r.Integrate("p")
		if err != nil {
			return false
		}
		want := c * float64(n) * dt
		return math.Abs(got-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Downsample(1) is identity over times and values.
func TestDownsampleIdentityProperty(t *testing.T) {
	f := func(vals []int16) bool {
		r := MustRecorder("v")
		for i, v := range vals {
			_ = r.Record(float64(i), map[string]float64{"v": float64(v)})
		}
		d, err := r.Downsample(1)
		if err != nil || d.Len() != r.Len() {
			return false
		}
		a, _ := r.Series("v")
		b, _ := d.Series("v")
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
