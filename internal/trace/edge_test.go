package trace

import "testing"

func TestRecordRejectsOutOfOrderTimes(t *testing.T) {
	r := MustRecorder("v")
	if err := r.Record(1.0, map[string]float64{"v": 1}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := r.Record(0.5, map[string]float64{"v": 2}); err == nil {
		t.Fatal("Record accepted a rewinding sample time")
	}
	if err := r.RecordRow(0.5, []float64{3}); err == nil {
		t.Fatal("RecordRow accepted a rewinding sample time")
	}
	if r.Len() != 1 {
		t.Fatalf("rejected rows were stored: len %d", r.Len())
	}
	// Equal times are allowed — a zero-duration step, not a rewind.
	if err := r.Record(1.0, map[string]float64{"v": 4}); err != nil {
		t.Fatalf("equal sample time rejected: %v", err)
	}
}

func TestWindowSingleSample(t *testing.T) {
	r := MustRecorder("v")
	if err := r.Record(2.0, map[string]float64{"v": 7}); err != nil {
		t.Fatalf("record: %v", err)
	}
	in := r.Window(2.0, 3.0)
	if in.Len() != 1 {
		t.Fatalf("window [2,3) over a sample at t=2 kept %d rows, want 1", in.Len())
	}
	if v, err := in.Last("v"); err != nil || v != 7 {
		t.Fatalf("windowed value %v (%v), want 7", v, err)
	}
	if out := r.Window(2.5, 3.0); out.Len() != 0 {
		t.Fatalf("window past the sample kept %d rows", out.Len())
	}
	if out := r.Window(1.0, 2.0); out.Len() != 0 {
		t.Fatalf("half-open window ending at the sample kept %d rows", out.Len())
	}
}

func TestWindowEmptyRecorder(t *testing.T) {
	r := MustRecorder("v")
	w := r.Window(0, 10)
	if w.Len() != 0 {
		t.Fatalf("window of an empty recorder has %d rows", w.Len())
	}
	if got := w.Columns(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("window dropped columns: %v", got)
	}
}

func TestIntegrateEmptyAndSingle(t *testing.T) {
	r := MustRecorder("p")
	if got, err := r.Integrate("p"); err != nil || got != 0 {
		t.Fatalf("empty integral = %v, %v; want 0, nil", got, err)
	}
	if err := r.Record(0, map[string]float64{"p": 5}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if _, err := r.Integrate("p"); err == nil {
		t.Fatal("single-sample integral needs a step and must error")
	}
}
