// Package trace records named time series during simulation and exports
// them as CSV, the format the figure-regeneration tooling (cmd/pmtrace)
// emits for Fig. 4-style frequency/power/QoS traces.
//
// A Recorder holds one row per sample time and any number of float64
// columns. Columns are registered up front so every row is complete; this
// mirrors how the paper's measurement scripts log one line per DVFS control
// period.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Recorder accumulates a rectangular table of samples.
type Recorder struct {
	cols    []string
	colIdx  map[string]int
	times   []float64
	samples [][]float64 // samples[row][col]
}

// NewRecorder creates a Recorder with the given column names (order is
// preserved in the CSV output). Column names must be unique and non-empty.
func NewRecorder(cols ...string) (*Recorder, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("trace: recorder needs at least one column")
	}
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if c == "" {
			return nil, fmt.Errorf("trace: empty column name at position %d", i)
		}
		if _, dup := idx[c]; dup {
			return nil, fmt.Errorf("trace: duplicate column %q", c)
		}
		idx[c] = i
	}
	return &Recorder{cols: cols, colIdx: idx}, nil
}

// MustRecorder is NewRecorder but panics on error; for static column lists.
func MustRecorder(cols ...string) *Recorder {
	r, err := NewRecorder(cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Record appends one row at time t. vals must supply every registered
// column; missing columns default to NaN-free zero only if allowZero was
// requested — here we are strict and error instead, because a silently
// zero-filled power column would corrupt an energy figure.
func (r *Recorder) Record(t float64, vals map[string]float64) error {
	row := make([]float64, len(r.cols))
	for name, v := range vals {
		i, ok := r.colIdx[name]
		if !ok {
			return fmt.Errorf("trace: unknown column %q", name)
		}
		row[i] = v
	}
	if len(vals) != len(r.cols) {
		for _, c := range r.cols {
			if _, ok := vals[c]; !ok {
				return fmt.Errorf("trace: missing column %q at t=%v", c, t)
			}
		}
	}
	if err := r.checkTime(t); err != nil {
		return err
	}
	r.times = append(r.times, t)
	r.samples = append(r.samples, row)
	return nil
}

// checkTime rejects out-of-order sample times. Window's binary search and
// Integrate's step sums assume non-decreasing times; accepting a rewinding
// clock would silently corrupt both, so it is an error at the source.
func (r *Recorder) checkTime(t float64) error {
	if n := len(r.times); n > 0 && t < r.times[n-1] {
		return fmt.Errorf("trace: out-of-order sample time %v after %v", t, r.times[n-1])
	}
	return nil
}

// RecordRow appends one row at time t with vals given in registered column
// order (the order passed to NewRecorder). It is the allocation-lean
// counterpart of Record for hot loops: the caller keeps one reusable slice
// and the Recorder copies it, so no map or per-column lookup is involved.
func (r *Recorder) RecordRow(t float64, vals []float64) error {
	if len(vals) != len(r.cols) {
		return fmt.Errorf("trace: row has %d values for %d columns at t=%v", len(vals), len(r.cols), t)
	}
	if err := r.checkTime(t); err != nil {
		return err
	}
	row := make([]float64, len(vals))
	copy(row, vals)
	r.times = append(r.times, t)
	r.samples = append(r.samples, row)
	return nil
}

// ColumnIndex returns the position of col in the registered column order.
func (r *Recorder) ColumnIndex(col string) (int, bool) {
	i, ok := r.colIdx[col]
	return i, ok
}

// Len returns the number of recorded rows.
func (r *Recorder) Len() int { return len(r.times) }

// Columns returns the registered column names in output order.
func (r *Recorder) Columns() []string {
	return append([]string(nil), r.cols...)
}

// Times returns a copy of the sample times.
func (r *Recorder) Times() []float64 {
	return append([]float64(nil), r.times...)
}

// Series returns a copy of one column's values.
func (r *Recorder) Series(col string) ([]float64, error) {
	i, ok := r.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("trace: unknown column %q", col)
	}
	out := make([]float64, len(r.samples))
	for row := range r.samples {
		out[row] = r.samples[row][i]
	}
	return out, nil
}

// Last returns the most recent value of col.
func (r *Recorder) Last(col string) (float64, error) {
	i, ok := r.colIdx[col]
	if !ok {
		return 0, fmt.Errorf("trace: unknown column %q", col)
	}
	if len(r.samples) == 0 {
		return 0, fmt.Errorf("trace: no samples recorded")
	}
	return r.samples[len(r.samples)-1][i], nil
}

// WriteCSV writes "time,<col>,..." rows. Floats are formatted with %g so
// the files stay compact and diff-able.
func (r *Recorder) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("time")
	for _, c := range r.cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for row := range r.samples {
		b.Reset()
		b.WriteString(strconv.FormatFloat(r.times[row], 'g', -1, 64))
		for _, v := range r.samples[row] {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns a new Recorder keeping every k-th row (k >= 1),
// starting with the first. Used to thin dense traces for plotting.
func (r *Recorder) Downsample(k int) (*Recorder, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: downsample factor %d < 1", k)
	}
	out := &Recorder{cols: r.Columns(), colIdx: make(map[string]int, len(r.cols))}
	for i, c := range out.cols {
		out.colIdx[c] = i
	}
	for i := 0; i < len(r.times); i += k {
		out.times = append(out.times, r.times[i])
		out.samples = append(out.samples, append([]float64(nil), r.samples[i]...))
	}
	return out, nil
}

// Window returns the rows with t in [t0, t1).
func (r *Recorder) Window(t0, t1 float64) *Recorder {
	out := &Recorder{cols: r.Columns(), colIdx: make(map[string]int, len(r.cols))}
	for i, c := range out.cols {
		out.colIdx[c] = i
	}
	// Times are appended in order by construction; binary search the edges.
	lo := sort.SearchFloat64s(r.times, t0)
	hi := sort.SearchFloat64s(r.times, t1)
	for i := lo; i < hi; i++ {
		out.times = append(out.times, r.times[i])
		out.samples = append(out.samples, append([]float64(nil), r.samples[i]...))
	}
	return out
}

// Integrate returns the time integral of col using the left Riemann sum
// over the recorded (assumed increasing) times, with the final sample
// extended by the mean step. This matches how the simulator's fixed-period
// sampling turns power into energy.
func (r *Recorder) Integrate(col string) (float64, error) {
	ys, err := r.Series(col)
	if err != nil {
		return 0, err
	}
	n := len(ys)
	if n == 0 {
		return 0, nil
	}
	if n == 1 {
		return 0, fmt.Errorf("trace: cannot integrate single sample without a step")
	}
	var total float64
	for i := 0; i < n-1; i++ {
		total += ys[i] * (r.times[i+1] - r.times[i])
	}
	meanStep := (r.times[n-1] - r.times[0]) / float64(n-1)
	total += ys[n-1] * meanStep
	return total, nil
}
