// Chaos harness: the executable proof of the serving tier's resilience
// story. RunChaos drives a fleet of simulated devices through a
// fault-injecting TCP proxy (internal/chaos) at a live server, optionally
// killing and restarting the server mid-run, and then holds the run to
// the invariants that make "resilient" a checkable claim rather than a
// vibe:
//
//   - completeness: every device acknowledges exactly Periods decisions —
//     none lost to a dropped connection, none duplicated by a retry;
//   - determinism: each device's full decision sequence is byte-identical
//     to a fault-free oracle served in-process from the same model, so
//     retries, dedup, and resume never changed a single decision;
//   - hygiene: goroutines return to their pre-run level and heap growth
//     stays bounded — the fault paths leak neither.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/chaos"
	"rlpm/internal/workload"
)

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	// Proto selects the decision transport: "bin" (default) or "json".
	Proto string
	// Devices is the concurrent device count (default 8).
	Devices int
	// Periods is the decide count per device (default 200) — the run is
	// work-based, not time-based, so the completeness invariant is exact.
	Periods int
	// Seed derives the fault schedule and per-device streams (default 1).
	Seed uint64
	// Scenario is the workload every device runs (default "gaming").
	Scenario string
	// Epsilon is the per-session exploration rate. Non-zero is the
	// interesting setting: exploration draws make decisions stateful, so
	// any dedup or resume bug shows up as a diverged sequence.
	Epsilon float64
	// RewardEvery posts a reward every that many periods (default 25;
	// negative disables).
	RewardEvery int
	// Faults is the injected fault schedule. Its Seed defaults to Seed.
	// The zero value injects nothing — the differential baseline.
	Faults chaos.Config
	// Restart kills the server mid-run (once half the decisions are
	// acked) and starts a fresh incarnation on the same address: "" never,
	// "crash" abrupt close, "drain" graceful drain with a final
	// checkpoint.
	Restart string
	// CheckpointPath receives the drain-mode final checkpoint; the
	// harness verifies it loads. Required when Restart is "drain".
	CheckpointPath string
	// SessionTTL and QueueDeadline pass through to the server config.
	SessionTTL    time.Duration
	QueueDeadline time.Duration
	// CallTimeout is the client per-attempt deadline (default 2s);
	// RetryBudget the total retry window per call (default 30s — it must
	// cover the restart gap).
	CallTimeout time.Duration
	RetryBudget time.Duration
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Proto == "" {
		c.Proto = "bin"
	}
	if c.Devices == 0 {
		c.Devices = 8
	}
	if c.Periods == 0 {
		c.Periods = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.RewardEvery == 0 {
		c.RewardEvery = 25
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 30 * time.Second
	}
	return c
}

// Validate checks the configuration.
func (c ChaosConfig) Validate() error {
	if c.Proto != "bin" && c.Proto != "json" {
		return fmt.Errorf("serve: unknown chaos proto %q (want bin or json)", c.Proto)
	}
	if c.Devices < 1 || c.Periods < 1 {
		return fmt.Errorf("serve: chaos needs at least one device and period, got %d/%d", c.Devices, c.Periods)
	}
	switch c.Restart {
	case "", "crash", "drain":
	default:
		return fmt.Errorf("serve: unknown restart mode %q (want crash or drain)", c.Restart)
	}
	if c.Restart == "drain" && c.CheckpointPath == "" {
		return fmt.Errorf("serve: restart mode drain needs a checkpoint path")
	}
	return nil
}

// ChaosReport is the outcome of a chaos run. RunChaos also returns a
// non-nil error when any invariant is violated; the report carries the
// evidence either way.
type ChaosReport struct {
	Proto     string  `json:"proto"`
	Devices   int     `json:"devices"`
	Periods   int     `json:"periods"`
	DurationS float64 `json:"duration_s"`
	Decisions uint64  `json:"decisions"` // acked decides; must equal Devices×Periods

	Dials   uint64 `json:"dials"`   // transport connections established
	Retries uint64 `json:"retries"` // call attempts beyond the first
	Resumes uint64 `json:"resumes"` // sessions re-created from mirrors

	ProxyConns    uint64 `json:"proxy_conns"`
	ProxyDrops    uint64 `json:"proxy_drops"`
	ProxyStalls   uint64 `json:"proxy_stalls"`
	ProxyPartials uint64 `json:"proxy_partials"`
	ProxyCorrupts uint64 `json:"proxy_corrupts"`
	ProxyDelays   uint64 `json:"proxy_delays"`

	Restarts        int  `json:"restarts"`
	DrainCheckpoint bool `json:"drain_checkpoint,omitempty"` // drain-mode checkpoint verified

	// RewardsAcked counts reward reports acknowledged exactly once
	// client-side; ServerRewards is the server ledger's count and
	// RewardsDeduped its replay-answered retries. Without a restart the
	// first two must be equal — a retried reward that double-counted would
	// show up as ServerRewards > RewardsAcked.
	RewardsAcked   uint64 `json:"rewards_acked"`
	ServerRewards  uint64 `json:"server_rewards"`
	RewardsDeduped uint64 `json:"rewards_deduped"`

	Mismatches int `json:"mismatches"` // devices whose sequence diverged from the oracle

	GoroutinesStart int    `json:"goroutines_start"`
	GoroutinesEnd   int    `json:"goroutines_end"`
	HeapAllocStart  uint64 `json:"heap_alloc_start"`
	HeapAllocEnd    uint64 `json:"heap_alloc_end"`

	Server *Metrics `json:"server,omitempty"` // final incarnation's snapshot
}

// chaosPeriodS is the simulated control period (matches the load
// generator's default).
const chaosPeriodS = 0.05

// incarnation is one server process stand-in: a Server plus its listener
// and, for the json proto, the HTTP front end.
type incarnation struct {
	srv  *Server
	ln   net.Listener
	hs   *http.Server
	done chan error
}

// startIncarnation listens on addr ("127.0.0.1:0" for the first, the
// fixed previous address after a restart — retried briefly while the old
// socket releases) and serves the chosen protocol.
func startIncarnation(model *Model, cfg ChaosConfig, addr string, epoch uint32) (*incarnation, error) {
	srv, err := New(model, nil, Config{
		Epoch:          epoch,
		SessionTTL:     cfg.SessionTTL,
		QueueDeadline:  cfg.QueueDeadline,
		CheckpointPath: cfg.CheckpointPath,
	})
	if err != nil {
		return nil, err
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			srv.Close()
			return nil, fmt.Errorf("serve: chaos relisten on %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	inc := &incarnation{srv: srv, ln: ln, done: make(chan error, 1)}
	if cfg.Proto == "bin" {
		go func() { inc.done <- inc.srv.ServeBin(ln) }()
	} else {
		inc.hs = &http.Server{Handler: srv.Handler()}
		go func() { inc.done <- inc.hs.Serve(ln) }()
	}
	return inc, nil
}

// crash is the abrupt death: connections reset, nothing flushed, no
// farewell checkpoint — what SIGKILL or a panic leaves behind.
func (inc *incarnation) crash() {
	if inc.hs != nil {
		inc.hs.Close()
	}
	inc.srv.Close()
	inc.ln.Close()
	<-inc.done
}

// drain is the graceful death: stop accepting, let in-flight work finish,
// publish the final checkpoint, then close.
func (inc *incarnation) drain(ctx context.Context) error {
	if inc.hs != nil {
		// Chaos clients keep sending on keep-alive connections, so a
		// graceful Shutdown rarely goes idle — give it a short window,
		// then force-close the stragglers (their calls retry).
		hctx, hcancel := context.WithTimeout(ctx, 500*time.Millisecond)
		_ = inc.hs.Shutdown(hctx)
		hcancel()
		inc.hs.Close()
	}
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	err := inc.srv.Drain(dctx)
	inc.srv.Close()
	inc.ln.Close()
	<-inc.done
	return err
}

// RunChaos executes one chaos schedule against model and checks every
// invariant. The returned report is non-nil whenever the run got far
// enough to collect evidence, even on error.
func RunChaos(ctx context.Context, model *Model, cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := workload.ByName(cfg.Scenario); err != nil {
		return nil, err
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep := &ChaosReport{
		Proto: cfg.Proto, Devices: cfg.Devices, Periods: cfg.Periods,
		GoroutinesStart: runtime.NumGoroutine(), HeapAllocStart: ms.HeapAlloc,
	}
	start := time.Now()

	// Server incarnation 1, fronted by the chaos proxy. Clients only ever
	// see the proxy address, which survives the restart.
	inc, err := startIncarnation(model, cfg, "127.0.0.1:0", 1)
	if err != nil {
		return rep, err
	}
	serverAddr := inc.ln.Addr().String()
	var incMu sync.Mutex // guards inc across the restart controller

	faults := cfg.Faults
	if faults.Seed == 0 {
		faults.Seed = cfg.Seed
	}
	proxy, err := chaos.NewProxy(serverAddr, faults)
	if err != nil {
		inc.crash()
		return rep, err
	}

	// Clients, pointed at the proxy.
	var bc *BinClient
	var hc *Client
	var open func(context.Context, SessionOptions) (deviceSession, error)
	if cfg.Proto == "bin" {
		bc = NewBinClient(proxy.Addr())
		bc.SetCallTimeout(cfg.CallTimeout)
		bc.SetRetryBudget(cfg.RetryBudget)
		open = func(ctx context.Context, o SessionOptions) (deviceSession, error) { return bc.OpenSession(ctx, o) }
	} else {
		hc = NewClient("http://" + proxy.Addr())
		hc.SetCallTimeout(cfg.CallTimeout)
		hc.SetRetryBudget(cfg.RetryBudget)
		open = func(ctx context.Context, o SessionOptions) (deviceSession, error) { return hc.CreateSession(ctx, o) }
	}

	total := uint64(cfg.Devices) * uint64(cfg.Periods)
	var acked atomic.Uint64
	var rewardsAcked atomic.Uint64

	// Restart controller: once half the fleet's decisions are acked, kill
	// the incarnation and start epoch 2 on the same address. Clients ride
	// it out through retry + resume. Devices that have seen the threshold
	// hold before their next decide until the restart lands (otherwise a
	// fast fleet can drain the whole run in the controller's poll window
	// and the restart exercises nothing); devices that haven't observed it
	// yet keep frames in flight across the kill.
	restartDone := make(chan error, 1)
	restartGate := make(chan struct{})
	if cfg.Restart == "" {
		close(restartGate)
		restartDone <- nil
	} else {
		go func() {
			defer close(restartGate)
			guard := time.Now().Add(60 * time.Second)
			for acked.Load() < total/2 {
				if ctx.Err() != nil {
					restartDone <- ctx.Err()
					return
				}
				if time.Now().After(guard) {
					restartDone <- fmt.Errorf("serve: chaos fleet stalled before restart point (%d/%d acked)", acked.Load(), total)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			incMu.Lock()
			old := inc
			incMu.Unlock()
			var derr error
			if cfg.Restart == "drain" {
				derr = old.drain(ctx)
				if derr == nil {
					// The farewell checkpoint must exist and decode.
					if _, lerr := LoadCheckpoint(cfg.CheckpointPath); lerr != nil {
						derr = fmt.Errorf("serve: drain checkpoint unreadable: %w", lerr)
					} else {
						rep.DrainCheckpoint = true
					}
				}
			} else {
				old.crash()
			}
			if derr != nil {
				restartDone <- derr
				return
			}
			next, serr := startIncarnation(model, cfg, serverAddr, 2)
			if serr != nil {
				restartDone <- serr
				return
			}
			incMu.Lock()
			inc = next
			incMu.Unlock()
			rep.Restarts++
			restartDone <- nil
		}()
	}

	// The fleet. Each device records its full decision sequence.
	sequences := make([][]int, cfg.Devices)
	devErrs := make([]error, cfg.Devices)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Devices; d++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			seed := DeviceSeed(cfg.Seed, idx)
			sess, err := open(ctx, SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
			if err != nil {
				devErrs[idx] = fmt.Errorf("device %d open: %w", idx, err)
				return
			}
			decide := func(_ int, obs []Observation) ([]int, error) {
				lv, err := sess.Decide(ctx, obs)
				if err == nil {
					if acked.Add(1) >= total/2 {
						select {
						case <-restartGate:
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
				}
				return lv, err
			}
			reward := func(r float64) error {
				_, err := sess.Reward(ctx, r)
				if err == nil {
					rewardsAcked.Add(1)
				}
				return err
			}
			sequences[idx], err = chaosDevice(cfg, seed, decide, reward)
			if err != nil {
				devErrs[idx] = fmt.Errorf("device %d: %w", idx, err)
				return
			}
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := sess.Close(cctx); err != nil {
				devErrs[idx] = fmt.Errorf("device %d close: %w", idx, err)
			}
		}(d)
	}
	wg.Wait()
	restartErr := <-restartDone

	// Teardown, collecting the final incarnation's metrics first.
	incMu.Lock()
	final := inc
	incMu.Unlock()
	m := final.srv.MetricsSnapshot()
	rep.Server = &m
	final.crash()
	proxy.Close()
	if bc != nil {
		st := bc.TransportStats()
		rep.Dials, rep.Retries, rep.Resumes = st.Dials, st.Retries, st.Resumes
		bc.Close()
	}
	if hc != nil {
		st := hc.TransportStats()
		rep.Retries, rep.Resumes = st.Retries, st.Resumes
		hc.CloseIdleConnections()
	}
	ps := proxy.Stats()
	rep.ProxyConns, rep.ProxyDrops, rep.ProxyStalls = ps.Conns, ps.Drops, ps.Stalls
	rep.ProxyPartials, rep.ProxyCorrupts, rep.ProxyDelays = ps.Partials, ps.Corrupts, ps.Delays
	rep.Decisions = acked.Load()
	rep.RewardsAcked = rewardsAcked.Load()
	rep.ServerRewards = m.Rewards
	rep.RewardsDeduped = m.RewardsDeduped
	rep.DurationS = time.Since(start).Seconds()

	// Fault-free oracle: the same fleet served by an in-process server.
	// Every device's sequence must match exactly — faults may cost time,
	// never correctness.
	if err := func() error {
		oracle, err := New(model, nil, Config{})
		if err != nil {
			return err
		}
		defer oracle.Close()
		for idx := 0; idx < cfg.Devices; idx++ {
			if devErrs[idx] != nil {
				continue
			}
			seed := DeviceSeed(cfg.Seed, idx)
			sess, err := oracle.CreateSession(SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
			if err != nil {
				return err
			}
			want, err := chaosDevice(cfg, seed, func(_ int, obs []Observation) ([]int, error) {
				return sess.Decide(obs)
			}, nil)
			if err != nil {
				return fmt.Errorf("oracle device %d: %w", idx, err)
			}
			if !equalInts(sequences[idx], want) {
				rep.Mismatches++
			}
		}
		return nil
	}(); err != nil {
		return rep, err
	}

	// Hygiene: goroutines must settle back to the baseline and the heap
	// must not have ballooned.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > rep.GoroutinesStart && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	rep.GoroutinesEnd = runtime.NumGoroutine()
	rep.HeapAllocEnd = ms.HeapAlloc

	switch {
	case restartErr != nil:
		return rep, fmt.Errorf("serve: chaos restart: %w", restartErr)
	case firstErr(devErrs) != nil:
		return rep, fmt.Errorf("serve: chaos device failed: %w", firstErr(devErrs))
	case rep.Decisions != total:
		return rep, fmt.Errorf("serve: chaos acked %d decisions, want %d", rep.Decisions, total)
	case rep.Mismatches > 0:
		return rep, fmt.Errorf("serve: %d device(s) diverged from the fault-free oracle", rep.Mismatches)
	case cfg.Restart == "" && rep.ServerRewards != rep.RewardsAcked:
		// Exactly-once: every client-acked reward landed on the ledger once.
		// A retried frame that double-counted shows up as ServerRewards >
		// RewardsAcked; a lost ack the dedup path swallowed shows the
		// reverse. Restart runs skip this — the final incarnation's counters
		// don't cover rewards applied before the kill.
		return rep, fmt.Errorf("serve: chaos reward ledger %d != %d client-acked (deduped %d)",
			rep.ServerRewards, rep.RewardsAcked, rep.RewardsDeduped)
	case rep.GoroutinesEnd > rep.GoroutinesStart:
		return rep, fmt.Errorf("serve: chaos leaked goroutines: %d before, %d after", rep.GoroutinesStart, rep.GoroutinesEnd)
	case rep.HeapAllocEnd > rep.HeapAllocStart+256<<20:
		return rep, fmt.Errorf("serve: chaos heap grew %d bytes", rep.HeapAllocEnd-rep.HeapAllocStart)
	}
	return rep, nil
}

// chaosDevice runs one device's full chip-simulation life — the shared
// RunDeviceSim loop, period-counted so completeness is exact, with the
// decision sequence recorded for the oracle diff.
func chaosDevice(cfg ChaosConfig, seed uint64, decide func(int, []Observation) ([]int, error), reward func(float64) error) ([]int, error) {
	return RunDeviceSim(DeviceSimConfig{
		Scenario:    cfg.Scenario,
		Periods:     cfg.Periods,
		Seed:        seed,
		PeriodS:     chaosPeriodS,
		RewardEvery: cfg.RewardEvery,
	}, decide, reward)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
