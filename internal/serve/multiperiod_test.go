package serve

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"rlpm/internal/wire"
)

// frameObs concatenates steps[i..i+k) into one multi-period observation
// frame, the layout a K-period decide carries on the wire.
func frameObs(steps [][]Observation, i, k int) []Observation {
	var frame []Observation
	for p := 0; p < k; p++ {
		frame = append(frame, steps[i+p]...)
	}
	return frame
}

// TestDecideSeqMultiPeriodMatchesSingles is the server-side differential
// oracle: one session consuming K-period frames must produce byte-identical
// decisions — exploration draws, ε decay, and all — to a twin session fed
// the same observations one period at a time.
func TestDecideSeqMultiPeriodMatchesSingles(t *testing.T) {
	const k, steps = 4, 120
	m := testModel(t, 3, 5)
	opts := SessionOptions{Epsilon: 0.4, EpsilonMin: 0.02, EpsilonDecay: 0.95, Seed: 99}
	srvA := newTestServer(t, m, nil, Config{})
	srvB := newTestServer(t, m, nil, Config{})
	sessA, err := srvA.CreateSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := srvB.CreateSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	seq := testObs(m, 7, steps)
	n := m.Clusters()
	single := make([]int, n)
	multi := make([]int, k*n)
	for i := 0; i+k <= steps; i += k {
		if _, err := sessA.DecideSeq(uint64(i+1), frameObs(seq, i, k), multi); err != nil {
			t.Fatalf("frame at %d: %v", i, err)
		}
		for p := 0; p < k; p++ {
			if _, err := sessB.DecideSeq(uint64(i+p+1), seq[i+p], single); err != nil {
				t.Fatalf("single %d: %v", i+p, err)
			}
			for c := 0; c < n; c++ {
				if multi[p*n+c] != single[c] {
					t.Fatalf("period %d cluster %d: frame chose %d, single chose %d", i+p, c, multi[p*n+c], single[c])
				}
			}
		}
	}
	stA, stB := sessA.Stats(), sessB.Stats()
	if stA.Decisions != stB.Decisions {
		t.Fatalf("decision ledgers diverged: frames %d, singles %d", stA.Decisions, stB.Decisions)
	}
}

// TestDecideSeqMultiPeriodReplay pins whole-frame dedup: retrying a
// K-period frame's sequence number replays the cached K-period decision
// without advancing any session state, and anything that is not an exact
// whole-frame retry fails with ErrBadSeq.
func TestDecideSeqMultiPeriodReplay(t *testing.T) {
	const k = 3
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{Epsilon: 0.5, EpsilonDecay: 0.9, EpsilonMin: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seq := testObs(m, 31, 2*k)
	n := m.Clusters()
	first := make([]int, k*n)
	if _, err := sess.DecideSeq(1, frameObs(seq, 0, k), first); err != nil {
		t.Fatal(err)
	}
	// Exact whole-frame retry: same seq, same period count.
	replayLv := make([]int, k*n)
	replayed, err := sess.DecideSeq(1, frameObs(seq, 0, k), replayLv)
	if err != nil || !replayed {
		t.Fatalf("whole-frame retry: replayed=%v err=%v", replayed, err)
	}
	for i := range first {
		if replayLv[i] != first[i] {
			t.Fatalf("slot %d: replay served %d, original %d", i, replayLv[i], first[i])
		}
	}
	// A single-period retry of a mid-frame seq is not a replay: the frame
	// was decided as a unit.
	if _, err := sess.DecideSeq(2, seq[1], make([]int, n)); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("mid-frame seq: %v, want ErrBadSeq", err)
	}
	// A retry with a different period count is not a replay either.
	if _, err := sess.DecideSeq(1, frameObs(seq, 0, 2), make([]int, 2*n)); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("wrong-width retry: %v, want ErrBadSeq", err)
	}
	// The next fresh frame follows the K consumed sequence numbers.
	next := make([]int, k*n)
	if replayed, err := sess.DecideSeq(k+1, frameObs(seq, k, k), next); err != nil || replayed {
		t.Fatalf("next frame: replayed=%v err=%v", replayed, err)
	}
	if st := sess.Stats(); st.Decisions != 2*k {
		t.Fatalf("ledger counts %d decisions, want %d (replay must not double-count)", st.Decisions, 2*k)
	}
}

// TestDecideSeqMultiPeriodAllocFree pins the K-period server decide path
// at zero allocations once scratch is warm, like the single-period pin.
func TestDecideSeqMultiPeriodAllocFree(t *testing.T) {
	const k = 4
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{Epsilon: 0.3, EpsilonDecay: 0.99, EpsilonMin: 0.05, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := m.Clusters()
	obs := make([]Observation, k*n)
	for i := range obs {
		obs[i] = Observation{Utilization: 0.5, DemandRatio: 0.9, Level: i % 2}
	}
	levels := make([]int, k*n)
	var seq uint64
	for i := 0; i < 10; i++ { // warm scratch, pool, and batch worker
		if _, err := sess.DecideSeq(seq+1, obs, levels); err != nil {
			t.Fatal(err)
		}
		seq += k
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := sess.DecideSeq(seq+1, obs, levels); err != nil {
			t.Fatal(err)
		}
		seq += k
	}); n != 0 {
		t.Fatalf("K-period DecideSeq allocates %v times per call, want 0", n)
	}
}

// TestBinDecideManyMatchesSingles is the over-the-wire differential oracle:
// a session shipping K periods per frame must receive exactly the levels a
// twin session receives across K single-period frames.
func TestBinDecideManyMatchesSingles(t *testing.T) {
	const k, steps = 4, 80
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)
	c := NewBinClient(addr)
	defer c.Close()
	ctx := context.Background()

	opts := SessionOptions{Epsilon: 0.35, EpsilonMin: 0.02, EpsilonDecay: 0.96, Seed: 4242}
	many, err := c.OpenSession(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	one, err := c.OpenSession(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	seq := testObs(m, 17, steps)
	n := m.Clusters()
	for i := 0; i+k <= steps; i += k {
		multi, err := many.DecideMany(ctx, frameObs(seq, i, k))
		if err != nil {
			t.Fatalf("DecideMany at %d: %v", i, err)
		}
		if len(multi) != k*n {
			t.Fatalf("DecideMany returned %d levels, want %d", len(multi), k*n)
		}
		for p := 0; p < k; p++ {
			single, err := one.Decide(ctx, seq[i+p])
			if err != nil {
				t.Fatalf("single %d: %v", i+p, err)
			}
			for c := 0; c < n; c++ {
				if multi[p*n+c] != single[c] {
					t.Fatalf("period %d cluster %d: frame %d, single %d — framings diverged", i+p, c, multi[p*n+c], single[c])
				}
			}
		}
	}
	stA, err := many.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := one.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Decisions != stB.Decisions {
		t.Fatalf("decision ledgers diverged: frames %d, singles %d", stA.Decisions, stB.Decisions)
	}
}

// TestMirrorMultiPeriodAck pins the client mirror: acknowledging one
// K-period frame must leave the mirror in exactly the state K sequential
// single-period acks produce.
func TestMirrorMultiPeriodAck(t *testing.T) {
	const k = 5
	levels := []int{3, 5}
	opts := SessionOptions{Epsilon: 0.6, EpsilonMin: 0.05, EpsilonDecay: 0.9, Seed: 77}
	frames := newSessionMirror(opts, levels)
	singles := newSessionMirror(opts, levels)

	n := len(levels)
	obs := make([]Observation, k*n)
	lv := make([]int, k*n)
	for i := range obs {
		obs[i] = Observation{DemandRatio: float64(i) * 0.1, Level: i % 3}
		lv[i] = (i + 1) % 3
	}
	frames.ackDecide(obs, lv)
	for p := 0; p < k; p++ {
		singles.ackDecide(obs[p*n:(p+1)*n], lv[p*n:(p+1)*n])
	}

	a, b := frames.resumeState(), singles.resumeState()
	if a.Seq != b.Seq || a.Epsilon != b.Epsilon || a.Rng != b.Rng {
		t.Fatalf("mirror state diverged: frame %+v, singles %+v", a, b)
	}
	if len(a.LastLevels) != len(b.LastLevels) {
		t.Fatalf("last levels length %d vs %d", len(a.LastLevels), len(b.LastLevels))
	}
	for i := range a.LastLevels {
		if a.LastLevels[i] != b.LastLevels[i] {
			t.Fatalf("last levels diverged at %d: %d vs %d", i, a.LastLevels[i], b.LastLevels[i])
		}
	}
	for i := range a.PrevDemand {
		if a.PrevDemand[i] != b.PrevDemand[i] {
			t.Fatalf("prev demand diverged at %d: %v vs %v", i, a.PrevDemand[i], b.PrevDemand[i])
		}
	}
	if a.Decisions != b.Decisions {
		t.Fatalf("decision ledgers diverged: %d vs %d", a.Decisions, b.Decisions)
	}
}

// TestBinWindowCoalescing pins the cross-session batching fix: pipelined
// decide frames from different sessions arriving together on one
// connection must share ONE backend batch, not one batch each. net.Pipe
// delivers the client's single write as one read, so the server's gather
// window sees all three frames buffered — deterministically, with no TCP
// segmentation races.
func TestBinWindowCoalescing(t *testing.T) {
	m := testModel(t, 3, 4)
	srv := newTestServer(t, m, nil, Config{})

	var sess [3]*Session
	for i := range sess {
		s, err := srv.CreateSession(SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}
	cli, server := net.Pipe()
	defer cli.Close()
	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		srv.serveBinConn(server)
	}()

	batches0, _, _ := srv.batch.stats()
	obs := []wire.Obs{{Utilization: 0.5, Level: 1}, {DemandRatio: 0.8, Level: 2}}
	var buf []byte
	for i, s := range []*Session{sess[0], sess[1], sess[2]} {
		buf = append(buf, wire.FinishFrame(
			wire.AppendDecideReq(wire.BeginFrame(nil), s.Handle(), 0, 1, obs), wire.TDecide, uint32(200+i))...)
	}
	cli.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := cli.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var hdr [wire.HeaderSize]byte
	var payload []byte
	for i := 0; i < 3; i++ {
		h, p, err := wire.ReadFrame(cli, &hdr, payload)
		payload = p
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.Type != wire.TDecideOK || h.ReqID != uint32(200+i) {
			t.Fatalf("response %d: type %d req %d, want TDecideOK req %d", i, h.Type, h.ReqID, 200+i)
		}
		var dok wire.DecideOK
		if err := wire.ParseDecideOK(p, &dok); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if len(dok.Levels) != 2 {
			t.Fatalf("response %d: %d levels, want 2", i, len(dok.Levels))
		}
	}
	batches1, _, maxOcc := srv.batch.stats()
	if got := batches1 - batches0; got != 1 {
		t.Fatalf("3 pipelined frames dispatched %d backend batches, want 1", got)
	}
	if maxOcc < 6 {
		t.Fatalf("max batch occupancy %d, want >= 6 (3 frames x 2 clusters coalesced)", maxOcc)
	}
	cli.Close()
	<-connDone
}

// stallBackend blocks its first Decide until released, so a test can pile
// requests into the batcher's ring behind a slow backend call.
type stallBackend struct {
	entered chan struct{}
	release chan struct{}

	mu    sync.Mutex
	sizes []int
}

func (*stallBackend) Name() string { return "gate" }

func (g *stallBackend) Decide(lookups []Lookup, out []int) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	g.mu.Lock()
	g.sizes = append(g.sizes, len(lookups))
	g.mu.Unlock()
	for i := range out {
		out[i] = 0
	}
	return nil
}

// TestBatcherCoalescesQueuedRequests pins batch occupancy > 1 under
// pipelined load at the batcher level: requests that queue while the
// backend is busy must ride one shared batch (via the bounded
// opportunistic grab), not dispatch one backend call each.
func TestBatcherCoalescesQueuedRequests(t *testing.T) {
	m := testModel(t, 3, 5)
	gate := &stallBackend{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := newTestServer(t, m, gate, Config{MaxBatch: 32})
	const waiters = 4
	var sessions [1 + waiters]*Session
	for i := range sessions {
		s, err := srv.CreateSession(SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	obs := []Observation{{Utilization: 0.4, Level: 1}, {DemandRatio: 1.2, Level: 2}}

	var wg sync.WaitGroup
	decide := func(s *Session) {
		defer wg.Done()
		if _, err := s.Decide(obs); err != nil {
			t.Errorf("decide: %v", err)
		}
	}
	wg.Add(1)
	go decide(sessions[0])
	<-gate.entered // first batch is inside the backend, worker is busy

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go decide(sessions[1+i])
	}
	// Wait until all four waiters' requests are claimed in the ring. head
	// is quiescent here — the single consumer is parked inside the gate —
	// and tail is atomic, so this observation is race-free.
	ring := srv.batch.ring
	for ring.tail.Load()-ring.head < waiters {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()

	gate.mu.Lock()
	sizes := append([]int(nil), gate.sizes...)
	gate.mu.Unlock()
	if len(sizes) == 0 || sizes[0] != 2 {
		t.Fatalf("first batch sizes %v, want the solo 2-lookup request first", sizes)
	}
	var coalesced bool
	for _, n := range sizes[1:] {
		if n >= 4 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatalf("queued requests never shared a batch: backend call sizes %v", sizes)
	}
	if _, _, maxOcc := srv.batch.stats(); maxOcc < 4 {
		t.Fatalf("max batch occupancy %d, want >= 4", maxOcc)
	}
}
