package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rlpm/internal/wire"
)

// startBinServer attaches a loopback binary listener to srv and returns
// its address. The listener dies with the server (Server.Close) or the
// test (cleanup).
func startBinServer(t testing.TB, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeBin(ln) }()
	t.Cleanup(func() {
		ln.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeBin: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestBinSessionLifecycle drives create → decide* → reward → close over
// the binary protocol and checks every decision against the serial oracle,
// proving the wire path reproduces Session semantics exactly.
func TestBinSessionLifecycle(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)
	c := NewBinClient(addr)
	defer c.Close()
	ctx := context.Background()

	opts := SessionOptions{Epsilon: 0.3, EpsilonMin: 0.01, EpsilonDecay: 0.97, Seed: 1234}
	sess, err := c.OpenSession(ctx, opts)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if sess.NumClusters() != 2 || sess.Levels[0] != 3 || sess.Levels[1] != 5 {
		t.Fatalf("session geometry %d clusters, levels %v", sess.NumClusters(), sess.Levels)
	}

	orc := newOracle(m, opts)
	const steps = 150
	for i, obs := range testObs(m, 77, steps) {
		got, err := sess.Decide(ctx, obs)
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		want := orc.decide(obs)
		for cidx := range want {
			if got[cidx] != want[cidx] {
				t.Fatalf("step %d cluster %d: wire served %d, oracle %d", i, cidx, got[cidx], want[cidx])
			}
		}
	}

	st, err := sess.Reward(ctx, -1.25)
	if err != nil {
		t.Fatalf("reward: %v", err)
	}
	if st.Decisions != steps || st.Rewards != 1 || st.MeanReward != -1.25 {
		t.Fatalf("reward stats %+v", st)
	}
	st, err = sess.Close(ctx)
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if st.Decisions != steps || st.Rewards != 1 {
		t.Fatalf("close stats %+v", st)
	}
	// The session is dead now: the client refuses locally (it must not
	// resume a deliberately closed session).
	if _, err := sess.Decide(ctx, testObs(m, 1, 1)[0]); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("decide after close: %v, want ErrSessionClosed", err)
	}
}

// TestBinDifferentialOracle is the cross-protocol determinism pin: the same
// seeded fleet replayed over HTTP/JSON and over the binary protocol must
// produce identical decision sequences per device, concurrently, because
// all stochastic state is session-local and seeded. Run under -race in CI.
func TestBinDifferentialOracle(t *testing.T) {
	m := testModel(t, 4, 3, 6)
	srv := newTestServer(t, m, nil, Config{MaxBatch: 16})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	addr := startBinServer(t, srv)

	jsonC := NewClient(hs.URL)
	binC := NewBinClient(addr)
	defer binC.Close()
	ctx := context.Background()

	const devices, steps = 10, 120
	type result struct {
		levels [][]int
		err    error
	}
	jsonRes := make([]result, devices)
	binRes := make([]result, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		opts := SessionOptions{Epsilon: 0.4, EpsilonMin: 0.02, EpsilonDecay: 0.95, Seed: uint64(1000 + d)}
		obsSeed := uint64(500 + d)
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sess, err := jsonC.CreateSession(ctx, opts)
			if err != nil {
				jsonRes[d].err = err
				return
			}
			for _, obs := range testObs(m, obsSeed, steps) {
				lv, err := sess.Decide(ctx, obs)
				if err != nil {
					jsonRes[d].err = err
					return
				}
				jsonRes[d].levels = append(jsonRes[d].levels, lv)
			}
			_, jsonRes[d].err = sess.Close(ctx)
		}(d)
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sess, err := binC.OpenSession(ctx, opts)
			if err != nil {
				binRes[d].err = err
				return
			}
			for _, obs := range testObs(m, obsSeed, steps) {
				lv, err := sess.Decide(ctx, obs)
				if err != nil {
					binRes[d].err = err
					return
				}
				binRes[d].levels = append(binRes[d].levels, lv)
			}
			_, binRes[d].err = sess.Close(ctx)
		}(d)
	}
	wg.Wait()
	for d := 0; d < devices; d++ {
		if jsonRes[d].err != nil {
			t.Fatalf("device %d json: %v", d, jsonRes[d].err)
		}
		if binRes[d].err != nil {
			t.Fatalf("device %d bin: %v", d, binRes[d].err)
		}
		for step := range jsonRes[d].levels {
			j, b := jsonRes[d].levels[step], binRes[d].levels[step]
			for c := range j {
				if j[c] != b[c] {
					t.Fatalf("device %d step %d cluster %d: json %d, bin %d — protocols diverged",
						d, step, c, j[c], b[c])
				}
			}
		}
	}
	if ms := srv.MetricsSnapshot(); ms.BinFrames == 0 || ms.BinConnections == 0 {
		t.Fatalf("binary path served nothing: %+v", ms)
	}
}

// TestBinErrorMapping checks that server-side failures surface as the same
// sentinels the HTTP client maps to, via wire error codes.
func TestBinErrorMapping(t *testing.T) {
	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)
	c := NewBinClient(addr)
	defer c.Close()
	ctx := context.Background()

	ghost := &BinSession{c: c, Handle: 999999, Levels: []int{3}}
	if _, err := ghost.Decide(ctx, []Observation{{Level: 0}}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("unknown handle decide: %v, want ErrNoSession", err)
	}
	if _, err := ghost.Reward(ctx, 1); !errors.Is(err, ErrNoSession) {
		t.Fatalf("unknown handle reward: %v, want ErrNoSession", err)
	}
	if _, err := ghost.Close(ctx); !errors.Is(err, ErrNoSession) {
		t.Fatalf("unknown handle close: %v, want ErrNoSession", err)
	}
	if _, err := c.OpenSession(ctx, SessionOptions{Epsilon: 2}); err == nil {
		t.Fatal("epsilon 2 accepted over the wire")
	}
	// A session-level error must not poison the connection: the same
	// client immediately serves a real session.
	sess, err := c.OpenSession(ctx, SessionOptions{})
	if err != nil {
		t.Fatalf("OpenSession after errors: %v", err)
	}
	if _, err := sess.Decide(ctx, []Observation{{Level: 1}}); err != nil {
		t.Fatalf("decide after errors: %v", err)
	}
}

// TestBinCorruptFrameClosesConn talks raw bytes: a frame with a corrupted
// CRC must be answered with a TError frame and then the connection must
// close — the server refuses to keep parsing a desynchronized stream.
func TestBinCorruptFrameClosesConn(t *testing.T) {
	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	frame := wire.FinishFrame(wire.AppendCloseReq(wire.BeginFrame(nil), wire.CloseReq{Handle: 1}), wire.TClose, 3)
	frame[13] ^= 0xFF // corrupt the CRC
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	var hdr [wire.HeaderSize]byte
	h, payload, err := wire.ReadFrame(conn, &hdr, nil)
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if h.Type != wire.TError {
		t.Fatalf("response type %d, want TError", h.Type)
	}
	var ef wire.ErrorFrame
	if err := wire.ParseError(payload, &ef); err != nil {
		t.Fatalf("parse error frame: %v", err)
	}
	if ef.Code != wire.CodeBadRequest {
		t.Fatalf("error code %d, want CodeBadRequest", ef.Code)
	}
	// The server must hang up now.
	if _, err := conn.Read(hdr[:1]); err != io.EOF {
		t.Fatalf("after corrupt frame: read returned %v, want EOF", err)
	}
}

// TestBinPipelining pins the multiplexing contract: several requests for
// different sessions written back-to-back on one connection are answered
// in order with their request ids echoed, so one connection can carry a
// whole device fleet.
func TestBinPipelining(t *testing.T) {
	m := testModel(t, 3, 4)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Two sessions created server-side (the raw conn only decides).
	s1, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obs := []wire.Obs{{Utilization: 0.5, Level: 1}, {DemandRatio: 0.8, Level: 2}}

	// Pipeline: s1 decide, s2 decide, s1 decide — one write, three frames.
	var buf []byte
	for i, h := range []uint64{s1.Handle(), s2.Handle(), s1.Handle()} {
		buf = append(buf, wire.FinishFrame(
			wire.AppendDecideReq(wire.BeginFrame(nil), h, 0, 0, obs), wire.TDecide, uint32(100+i))...)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var hdr [wire.HeaderSize]byte
	var payload []byte
	for i := 0; i < 3; i++ {
		var h wire.Header
		h, payload, err = wire.ReadFrame(conn, &hdr, payload)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if h.Type != wire.TDecideOK || h.ReqID != uint32(100+i) {
			t.Fatalf("response %d: type %d req %d, want TDecideOK req %d", i, h.Type, h.ReqID, 100+i)
		}
		var dok wire.DecideOK
		if err := wire.ParseDecideOK(payload, &dok); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if len(dok.Levels) != 2 {
			t.Fatalf("response %d: %d levels", i, len(dok.Levels))
		}
	}
}

// TestBinOversizedPrefixRejected sends a header declaring a payload beyond
// MaxPayload; the server must reject it from the header alone (no wait for
// a megabyte that never comes) and close the connection.
func TestBinOversizedPrefixRejected(t *testing.T) {
	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{})
	addr := startBinServer(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// A valid CRC over an oversized length: only the length is at fault.
	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.TDecide, 9, wire.MaxPayload+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	var rh [wire.HeaderSize]byte
	h, payload, err := wire.ReadFrame(conn, &rh, nil)
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	var ef wire.ErrorFrame
	if h.Type != wire.TError || wire.ParseError(payload, &ef) != nil || ef.Code != wire.CodeBadRequest {
		t.Fatalf("oversized prefix answered with type %d code %d", h.Type, ef.Code)
	}
	if _, err := conn.Read(rh[:1]); err != io.EOF {
		t.Fatalf("after oversized prefix: read returned %v, want EOF", err)
	}
}

// TestSessionDecideIntoAllocFree pins the server-side decide hot path at
// zero allocations once session scratch is warm — the property the binary
// protocol's throughput target rests on.
func TestSessionDecideIntoAllocFree(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Utilization: 0.6, Level: 1}, {DemandRatio: 1.1, Level: 3}}
	levels := make([]int, 2)
	for i := 0; i < 10; i++ { // warm scratch, pool, and batch worker
		if err := sess.DecideInto(obs, levels); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := sess.DecideInto(obs, levels); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecideInto allocates %v times per call, want 0", n)
	}
}
