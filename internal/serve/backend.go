package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/obs"
)

// Lookup is one greedy Q-table query: which cluster's table, which state.
type Lookup struct {
	Cluster int
	State   int
}

// Backend resolves batches of greedy lookups against the frozen policy.
// Decide is only ever called from the server's single batch worker, so
// implementations need no internal synchronization on the decision path
// (metrics counters read by /metrics still use atomics).
type Backend interface {
	Name() string
	// Decide writes the greedy action for lookups[i] into out[i];
	// len(out) == len(lookups).
	Decide(lookups []Lookup, out []int) error
}

// SWBackend serves lookups by walking the in-memory float64 tables — the
// software arm of the HW-vs-SW serving A/B. Batches route through the
// model's flat arena (core.FlatTables): lookups are packed into offset
// keys and resolved against the contiguous arena with per-row memoization,
// so a batch of fleet lookups scans each hot row once instead of
// pointer-chasing per lookup. keys and memo are backend-owned scratch —
// Decide runs only on the single batch worker.
//
// The served model is behind an atomic pointer so an online learner can
// publish a new table set (SetModel) without the decide path ever taking a
// lock: readers load the pointer once per batch, models are immutable
// after construction, and the epoch-tagged memo never needs clearing on a
// swap — same-shape models share an arena length (core.FlatMemo.Fits
// guards the one way that could break), and the memo's per-call epoch
// already invalidates every cached row between batches.
type SWBackend struct {
	live atomic.Pointer[Model] // current policy: swapped by SetModel, read by Decide
	keys []uint64              // scratch: packed lookup keys of one batch
	memo *core.FlatMemo        // scratch: per-row argmax memo across one batch
}

// NewSWBackend builds the software backend over model.
func NewSWBackend(m *Model) *SWBackend {
	b := &SWBackend{}
	b.live.Store(m)
	if m.flat != nil {
		b.memo = m.flat.NewMemo()
	}
	return b
}

// Name implements Backend.
func (*SWBackend) Name() string { return "sw" }

// Model returns the currently served model.
func (b *SWBackend) Model() *Model { return b.live.Load() }

// SetModel publishes m as the served policy. The swap is a single atomic
// store; in-flight Decide calls finish against the model they loaded, and
// the next batch sees m. m must be shape-compatible with the backend's
// construction model (the learner republishes snapshots of the same
// tables, so it always is; Decide degrades to the pointer walk otherwise).
func (b *SWBackend) SetModel(m *Model) { b.live.Store(m) }

// Decide implements Backend. It cannot fail: the session layer validates
// cluster/state ranges before queueing.
func (b *SWBackend) Decide(lookups []Lookup, out []int) error {
	m := b.live.Load()
	ft := m.flat
	if ft == nil || b.memo == nil || !b.memo.Fits(ft) ||
		len(lookups) <= 2 || len(lookups) > core.MaxFlatBatch {
		// No packable arena (or a swapped-in arena the memo wasn't sized
		// for), a batch too small for memoization to pay off, or one too
		// large for the packed key's index field: per-lookup walk.
		for i, l := range lookups {
			out[i] = m.Greedy(l.Cluster, l.State)
		}
		return nil
	}
	if cap(b.keys) < len(lookups) {
		b.keys = make([]uint64, len(lookups))
	}
	keys := b.keys[:len(lookups)]
	for i, l := range lookups {
		keys[i] = ft.Key(l.Cluster, l.State, i)
	}
	ft.LookupManyInto(keys, out, b.memo)
	return nil
}

// HWBackendConfig parameterizes the hardware serving backend.
type HWBackendConfig struct {
	// Bus is the interconnect timing. Set WatchdogCycles when injecting
	// wedges, or a stuck device stalls serving for its full busy time.
	Bus bus.Config
	// Banks is the accelerator BRAM banking.
	Banks int
	// Retries is how many times a failed decision transaction is retried
	// (after a bus recovery pulse and doubling backoff) before the lookup
	// degrades to the software table walk.
	Retries int
	// BackoffCycles is the bus-clock idle before the first retry.
	BackoffCycles uint64
	// Injector, when non-nil, wraps every accelerator with the fault
	// injector so serving exercises the retry/degradation path.
	Injector *fault.Injector
}

// DefaultHWBackendConfig mirrors hwpolicy's resilient deployment defaults.
func DefaultHWBackendConfig() HWBackendConfig {
	busCfg := bus.DefaultConfig()
	busCfg.WatchdogCycles = 4096
	return HWBackendConfig{
		Bus:           busCfg,
		Banks:         hwpolicy.DefaultParams().Banks,
		Retries:       2,
		BackoffCycles: 64,
	}
}

// HWBackend serves lookups through the modeled accelerator: one inference-
// mode channel per cluster behind an MMIO driver, the serving counterpart
// of hwpolicy/batch.go's multi-channel design. Every transaction is
// retried with recovery/backoff on failure and degrades to the shared
// software tables when the hardware stays faulty, so an injected fault
// costs accuracy of the latency model, never availability.
type HWBackend struct {
	cfg     HWBackendConfig
	sw      *SWBackend // degradation target
	drivers []*hwpolicy.Driver
	events  *obs.EventLog // nil until wired into a server

	decisions atomic.Uint64
	retries   atomic.Uint64
	degraded  atomic.Uint64
	busLatNs  atomic.Int64
}

// setEventLog wires the server's event log in; called by serve.New before
// the batch worker starts, so Decide never races it. Clusters whose
// bring-up already degraded are reported immediately.
func (b *HWBackend) setEventLog(l *obs.EventLog) {
	b.events = l
	for c, d := range b.drivers {
		if d == nil {
			l.Addf("hw", "cluster %d bring-up failed: serving from software tables", c)
		}
	}
	if inj := b.cfg.Injector; inj != nil {
		inj.SetEventLog(l)
	}
}

// NewHWBackend uploads the model's tables into per-cluster accelerators.
// An upload that keeps failing under injected faults leaves that cluster's
// driver nil: its lookups serve from software, counted as degraded.
func NewHWBackend(m *Model, cfg HWBackendConfig) (*HWBackend, error) {
	if err := cfg.Bus.Validate(); err != nil {
		return nil, err
	}
	if cfg.Banks < 1 {
		return nil, fmt.Errorf("serve: need at least one BRAM bank")
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("serve: negative retry count %d", cfg.Retries)
	}
	b := &HWBackend{cfg: cfg, sw: NewSWBackend(m)}
	b.drivers = make([]*hwpolicy.Driver, len(m.levels))
	mc := m.Config()
	for c, levels := range m.levels {
		p := hwpolicy.Params{
			NumStates:  mc.State.States(levels),
			NumActions: levels,
			Banks:      cfg.Banks,
			LFSRSeed:   uint16(0xACE1 + 2*c + 1),
		}
		accel, err := hwpolicy.New(p)
		if err != nil {
			return nil, fmt.Errorf("serve: sizing accelerator for cluster %d: %w", c, err)
		}
		var dev bus.Device = accel
		if cfg.Injector != nil {
			dev = fault.NewDevice(accel, accel, cfg.Injector)
		}
		d, err := hwpolicy.NewDriverDevice(cfg.Bus, accel, dev)
		if err != nil {
			return nil, fmt.Errorf("serve: wiring driver for cluster %d: %w", c, err)
		}
		// Inference mode: no learning, no hardware exploration —
		// device-local ε lives in the session layer.
		if err := b.retrying(d, func() error { return d.Configure(mc.Alpha, mc.Gamma, 0, false) }); err != nil {
			b.degraded.Add(1)
			continue // serve this cluster from software
		}
		if err := b.retrying(d, func() error { return d.UploadTable(m.tables[c]) }); err != nil {
			b.degraded.Add(1)
			continue
		}
		b.drivers[c] = d
	}
	return b, nil
}

// Name implements Backend.
func (*HWBackend) Name() string { return "hw" }

// Decide implements Backend: one MMIO decision transaction per lookup,
// with retry/backoff and software degradation.
func (b *HWBackend) Decide(lookups []Lookup, out []int) error {
	for i, l := range lookups {
		var d *hwpolicy.Driver
		if l.Cluster < len(b.drivers) {
			d = b.drivers[l.Cluster]
		}
		if d == nil {
			out[i] = b.sw.Model().Greedy(l.Cluster, l.State)
			b.degraded.Add(1)
			continue
		}
		var action int
		var lat time.Duration
		err := b.retrying(d, func() error {
			a, l2, e := d.Step(l.State, 0)
			if e != nil {
				return e
			}
			action, lat = a, l2
			return nil
		})
		if err != nil || action < 0 || action >= b.sw.Model().levels[l.Cluster] {
			// Transaction failed all retries, or a fault corrupted the
			// action read: the shared software tables answer instead.
			out[i] = b.sw.Model().Greedy(l.Cluster, l.State)
			b.degraded.Add(1)
			if b.events != nil {
				if err != nil {
					b.events.Addf("hw", "cluster %d lookup degraded after retries: %v", l.Cluster, err)
				} else {
					b.events.Addf("hw", "cluster %d lookup degraded: corrupt action %d", l.Cluster, action)
				}
			}
			continue
		}
		out[i] = action
		b.decisions.Add(1)
		b.busLatNs.Add(lat.Nanoseconds())
	}
	return nil
}

// retrying runs op with the recovery/backoff discipline hwpolicy.Resilient
// uses: recovery pulse, doubling idle, bounded attempts.
func (b *HWBackend) retrying(d *hwpolicy.Driver, op func() error) error {
	var err error
	for attempt := 0; attempt <= b.cfg.Retries; attempt++ {
		if attempt > 0 {
			b.retries.Add(1)
			d.Bus().Recover()
			d.Bus().Idle(b.cfg.BackoffCycles << uint(attempt-1))
		}
		if err = op(); err == nil {
			return nil
		}
	}
	d.Bus().Recover()
	return err
}

func (b *HWBackend) statsSnapshot() *HWStats {
	st := &HWStats{
		Decisions: b.decisions.Load(),
		Retries:   b.retries.Load(),
		Degraded:  b.degraded.Load(),
	}
	if st.Decisions > 0 {
		st.MeanLatNs = float64(b.busLatNs.Load()) / float64(st.Decisions)
	}
	return st
}
