package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"rlpm/internal/obs"
)

func testBatcherObs() batcherObs {
	reg := obs.NewRegistry()
	return batcherObs{
		batches:    reg.NewCounter("batches", "test"),
		lookups:    reg.NewCounter("lookups", "test"),
		rejected:   reg.NewCounter("rejected", "test"),
		queueWait:  reg.NewHistogram("stage_ns", "test", obs.Label{Key: "stage", Value: "queue_wait"}),
		assemble:   reg.NewHistogram("stage_ns", "test", obs.Label{Key: "stage", Value: "assemble"}),
		backendLat: reg.NewHistogram("stage_ns", "test", obs.Label{Key: "stage", Value: "backend"}),
	}
}

func TestRingFIFO(t *testing.T) {
	r := newMPSCRing(8)
	reqs := make([]*batchReq, 6)
	for i := range reqs {
		reqs[i] = &batchReq{out: []int{i}}
		if !r.Push(reqs[i]) {
			t.Fatalf("push %d rejected with %d free slots", i, r.Cap()-i)
		}
	}
	for i := range reqs {
		if got := r.Pop(); got != reqs[i] {
			t.Fatalf("pop %d returned %p, want %p", i, got, reqs[i])
		}
	}
	if got := r.Pop(); got != nil {
		t.Fatalf("pop of empty ring returned %p", got)
	}
}

func TestRingFullRejectsThenRecovers(t *testing.T) {
	r := newMPSCRing(5) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", r.Cap())
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.Push(&batchReq{}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.Push(&batchReq{}) {
		t.Fatal("push into a full ring succeeded")
	}
	// One pop frees exactly one slot; the ring keeps working across the
	// wraparound boundary.
	if r.Pop() == nil {
		t.Fatal("pop of full ring returned nil")
	}
	if !r.Push(&batchReq{}) {
		t.Fatal("push after pop rejected")
	}
	for i := 0; i < r.Cap(); i++ {
		if r.Pop() == nil {
			t.Fatalf("pop %d of refilled ring returned nil", i)
		}
	}
}

// TestRingConcurrentProducers hammers Push from many goroutines while one
// consumer drains, asserting nothing is lost or duplicated and each
// producer's items arrive in its submission order (positions are claimed
// monotonically, so per-producer FIFO holds even though producers race).
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 500
	r := newMPSCRing(16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				req := &batchReq{out: []int{p, i}}
				for !r.Push(req) {
					runtime.Gosched() // full: wait for the consumer
				}
			}
		}(p)
	}
	next := make([]int, producers)
	for n := 0; n < producers*perProducer; {
		req := r.Pop()
		if req == nil {
			runtime.Gosched()
			continue
		}
		p, i := req.out[0], req.out[1]
		if next[p] != i {
			t.Fatalf("producer %d item %d arrived, want %d (per-producer FIFO broken)", p, i, next[p])
		}
		next[p]++
		n++
	}
	wg.Wait()
	if req := r.Pop(); req != nil {
		t.Fatalf("ring still held %v after draining every item", req.out)
	}
}

func TestRingPushPopAllocFree(t *testing.T) {
	r := newMPSCRing(8)
	req := &batchReq{}
	if n := testing.AllocsPerRun(100, func() {
		if !r.Push(req) {
			t.Fatal("push rejected")
		}
		if r.Pop() != req {
			t.Fatal("pop mismatch")
		}
	}); n != 0 {
		t.Fatalf("ring push+pop allocates %v times per op, want 0", n)
	}
}

// gateBackend blocks every Decide until the gate is released, signalling
// entry so tests can park the batch worker deterministically.
type gateBackend struct {
	inner   Backend
	entered chan struct{}
	gate    chan struct{}
}

func (g *gateBackend) Name() string { return "gate" }

func (g *gateBackend) Decide(lookups []Lookup, out []int) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.Decide(lookups, out)
}

// TestBatcherOverloadBackpressure pins the overload contract that replaced
// the old buffered channel's silent blocking: with the worker parked in the
// backend, exactly ring-capacity submissions queue and every further one
// fails fast with ErrOverloaded, counted by the rejected counter. Releasing
// the backend then resolves every queued request successfully — shedding
// load loses only the shed requests.
func TestBatcherOverloadBackpressure(t *testing.T) {
	m := testModel(t, 3)
	gb := &gateBackend{inner: NewSWBackend(m), entered: make(chan struct{}, 1), gate: make(chan struct{})}
	o := testBatcherObs()
	b := newBatcher(gb, 1, 0, 0, o) // maxBatch 1 → ring capacity 8
	released := false
	defer func() {
		if !released {
			close(gb.gate) // unblock the worker if the test bailed early
		}
		b.Close()
	}()

	errc := make(chan error, 128)
	do := func() {
		out := make([]int, 1)
		errc <- b.Do([]Lookup{{Cluster: 0, State: 0}}, out)
	}

	// Park the worker: one request dispatches and blocks inside Decide.
	go do()
	select {
	case <-gb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the backend")
	}

	// With the worker parked, pushes fill the ring and nothing drains:
	// exactly Cap() of these queue, the rest must reject immediately.
	const extra = 64
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			do()
		}()
	}
	wantRejected := uint64(extra - b.ring.Cap())
	deadline := time.Now().Add(5 * time.Second)
	for o.rejected.Load() < wantRejected {
		if time.Now().After(deadline) {
			t.Fatalf("rejected counter stuck at %d, want %d", o.rejected.Load(), wantRejected)
		}
		runtime.Gosched()
	}

	// Release the backend; every queued request must now succeed.
	close(gb.gate)
	released = true
	wg.Wait()
	var ok, rejected int
	for i := 0; i < extra; i++ {
		switch err := <-errc; {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if err := <-errc; err != nil { // the parked request
		t.Fatalf("parked request failed: %v", err)
	}
	if ok != b.ring.Cap() || rejected != extra-b.ring.Cap() {
		t.Fatalf("got %d ok + %d rejected, want %d + %d", ok, rejected, b.ring.Cap(), extra-b.ring.Cap())
	}
	if got := o.rejected.Load(); got != wantRejected {
		t.Fatalf("rejected counter %d, want %d", got, wantRejected)
	}
}

// TestBatcherDoAllocFree extends the PR 3 zero-allocation discipline to the
// submit→dispatch hop: with pooled requests and the ring, a steady-state
// Do allocates nothing on either side of the hand-off.
func TestBatcherDoAllocFree(t *testing.T) {
	m := testModel(t, 3, 4)
	b := newBatcher(NewSWBackend(m), 8, 0, 0, testBatcherObs())
	defer b.Close()
	lookups := []Lookup{{Cluster: 0, State: 1}, {Cluster: 1, State: 2}}
	out := make([]int, 2)
	for i := 0; i < 10; i++ { // warm the pool and the worker's scratch
		if err := b.Do(lookups, out); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := b.Do(lookups, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("batcher.Do allocates %v times per call, want 0", n)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := newMPSCRing(256)
	req := &batchReq{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(req)
		r.Pop()
	}
}

func BenchmarkBatcherDo(b *testing.B) {
	m := testModel(b, 3, 4)
	bt := newBatcher(NewSWBackend(m), 256, 0, 0, testBatcherObs())
	defer bt.Close()
	lookups := []Lookup{{Cluster: 0, State: 1}, {Cluster: 1, State: 2}}
	out := make([]int, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Do(lookups, out); err != nil {
			b.Fatal(err)
		}
	}
}
