package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rlpm/internal/obs"
)

// Wire types shared by the handlers and the Go client.

// CreateSessionResponse answers POST /v1/sessions and /v1/sessions/resume.
type CreateSessionResponse struct {
	ID        string `json:"id"`
	Epoch     uint32 `json:"epoch"` // server incarnation that minted ID
	Clusters  int    `json:"clusters"`
	NumLevels []int  `json:"num_levels"`
}

// DecideRequest carries one control period's observations. Epoch and Seq
// are the retry-safety fields: a non-zero epoch pins the session identity
// to one server incarnation, and a non-zero seq lets the server
// deduplicate a retried decide instead of serving it twice. Zero values
// select the legacy unchecked path.
type DecideRequest struct {
	Epoch        uint32        `json:"epoch,omitempty"`
	Seq          uint64        `json:"seq,omitempty"`
	Observations []Observation `json:"observations"`
}

// ResumeSessionRequest carries a ResumeState over JSON — everything a
// client mirror holds, so a fresh server incarnation can re-create the
// session mid-stream. The RNG state words travel as hex strings: JSON
// numbers are float64 and would silently corrupt 64-bit states.
type ResumeSessionRequest struct {
	Options    SessionOptions `json:"options"`
	Epsilon    float64        `json:"epsilon_now"`
	Rng        [4]string      `json:"rng_state,omitempty"`
	Seq        uint64         `json:"seq,omitempty"`
	LastLevels []int          `json:"last_levels,omitempty"`
	PrevDemand []float64      `json:"prev_demand"`
	Decisions  uint64         `json:"decisions,omitempty"`
	Rewards    uint64         `json:"rewards,omitempty"`
	RewardSum  float64        `json:"reward_sum,omitempty"`
}

// DecideResponse carries the chosen OPP level per cluster.
type DecideResponse struct {
	Levels []int `json:"levels"`
}

// RewardRequest reports a device-computed reward. Epoch and Seq are the
// retry-safety fields, mirroring DecideRequest: a non-zero seq lets the
// server deduplicate a retried reward instead of double-counting it (and,
// on a learning server, double-applying its Q-updates). Zero values select
// the legacy unchecked path.
type RewardRequest struct {
	Reward float64 `json:"reward"`
	Epoch  uint32  `json:"epoch,omitempty"`
	Seq    uint64  `json:"seq,omitempty"`
}

// CheckpointResponse answers POST /v1/checkpoint.
type CheckpointResponse struct {
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	SavedAt string `json:"saved_at"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
}

// EventsResponse answers GET /debug/events: the retained tail of the
// bounded event log, oldest first. Total counts every event ever
// recorded, so pollers can tell how many the ring evicted.
type EventsResponse struct {
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

// errorResponse is the uniform error body. Code is the machine-readable
// error class (mirroring the serve sentinels) so clients classify without
// string matching; RetryAfterMs carries the overload backoff hint with
// millisecond precision, since the Retry-After header only speaks whole
// seconds.
type errorResponse struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/sessions              create a device session
//	POST   /v1/sessions/resume       re-create a session from client-carried state
//	POST   /v1/sessions/{id}/decide  serve one control period's decision
//	POST   /v1/sessions/{id}/reward  record a device-reported reward
//	DELETE /v1/sessions/{id}         close the session, return its ledger
//	POST   /v1/checkpoint            persist the model to the configured path
//	GET    /metrics                  Prometheus text exposition (JSON with Accept: application/json)
//	GET    /debug/events             structured runtime event log (JSON)
//	GET    /debug/obs                registry snapshot for fleet scrape-merge (JSON)
//	GET    /healthz                  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/sessions/resume", s.handleResume)
	mux.HandleFunc("POST /v1/sessions/{id}/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/sessions/{id}/reward", s.handleReward)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /debug/obs", s.handleObs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, ""
	var retryAfter time.Duration
	switch {
	// ErrUnknownSession wraps ErrNoSession, so it must be checked first:
	// its code tells resilient clients the session is resumable.
	case errors.Is(err, ErrUnknownSession):
		status, code = http.StatusNotFound, "unknown_session"
	case errors.Is(err, ErrNoSession):
		status, code = http.StatusNotFound, "no_session"
	case errors.Is(err, ErrSessionClosed):
		status, code = http.StatusGone, "session_closed"
	case errors.Is(err, ErrBadSeq):
		status, code = http.StatusConflict, "bad_seq"
	case errors.Is(err, ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrServerClosed):
		status, code = http.StatusServiceUnavailable, "server_closed"
	case errors.Is(err, ErrOverloaded):
		status, code = http.StatusTooManyRequests, "overloaded"
		retryAfter = time.Duration(s.batch.backoffHintMs()) * time.Millisecond
	}
	s.httpErrors.Add(1)
	resp := errorResponse{Error: err.Error(), Code: code}
	if retryAfter > 0 {
		resp.RetryAfterMs = retryAfter.Milliseconds()
		// The header rounds up to whole seconds (its resolution); the JSON
		// body carries the precise hint.
		secs := (retryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) writeBadRequest(w http.ResponseWriter, err error) {
	s.httpErrors.Add(1)
	s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var opts SessionOptions
	if err := decodeBody(r, &opts); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	sess, err := s.CreateSession(opts)
	if err != nil {
		if errors.Is(err, ErrServerClosed) {
			s.writeError(w, err)
		} else {
			s.writeBadRequest(w, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, CreateSessionResponse{
		ID:        sess.ID(),
		Epoch:     s.cfg.Epoch,
		Clusters:  s.model.Clusters(),
		NumLevels: s.model.NumLevels(),
	})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.histHTTP.Observe(time.Since(t0).Nanoseconds()) }()
	var req DecideRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	sess, err := s.SessionByIDEpoch(r.PathValue("id"), req.Epoch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	levels := make([]int, s.model.Clusters())
	if _, err := sess.DecideSeq(req.Seq, req.Observations, levels); err != nil {
		switch {
		case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrServerClosed),
			errors.Is(err, ErrOverloaded), errors.Is(err, ErrBadSeq):
			s.writeError(w, err)
		default:
			s.writeBadRequest(w, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, DecideResponse{Levels: levels})
}

// handleResume re-creates a session from client-carried mirror state —
// the HTTP face of ResumeSession, used by clients whose server vanished
// (restart) or forgot them (TTL reaping).
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	var req ResumeSessionRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	st := ResumeState{
		Options:    req.Options,
		Epsilon:    req.Epsilon,
		Seq:        req.Seq,
		LastLevels: req.LastLevels,
		PrevDemand: req.PrevDemand,
		Decisions:  req.Decisions,
		Rewards:    req.Rewards,
		RewardSum:  req.RewardSum,
	}
	for i, hx := range req.Rng {
		if hx == "" {
			continue
		}
		v, err := strconv.ParseUint(hx, 16, 64)
		if err != nil {
			s.writeBadRequest(w, fmt.Errorf("serve: bad rng state word %d: %w", i, err))
			return
		}
		st.Rng[i] = v
	}
	sess, err := s.ResumeSession(st)
	if err != nil {
		if errors.Is(err, ErrServerClosed) {
			s.writeError(w, err)
		} else {
			s.writeBadRequest(w, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, CreateSessionResponse{
		ID:        sess.ID(),
		Epoch:     s.cfg.Epoch,
		Clusters:  s.model.Clusters(),
		NumLevels: s.model.NumLevels(),
	})
}

func (s *Server) handleReward(w http.ResponseWriter, r *http.Request) {
	var req RewardRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	sess, err := s.SessionByIDEpoch(r.PathValue("id"), req.Epoch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	st, err := sess.RewardSeq(req.Seq, req.Reward)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	st, err := s.CloseSession(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.CheckpointPath == "" {
		s.writeError(w, fmt.Errorf("serve: no checkpoint path configured"))
		return
	}
	// On a learning server the endpoint publishes the *learned* tables, and
	// the write serializes with the periodic/drain publications; after the
	// drain snapshot has been written nothing may overwrite it.
	s.ckptPubMu.Lock()
	if s.ckptFinal {
		s.ckptPubMu.Unlock()
		s.writeError(w, fmt.Errorf("serve: final drain checkpoint already published"))
		return
	}
	snap := s.model.Snapshot()
	if s.learner != nil {
		snap = s.learner.snapshot()
	}
	n, err := saveCheckpoint(s.cfg.CheckpointPath, snap, s.fs)
	s.ckptPubMu.Unlock()
	if err != nil {
		s.events.Addf("checkpoint", "save to %s failed: %v", s.cfg.CheckpointPath, err)
		s.writeError(w, err)
		return
	}
	now := time.Now()
	s.MarkCheckpoint(now)
	s.events.Addf("checkpoint", "saved %s (%d bytes)", s.cfg.CheckpointPath, n)
	s.writeJSON(w, http.StatusOK, CheckpointResponse{
		Path:    s.cfg.CheckpointPath,
		Bytes:   n,
		SavedAt: now.UTC().Format(time.RFC3339),
	})
}

// handleMetrics content-negotiates: Prometheus text exposition by default
// (what a scraper or curl gets), the JSON Metrics snapshot when the
// client asks for application/json (the Go client and the load
// generator).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.writeJSON(w, http.StatusOK, s.MetricsSnapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleObs serves the registry as a process-portable obs.RegistrySnapshot
// — the scrape endpoint the shard router merges across the fleet.
func (s *Server) handleObs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	resp := EventsResponse{Total: s.events.Total(), Events: s.events.Events()}
	if resp.Events == nil {
		resp.Events = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", UptimeS: ageSeconds(s.start)})
}

// decodeBody parses a JSON request body into v. An absent body decodes to
// the zero value (create-session with defaults); malformed JSON errors.
func decodeBody(r *http.Request, v any) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("serve: bad request body: %w", err)
}
