// Training-while-serving harness: a fleet of simulated devices split into
// a learning arm and a frozen control arm, driven round-robin against one
// in-process learning server. Everything that moves — device workload
// streams, session exploration, the learner's Double-Q coin, the tick
// schedule — is seeded, and the learner runs in manual mode (updates apply
// only at LearnTick), so two runs with the same config produce identical
// decision traces and bit-identical learned tables. That reproducibility
// is what makes the frozen-vs-learning A/B numbers trustworthy: the
// control arm differs from the treatment arm in policy only.
package serve

import (
	"bytes"
	"fmt"

	"rlpm/internal/workload"
)

// LearnLoadConfig parameterizes one seeded training-while-serving run.
type LearnLoadConfig struct {
	// Devices is the fleet size (default 8). Even indices join the
	// learning arm, odd indices the frozen control arm, so the two arms
	// interleave across the seed-derived per-device workload streams.
	Devices int
	// Periods is the decide count per device (default 200).
	Periods int
	// Scenario is the workload every device runs (default "gaming").
	Scenario string
	// Seed derives every stream in the run (default 1).
	Seed uint64
	// Epsilon is the per-session exploration rate (both arms, for
	// parity). Exploration is what feeds the learner off-greedy samples.
	Epsilon float64
	// RewardEvery posts a device reward every that many periods
	// (default 25; negative disables).
	RewardEvery int
	// TickEvery drains the learner every that many rounds (default 10).
	// A round is one period across the whole fleet.
	TickEvery int
	// Alpha, Gamma, SwapEvery pass through to LearnConfig.
	Alpha, Gamma float64
	SwapEvery    int
}

func (c LearnLoadConfig) withDefaults() LearnLoadConfig {
	if c.Devices == 0 {
		c.Devices = 8
	}
	if c.Periods == 0 {
		c.Periods = 200
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RewardEvery == 0 {
		c.RewardEvery = 25
	}
	if c.TickEvery == 0 {
		c.TickEvery = 10
	}
	return c
}

// LearnArm aggregates one cohort's outcomes.
type LearnArm struct {
	Devices    int     `json:"devices"`
	Rewards    uint64  `json:"rewards"`
	MeanReward float64 `json:"mean_reward"`
	EnergyJ    float64 `json:"energy_j"` // total simulated energy across the arm's devices
	MeanQoS    float64 `json:"mean_qos"` // mean of the devices' mean per-period QoS
}

// LearnReport is the harness outcome: learner counters, per-arm A/B
// aggregates, per-device decision traces, and the final learned tables
// encoded as checkpoint bytes — the determinism witness two seeded runs
// are compared on.
type LearnReport struct {
	Devices       int      `json:"devices"`
	Periods       int      `json:"periods"`
	Updates       uint64   `json:"updates"`
	Dropped       uint64   `json:"dropped"`
	Rejected      uint64   `json:"rejected"`
	Swaps         uint64   `json:"swaps"`
	PolicyVersion uint64   `json:"policy_version"`
	Learning      LearnArm `json:"learning"`
	Frozen        LearnArm `json:"frozen"`
	Traces        [][]int  `json:"-"`
	Checkpoint    []byte   `json:"-"`
}

// RunLearn runs the seeded training-while-serving fleet against model.
func RunLearn(model *Model, cfg LearnLoadConfig) (*LearnReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Devices < 0 || cfg.Periods < 0 {
		return nil, fmt.Errorf("serve: negative learn-load devices/periods")
	}
	if _, err := workload.ByName(cfg.Scenario); err != nil {
		return nil, err
	}

	srv, err := New(model, nil, Config{
		Learn: LearnConfig{
			Enabled:   true,
			Manual:    true,
			Seed:      cfg.Seed,
			Alpha:     cfg.Alpha,
			Gamma:     cfg.Gamma,
			SwapEvery: cfg.SwapEvery,
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	devs := make([]*DeviceStepper, cfg.Devices)
	sessions := make([]*Session, cfg.Devices)
	rewardSeqs := make([]uint64, cfg.Devices)
	for i := range devs {
		devs[i], err = NewDeviceStepper(DeviceSimConfig{
			Scenario:    cfg.Scenario,
			Periods:     cfg.Periods,
			Seed:        DeviceSeed(cfg.Seed, i),
			RewardEvery: cfg.RewardEvery,
		})
		if err != nil {
			return nil, err
		}
		cohort := CohortLearning
		if i%2 == 1 {
			cohort = CohortFrozen
		}
		sessions[i], err = srv.CreateSession(SessionOptions{
			Epsilon: cfg.Epsilon,
			Seed:    DeviceSeed(cfg.Seed, i),
			Cohort:  cohort,
		})
		if err != nil {
			return nil, err
		}
	}

	// One round = one control period across the fleet, device order fixed.
	// The single-goroutine interleave plus the manual learner make the
	// model version every decide reads a pure function of the config.
	for p := 0; p < cfg.Periods; p++ {
		for i, d := range devs {
			levels, err := sessions[i].Decide(d.Obs())
			if err != nil {
				return nil, fmt.Errorf("device %d period %d: %w", i, p, err)
			}
			r, due, err := d.Apply(levels)
			if err != nil {
				return nil, fmt.Errorf("device %d period %d: %w", i, p, err)
			}
			if due {
				rewardSeqs[i]++
				if _, err := sessions[i].RewardSeq(rewardSeqs[i], r); err != nil {
					return nil, fmt.Errorf("device %d reward at period %d: %w", i, p, err)
				}
			}
		}
		if cfg.TickEvery > 0 && (p+1)%cfg.TickEvery == 0 {
			srv.LearnTick()
		}
	}
	srv.LearnTick() // flush the tail so the checkpoint sees every sample

	rep := &LearnReport{
		Devices: cfg.Devices, Periods: cfg.Periods,
		Traces: make([][]int, cfg.Devices),
	}
	for i, d := range devs {
		rep.Traces[i] = append([]int(nil), d.Trace()...)
		arm := &rep.Learning
		if i%2 == 1 {
			arm = &rep.Frozen
		}
		arm.Devices++
		arm.EnergyJ += d.EnergyJ()
		arm.MeanQoS += d.MeanQoS()
	}
	for _, arm := range []*LearnArm{&rep.Learning, &rep.Frozen} {
		if arm.Devices > 0 {
			arm.MeanQoS /= float64(arm.Devices)
		}
	}

	m := srv.MetricsSnapshot()
	if m.Learn != nil {
		rep.Updates = m.Learn.Updates
		rep.Dropped = m.Learn.Dropped
		rep.Rejected = m.Learn.Rejected
		rep.Swaps = m.Learn.Swaps
		rep.PolicyVersion = m.Learn.PolicyVersion
		rep.Learning.Rewards = m.Learn.RewardsLearning
		rep.Learning.MeanReward = m.Learn.MeanRewardLearning
		rep.Frozen.Rewards = m.Learn.RewardsFrozen
		rep.Frozen.MeanReward = m.Learn.MeanRewardFrozen
	}

	snap, ok := srv.LearnSnapshot()
	if !ok {
		return nil, fmt.Errorf("serve: learning server has no learner snapshot")
	}
	var buf bytes.Buffer
	if err := snap.EncodeCheckpoint(&buf); err != nil {
		return nil, err
	}
	rep.Checkpoint = buf.Bytes()
	return rep, nil
}
