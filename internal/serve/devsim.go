// Shared device simulator: one definition of what a simulated device *is*
// — chip model, workload stream, observation assembly, reward cadence —
// used by the load generator, the chaos harness, the sharded rebalance
// harness, and every differential oracle. Splitting this out is what makes
// "byte-identical to the oracle" a meaningful claim: the endpoint under
// test (json, bin, router, N shards) is the only variable; the device side
// is literally the same code and the same RNG stream.
package serve

import (
	"fmt"

	"rlpm/internal/qos"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// DeviceSeed derives device idx's stream seed from the fleet base seed.
// The derivation depends on the device id ONLY — not on the endpoint, the
// transport, or how devices are partitioned across shards or worker
// goroutines — so a json run, a bin run, and an N-shard run over the same
// fleet replay the same per-device scenario and exploration streams, and
// one single-process oracle diffs against all of them. (The golden chaos
// and load fixtures depend on this exact formula; change it and every
// differential test says so.)
func DeviceSeed(base uint64, device int) uint64 {
	return base + uint64(device)*0x9e3779b9
}

// DeviceSimConfig parameterizes one simulated device's life.
type DeviceSimConfig struct {
	// Scenario is the workload name (workload.ByName).
	Scenario string
	// Periods is the decide count — the sim is work-based, so harness
	// completeness invariants are exact.
	Periods int
	// Seed is the device's stream seed (DeviceSeed(base, idx)).
	Seed uint64
	// PeriodS is the simulated control period in seconds (default 0.05).
	PeriodS float64
	// RewardEvery posts a device-computed reward every that many periods
	// (0 or negative disables).
	RewardEvery int
}

// RunDeviceSim runs one device's full chip-simulation life: every control
// period's observations go through decide, the returned levels are applied,
// and the recorded decision sequence is returned for oracle diffs. decide
// receives the period index and one period's observations; reward (may be
// nil) receives -energy every RewardEvery periods.
func RunDeviceSim(cfg DeviceSimConfig, decide func(int, []Observation) ([]int, error), reward func(float64) error) ([]int, error) {
	if cfg.PeriodS == 0 {
		cfg.PeriodS = 0.05
	}
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return nil, err
	}
	spec, err := workload.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	scen, err := workload.New(spec, chip.NumClusters(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	chip.Reset()
	scen.Reset(cfg.Seed)

	n := chip.NumClusters()
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{QoS: 1, ClusterQoS: 1, Level: chip.Cluster(i).Level()}
	}
	seq := make([]int, 0, cfg.Periods*n)
	var chipRes soc.ChipStep
	for p := 0; p < cfg.Periods; p++ {
		levels, err := decide(p, obs)
		if err != nil {
			return seq, err
		}
		if len(levels) != n {
			return seq, fmt.Errorf("serve: %d levels for %d clusters", len(levels), n)
		}
		seq = append(seq, levels...)
		for i, lvl := range levels {
			chip.Cluster(i).SetLevel(lvl)
		}
		w := scen.Next(cfg.PeriodS)
		if err := chip.StepInto(&chipRes, w.Demands, cfg.PeriodS); err != nil {
			return seq, err
		}
		var demanded, completed float64
		for i, d := range w.Demands {
			demanded += d.Cycles
			completed += chipRes.Clusters[i].CompletedCycles
		}
		q := qos.PeriodQoS(demanded, completed)
		for i := range obs {
			cr := chipRes.Clusters[i]
			dr := 0.0
			if cr.CapacityCycles > 0 {
				dr = w.Demands[i].Cycles / cr.CapacityCycles
			}
			obs[i] = Observation{
				Utilization: cr.Utilization,
				DemandRatio: dr,
				QoS:         q,
				ClusterQoS:  qos.PeriodQoS(w.Demands[i].Cycles, cr.CompletedCycles),
				Critical:    w.Critical,
				Level:       chip.Cluster(i).Level(),
			}
		}
		if reward != nil && cfg.RewardEvery > 0 && (p+1)%cfg.RewardEvery == 0 {
			if err := reward(-chipRes.EnergyJ); err != nil {
				return seq, fmt.Errorf("reward at period %d: %w", p, err)
			}
		}
	}
	return seq, nil
}
