// Shared device simulator: one definition of what a simulated device *is*
// — chip model, workload stream, observation assembly, reward cadence —
// used by the load generator, the chaos harness, the sharded rebalance
// harness, and every differential oracle. Splitting this out is what makes
// "byte-identical to the oracle" a meaningful claim: the endpoint under
// test (json, bin, router, N shards) is the only variable; the device side
// is literally the same code and the same RNG stream.
package serve

import (
	"fmt"

	"rlpm/internal/qos"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// DeviceSeed derives device idx's stream seed from the fleet base seed.
// The derivation depends on the device id ONLY — not on the endpoint, the
// transport, or how devices are partitioned across shards or worker
// goroutines — so a json run, a bin run, and an N-shard run over the same
// fleet replay the same per-device scenario and exploration streams, and
// one single-process oracle diffs against all of them. (The golden chaos
// and load fixtures depend on this exact formula; change it and every
// differential test says so.)
func DeviceSeed(base uint64, device int) uint64 {
	return base + uint64(device)*0x9e3779b9
}

// DeviceSimConfig parameterizes one simulated device's life.
type DeviceSimConfig struct {
	// Scenario is the workload name (workload.ByName).
	Scenario string
	// Periods is the decide count — the sim is work-based, so harness
	// completeness invariants are exact.
	Periods int
	// Seed is the device's stream seed (DeviceSeed(base, idx)).
	Seed uint64
	// PeriodS is the simulated control period in seconds (default 0.05).
	PeriodS float64
	// RewardEvery posts a device-computed reward every that many periods
	// (0 or negative disables).
	RewardEvery int
}

// DeviceStepper is RunDeviceSim unrolled: the same chip, workload stream,
// and observation assembly, advanced one control period at a time so a
// harness can interleave many devices deterministically (the learning
// harness round-robins a cohort and ticks the learner between rounds).
type DeviceStepper struct {
	cfg     DeviceSimConfig
	chip    *soc.Chip
	scen    workload.Scenario
	obs     []Observation
	trace   []int
	chipRes soc.ChipStep
	period  int
	energyJ float64
	qosSum  float64
}

// NewDeviceStepper builds one device's simulation in its pre-first-decide
// state (idle observations, QoS 1).
func NewDeviceStepper(cfg DeviceSimConfig) (*DeviceStepper, error) {
	if cfg.PeriodS == 0 {
		cfg.PeriodS = 0.05
	}
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return nil, err
	}
	spec, err := workload.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	scen, err := workload.New(spec, chip.NumClusters(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	chip.Reset()
	scen.Reset(cfg.Seed)
	d := &DeviceStepper{cfg: cfg, chip: chip, scen: scen}
	n := chip.NumClusters()
	d.obs = make([]Observation, n)
	for i := range d.obs {
		d.obs[i] = Observation{QoS: 1, ClusterQoS: 1, Level: chip.Cluster(i).Level()}
	}
	d.trace = make([]int, 0, cfg.Periods*n)
	return d, nil
}

// Clusters reports the chip's cluster count.
func (d *DeviceStepper) Clusters() int { return d.chip.NumClusters() }

// Done reports whether every configured period has been applied.
func (d *DeviceStepper) Done() bool { return d.period >= d.cfg.Periods }

// Period is the index of the next period to decide.
func (d *DeviceStepper) Period() int { return d.period }

// Obs is the current period's observations — the decide input. The slice
// is reused across periods.
func (d *DeviceStepper) Obs() []Observation { return d.obs }

// Trace is the flat decision sequence recorded so far, for oracle diffs.
func (d *DeviceStepper) Trace() []int { return d.trace }

// EnergyJ is the total simulated energy consumed so far.
func (d *DeviceStepper) EnergyJ() float64 { return d.energyJ }

// MeanQoS is the mean per-period QoS over the applied periods (1 before
// any period has run).
func (d *DeviceStepper) MeanQoS() float64 {
	if d.period == 0 {
		return 1
	}
	return d.qosSum / float64(d.period)
}

// Apply commits one period's decision: sets the levels, steps the chip
// through the next workload slice, and reassembles observations. It
// returns the device-computed reward (-energy for the period) and whether
// the RewardEvery cadence says this period's reward is due for reporting.
func (d *DeviceStepper) Apply(levels []int) (reward float64, due bool, err error) {
	n := d.chip.NumClusters()
	if len(levels) != n {
		return 0, false, fmt.Errorf("serve: %d levels for %d clusters", len(levels), n)
	}
	d.trace = append(d.trace, levels...)
	for i, lvl := range levels {
		d.chip.Cluster(i).SetLevel(lvl)
	}
	w := d.scen.Next(d.cfg.PeriodS)
	if err := d.chip.StepInto(&d.chipRes, w.Demands, d.cfg.PeriodS); err != nil {
		return 0, false, err
	}
	var demanded, completed float64
	for i, dm := range w.Demands {
		demanded += dm.Cycles
		completed += d.chipRes.Clusters[i].CompletedCycles
	}
	q := qos.PeriodQoS(demanded, completed)
	for i := range d.obs {
		cr := d.chipRes.Clusters[i]
		dr := 0.0
		if cr.CapacityCycles > 0 {
			dr = w.Demands[i].Cycles / cr.CapacityCycles
		}
		d.obs[i] = Observation{
			Utilization: cr.Utilization,
			DemandRatio: dr,
			QoS:         q,
			ClusterQoS:  qos.PeriodQoS(w.Demands[i].Cycles, cr.CompletedCycles),
			Critical:    w.Critical,
			Level:       d.chip.Cluster(i).Level(),
		}
	}
	d.energyJ += d.chipRes.EnergyJ
	d.qosSum += q
	d.period++
	due = d.cfg.RewardEvery > 0 && d.period%d.cfg.RewardEvery == 0
	return -d.chipRes.EnergyJ, due, nil
}

// RunDeviceSim runs one device's full chip-simulation life: every control
// period's observations go through decide, the returned levels are applied,
// and the recorded decision sequence is returned for oracle diffs. decide
// receives the period index and one period's observations; reward (may be
// nil) receives -energy every RewardEvery periods.
func RunDeviceSim(cfg DeviceSimConfig, decide func(int, []Observation) ([]int, error), reward func(float64) error) ([]int, error) {
	d, err := NewDeviceStepper(cfg)
	if err != nil {
		return nil, err
	}
	for !d.Done() {
		p := d.Period()
		levels, err := decide(p, d.Obs())
		if err != nil {
			return d.Trace(), err
		}
		r, due, err := d.Apply(levels)
		if err != nil {
			return d.Trace(), err
		}
		if reward != nil && due {
			if err := reward(r); err != nil {
				return d.Trace(), fmt.Errorf("reward at period %d: %w", p, err)
			}
		}
	}
	return d.Trace(), nil
}
