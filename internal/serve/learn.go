// Online learning in the serving path. The serving tier hosted a frozen
// policy: rewards fed a ledger and nothing else. The learner closes the
// loop the way the paper's companion online-learning line of work does —
// device-reported rewards drive live Double-Q updates while serving:
//
//   - reward reports are paired with the reporting session's last two
//     committed (state, action) periods into core.Transitions and pushed
//     onto a bounded lock-free MPSC ring (a full ring drops the sample —
//     learning is best-effort, the serving path never blocks on it);
//   - a single consumer drains the ring into batched per-agent Double-Q
//     updates against a shadow table (core.TDUpdater), off every decide
//     hot path;
//   - every SwapEvery updates the shadow tables are frozen into a fresh
//     immutable Model and published RCU-style: one atomic pointer store
//     into the software backend plus a version bump. Decide readers load
//     the pointer once per batch and never take a lock; the epoch-tagged
//     FlatMemo stays valid because same-shape models share an arena
//     length;
//   - the learned state is periodically published through the existing
//     checkpoint store (and finally at drain), so restarts and new shards
//     hydrate what was learned;
//   - Manual mode runs no goroutine: the caller drives Server.LearnTick
//     at explicit points, which makes a training-while-serving run
//     deterministic end to end — the seeded replay mode RunLearn uses.
package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/core"
	"rlpm/internal/obs"
)

// LearnConfig parameterizes the online learner. The zero value disables
// learning entirely.
type LearnConfig struct {
	// Enabled turns the learner on. Requires the software backend —
	// learned tables are published by swapping immutable models, which the
	// modeled accelerator cannot do.
	Enabled bool
	// Manual suppresses the background drain goroutine; updates apply only
	// when the caller invokes Server.LearnTick. This is the seeded replay
	// mode: with a fixed tick schedule, a training-while-serving run is
	// bit-reproducible.
	Manual bool
	// Seed drives the learner's Double-Q coin stream.
	Seed uint64
	// Alpha/Gamma override the model config's learning rate and discount;
	// 0 selects the config values.
	Alpha, Gamma float64
	// SwapEvery is how many applied updates trigger an RCU table
	// publication (default 256).
	SwapEvery int
	// QueueCap bounds the transition ring (default 4096, rounded up to a
	// power of two). When full, new samples are dropped and counted.
	QueueCap int
	// CheckpointEvery, when positive, periodically publishes the learned
	// tables through the server's checkpoint store (async mode only; needs
	// Config.CheckpointPath).
	CheckpointEvery time.Duration
}

func (c LearnConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.SwapEvery < 0 {
		return fmt.Errorf("serve: negative learn SwapEvery %d", c.SwapEvery)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("serve: negative learn QueueCap %d", c.QueueCap)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("serve: negative learn CheckpointEvery %v", c.CheckpointEvery)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("serve: learn alpha %v out of [0,1]", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("serve: learn gamma %v out of [0,1)", c.Gamma)
	}
	return nil
}

func (c LearnConfig) withDefaults() LearnConfig {
	if c.SwapEvery == 0 {
		c.SwapEvery = 256
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4096
	}
	return c
}

// applyChunk bounds how many transitions the async consumer applies
// between shutdown/checkpoint checks.
const applyChunk = 256

// learnIdlePoll is the async consumer's sleep when the ring is empty.
const learnIdlePoll = 200 * time.Microsecond

// learner drains reward-derived transitions into a shadow TDUpdater and
// publishes the result as immutable model swaps. Producers are session
// goroutines (via Server.noteRewardLocked); the consumer is either the
// background goroutine (async mode) or LearnTick callers (manual mode) —
// applyMu serializes them, so the ring's single-consumer contract holds in
// both modes.
type learner struct {
	srv  *Server
	sw   *SWBackend
	cfg  LearnConfig
	ring *tranRing

	applyMu sync.Mutex
	upd     *core.TDUpdater
	pending int // updates applied since the last publication

	version atomic.Uint64

	updates  *obs.Counter   // transitions applied to the shadow tables
	dropped  *obs.Counter   // transitions dropped on a full ring
	rejected *obs.Counter   // transitions rejected by the updater
	swaps    *obs.Counter   // RCU table publications
	tdAbs    *obs.Histogram // |TD error| per update, in 1e-6 units

	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

func newLearner(s *Server, sw *SWBackend, cfg LearnConfig) (*learner, error) {
	cfg = cfg.withDefaults()
	upd, err := core.NewTDUpdater(s.model.cfg, s.model.Snapshot(), cfg.Seed, cfg.Alpha, cfg.Gamma)
	if err != nil {
		return nil, fmt.Errorf("serve: building learner: %w", err)
	}
	l := &learner{
		srv:  s,
		sw:   sw,
		cfg:  cfg,
		ring: newTranRing(cfg.QueueCap),
		upd:  upd,
		quit: make(chan struct{}),

		updates:  s.reg.NewCounter("learn_updates_total", "Q-table updates applied by the online learner"),
		dropped:  s.reg.NewCounter("learn_dropped_total", "learning samples dropped on a full transition queue"),
		rejected: s.reg.NewCounter("learn_rejected_total", "learning samples rejected by the updater"),
		swaps:    s.reg.NewCounter("learn_swaps_total", "RCU table publications by the online learner"),
		tdAbs:    s.reg.NewHistogram("learn_td_abs", "absolute TD error per applied update, in 1e-6 units"),
	}
	s.reg.NewGaugeFunc("serve_policy_version", "served policy version; 0 is the construction-time model", func() float64 {
		return float64(l.version.Load())
	})
	return l, nil
}

// start launches the background consumer (async mode only); split from
// newLearner so the server finishes wiring before the goroutine runs.
func (l *learner) start() {
	if l.cfg.Manual {
		return
	}
	l.wg.Add(1)
	go l.run()
}

// offer enqueues one transition; false when the ring is full.
func (l *learner) offer(t core.Transition) bool { return l.ring.Push(t) }

func (l *learner) run() {
	defer l.wg.Done()
	var ckpt <-chan time.Time
	if l.cfg.CheckpointEvery > 0 {
		t := time.NewTicker(l.cfg.CheckpointEvery)
		defer t.Stop()
		ckpt = t.C
	}
	for {
		n := l.apply(applyChunk)
		select {
		case <-l.quit:
			// Final drain: every acked reward still queued lands in the
			// tables before the drain-time checkpoint snapshots them.
			l.tick()
			return
		case <-ckpt:
			l.srv.publishCheckpoint(false)
		default:
		}
		if n == 0 {
			select {
			case <-l.quit:
				l.tick()
				return
			case <-ckpt:
				l.srv.publishCheckpoint(false)
			case <-time.After(learnIdlePoll):
			}
		}
	}
}

// apply drains up to max transitions, publishing every SwapEvery updates.
func (l *learner) apply(max int) int {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	n := 0
	for n < max {
		t, ok := l.ring.Pop()
		if !ok {
			break
		}
		l.applyOneLocked(t)
		n++
		if l.pending >= l.cfg.SwapEvery {
			l.publishLocked()
		}
	}
	return n
}

// tick drains the ring completely and publishes any pending updates —
// the manual-mode step, also used as the shutdown flush.
func (l *learner) tick() int {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	n := 0
	for {
		t, ok := l.ring.Pop()
		if !ok {
			break
		}
		l.applyOneLocked(t)
		n++
	}
	if l.pending > 0 {
		l.publishLocked()
	}
	return n
}

func (l *learner) applyOneLocked(t core.Transition) {
	td, err := l.upd.Apply(t)
	if err != nil {
		// Sessions validate states and actions before queueing, so this is
		// defense in depth: count it, never let one sample stop learning.
		l.rejected.Add(1)
		return
	}
	l.updates.Add(1)
	l.pending++
	l.tdAbs.Observe(int64(math.Abs(td) * 1e6))
}

// publishLocked freezes the shadow tables into an immutable Model and
// swaps it into the software backend — one atomic store, no reader locks.
func (l *learner) publishLocked() {
	m, err := NewModel(l.srv.model.cfg, l.upd.Snapshot())
	if err != nil {
		// Unreachable: the snapshot has the construction model's shape.
		l.rejected.Add(1)
		l.pending = 0
		return
	}
	l.sw.SetModel(m)
	l.pending = 0
	l.swaps.Add(1)
	l.version.Add(1)
}

// snapshot exports the learned tables for checkpointing.
func (l *learner) snapshot() core.Snapshot {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	return l.upd.Snapshot()
}

// close stops the consumer and flushes the queue; idempotent. After close
// the ring may still accept pushes (sessions can outlive the learner
// during shutdown) — they are simply never drained.
func (l *learner) close() {
	l.closeOnce.Do(func() {
		close(l.quit)
		l.wg.Wait()
		if l.cfg.Manual {
			l.tick()
		}
	})
}

// LearnStats is the learner's observable state inside Metrics.
type LearnStats struct {
	Updates            uint64  `json:"updates"`
	Dropped            uint64  `json:"dropped"`
	Rejected           uint64  `json:"rejected"`
	Swaps              uint64  `json:"swaps"`
	PolicyVersion      uint64  `json:"policy_version"`
	RewardsLearning    uint64  `json:"rewards_learning"`
	RewardsFrozen      uint64  `json:"rewards_frozen"`
	MeanRewardLearning float64 `json:"mean_reward_learning"`
	MeanRewardFrozen   float64 `json:"mean_reward_frozen"`
}

func (l *learner) statsSnapshot(s *Server) *LearnStats {
	return &LearnStats{
		Updates:            l.updates.Load(),
		Dropped:            l.dropped.Load(),
		Rejected:           l.rejected.Load(),
		Swaps:              l.swaps.Load(),
		PolicyVersion:      l.version.Load(),
		RewardsLearning:    s.cohortLearn.rewards.Load(),
		RewardsFrozen:      s.cohortFrozen.rewards.Load(),
		MeanRewardLearning: s.cohortLearn.mean(),
		MeanRewardFrozen:   s.cohortFrozen.mean(),
	}
}

// LearnTick drains every queued learning sample and publishes the result,
// synchronously on the caller's goroutine — the manual-mode step. Returns
// the number of transitions applied; 0 when learning is off or async.
func (s *Server) LearnTick() int {
	if s.learner == nil || !s.learner.cfg.Manual {
		return 0
	}
	return s.learner.tick()
}

// PolicyVersion returns the served policy version: 0 until the learner
// first publishes, then incremented per RCU swap.
func (s *Server) PolicyVersion() uint64 {
	if s.learner == nil {
		return 0
	}
	return s.learner.version.Load()
}

// LearnSnapshot exports the learner's current tables; ok is false when
// learning is disabled.
func (s *Server) LearnSnapshot() (snap core.Snapshot, ok bool) {
	if s.learner == nil {
		return core.Snapshot{}, false
	}
	return s.learner.snapshot(), true
}

// tranRing is the learner's bounded lock-free MPSC transition queue —
// mpscRing's Vyukov design carrying core.Transition by value so the reward
// path enqueues without allocating. Producers are session goroutines;
// consumers serialize on the learner's applyMu, which preserves the
// single-consumer contract on head.
type tranRing struct {
	mask  uint64
	slots []tranSlot
	tail  atomic.Uint64
	head  uint64 // guarded by learner.applyMu
}

type tranSlot struct {
	seq atomic.Uint64
	t   core.Transition
}

func newTranRing(capacity int) *tranRing {
	n := 8
	for n < capacity {
		n <<= 1
	}
	r := &tranRing{mask: uint64(n - 1), slots: make([]tranSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Push enqueues t, returning false immediately when the ring is full.
// Safe for concurrent producers.
func (r *tranRing) Push(t core.Transition) bool {
	for {
		pos := r.tail.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.t = t
				slot.seq.Store(pos + 1)
				return true
			}
			continue
		}
		if seq < pos {
			return false // consumer a full lap behind: ring is full
		}
	}
}

// Pop dequeues the oldest transition. Single consumer only (applyMu).
func (r *tranRing) Pop() (core.Transition, bool) {
	slot := &r.slots[r.head&r.mask]
	if slot.seq.Load() != r.head+1 {
		return core.Transition{}, false
	}
	t := slot.t
	slot.seq.Store(r.head + uint64(len(r.slots)))
	r.head++
	return t, true
}
