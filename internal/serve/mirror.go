// Client-side resilience plumbing shared by the binary and HTTP clients:
// typed transport errors, the retry/backoff loop, and the session mirror
// that makes transparent resume possible.
//
// The mirror is the heart of crash recovery. A client cannot ask a dead
// server for its session state, so it shadows that state locally: the
// mirror replays, draw for draw, the server session's exploration RNG and
// ε-decay on every *acknowledged* decide. Because the server's decide
// path is transactional (rolled back on shed requests) and deduplicating
// (a retried sequence number replays the cached decision without new
// draws), "acknowledged exactly once on the client" equals "advanced
// exactly once on the server" — the two RNG streams stay in lockstep
// through drops, retries, and restarts. After a restart the client ships
// the mirror to the new incarnation (TResume / POST /v1/sessions/resume)
// and continues as if the process had never died.

package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/rng"
)

// ErrConnLost is wrapped into every call that failed because the shared
// transport connection died — the typed signal that the request may or
// may not have executed and a (deduplicated) retry is in order.
var ErrConnLost = errors.New("serve: connection lost")

// ErrCallTimeout is wrapped into calls abandoned at the per-call
// deadline. Like ErrConnLost, the request's fate is unknown.
var ErrCallTimeout = errors.New("serve: call timed out")

// BackoffError decorates a retryable error with the server's retry hint
// (the wire error frame's backoff field, or HTTP Retry-After). Retrieve
// with errors.As; errors.Is sees through it to the underlying sentinel.
type BackoffError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *BackoffError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.RetryAfter)
}

func (e *BackoffError) Unwrap() error { return e.Err }

// retryableErr reports whether a failed call is worth retrying: transport
// losses and timeouts (fate unknown — dedup makes the retry safe),
// overload sheds (the server asked for a retry), server shutdown (a
// restart may be in progress), and raw network errors (dial refused
// mid-restart). Session-state errors — closed, bad sequence, validation —
// are not retryable; ErrNoSession/ErrUnknownSession are handled by the
// resume path, not here.
func retryableErr(err error) bool {
	if errors.Is(err, ErrConnLost) || errors.Is(err, ErrCallTimeout) ||
		errors.Is(err, ErrOverloaded) || errors.Is(err, ErrServerClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// retryPolicy is the shared exponential-backoff-with-jitter schedule.
type retryPolicy struct {
	budget time.Duration // total window for one logical call's retries
	min    time.Duration // first backoff step
	max    time.Duration // backoff ceiling

	mu sync.Mutex
	jr *rng.Rand // jitter stream; timing-only, never touches decisions

	retries atomic.Uint64 // sleeps taken (i.e. attempts beyond the first)
	resumes atomic.Uint64 // sessions re-created after a lost incarnation
}

func newRetryPolicy(seed uint64) *retryPolicy {
	return &retryPolicy{
		budget: 30 * time.Second,
		min:    5 * time.Millisecond,
		max:    500 * time.Millisecond,
		jr:     rng.New(seed),
	}
}

// sleep waits one backoff step: the server's hint when it gave one,
// otherwise min·2^attempt clamped to max — then halved and jittered
// (uniform in [d/2, d)) so a fleet severed by one fault does not
// reconnect in one thundering herd.
func (p *retryPolicy) sleep(ctx ctxDone, attempt int, hint time.Duration) error {
	d := p.min << uint(attempt)
	if d > p.max || d <= 0 {
		d = p.max
	}
	if hint > 0 {
		d = hint
	}
	p.mu.Lock()
	f := p.jr.Float64()
	p.mu.Unlock()
	d = d/2 + time.Duration(f*float64(d/2))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// ctxDone is the sliver of context.Context the retry loop needs.
type ctxDone interface {
	Done() <-chan struct{}
	Err() error
}

// maxResumeStreak bounds consecutive resume attempts for one logical
// call, so a server that keeps forgetting the session cannot loop a
// client forever.
const maxResumeStreak = 5

// sessionMirror shadows one server session's evolving state on the
// client. All methods are called from the session's owning goroutine
// (sessions are documented single-goroutine), so no locking.
type sessionMirror struct {
	opts   SessionOptions
	levels []int // per-cluster OPP counts

	eps        float64
	r          *rng.Rand // lockstep replica of the server session's RNG
	seq        uint64    // last acknowledged sequence number
	lastLevels []int     // decision for seq
	prevDemand []float64

	decisions, rewards uint64
	rewardSum          float64
}

func newSessionMirror(opts SessionOptions, levels []int) *sessionMirror {
	return &sessionMirror{
		opts:       opts,
		levels:     append([]int(nil), levels...),
		eps:        opts.Epsilon,
		r:          rng.New(opts.Seed),
		prevDemand: make([]float64, len(levels)),
	}
}

// nextSeq numbers the next decide attempt. Every retry of one logical
// decide reuses the same number — that is what the server dedups on.
func (m *sessionMirror) nextSeq() uint64 { return m.seq + 1 }

// ackDecide advances the mirror exactly as the server advanced serving
// the decide: demand history, the per-cluster exploration draws (the
// draws happen whether or not exploration won — only their *use*
// differs, and the mirror only needs the stream position), then ε decay.
// Called once per acknowledged decide frame, never per attempt. A
// multi-period frame (len(obs) = K×clusters) advances K periods — draws
// and decay interleave exactly as K sequential single-period decides —
// and consumes K sequence numbers; lastLevels keeps only the final
// period's decision, which is all a resumed server can replay.
func (m *sessionMirror) ackDecide(obs []Observation, levels []int) {
	k := len(m.levels)
	periods := len(obs) / k
	for p := 0; p < periods; p++ {
		base := p * k
		for i := 0; i < k; i++ {
			m.prevDemand[i] = obs[base+i].DemandRatio
			if m.eps > 0 && m.r.Float64() < m.eps {
				m.r.Intn(m.levels[i])
			}
		}
		if m.eps > 0 && m.opts.EpsilonDecay > 0 {
			m.eps *= m.opts.EpsilonDecay
			if m.eps < m.opts.EpsilonMin {
				m.eps = m.opts.EpsilonMin
			}
		}
	}
	m.seq += uint64(periods)
	m.lastLevels = append(m.lastLevels[:0], levels[(periods-1)*k:]...)
	m.decisions += uint64(periods)
}

// nextRewardSeq numbers the next reward attempt — the acked-reward count
// plus one, the reward path's nextSeq. Every retry of one logical reward
// reuses the number; the server dedups on it, so a lost ack can never
// double-count the ledger or double-apply a live Q-update. The count also
// rides ResumeState.Rewards, seeding the new incarnation's dedup cursor.
func (m *sessionMirror) nextRewardSeq() uint64 { return m.rewards + 1 }

// ackReward advances the ledger for an acknowledged reward report.
func (m *sessionMirror) ackReward(r float64) {
	m.rewards++
	m.rewardSum += r
}

// resumeState packages the mirror for a new server incarnation.
func (m *sessionMirror) resumeState() ResumeState {
	return ResumeState{
		Options:    m.opts,
		Epsilon:    m.eps,
		Rng:        m.r.State(),
		Seq:        m.seq,
		LastLevels: append([]int(nil), m.lastLevels...),
		PrevDemand: append([]float64(nil), m.prevDemand...),
		Decisions:  m.decisions,
		Rewards:    m.rewards,
		RewardSum:  m.rewardSum,
	}
}
