package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlpm/internal/core"
)

func TestSaveLoadCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	cfg, snap := testSnapshot(t, 3, 5)

	n, err := SaveCheckpoint(path, snap)
	if err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size() != n {
		t.Fatalf("reported %d bytes, file is %d", n, info.Size())
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.State != snap.State {
		t.Fatalf("state config %+v, want %+v", got.State, snap.State)
	}
	for c := range snap.Tables {
		for s := range snap.Tables[c] {
			for a := range snap.Tables[c][s] {
				if got.Tables[c][s][a] != snap.Tables[c][s][a] {
					t.Fatalf("table[%d][%d][%d] drifted through the file", c, s, a)
				}
			}
		}
	}

	m, err := LoadModel(path, cfg)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if m.Clusters() != 2 {
		t.Fatalf("loaded model has %d clusters", m.Clusters())
	}
}

// TestSaveCheckpointIsAtomic asserts the write-rename discipline: a save
// over an existing checkpoint either fully replaces it or leaves it intact,
// and no temp files survive.
func TestSaveCheckpointIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	_, snapA := testSnapshot(t, 3)
	if _, err := SaveCheckpoint(path, snapA); err != nil {
		t.Fatalf("first save: %v", err)
	}

	// A second save with different content must replace the file.
	snapB := snapA
	snapB.Tables = [][][]float64{deepCopyTable(snapA.Tables[0])}
	snapB.Tables[0][0][0] = 1234.5
	if _, err := SaveCheckpoint(path, snapB); err != nil {
		t.Fatalf("second save: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load after overwrite: %v", err)
	}
	if got.Tables[0][0][0] != 1234.5 {
		t.Fatal("overwrite did not replace the checkpoint")
	}

	// A save that fails encoding must leave the valid file untouched.
	var bad core.Snapshot
	bad.State = snapA.State
	if _, err := SaveCheckpoint(path, bad); err == nil {
		t.Fatal("empty snapshot saved without error")
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("failed save corrupted the existing checkpoint: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s survived", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d files in checkpoint dir, want 1", len(entries))
	}
}

func TestLoadCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	_, snap := testSnapshot(t, 3)
	if _, err := SaveCheckpoint(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	// Flip a payload byte: typed corruption error.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x01
	corrupt := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadCheckpoint(corrupt); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Fatalf("flipped byte: %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := LoadModel(corrupt, core.DefaultConfig()); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Fatalf("LoadModel on corrupt file: %v, want ErrCheckpointCorrupt", err)
	}

	// Truncation: typed corruption error.
	trunc := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(trunc, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadCheckpoint(trunc); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Fatalf("truncated: %v, want ErrCheckpointCorrupt", err)
	}

	// Missing file: a plain error, not a panic.
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.ckpt")); err == nil {
		t.Fatal("absent file loaded")
	}
}

func deepCopyTable(t [][]float64) [][]float64 {
	cp := make([][]float64, len(t))
	for i, row := range t {
		cp[i] = append([]float64(nil), row...)
	}
	return cp
}
