// Binary-protocol server: persistent multiplexed TCP connections speaking
// internal/wire frames against the same sessions the HTTP handlers serve.
//
// Each connection is one goroutine owning all of its scratch — read/write
// buffers, decoded request structs, the wire→serve observation conversion —
// so a warmed connection serves decide frames with zero allocations: frame
// read reuses the payload scratch, decode reuses the request's backing
// arrays, Session.DecideInto works entirely in session-owned scratch, and
// the response is appended into the reused write buffer. Responses echo the
// request id, so a client may pipeline requests for many sessions over one
// connection; writes are flushed only when no further request is already
// buffered, batching response syscalls under pipelining.

package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"time"

	"rlpm/internal/wire"
)

// ServeBin accepts binary-protocol connections on ln until the listener
// fails or the server closes. It blocks; run it in its own goroutine. The
// listener is closed (and every live connection torn down) by Server.Close.
func (s *Server) ServeBin(ln net.Listener) error {
	s.binMu.Lock()
	s.binLns[ln] = struct{}{}
	s.binMu.Unlock()
	defer func() {
		s.binMu.Lock()
		delete(s.binLns, ln)
		s.binMu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.trackBinConn(conn) {
			conn.Close()
			return nil
		}
		s.binConnsTotal.Add(1)
		go s.serveBinConn(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// trackBinConn registers a live connection for teardown at Close; it
// reports false when the server already closed (the connection must not be
// served — Close's sweep may already have run).
func (s *Server) trackBinConn(c net.Conn) bool {
	if s.isClosed() {
		return false
	}
	s.binMu.Lock()
	s.binConns[c] = struct{}{}
	s.binMu.Unlock()
	if s.isClosed() { // raced Close's sweep: tear down ourselves
		s.binMu.Lock()
		delete(s.binConns, c)
		s.binMu.Unlock()
		return false
	}
	return true
}

// binConnState is one connection's reusable working set.
type binConnState struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	hdr     [wire.HeaderSize]byte
	payload []byte // frame payload scratch, regrown by ReadFrame
	wbuf    []byte // response frame scratch
	dreq    wire.DecideReq
	creq    wire.CreateReq
	rreq    wire.RewardReq
	clreq   wire.CloseReq
	rsreq   wire.ResumeReq
	obs     []Observation // wire.Obs → serve.Observation conversion
	levels  []int         // DecideInto output
	win     binWindow     // decide-window working set
}

func (s *Server) serveBinConn(conn net.Conn) {
	defer func() {
		s.binMu.Lock()
		delete(s.binConns, conn)
		s.binMu.Unlock()
		conn.Close()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over throughput: decide frames are tiny
	}
	st := &binConnState{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	for {
		h, payload, err := wire.ReadFrame(st.br, &st.hdr, st.payload)
		st.payload = payload
		if err != nil {
			// A read-deadline timeout during drain is the drain nudge, not
			// a protocol failure: everything already answered has been
			// flushed (the per-frame flush below runs before the next
			// read), and a partially received frame was never accepted —
			// its client retries against the next incarnation. Close
			// cleanly so in-flight responses land.
			if s.isDraining() && isTimeout(err) {
				st.bw.Flush()
				gracefulClose(conn, st.br)
				return
			}
			// A clean EOF between frames is the client hanging up. Anything
			// else — truncation, CRC, version, oversized prefix — poisons
			// the stream's framing: answer with a best-effort error frame
			// and drop the connection rather than misparse what follows.
			if !errors.Is(err, io.EOF) {
				s.binErrors.Add(1)
				st.wbuf = wire.FinishFrame(
					wire.AppendError(wire.BeginFrame(st.wbuf), wire.CodeBadRequest, 0, err.Error()),
					wire.TError, h.ReqID)
				st.bw.Write(st.wbuf)
				st.bw.Flush()
				gracefulClose(conn, st.br)
			}
			return
		}
		var keep bool
		if h.Type == wire.TDecide {
			// Decide frames route through the window path: pipelined decide
			// frames already buffered behind this one are gathered into a
			// single shared backend batch and answered with one vectored
			// write. A lone frame falls through to the plain path inside.
			keep = s.serveBinDecideWindow(st, h)
		} else {
			keep = s.handleBinFrame(st, h)
		}
		// Flush once the buffered input is exhausted: under pipelining many
		// responses ride one syscall, while a lone request is answered
		// immediately.
		if st.br.Buffered() == 0 || !keep {
			if err := st.bw.Flush(); err != nil {
				return
			}
		}
		if !keep {
			gracefulClose(conn, st.br)
			return
		}
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// gracefulClose half-closes the write side and briefly drains unread input
// so the just-written error frame reaches the peer as data + EOF instead
// of being torn down by a reset (closing a socket with unread bytes sends
// RST, which can discard in-flight responses).
func gracefulClose(conn net.Conn, br *bufio.Reader) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, io.LimitReader(br, 1<<20))
}

// handleBinFrame serves one request frame, appending exactly one response
// frame to st.bw. It reports whether the connection should stay open.
func (s *Server) handleBinFrame(st *binConnState, h wire.Header) bool {
	s.binFrames.Add(1)
	switch h.Type {
	case wire.TDecide:
		return s.handleBinDecide(st, h)
	case wire.TCreate:
		if err := wire.ParseCreateReq(st.payload, &st.creq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.CreateSession(SessionOptions{
			Epsilon:      st.creq.Epsilon,
			EpsilonMin:   st.creq.EpsilonMin,
			EpsilonDecay: st.creq.EpsilonDecay,
			Seed:         st.creq.Seed,
		})
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), sess.Handle(), s.cfg.Epoch, s.model.levels),
			wire.TCreateOK, h.ReqID)
	case wire.TResume:
		if err := wire.ParseResumeReq(st.payload, &st.rsreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.ResumeSession(ResumeState{
			Options: SessionOptions{
				Epsilon:      st.rsreq.Opts.Epsilon,
				EpsilonMin:   st.rsreq.Opts.EpsilonMin,
				EpsilonDecay: st.rsreq.Opts.EpsilonDecay,
				Seed:         st.rsreq.Opts.Seed,
			},
			Epsilon:    st.rsreq.EpsNow,
			Rng:        st.rsreq.Rng,
			Seq:        st.rsreq.Seq,
			LastLevels: st.rsreq.LastLevels,
			PrevDemand: st.rsreq.PrevDemand,
			Decisions:  st.rsreq.Decisions,
			Rewards:    st.rsreq.Rewards,
			RewardSum:  st.rsreq.RewardSum,
		})
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), sess.Handle(), s.cfg.Epoch, s.model.levels),
			wire.TResumeOK, h.ReqID)
	case wire.TReward:
		if err := wire.ParseRewardReq(st.payload, &st.rreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.SessionByHandleEpoch(st.rreq.Handle, st.rreq.Epoch)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		stats, err := sess.RewardSeq(st.rreq.Seq, st.rreq.Reward)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), statsToWire(stats)),
			wire.TRewardOK, h.ReqID)
	case wire.TClose:
		if err := wire.ParseCloseReq(st.payload, &st.clreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		stats, err := s.CloseSessionByHandle(st.clreq.Handle)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), statsToWire(stats)),
			wire.TCloseOK, h.ReqID)
	default:
		// A response type on the request stream is a protocol violation;
		// answer and hang up.
		s.binError(st, h.ReqID, wire.ErrBadType)
		return false
	}
	st.bw.Write(st.wbuf)
	return true
}

// handleBinDecide is the hot path: decode, decide into scratch, encode.
// Allocation-free once the connection and session scratches are warm.
func (s *Server) handleBinDecide(st *binConnState, h wire.Header) bool {
	t0 := time.Now()
	if err := wire.ParseDecideReq(st.payload, &st.dreq); err != nil {
		return s.binError(st, h.ReqID, err)
	}
	n := len(st.dreq.Obs)
	if cap(st.obs) < n {
		st.obs = make([]Observation, n)
	}
	if cap(st.levels) < n {
		st.levels = make([]int, n)
	}
	obs, levels := st.obs[:n], st.levels[:n]
	for i := range obs {
		w := &st.dreq.Obs[i]
		obs[i] = Observation{
			Utilization: w.Utilization,
			DemandRatio: w.DemandRatio,
			QoS:         w.QoS,
			ClusterQoS:  w.ClusterQoS,
			Critical:    w.Critical,
			Level:       w.Level,
		}
	}
	sess, err := s.SessionByHandleEpoch(st.dreq.Handle, st.dreq.Epoch)
	if err != nil {
		return s.binError(st, h.ReqID, err)
	}
	decoded := time.Now()
	s.histBinDecode.Observe(decoded.Sub(t0).Nanoseconds())
	if _, err := sess.DecideSeq(st.dreq.Seq, obs, levels); err != nil {
		return s.binError(st, h.ReqID, err)
	}
	encodeStart := time.Now()
	st.wbuf = wire.FinishFrame(
		wire.AppendDecideOK(wire.BeginFrame(st.wbuf), levels),
		wire.TDecideOK, h.ReqID)
	st.bw.Write(st.wbuf)
	now := time.Now()
	s.histBinWrite.Observe(now.Sub(encodeStart).Nanoseconds())
	s.histBin.Observe(now.Sub(t0).Nanoseconds())
	return true
}

// maxWindowFrames bounds the decide frames one window gathers: enough to
// fill a healthy batch under pipelining, small enough that one slow frame
// never delays a connection's responses unboundedly.
const maxWindowFrames = 64

// binTxn is one decide frame of a connection window: its identity, its
// slice of the combined lookup batch, and how it resolved.
type binTxn struct {
	reqID   uint32
	t0      time.Time
	sess    *Session // non-nil while the decide transaction is open
	levels  []int    // per-frame decision output (window-owned scratch)
	lookOff int      // this frame's offset into the combined lookups
	lookLen int
	ok      bool // answered with TDecideOK (fresh or replayed)
	keep    bool // connection survives this frame's outcome
}

// binWindow is a connection's reusable decide-window working set: the
// open transactions, the combined exploit-lookup batch they share, and
// one response buffer per frame so the answers leave in a single
// writev-style net.Buffers flush.
type binWindow struct {
	txns       []binTxn
	wbufs      [][]byte // response frame per txn, index-aligned, reused
	frameLvls  [][]int  // levels scratch per txn, index-aligned, reused
	lookups    []Lookup // combined exploit lookups of all open txns
	out        []int    // combined batch results
	bufs       net.Buffers
	obsTotal   int  // observations admitted, for the batch budget
	closeAfter bool // a frame poisoned the stream: answer, then hang up
}

func (w *binWindow) reset() {
	w.txns = w.txns[:0]
	w.lookups = w.lookups[:0]
	w.obsTotal = 0
	w.closeAfter = false
}

// slot returns the next txn index, growing the index-aligned scratch.
func (w *binWindow) slot() int {
	i := len(w.txns)
	for len(w.wbufs) <= i {
		w.wbufs = append(w.wbufs, nil)
	}
	for len(w.frameLvls) <= i {
		w.frameLvls = append(w.frameLvls, nil)
	}
	return i
}

// txnState is beginBinTxn's outcome for one decide frame.
type txnState int

const (
	txnOpen     txnState = iota // transaction open, session lock held
	txnAnswered                 // response already encoded (replay or error)
	txnHeld                     // session lock unavailable: frame held back
)

// serveBinDecideWindow serves the decide frame in hand plus every complete
// decide frame already buffered behind it (the pipelining window): all
// their transactions open under their session locks, their exploit lookups
// resolve through ONE shared batch dispatch — cross-session coalescing the
// per-frame path structurally cannot reach, because each frame's
// batch.Do blocks the connection goroutine before the next frame is even
// parsed — and the responses leave in one vectored net.Buffers flush.
// It reports whether the connection stays open.
func (s *Server) serveBinDecideWindow(st *binConnState, h wire.Header) bool {
	s.binFrames.Add(1)
	if st.br.Buffered() < wire.HeaderSize {
		// Nothing pipelined behind this frame: the plain path is cheaper.
		return s.handleBinDecide(st, h)
	}
	w := &st.win
	w.reset()
	s.beginBinTxn(st, h, true) // first frame locks blockingly: never held

	// Gather phase: consume further decide frames only when the complete
	// frame is already buffered (never block mid-window) and its count fits
	// the batch budget. A frame whose session lock is contended is held
	// back — the stream stays ordered, so it must wait for this window's
	// responses anyway — and served by the plain blocking path after.
	var heldH wire.Header
	held := false
	for !w.closeAfter && len(w.txns) < maxWindowFrames && st.peekGatherable(s.cfg.MaxBatch, w.obsTotal) {
		gh, payload, err := wire.ReadFrame(st.br, &st.hdr, st.payload)
		st.payload = payload
		s.binFrames.Add(1)
		if err != nil {
			// The peek said a full frame was buffered, so this is corruption,
			// not truncation: answer in order and poison the stream.
			s.binErrors.Add(1)
			i := w.slot()
			w.wbufs[i] = wire.FinishFrame(
				wire.AppendError(wire.BeginFrame(w.wbufs[i]), wire.CodeBadRequest, 0, err.Error()),
				wire.TError, gh.ReqID)
			w.txns = append(w.txns, binTxn{reqID: gh.ReqID, keep: false})
			w.closeAfter = true
			break
		}
		if s.beginBinTxn(st, gh, false) == txnHeld {
			heldH, held = gh, true
			break
		}
	}

	// Resolve every open transaction's exploit lookups in one shared batch.
	var batchErr error
	if len(w.lookups) > 0 {
		if cap(w.out) < len(w.lookups) {
			w.out = make([]int, len(w.lookups))
		}
		batchErr = s.batch.Do(w.lookups, w.out[:len(w.lookups)])
	}
	for i := range w.txns {
		tx := &w.txns[i]
		if tx.sess == nil {
			continue // answered at begin (replay or error)
		}
		if batchErr != nil {
			tx.sess.decideAbortLocked()
			tx.sess.mu.Unlock()
			s.binErrors.Add(1)
			var backoffMs uint32
			if errors.Is(batchErr, ErrOverloaded) {
				backoffMs = s.batch.backoffHintMs()
			}
			w.wbufs[i] = wire.FinishFrame(
				wire.AppendError(wire.BeginFrame(w.wbufs[i]), binErrCode(batchErr), backoffMs, batchErr.Error()),
				wire.TError, tx.reqID)
			tx.keep = binErrCode(batchErr) != wire.CodeBadRequest || !isWireErr(batchErr)
			continue
		}
		for j := 0; j < tx.lookLen; j++ {
			tx.levels[tx.sess.lookupsIdx[j]] = w.out[tx.lookOff+j]
		}
		tx.sess.decideFinishLocked(tx.levels)
		tx.sess.mu.Unlock()
		w.wbufs[i] = wire.FinishFrame(
			wire.AppendDecideOK(wire.BeginFrame(w.wbufs[i]), tx.levels),
			wire.TDecideOK, tx.reqID)
		tx.ok = true
	}

	// Vectored flush: every response of the window in one writev-style
	// call, in frame order. Anything older already buffered in bw goes
	// first so the stream stays ordered.
	if err := st.bw.Flush(); err != nil {
		return false
	}
	w.bufs = w.bufs[:0]
	for i := range w.txns {
		w.bufs = append(w.bufs, w.wbufs[i])
	}
	wstart := time.Now()
	if _, err := w.bufs.WriteTo(st.conn); err != nil {
		return false
	}
	now := time.Now()
	span := now.Sub(wstart).Nanoseconds()
	keep := !w.closeAfter
	for i := range w.txns {
		tx := &w.txns[i]
		if tx.ok {
			s.histBinWrite.Observe(span)
			s.histBin.Observe(now.Sub(tx.t0).Nanoseconds())
		}
		if !tx.keep {
			keep = false
		}
	}
	if !keep {
		return false
	}
	if held {
		return s.handleBinDecide(st, heldH)
	}
	return true
}

// beginBinTxn decodes the decide frame in st.payload and opens its
// transaction: parse, convert, session lookup, validation, then
// decideBeginLocked under the session lock (blocking for the window's
// first frame, try-lock after — a second frame for a session already in
// the window must not deadlock the gather). Replays and failures are
// answered immediately into the frame's window buffer; an open
// transaction contributes its exploit lookups to the combined batch and
// keeps the session lock until the window scatters and finishes it.
func (s *Server) beginBinTxn(st *binConnState, h wire.Header, first bool) txnState {
	w := &st.win
	slot := w.slot()
	tx := binTxn{reqID: h.ReqID, t0: time.Now(), keep: true}
	fail := func(err error) txnState {
		s.binErrors.Add(1)
		var backoffMs uint32
		if errors.Is(err, ErrOverloaded) {
			backoffMs = s.batch.backoffHintMs()
		}
		w.wbufs[slot] = wire.FinishFrame(
			wire.AppendError(wire.BeginFrame(w.wbufs[slot]), binErrCode(err), backoffMs, err.Error()),
			wire.TError, h.ReqID)
		tx.keep = binErrCode(err) != wire.CodeBadRequest || !isWireErr(err)
		if !tx.keep {
			w.closeAfter = true
		}
		w.txns = append(w.txns, tx)
		return txnAnswered
	}
	if err := wire.ParseDecideReq(st.payload, &st.dreq); err != nil {
		return fail(err)
	}
	n := len(st.dreq.Obs)
	if cap(st.obs) < n {
		st.obs = make([]Observation, n)
	}
	obs := st.obs[:n]
	for i := range obs {
		wo := &st.dreq.Obs[i]
		obs[i] = Observation{
			Utilization: wo.Utilization,
			DemandRatio: wo.DemandRatio,
			QoS:         wo.QoS,
			ClusterQoS:  wo.ClusterQoS,
			Critical:    wo.Critical,
			Level:       wo.Level,
		}
	}
	sess, err := s.SessionByHandleEpoch(st.dreq.Handle, st.dreq.Epoch)
	if err != nil {
		return fail(err)
	}
	if cap(w.frameLvls[slot]) < n {
		w.frameLvls[slot] = make([]int, n)
	}
	lv := w.frameLvls[slot][:n]
	if err := s.model.decideValidate(obs, lv); err != nil {
		return fail(err)
	}
	if first {
		sess.mu.Lock()
	} else if !sess.mu.TryLock() {
		return txnHeld
	}
	replayed, err := sess.decideBeginLocked(st.dreq.Seq, obs, lv)
	s.histBinDecode.Observe(time.Since(tx.t0).Nanoseconds())
	if err != nil {
		sess.mu.Unlock()
		return fail(err)
	}
	if replayed {
		sess.mu.Unlock()
		w.wbufs[slot] = wire.FinishFrame(
			wire.AppendDecideOK(wire.BeginFrame(w.wbufs[slot]), lv),
			wire.TDecideOK, h.ReqID)
		tx.ok = true
		w.txns = append(w.txns, tx)
		return txnAnswered
	}
	tx.sess = sess
	tx.levels = lv
	tx.lookOff = len(w.lookups)
	tx.lookLen = len(sess.lookups)
	w.lookups = append(w.lookups, sess.lookups...)
	w.obsTotal += n
	w.txns = append(w.txns, tx)
	return txnOpen
}

// peekGatherable reports whether the connection's next buffered frame is a
// complete decide frame whose observation count fits the window's batch
// budget — without consuming a byte or ever blocking. An incomplete frame,
// a different type, or a count that would overflow the budget closes the
// gather; the frame stays buffered for the main loop or the next window.
func (st *binConnState) peekGatherable(maxBatch, obsTotal int) bool {
	if st.br.Buffered() < wire.HeaderSize {
		return false
	}
	hdr, err := st.br.Peek(wire.HeaderSize)
	if err != nil {
		return false
	}
	if hdr[1] != wire.TDecide {
		return false
	}
	plen := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if plen > wire.MaxPayload {
		// ReadFrame rejects the oversized prefix from the header alone, so
		// gathering it cannot block; the window answers and hangs up.
		return true
	}
	if st.br.Buffered() < wire.HeaderSize+plen+wire.TrailerSize {
		return false
	}
	if plen >= 22 { // count u16 sits at payload offset 20
		pk, err := st.br.Peek(wire.HeaderSize + 22)
		if err != nil {
			return false
		}
		if n := int(binary.LittleEndian.Uint16(pk[wire.HeaderSize+20:])); obsTotal+n > maxBatch {
			return false
		}
	}
	return true
}

// binError appends a TError frame for err and reports whether the
// connection survives: session-level failures keep it open, wire decode
// failures (a malformed but well-framed request) close it. Overload
// errors carry the batcher's adaptive backoff hint so shed clients space
// their retries to the queue's actual drain rate.
func (s *Server) binError(st *binConnState, reqID uint32, err error) bool {
	s.binErrors.Add(1)
	var backoffMs uint32
	if errors.Is(err, ErrOverloaded) {
		backoffMs = s.batch.backoffHintMs()
	}
	st.wbuf = wire.FinishFrame(
		wire.AppendError(wire.BeginFrame(st.wbuf), binErrCode(err), backoffMs, err.Error()),
		wire.TError, reqID)
	st.bw.Write(st.wbuf)
	return binErrCode(err) != wire.CodeBadRequest || !isWireErr(err)
}

func isWireErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) || errors.Is(err, wire.ErrBadPayload) || errors.Is(err, wire.ErrBadType)
}

// binErrCode maps serve-layer errors onto wire error codes, mirroring the
// HTTP status mapping in writeError.
// WireCode maps a serve-layer error onto its binary-protocol error code —
// exported so front tiers (the shard router) answering on the wire speak
// the same codes a shard itself would.
func WireCode(err error) uint16 { return binErrCode(err) }

func binErrCode(err error) uint16 {
	switch {
	// ErrUnknownSession wraps ErrNoSession, so it must be checked first:
	// the codes differ because the recoveries differ (resume vs give up).
	case errors.Is(err, ErrUnknownSession):
		return wire.CodeUnknownSession
	case errors.Is(err, ErrNoSession):
		return wire.CodeNoSession
	case errors.Is(err, ErrSessionClosed):
		return wire.CodeSessionClosed
	case errors.Is(err, ErrServerClosed):
		return wire.CodeServerClosed
	case errors.Is(err, ErrOverloaded):
		return wire.CodeOverloaded
	default:
		return wire.CodeBadRequest
	}
}

func statsToWire(st SessionStats) wire.Stats {
	return wire.Stats{
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	}
}
