// Binary-protocol server: persistent multiplexed TCP connections speaking
// internal/wire frames against the same sessions the HTTP handlers serve.
//
// Each connection is one goroutine owning all of its scratch — read/write
// buffers, decoded request structs, the wire→serve observation conversion —
// so a warmed connection serves decide frames with zero allocations: frame
// read reuses the payload scratch, decode reuses the request's backing
// arrays, Session.DecideInto works entirely in session-owned scratch, and
// the response is appended into the reused write buffer. Responses echo the
// request id, so a client may pipeline requests for many sessions over one
// connection; writes are flushed only when no further request is already
// buffered, batching response syscalls under pipelining.

package serve

import (
	"bufio"
	"errors"
	"io"
	"net"
	"time"

	"rlpm/internal/wire"
)

// ServeBin accepts binary-protocol connections on ln until the listener
// fails or the server closes. It blocks; run it in its own goroutine. The
// listener is closed (and every live connection torn down) by Server.Close.
func (s *Server) ServeBin(ln net.Listener) error {
	s.binMu.Lock()
	s.binLns[ln] = struct{}{}
	s.binMu.Unlock()
	defer func() {
		s.binMu.Lock()
		delete(s.binLns, ln)
		s.binMu.Unlock()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.trackBinConn(conn) {
			conn.Close()
			return nil
		}
		s.binConnsTotal.Add(1)
		go s.serveBinConn(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// trackBinConn registers a live connection for teardown at Close; it
// reports false when the server already closed (the connection must not be
// served — Close's sweep may already have run).
func (s *Server) trackBinConn(c net.Conn) bool {
	if s.isClosed() {
		return false
	}
	s.binMu.Lock()
	s.binConns[c] = struct{}{}
	s.binMu.Unlock()
	if s.isClosed() { // raced Close's sweep: tear down ourselves
		s.binMu.Lock()
		delete(s.binConns, c)
		s.binMu.Unlock()
		return false
	}
	return true
}

// binConnState is one connection's reusable working set.
type binConnState struct {
	br      *bufio.Reader
	bw      *bufio.Writer
	hdr     [wire.HeaderSize]byte
	payload []byte // frame payload scratch, regrown by ReadFrame
	wbuf    []byte // response frame scratch
	dreq    wire.DecideReq
	creq    wire.CreateReq
	rreq    wire.RewardReq
	clreq   wire.CloseReq
	rsreq   wire.ResumeReq
	obs     []Observation // wire.Obs → serve.Observation conversion
	levels  []int         // DecideInto output
}

func (s *Server) serveBinConn(conn net.Conn) {
	defer func() {
		s.binMu.Lock()
		delete(s.binConns, conn)
		s.binMu.Unlock()
		conn.Close()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over throughput: decide frames are tiny
	}
	st := &binConnState{
		br: bufio.NewReaderSize(conn, 64<<10),
		bw: bufio.NewWriterSize(conn, 64<<10),
	}
	for {
		h, payload, err := wire.ReadFrame(st.br, &st.hdr, st.payload)
		st.payload = payload
		if err != nil {
			// A read-deadline timeout during drain is the drain nudge, not
			// a protocol failure: everything already answered has been
			// flushed (the per-frame flush below runs before the next
			// read), and a partially received frame was never accepted —
			// its client retries against the next incarnation. Close
			// cleanly so in-flight responses land.
			if s.isDraining() && isTimeout(err) {
				st.bw.Flush()
				gracefulClose(conn, st.br)
				return
			}
			// A clean EOF between frames is the client hanging up. Anything
			// else — truncation, CRC, version, oversized prefix — poisons
			// the stream's framing: answer with a best-effort error frame
			// and drop the connection rather than misparse what follows.
			if !errors.Is(err, io.EOF) {
				s.binErrors.Add(1)
				st.wbuf = wire.FinishFrame(
					wire.AppendError(wire.BeginFrame(st.wbuf), wire.CodeBadRequest, 0, err.Error()),
					wire.TError, h.ReqID)
				st.bw.Write(st.wbuf)
				st.bw.Flush()
				gracefulClose(conn, st.br)
			}
			return
		}
		keep := s.handleBinFrame(st, h)
		// Flush once the buffered input is exhausted: under pipelining many
		// responses ride one syscall, while a lone request is answered
		// immediately.
		if st.br.Buffered() == 0 || !keep {
			if err := st.bw.Flush(); err != nil {
				return
			}
		}
		if !keep {
			gracefulClose(conn, st.br)
			return
		}
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// gracefulClose half-closes the write side and briefly drains unread input
// so the just-written error frame reaches the peer as data + EOF instead
// of being torn down by a reset (closing a socket with unread bytes sends
// RST, which can discard in-flight responses).
func gracefulClose(conn net.Conn, br *bufio.Reader) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, io.LimitReader(br, 1<<20))
}

// handleBinFrame serves one request frame, appending exactly one response
// frame to st.bw. It reports whether the connection should stay open.
func (s *Server) handleBinFrame(st *binConnState, h wire.Header) bool {
	s.binFrames.Add(1)
	switch h.Type {
	case wire.TDecide:
		return s.handleBinDecide(st, h)
	case wire.TCreate:
		if err := wire.ParseCreateReq(st.payload, &st.creq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.CreateSession(SessionOptions{
			Epsilon:      st.creq.Epsilon,
			EpsilonMin:   st.creq.EpsilonMin,
			EpsilonDecay: st.creq.EpsilonDecay,
			Seed:         st.creq.Seed,
		})
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), sess.Handle(), s.cfg.Epoch, s.model.levels),
			wire.TCreateOK, h.ReqID)
	case wire.TResume:
		if err := wire.ParseResumeReq(st.payload, &st.rsreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.ResumeSession(ResumeState{
			Options: SessionOptions{
				Epsilon:      st.rsreq.Opts.Epsilon,
				EpsilonMin:   st.rsreq.Opts.EpsilonMin,
				EpsilonDecay: st.rsreq.Opts.EpsilonDecay,
				Seed:         st.rsreq.Opts.Seed,
			},
			Epsilon:    st.rsreq.EpsNow,
			Rng:        st.rsreq.Rng,
			Seq:        st.rsreq.Seq,
			LastLevels: st.rsreq.LastLevels,
			PrevDemand: st.rsreq.PrevDemand,
			Decisions:  st.rsreq.Decisions,
			Rewards:    st.rsreq.Rewards,
			RewardSum:  st.rsreq.RewardSum,
		})
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendCreateOK(wire.BeginFrame(st.wbuf), sess.Handle(), s.cfg.Epoch, s.model.levels),
			wire.TResumeOK, h.ReqID)
	case wire.TReward:
		if err := wire.ParseRewardReq(st.payload, &st.rreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		sess, err := s.SessionByHandle(st.rreq.Handle)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		stats, err := sess.Reward(st.rreq.Reward)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), statsToWire(stats)),
			wire.TRewardOK, h.ReqID)
	case wire.TClose:
		if err := wire.ParseCloseReq(st.payload, &st.clreq); err != nil {
			return s.binError(st, h.ReqID, err)
		}
		stats, err := s.CloseSessionByHandle(st.clreq.Handle)
		if err != nil {
			return s.binError(st, h.ReqID, err)
		}
		st.wbuf = wire.FinishFrame(
			wire.AppendStats(wire.BeginFrame(st.wbuf), statsToWire(stats)),
			wire.TCloseOK, h.ReqID)
	default:
		// A response type on the request stream is a protocol violation;
		// answer and hang up.
		s.binError(st, h.ReqID, wire.ErrBadType)
		return false
	}
	st.bw.Write(st.wbuf)
	return true
}

// handleBinDecide is the hot path: decode, decide into scratch, encode.
// Allocation-free once the connection and session scratches are warm.
func (s *Server) handleBinDecide(st *binConnState, h wire.Header) bool {
	t0 := time.Now()
	if err := wire.ParseDecideReq(st.payload, &st.dreq); err != nil {
		return s.binError(st, h.ReqID, err)
	}
	n := len(st.dreq.Obs)
	if cap(st.obs) < n {
		st.obs = make([]Observation, n)
		st.levels = make([]int, n)
	}
	obs, levels := st.obs[:n], st.levels[:n]
	for i := range obs {
		w := &st.dreq.Obs[i]
		obs[i] = Observation{
			Utilization: w.Utilization,
			DemandRatio: w.DemandRatio,
			QoS:         w.QoS,
			ClusterQoS:  w.ClusterQoS,
			Critical:    w.Critical,
			Level:       w.Level,
		}
	}
	sess, err := s.SessionByHandleEpoch(st.dreq.Handle, st.dreq.Epoch)
	if err != nil {
		return s.binError(st, h.ReqID, err)
	}
	decoded := time.Now()
	s.histBinDecode.Observe(decoded.Sub(t0).Nanoseconds())
	if _, err := sess.DecideSeq(st.dreq.Seq, obs, levels); err != nil {
		return s.binError(st, h.ReqID, err)
	}
	encodeStart := time.Now()
	st.wbuf = wire.FinishFrame(
		wire.AppendDecideOK(wire.BeginFrame(st.wbuf), levels),
		wire.TDecideOK, h.ReqID)
	st.bw.Write(st.wbuf)
	now := time.Now()
	s.histBinWrite.Observe(now.Sub(encodeStart).Nanoseconds())
	s.histBin.Observe(now.Sub(t0).Nanoseconds())
	return true
}

// binError appends a TError frame for err and reports whether the
// connection survives: session-level failures keep it open, wire decode
// failures (a malformed but well-framed request) close it. Overload
// errors carry the batcher's adaptive backoff hint so shed clients space
// their retries to the queue's actual drain rate.
func (s *Server) binError(st *binConnState, reqID uint32, err error) bool {
	s.binErrors.Add(1)
	var backoffMs uint32
	if errors.Is(err, ErrOverloaded) {
		backoffMs = s.batch.backoffHintMs()
	}
	st.wbuf = wire.FinishFrame(
		wire.AppendError(wire.BeginFrame(st.wbuf), binErrCode(err), backoffMs, err.Error()),
		wire.TError, reqID)
	st.bw.Write(st.wbuf)
	return binErrCode(err) != wire.CodeBadRequest || !isWireErr(err)
}

func isWireErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) || errors.Is(err, wire.ErrBadPayload) || errors.Is(err, wire.ErrBadType)
}

// binErrCode maps serve-layer errors onto wire error codes, mirroring the
// HTTP status mapping in writeError.
func binErrCode(err error) uint16 {
	switch {
	// ErrUnknownSession wraps ErrNoSession, so it must be checked first:
	// the codes differ because the recoveries differ (resume vs give up).
	case errors.Is(err, ErrUnknownSession):
		return wire.CodeUnknownSession
	case errors.Is(err, ErrNoSession):
		return wire.CodeNoSession
	case errors.Is(err, ErrSessionClosed):
		return wire.CodeSessionClosed
	case errors.Is(err, ErrServerClosed):
		return wire.CodeServerClosed
	case errors.Is(err, ErrOverloaded):
		return wire.CodeOverloaded
	default:
		return wire.CodeBadRequest
	}
}

func statsToWire(st SessionStats) wire.Stats {
	return wire.Stats{
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	}
}
