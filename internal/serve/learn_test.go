package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rlpm/internal/core"
)

// learnServer builds an in-process learning server in manual (seeded
// replay) mode with per-update publication, so tests control exactly when
// updates apply and tables swap.
func learnServer(t *testing.T, m *Model) *Server {
	t.Helper()
	return newTestServer(t, m, nil, Config{Learn: LearnConfig{
		Enabled: true, Manual: true, Seed: 9, SwapEvery: 1,
	}})
}

// TestRewardSeqDedupExactlyOnce pins the reward-path fix this package's
// learner depends on: a retried reward frame (same seq) is answered from
// the ledger and applies nothing — no double-count, no second Q-update.
func TestRewardSeqDedupExactlyOnce(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := learnServer(t, m)
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	obs := testObs(m, 3, 2)
	for _, o := range obs { // two periods complete the transition pair
		if _, err := sess.Decide(o); err != nil {
			t.Fatalf("Decide: %v", err)
		}
	}

	st1, err := sess.RewardSeq(1, -0.5)
	if err != nil {
		t.Fatalf("RewardSeq(1): %v", err)
	}
	st2, err := sess.RewardSeq(1, -0.5) // lost-ack retry
	if err != nil {
		t.Fatalf("RewardSeq(1) replay: %v", err)
	}
	if st1 != st2 {
		t.Errorf("replay stats %+v != original %+v", st2, st1)
	}
	met := srv.MetricsSnapshot()
	if met.Rewards != 1 || met.RewardsDeduped != 1 {
		t.Errorf("rewards=%d deduped=%d, want 1/1", met.Rewards, met.RewardsDeduped)
	}
	// The replay queued no second batch of transitions: exactly one
	// Q-update sample per cluster reaches the learner.
	if n := srv.LearnTick(); n != m.Clusters() {
		t.Errorf("LearnTick applied %d transitions, want %d", n, m.Clusters())
	}

	if _, err := sess.RewardSeq(5, 0); !errors.Is(err, ErrBadSeq) {
		t.Errorf("gapped seq error = %v, want ErrBadSeq", err)
	}
	if _, err := sess.RewardSeq(2, math.NaN()); !errors.Is(err, ErrBadRequest) {
		t.Errorf("NaN reward error = %v, want ErrBadRequest", err)
	}
	if _, err := sess.RewardSeq(2, math.Inf(-1)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("-Inf reward error = %v, want ErrBadRequest", err)
	}
	// Rejected attempts must not burn the sequence number.
	if _, err := sess.RewardSeq(2, 0.25); err != nil {
		t.Fatalf("RewardSeq(2) after rejected attempts: %v", err)
	}
	// The legacy unsequenced path still works and leaves the cursor alone.
	if _, err := sess.Reward(0.5); err != nil {
		t.Fatalf("legacy Reward: %v", err)
	}
	if _, err := sess.RewardSeq(3, 0.1); err != nil {
		t.Fatalf("RewardSeq(3) after legacy reward: %v", err)
	}
}

// TestLearnFrozenCohortPinned drives the learning arm hard enough to force
// RCU swaps and demands the frozen control arm never notices: its decision
// trace must match an oracle over the construction-time model, period by
// period, and its rewards must never reach the learner.
func TestLearnFrozenCohortPinned(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{Learn: LearnConfig{
		Enabled: true, Manual: true, Seed: 3, SwapEvery: 1, Alpha: 0.5, Gamma: 0.9,
	}})
	learnSess, err := srv.CreateSession(SessionOptions{Seed: 1})
	if err != nil {
		t.Fatalf("CreateSession learning: %v", err)
	}
	fopts := SessionOptions{Seed: 2, Epsilon: 0.15, EpsilonDecay: 0.99, Cohort: CohortFrozen}
	frozenSess, err := srv.CreateSession(fopts)
	if err != nil {
		t.Fatalf("CreateSession frozen: %v", err)
	}
	want := newOracle(m, fopts)

	const periods = 60
	lobs, fobs := testObs(m, 11, periods), testObs(m, 12, periods)
	var seq uint64
	for i := 0; i < periods; i++ {
		if _, err := learnSess.Decide(lobs[i]); err != nil {
			t.Fatalf("learning decide %d: %v", i, err)
		}
		if i >= 1 { // a transition pair exists from the second period on
			seq++
			if _, err := learnSess.RewardSeq(seq, -0.1*float64(i%7)); err != nil {
				t.Fatalf("learning reward %d: %v", i, err)
			}
		}
		srv.LearnTick()
		got, err := frozenSess.Decide(fobs[i])
		if err != nil {
			t.Fatalf("frozen decide %d: %v", i, err)
		}
		if !equalInts(got, want.decide(fobs[i])) {
			t.Fatalf("frozen cohort diverged from the construction model at period %d", i)
		}
	}
	if srv.PolicyVersion() == 0 {
		t.Fatal("learner never published a swap; the frozen pin was not exercised")
	}

	// Frozen rewards land in the frozen ledger and apply zero updates.
	met := srv.MetricsSnapshot()
	updates := met.Learn.Updates
	for i, r := range []float64{1.0, 0.5} {
		if _, err := frozenSess.RewardSeq(uint64(i+1), r); err != nil {
			t.Fatalf("frozen reward: %v", err)
		}
	}
	if n := srv.LearnTick(); n != 0 {
		t.Errorf("frozen rewards applied %d updates, want 0", n)
	}
	met = srv.MetricsSnapshot()
	if met.Learn.Updates != updates {
		t.Errorf("updates moved %d -> %d on frozen rewards", updates, met.Learn.Updates)
	}
	if met.Learn.RewardsFrozen != 2 || met.Learn.RewardsLearning != periods-1 {
		t.Errorf("cohort ledgers frozen=%d learning=%d, want 2/%d",
			met.Learn.RewardsFrozen, met.Learn.RewardsLearning, periods-1)
	}

	// Meanwhile the live policy IS the learned one: a fresh greedy session
	// must match an oracle over a model built from the learner's snapshot.
	snap, ok := srv.LearnSnapshot()
	if !ok {
		t.Fatal("LearnSnapshot: learner missing")
	}
	learned, err := NewModel(m.cfg, snap)
	if err != nil {
		t.Fatalf("NewModel(learned): %v", err)
	}
	greedy, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession greedy: %v", err)
	}
	liveWant := newOracle(learned, SessionOptions{})
	for i, o := range testObs(m, 13, 20) {
		got, err := greedy.Decide(o)
		if err != nil {
			t.Fatalf("greedy decide %d: %v", i, err)
		}
		if !equalInts(got, liveWant.decide(o)) {
			t.Fatalf("live policy diverged from the learner snapshot at period %d", i)
		}
	}
}

// TestRunLearnSeededReplay pins the training-while-serving determinism
// contract: same config, bit-identical run — every device's decision trace
// and the learned checkpoint bytes — and the checkpoint builds a servable
// model.
func TestRunLearnSeededReplay(t *testing.T) {
	m := chaosTestModel(t) // DeviceStepper simulates soc.DefaultChipSpec
	cfg := LearnLoadConfig{
		Devices: 4, Periods: 60, Seed: 5, Epsilon: 0.25,
		RewardEvery: 5, TickEvery: 5, SwapEvery: 1,
	}
	a, err := RunLearn(m, cfg)
	if err != nil {
		t.Fatalf("RunLearn: %v", err)
	}
	if a.Updates == 0 || a.Swaps == 0 {
		t.Fatalf("run learned nothing: updates=%d swaps=%d", a.Updates, a.Swaps)
	}
	if a.Dropped != 0 || a.Rejected != 0 {
		t.Errorf("lossless single-threaded run dropped=%d rejected=%d, want 0/0", a.Dropped, a.Rejected)
	}
	b, err := RunLearn(m, cfg)
	if err != nil {
		t.Fatalf("RunLearn replay: %v", err)
	}
	for i := range a.Traces {
		if !slices.Equal(a.Traces[i], b.Traces[i]) {
			t.Fatalf("device %d decision trace diverged between same-seed runs", i)
		}
	}
	if !bytes.Equal(a.Checkpoint, b.Checkpoint) {
		t.Fatal("same-seed runs produced different learned checkpoints")
	}

	other := cfg
	other.Seed = 6
	c, err := RunLearn(m, other)
	if err != nil {
		t.Fatalf("RunLearn other seed: %v", err)
	}
	if bytes.Equal(a.Checkpoint, c.Checkpoint) {
		t.Error("different seeds produced identical checkpoints; determinism test is vacuous")
	}

	snap, err := core.DecodeCheckpoint(bytes.NewReader(a.Checkpoint))
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if _, err := NewModel(m.cfg, snap); err != nil {
		t.Fatalf("learned checkpoint does not build a model: %v", err)
	}
}

// TestCheckpointFinalWinsOverPeriodic races a periodic learner checkpoint
// against a drain: the drain-time final publication must wait for the
// in-flight periodic write, land last with the freshest tables, and latch
// the store shut against stragglers.
func TestCheckpointFinalWinsOverPeriodic(t *testing.T) {
	m := testModel(t, 3, 5)
	path := filepath.Join(t.TempDir(), "learned.ckpt")
	srv := newTestServer(t, m, nil, Config{
		CheckpointPath: path,
		Learn:          LearnConfig{Enabled: true, Manual: true, Seed: 1, SwapEvery: 1},
	})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	obs := testObs(m, 7, 2)
	for _, o := range obs {
		if _, err := sess.Decide(o); err != nil {
			t.Fatalf("Decide: %v", err)
		}
	}

	var renames atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	real := osHooks()
	srv.fs = fsHooks{
		syncFile: func(f *os.File) error {
			// Hold only the first write (the periodic one) mid-syscall.
			gateOnce.Do(func() {
				close(entered)
				<-release
			})
			return real.syncFile(f)
		},
		rename: func(o, n string) error {
			renames.Add(1)
			return real.rename(o, n)
		},
		syncDir: real.syncDir,
	}

	periodicDone := make(chan error, 1)
	go func() { periodicDone <- srv.publishCheckpoint(false) }()
	<-entered

	// While the periodic write is stalled inside fsync, a reward lands and
	// a drain begins. The drain snapshot must carry that reward.
	if _, err := sess.RewardSeq(1, -1); err != nil {
		t.Fatalf("RewardSeq: %v", err)
	}
	srv.LearnTick()
	wantSnap, ok := srv.LearnSnapshot()
	if !ok {
		t.Fatal("LearnSnapshot: learner missing")
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	select {
	case err := <-drainDone:
		t.Fatalf("drain completed while the periodic checkpoint held the store: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-periodicDone; err != nil {
		t.Fatalf("periodic publish: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := renames.Load(); got != 2 {
		t.Errorf("renames = %d, want 2 (periodic then final)", got)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	var wantBuf, gotBuf bytes.Buffer
	if err := wantSnap.EncodeCheckpoint(&wantBuf); err != nil {
		t.Fatalf("encode want: %v", err)
	}
	if err := got.EncodeCheckpoint(&gotBuf); err != nil {
		t.Fatalf("encode got: %v", err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Error("final checkpoint does not carry the drain-time tables")
	}

	// The final latch: a straggling periodic tick after drain is a no-op.
	if err := srv.publishCheckpoint(false); err != nil {
		t.Fatalf("post-drain periodic publish: %v", err)
	}
	if got := renames.Load(); got != 2 {
		t.Errorf("straggler wrote the store: renames = %d, want 2", got)
	}
}

// TestLearnDecideAllocFree extends the package's zero-allocation pin to a
// learning server: a learning-arm session's steady-state decide must stay
// allocation-free even as the learner swaps tables under it.
func TestLearnDecideAllocFree(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := learnServer(t, m)
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	obs := []Observation{{Utilization: 0.6, Level: 1}, {DemandRatio: 1.1, Level: 3}}
	levels := make([]int, 2)
	warm := func() {
		for i := 0; i < 10; i++ {
			if err := sess.DecideInto(obs, levels); err != nil {
				t.Fatal(err)
			}
		}
	}
	measure := func(when string) {
		if n := testing.AllocsPerRun(200, func() {
			if err := sess.DecideInto(obs, levels); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("DecideInto allocates %v times per call %s, want 0", n, when)
		}
	}
	swap := func(seq uint64) {
		if _, err := sess.RewardSeq(seq, -0.5); err != nil {
			t.Fatal(err)
		}
		srv.LearnTick()
	}

	warm()
	swap(1)
	if srv.PolicyVersion() == 0 {
		t.Fatal("no swap published; alloc pin would not cover the swapped path")
	}
	warm()
	measure("after the first table swap")
	v := srv.PolicyVersion()
	swap(2)
	if srv.PolicyVersion() == v {
		t.Fatal("second swap did not publish")
	}
	warm()
	measure("after a mid-stream table swap")
}
