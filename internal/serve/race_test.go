package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessionsMatchSerialOracle is the determinism stress test:
// many goroutines run full create/decide/reward/close lifecycles against
// one server (so their lookups coalesce into shared batches), and every
// session's decision stream must be byte-identical to a serial oracle that
// replays the same device-local logic with no server at all. Run under
// -race this also shakes the batcher, session registry, and metrics for
// data races.
func TestConcurrentSessionsMatchSerialOracle(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{MaxBatch: 8})

	const devices = 24
	const steps = 120
	type result struct {
		levels [][]int
		stats  SessionStats
		err    error
	}
	results := make([]result, devices)

	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			opts := SessionOptions{Seed: uint64(idx) + 1}
			if idx%2 == 1 { // half the fleet explores
				opts.Epsilon = 0.3
				opts.EpsilonMin = 0.05
				opts.EpsilonDecay = 0.995
			}
			sess, err := srv.CreateSession(opts)
			if err != nil {
				results[idx].err = err
				return
			}
			for i, obs := range testObs(m, uint64(idx)*31+5, steps) {
				lv, err := sess.Decide(obs)
				if err != nil {
					results[idx].err = fmt.Errorf("step %d: %w", i, err)
					return
				}
				results[idx].levels = append(results[idx].levels, lv)
				if i%25 == 24 {
					if _, err := sess.Reward(float64(-i)); err != nil {
						results[idx].err = fmt.Errorf("reward %d: %w", i, err)
						return
					}
				}
			}
			results[idx].stats, results[idx].err = srv.CloseSession(sess.ID())
		}(d)
	}
	wg.Wait()

	for d := 0; d < devices; d++ {
		if results[d].err != nil {
			t.Fatalf("device %d: %v", d, results[d].err)
		}
		if results[d].stats.Decisions != steps {
			t.Fatalf("device %d ledger says %d decisions, ran %d", d, results[d].stats.Decisions, steps)
		}
		opts := SessionOptions{Seed: uint64(d) + 1}
		if d%2 == 1 {
			opts.Epsilon = 0.3
			opts.EpsilonMin = 0.05
			opts.EpsilonDecay = 0.995
		}
		orc := newOracle(m, opts)
		for i, obs := range testObs(m, uint64(d)*31+5, steps) {
			want := orc.decide(obs)
			got := results[d].levels[i]
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("device %d step %d cluster %d: concurrent %d, serial oracle %d",
						d, i, c, got[c], want[c])
				}
			}
		}
	}

	met := srv.MetricsSnapshot()
	if met.Decisions != devices*steps {
		t.Fatalf("server counted %d decisions, fleet made %d", met.Decisions, devices*steps)
	}
	if met.SessionsCreated != devices || met.SessionsClosed != devices || met.Sessions != 0 {
		t.Fatalf("session accounting %+v after all devices closed", met)
	}
	if met.MaxBatchOccupancy > 8 {
		t.Fatalf("batch occupancy %d exceeded MaxBatch 8", met.MaxBatchOccupancy)
	}
}

// TestCloseRacesDecides shuts the server down while a fleet is mid-flight:
// every in-flight decide must resolve — either with levels or with
// ErrServerClosed — and nothing may hang or panic.
func TestCloseRacesDecides(t *testing.T) {
	m := testModel(t, 3, 5)
	srv, err := New(m, nil, Config{MaxBatch: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const devices = 16
	var wg sync.WaitGroup
	errs := make([]error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sess, err := srv.CreateSession(SessionOptions{Seed: uint64(idx)})
			if err != nil {
				if !errors.Is(err, ErrServerClosed) {
					errs[idx] = err
				}
				return
			}
			for _, obs := range testObs(m, uint64(idx)+100, 200) {
				if _, err := sess.Decide(obs); err != nil {
					if !errors.Is(err, ErrServerClosed) {
						errs[idx] = err
					}
					return
				}
			}
		}(d)
	}
	srv.Close()
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			t.Fatalf("device %d: unexpected error %v", d, err)
		}
	}
}
