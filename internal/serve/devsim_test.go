package serve

import (
	"testing"
)

// TestDeviceSeedDerivation pins the per-device seed formula. Every golden
// chaos fixture, the load generator, the sharded rebalance harness, and
// all differential oracles derive their streams through this function —
// from the device id only, never from the endpoint — so a silent change
// here would skew every byte-identical comparison in the suite.
func TestDeviceSeedDerivation(t *testing.T) {
	if got := DeviceSeed(1, 0); got != 1 {
		t.Fatalf("DeviceSeed(1, 0) = %d, want 1", got)
	}
	if got, want := DeviceSeed(1, 1), uint64(1+0x9e3779b9); got != want {
		t.Fatalf("DeviceSeed(1, 1) = %#x, want %#x", got, want)
	}
	if got, want := DeviceSeed(7, 100000), uint64(7+100000*0x9e3779b9); got != want {
		t.Fatalf("DeviceSeed(7, 100000) = %#x, want %#x", got, want)
	}
	// Device id only: the same (base, idx) always derives the same seed no
	// matter how a fleet run partitions devices over shards or workers.
	for idx := 0; idx < 64; idx++ {
		if DeviceSeed(3, idx) != DeviceSeed(3, idx) || DeviceSeed(3, idx) == DeviceSeed(4, idx) {
			t.Fatalf("seed derivation unstable at idx %d", idx)
		}
	}
}

// TestDeviceSimStreamEndpointIndependent is the regression for the
// loadgen RNG-derivation fix: the same device (same base seed + id) served
// by two *independent* server processes — as a sharded fleet would —
// produces the byte-identical decision sequence. The device stream depends
// on nothing but the device id and the frozen model.
func TestDeviceSimStreamEndpointIndependent(t *testing.T) {
	model := testModel(t, 8, 6)
	run := func(srv *Server) []int {
		t.Helper()
		sess, err := srv.CreateSession(SessionOptions{Epsilon: 0.2, Seed: DeviceSeed(5, 3)})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		seq, err := RunDeviceSim(DeviceSimConfig{
			Scenario: "gaming", Periods: 40, Seed: DeviceSeed(5, 3), RewardEvery: 10,
		}, func(_ int, obs []Observation) ([]int, error) {
			return sess.Decide(obs)
		}, func(r float64) error {
			_, err := sess.Reward(r)
			return err
		})
		if err != nil {
			t.Fatalf("device sim: %v", err)
		}
		return seq
	}

	srvA, err := New(model, nil, Config{})
	if err != nil {
		t.Fatalf("server A: %v", err)
	}
	defer srvA.Close()
	srvB, err := New(model, nil, Config{Epoch: 9}) // distinct incarnation
	if err != nil {
		t.Fatalf("server B: %v", err)
	}
	defer srvB.Close()

	// Warm server B with unrelated sessions first, so the device's stream
	// cannot depend on server-side session ordering or handle values.
	for i := 0; i < 5; i++ {
		if _, err := srvB.CreateSession(SessionOptions{Seed: 1000 + uint64(i)}); err != nil {
			t.Fatalf("warm session: %v", err)
		}
	}

	a, b := run(srvA), run(srvB)
	if !equalInts(a, b) {
		t.Fatalf("device stream differs across endpoints:\nA: %v\nB: %v", a[:16], b[:16])
	}
	if len(a) != 40*model.Clusters() {
		t.Fatalf("sequence length %d, want %d", len(a), 40*model.Clusters())
	}
}
