package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the Go client for a pmserve instance — the library cmd/pmload,
// the load generator, and the tests drive the server through, so every
// consumer exercises the same wire path a real device agent would.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:7421").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// do issues one JSON request and decodes the JSON answer into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The server content-negotiates /metrics (Prometheus text by
	// default); this client always speaks JSON.
	req.Header.Set("Accept", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("serve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("serve: health status %q", h.Status)
	}
	return nil
}

// WaitHealthy polls /healthz until the server answers or the deadline
// passes — the startup barrier load tests use instead of sleeps.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = c.Healthz(ctx); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("serve: server not healthy after %v: %w", timeout, last)
}

// Metrics fetches the server's observable state.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Events fetches the server's structured runtime event log.
func (c *Client) Events(ctx context.Context) (EventsResponse, error) {
	var e EventsResponse
	err := c.do(ctx, http.MethodGet, "/debug/events", nil, &e)
	return e, err
}

// SaveCheckpoint asks the server to persist its model.
func (c *Client) SaveCheckpoint(ctx context.Context) (CheckpointResponse, error) {
	var cr CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, &cr)
	return cr, err
}

// RemoteSession is a device session held over the wire.
type RemoteSession struct {
	c *Client
	// ID is the server-assigned session identifier.
	ID string
	// Clusters and NumLevels describe the served chip.
	Clusters  int
	NumLevels []int
}

// CreateSession opens a device session.
func (c *Client) CreateSession(ctx context.Context, opts SessionOptions) (*RemoteSession, error) {
	var resp CreateSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", opts, &resp); err != nil {
		return nil, err
	}
	return &RemoteSession{c: c, ID: resp.ID, Clusters: resp.Clusters, NumLevels: resp.NumLevels}, nil
}

// NumClusters returns the served chip's cluster count.
func (s *RemoteSession) NumClusters() int { return s.Clusters }

// Decide serves one control period.
func (s *RemoteSession) Decide(ctx context.Context, obs []Observation) ([]int, error) {
	var resp DecideResponse
	if err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/decide", DecideRequest{Observations: obs}, &resp); err != nil {
		return nil, err
	}
	return resp.Levels, nil
}

// Reward reports a device-computed reward.
func (s *RemoteSession) Reward(ctx context.Context, r float64) (SessionStats, error) {
	var st SessionStats
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/reward", RewardRequest{Reward: r}, &st)
	return st, err
}

// Close ends the session and returns its final ledger.
func (s *RemoteSession) Close(ctx context.Context) (SessionStats, error) {
	var st SessionStats
	err := s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.ID, nil, &st)
	return st, err
}
