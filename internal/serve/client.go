package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the Go client for a pmserve instance — the library cmd/pmload,
// the load generator, and the tests drive the server through, so every
// consumer exercises the same wire path a real device agent would.
//
// Like BinClient it is self-healing: error responses map onto the serve
// sentinels, sessions retry retryable failures with backoff (honouring the
// server's Retry-After hints), and a session the server no longer knows is
// transparently re-created from its mirror.
type Client struct {
	base string
	hc   *http.Client
	pol  *retryPolicy
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:7421").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
		pol:  newRetryPolicy(uint64(time.Now().UnixNano())),
	}
}

// SetTransport swaps the HTTP transport — the chaos tests inject their
// fault-wrapping round-tripper here.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// SetCallTimeout adjusts the per-request deadline (default 30s).
func (c *Client) SetCallTimeout(d time.Duration) { c.hc.Timeout = d }

// SetRetryBudget adjusts the total retry window per logical call
// (default 30s). 0 disables retries entirely.
func (c *Client) SetRetryBudget(d time.Duration) { c.pol.budget = d }

// TransportStats reports how hard the resilience machinery worked.
func (c *Client) TransportStats() BinClientStats {
	return BinClientStats{Retries: c.pol.retries.Load(), Resumes: c.pol.resumes.Load()}
}

// CloseIdleConnections releases pooled keep-alive connections — leak
// checks call this so idle HTTP goroutines do not read as leaks.
func (c *Client) CloseIdleConnections() {
	type closeIdler interface{ CloseIdleConnections() }
	rt := c.hc.Transport
	if rt == nil {
		rt = http.DefaultTransport
	}
	if ci, ok := rt.(closeIdler); ok {
		ci.CloseIdleConnections()
	}
}

// do issues one JSON request and decodes the JSON answer into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The server content-negotiates /metrics (Prometheus text by
	// default); this client always speaks JSON.
	req.Header.Set("Accept", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		return httpErr(method, path, resp, e)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A 200 whose body cannot be read or parsed — a server dying
		// mid-response truncates exactly here. The request's fate is
		// unknown, which is what ErrConnLost means; the retry dedups.
		return fmt.Errorf("%w: reading %s %s response: %v", ErrConnLost, method, path, err)
	}
	return nil
}

// httpErr turns an error response into the matching serve sentinel (via
// the machine-readable code), carrying any backoff hint as a
// BackoffError. Unknown codes degrade to an untyped formatted error.
func httpErr(method, path string, resp *http.Response, e errorResponse) error {
	var base error
	switch e.Code {
	case "unknown_session":
		base = ErrUnknownSession
	case "no_session":
		base = ErrNoSession
	case "session_closed":
		base = ErrSessionClosed
	case "server_closed":
		base = ErrServerClosed
	case "overloaded":
		base = ErrOverloaded
	case "bad_seq":
		base = ErrBadSeq
	}
	// A connection severed mid-response can truncate the error body,
	// leaving only the status line. Fall back to the status code so a
	// restart-window 404 still routes to the resume path instead of
	// surfacing as an untyped (unretryable) failure.
	if base == nil && e.Code == "" {
		switch resp.StatusCode {
		case http.StatusNotFound:
			base = ErrNoSession
		case http.StatusGone:
			base = ErrSessionClosed
		case http.StatusConflict:
			base = ErrBadSeq
		case http.StatusTooManyRequests:
			base = ErrOverloaded
		case http.StatusServiceUnavailable:
			base = ErrServerClosed
		}
	}
	msg := e.Error
	if msg == "" {
		msg = fmt.Sprintf("HTTP %d", resp.StatusCode)
	}
	var err error
	if base != nil {
		err = fmt.Errorf("%w: %s %s: %s", base, method, path, msg)
	} else {
		err = fmt.Errorf("serve: %s %s: %s (HTTP %d)", method, path, msg, resp.StatusCode)
	}
	ra := time.Duration(e.RetryAfterMs) * time.Millisecond
	if ra == 0 {
		if h := resp.Header.Get("Retry-After"); h != "" {
			if secs, perr := strconv.Atoi(h); perr == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
	}
	if ra > 0 {
		err = &BackoffError{Err: err, RetryAfter: ra}
	}
	return err
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var h HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("serve: health status %q", h.Status)
	}
	return nil
}

// WaitHealthy polls /healthz until the server answers or the deadline
// passes — the startup barrier load tests use instead of sleeps.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = c.Healthz(ctx); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("serve: server not healthy after %v: %w", timeout, last)
}

// Metrics fetches the server's observable state.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Events fetches the server's structured runtime event log.
func (c *Client) Events(ctx context.Context) (EventsResponse, error) {
	var e EventsResponse
	err := c.do(ctx, http.MethodGet, "/debug/events", nil, &e)
	return e, err
}

// SaveCheckpoint asks the server to persist its model.
func (c *Client) SaveCheckpoint(ctx context.Context) (CheckpointResponse, error) {
	var cr CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, &cr)
	return cr, err
}

// RemoteSession is a device session held over the wire.
type RemoteSession struct {
	c *Client
	// ID is the server-assigned session identifier.
	ID string
	// Epoch is the server incarnation that minted ID.
	Epoch uint32
	// Clusters and NumLevels describe the served chip.
	Clusters  int
	NumLevels []int

	mirror *sessionMirror // nil: no retry dedup or resume
	closed bool
}

// CreateSession opens a device session. The session carries a mirror of
// the server-side state, so its calls retry safely and survive server
// restarts via resume.
func (c *Client) CreateSession(ctx context.Context, opts SessionOptions) (*RemoteSession, error) {
	s := &RemoteSession{c: c}
	open := func() error {
		var resp CreateSessionResponse
		if err := c.do(ctx, http.MethodPost, "/v1/sessions", opts, &resp); err != nil {
			return err
		}
		s.ID, s.Epoch, s.Clusters, s.NumLevels = resp.ID, resp.Epoch, resp.Clusters, resp.NumLevels
		return nil
	}
	if err := open(); err != nil {
		if !retryableErr(err) {
			return nil, err
		}
		if err = runRetries(ctx, c.pol, err, open, nil); err != nil {
			return nil, err
		}
	}
	s.mirror = newSessionMirror(opts, s.NumLevels)
	return s, nil
}

// resume re-creates the session on the current server incarnation from
// the mirror, then adopts the fresh id/epoch.
func (s *RemoteSession) resume(ctx context.Context) error {
	st := s.mirror.resumeState()
	req := ResumeSessionRequest{
		Options:    st.Options,
		Epsilon:    st.Epsilon,
		Seq:        st.Seq,
		LastLevels: st.LastLevels,
		PrevDemand: st.PrevDemand,
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		RewardSum:  st.RewardSum,
	}
	for i, v := range st.Rng {
		req.Rng[i] = strconv.FormatUint(v, 16)
	}
	var resp CreateSessionResponse
	if err := s.c.do(ctx, http.MethodPost, "/v1/sessions/resume", req, &resp); err != nil {
		return err
	}
	s.ID, s.Epoch = resp.ID, resp.Epoch
	s.c.pol.resumes.Add(1)
	return nil
}

// onLost returns the resume hook for the retry loop, or nil for sessions
// without a mirror.
func (s *RemoteSession) onLost(ctx context.Context) func() error {
	if s.mirror == nil {
		return nil
	}
	return func() error { return s.resume(ctx) }
}

// NumClusters returns the served chip's cluster count.
func (s *RemoteSession) NumClusters() int { return s.Clusters }

// Decide serves one control period. With a mirror the request carries the
// session epoch and next sequence number, so retries deduplicate
// server-side and a decide that straddles a server restart resumes the
// session and replays byte-identically.
func (s *RemoteSession) Decide(ctx context.Context, obs []Observation) ([]int, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	var seq uint64
	if s.mirror != nil {
		seq = s.mirror.nextSeq()
	}
	var levels []int
	once := func() error {
		var resp DecideResponse
		err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/decide",
			DecideRequest{Epoch: s.Epoch, Seq: seq, Observations: obs}, &resp)
		if err != nil {
			return err
		}
		levels = resp.Levels
		return nil
	}
	err := once()
	if err != nil {
		err = runRetries(ctx, s.c.pol, err, once, s.onLost(ctx))
	}
	if err != nil {
		return nil, err
	}
	if s.mirror != nil {
		s.mirror.ackDecide(obs, levels)
	}
	return levels, nil
}

// Reward reports a device-computed reward. With a mirror the request
// carries the session epoch and the next reward sequence number, so a
// retry after a lost ack deduplicates server-side — the ledger counts it
// once and a learning server applies its Q-updates once.
func (s *RemoteSession) Reward(ctx context.Context, r float64) (SessionStats, error) {
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	var seq uint64
	if s.mirror != nil {
		seq = s.mirror.nextRewardSeq()
	}
	var st SessionStats
	once := func() error {
		var epoch uint32
		if s.mirror != nil {
			epoch = s.Epoch // read per attempt: a resume mints a fresh epoch
		}
		return s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/reward",
			RewardRequest{Reward: r, Epoch: epoch, Seq: seq}, &st)
	}
	err := once()
	if err != nil {
		err = runRetries(ctx, s.c.pol, err, once, s.onLost(ctx))
	}
	if err == nil && s.mirror != nil {
		s.mirror.ackReward(r)
	}
	return st, err
}

// Close ends the session and returns its final ledger. After a
// successful close the session is dead client-side: nothing resumes it.
func (s *RemoteSession) Close(ctx context.Context) (SessionStats, error) {
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	var st SessionStats
	once := func() error {
		return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.ID, nil, &st)
	}
	err := once()
	if err != nil {
		err = runRetries(ctx, s.c.pol, err, once, s.onLost(ctx))
	}
	if err == nil {
		s.closed = true
		s.mirror = nil
	}
	return st, err
}
