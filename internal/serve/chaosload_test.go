package serve

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rlpm/internal/chaos"
	"rlpm/internal/leaktest"
)

// chaosTestModel matches soc.DefaultChipSpec(): two clusters with 8 and 9
// OPPs — the chaos device loop simulates that chip, so the served model
// must agree on shape.
func chaosTestModel(t testing.TB) *Model { return testModel(t, 8, 9) }

// TestChaosZeroFaultsDifferential pins the do-no-harm contract: with every
// fault rate zero and no restart, the resilience machinery must be
// invisible — all decisions acked, zero retries, zero resumes, and every
// sequence identical to the in-process oracle. It doubles as the
// learning-disabled differential: the servers here run with the zero
// LearnConfig, so it proves the learner's reward-path plumbing (sequence
// tags, cohort hooks) leaves a frozen server byte-identical to seed
// behavior on both transports.
func TestChaosZeroFaultsDifferential(t *testing.T) {
	defer leaktest.Check(t)()
	for _, proto := range []string{"bin", "json"} {
		t.Run(proto, func(t *testing.T) {
			rep, err := RunChaos(context.Background(), chaosTestModel(t), ChaosConfig{
				Proto:   proto,
				Devices: 3,
				Periods: 40,
				Seed:    7,
				Epsilon: 0.2,
			})
			if err != nil {
				t.Fatalf("RunChaos: %v", err)
			}
			if want := uint64(3 * 40); rep.Decisions != want {
				t.Errorf("decisions = %d, want %d", rep.Decisions, want)
			}
			if rep.Mismatches != 0 {
				t.Errorf("mismatches = %d, want 0", rep.Mismatches)
			}
			if rep.Retries != 0 || rep.Resumes != 0 {
				t.Errorf("fault-free run used retries=%d resumes=%d, want 0/0", rep.Retries, rep.Resumes)
			}
		})
	}
}

// TestChaosFaultsBin injects drops, partial writes, and latency spikes on
// the binary transport and demands a perfect run anyway.
func TestChaosFaultsBin(t *testing.T) {
	defer leaktest.Check(t)()
	rep, err := RunChaos(context.Background(), chaosTestModel(t), ChaosConfig{
		Proto:   "bin",
		Devices: 4,
		Periods: 60,
		Seed:    11,
		Epsilon: 0.3,
		Faults: chaos.Config{
			DropRate:         0.02,
			PartialWriteRate: 0.05,
			LatencyRate:      0.05,
			LatencyFor:       2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if rep.ProxyDrops == 0 {
		t.Error("fault schedule injected no drops; test is vacuous")
	}
	if rep.Retries == 0 {
		t.Error("drops occurred but no call retried")
	}
}

// TestChaosRewardRetryDedup is the reward-path regression under chaos:
// with drops and partial writes injected, some reward acks are lost and
// retried — the sequence tags must answer those retries from the dedup
// ledger so the server's reward count still equals the client's acked
// count exactly (RunChaos enforces that invariant internally for
// restart-free runs). The fault schedule is seed-derived, so the test
// scans a few seeds and demands at least one actually exercised the
// dedup path; otherwise the run was vacuous.
func TestChaosRewardRetryDedup(t *testing.T) {
	defer leaktest.Check(t)()
	for _, proto := range []string{"bin", "json"} {
		t.Run(proto, func(t *testing.T) {
			deduped := false
			for seed := uint64(1); seed <= 8 && !deduped; seed++ {
				rep, err := RunChaos(context.Background(), chaosTestModel(t), ChaosConfig{
					Proto:       proto,
					Devices:     4,
					Periods:     40,
					Seed:        seed,
					Epsilon:     0.2,
					RewardEvery: 2,
					Faults: chaos.Config{
						DropRate:         0.04,
						PartialWriteRate: 0.04,
						LatencyRate:      0.02,
						LatencyFor:       time.Millisecond,
					},
				})
				if err != nil {
					t.Fatalf("RunChaos(seed %d): %v", seed, err)
				}
				if rep.RewardsAcked == 0 {
					t.Fatalf("seed %d acked no rewards", seed)
				}
				deduped = rep.RewardsDeduped > 0
			}
			if !deduped {
				t.Error("no seed exercised the reward dedup path; regression test is vacuous")
			}
		})
	}
}

// TestChaosCrashRestart kills the server abruptly mid-run; clients must
// ride through via retry + resume with nothing lost or changed.
func TestChaosCrashRestart(t *testing.T) {
	defer leaktest.Check(t)()
	rep, err := RunChaos(context.Background(), chaosTestModel(t), ChaosConfig{
		Proto:   "bin",
		Devices: 4,
		Periods: 50,
		Seed:    13,
		Epsilon: 0.25,
		Restart: "crash",
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", rep.Restarts)
	}
	if rep.Resumes == 0 {
		t.Error("server restarted but no session resumed")
	}
}

// TestChaosDrainRestartJSON drains the HTTP incarnation gracefully —
// verifying the farewell checkpoint is readable — then restarts it.
func TestChaosDrainRestartJSON(t *testing.T) {
	defer leaktest.Check(t)()
	rep, err := RunChaos(context.Background(), chaosTestModel(t), ChaosConfig{
		Proto:          "json",
		Devices:        3,
		Periods:        40,
		Seed:           17,
		Epsilon:        0.25,
		Restart:        "drain",
		CheckpointPath: filepath.Join(t.TempDir(), "drain.ckpt"),
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", rep.Restarts)
	}
	if !rep.DrainCheckpoint {
		t.Error("drain checkpoint was not written or did not load")
	}
}

// TestChaosConfigValidate covers the config error paths.
func TestChaosConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  ChaosConfig
		want string
	}{
		{ChaosConfig{Proto: "grpc"}.withDefaults(), "unknown chaos proto"},
		{ChaosConfig{Restart: "reboot"}.withDefaults(), "unknown restart mode"},
		{ChaosConfig{Restart: "drain"}.withDefaults(), "checkpoint path"},
		{ChaosConfig{Devices: -1}.withDefaults(), "at least one device"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.cfg, err, c.want)
		}
	}
}
