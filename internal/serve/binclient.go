// Binary-protocol client: the wire-frame counterpart of Client. All
// sessions multiplex one persistent TCP connection — requests are tagged
// with a client-unique id, a single reader goroutine dispatches responses
// back to the waiting callers, and concurrent writers coalesce their
// flushes — so a fleet of device sessions shares warm buffers and amortizes
// syscalls instead of paying dial, handshake, or HTTP framing per decision.

package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/wire"
)

// BinClient talks the internal/wire protocol to a ServeBin listener. One
// shared connection carries every session (the wire protocol's request ids
// exist precisely for this); a transport failure fails all in-flight calls
// and the next call redials.
type BinClient struct {
	addr    string
	timeout time.Duration // per-call deadline

	mu     sync.Mutex
	mc     *muxConn
	closed bool
}

// NewBinClient builds a client for a ServeBin address ("host:port").
func NewBinClient(addr string) *BinClient {
	return &BinClient{addr: addr, timeout: 30 * time.Second}
}

// Close tears down the shared connection; in-flight calls fail with the
// close error and later calls fail immediately.
func (c *BinClient) Close() {
	c.mu.Lock()
	mc := c.mc
	c.mc, c.closed = nil, true
	c.mu.Unlock()
	if mc != nil {
		mc.fail(errClientClosed)
	}
}

var errClientClosed = errors.New("serve: binary client closed")

// conn returns the live shared connection, dialing (or redialing after a
// failure) as needed.
func (c *BinClient) conn() (*muxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.mc != nil && !c.mc.broken() {
		return c.mc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	mc := &muxConn{
		c:       conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint32]*muxCall),
	}
	go mc.readLoop()
	c.mc = mc
	return mc, nil
}

// muxConn is the shared connection: a writer side coalescing concurrent
// frames into batched flushes and a reader goroutine dispatching response
// frames to pending calls by request id.
type muxConn struct {
	c     net.Conn
	br    *bufio.Reader
	reqID atomic.Uint32

	wmu   sync.Mutex // guards bw
	bw    *bufio.Writer
	wwait atomic.Int32 // writers queued behind wmu; last one out flushes

	pmu     sync.Mutex
	pending map[uint32]*muxCall
	err     error // first transport failure; poisons the connection
}

// muxCall is one in-flight request's rendezvous. Pooled: the response
// payload is copied into the call's own reusable buffer so the reader can
// move on to the next frame while the caller decodes.
type muxCall struct {
	ch    chan muxResp
	buf   []byte
	timer *time.Timer
}

type muxResp struct {
	hdr wire.Header
	err error
}

var muxCallPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &muxCall{ch: make(chan muxResp, 1), timer: t}
}}

func (mc *muxConn) broken() bool {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	return mc.err != nil
}

// fail poisons the connection and delivers err to every pending call.
func (mc *muxConn) fail(err error) {
	mc.pmu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	pend := mc.pending
	mc.pending = nil
	mc.pmu.Unlock()
	mc.c.Close()
	for _, call := range pend {
		call.ch <- muxResp{err: err}
	}
}

// readLoop is the connection's single reader: every response frame is
// matched to its pending call by the echoed request id; frames for
// abandoned calls (timeout, cancelled context) are dropped.
func (mc *muxConn) readLoop() {
	var hdr [wire.HeaderSize]byte
	var payload []byte
	for {
		h, p, err := wire.ReadFrame(mc.br, &hdr, payload)
		payload = p
		if err != nil {
			mc.fail(fmt.Errorf("serve: binary connection: %w", err))
			return
		}
		mc.pmu.Lock()
		call := mc.pending[h.ReqID]
		delete(mc.pending, h.ReqID)
		mc.pmu.Unlock()
		if call == nil {
			continue
		}
		call.buf = append(call.buf[:0], p...)
		call.ch <- muxResp{hdr: h}
	}
}

// call writes the frame in wbuf (its request id must be reqID) and waits
// for the matching response. On success the payload sits in the returned
// muxCall's buf; the caller must release it with putMuxCall after decoding.
func (c *BinClient) call(ctx context.Context, mc *muxConn, wbuf []byte, reqID uint32, wantType byte) (*muxCall, wire.Header, error) {
	call := muxCallPool.Get().(*muxCall)

	mc.pmu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.pmu.Unlock()
		muxCallPool.Put(call)
		return nil, wire.Header{}, err
	}
	mc.pending[reqID] = call
	mc.pmu.Unlock()

	// Last writer out flushes: while another writer is queued behind the
	// lock the buffered bytes ride its (or a later) flush, so back-to-back
	// requests from many sessions coalesce into one syscall.
	mc.wwait.Add(1)
	mc.wmu.Lock()
	mc.wwait.Add(-1)
	_, err := mc.bw.Write(wbuf)
	if err == nil && mc.wwait.Load() == 0 {
		err = mc.bw.Flush()
	}
	mc.wmu.Unlock()
	if err != nil {
		mc.fail(fmt.Errorf("serve: binary connection: %w", err))
		return nil, wire.Header{}, c.reap(mc, call, reqID, err)
	}

	call.timer.Reset(c.timeout)
	var r muxResp
	select {
	case r = <-call.ch:
		stopTimer(call.timer)
	case <-call.timer.C:
		return nil, wire.Header{}, c.reap(mc, call, reqID, fmt.Errorf("serve: binary call timed out after %v", c.timeout))
	case <-ctx.Done():
		stopTimer(call.timer)
		return nil, wire.Header{}, c.reap(mc, call, reqID, ctx.Err())
	}
	if r.err != nil {
		muxCallPool.Put(call)
		return nil, wire.Header{}, r.err
	}
	h := r.hdr
	if h.Type == wire.TError {
		var ef wire.ErrorFrame
		err := wire.ParseError(call.buf, &ef)
		if err == nil {
			err = binCodeErr(ef.Code, string(ef.Msg))
		}
		putMuxCall(call)
		return nil, h, err
	}
	if h.Type != wantType {
		putMuxCall(call)
		return nil, h, fmt.Errorf("serve: response type %d, want %d", h.Type, wantType)
	}
	return call, h, nil
}

// reap abandons a call that will get no usable response: its pending entry
// is removed so a late frame is dropped, and the call is only repooled if
// the reader has not already claimed it (claimed means a send to call.ch is
// in flight or delivered — drain it before reuse).
func (c *BinClient) reap(mc *muxConn, call *muxCall, reqID uint32, err error) error {
	mc.pmu.Lock()
	_, pendingStill := mc.pending[reqID]
	delete(mc.pending, reqID)
	mc.pmu.Unlock()
	if pendingStill {
		putMuxCall(call)
		return err
	}
	// The reader (or fail) already took the call: wait for its send so the
	// channel is empty, then repool.
	<-call.ch
	putMuxCall(call)
	return err
}

func putMuxCall(call *muxCall) { muxCallPool.Put(call) }

// stopTimer stops t and drains a concurrent fire, leaving it ready for the
// next Reset (the pre-Go-1.23 timer idiom; only the owning call goroutine
// ever receives from t.C outside the call select).
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// binCodeErr maps a wire error code back onto the serve-layer sentinels so
// callers can errors.Is against the same values on both protocols.
func binCodeErr(code uint16, msg string) error {
	var base error
	switch code {
	case wire.CodeNoSession:
		base = ErrNoSession
	case wire.CodeSessionClosed:
		base = ErrSessionClosed
	case wire.CodeServerClosed:
		base = ErrServerClosed
	case wire.CodeOverloaded:
		base = ErrOverloaded
	default:
		return fmt.Errorf("serve: remote error %d: %s", code, msg)
	}
	return fmt.Errorf("%w: %s", base, msg)
}

// BinSession is a device session resolved over the binary protocol — the
// wire counterpart of RemoteSession. Sessions are not individually
// goroutine-safe (each owns encode/decode scratch), matching RemoteSession's
// one-goroutine-per-device usage; different sessions share the connection
// freely.
type BinSession struct {
	c       *BinClient
	Handle  uint64
	ID      string // human-readable form of the handle, for reports
	Levels  []int  // per-cluster OPP counts
	wbuf    []byte
	wireObs []wire.Obs
	dok     wire.DecideOK
}

// OpenSession creates a session over the binary protocol.
func (c *BinClient) OpenSession(ctx context.Context, opts SessionOptions) (*BinSession, error) {
	s := &BinSession{c: c}
	mc, err := c.conn()
	if err != nil {
		return nil, err
	}
	reqID := mc.reqID.Add(1)
	s.wbuf = wire.FinishFrame(
		wire.AppendCreateReq(wire.BeginFrame(s.wbuf), wire.CreateReq{
			Epsilon:      opts.Epsilon,
			EpsilonMin:   opts.EpsilonMin,
			EpsilonDecay: opts.EpsilonDecay,
			Seed:         opts.Seed,
		}),
		wire.TCreate, reqID)
	call, _, err := c.call(ctx, mc, s.wbuf, reqID, wire.TCreateOK)
	if err != nil {
		return nil, err
	}
	var cok wire.CreateOK
	if err := wire.ParseCreateOK(call.buf, &cok); err != nil {
		putMuxCall(call)
		return nil, err
	}
	s.Handle = cok.Handle
	s.ID = fmt.Sprintf("h-%06d", cok.Handle)
	s.Levels = append([]int(nil), cok.NumLevels...)
	putMuxCall(call)
	return s, nil
}

// NumClusters returns the served chip's cluster count.
func (s *BinSession) NumClusters() int { return len(s.Levels) }

// Decide resolves one control period over the wire. The returned slice is
// freshly allocated; the session's encode/decode scratch is reused.
func (s *BinSession) Decide(ctx context.Context, obs []Observation) ([]int, error) {
	mc, err := s.c.conn()
	if err != nil {
		return nil, err
	}
	if cap(s.wireObs) < len(obs) {
		s.wireObs = make([]wire.Obs, len(obs))
	}
	wobs := s.wireObs[:len(obs)]
	for i, o := range obs {
		wobs[i] = wire.Obs{
			Utilization: o.Utilization,
			DemandRatio: o.DemandRatio,
			QoS:         o.QoS,
			ClusterQoS:  o.ClusterQoS,
			Critical:    o.Critical,
			Level:       o.Level,
		}
	}
	reqID := mc.reqID.Add(1)
	s.wbuf = wire.FinishFrame(
		wire.AppendDecideReq(wire.BeginFrame(s.wbuf), s.Handle, wobs),
		wire.TDecide, reqID)
	call, _, err := s.c.call(ctx, mc, s.wbuf, reqID, wire.TDecideOK)
	if err != nil {
		return nil, err
	}
	if err := wire.ParseDecideOK(call.buf, &s.dok); err != nil {
		putMuxCall(call)
		return nil, err
	}
	levels := append([]int(nil), s.dok.Levels...)
	putMuxCall(call)
	return levels, nil
}

// Reward reports a device-computed reward.
func (s *BinSession) Reward(ctx context.Context, r float64) (SessionStats, error) {
	return s.statsCall(ctx, wire.TReward, wire.TRewardOK, r)
}

// Close ends the session, returning its final ledger.
func (s *BinSession) Close(ctx context.Context) (SessionStats, error) {
	return s.statsCall(ctx, wire.TClose, wire.TCloseOK, 0)
}

func (s *BinSession) statsCall(ctx context.Context, typ, wantType byte, reward float64) (SessionStats, error) {
	mc, err := s.c.conn()
	if err != nil {
		return SessionStats{}, err
	}
	reqID := mc.reqID.Add(1)
	buf := wire.BeginFrame(s.wbuf)
	if typ == wire.TReward {
		buf = wire.AppendRewardReq(buf, wire.RewardReq{Handle: s.Handle, Reward: reward})
	} else {
		buf = wire.AppendCloseReq(buf, wire.CloseReq{Handle: s.Handle})
	}
	s.wbuf = wire.FinishFrame(buf, typ, reqID)
	call, _, err := s.c.call(ctx, mc, s.wbuf, reqID, wantType)
	if err != nil {
		return SessionStats{}, err
	}
	var st wire.Stats
	if err := wire.ParseStats(call.buf, &st); err != nil {
		putMuxCall(call)
		return SessionStats{}, err
	}
	putMuxCall(call)
	return SessionStats{
		ID:         s.ID,
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	}, nil
}
