// Binary-protocol client: the wire-frame counterpart of Client. All
// sessions multiplex one persistent TCP connection — requests are tagged
// with a client-unique id, a single reader goroutine dispatches responses
// back to the waiting callers, and concurrent writers coalesce their
// flushes — so a fleet of device sessions shares warm buffers and amortizes
// syscalls instead of paying dial, handshake, or HTTP framing per decision.
//
// The client is self-healing: a transport failure fails every in-flight
// call fast with ErrConnLost, the next attempt redials, and each session
// retries with backoff under its sequence number so the server can
// deduplicate. When the server no longer knows the session — it was
// restarted, or reaped the session as idle — the session transparently
// re-creates itself from its mirror (TResume) and the caller never sees
// the gap.

package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/wire"
)

// BinClient talks the internal/wire protocol to a ServeBin listener. One
// shared connection carries every session (the wire protocol's request ids
// exist precisely for this); a transport failure fails all in-flight calls
// and the next call redials.
type BinClient struct {
	addr    string
	timeout time.Duration // per-call deadline
	pol     *retryPolicy

	mu     sync.Mutex
	mc     *muxConn
	closed bool

	dials atomic.Uint64 // connections established (first dial + redials)
}

// NewBinClient builds a client for a ServeBin address ("host:port").
func NewBinClient(addr string) *BinClient {
	return &BinClient{
		addr:    addr,
		timeout: 30 * time.Second,
		pol:     newRetryPolicy(uint64(time.Now().UnixNano())),
	}
}

// SetCallTimeout adjusts the per-attempt deadline (default 30s). Chaos
// tests shorten it so a stalled connection turns into a retry quickly.
func (c *BinClient) SetCallTimeout(d time.Duration) { c.timeout = d }

// SetRetryBudget adjusts the total retry window per logical call
// (default 30s). The budget must cover a server restart for transparent
// resume to engage.
func (c *BinClient) SetRetryBudget(d time.Duration) { c.pol.budget = d }

// BinClientStats is the transport-resilience ledger.
type BinClientStats struct {
	Dials   uint64 // connections established, including redials
	Retries uint64 // call attempts beyond the first
	Resumes uint64 // sessions re-created from their mirror
}

// TransportStats reports how hard the resilience machinery worked.
func (c *BinClient) TransportStats() BinClientStats {
	return BinClientStats{
		Dials:   c.dials.Load(),
		Retries: c.pol.retries.Load(),
		Resumes: c.pol.resumes.Load(),
	}
}

// Close tears down the shared connection; in-flight calls fail with the
// close error and later calls fail immediately.
func (c *BinClient) Close() {
	c.mu.Lock()
	mc := c.mc
	c.mc, c.closed = nil, true
	c.mu.Unlock()
	if mc != nil {
		mc.fail(errClientClosed)
	}
}

var errClientClosed = errors.New("serve: binary client closed")

// conn returns the live shared connection, dialing (or redialing after a
// failure) as needed.
func (c *BinClient) conn() (*muxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.mc != nil && !c.mc.broken() {
		return c.mc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	c.dials.Add(1)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	mc := &muxConn{
		c:       conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint32]*muxCall),
	}
	go mc.readLoop()
	c.mc = mc
	return mc, nil
}

// muxConn is the shared connection: a writer side coalescing concurrent
// frames into batched flushes and a reader goroutine dispatching response
// frames to pending calls by request id.
type muxConn struct {
	c     net.Conn
	br    *bufio.Reader
	reqID atomic.Uint32

	wmu   sync.Mutex // guards bw
	bw    *bufio.Writer
	wwait atomic.Int32 // writers queued behind wmu; last one out flushes

	pmu     sync.Mutex
	pending map[uint32]*muxCall
	err     error // first transport failure; poisons the connection
}

// muxCall is one in-flight request's rendezvous. Pooled: the response
// payload is copied into the call's own reusable buffer so the reader can
// move on to the next frame while the caller decodes.
type muxCall struct {
	ch    chan muxResp
	buf   []byte
	timer *time.Timer
}

type muxResp struct {
	hdr wire.Header
	err error
}

var muxCallPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &muxCall{ch: make(chan muxResp, 1), timer: t}
}}

func (mc *muxConn) broken() bool {
	mc.pmu.Lock()
	defer mc.pmu.Unlock()
	return mc.err != nil
}

// fail poisons the connection and delivers err to every pending call —
// nothing waits out its full timeout once the transport is known dead.
// Transport errors are wrapped with ErrConnLost so callers (and the retry
// loop) see one typed signal regardless of the underlying failure;
// a deliberate client Close keeps its own sentinel.
func (mc *muxConn) fail(err error) {
	if !errors.Is(err, errClientClosed) && !errors.Is(err, ErrConnLost) {
		err = fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	mc.pmu.Lock()
	if mc.err == nil {
		mc.err = err
	} else {
		err = mc.err
	}
	pend := mc.pending
	mc.pending = nil
	mc.pmu.Unlock()
	mc.c.Close()
	for _, call := range pend {
		call.ch <- muxResp{err: err}
	}
}

// readLoop is the connection's single reader: every response frame is
// matched to its pending call by the echoed request id; frames for
// abandoned calls (timeout, cancelled context) are dropped. A read error
// — disconnect, corrupt frame — kills the whole connection: with one
// byte stream there is no way to resynchronize past a bad frame.
func (mc *muxConn) readLoop() {
	var hdr [wire.HeaderSize]byte
	var payload []byte
	for {
		h, p, err := wire.ReadFrame(mc.br, &hdr, payload)
		payload = p
		if err != nil {
			mc.fail(err)
			return
		}
		mc.pmu.Lock()
		call := mc.pending[h.ReqID]
		delete(mc.pending, h.ReqID)
		mc.pmu.Unlock()
		if call == nil {
			continue
		}
		call.buf = append(call.buf[:0], p...)
		call.ch <- muxResp{hdr: h}
	}
}

// call writes the frame in wbuf (its request id must be reqID) and waits
// for the matching response. On success the payload sits in the returned
// muxCall's buf; the caller must release it with putMuxCall after decoding.
func (c *BinClient) call(ctx context.Context, mc *muxConn, wbuf []byte, reqID uint32, wantType byte) (*muxCall, wire.Header, error) {
	call := muxCallPool.Get().(*muxCall)

	mc.pmu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.pmu.Unlock()
		muxCallPool.Put(call)
		return nil, wire.Header{}, err
	}
	mc.pending[reqID] = call
	mc.pmu.Unlock()

	// Last writer out flushes: while another writer is queued behind the
	// lock the buffered bytes ride its (or a later) flush, so back-to-back
	// requests from many sessions coalesce into one syscall.
	mc.wwait.Add(1)
	mc.wmu.Lock()
	mc.wwait.Add(-1)
	_, err := mc.bw.Write(wbuf)
	if err == nil && mc.wwait.Load() == 0 {
		err = mc.bw.Flush()
	}
	mc.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("%w: write: %v", ErrConnLost, err)
		mc.fail(err)
		return nil, wire.Header{}, c.reap(mc, call, reqID, err)
	}

	call.timer.Reset(c.timeout)
	var r muxResp
	select {
	case r = <-call.ch:
		stopTimer(call.timer)
	case <-call.timer.C:
		return nil, wire.Header{}, c.reap(mc, call, reqID, fmt.Errorf("%w: no response after %v", ErrCallTimeout, c.timeout))
	case <-ctx.Done():
		stopTimer(call.timer)
		return nil, wire.Header{}, c.reap(mc, call, reqID, ctx.Err())
	}
	if r.err != nil {
		muxCallPool.Put(call)
		return nil, wire.Header{}, r.err
	}
	h := r.hdr
	if h.Type == wire.TError {
		var ef wire.ErrorFrame
		err := wire.ParseError(call.buf, &ef)
		if err == nil {
			err = binCodeErr(ef.Code, ef.BackoffMs, string(ef.Msg))
		}
		putMuxCall(call)
		return nil, h, err
	}
	if h.Type != wantType {
		putMuxCall(call)
		return nil, h, fmt.Errorf("serve: response type %d, want %d", h.Type, wantType)
	}
	return call, h, nil
}

// reap abandons a call that will get no usable response: its pending entry
// is removed so a late frame is dropped, and the call is only repooled if
// the reader has not already claimed it (claimed means a send to call.ch is
// in flight or delivered — drain it before reuse).
func (c *BinClient) reap(mc *muxConn, call *muxCall, reqID uint32, err error) error {
	mc.pmu.Lock()
	_, pendingStill := mc.pending[reqID]
	delete(mc.pending, reqID)
	mc.pmu.Unlock()
	if pendingStill {
		putMuxCall(call)
		return err
	}
	// The reader (or fail) already took the call: wait for its send so the
	// channel is empty, then repool.
	<-call.ch
	putMuxCall(call)
	return err
}

func putMuxCall(call *muxCall) { muxCallPool.Put(call) }

// stopTimer stops t and drains a concurrent fire, leaving it ready for the
// next Reset (the pre-Go-1.23 timer idiom; only the owning call goroutine
// ever receives from t.C outside the call select).
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// binCodeErr maps a wire error code back onto the serve-layer sentinels so
// callers can errors.Is against the same values on both protocols. A
// backoff hint rides along as a BackoffError wrapper.
func binCodeErr(code uint16, backoffMs uint32, msg string) error {
	var base error
	switch code {
	case wire.CodeNoSession:
		base = ErrNoSession
	case wire.CodeUnknownSession:
		base = ErrUnknownSession
	case wire.CodeSessionClosed:
		base = ErrSessionClosed
	case wire.CodeServerClosed:
		base = ErrServerClosed
	case wire.CodeOverloaded:
		base = ErrOverloaded
	case wire.CodeBadRequest:
		base = ErrBadRequest
	default:
		return fmt.Errorf("serve: remote error %d: %s", code, msg)
	}
	err := fmt.Errorf("%w: %s", base, msg)
	if backoffMs > 0 {
		return &BackoffError{Err: err, RetryAfter: time.Duration(backoffMs) * time.Millisecond}
	}
	return err
}

// BinSession is a device session resolved over the binary protocol — the
// wire counterpart of RemoteSession. Sessions are not individually
// goroutine-safe (each owns encode/decode scratch), matching RemoteSession's
// one-goroutine-per-device usage; different sessions share the connection
// freely.
type BinSession struct {
	c      *BinClient
	Handle uint64
	Epoch  uint32 // server incarnation that minted Handle
	ID     string // human-readable form of the handle, for reports
	Levels []int  // per-cluster OPP counts

	mirror  *sessionMirror // nil: no retry dedup or resume (bare sessions)
	closed  bool
	wbuf    []byte
	wireObs []wire.Obs
	dok     wire.DecideOK
}

// OpenSession creates a session over the binary protocol. The session
// carries a mirror of the server-side state, so its calls retry safely
// across connection losses and survive server restarts via resume.
func (c *BinClient) OpenSession(ctx context.Context, opts SessionOptions) (*BinSession, error) {
	s := &BinSession{c: c}
	open := func() error {
		mc, err := c.conn()
		if err != nil {
			return err
		}
		reqID := mc.reqID.Add(1)
		s.wbuf = wire.FinishFrame(
			wire.AppendCreateReq(wire.BeginFrame(s.wbuf), wire.CreateReq{
				Epsilon:      opts.Epsilon,
				EpsilonMin:   opts.EpsilonMin,
				EpsilonDecay: opts.EpsilonDecay,
				Seed:         opts.Seed,
			}),
			wire.TCreate, reqID)
		call, _, err := c.call(ctx, mc, s.wbuf, reqID, wire.TCreateOK)
		if err != nil {
			return err
		}
		var cok wire.CreateOK
		if err := wire.ParseCreateOK(call.buf, &cok); err != nil {
			putMuxCall(call)
			return err
		}
		putMuxCall(call)
		s.Handle, s.Epoch = cok.Handle, cok.Epoch
		s.ID = fmt.Sprintf("h-%06d", cok.Handle)
		s.Levels = append([]int(nil), cok.NumLevels...)
		return nil
	}
	if err := open(); err != nil {
		// Retrying a lost create may leave an orphan session on the server;
		// the TTL reaper exists exactly to collect those.
		if !retryableErr(err) {
			return nil, err
		}
		if err = runRetries(ctx, c.pol, err, open, nil); err != nil {
			return nil, err
		}
	}
	s.mirror = newSessionMirror(opts, s.Levels)
	return s, nil
}

// runRetries is runWithRetry entered after a first failed attempt: err is
// classified, then op retried under the policy.
func runRetries(ctx ctxDone, pol *retryPolicy, err error, op func() error, onLost func() error) error {
	deadline := time.Now().Add(pol.budget)
	resumeStreak := 0
	for attempt := 0; ; attempt++ {
		var hint time.Duration
		var be *BackoffError
		if errors.As(err, &be) {
			hint = be.RetryAfter
		}
		switch {
		case onLost != nil && errors.Is(err, ErrNoSession):
			// Unknown or reaped session: re-create it from the mirror,
			// then retry the call against the fresh identity.
			resumeStreak++
			if resumeStreak > maxResumeStreak {
				return err
			}
			if rerr := onLost(); rerr != nil && !retryableErr(rerr) {
				return rerr
			}
		case retryableErr(err):
			resumeStreak = 0
		default:
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !time.Now().Before(deadline) {
			return err
		}
		pol.retries.Add(1)
		if serr := pol.sleep(ctx, attempt, hint); serr != nil {
			return serr
		}
		if err = op(); err == nil {
			return nil
		}
	}
}

// resume re-creates the session on the current server incarnation from
// the mirror, then adopts the fresh handle/epoch. The sequence number and
// RNG stream continue exactly where the lost session stopped.
func (s *BinSession) resume(ctx context.Context) error {
	st := s.mirror.resumeState()
	mc, err := s.c.conn()
	if err != nil {
		return err
	}
	reqID := mc.reqID.Add(1)
	rr := wire.ResumeReq{
		Opts: wire.CreateReq{
			Epsilon:      st.Options.Epsilon,
			EpsilonMin:   st.Options.EpsilonMin,
			EpsilonDecay: st.Options.EpsilonDecay,
			Seed:         st.Options.Seed,
		},
		EpsNow:     st.Epsilon,
		Seq:        st.Seq,
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		RewardSum:  st.RewardSum,
		Rng:        st.Rng,
		PrevDemand: st.PrevDemand,
		LastLevels: st.LastLevels,
	}
	s.wbuf = wire.FinishFrame(
		wire.AppendResumeReq(wire.BeginFrame(s.wbuf), &rr), wire.TResume, reqID)
	call, _, err := s.c.call(ctx, mc, s.wbuf, reqID, wire.TResumeOK)
	if err != nil {
		return err
	}
	var cok wire.CreateOK
	if err := wire.ParseCreateOK(call.buf, &cok); err != nil {
		putMuxCall(call)
		return err
	}
	putMuxCall(call)
	s.Handle, s.Epoch = cok.Handle, cok.Epoch
	s.ID = fmt.Sprintf("h-%06d", cok.Handle)
	s.c.pol.resumes.Add(1)
	return nil
}

// onLost returns the resume hook for the retry loop, or nil for bare
// sessions (no mirror — nothing to resume from).
func (s *BinSession) onLost(ctx context.Context) func() error {
	if s.mirror == nil {
		return nil
	}
	return func() error { return s.resume(ctx) }
}

// NumClusters returns the served chip's cluster count.
func (s *BinSession) NumClusters() int { return len(s.Levels) }

// Decide resolves one control period over the wire. The returned slice is
// freshly allocated; the session's encode/decode scratch is reused.
//
// With a mirror, the request carries the session epoch and the next
// sequence number: retries after a lost connection deduplicate on the
// server, and a decide that outlives the server itself resumes the
// session and replays against the new incarnation — by construction both
// yield the byte-identical decision. The fast path stays closure-free;
// the retry loop is only entered after a failure.
func (s *BinSession) Decide(ctx context.Context, obs []Observation) ([]int, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	var seq uint64
	if s.mirror != nil {
		seq = s.mirror.nextSeq()
	}
	levels, err := s.decideOnce(ctx, obs, seq)
	if err != nil {
		op := func() error {
			lv, e := s.decideOnce(ctx, obs, seq)
			if e == nil {
				levels = lv
			}
			return e
		}
		err = runRetries(ctx, s.c.pol, err, op, s.onLost(ctx))
	}
	if err != nil {
		return nil, err
	}
	if s.mirror != nil {
		s.mirror.ackDecide(obs, levels)
	}
	return levels, nil
}

// DecideMany resolves K consecutive control periods in one frame: obs
// carries K×clusters observations, period by period, and the returned
// slice carries K×clusters levels in the same order. The server computes
// the periods exactly as K sequential Decide calls would — byte-identical
// decisions — while the frame parse, session lookup, dedup bookkeeping,
// and syscalls amortize over K. Retry, dedup, and resume semantics match
// Decide: the frame is acknowledged (and the mirror advanced K periods)
// atomically, so a retried frame can never half-apply.
func (s *BinSession) DecideMany(ctx context.Context, obs []Observation) ([]int, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if k := len(s.Levels); len(obs) == 0 || len(obs)%k != 0 {
		return nil, fmt.Errorf("serve: %d observations for %d clusters", len(obs), k)
	}
	var seq uint64
	if s.mirror != nil {
		seq = s.mirror.nextSeq()
	}
	levels, err := s.decideOnce(ctx, obs, seq)
	if err != nil {
		op := func() error {
			lv, e := s.decideOnce(ctx, obs, seq)
			if e == nil {
				levels = lv
			}
			return e
		}
		err = runRetries(ctx, s.c.pol, err, op, s.onLost(ctx))
	}
	if err != nil {
		return nil, err
	}
	if s.mirror != nil {
		s.mirror.ackDecide(obs, levels)
	}
	return levels, nil
}

// decideOnce performs one decide attempt against the current session
// identity (rebuilt per attempt — handle and epoch change across resume).
func (s *BinSession) decideOnce(ctx context.Context, obs []Observation, seq uint64) ([]int, error) {
	mc, err := s.c.conn()
	if err != nil {
		return nil, err
	}
	if cap(s.wireObs) < len(obs) {
		s.wireObs = make([]wire.Obs, len(obs))
	}
	wobs := s.wireObs[:len(obs)]
	for i, o := range obs {
		wobs[i] = wire.Obs{
			Utilization: o.Utilization,
			DemandRatio: o.DemandRatio,
			QoS:         o.QoS,
			ClusterQoS:  o.ClusterQoS,
			Critical:    o.Critical,
			Level:       o.Level,
		}
	}
	reqID := mc.reqID.Add(1)
	s.wbuf = wire.FinishFrame(
		wire.AppendDecideReq(wire.BeginFrame(s.wbuf), s.Handle, s.Epoch, seq, wobs),
		wire.TDecide, reqID)
	call, _, err := s.c.call(ctx, mc, s.wbuf, reqID, wire.TDecideOK)
	if err != nil {
		return nil, err
	}
	if err := wire.ParseDecideOK(call.buf, &s.dok); err != nil {
		putMuxCall(call)
		return nil, err
	}
	levels := append([]int(nil), s.dok.Levels...)
	putMuxCall(call)
	return levels, nil
}

// Reward reports a device-computed reward. With a mirror the frame
// carries the session epoch and the next reward sequence number, so a
// retry after a lost ack deduplicates server-side — the ledger counts it
// once and a learning server applies its Q-updates once.
func (s *BinSession) Reward(ctx context.Context, r float64) (SessionStats, error) {
	var seq uint64
	if s.mirror != nil {
		seq = s.mirror.nextRewardSeq()
	}
	st, err := s.statsCall(ctx, wire.TReward, wire.TRewardOK, r, seq)
	if err == nil && s.mirror != nil {
		s.mirror.ackReward(r)
	}
	return st, err
}

// Close ends the session, returning its final ledger. After a successful
// close the session is dead client-side: no further call will resume it.
func (s *BinSession) Close(ctx context.Context) (SessionStats, error) {
	st, err := s.statsCall(ctx, wire.TClose, wire.TCloseOK, 0, 0)
	if err == nil {
		s.closed = true
		s.mirror = nil
	}
	return st, err
}

func (s *BinSession) statsCall(ctx context.Context, typ, wantType byte, reward float64, rewardSeq uint64) (SessionStats, error) {
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	var st wire.Stats
	once := func() error {
		mc, err := s.c.conn()
		if err != nil {
			return err
		}
		reqID := mc.reqID.Add(1)
		buf := wire.BeginFrame(s.wbuf)
		if typ == wire.TReward {
			var epoch uint32
			if s.mirror != nil {
				epoch = s.Epoch // read per attempt: a resume mints a fresh epoch
			}
			buf = wire.AppendRewardReq(buf, wire.RewardReq{
				Handle: s.Handle, Reward: reward, Epoch: epoch, Seq: rewardSeq,
			})
		} else {
			buf = wire.AppendCloseReq(buf, wire.CloseReq{Handle: s.Handle})
		}
		s.wbuf = wire.FinishFrame(buf, typ, reqID)
		call, _, err := s.c.call(ctx, mc, s.wbuf, reqID, wantType)
		if err != nil {
			return err
		}
		if err := wire.ParseStats(call.buf, &st); err != nil {
			putMuxCall(call)
			return err
		}
		putMuxCall(call)
		return nil
	}
	err := once()
	if err != nil {
		err = runRetries(ctx, s.c.pol, err, once, s.onLost(ctx))
	}
	if err != nil {
		return SessionStats{}, err
	}
	return SessionStats{
		ID:         s.ID,
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		MeanReward: st.MeanReward,
		Epsilon:    st.Epsilon,
	}, nil
}
