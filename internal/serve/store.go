package serve

import (
	"fmt"
	"os"
	"path/filepath"

	"rlpm/internal/core"
)

// fsHooks abstracts the syscalls whose ordering makes a checkpoint save
// durable. Production uses osHooks; the durability test swaps in
// recording hooks and asserts the write→sync→rename→dir-sync sequence.
type fsHooks struct {
	syncFile func(*os.File) error
	rename   func(oldpath, newpath string) error
	syncDir  func(dir string) error
}

func osHooks() fsHooks {
	return fsHooks{
		syncFile: (*os.File).Sync,
		rename:   os.Rename,
		syncDir:  syncDir,
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// POSIX only guarantees the rename is durable once the containing
// directory is synced; without this, a power cut right after a
// "successful" save can roll the directory entry back to the old
// checkpoint — or to nothing.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// SaveCheckpoint persists snap at path atomically and durably: the
// checkpoint encoding is written to a temporary file in the same
// directory, fsynced, renamed over the destination, and then the parent
// directory is fsynced, so a crash at any instant leaves either the old
// checkpoint or the new one — complete, and with its directory entry on
// disk. Returns the encoded size.
func SaveCheckpoint(path string, snap core.Snapshot) (int64, error) {
	return saveCheckpoint(path, snap, osHooks())
}

func saveCheckpoint(path string, snap core.Snapshot, fs fsHooks) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("serve: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := snap.EncodeCheckpoint(tmp); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: encoding checkpoint: %w", err)
	}
	if err := fs.syncFile(tmp); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: stat checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := fs.rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("serve: publishing checkpoint: %w", err)
	}
	if err := fs.syncDir(dir); err != nil {
		return 0, fmt.Errorf("serve: syncing checkpoint directory: %w", err)
	}
	return info.Size(), nil
}

// LoadCheckpoint reads and verifies a checkpoint file. Corruption and
// version mismatches surface as core's typed checkpoint errors.
func LoadCheckpoint(path string) (core.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Snapshot{}, fmt.Errorf("serve: opening checkpoint: %w", err)
	}
	defer f.Close()
	snap, err := core.DecodeCheckpoint(f)
	if err != nil {
		return core.Snapshot{}, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return snap, nil
}

// LoadModel builds a serving model from a checkpoint file, using cfg for
// everything the checkpoint does not record (reward terms, learning
// hyperparameters); cfg.State is overridden by the checkpoint's recorded
// state configuration — the file is authoritative about the encoding its
// tables were trained with.
func LoadModel(path string, cfg core.Config) (*Model, error) {
	snap, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg.State = snap.State
	return NewModel(cfg, snap)
}
