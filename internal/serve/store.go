package serve

import (
	"fmt"
	"os"
	"path/filepath"

	"rlpm/internal/core"
)

// SaveCheckpoint persists snap at path atomically: the checkpoint encoding
// is written to a temporary file in the same directory, synced, and
// renamed over the destination, so a crash mid-write can never leave a
// torn checkpoint where a server expects a valid one. Returns the encoded
// size.
func SaveCheckpoint(path string, snap core.Snapshot) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("serve: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := snap.EncodeCheckpoint(tmp); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: encoding checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("serve: stat checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("serve: publishing checkpoint: %w", err)
	}
	return info.Size(), nil
}

// LoadCheckpoint reads and verifies a checkpoint file. Corruption and
// version mismatches surface as core's typed checkpoint errors.
func LoadCheckpoint(path string) (core.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Snapshot{}, fmt.Errorf("serve: opening checkpoint: %w", err)
	}
	defer f.Close()
	snap, err := core.DecodeCheckpoint(f)
	if err != nil {
		return core.Snapshot{}, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	return snap, nil
}

// LoadModel builds a serving model from a checkpoint file, using cfg for
// everything the checkpoint does not record (reward terms, learning
// hyperparameters); cfg.State is overridden by the checkpoint's recorded
// state configuration — the file is authoritative about the encoding its
// tables were trained with.
func LoadModel(path string, cfg core.Config) (*Model, error) {
	snap, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg.State = snap.State
	return NewModel(cfg, snap)
}
