package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/rng"
	"rlpm/internal/sim"
)

// testSnapshot builds a deterministic snapshot with the given per-cluster
// OPP counts; table values come from a fixed rng stream so every test sees
// the same policy.
func testSnapshot(t testing.TB, levels ...int) (core.Config, core.Snapshot) {
	t.Helper()
	cfg := core.DefaultConfig()
	snap := core.Snapshot{State: cfg.State}
	r := rng.New(42)
	for _, n := range levels {
		states := cfg.State.States(n)
		table := make([][]float64, states)
		for s := range table {
			row := make([]float64, n)
			for a := range row {
				row[a] = r.Float64()*2 - 1
			}
			table[s] = row
		}
		snap.Tables = append(snap.Tables, table)
	}
	return cfg, snap
}

func testModel(t testing.TB, levels ...int) *Model {
	t.Helper()
	cfg, snap := testSnapshot(t, levels...)
	m, err := NewModel(cfg, snap)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// testObs generates a deterministic observation stream for one device:
// steps control periods over the model's cluster count.
func testObs(m *Model, seed uint64, steps int) [][]Observation {
	r := rng.New(seed)
	out := make([][]Observation, steps)
	for i := range out {
		obs := make([]Observation, m.Clusters())
		for c := range obs {
			obs[c] = Observation{
				Utilization: r.Float64(),
				DemandRatio: 1.5 * r.Float64(),
				QoS:         1.2 * r.Float64(),
				ClusterQoS:  1.2 * r.Float64(),
				Critical:    r.Float64() < 0.1,
				Level:       r.Intn(m.levels[c]),
			}
		}
		out[i] = obs
	}
	return out
}

// oracleDecide replicates Session.Decide's device-local logic serially:
// encode with trend history, explore with the session rng in cluster order,
// exploit via the frozen model, decay ε after the period.
type oracle struct {
	m          *Model
	eps        float64
	epsMin     float64
	epsDecay   float64
	r          *rng.Rand
	prevDemand []float64
}

func newOracle(m *Model, opts SessionOptions) *oracle {
	return &oracle{
		m: m, eps: opts.Epsilon, epsMin: opts.EpsilonMin, epsDecay: opts.EpsilonDecay,
		r: rng.New(opts.Seed), prevDemand: make([]float64, m.Clusters()),
	}
}

func (o *oracle) decide(obs []Observation) []int {
	levels := make([]int, len(obs))
	for i, ob := range obs {
		so := sim.Observation{
			Utilization: ob.Utilization, DemandRatio: ob.DemandRatio,
			QoS: ob.QoS, ClusterQoS: ob.ClusterQoS, Critical: ob.Critical,
			Level: ob.Level, NumLevels: o.m.levels[i],
		}
		state := o.m.cfg.EncodeState(so, o.prevDemand[i])
		o.prevDemand[i] = ob.DemandRatio
		if o.eps > 0 && o.r.Float64() < o.eps {
			levels[i] = o.r.Intn(o.m.levels[i])
			continue
		}
		levels[i] = o.m.Greedy(i, state)
	}
	if o.eps > 0 && o.epsDecay > 0 {
		o.eps *= o.epsDecay
		if o.eps < o.epsMin {
			o.eps = o.epsMin
		}
	}
	return levels
}

func newTestServer(t *testing.T, m *Model, backend Backend, cfg Config) *Server {
	t.Helper()
	srv, err := New(m, backend, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestModelGreedyTiesBreakLow(t *testing.T) {
	cfg := core.DefaultConfig()
	n := 3
	states := cfg.State.States(n)
	table := make([][]float64, states)
	for s := range table {
		table[s] = []float64{1, 1, 1} // all tied: index 0 must win
	}
	m, err := NewModel(cfg, core.Snapshot{State: cfg.State, Tables: [][][]float64{table}})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	for s := 0; s < states; s++ {
		if got := m.Greedy(0, s); got != 0 {
			t.Fatalf("state %d: tie broke to %d, want 0", s, got)
		}
	}
}

func TestNewModelRejectsMalformedSnapshots(t *testing.T) {
	cfg, snap := testSnapshot(t, 3)
	cases := map[string]func() (core.Config, core.Snapshot){
		"no tables": func() (core.Config, core.Snapshot) {
			return cfg, core.Snapshot{State: cfg.State}
		},
		"state mismatch": func() (core.Config, core.Snapshot) {
			s2 := snap
			s2.State.LoadBins++
			return cfg, s2
		},
		"wrong state count": func() (core.Config, core.Snapshot) {
			s2 := core.Snapshot{State: cfg.State, Tables: [][][]float64{snap.Tables[0][:4]}}
			return cfg, s2
		},
		"ragged row": func() (core.Config, core.Snapshot) {
			tbl := make([][]float64, len(snap.Tables[0]))
			copy(tbl, snap.Tables[0])
			tbl[1] = tbl[1][:2]
			return cfg, core.Snapshot{State: cfg.State, Tables: [][][]float64{tbl}}
		},
	}
	for name, mk := range cases {
		c, s := mk()
		if _, err := NewModel(c, s); err == nil {
			t.Errorf("%s: NewModel accepted a malformed snapshot", name)
		}
	}
}

func TestSessionGreedyMatchesOracle(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	orc := newOracle(m, SessionOptions{})
	for i, obs := range testObs(m, 7, 200) {
		got, err := sess.Decide(obs)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		want := orc.decide(obs)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("step %d cluster %d: server %d, oracle %d", i, c, got[c], want[c])
			}
		}
	}
}

func TestSessionExplorationIsDeviceLocal(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	opts := SessionOptions{Epsilon: 0.5, EpsilonMin: 0.05, EpsilonDecay: 0.99, Seed: 11}

	// Run the same session config twice with a perturbing neighbour in
	// between: its decision stream must be identical both times.
	run := func(perturb bool) [][]int {
		sess, err := srv.CreateSession(opts)
		if err != nil {
			t.Fatalf("CreateSession: %v", err)
		}
		var neighbour *Session
		if perturb {
			neighbour, err = srv.CreateSession(SessionOptions{Epsilon: 0.9, Seed: 99})
			if err != nil {
				t.Fatalf("CreateSession: %v", err)
			}
		}
		var streams [][]int
		for _, obs := range testObs(m, 3, 100) {
			if neighbour != nil {
				if _, err := neighbour.Decide(obs); err != nil {
					t.Fatalf("neighbour decide: %v", err)
				}
			}
			lv, err := sess.Decide(obs)
			if err != nil {
				t.Fatalf("decide: %v", err)
			}
			streams = append(streams, lv)
		}
		if _, err := srv.CloseSession(sess.ID()); err != nil {
			t.Fatalf("close: %v", err)
		}
		return streams
	}
	a, b := run(false), run(true)
	for i := range a {
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatalf("step %d cluster %d: %d without neighbour, %d with", i, c, a[i][c], b[i][c])
			}
		}
	}
}

func TestSessionDecideValidation(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if _, err := sess.Decide([]Observation{{}}); err == nil {
		t.Error("wrong observation count accepted")
	}
	if _, err := sess.Decide([]Observation{{Level: 3}, {}}); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := srv.CreateSession(SessionOptions{Epsilon: 1.5}); err == nil {
		t.Error("epsilon > 1 accepted")
	}
	if _, err := srv.CreateSession(SessionOptions{Epsilon: 0.1, EpsilonMin: 0.5}); err == nil {
		t.Error("epsilon floor above epsilon accepted")
	}
}

func TestServerSessionLifecycle(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	obs := testObs(m, 1, 1)[0]
	if _, err := sess.Decide(obs); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if _, err := sess.Reward(-1.5); err != nil {
		t.Fatalf("reward: %v", err)
	}
	st, err := srv.CloseSession(sess.ID())
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if st.Decisions != 1 || st.Rewards != 1 || st.MeanReward != -1.5 {
		t.Fatalf("final ledger %+v, want 1 decision, 1 reward, mean -1.5", st)
	}
	if _, err := sess.Decide(obs); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("decide after close: %v, want ErrSessionClosed", err)
	}
	if _, err := srv.Session(sess.ID()); !errors.Is(err, ErrNoSession) {
		t.Fatalf("lookup after close: %v, want ErrNoSession", err)
	}
	if _, err := srv.CloseSession("nope"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("close unknown: %v, want ErrNoSession", err)
	}
}

func TestServerCloseFailsPendingWork(t *testing.T) {
	m := testModel(t, 3, 5)
	srv, err := New(m, nil, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := sess.Decide(testObs(m, 1, 1)[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("decide after server close: %v, want ErrServerClosed", err)
	}
	if _, err := srv.CreateSession(SessionOptions{}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("create after server close: %v, want ErrServerClosed", err)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{CheckpointPath: filepath.Join(dir, "m.ckpt")})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := NewClient(hs.URL)
	ctx := context.Background()

	if err := client.WaitHealthy(ctx, 5*time.Second); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}
	sess, err := client.CreateSession(ctx, SessionOptions{Seed: 3})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.Clusters != 2 || len(sess.NumLevels) != 2 || sess.NumLevels[0] != 3 || sess.NumLevels[1] != 5 {
		t.Fatalf("session chip description %d clusters %v levels", sess.Clusters, sess.NumLevels)
	}

	orc := newOracle(m, SessionOptions{Seed: 3})
	for i, obs := range testObs(m, 21, 25) {
		levels, err := sess.Decide(ctx, obs)
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		want := orc.decide(obs)
		for c := range want {
			if levels[c] != want[c] {
				t.Fatalf("step %d cluster %d: wire %d, oracle %d", i, c, levels[c], want[c])
			}
		}
	}
	if _, err := sess.Reward(ctx, -0.25); err != nil {
		t.Fatalf("reward: %v", err)
	}

	cr, err := client.SaveCheckpoint(ctx)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cr.Bytes <= 0 {
		t.Fatalf("checkpoint reported %d bytes", cr.Bytes)
	}
	if _, err := LoadModel(cr.Path, core.DefaultConfig()); err != nil {
		t.Fatalf("reloading the checkpoint the server wrote: %v", err)
	}

	met, err := client.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if met.Backend != "sw" || met.Sessions != 1 || met.Decisions != 25 || met.Rewards != 1 {
		t.Fatalf("metrics %+v", met)
	}
	if met.LookupsServed != 25*2 {
		t.Fatalf("lookups_served %d, want 50 (greedy over 2 clusters)", met.LookupsServed)
	}
	if met.Batches == 0 || met.MeanBatchOccupancy < 1 {
		t.Fatalf("batch counters %d/%.2f", met.Batches, met.MeanBatchOccupancy)
	}
	if met.CheckpointAgeS < 0 {
		t.Fatalf("checkpoint age %.2f after a save", met.CheckpointAgeS)
	}

	st, err := sess.Close(ctx)
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if st.Decisions != 25 {
		t.Fatalf("final ledger %+v", st)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{}) // no checkpoint path
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	status := func(method, path, body string) int {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, hs.URL+path, rd)
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("do: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("POST", "/v1/sessions/s-999999/decide", `{"observations":[{}]}`); got != http.StatusNotFound {
		t.Errorf("unknown session decide: %d, want 404", got)
	}
	if got := status("DELETE", "/v1/sessions/s-999999", ""); got != http.StatusNotFound {
		t.Errorf("unknown session delete: %d, want 404", got)
	}
	if got := status("POST", "/v1/sessions", `{"epsilon": 7}`); got != http.StatusBadRequest {
		t.Errorf("bad epsilon: %d, want 400", got)
	}
	if got := status("POST", "/v1/sessions", `{not json`); got != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", got)
	}
	if got := status("POST", "/v1/checkpoint", ""); got != http.StatusInternalServerError {
		t.Errorf("checkpoint without a path: %d, want 500", got)
	}

	// A session that exists but gets a bad decide payload.
	client := NewClient(hs.URL)
	sess, err := client.CreateSession(context.Background(), SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if got := status("POST", "/v1/sessions/"+sess.ID+"/decide", `{"observations":[]}`); got != http.StatusBadRequest {
		t.Errorf("wrong observation count: %d, want 400", got)
	}

	met := srv.MetricsSnapshot()
	if met.HTTPErrors == 0 {
		t.Error("http_errors stayed zero through an error storm")
	}
	if met.CheckpointAgeS != -1 {
		t.Errorf("checkpoint age %.2f with no checkpoint, want -1", met.CheckpointAgeS)
	}
}

func TestHWBackendMatchesSW(t *testing.T) {
	m := testModel(t, 3, 5)
	sw := NewSWBackend(m)
	hw, err := NewHWBackend(m, DefaultHWBackendConfig())
	if err != nil {
		t.Fatalf("NewHWBackend: %v", err)
	}
	var lookups []Lookup
	for c, n := range m.levels {
		for s := 0; s < m.cfg.State.States(n); s++ {
			lookups = append(lookups, Lookup{Cluster: c, State: s})
		}
	}
	swOut := make([]int, len(lookups))
	hwOut := make([]int, len(lookups))
	if err := sw.Decide(lookups, swOut); err != nil {
		t.Fatalf("sw decide: %v", err)
	}
	if err := hw.Decide(lookups, hwOut); err != nil {
		t.Fatalf("hw decide: %v", err)
	}
	for i := range lookups {
		if swOut[i] != hwOut[i] {
			t.Fatalf("lookup %+v: sw %d, hw %d", lookups[i], swOut[i], hwOut[i])
		}
	}
	if st := hw.statsSnapshot(); st.Decisions != uint64(len(lookups)) || st.Degraded != 0 {
		t.Fatalf("hw stats %+v after a clean sweep of %d lookups", st, len(lookups))
	}
}

func TestHWBackendDegradesUnderFaults(t *testing.T) {
	m := testModel(t, 3, 5)
	inj, err := fault.NewInjector(fault.Config{Seed: 5, ReadErrorRate: 0.2, TimeoutRate: 0.05})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	cfg := DefaultHWBackendConfig()
	cfg.Injector = inj
	hw, err := NewHWBackend(m, cfg)
	if err != nil {
		t.Fatalf("NewHWBackend: %v", err)
	}
	srv := newTestServer(t, m, hw, Config{})
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	orc := newOracle(m, SessionOptions{})
	for i, obs := range testObs(m, 13, 150) {
		got, err := sess.Decide(obs)
		if err != nil {
			t.Fatalf("step %d: decide failed under faults: %v", i, err)
		}
		// Retried hardware answers and software degradations both resolve
		// to the same frozen greedy policy — availability and correctness
		// survive the injector.
		want := orc.decide(obs)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("step %d cluster %d: faulty hw served %d, oracle %d", i, c, got[c], want[c])
			}
		}
	}
	met := srv.MetricsSnapshot()
	if met.HW == nil {
		t.Fatal("hw stats missing from metrics")
	}
	if met.HW.Retries == 0 && met.HW.Degraded == 0 {
		t.Fatalf("injector at 20%% read errors exercised neither retries nor degradation: %+v", met.HW)
	}
}

// TestCheckpointMidRunRestore is the acceptance gate: a checkpoint saved
// mid-run must restore to a server whose greedy decisions are identical to
// the uninterrupted run's.
func TestCheckpointMidRunRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mid.ckpt")
	m := testModel(t, 3, 5)
	seq := testObs(m, 77, 300)
	mid := len(seq) / 2

	// Uninterrupted run, checkpointing at the midpoint.
	srvA := newTestServer(t, m, nil, Config{CheckpointPath: path})
	sessA, err := srvA.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	levelsA := make([][]int, 0, len(seq))
	for i, obs := range seq {
		if i == mid {
			if _, err := SaveCheckpoint(path, srvA.Model().Snapshot()); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
		lv, err := sessA.Decide(obs)
		if err != nil {
			t.Fatalf("run A step %d: %v", i, err)
		}
		levelsA = append(levelsA, lv)
	}

	// Restored server: same session shape, same observation stream.
	m2, err := LoadModel(path, core.DefaultConfig())
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	srvB := newTestServer(t, m2, nil, Config{})
	sessB, err := srvB.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for i, obs := range seq {
		lv, err := sessB.Decide(obs)
		if err != nil {
			t.Fatalf("run B step %d: %v", i, err)
		}
		for c := range lv {
			if lv[c] != levelsA[i][c] {
				t.Fatalf("step %d cluster %d: restored server chose %d, original chose %d", i, c, lv[c], levelsA[i][c])
			}
		}
	}
}
