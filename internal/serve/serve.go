// Package serve is the fleet-scale decision-serving subsystem: it hosts a
// trained power-management policy as a shared, frozen resource and serves
// OPP decisions to many managed devices over HTTP/JSON.
//
// The journal extension's headline is that the policy's decision latency is
// what makes it deployable; this package turns the single-process
// reproduction into a client/server inference stack shaped like a
// production deployment:
//
//   - a Model is an immutable Q-table set (one table per DVFS domain)
//     built from a core.Snapshot — trained in software, loaded from a
//     checkpoint, or both;
//   - each managed device owns a Session with device-local exploration
//     state (ε schedule, RNG stream, demand-trend history), so serving a
//     fleet never entangles one device's stochastic behaviour with
//     another's;
//   - concurrent decide requests are coalesced into batched lookups
//     against the shared model, mirroring internal/hwpolicy/batch.go's
//     multi-channel design: the expensive resource (the accelerator's MMIO
//     conversation, or simply cache-warm table walks) is driven by one
//     consumer at maximal occupancy instead of by every request
//     individually;
//   - the backend is an A/B flag: the software table walk and the modeled
//     hardware accelerator (optionally wrapped with internal/fault's
//     injector) serve the same API, so HW-vs-SW serving latency is one
//     command-line switch apart;
//   - trained tables persist through the versioned, checksummed checkpoint
//     codec (core.EncodeCheckpoint) with atomic write-rename, so a server
//     restart resumes the exact frozen policy.
//
// Observable state — sessions, decisions served, batch occupancy,
// checkpoint age — is exported via /metrics and /healthz, so load tests
// assert on counters instead of sleeps.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/core"
	"rlpm/internal/obs"
	"rlpm/internal/rng"
	"rlpm/internal/sim"
)

// ErrServerClosed is returned by decision paths once the server has shut
// down.
var ErrServerClosed = errors.New("serve: server closed")

// ErrSessionClosed is returned when a request addresses a closed session.
var ErrSessionClosed = errors.New("serve: session closed")

// ErrNoSession is returned when a request addresses an unknown session id.
var ErrNoSession = errors.New("serve: no such session")

// ErrUnknownSession is returned when an epoch-carrying request addresses a
// session this server incarnation does not know — the handle is stale or
// the epoch belongs to a previous process. It wraps ErrNoSession (so
// existing not-found handling still fires) but is distinguishable with
// errors.Is, because the recovery differs: an unknown session is
// *resumable* — the client re-creates it from its last acked state —
// while a plainly missing session is a caller bug.
var ErrUnknownSession = fmt.Errorf("%w (stale handle or epoch; resume required)", ErrNoSession)

// ErrBadSeq is returned when a decide's sequence number is neither the
// next expected one nor a replay of the last served one. It means the
// client and server disagree about history — retrying cannot help.
var ErrBadSeq = errors.New("serve: bad request sequence")

// ErrOverloaded is returned when the batcher's submission ring is full:
// the server is shedding load instead of queueing unboundedly. Callers
// should back off and retry; the HTTP layer maps it to 429, the binary
// protocol to CodeOverloaded.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrBadRequest is the client-side sentinel for a remote CodeBadRequest
// rejection: the server understood the transport but refused the request
// itself (malformed frame payload, wrong cluster count). Retrying the same
// bytes cannot help, so the retry loop treats it as terminal. The router
// forwards it unchanged — the device client is the party that must fix
// its request.
var ErrBadRequest = errors.New("serve: bad request")

// Model is the shared frozen policy: per-cluster Q-tables plus the state
// encoding they were trained with. A Model is immutable after construction
// and safe for concurrent readers.
type Model struct {
	cfg    core.Config
	levels []int         // per-cluster OPP counts
	tables [][][]float64 // [cluster][state][action], deep-copied
	// flat is the contiguous row-major arena the serving read path prefers:
	// one offset computation per lookup instead of a pointer chase, and
	// batch lookups walk it in sorted order (see core.FlatTables). nil when
	// the shape cannot be packed — readers fall back to the pointer walk.
	flat *core.FlatTables
}

// NewModel builds a Model from a snapshot. cfg supplies the state encoding
// and must match the snapshot's recorded StateConfig; table shapes are
// validated against it.
func NewModel(cfg core.Config, snap core.Snapshot) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snap.State != cfg.State {
		return nil, fmt.Errorf("serve: snapshot state config %+v != serving config %+v", snap.State, cfg.State)
	}
	if len(snap.Tables) == 0 {
		return nil, fmt.Errorf("serve: snapshot has no tables")
	}
	m := &Model{cfg: cfg}
	for c, t := range snap.Tables {
		if len(t) == 0 || len(t[0]) == 0 {
			return nil, fmt.Errorf("serve: cluster %d table is empty", c)
		}
		actions := len(t[0])
		if len(t) != cfg.State.States(actions) {
			return nil, fmt.Errorf("serve: cluster %d table has %d states, config needs %d for %d actions",
				c, len(t), cfg.State.States(actions), actions)
		}
		cp := make([][]float64, len(t))
		for i, row := range t {
			if len(row) != actions {
				return nil, fmt.Errorf("serve: cluster %d row %d has %d actions, row 0 has %d", c, i, len(row), actions)
			}
			cp[i] = append([]float64(nil), row...)
		}
		m.tables = append(m.tables, cp)
		m.levels = append(m.levels, actions)
	}
	m.flat = core.NewFlatTables(m.tables)
	return m, nil
}

// ModelFromPolicy freezes a trained software policy into a serving model.
func ModelFromPolicy(p *core.Policy, cfg core.Config) (*Model, error) {
	snap, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	return NewModel(cfg, snap)
}

// Clusters returns the number of DVFS domains the model decides for.
func (m *Model) Clusters() int { return len(m.levels) }

// NumLevels returns a copy of the per-cluster OPP counts.
func (m *Model) NumLevels() []int { return append([]int(nil), m.levels...) }

// Config returns the serving configuration (state encoding, reward terms).
func (m *Model) Config() core.Config { return m.cfg }

// Snapshot exports the model as a deep-copied snapshot, ready for
// checkpointing.
func (m *Model) Snapshot() core.Snapshot {
	s := core.Snapshot{State: m.cfg.State}
	for _, t := range m.tables {
		cp := make([][]float64, len(t))
		for i, row := range t {
			cp[i] = append([]float64(nil), row...)
		}
		s.Tables = append(s.Tables, cp)
	}
	return s
}

// Greedy returns the argmax action for (cluster, state); ties break low,
// matching core.Agent and the hardware comparator tree.
func (m *Model) Greedy(cluster, state int) int {
	if m.flat != nil {
		return m.flat.Argmax(cluster, state)
	}
	row := m.tables[cluster][state]
	best, idx := row[0], 0
	for i := 1; i < len(row); i++ {
		if row[i] > best {
			best, idx = row[i], i
		}
	}
	return idx
}

// Observation is the wire form of one cluster's telemetry for one control
// period — the subset of sim.Observation a remote device reports.
type Observation struct {
	Utilization float64 `json:"utilization"`
	DemandRatio float64 `json:"demand_ratio"`
	QoS         float64 `json:"qos"`
	ClusterQoS  float64 `json:"cluster_qos"`
	Critical    bool    `json:"critical"`
	Level       int     `json:"level"`
}

// Cohort names for SessionOptions.Cohort. On a learning server the cohort
// is the A/B arm: learning sessions read the live (swapped) policy and
// their rewards feed the learner; frozen sessions read the construction
// model forever and their rewards only feed the ledger. On a non-learning
// server both behave identically (there is nothing to diverge from).
const (
	CohortLearning = "learning"
	CohortFrozen   = "frozen"
)

// SessionOptions parameterize a device session at creation.
type SessionOptions struct {
	// Epsilon is the device-local exploration rate. 0 (the default) serves
	// pure greedy decisions — the deployment mode.
	Epsilon float64 `json:"epsilon,omitempty"`
	// EpsilonMin floors the decayed exploration rate.
	EpsilonMin float64 `json:"epsilon_min,omitempty"`
	// EpsilonDecay multiplies ε after every decision; 0 means no decay.
	EpsilonDecay float64 `json:"epsilon_decay,omitempty"`
	// Seed drives the session's exploration stream.
	Seed uint64 `json:"seed,omitempty"`
	// Cohort is the A/B arm on a learning server: "" or CohortLearning
	// follows the live policy and feeds the learner, CohortFrozen is pinned
	// to the construction-time model as the control arm.
	Cohort string `json:"cohort,omitempty"`
}

func (o SessionOptions) validate() error {
	if o.Epsilon < 0 || o.Epsilon > 1 {
		return fmt.Errorf("serve: epsilon %v out of [0,1]", o.Epsilon)
	}
	if o.EpsilonMin < 0 || o.EpsilonMin > o.Epsilon {
		return fmt.Errorf("serve: epsilon floor %v out of [0,%v]", o.EpsilonMin, o.Epsilon)
	}
	if o.EpsilonDecay < 0 || o.EpsilonDecay > 1 {
		return fmt.Errorf("serve: epsilon decay %v out of [0,1]", o.EpsilonDecay)
	}
	if o.Cohort != "" && o.Cohort != CohortLearning && o.Cohort != CohortFrozen {
		return fmt.Errorf("serve: unknown cohort %q", o.Cohort)
	}
	return nil
}

// SessionStats is the per-session ledger returned by reward and close.
type SessionStats struct {
	ID         string  `json:"id"`
	Decisions  uint64  `json:"decisions"`
	Rewards    uint64  `json:"rewards"`
	MeanReward float64 `json:"mean_reward"`
	Epsilon    float64 `json:"epsilon"`
}

// Session is one managed device's serving state. All exploration state is
// device-local; the Q-tables are shared and frozen. Methods serialize on
// the session's own mutex, so one device's request stream is totally
// ordered while different devices proceed concurrently.
type Session struct {
	id     string
	handle uint64 // numeric identity for the binary protocol
	srv    *Server

	mu         sync.Mutex
	closed     bool
	eps        float64
	epsMin     float64
	epsDecay   float64
	r          *rng.Rand
	prevDemand []float64

	// Retry dedup: lastSeq is the highest sequence number served,
	// lastLevels the decisions of the frame that served it, lastPeriods how
	// many control periods that frame carried (its first period's seq is
	// lastSeq-lastPeriods+1). A retry carrying that first seq with the same
	// period count replays the cached frame without touching the RNG or
	// demand history, so a response lost to the network can never produce a
	// divergent second decision.
	lastSeq     uint64
	lastLevels  []int
	lastPeriods int

	// lastRewardSeq mirrors lastSeq for the reward path: the highest reward
	// sequence number applied. A retry carrying the same seq replays the
	// current ledger without re-applying — the reward-path half of the
	// exactly-once story (decides have lastSeq/lastLevels).
	lastRewardSeq uint64

	// frozen pins the session to the construction-time model: its lookups
	// bypass the batcher (which reads the live, swapped policy) and its
	// rewards never feed the learner — the control arm of the A/B.
	frozen bool

	// Transition tracking for the learner: the per-cluster (state, action)
	// of the last two *committed* control periods. Only decideFinishLocked
	// advances these, so aborted and replayed decides leave the learning
	// history untouched. Allocated only on a learning server for
	// non-frozen sessions; nil otherwise.
	prevStates  []int
	prevActions []int
	curStates   []int
	curActions  []int
	havePrev    bool
	haveCur     bool
	txnStates   []int // scratch: encoded state per (period, cluster) of the open txn

	lastActive atomic.Int64 // unix nanos of the last request, for TTL reaping

	decisions  uint64
	rewards    uint64
	rewardSum  float64
	simObs     []sim.Observation // scratch: wire → encoder form
	lookups    []Lookup          // scratch: exploit lookups of one decide
	lookupsIdx []int             // scratch: levels index of each lookup
	lookupOut  []int             // scratch: batch results of one decide
	demandSave []float64         // scratch: prevDemand snapshot for rollback
	epsSave    float64           // scratch: ε snapshot for rollback
	rngSave    [4]uint64         // scratch: RNG snapshot for rollback
	txnSeq     uint64            // open decide transaction: first period's seq
	txnPeriods int               // open decide transaction: period count
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Handle returns the session's numeric identity — what the binary protocol
// carries instead of the string id, so the hot path never formats or hashes
// strings.
func (s *Session) Handle() uint64 { return s.handle }

// Decide serves one or more control periods: encodes each cluster's
// observation into the discrete state (using the session-local
// demand-trend history), explores with the session-local ε/RNG, and
// resolves all exploitation lookups through the server's shared batch
// path. obs may carry K consecutive periods (K×clusters entries, period
// by period); the returned slice is freshly allocated with one level per
// observation. The binary protocol's hot path uses DecideInto with a
// caller-owned slice instead.
func (s *Session) Decide(obs []Observation) ([]int, error) {
	levels := make([]int, len(obs))
	if err := s.DecideInto(obs, levels); err != nil {
		return nil, err
	}
	return levels, nil
}

// DecideInto is Decide writing the chosen level per observation into
// levels, which must have length len(obs). All working state is
// session-owned scratch, so a warmed session decides with zero
// allocations.
func (s *Session) DecideInto(obs []Observation, levels []int) error {
	_, err := s.DecideSeq(0, obs, levels)
	return err
}

// DecideSeq is DecideInto with retry deduplication. seq 0 is the legacy
// unsequenced path. Otherwise seq must be the first period's sequence
// number: the session's next one (lastSeq+1) — the whole frame is
// computed and cached — or a replay of the last served frame's first seq
// with the same period count, which returns the cached frame with
// replayed=true and advances nothing: no RNG draws, no demand-history
// write, no ledger bump. Any other seq fails with ErrBadSeq. A K-period
// frame consumes K sequence numbers; lastSeq afterwards is seq+K-1.
//
// The compute path is transactional: the exploration RNG, ε, and the
// demand-trend history are snapshotted before any mutation and rolled
// back if the batched lookup fails (overload, shutdown), so a client
// retry after a shed request replays the exact same stochastic draws and
// can never diverge from a client-side mirror of the session. A K-period
// frame draws, decays ε, and updates demand history exactly as K
// sequential single-period decides would — byte-identical decisions —
// while paying one lock, one batch dispatch, and one dedup check.
func (s *Session) DecideSeq(seq uint64, obs []Observation, levels []int) (replayed bool, err error) {
	if err := s.srv.model.decideValidate(obs, levels); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	replayed, err = s.decideBeginLocked(seq, obs, levels)
	if replayed || err != nil {
		return replayed, err
	}
	if len(s.lookups) > 0 {
		if s.frozen {
			// Control arm: resolve inline against the immutable
			// construction model instead of the batcher's live (possibly
			// learner-swapped) policy. The model is read-only, so this
			// takes no lock and cannot fail.
			m := s.srv.model
			for j, l := range s.lookups {
				levels[s.lookupsIdx[j]] = m.Greedy(l.Cluster, l.State)
			}
		} else {
			if cap(s.lookupOut) < len(s.lookups) {
				s.lookupOut = make([]int, len(s.lookups))
			}
			out := s.lookupOut[:len(s.lookups)]
			if err := s.srv.batch.Do(s.lookups, out); err != nil {
				s.decideAbortLocked()
				return false, err
			}
			for j, a := range out {
				levels[s.lookupsIdx[j]] = a
			}
		}
	}
	s.decideFinishLocked(levels)
	return false, nil
}

// decideValidate checks a decide's shape against the frozen model: a
// positive whole number of periods, one level slot per observation, and
// every reported level in range. Read-only on the immutable model, so it
// runs before the session lock is taken.
func (m *Model) decideValidate(obs []Observation, levels []int) error {
	k := m.Clusters()
	if len(obs) == 0 || len(obs)%k != 0 {
		return fmt.Errorf("serve: %d observations for %d clusters", len(obs), k)
	}
	if len(levels) != len(obs) {
		return fmt.Errorf("serve: %d level slots for %d observations", len(levels), len(obs))
	}
	for i, o := range obs {
		c := i % k
		if o.Level < 0 || o.Level >= m.levels[c] {
			return fmt.Errorf("serve: cluster %d level %d out of [0,%d)", c, o.Level, m.levels[c])
		}
		if err := m.cfg.ValidateObservation(sim.Observation{
			Utilization: o.Utilization,
			DemandRatio: o.DemandRatio,
			QoS:         o.QoS,
			ClusterQoS:  o.ClusterQoS,
		}); err != nil {
			// NaN/Inf/negative ratios would discretize onto a valid bin and
			// silently poison a learning server's Q-table; reject them at
			// the door as a client error.
			return fmt.Errorf("%w: cluster %d: %v", ErrBadRequest, c, err)
		}
	}
	return nil
}

// decideBeginLocked opens a decide transaction: dedup check, rollback
// snapshot, then state encoding and exploration for every period of the
// frame. Caller holds s.mu and has validated shapes. When it returns
// (false, nil) the transaction is open — s.lookups holds the exploit
// lookups awaiting batch resolution (their results scatter through
// s.lookupsIdx into levels) and the caller must decideFinishLocked or
// decideAbortLocked before releasing the lock. Exploration decisions are
// already written into levels.
func (s *Session) decideBeginLocked(seq uint64, obs []Observation, levels []int) (replayed bool, err error) {
	if s.closed {
		return false, ErrSessionClosed
	}
	s.lastActive.Store(nanotime())
	m := s.srv.model
	k := m.Clusters()
	periods := len(obs) / k

	if seq != 0 {
		replaySeq := s.lastSeq
		if s.lastPeriods > 0 {
			replaySeq = s.lastSeq - uint64(s.lastPeriods) + 1
		}
		switch {
		case s.lastPeriods > 0 && seq == replaySeq && periods == s.lastPeriods && len(levels) == len(s.lastLevels):
			copy(levels, s.lastLevels)
			s.srv.decidesDeduped.Add(1)
			return true, nil
		case seq != s.lastSeq+1:
			return false, fmt.Errorf("%w: got %d, expected %d or replay of %d", ErrBadSeq, seq, s.lastSeq+1, replaySeq)
		}
	}

	s.rngSave = s.r.State()
	s.epsSave = s.eps
	s.demandSave = append(s.demandSave[:0], s.prevDemand...)

	s.lookups = s.lookups[:0]
	s.lookupsIdx = s.lookupsIdx[:0]
	tracking := s.curStates != nil // learning server, non-frozen session
	if tracking {
		s.txnStates = s.txnStates[:0]
	}
	for p := 0; p < periods; p++ {
		base := p * k
		for i := 0; i < k; i++ {
			o := obs[base+i]
			so := sim.Observation{
				Utilization: o.Utilization,
				DemandRatio: o.DemandRatio,
				QoS:         o.QoS,
				ClusterQoS:  o.ClusterQoS,
				Critical:    o.Critical,
				Level:       o.Level,
				NumLevels:   m.levels[i],
			}
			state := m.cfg.EncodeState(so, s.prevDemand[i])
			s.prevDemand[i] = o.DemandRatio
			if tracking {
				s.txnStates = append(s.txnStates, state)
			}
			if s.eps > 0 && s.r.Float64() < s.eps {
				levels[base+i] = s.r.Intn(m.levels[i])
				s.srv.explorations.Add(1)
				continue
			}
			s.lookups = append(s.lookups, Lookup{Cluster: i, State: state})
			s.lookupsIdx = append(s.lookupsIdx, base+i)
		}
		// ε decays once per control period — exactly as K sequential
		// single-period decides would have decayed it between draws.
		if s.eps > 0 && s.epsDecay > 0 {
			s.eps *= s.epsDecay
			if s.eps < s.epsMin {
				s.eps = s.epsMin
			}
		}
	}
	s.txnSeq = seq
	s.txnPeriods = periods
	return false, nil
}

// decideAbortLocked rolls an open decide transaction back: RNG stream, ε,
// and demand history return to their pre-transaction snapshots, so the
// client's retry replays the exact same stochastic draws.
func (s *Session) decideAbortLocked() {
	s.r.SetState(s.rngSave)
	s.eps = s.epsSave
	copy(s.prevDemand, s.demandSave)
}

// decideFinishLocked commits an open decide transaction: caches the frame
// for replay (sequenced decides only), advances the learner's transition
// history, and bumps the ledgers by the frame's period count.
func (s *Session) decideFinishLocked(levels []int) {
	periods := s.txnPeriods
	if s.txnSeq != 0 {
		s.lastSeq = s.txnSeq + uint64(periods) - 1
		s.lastPeriods = periods
		s.lastLevels = append(s.lastLevels[:0], levels...)
	}
	if s.curStates != nil {
		// Roll the committed-period (state, action) window forward: prev
		// becomes the frame's second-to-last period (or the old cur for a
		// one-period frame), cur its last. Rewards arriving before the
		// next decide pair these into Transitions.
		k := len(s.curStates)
		if periods >= 2 {
			base := (periods - 2) * k
			copy(s.prevStates, s.txnStates[base:base+k])
			copy(s.prevActions, levels[base:base+k])
			s.havePrev = true
		} else if s.haveCur {
			copy(s.prevStates, s.curStates)
			copy(s.prevActions, s.curActions)
			s.havePrev = true
		}
		base := (periods - 1) * k
		copy(s.curStates, s.txnStates[base:base+k])
		copy(s.curActions, levels[base:base+k])
		s.haveCur = true
	}
	s.decisions += uint64(periods)
	s.srv.decisions.Add(uint64(periods))
	s.srv.lookupsServed.Add(uint64(len(s.lookups)))
}

// nanotime is the session-activity clock (monotonic enough for TTLs).
func nanotime() int64 { return time.Now().UnixNano() }

// Reward records a device-reported reward without retry deduplication —
// the legacy unsequenced path, equivalent to RewardSeq(0, r).
func (s *Session) Reward(r float64) (SessionStats, error) {
	return s.RewardSeq(0, r)
}

// RewardSeq records a device-reported reward with retry deduplication,
// mirroring DecideSeq's discipline on the reward path. seq 0 is the legacy
// unsequenced path. Otherwise seq must be the session's next reward
// sequence number (lastRewardSeq+1) — the reward is applied exactly once:
// ledger, fleet counter, and (on a learning server) the Q-update queue — or
// a replay of the last applied one, which returns the current ledger and
// applies nothing. Any other seq fails with ErrBadSeq. Without this, a
// client retry after a lost ack double-counts rewardSum and
// serve_rewards_total, and would double-apply live Q-updates.
func (s *Session) RewardSeq(seq uint64, r float64) (SessionStats, error) {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return SessionStats{}, fmt.Errorf("%w: non-finite reward %v", ErrBadRequest, r)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SessionStats{}, ErrSessionClosed
	}
	s.lastActive.Store(nanotime())
	if seq != 0 {
		switch {
		case seq == s.lastRewardSeq:
			s.srv.rewardsDeduped.Add(1)
			return s.statsLocked(), nil
		case seq != s.lastRewardSeq+1:
			return SessionStats{}, fmt.Errorf("%w: reward seq %d, expected %d or replay of %d",
				ErrBadSeq, seq, s.lastRewardSeq+1, s.lastRewardSeq)
		}
		s.lastRewardSeq = seq
	}
	s.rewards++
	s.rewardSum += r
	s.srv.rewards.Add(1)
	s.srv.noteRewardLocked(s, r)
	return s.statsLocked(), nil
}

// Stats returns the session ledger.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Session) statsLocked() SessionStats {
	st := SessionStats{ID: s.id, Decisions: s.decisions, Rewards: s.rewards, Epsilon: s.eps}
	if s.rewards > 0 {
		st.MeanReward = s.rewardSum / float64(s.rewards)
	}
	return st
}

// Config parameterizes a Server.
type Config struct {
	// MaxBatch caps the lookups coalesced into one backend call
	// (default 256). A single request larger than the cap still serves as
	// its own batch — one session's lookups never split across calls.
	MaxBatch int
	// Linger is how long the batcher waits for co-travellers after the
	// first lookup of a batch before dispatching. 0 (the default) grabs
	// whatever is already queued and dispatches immediately — no added
	// latency, opportunistic coalescing under load.
	Linger time.Duration
	// CheckpointPath, when non-empty, is where POST /v1/checkpoint
	// persists the model.
	CheckpointPath string
	// Epoch identifies this server incarnation. Session handles are only
	// valid within the epoch that minted them; an epoch-carrying request
	// against a different incarnation fails with ErrUnknownSession, which
	// tells the client to resume rather than blindly reuse a handle that
	// may now belong to someone else. Defaults to 1; restarts should pass
	// a fresh value.
	Epoch uint32
	// SessionTTL, when positive, bounds the session map: sessions idle
	// longer than the TTL are reaped (closed and counted in
	// serve_sessions_reaped_total). 0 disables reaping — no reaper
	// goroutine runs.
	SessionTTL time.Duration
	// QueueDeadline, when positive, is the CoDel-style staleness bound on
	// batched lookups: a request that waited in the submission ring longer
	// than this is failed with ErrOverloaded instead of being served —
	// under overload it is better to shed old work (the client has likely
	// timed out and retried) than to serve it late. 0 disables.
	QueueDeadline time.Duration
	// DrainGrace is how long Drain lets connections finish their buffered
	// frames before forcing them closed. Defaults to 250ms.
	DrainGrace time.Duration
	// Learn configures the online learner; zero value disabled — the
	// server hosts a frozen policy exactly as before.
	Learn LearnConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 250 * time.Millisecond
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: negative MaxBatch %d", c.MaxBatch)
	}
	if c.Linger < 0 {
		return fmt.Errorf("serve: negative Linger %v", c.Linger)
	}
	if c.SessionTTL < 0 {
		return fmt.Errorf("serve: negative SessionTTL %v", c.SessionTTL)
	}
	if c.QueueDeadline < 0 {
		return fmt.Errorf("serve: negative QueueDeadline %v", c.QueueDeadline)
	}
	if c.DrainGrace < 0 {
		return fmt.Errorf("serve: negative DrainGrace %v", c.DrainGrace)
	}
	if err := c.Learn.validate(); err != nil {
		return err
	}
	return nil
}

// Server hosts sessions over a shared model and backend. Create one with
// New, expose it with Handler, and Close it to release the batch worker.
type Server struct {
	cfg     Config
	model   *Model
	backend Backend
	batch   *batcher
	start   time.Time

	mu       sync.Mutex
	sessions map[string]*Session
	handles  map[uint64]*Session // binary-protocol identity → session
	nextID   uint64
	closed   bool
	draining bool

	reapQuit chan struct{} // nil unless a TTL reaper is running
	reapWG   sync.WaitGroup

	binMu    sync.Mutex
	binLns   map[net.Listener]struct{} // live ServeBin listeners
	binConns map[net.Conn]struct{}     // live binary-protocol connections

	reg    *obs.Registry
	events *obs.EventLog

	decisions       *obs.Counter // decide calls served
	lookupsServed   *obs.Counter // individual table lookups
	explorations    *obs.Counter // decisions taken by device-local exploration
	rewards         *obs.Counter
	rewardsDeduped  *obs.Counter // reward retries answered from the dedup ledger
	sessionsCreated *obs.Counter
	sessionsClosed  *obs.Counter
	sessionsReaped  *obs.Counter // sessions closed by the TTL reaper
	decidesDeduped  *obs.Counter // decide retries answered from the replay cache
	resumes         *obs.Counter // sessions re-created from client-carried state
	httpErrors      *obs.Counter
	binConnsTotal   *obs.Counter   // binary connections accepted
	binFrames       *obs.Counter   // binary request frames served
	binErrors       *obs.Counter   // binary requests answered with an error frame
	histHTTP        *obs.Histogram // full decide-handler wall time
	histBin         *obs.Histogram // full binary decide frame: read → flushed
	histBinDecode   *obs.Histogram // binary decide frame decode + convert
	histBinWrite    *obs.Histogram // binary decide response encode + write

	ckptMu   sync.Mutex
	ckptTime time.Time // zero until a checkpoint is loaded or saved

	// Checkpoint *publication* serialization: the periodic learner
	// checkpoint and the drain-time final checkpoint write the same path;
	// ckptPubMu makes each write atomic with respect to the other and
	// ckptFinal makes the drain snapshot the last writer — a late periodic
	// tick can never clobber the final state the next incarnation hydrates
	// from. fs is the injectable syscall seam the ordering test uses.
	ckptPubMu sync.Mutex
	ckptFinal bool
	fs        fsHooks

	learner      *learner    // nil unless cfg.Learn.Enabled
	cohortLearn  cohortStats // learning-arm reward ledger (learning server only)
	cohortFrozen cohortStats // frozen-arm reward ledger
}

// cohortStats is a lock-free reward ledger for one A/B arm.
type cohortStats struct {
	rewards atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the reward sum, CAS-accumulated
}

func (c *cohortStats) add(v float64) {
	c.rewards.Add(1)
	for {
		old := c.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (c *cohortStats) mean() float64 {
	n := c.rewards.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(c.sumBits.Load()) / float64(n)
}

// noteRewardLocked routes one freshly applied (non-replayed) reward to the
// learner: cohort accounting plus, for learning-arm sessions with a
// complete transition pair, one Q-update sample per cluster. Caller holds
// sess.mu. A full queue drops the sample and counts it — learning is
// best-effort, serving is not allowed to block on it.
func (s *Server) noteRewardLocked(sess *Session, r float64) {
	if s.learner == nil {
		return
	}
	if sess.frozen {
		s.cohortFrozen.add(r)
		return
	}
	s.cohortLearn.add(r)
	if !sess.havePrev || !sess.haveCur {
		return
	}
	for i := range sess.prevStates {
		t := core.Transition{
			Cluster:   i,
			State:     sess.prevStates[i],
			Action:    sess.prevActions[i],
			NextState: sess.curStates[i],
			Reward:    r,
		}
		if !s.learner.offer(t) {
			s.learner.dropped.Add(1)
		}
	}
}

// eventLogSinks are backends that report degradations into the server's
// event log once wired; *HWBackend implements it.
type eventLogSink interface {
	setEventLog(*obs.EventLog)
}

// New builds a server over model and backend. backend defaults to the
// software table walk when nil.
func New(model *Model, backend Backend, cfg Config) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if backend == nil {
		backend = NewSWBackend(model)
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		model:    model,
		backend:  backend,
		start:    time.Now(),
		sessions: make(map[string]*Session),
		handles:  make(map[uint64]*Session),
		binLns:   make(map[net.Listener]struct{}),
		binConns: make(map[net.Conn]struct{}),
		reg:      reg,
		events:   obs.NewEventLog(256),
		fs:       osHooks(),

		decisions:       reg.NewCounter("serve_decisions_total", "decide calls served"),
		lookupsServed:   reg.NewCounter("serve_lookups_total", "individual greedy table lookups resolved"),
		explorations:    reg.NewCounter("serve_explorations_total", "decisions taken by device-local exploration"),
		rewards:         reg.NewCounter("serve_rewards_total", "device-reported rewards recorded"),
		rewardsDeduped:  reg.NewCounter("serve_rewards_deduped_total", "reward retries answered from the per-session dedup ledger"),
		sessionsCreated: reg.NewCounter("serve_sessions_created_total", "device sessions opened"),
		sessionsClosed:  reg.NewCounter("serve_sessions_closed_total", "device sessions closed"),
		sessionsReaped:  reg.NewCounter("serve_sessions_reaped_total", "idle device sessions closed by the TTL reaper"),
		decidesDeduped:  reg.NewCounter("serve_decides_deduped_total", "decide retries answered from the per-session replay cache"),
		resumes:         reg.NewCounter("serve_resumes_total", "sessions re-created from client-carried resume state"),
		httpErrors:      reg.NewCounter("serve_http_errors_total", "HTTP requests answered with an error status"),
		binConnsTotal:   reg.NewCounter("serve_bin_connections_total", "binary-protocol connections accepted"),
		binFrames:       reg.NewCounter("serve_bin_frames_total", "binary-protocol request frames served"),
		binErrors:       reg.NewCounter("serve_bin_errors_total", "binary-protocol requests answered with an error frame"),
		histHTTP: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "http"}),
		histBin: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "bin"}),
		histBinDecode: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "bin_decode"}),
		histBinWrite: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "bin_write"}),
	}
	reg.NewGaugeFunc("serve_sessions", "live device sessions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	reg.NewGaugeFunc("serve_bin_connections", "live binary-protocol connections", func() float64 {
		s.binMu.Lock()
		defer s.binMu.Unlock()
		return float64(len(s.binConns))
	})
	reg.NewGaugeFunc("serve_uptime_seconds", "seconds since server start (monotonic, clamped at 0)", func() float64 {
		return ageSeconds(s.start)
	})
	reg.NewGaugeFunc("serve_checkpoint_age_seconds", "seconds since the last checkpoint load/save; -1 when none exists", func() float64 {
		return s.checkpointAgeS()
	})
	reg.NewCounterFunc("serve_events_total", "structured runtime events recorded", s.events.Total)
	if sink, ok := backend.(eventLogSink); ok {
		sink.setEventLog(s.events)
	}
	if hb, ok := backend.(*HWBackend); ok {
		reg.NewCounterFunc("serve_hw_decisions_total", "lookups decided by the modeled accelerator", hb.decisions.Load)
		reg.NewCounterFunc("serve_hw_retries_total", "accelerator transaction retries", hb.retries.Load)
		reg.NewCounterFunc("serve_hw_degraded_total", "lookups degraded to the software tables", hb.degraded.Load)
	}
	s.batch = newBatcher(backend, cfg.MaxBatch, cfg.Linger, cfg.QueueDeadline, batcherObs{
		batches:  reg.NewCounter("serve_batches_total", "backend batch dispatches"),
		lookups:  reg.NewCounter("serve_batch_lookups_total", "lookups resolved through batch dispatches"),
		rejected: reg.NewCounter("serve_batch_rejected_total", "decide submits rejected with ErrOverloaded (ring full)"),
		stale:    reg.NewCounter("serve_batch_stale_total", "queued lookups shed past the CoDel queue deadline"),
		queueWait: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "queue_wait"}),
		assemble: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "assemble"}),
		backendLat: reg.NewHistogram("serve_decide_stage_ns", "per-stage decide-path latency in nanoseconds",
			obs.Label{Key: "stage", Value: "backend"}),
	})
	reg.NewGaugeFunc("serve_batch_max_occupancy", "largest batch dispatched", func() float64 {
		return float64(s.batch.maxOcc.Load())
	})
	if cfg.Learn.Enabled {
		sw, ok := backend.(*SWBackend)
		if !ok {
			return nil, fmt.Errorf("serve: online learning requires the software backend (swappable tables), not %q", backend.Name())
		}
		l, err := newLearner(s, sw, cfg.Learn)
		if err != nil {
			return nil, err
		}
		s.learner = l
		reg.NewGaugeFunc("serve_cohort_mean_reward", "mean device-reported reward, learning arm",
			s.cohortLearn.mean, obs.Label{Key: "cohort", Value: CohortLearning})
		reg.NewGaugeFunc("serve_cohort_mean_reward", "mean device-reported reward, frozen arm",
			s.cohortFrozen.mean, obs.Label{Key: "cohort", Value: CohortFrozen})
		reg.NewCounterFunc("serve_cohort_rewards_total", "rewards recorded, learning arm",
			s.cohortLearn.rewards.Load, obs.Label{Key: "cohort", Value: CohortLearning})
		reg.NewCounterFunc("serve_cohort_rewards_total", "rewards recorded, frozen arm",
			s.cohortFrozen.rewards.Load, obs.Label{Key: "cohort", Value: CohortFrozen})
		l.start()
	}
	if cfg.SessionTTL > 0 {
		s.reapQuit = make(chan struct{})
		s.reapWG.Add(1)
		go s.reapLoop(cfg.SessionTTL)
	}
	return s, nil
}

// Epoch returns this server incarnation's epoch.
func (s *Server) Epoch() uint32 { return s.cfg.Epoch }

// reapLoop closes sessions idle past the TTL, bounding the session map
// against clients that vanish without closing. It samples at TTL/4, so a
// session is reaped between 1× and ~1.25× its TTL after going idle.
func (s *Server) reapLoop(ttl time.Duration) {
	defer s.reapWG.Done()
	tick := ttl / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reapQuit:
			return
		case <-t.C:
		}
		cutoff := nanotime() - ttl.Nanoseconds()
		var expired []*Session
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.lastActive.Load() < cutoff {
				expired = append(expired, sess)
				delete(s.sessions, sess.id)
				delete(s.handles, sess.handle)
			}
		}
		s.mu.Unlock()
		for _, sess := range expired {
			s.finishClose(sess)
			s.sessionsReaped.Add(1)
		}
	}
}

// Registry exposes the server's metrics registry, so binaries can add
// their own series and dump the exposition (pmserve's SIGUSR1 handler).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Events exposes the server's bounded event log.
func (s *Server) Events() *obs.EventLog { return s.events }

// ageSeconds returns the elapsed seconds since t, clamped at 0. Captures
// taken with time.Now carry a monotonic reading and are immune to
// wall-clock steps; the clamp covers timestamps that lost it (decoded,
// Round(0)-stripped, or truly from the future after a backwards NTP
// step), so age metrics can never go negative and break alert rules.
func ageSeconds(t time.Time) float64 {
	s := time.Since(t).Seconds()
	if s < 0 {
		return 0
	}
	return s
}

// checkpointAgeS returns the clamped checkpoint age, -1 when no
// checkpoint was ever loaded or saved.
func (s *Server) checkpointAgeS() float64 {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.ckptTime.IsZero() {
		return -1
	}
	return ageSeconds(s.ckptTime)
}

// Model returns the served model.
func (s *Server) Model() *Model { return s.model }

// Close shuts the batch worker down and tears down every binary-protocol
// listener and connection; in-flight decides drain with ErrServerClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.learner != nil {
		s.learner.close()
	}
	if s.reapQuit != nil {
		close(s.reapQuit)
		s.reapWG.Wait()
	}
	s.binMu.Lock()
	for ln := range s.binLns {
		ln.Close()
	}
	for c := range s.binConns {
		c.Close()
	}
	s.binMu.Unlock()
	s.batch.Close()
}

// Drain is the graceful half of shutdown, run on SIGTERM before Close:
// stop accepting new binary connections, give live connections a grace
// window to finish the frames already in flight (their reads are
// deadline-nudged — a fully received request is still served and its
// response flushed; a partially received one was never accepted and the
// client's retry lands on the next incarnation), wait for the connections
// to wind down, then publish a final checkpoint so the next incarnation
// starts from the exact frozen policy. HTTP draining belongs to
// http.Server.Shutdown and composes with this. Drain does not Close: the
// caller does, after its HTTP drain completes.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.binMu.Lock()
	for ln := range s.binLns {
		ln.Close()
	}
	deadline := time.Now().Add(s.cfg.DrainGrace)
	for c := range s.binConns {
		c.SetReadDeadline(deadline)
	}
	s.binMu.Unlock()

	// Wait for the connection goroutines to flush and exit; they remove
	// themselves from binConns. The grace deadline bounds this, the ctx
	// is a harder stop.
	for {
		s.binMu.Lock()
		live := len(s.binConns)
		s.binMu.Unlock()
		if live == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}

	// Stop the learner before the final checkpoint: its goroutine applies
	// everything still queued and exits, so the drain snapshot carries every
	// reward the server acked — and cannot race a periodic checkpoint tick,
	// whose writes serialize behind publishCheckpoint's mutex anyway.
	if s.learner != nil {
		s.learner.close()
	}
	if s.cfg.CheckpointPath != "" {
		if err := s.publishCheckpoint(true); err != nil {
			return fmt.Errorf("serve: drain checkpoint: %w", err)
		}
	}
	return nil
}

// publishCheckpoint persists the current policy — the learner's live
// tables when learning, the frozen model otherwise — to cfg.CheckpointPath.
// Publications serialize on ckptPubMu so the periodic learner tick and the
// drain-time final write can never interleave on the store; final marks
// the drain snapshot as the last writer, turning any straggling periodic
// publication into a no-op.
func (s *Server) publishCheckpoint(final bool) error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.ckptPubMu.Lock()
	defer s.ckptPubMu.Unlock()
	if s.ckptFinal {
		return nil
	}
	if final {
		s.ckptFinal = true
	}
	snap := s.model.Snapshot()
	if s.learner != nil {
		snap = s.learner.snapshot()
	}
	if _, err := saveCheckpoint(s.cfg.CheckpointPath, snap, s.fs); err != nil {
		return err
	}
	s.MarkCheckpoint(time.Now())
	return nil
}

// isDraining reports whether Drain has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// MarkCheckpoint records a checkpoint load/save instant for the
// checkpoint-age metric. Prefer passing a fresh time.Now() — it carries a
// monotonic reading, so the age survives wall-clock steps; timestamps
// without one are still safe because every age read clamps at 0.
func (s *Server) MarkCheckpoint(at time.Time) {
	s.ckptMu.Lock()
	s.ckptTime = at
	s.ckptMu.Unlock()
}

// CreateSession registers a new device session.
func (s *Server) CreateSession(opts SessionOptions) (*Session, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	s.nextID++
	sess := &Session{
		id:         fmt.Sprintf("s-%06d", s.nextID),
		handle:     s.nextID,
		srv:        s,
		eps:        opts.Epsilon,
		epsMin:     opts.EpsilonMin,
		epsDecay:   opts.EpsilonDecay,
		r:          rng.New(opts.Seed),
		prevDemand: make([]float64, s.model.Clusters()),
	}
	s.initLearnState(sess, opts.Cohort)
	sess.lastActive.Store(nanotime())
	s.sessions[sess.id] = sess
	s.handles[sess.handle] = sess
	s.sessionsCreated.Add(1)
	return sess, nil
}

// initLearnState applies the session's cohort and, on a learning server,
// allocates the transition-tracking scratch for learning-arm sessions.
// Caller holds s.mu.
func (s *Server) initLearnState(sess *Session, cohort string) {
	sess.frozen = cohort == CohortFrozen
	if s.learner == nil || sess.frozen {
		return
	}
	k := s.model.Clusters()
	sess.prevStates = make([]int, k)
	sess.prevActions = make([]int, k)
	sess.curStates = make([]int, k)
	sess.curActions = make([]int, k)
}

// ResumeState is everything a client must carry to re-create a session on
// a fresh server incarnation exactly where the old one left off: the
// creation options, the evolved exploration state (current ε and the raw
// RNG state), the request sequence with its last decision (so an in-flight
// retry still deduplicates across the restart), the demand-trend history,
// and the ledger.
type ResumeState struct {
	Options    SessionOptions
	Epsilon    float64   // current (decayed) exploration rate
	Rng        [4]uint64 // exploration RNG state; all-zero → reseed from Options.Seed
	Seq        uint64    // last served sequence number
	LastLevels []int     // decision for Seq, the replay-cache seed
	PrevDemand []float64 // per-cluster demand-trend history
	Decisions  uint64
	Rewards    uint64
	RewardSum  float64
}

// ResumeSession re-creates a session from client-carried state. The
// session gets a fresh handle/id in this incarnation's epoch — handles
// are never trusted across epochs — but decides continue the sequence,
// the RNG stream, and the demand history exactly where the lost session
// stopped, so the device's decision trace is indistinguishable from one
// served by an immortal process.
func (s *Server) ResumeSession(st ResumeState) (*Session, error) {
	if err := st.Options.validate(); err != nil {
		return nil, err
	}
	if st.Epsilon < 0 || st.Epsilon > 1 {
		return nil, fmt.Errorf("serve: resume epsilon %v out of [0,1]", st.Epsilon)
	}
	clusters := s.model.Clusters()
	if len(st.PrevDemand) != clusters {
		return nil, fmt.Errorf("serve: resume carries %d demand entries for %d clusters", len(st.PrevDemand), clusters)
	}
	if st.Seq > 0 && len(st.LastLevels) != clusters {
		return nil, fmt.Errorf("serve: resume carries %d last levels for %d clusters", len(st.LastLevels), clusters)
	}
	for i, lvl := range st.LastLevels {
		if lvl < 0 || lvl >= s.model.levels[i] {
			return nil, fmt.Errorf("serve: resume cluster %d level %d out of [0,%d)", i, lvl, s.model.levels[i])
		}
	}
	var r *rng.Rand
	if st.Rng == ([4]uint64{}) {
		r = rng.New(st.Options.Seed)
	} else {
		var err error
		if r, err = rng.NewFromState(st.Rng); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	s.nextID++
	sess := &Session{
		id:         fmt.Sprintf("s-%06d", s.nextID),
		handle:     s.nextID,
		srv:        s,
		eps:        st.Epsilon,
		epsMin:     st.Options.EpsilonMin,
		epsDecay:   st.Options.EpsilonDecay,
		r:          r,
		prevDemand: append([]float64(nil), st.PrevDemand...),
		lastSeq:    st.Seq,
		lastLevels: append([]int(nil), st.LastLevels...),
		decisions:  st.Decisions,
		rewards:    st.Rewards,
		rewardSum:  st.RewardSum,
		// The client's acked-reward count doubles as its reward sequence
		// cursor, so an in-flight reward retry still deduplicates across
		// the restart — same trick as Seq/LastLevels for decides.
		lastRewardSeq: st.Rewards,
	}
	s.initLearnState(sess, st.Options.Cohort)
	// Resume state carries only the last period's decision, so the replay
	// window re-opens as a one-period frame at Seq regardless of how many
	// periods the original frame bundled.
	if st.Seq > 0 {
		sess.lastPeriods = 1
	}
	sess.lastActive.Store(nanotime())
	s.sessions[sess.id] = sess
	s.handles[sess.handle] = sess
	s.sessionsCreated.Add(1)
	s.resumes.Add(1)
	return sess, nil
}

// Session looks a live session up by id.
func (s *Server) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return sess, nil
}

// SessionByHandle looks a live session up by its binary-protocol handle.
// The error is the bare sentinel — no formatting — so the binary hot path
// stays allocation-free even when a stale handle arrives.
func (s *Server) SessionByHandle(h uint64) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.handles[h]
	if !ok {
		return nil, ErrNoSession
	}
	return sess, nil
}

// SessionByHandleEpoch is the epoch-checked lookup for resilient clients.
// epoch 0 is the legacy unchecked path. A non-zero epoch that does not
// match this incarnation — or a handle this incarnation never minted —
// fails with ErrUnknownSession: the session is resumable, and the handle
// must not be served even if it happens to collide with a live one,
// because it was minted by a different process.
func (s *Server) SessionByHandleEpoch(h uint64, epoch uint32) (*Session, error) {
	if epoch == 0 {
		return s.SessionByHandle(h)
	}
	if epoch != s.cfg.Epoch {
		return nil, ErrUnknownSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.handles[h]
	if !ok {
		return nil, ErrUnknownSession
	}
	return sess, nil
}

// SessionByIDEpoch is SessionByHandleEpoch for the HTTP path's string ids.
func (s *Server) SessionByIDEpoch(id string, epoch uint32) (*Session, error) {
	if epoch == 0 {
		return s.Session(id)
	}
	if epoch != s.cfg.Epoch {
		return nil, ErrUnknownSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrUnknownSession
	}
	return sess, nil
}

// CloseSession ends a session and returns its final ledger.
func (s *Server) CloseSession(id string) (SessionStats, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		delete(s.handles, sess.handle)
	}
	s.mu.Unlock()
	if !ok {
		return SessionStats{}, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return s.finishClose(sess), nil
}

// CloseSessionByHandle ends a session addressed by its binary handle.
func (s *Server) CloseSessionByHandle(h uint64) (SessionStats, error) {
	s.mu.Lock()
	sess, ok := s.handles[h]
	if ok {
		delete(s.sessions, sess.id)
		delete(s.handles, h)
	}
	s.mu.Unlock()
	if !ok {
		return SessionStats{}, ErrNoSession
	}
	return s.finishClose(sess), nil
}

func (s *Server) finishClose(sess *Session) SessionStats {
	sess.mu.Lock()
	sess.closed = true
	st := sess.statsLocked()
	sess.mu.Unlock()
	s.sessionsClosed.Add(1)
	return st
}

// HWStats reports the hardware backend's health ledger in Metrics; nil for
// the software backend.
type HWStats struct {
	Decisions uint64  `json:"decisions"`
	Retries   uint64  `json:"retries"`
	Degraded  uint64  `json:"degraded"`
	MeanLatNs float64 `json:"mean_latency_ns"`
}

// Metrics is the server's observable state, served at /metrics.
type Metrics struct {
	UptimeS            float64     `json:"uptime_s"`
	Backend            string      `json:"backend"`
	Clusters           int         `json:"clusters"`
	Sessions           int         `json:"sessions"`
	SessionsCreated    uint64      `json:"sessions_created"`
	SessionsClosed     uint64      `json:"sessions_closed"`
	SessionsReaped     uint64      `json:"sessions_reaped"`
	Resumes            uint64      `json:"resumes"`
	Decisions          uint64      `json:"decisions"`
	DecidesDeduped     uint64      `json:"decides_deduped"`
	LookupsServed      uint64      `json:"lookups_served"`
	Explorations       uint64      `json:"explorations"`
	Rewards            uint64      `json:"rewards"`
	RewardsDeduped     uint64      `json:"rewards_deduped"`
	Batches            uint64      `json:"batches"`
	BatchRejected      uint64      `json:"batch_rejected"`
	BatchStale         uint64      `json:"batch_stale"`
	MeanBatchOccupancy float64     `json:"mean_batch_occupancy"`
	MaxBatchOccupancy  uint64      `json:"max_batch_occupancy"`
	HTTPErrors         uint64      `json:"http_errors"`
	BinConnections     uint64      `json:"bin_connections"`
	BinFrames          uint64      `json:"bin_frames"`
	BinErrors          uint64      `json:"bin_errors"`
	CheckpointAgeS     float64     `json:"checkpoint_age_s"` // -1 when no checkpoint exists
	HW                 *HWStats    `json:"hw,omitempty"`
	Learn              *LearnStats `json:"learn,omitempty"` // nil unless learning is enabled
}

// MetricsSnapshot assembles the current metrics. Ages are monotonic-safe
// and clamped at 0 (CheckpointAgeS stays -1 when no checkpoint exists),
// so a backwards wall-clock step can never produce a negative age.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	live := len(s.sessions)
	s.mu.Unlock()
	batches, lookups, maxOcc := s.batch.stats()
	m := Metrics{
		UptimeS:           ageSeconds(s.start),
		Backend:           s.backend.Name(),
		Clusters:          s.model.Clusters(),
		Sessions:          live,
		SessionsCreated:   s.sessionsCreated.Load(),
		SessionsClosed:    s.sessionsClosed.Load(),
		SessionsReaped:    s.sessionsReaped.Load(),
		Resumes:           s.resumes.Load(),
		Decisions:         s.decisions.Load(),
		DecidesDeduped:    s.decidesDeduped.Load(),
		LookupsServed:     s.lookupsServed.Load(),
		Explorations:      s.explorations.Load(),
		Rewards:           s.rewards.Load(),
		RewardsDeduped:    s.rewardsDeduped.Load(),
		Batches:           batches,
		BatchRejected:     s.batch.o.rejected.Load(),
		BatchStale:        s.batch.o.stale.Load(),
		MaxBatchOccupancy: maxOcc,
		HTTPErrors:        s.httpErrors.Load(),
		BinConnections:    s.binConnsTotal.Load(),
		BinFrames:         s.binFrames.Load(),
		BinErrors:         s.binErrors.Load(),
		CheckpointAgeS:    s.checkpointAgeS(),
	}
	if batches > 0 {
		m.MeanBatchOccupancy = float64(lookups) / float64(batches)
	}
	if hb, ok := s.backend.(*HWBackend); ok {
		m.HW = hb.statsSnapshot()
	}
	if s.learner != nil {
		m.Learn = s.learner.statsSnapshot(s)
	}
	return m
}
