package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rlpm/internal/rng"
	"rlpm/internal/stats"
)

// TestQuantilesMatchStatsPercentile is the regression test for the
// nearest-rank truncation bug: the load generator's quantiles must agree
// exactly with stats.Percentile on every fixture, and must not reorder the
// caller's slice.
func TestQuantilesMatchStatsPercentile(t *testing.T) {
	fixtures := [][]int64{
		{},
		{42},
		{0, 100}, // old truncation reported p90 = 0 here
		{100, 0},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{5, 5, 5, 5},
	}
	r := rng.New(17)
	for n := 0; n < 4; n++ {
		f := make([]int64, 3+r.Intn(500))
		for i := range f {
			f[i] = int64(r.Intn(10_000_000))
		}
		fixtures = append(fixtures, f)
	}
	for fi, f := range fixtures {
		orig := append([]int64(nil), f...)
		got := quantiles(f)
		for i := range f {
			if f[i] != orig[i] {
				t.Fatalf("fixture %d: quantiles reordered the caller's slice at %d", fi, i)
			}
		}
		if len(f) == 0 {
			if got != (LatencyQuantiles{}) {
				t.Fatalf("fixture %d: empty input produced %+v", fi, got)
			}
			continue
		}
		fs := make([]float64, len(f))
		var max float64
		for i, v := range f {
			fs[i] = float64(v)
			if fs[i] > max {
				max = fs[i]
			}
		}
		want := func(p float64) float64 {
			v, err := stats.Percentile(fs, p)
			if err != nil {
				t.Fatalf("fixture %d: stats.Percentile(%v): %v", fi, p, err)
			}
			return v
		}
		if got.P50 != want(50) || got.P90 != want(90) || got.P99 != want(99) || got.Max != max {
			t.Fatalf("fixture %d: quantiles %+v disagree with stats.Percentile (p50=%v p90=%v p99=%v max=%v)",
				fi, got, want(50), want(90), want(99), max)
		}
	}

	// Pin the exact interpolated values on the two-sample fixture the old
	// truncating implementation got wrong (it reported p90 = p99 = 0).
	got := quantiles([]int64{0, 100})
	if got.P50 != 50 || got.P90 != 90 || got.P99 != 99 || got.Max != 100 {
		t.Fatalf("two-sample fixture: %+v, want p50=50 p90=90 p99=99 max=100", got)
	}
}

// TestSaveCheckpointDurabilitySequence asserts the write→sync→rename→
// dir-sync ordering through recording hooks, so the fsync-the-parent-dir
// fix can never silently regress.
func TestSaveCheckpointDurabilitySequence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	_, snap := testSnapshot(t, 3)

	var seq []string
	var renamedTo, syncedDir string
	real := osHooks()
	rec := fsHooks{
		syncFile: func(f *os.File) error {
			seq = append(seq, "sync-file")
			return real.syncFile(f)
		},
		rename: func(oldpath, newpath string) error {
			seq = append(seq, "rename")
			renamedTo = newpath
			return real.rename(oldpath, newpath)
		},
		syncDir: func(d string) error {
			seq = append(seq, "sync-dir")
			syncedDir = d
			return real.syncDir(d)
		},
	}
	n, err := saveCheckpoint(path, snap, rec)
	if err != nil {
		t.Fatalf("saveCheckpoint: %v", err)
	}
	if n <= 0 {
		t.Fatalf("saved %d bytes", n)
	}
	want := []string{"sync-file", "rename", "sync-dir"}
	if len(seq) != len(want) {
		t.Fatalf("hook sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("hook sequence %v, want %v", seq, want)
		}
	}
	if renamedTo != path {
		t.Fatalf("renamed to %q, want %q", renamedTo, path)
	}
	if syncedDir != dir {
		t.Fatalf("synced dir %q, want the checkpoint's parent %q", syncedDir, dir)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("reloading: %v", err)
	}

	// A failing dir sync must fail the save: the caller cannot report
	// durability it does not have.
	rec.syncDir = func(string) error { return os.ErrPermission }
	if _, err := saveCheckpoint(path, snap, rec); err == nil {
		t.Fatal("save reported success with a failed directory sync")
	}
}

// TestAgeClampsNeverNegative covers the backwards-NTP-step hazard: age
// gauges clamp at zero even for future timestamps that lost their
// monotonic reading.
func TestAgeClampsNeverNegative(t *testing.T) {
	// Round(0) strips the monotonic clock, so this timestamp really is in
	// the wall-clock future — time.Since goes negative without the clamp.
	future := time.Now().Add(time.Hour).Round(0)
	if got := ageSeconds(future); got != 0 {
		t.Fatalf("ageSeconds(future) = %v, want 0", got)
	}
	if got := ageSeconds(time.Now().Add(-time.Millisecond)); got <= 0 {
		t.Fatalf("ageSeconds(past) = %v, want > 0", got)
	}

	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{})
	srv.MarkCheckpoint(future)
	met := srv.MetricsSnapshot()
	if met.CheckpointAgeS != 0 {
		t.Fatalf("CheckpointAgeS %v with a future checkpoint time, want clamp to 0", met.CheckpointAgeS)
	}
	if met.UptimeS < 0 {
		t.Fatalf("UptimeS %v went negative", met.UptimeS)
	}

	// No checkpoint at all stays the -1 sentinel, not 0.
	srv2 := newTestServer(t, testModel(t, 3), nil, Config{})
	if got := srv2.MetricsSnapshot().CheckpointAgeS; got != -1 {
		t.Fatalf("CheckpointAgeS %v with no checkpoint, want -1", got)
	}
}

// TestMetricsSnapshotConcurrent hammers MetricsSnapshot and the Prometheus
// exposition while sessions decide and close — run under -race, this is
// the data-race gate for the observability wiring.
func TestMetricsSnapshotConcurrent(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	seq := testObs(m, 5, 40)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				sess, err := srv.CreateSession(SessionOptions{Epsilon: 0.2, Seed: seed})
				if err != nil {
					return // server closed under us: fine
				}
				for _, obs := range seq {
					if _, err := sess.Decide(obs); err != nil {
						return
					}
				}
				srv.CloseSession(sess.ID())
			}
		}(uint64(w + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = srv.MetricsSnapshot()
			_ = srv.Registry().WritePrometheus(io.Discard)
			_ = srv.Events().Events()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		srv.Close() // close with decides in flight
	}()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestMetricsContentNegotiation pins GET /metrics in both shapes: JSON for
// clients that ask, Prometheus text exposition (with the per-stage decide
// histograms populated) for everyone else.
func TestMetricsContentNegotiation(t *testing.T) {
	m := testModel(t, 3, 5)
	srv := newTestServer(t, m, nil, Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ctx := context.Background()
	client := NewClient(hs.URL)

	sess, err := client.CreateSession(ctx, SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	for _, obs := range testObs(m, 9, 10) {
		if _, err := sess.Decide(ctx, obs); err != nil {
			t.Fatalf("decide: %v", err)
		}
	}

	// Default: Prometheus text.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want text exposition 0.0.4", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_decide_stage_ns histogram",
		`serve_decide_stage_ns_count{stage="http"} 10`,
		`serve_decide_stage_ns_count{stage="queue_wait"}`,
		`serve_decide_stage_ns_count{stage="assemble"}`,
		`serve_decide_stage_ns_count{stage="backend"}`,
		"# TYPE serve_decisions_total counter",
		"serve_decisions_total 10",
		"serve_lookups_total 20",
		"serve_sessions 1",
		"# TYPE serve_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// The batcher-side stage histograms must have counted every decision.
	for _, stage := range []string{"queue_wait", "assemble", "backend"} {
		line := `serve_decide_stage_ns_count{stage="` + stage + `"} `
		i := strings.Index(text, line)
		if i < 0 {
			t.Fatalf("no count line for stage %s", stage)
		}
		rest := text[i+len(line):]
		if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
			rest = rest[:nl]
		}
		if rest == "0" {
			t.Fatalf("stage %s histogram stayed empty", stage)
		}
	}

	// Accept: application/json keeps the structured snapshot.
	req, _ := http.NewRequest("GET", hs.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics (json): %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("json content type %q", ct)
	}
	var met Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatalf("decoding JSON metrics: %v", err)
	}
	if met.Decisions != 10 || met.Sessions != 1 {
		t.Fatalf("JSON metrics %+v", met)
	}
}

// TestEventsEndpoint drives a checkpoint save and reads the event back
// through GET /debug/events.
func TestEventsEndpoint(t *testing.T) {
	dir := t.TempDir()
	m := testModel(t, 3)
	srv := newTestServer(t, m, nil, Config{CheckpointPath: filepath.Join(dir, "m.ckpt")})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ctx := context.Background()
	client := NewClient(hs.URL)

	// Empty log: still valid JSON with an empty array, not null.
	resp, err := http.Get(hs.URL + "/debug/events")
	if err != nil {
		t.Fatalf("GET /debug/events: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"events":null`) {
		t.Fatalf("empty event log rendered null: %s", raw)
	}

	if _, err := client.SaveCheckpoint(ctx); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	ev, err := client.Events(ctx)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if ev.Total == 0 || len(ev.Events) == 0 {
		t.Fatalf("no events after a checkpoint save: %+v", ev)
	}
	found := false
	for _, e := range ev.Events {
		if e.Kind == "checkpoint" && strings.Contains(e.Msg, "saved") {
			found = true
		}
		if e.Seq == 0 || e.At.IsZero() {
			t.Fatalf("event %+v missing seq or timestamp", e)
		}
	}
	if !found {
		t.Fatalf("no checkpoint-saved event in %+v", ev.Events)
	}
}
