package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rlpm/internal/obs"
	"rlpm/internal/qos"
	"rlpm/internal/soc"
	"rlpm/internal/stats"
	"rlpm/internal/workload"
)

// LoadConfig parameterizes a load-generation run: N simulated devices,
// each running its own chip model and workload scenario locally and asking
// the server for every OPP decision — the fleet-shaped traffic the serving
// subsystem exists for.
type LoadConfig struct {
	// BaseURL targets the server's HTTP listener (e.g.
	// "http://127.0.0.1:7421"). Health checks and the post-run metrics
	// snapshot always ride HTTP, whatever Proto says.
	BaseURL string
	// Proto selects the decision transport: "json" (default) drives the
	// HTTP/JSON path, "bin" the internal/wire binary protocol.
	Proto string
	// BinAddr is the binary listener's address ("host:port"); required
	// when Proto is "bin" and BinAddrs is empty.
	BinAddr string
	// BinAddrs lists N binary listeners (a sharded fleet). With more than
	// one address, ShardFor must place each device; devices then drive
	// their owning shard directly, bypassing any router hop — the
	// configuration the scaling curve measures.
	BinAddrs []string
	// ShardFor maps a device stream seed (DeviceSeed(Seed, idx)) to an
	// index into BinAddrs. Required when len(BinAddrs) > 1; the shard
	// package supplies the ring's owner function so the load generator
	// and the router agree on placement.
	ShardFor func(seed uint64) int
	// Devices is the concurrent device count.
	Devices int
	// Workers bounds the goroutine count: 0 (default) runs one goroutine
	// per device; W > 0 runs W workers, each round-robining one decide
	// frame per owned device per pass. 100k-device runs need this — the
	// per-device state stays, but stacks and scheduler load do not.
	Workers int
	// Duration is the wall-clock run length.
	Duration time.Duration
	// PeriodS is each device's simulated DVFS control period (default 50 ms
	// of simulated time; the wire round trip is what's actually measured).
	PeriodS float64
	// Scenario is the workload every device runs (default "gaming");
	// per-device seeds decorrelate the demand streams.
	Scenario string
	// Seed derives per-device scenario and exploration seeds.
	Seed uint64
	// Epsilon is the per-session exploration rate (default 0: greedy).
	Epsilon float64
	// RewardEvery posts a device-computed reward every that many periods;
	// 0 disables reward traffic (default 50).
	RewardEvery int
	// PeriodsPerFrame bundles that many consecutive control periods into
	// each decide frame (default 1). K>1 requires the binary protocol
	// (BinSession.DecideMany): the device simulates K periods at its
	// current levels, ships all K observations in one frame, and applies
	// the final period's decision — trading per-period control latency for
	// K× fewer round trips, the regime where the served policy's cost must
	// stay negligible against the control period.
	PeriodsPerFrame int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Proto == "" {
		c.Proto = "json"
	}
	if c.PeriodS == 0 {
		c.PeriodS = 0.05
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RewardEvery == 0 {
		c.RewardEvery = 50
	}
	if c.PeriodsPerFrame == 0 {
		c.PeriodsPerFrame = 1
	}
	return c
}

// Validate checks the configuration.
func (c LoadConfig) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("serve: load config needs a base URL")
	}
	if c.Proto != "json" && c.Proto != "bin" {
		return fmt.Errorf("serve: unknown protocol %q (want json or bin)", c.Proto)
	}
	if c.Proto == "bin" && c.BinAddr == "" && len(c.BinAddrs) == 0 {
		return fmt.Errorf("serve: protocol bin needs a binary listener address")
	}
	if len(c.BinAddrs) > 0 && c.Proto != "bin" {
		return fmt.Errorf("serve: sharded addresses need the bin protocol")
	}
	if len(c.BinAddrs) > 1 && c.ShardFor == nil {
		return fmt.Errorf("serve: %d shard addresses need a ShardFor placement function", len(c.BinAddrs))
	}
	if c.Devices < 1 {
		return fmt.Errorf("serve: need at least one device, got %d", c.Devices)
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: negative worker count %d", c.Workers)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("serve: non-positive duration %v", c.Duration)
	}
	if c.PeriodS < 0 || c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("serve: bad period %v or epsilon %v", c.PeriodS, c.Epsilon)
	}
	if c.PeriodsPerFrame < 0 {
		return fmt.Errorf("serve: negative periods per frame %d", c.PeriodsPerFrame)
	}
	if c.PeriodsPerFrame > 1 && c.Proto != "bin" {
		return fmt.Errorf("serve: %d periods per frame needs the bin protocol", c.PeriodsPerFrame)
	}
	return nil
}

// LatencyQuantiles summarizes client-observed decision latency in
// nanoseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// LoadReport is the outcome of a load run. Decisions counts control
// periods (a K-period frame is K decisions); LatencyNs measures frame
// round trips.
type LoadReport struct {
	Proto           string  `json:"proto"`
	Devices         int     `json:"devices"`
	PeriodsPerFrame int     `json:"periods_per_frame,omitempty"`
	DurationS       float64 `json:"duration_s"`
	Decisions       uint64  `json:"decisions"`
	Errors          uint64  `json:"errors"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// LatencyNs holds exact sample quantiles (stats.Percentile's R-7
	// linear interpolation over every recorded round trip).
	LatencyNs LatencyQuantiles `json:"latency_ns"`
	// LatencyHistNs holds the same quantiles recovered from the shared
	// obs histogram — what a scrape-based monitor would report; exact
	// within bucket resolution.
	LatencyHistNs LatencyQuantiles `json:"latency_hist_ns"`
	// LatencyBuckets is the populated tail of the shared latency
	// histogram (log-spaced ns bins; le_ns -1 marks the overflow bin).
	LatencyBuckets []obs.Bucket `json:"latency_buckets,omitempty"`
	// Server is the target's /metrics snapshot taken after the run.
	Server *Metrics `json:"server,omitempty"`
}

// deviceStats is one device goroutine's ledger.
type deviceStats struct {
	decisions uint64
	errors    uint64
	latencies []int64
}

// RunLoad drives cfg.Devices simulated devices against the server and
// reports aggregate throughput and latency quantiles. It first waits for
// the server to pass /healthz, so callers can start server and load
// generator concurrently. The run is phased: every session is established
// before the clock starts, the cfg.Duration window measures decide
// traffic only, and the fleet closes after the window — so the reported
// rate is steady-state decide throughput, not session churn.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := workload.ByName(cfg.Scenario); err != nil {
		return nil, err
	}
	client := NewClient(cfg.BaseURL)
	if err := client.WaitHealthy(ctx, 10*time.Second); err != nil {
		return nil, err
	}
	// openFor resolves the decision transport for one device; health and
	// metrics stay HTTP. A sharded bin run places each device on its
	// owning shard via ShardFor over the endpoint-independent device seed,
	// so placement agrees with the router's ring by construction.
	openFor := func(int) func(context.Context, SessionOptions) (deviceSession, error) {
		return func(ctx context.Context, opts SessionOptions) (deviceSession, error) {
			return client.CreateSession(ctx, opts)
		}
	}
	if cfg.Proto == "bin" {
		addrs := cfg.BinAddrs
		if len(addrs) == 0 {
			addrs = []string{cfg.BinAddr}
		}
		clients := make([]*BinClient, len(addrs))
		for i, a := range addrs {
			clients[i] = NewBinClient(a)
			defer clients[i].Close()
		}
		openFor = func(idx int) func(context.Context, SessionOptions) (deviceSession, error) {
			bc := clients[0]
			if len(clients) > 1 {
				bc = clients[cfg.ShardFor(DeviceSeed(cfg.Seed, idx))%len(clients)]
			}
			return func(ctx context.Context, opts SessionOptions) (deviceSession, error) {
				return bc.OpenSession(ctx, opts)
			}
		}
	}

	// Every device observes its round trips into one shared histogram —
	// the fleet-side mirror of the server's decide-stage histograms.
	hist := obs.NewHistogram("pmload_decide_latency_ns", "client-observed decide round-trip latency")
	devStats := make([]deviceStats, cfg.Devices)

	// Device ownership: one contiguous range per worker in bounded mode,
	// one range per device otherwise.
	type span struct{ lo, hi int }
	var spans []span
	if w := cfg.Workers; w > 0 && w < cfg.Devices {
		for wk := 0; wk < w; wk++ {
			spans = append(spans, span{wk * cfg.Devices / w, (wk + 1) * cfg.Devices / w})
		}
	} else {
		for d := 0; d < cfg.Devices; d++ {
			spans = append(spans, span{d, d + 1})
		}
	}

	// Phase 1: establish every session BEFORE the clock starts, so the
	// measured window holds decide traffic only. (At fleet scale the
	// one-time session setup otherwise dominates a fixed window and the
	// throughput numbers stop meaning anything.)
	live := make([][]*loadDevice, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			for idx := sp.lo; idx < sp.hi; idx++ {
				d, err := newLoadDevice(ctx, openFor(idx), cfg, idx, &devStats[idx])
				if err != nil {
					devStats[idx].errors++
					continue
				}
				live[i] = append(live[i], d)
			}
		}(i, sp)
	}
	wg.Wait()

	// Phase 2: the measured decide window.
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			live[i] = decideRange(ctx, live[i], deadline, hist)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Phase 3: close the fleet outside the window.
	for i := range spans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, d := range live[i] {
				d.close()
			}
		}(i)
	}
	wg.Wait()

	rep := &LoadReport{Proto: cfg.Proto, Devices: cfg.Devices, PeriodsPerFrame: cfg.PeriodsPerFrame, DurationS: elapsed.Seconds()}
	var all []int64
	for _, st := range devStats {
		rep.Decisions += st.decisions
		rep.Errors += st.errors
		all = append(all, st.latencies...)
	}
	if elapsed > 0 {
		rep.DecisionsPerSec = float64(rep.Decisions) / elapsed.Seconds()
	}
	rep.LatencyNs = quantiles(all)
	snap := hist.Snapshot()
	rep.LatencyHistNs = LatencyQuantiles{
		P50: snap.Quantile(0.50),
		P90: snap.Quantile(0.90),
		P99: snap.Quantile(0.99),
		Max: float64(snap.Max),
	}
	rep.LatencyBuckets = snap.NonZero()
	if m, err := client.Metrics(ctx); err == nil {
		rep.Server = &m
	}
	return rep, nil
}

// deviceSession is what a load-generated device needs from a session,
// satisfied by both RemoteSession (HTTP/JSON) and BinSession (wire frames)
// so one device loop measures either transport.
type deviceSession interface {
	NumClusters() int
	Decide(ctx context.Context, obs []Observation) ([]int, error)
	Reward(ctx context.Context, r float64) (SessionStats, error)
	Close(ctx context.Context) (SessionStats, error)
}

// multiPeriodSession is the optional frame-batching extension a session
// needs for PeriodsPerFrame > 1; BinSession implements it.
type multiPeriodSession interface {
	DecideMany(ctx context.Context, obs []Observation) ([]int, error)
}

// loadDevice is one simulated device's live state: local chip + scenario,
// its session, and the frame-assembly scratch. The per-device loop is a
// struct (not a closed-over goroutine body) so a worker can interleave
// many devices frame-by-frame without one goroutine each.
type loadDevice struct {
	cfg     LoadConfig
	st      *deviceStats
	sess    deviceSession
	decide  func(context.Context, []Observation) ([]int, error)
	chip    *soc.Chip
	scen    workload.Scenario
	obs     []Observation
	frame   []Observation
	chipRes soc.ChipStep
	k, n    int
	period  int
}

// newLoadDevice builds device idx's chip, scenario, and session. Errors
// are counted into st and returned; the device never joins the fleet.
func newLoadDevice(ctx context.Context, open func(context.Context, SessionOptions) (deviceSession, error), cfg LoadConfig, idx int, st *deviceStats) (*loadDevice, error) {
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return nil, err
	}
	spec, err := workload.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	seed := DeviceSeed(cfg.Seed, idx)
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return nil, err
	}
	chip.Reset()
	scen.Reset(seed)

	sess, err := open(ctx, SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
	if err != nil {
		return nil, err
	}
	d := &loadDevice{cfg: cfg, st: st, sess: sess, chip: chip, scen: scen, k: cfg.PeriodsPerFrame, n: chip.NumClusters()}
	fail := func(err error) (*loadDevice, error) {
		d.close()
		return nil, err
	}
	if sess.NumClusters() != d.n {
		return fail(fmt.Errorf("server chip has %d clusters, device has %d", sess.NumClusters(), d.n))
	}
	d.decide = sess.Decide
	if d.k > 1 {
		mp, ok := sess.(multiPeriodSession)
		if !ok {
			return fail(fmt.Errorf("session %T cannot batch %d periods per frame", sess, d.k))
		}
		d.decide = mp.DecideMany
	}
	d.obs = make([]Observation, d.n)
	for i := range d.obs {
		d.obs[i] = Observation{QoS: 1, ClusterQoS: 1, Level: chip.Cluster(i).Level()}
	}
	d.frame = make([]Observation, 0, d.k*d.n)
	return d, nil
}

// stepOnce advances the device one control period at its current OPP
// levels and rebuilds obs from the step's telemetry.
func (d *loadDevice) stepOnce() error {
	p := d.scen.Next(d.cfg.PeriodS)
	if err := d.chip.StepInto(&d.chipRes, p.Demands, d.cfg.PeriodS); err != nil {
		return err
	}
	var demanded, completed float64
	for i, dem := range p.Demands {
		demanded += dem.Cycles
		completed += d.chipRes.Clusters[i].CompletedCycles
	}
	q := qos.PeriodQoS(demanded, completed)
	for i := range d.obs {
		cr := d.chipRes.Clusters[i]
		dr := 0.0
		if cr.CapacityCycles > 0 {
			dr = p.Demands[i].Cycles / cr.CapacityCycles
		}
		d.obs[i] = Observation{
			Utilization: cr.Utilization,
			DemandRatio: dr,
			QoS:         q,
			ClusterQoS:  qos.PeriodQoS(p.Demands[i].Cycles, cr.CompletedCycles),
			Critical:    p.Critical,
			Level:       d.chip.Cluster(i).Level(),
		}
	}
	return nil
}

// frameStep runs one decide frame: assemble the K-period frame, fetch the
// decision, apply the freshest period's levels, advance the chip, and
// post the reward on cadence.
func (d *loadDevice) frameStep(ctx context.Context, hist *obs.Histogram) error {
	// Assemble the frame: the current period's observations, plus k-1
	// further periods simulated open-loop at the current levels.
	d.frame = append(d.frame[:0], d.obs...)
	for p := 1; p < d.k; p++ {
		if err := d.stepOnce(); err != nil {
			return err
		}
		d.frame = append(d.frame, d.obs...)
	}
	t0 := time.Now()
	levels, err := d.decide(ctx, d.frame)
	if err != nil {
		return err
	}
	d.st.decisions += uint64(d.k)
	lat := time.Since(t0).Nanoseconds()
	d.st.latencies = append(d.st.latencies, lat)
	hist.Observe(lat)
	if len(levels) != d.k*d.n {
		return fmt.Errorf("server returned %d levels for %d observations", len(levels), d.k*d.n)
	}
	// Apply the final period's decision — the freshest one — and step
	// into the next period under it.
	for i := 0; i < d.n; i++ {
		d.chip.Cluster(i).SetLevel(levels[(d.k-1)*d.n+i])
	}
	if err := d.stepOnce(); err != nil {
		return err
	}
	d.period += d.k
	if d.cfg.RewardEvery > 0 && d.period/d.cfg.RewardEvery != (d.period-d.k)/d.cfg.RewardEvery {
		if _, err := d.sess.Reward(ctx, -d.chipRes.EnergyJ); err != nil {
			return err
		}
	}
	return nil
}

// close ends the device's session, counting a failed close as an error.
func (d *loadDevice) close() {
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := d.sess.Close(closeCtx); err != nil {
		d.st.errors++
	}
}

// decideRange round-robins one decide frame per live device per pass
// until the deadline, checking the deadline between frames so a pass
// over a large range cannot overrun the window. A device error aborts
// that device (counted, session closed); it never panics the fleet. It
// returns the devices still live for the caller to close. With one
// device this degenerates to the classic per-device loop.
func decideRange(ctx context.Context, live []*loadDevice, deadline time.Time, hist *obs.Histogram) []*loadDevice {
	for len(live) > 0 {
		n := 0
		for j, d := range live {
			if !time.Now().Before(deadline) || ctx.Err() != nil {
				// Window closed mid-pass: keep the unvisited tail live.
				return append(live[:n], live[j:]...)
			}
			if err := d.frameStep(ctx, hist); err != nil {
				d.st.errors++
				d.close()
				continue
			}
			live[n] = d
			n++
		}
		live = live[:n]
		if !time.Now().Before(deadline) || ctx.Err() != nil {
			break
		}
	}
	return live
}

// quantiles computes latency quantiles over raw nanosecond samples using
// stats.Percentile's R-7 linear interpolation — the same definition the
// experiment harness reports — on a sorted copy, so the caller's slice is
// never reordered. (The previous nearest-rank truncation biased p90/p99
// low for small samples and disagreed with stats.Percentile; the
// regression test pins the two implementations together.)
func quantiles(ns []int64) LatencyQuantiles {
	if len(ns) == 0 {
		return LatencyQuantiles{}
	}
	s := make([]float64, len(ns))
	for i, v := range ns {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	at := func(p float64) float64 {
		v, _ := stats.PercentileSorted(s, p)
		return v
	}
	return LatencyQuantiles{
		P50: at(50),
		P90: at(90),
		P99: at(99),
		Max: s[len(s)-1],
	}
}
