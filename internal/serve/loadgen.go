package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rlpm/internal/obs"
	"rlpm/internal/qos"
	"rlpm/internal/soc"
	"rlpm/internal/stats"
	"rlpm/internal/workload"
)

// LoadConfig parameterizes a load-generation run: N simulated devices,
// each running its own chip model and workload scenario locally and asking
// the server for every OPP decision — the fleet-shaped traffic the serving
// subsystem exists for.
type LoadConfig struct {
	// BaseURL targets the server's HTTP listener (e.g.
	// "http://127.0.0.1:7421"). Health checks and the post-run metrics
	// snapshot always ride HTTP, whatever Proto says.
	BaseURL string
	// Proto selects the decision transport: "json" (default) drives the
	// HTTP/JSON path, "bin" the internal/wire binary protocol.
	Proto string
	// BinAddr is the binary listener's address ("host:port"); required
	// when Proto is "bin".
	BinAddr string
	// Devices is the concurrent device count.
	Devices int
	// Duration is the wall-clock run length.
	Duration time.Duration
	// PeriodS is each device's simulated DVFS control period (default 50 ms
	// of simulated time; the wire round trip is what's actually measured).
	PeriodS float64
	// Scenario is the workload every device runs (default "gaming");
	// per-device seeds decorrelate the demand streams.
	Scenario string
	// Seed derives per-device scenario and exploration seeds.
	Seed uint64
	// Epsilon is the per-session exploration rate (default 0: greedy).
	Epsilon float64
	// RewardEvery posts a device-computed reward every that many periods;
	// 0 disables reward traffic (default 50).
	RewardEvery int
	// PeriodsPerFrame bundles that many consecutive control periods into
	// each decide frame (default 1). K>1 requires the binary protocol
	// (BinSession.DecideMany): the device simulates K periods at its
	// current levels, ships all K observations in one frame, and applies
	// the final period's decision — trading per-period control latency for
	// K× fewer round trips, the regime where the served policy's cost must
	// stay negligible against the control period.
	PeriodsPerFrame int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Proto == "" {
		c.Proto = "json"
	}
	if c.PeriodS == 0 {
		c.PeriodS = 0.05
	}
	if c.Scenario == "" {
		c.Scenario = "gaming"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RewardEvery == 0 {
		c.RewardEvery = 50
	}
	if c.PeriodsPerFrame == 0 {
		c.PeriodsPerFrame = 1
	}
	return c
}

// Validate checks the configuration.
func (c LoadConfig) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("serve: load config needs a base URL")
	}
	if c.Proto != "json" && c.Proto != "bin" {
		return fmt.Errorf("serve: unknown protocol %q (want json or bin)", c.Proto)
	}
	if c.Proto == "bin" && c.BinAddr == "" {
		return fmt.Errorf("serve: protocol bin needs a binary listener address")
	}
	if c.Devices < 1 {
		return fmt.Errorf("serve: need at least one device, got %d", c.Devices)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("serve: non-positive duration %v", c.Duration)
	}
	if c.PeriodS < 0 || c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("serve: bad period %v or epsilon %v", c.PeriodS, c.Epsilon)
	}
	if c.PeriodsPerFrame < 0 {
		return fmt.Errorf("serve: negative periods per frame %d", c.PeriodsPerFrame)
	}
	if c.PeriodsPerFrame > 1 && c.Proto != "bin" {
		return fmt.Errorf("serve: %d periods per frame needs the bin protocol", c.PeriodsPerFrame)
	}
	return nil
}

// LatencyQuantiles summarizes client-observed decision latency in
// nanoseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// LoadReport is the outcome of a load run. Decisions counts control
// periods (a K-period frame is K decisions); LatencyNs measures frame
// round trips.
type LoadReport struct {
	Proto           string  `json:"proto"`
	Devices         int     `json:"devices"`
	PeriodsPerFrame int     `json:"periods_per_frame,omitempty"`
	DurationS       float64 `json:"duration_s"`
	Decisions       uint64  `json:"decisions"`
	Errors          uint64  `json:"errors"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// LatencyNs holds exact sample quantiles (stats.Percentile's R-7
	// linear interpolation over every recorded round trip).
	LatencyNs LatencyQuantiles `json:"latency_ns"`
	// LatencyHistNs holds the same quantiles recovered from the shared
	// obs histogram — what a scrape-based monitor would report; exact
	// within bucket resolution.
	LatencyHistNs LatencyQuantiles `json:"latency_hist_ns"`
	// LatencyBuckets is the populated tail of the shared latency
	// histogram (log-spaced ns bins; le_ns -1 marks the overflow bin).
	LatencyBuckets []obs.Bucket `json:"latency_buckets,omitempty"`
	// Server is the target's /metrics snapshot taken after the run.
	Server *Metrics `json:"server,omitempty"`
}

// deviceStats is one device goroutine's ledger.
type deviceStats struct {
	decisions uint64
	errors    uint64
	latencies []int64
}

// RunLoad drives cfg.Devices simulated devices against the server until
// cfg.Duration elapses, then closes every session and reports aggregate
// throughput and latency quantiles. It first waits for the server to pass
// /healthz, so callers can start server and load generator concurrently.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := workload.ByName(cfg.Scenario); err != nil {
		return nil, err
	}
	client := NewClient(cfg.BaseURL)
	if err := client.WaitHealthy(ctx, 10*time.Second); err != nil {
		return nil, err
	}
	// open resolves the decision transport; health and metrics stay HTTP.
	open := func(ctx context.Context, opts SessionOptions) (deviceSession, error) {
		return client.CreateSession(ctx, opts)
	}
	if cfg.Proto == "bin" {
		bc := NewBinClient(cfg.BinAddr)
		defer bc.Close()
		open = func(ctx context.Context, opts SessionOptions) (deviceSession, error) {
			return bc.OpenSession(ctx, opts)
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// Every device observes its round trips into one shared histogram —
	// the fleet-side mirror of the server's decide-stage histograms.
	hist := obs.NewHistogram("pmload_decide_latency_ns", "client-observed decide round-trip latency")
	devStats := make([]deviceStats, cfg.Devices)
	var wg sync.WaitGroup
	for d := 0; d < cfg.Devices; d++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			devStats[idx] = runDevice(ctx, open, cfg, idx, deadline, hist)
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Proto: cfg.Proto, Devices: cfg.Devices, PeriodsPerFrame: cfg.PeriodsPerFrame, DurationS: elapsed.Seconds()}
	var all []int64
	for _, st := range devStats {
		rep.Decisions += st.decisions
		rep.Errors += st.errors
		all = append(all, st.latencies...)
	}
	if elapsed > 0 {
		rep.DecisionsPerSec = float64(rep.Decisions) / elapsed.Seconds()
	}
	rep.LatencyNs = quantiles(all)
	snap := hist.Snapshot()
	rep.LatencyHistNs = LatencyQuantiles{
		P50: snap.Quantile(0.50),
		P90: snap.Quantile(0.90),
		P99: snap.Quantile(0.99),
		Max: float64(snap.Max),
	}
	rep.LatencyBuckets = snap.NonZero()
	if m, err := client.Metrics(ctx); err == nil {
		rep.Server = &m
	}
	return rep, nil
}

// deviceSession is what a load-generated device needs from a session,
// satisfied by both RemoteSession (HTTP/JSON) and BinSession (wire frames)
// so one device loop measures either transport.
type deviceSession interface {
	NumClusters() int
	Decide(ctx context.Context, obs []Observation) ([]int, error)
	Reward(ctx context.Context, r float64) (SessionStats, error)
	Close(ctx context.Context) (SessionStats, error)
}

// multiPeriodSession is the optional frame-batching extension a session
// needs for PeriodsPerFrame > 1; BinSession implements it.
type multiPeriodSession interface {
	DecideMany(ctx context.Context, obs []Observation) ([]int, error)
}

// runDevice is one simulated device's life: local chip + scenario, every
// control period's decision fetched from the server, periodic reward
// reports, session closed at the end. Errors abort the device and are
// counted; they never panic the fleet.
func runDevice(ctx context.Context, open func(context.Context, SessionOptions) (deviceSession, error), cfg LoadConfig, idx int, deadline time.Time, hist *obs.Histogram) deviceStats {
	var st deviceStats
	fail := func(error) deviceStats { st.errors++; return st }

	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		return fail(err)
	}
	spec, err := workload.ByName(cfg.Scenario)
	if err != nil {
		return fail(err)
	}
	seed := cfg.Seed + uint64(idx)*0x9e3779b9
	scen, err := workload.New(spec, chip.NumClusters(), seed)
	if err != nil {
		return fail(err)
	}
	chip.Reset()
	scen.Reset(seed)

	sess, err := open(ctx, SessionOptions{Epsilon: cfg.Epsilon, Seed: seed})
	if err != nil {
		return fail(err)
	}
	defer func() {
		closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := sess.Close(closeCtx); err != nil {
			st.errors++
		}
	}()
	if sess.NumClusters() != chip.NumClusters() {
		return fail(fmt.Errorf("server chip has %d clusters, device has %d", sess.NumClusters(), chip.NumClusters()))
	}

	n := chip.NumClusters()
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{QoS: 1, ClusterQoS: 1, Level: chip.Cluster(i).Level()}
	}
	k := cfg.PeriodsPerFrame
	decide := sess.Decide
	if k > 1 {
		mp, ok := sess.(multiPeriodSession)
		if !ok {
			return fail(fmt.Errorf("session %T cannot batch %d periods per frame", sess, k))
		}
		decide = mp.DecideMany
	}
	var chipRes soc.ChipStep
	// stepOnce advances the device one control period at its current OPP
	// levels and rebuilds obs from the step's telemetry.
	stepOnce := func() error {
		p := scen.Next(cfg.PeriodS)
		if err := chip.StepInto(&chipRes, p.Demands, cfg.PeriodS); err != nil {
			return err
		}
		var demanded, completed float64
		for i, d := range p.Demands {
			demanded += d.Cycles
			completed += chipRes.Clusters[i].CompletedCycles
		}
		q := qos.PeriodQoS(demanded, completed)
		for i := range obs {
			cr := chipRes.Clusters[i]
			dr := 0.0
			if cr.CapacityCycles > 0 {
				dr = p.Demands[i].Cycles / cr.CapacityCycles
			}
			obs[i] = Observation{
				Utilization: cr.Utilization,
				DemandRatio: dr,
				QoS:         q,
				ClusterQoS:  qos.PeriodQoS(p.Demands[i].Cycles, cr.CompletedCycles),
				Critical:    p.Critical,
				Level:       chip.Cluster(i).Level(),
			}
		}
		return nil
	}
	frame := make([]Observation, 0, k*n)
	period := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		// Assemble the frame: the current period's observations, plus k-1
		// further periods simulated open-loop at the current levels.
		frame = append(frame[:0], obs...)
		for p := 1; p < k; p++ {
			if err := stepOnce(); err != nil {
				return fail(err)
			}
			frame = append(frame, obs...)
		}
		t0 := time.Now()
		levels, err := decide(ctx, frame)
		if err != nil {
			return fail(err)
		}
		st.decisions += uint64(k)
		lat := time.Since(t0).Nanoseconds()
		st.latencies = append(st.latencies, lat)
		hist.Observe(lat)
		if len(levels) != k*n {
			return fail(fmt.Errorf("server returned %d levels for %d observations", len(levels), k*n))
		}
		// Apply the final period's decision — the freshest one — and step
		// into the next period under it.
		for i := 0; i < n; i++ {
			chip.Cluster(i).SetLevel(levels[(k-1)*n+i])
		}
		if err := stepOnce(); err != nil {
			return fail(err)
		}
		period += k
		if cfg.RewardEvery > 0 && period/cfg.RewardEvery != (period-k)/cfg.RewardEvery {
			if _, err := sess.Reward(ctx, -chipRes.EnergyJ); err != nil {
				return fail(err)
			}
		}
	}
	return st
}

// quantiles computes latency quantiles over raw nanosecond samples using
// stats.Percentile's R-7 linear interpolation — the same definition the
// experiment harness reports — on a sorted copy, so the caller's slice is
// never reordered. (The previous nearest-rank truncation biased p90/p99
// low for small samples and disagreed with stats.Percentile; the
// regression test pins the two implementations together.)
func quantiles(ns []int64) LatencyQuantiles {
	if len(ns) == 0 {
		return LatencyQuantiles{}
	}
	s := make([]float64, len(ns))
	for i, v := range ns {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	at := func(p float64) float64 {
		v, _ := stats.PercentileSorted(s, p)
		return v
	}
	return LatencyQuantiles{
		P50: at(50),
		P90: at(90),
		P99: at(99),
		Max: s[len(s)-1],
	}
}
