package serve

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rlpm/internal/core"
	"rlpm/internal/leaktest"
)

// TestBinPendingCallFailsFastOnMidResponseClose is the regression test for
// the fail-fast contract: when the server closes the connection after
// reading a request but before answering, the pending call must surface a
// typed ErrConnLost immediately — not sit out the full call timeout.
func TestBinPendingCallFailsFastOnMidResponseClose(t *testing.T) {
	defer leaktest.Check(t)()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	// A rude server: swallow whatever arrives for a moment, then hang up
	// without ever responding.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 256)
		conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}()

	c := NewBinClient(ln.Addr().String())
	defer c.Close()
	c.SetCallTimeout(30 * time.Second) // far beyond the test timeout: failure must not come from here
	c.SetRetryBudget(0)                // surface the first error, no retries

	start := time.Now()
	_, err = c.OpenSession(context.Background(), SessionOptions{})
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("open against hanging-up server: %v, want ErrConnLost", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("pending call took %v to fail; want fail-fast on connection close", e)
	}
}

// TestDecideSeqDedupAndBadSeq exercises the sequence-number contract
// directly: a replayed number returns the cached decision without
// advancing any state, and a gap is a typed protocol error.
func TestDecideSeqDedupAndBadSeq(t *testing.T) {
	srv := newTestServer(t, testModel(t, 4, 6), nil, Config{})
	sess, err := srv.CreateSession(SessionOptions{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	obs := make([]Observation, 2)
	first := make([]int, 2)
	if _, err := sess.DecideSeq(1, obs, first); err != nil {
		t.Fatalf("seq 1: %v", err)
	}

	// Replay of seq 1 must return the identical decision and be counted.
	replay := make([]int, 2)
	replayed, err := sess.DecideSeq(1, obs, replay)
	if err != nil || !replayed {
		t.Fatalf("replay of seq 1: replayed=%v err=%v", replayed, err)
	}
	if replay[0] != first[0] || replay[1] != first[1] {
		t.Fatalf("replayed decision %v != original %v", replay, first)
	}
	if m := srv.MetricsSnapshot(); m.DecidesDeduped != 1 {
		t.Fatalf("DecidesDeduped = %d, want 1", m.DecidesDeduped)
	}

	// A replay must not have advanced the RNG: seq 2 now and seq 2 on a
	// twin session that never replayed must agree.
	twin, err := srv.CreateSession(SessionOptions{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatalf("twin: %v", err)
	}
	tw := make([]int, 2)
	if _, err := twin.DecideSeq(1, obs, tw); err != nil {
		t.Fatalf("twin seq 1: %v", err)
	}
	next, twNext := make([]int, 2), make([]int, 2)
	if _, err := sess.DecideSeq(2, obs, next); err != nil {
		t.Fatalf("seq 2: %v", err)
	}
	if _, err := twin.DecideSeq(2, obs, twNext); err != nil {
		t.Fatalf("twin seq 2: %v", err)
	}
	if next[0] != twNext[0] || next[1] != twNext[1] {
		t.Fatalf("replay perturbed the RNG stream: %v vs twin %v", next, twNext)
	}

	// Gaps are protocol errors, not silently served.
	if _, err := sess.DecideSeq(5, obs, next); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("seq gap: %v, want ErrBadSeq", err)
	}
	// And old sequence numbers (beyond the one-deep replay window) too.
	if _, err := sess.DecideSeq(1, obs, next); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("stale seq: %v, want ErrBadSeq", err)
	}
}

// TestSessionTTLReaping verifies idle sessions are reaped after the TTL
// and that touching a session keeps it alive.
func TestSessionTTLReaping(t *testing.T) {
	defer leaktest.Check(t)()
	m := testModel(t, 4, 6)
	srv, err := New(m, nil, Config{SessionTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}

	// Keep it busy for a few TTLs: must survive.
	obs := make([]Observation, 2)
	for i := 0; i < 10; i++ {
		if _, err := sess.Decide(obs); err != nil {
			t.Fatalf("decide while active: %v", err)
		}
		time.Sleep(15 * time.Millisecond)
	}

	// Go idle: must be reaped.
	deadline := time.Now().Add(5 * time.Second)
	for srv.MetricsSnapshot().SessionsReaped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := srv.CloseSession(sess.ID()); !errors.Is(err, ErrNoSession) {
		t.Fatalf("close after reap: %v, want ErrNoSession", err)
	}
}

// TestEpochMismatchIsUnknownSession pins the resume trigger: a handle or
// id presented with a stale epoch maps to ErrUnknownSession (which also
// satisfies errors.Is(err, ErrNoSession) so untyped clients still work).
func TestEpochMismatchIsUnknownSession(t *testing.T) {
	m := testModel(t, 4, 6)
	srv, err := New(m, nil, Config{Epoch: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	sess, err := srv.CreateSession(SessionOptions{})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}

	if _, err := srv.SessionByHandleEpoch(sess.Handle(), 2); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("stale epoch by handle: %v, want ErrUnknownSession", err)
	}
	if _, err := srv.SessionByIDEpoch(sess.ID(), 2); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("stale epoch by id: %v, want ErrUnknownSession", err)
	}
	if !errors.Is(ErrUnknownSession, ErrNoSession) {
		t.Fatal("ErrUnknownSession must wrap ErrNoSession")
	}
	// The current epoch and the legacy wildcard 0 both resolve.
	if _, err := srv.SessionByHandleEpoch(sess.Handle(), 3); err != nil {
		t.Fatalf("current epoch: %v", err)
	}
	if _, err := srv.SessionByHandleEpoch(sess.Handle(), 0); err != nil {
		t.Fatalf("legacy epoch 0: %v", err)
	}
}

// TestResumeSessionContinuesRNGStream is the unit-level lockstep proof:
// a session resumed on a second server from a client mirror produces
// exactly the decisions the original would have — exploration draws,
// ε decay, demand history and all.
func TestResumeSessionContinuesRNGStream(t *testing.T) {
	m := testModel(t, 4, 6)
	srvA := newTestServer(t, m, nil, Config{})
	srvB := newTestServer(t, m, nil, Config{})

	opts := SessionOptions{Epsilon: 0.8, EpsilonDecay: 0.99, EpsilonMin: 0.05, Seed: 31}
	orig, err := srvA.CreateSession(opts)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	mirror := newSessionMirror(opts, m.NumLevels())
	stream := testObs(m, 77, 20)

	levels := make([]int, 2)
	for i := 0; i < 10; i++ {
		if _, err := orig.DecideSeq(uint64(i+1), stream[i], levels); err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		mirror.ackDecide(stream[i], levels)
	}

	resumed, err := srvB.ResumeSession(mirror.resumeState())
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	want, got := make([]int, 2), make([]int, 2)
	// The replay cache survived the hop: a retry of the last pre-restart
	// decide still dedups on the new incarnation (and, as the lockstep
	// checks below prove, without perturbing the RNG stream).
	replayed, err := resumed.DecideSeq(10, stream[9], got)
	if err != nil || !replayed {
		t.Fatalf("replay across resume: replayed=%v err=%v", replayed, err)
	}
	if got[0] != levels[0] || got[1] != levels[1] {
		t.Fatalf("replay across resume returned %v, want cached %v", got, levels)
	}
	for i := 10; i < 20; i++ {
		if _, err := orig.DecideSeq(uint64(i+1), stream[i], want); err != nil {
			t.Fatalf("original decide %d: %v", i, err)
		}
		if _, err := resumed.DecideSeq(uint64(i+1), stream[i], got); err != nil {
			t.Fatalf("resumed decide %d: %v", i, err)
		}
		if want[0] != got[0] || want[1] != got[1] {
			t.Fatalf("period %d: resumed session chose %v, original %v", i, got, want)
		}
	}
	if s := srvB.MetricsSnapshot(); s.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", s.Resumes)
	}
}

// TestDrainWritesFinalCheckpoint verifies the graceful half of shutdown:
// Drain closes binary listeners, waits out live connections, and publishes
// a loadable checkpoint.
func TestDrainWritesFinalCheckpoint(t *testing.T) {
	defer leaktest.Check(t)()
	m := testModel(t, 4, 6)
	path := filepath.Join(t.TempDir(), "final.ckpt")
	srv, err := New(m, nil, Config{CheckpointPath: path})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeBin(ln) }()

	c := NewBinClient(ln.Addr().String())
	sess, err := c.OpenSession(context.Background(), SessionOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := sess.Decide(context.Background(), make([]Observation, 2)); err != nil {
		t.Fatalf("decide: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ServeBin after drain: %v", err)
	}
	snap, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if len(snap.Tables) != 2 {
		t.Fatalf("checkpoint has %d tables, want 2", len(snap.Tables))
	}
	c.Close()
}

// TestSaveCheckpointCrashRecovery simulates a crash at every stage of the
// write→sync→rename→dir-sync sequence via injected fsHooks and asserts the
// previously published checkpoint always survives intact.
func TestSaveCheckpointCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	_, good := testSnapshot(t, 3)
	if _, err := SaveCheckpoint(path, good); err != nil {
		t.Fatalf("baseline save: %v", err)
	}
	_, next := testSnapshot(t, 3)
	next.Tables[0][0][0] = 42

	boom := errors.New("injected crash")
	cases := []struct {
		name string
		fs   fsHooks
	}{
		{"sync fails", fsHooks{
			syncFile: func(*os.File) error { return boom },
			rename:   os.Rename, syncDir: syncDir,
		}},
		{"rename fails", fsHooks{
			syncFile: (*os.File).Sync,
			rename:   func(_, _ string) error { return boom }, syncDir: syncDir,
		}},
		// A crash between write and rename: the temp file holds a
		// truncated image and the rename never happens.
		{"crash before rename", fsHooks{
			syncFile: func(f *os.File) error { return f.Truncate(10) },
			rename:   func(_, _ string) error { return boom }, syncDir: syncDir,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := saveCheckpoint(path, next, c.fs); !errors.Is(err, boom) {
				t.Fatalf("crashing save: %v, want injected crash", err)
			}
			snap, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("previous checkpoint unreadable after crash: %v", err)
			}
			if snap.Tables[0][0][0] == 42 {
				t.Fatal("crashed save partially published")
			}
		})
	}

	// The truncated temp image, had it been renamed into place, would have
	// been rejected as corrupt — never silently served.
	trunc := filepath.Join(dir, "torn.ckpt")
	tornFS := fsHooks{
		syncFile: func(f *os.File) error { return f.Truncate(10) },
		rename:   os.Rename, syncDir: syncDir,
	}
	if _, err := saveCheckpoint(trunc, next, tornFS); err != nil {
		t.Fatalf("torn save: %v", err)
	}
	if _, err := LoadCheckpoint(trunc); !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Fatalf("torn checkpoint load: %v, want ErrCheckpointCorrupt", err)
	}
}

// TestOverloadBackoffHintRoundTrips verifies the adaptive hint: an
// overloaded server answers HTTP with 429 + Retry-After, and the client
// error carries the hint as a BackoffError.
func TestOverloadBackoffHintRoundTrips(t *testing.T) {
	srv := newTestServer(t, testModel(t, 4, 6), nil, Config{})
	// Teach the EWMA a long queue wait so the hint is non-trivial.
	srv.batch.observeWait(100 * time.Millisecond)
	hint := srv.batch.backoffHintMs()
	if hint < 5 || hint > 1000 {
		t.Fatalf("backoff hint %dms outside [5ms, 1000ms]", hint)
	}
	if srv.batch.backoffHintMs() != hint {
		t.Fatal("hint not stable across reads")
	}
	// Saturate the EWMA: the hint must clamp, not grow without bound.
	for i := 0; i < 64; i++ {
		srv.batch.observeWait(10 * time.Second)
	}
	if h := srv.batch.backoffHintMs(); h != 1000 {
		t.Fatalf("saturated hint %dms, want 1000ms clamp", h)
	}
}
