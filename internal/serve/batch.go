package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/obs"
)

// batchReq is one session's exploitation lookups awaiting a shared batch.
// Instances are pooled: the done channel (capacity 1) is created once and
// reused across submissions, so Do allocates nothing in steady state.
type batchReq struct {
	lookups  []Lookup
	out      []int
	done     chan error
	enqueued time.Time // submission instant, for the queue-wait histogram
}

var batchReqPool = sync.Pool{
	New: func() any { return &batchReq{done: make(chan error, 1)} },
}

// putBatchReq returns a request to the pool. The done channel must be
// empty: the worker sends exactly once per popped request, and Do receives
// that send before releasing.
func putBatchReq(r *batchReq) {
	r.lookups, r.out = nil, nil
	batchReqPool.Put(r)
}

// batcherObs is the batcher's slice of the server's metrics registry:
// dispatch counters plus the three batch-side stages of the decide path.
type batcherObs struct {
	batches    *obs.Counter
	lookups    *obs.Counter
	rejected   *obs.Counter   // submits refused with ErrOverloaded
	stale      *obs.Counter   // queued requests shed past the queue deadline
	queueWait  *obs.Histogram // submit → joins a dispatching batch
	assemble   *obs.Histogram // batch opens → dispatch (linger + grabbing)
	backendLat *obs.Histogram // backend.Decide wall time
}

// opportunisticPolls bounds how many consecutive empty Pops the worker's
// opportunistic grab phase retries before dispatching. Each retry is one
// ring probe (~ns): enough for a producer mid-publish to land, cheap
// enough never to matter when the ring is truly empty.
const opportunisticPolls = 8

// batcher coalesces concurrent decide requests into batched backend calls,
// the software mirror of hwpolicy's multi-channel doorbell: many waiters,
// one conversation with the expensive resource. A single worker goroutine
// owns the backend, so backends need no internal locking.
//
// Submission rides a bounded lock-free MPSC ring instead of a buffered
// channel: Push either lands in O(1) or reports full, so submit→dispatch
// never blocks on a channel send. A full ring is backpressure — Do returns
// ErrOverloaded instead of silently stalling the caller.
type batcher struct {
	backend  Backend
	ring     *mpscRing
	wake     chan struct{} // capacity 1; producers nudge the parked worker
	maxBatch int           // max lookups per backend call
	linger   time.Duration // wait for co-travellers after the first arrival
	deadline time.Duration // CoDel-style queue-staleness bound; 0 disables
	quit     chan struct{}
	wg       sync.WaitGroup
	closeMu  sync.RWMutex
	closed   bool
	o        batcherObs

	maxOcc atomic.Uint64
	// ewmaWaitNs tracks recent queue wait (α=1/8) and sizes the backoff
	// hint handed to shed clients: retrying after ~2× the current queue
	// wait gives the ring time to drain without parking clients forever.
	ewmaWaitNs atomic.Int64
}

func newBatcher(backend Backend, maxBatch int, linger, deadline time.Duration, o batcherObs) *batcher {
	b := &batcher{
		backend:  backend,
		ring:     newMPSCRing(4 * maxBatch),
		wake:     make(chan struct{}, 1),
		maxBatch: maxBatch,
		linger:   linger,
		deadline: deadline,
		quit:     make(chan struct{}),
		o:        o,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// backoffHintMs converts the queue-wait EWMA into the retry hint carried
// on overload responses (Retry-After / the wire error frame's backoff
// field): ~2× the recent queue wait, clamped to [5ms, 1s]. The floor also
// covers ring-full rejections before any wait has been observed.
func (b *batcher) backoffHintMs() uint32 {
	ms := 2 * b.ewmaWaitNs.Load() / int64(time.Millisecond)
	if ms < 5 {
		ms = 5
	}
	if ms > 1000 {
		ms = 1000
	}
	return uint32(ms)
}

// observeWait feeds one request's queue wait to the histogram and EWMA.
func (b *batcher) observeWait(w time.Duration) {
	b.o.queueWait.Observe(w.Nanoseconds())
	old := b.ewmaWaitNs.Load()
	b.ewmaWaitNs.Store(old - old/8 + w.Nanoseconds()/8)
}

// Do submits lookups and blocks until the worker has resolved them into
// out. A full ring fails fast with ErrOverloaded — the caller sheds load
// rather than queueing unboundedly. Safe for concurrent use.
func (b *batcher) Do(lookups []Lookup, out []int) error {
	req := batchReqPool.Get().(*batchReq)
	req.lookups, req.out, req.enqueued = lookups, out, time.Now()
	// The read lock is held across the push: Close flips closed under the
	// write lock, so once Close proceeds no producer can be mid-push and
	// the worker's final drain empties the ring for good.
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		putBatchReq(req)
		return ErrServerClosed
	}
	ok := b.ring.Push(req)
	b.closeMu.RUnlock()
	if !ok {
		b.o.rejected.Add(1)
		putBatchReq(req)
		return ErrOverloaded
	}
	// Nudge a parked worker. The send happens after the push published, so
	// a worker that saw an empty ring before our item either finds the
	// token here or is already awake; capacity 1 makes a stale token at
	// worst one spurious poll, never a lost wakeup.
	select {
	case b.wake <- struct{}{}:
	default:
	}
	err := <-req.done
	putBatchReq(req)
	return err
}

// Close stops the worker; queued requests fail with ErrServerClosed.
func (b *batcher) Close() {
	b.closeMu.Lock()
	if !b.closed {
		b.closed = true
		close(b.quit)
	}
	b.closeMu.Unlock()
	b.wg.Wait()
}

func (b *batcher) stats() (batches, lookups, maxOcc uint64) {
	return b.o.batches.Load(), b.o.lookups.Load(), b.maxOcc.Load()
}

func (b *batcher) run() {
	defer b.wg.Done()
	var (
		reqs    []*batchReq
		flat    []Lookup
		actions []int
		held    *batchReq // popped off the ring but over this batch's cap
	)
	for {
		var first *batchReq
		if held != nil {
			first, held = held, nil
		} else {
			for first = b.ring.Pop(); first == nil; first = b.ring.Pop() {
				select {
				case <-b.wake:
				case <-b.quit:
					b.drain()
					return
				}
			}
		}
		opened := time.Now()
		// CoDel-style staleness shedding: a request that sat in the ring
		// past the queue deadline is failed instead of served — its client
		// has likely timed out and retried already, so serving it now is
		// wasted backend work ahead of fresher requests.
		if b.deadline > 0 && opened.Sub(first.enqueued) > b.deadline {
			b.o.stale.Add(1)
			b.observeWait(opened.Sub(first.enqueued))
			first.done <- ErrOverloaded
			continue
		}
		b.observeWait(opened.Sub(first.enqueued))
		reqs = append(reqs[:0], first)
		total := len(first.lookups)

		// accept admits r to the current batch unless its lookups would
		// push the batch past the cap; an overflowing request is held back
		// as the seed of the next batch (requests are indivisible — one
		// session's lookups never split across backend calls). A held
		// request's queue wait is observed when it opens the next batch.
		// Stale requests are shed here too, without consuming batch space.
		accept := func(r *batchReq) bool {
			wait := time.Since(r.enqueued)
			if b.deadline > 0 && wait > b.deadline {
				b.o.stale.Add(1)
				b.observeWait(wait)
				r.done <- ErrOverloaded
				return true // shed, but keep grabbing
			}
			if total+len(r.lookups) > b.maxBatch {
				held = r
				return false
			}
			b.observeWait(wait)
			reqs = append(reqs, r)
			total += len(r.lookups)
			return true
		}

		// Linger phase: wait a bounded time for co-travellers so light
		// load can still amortize a batch. Skipped when linger is 0.
		if b.linger > 0 && total < b.maxBatch {
			deadline := time.NewTimer(b.linger)
		lingering:
			for total < b.maxBatch {
				if r := b.ring.Pop(); r != nil {
					if !accept(r) {
						break lingering
					}
					continue
				}
				select {
				case <-b.wake:
				case <-deadline.C:
					break lingering
				case <-b.quit:
					break lingering
				}
			}
			deadline.Stop()
		}
		// Opportunistic phase: grab whatever is already queued, up to the
		// cap, without waiting long. A nil Pop does not mean the ring is
		// empty — a producer may have claimed the oldest slot but not yet
		// published it (the MPSC ring's claim and publish are two steps) —
		// so a bounded number of re-polls lets near-simultaneous submitters
		// land in this batch instead of each dispatching alone. The bound
		// keeps the worker from spinning on a stalled producer.
		polls := opportunisticPolls
		for held == nil && total < b.maxBatch {
			r := b.ring.Pop()
			if r == nil {
				if polls--; polls < 0 {
					break
				}
				continue
			}
			polls = opportunisticPolls
			if !accept(r) {
				break
			}
		}

		flat = flat[:0]
		for _, r := range reqs {
			flat = append(flat, r.lookups...)
		}
		if cap(actions) < len(flat) {
			actions = make([]int, len(flat))
		}
		actions = actions[:len(flat)]
		dispatch := time.Now()
		b.o.assemble.Observe(dispatch.Sub(opened).Nanoseconds())
		err := b.backend.Decide(flat, actions)
		b.o.backendLat.Observe(time.Since(dispatch).Nanoseconds())
		off := 0
		for _, r := range reqs {
			if err == nil {
				copy(r.out, actions[off:off+len(r.lookups)])
			}
			off += len(r.lookups)
			r.done <- err
		}
		b.o.batches.Add(1)
		b.o.lookups.Add(uint64(total))
		if occ := uint64(total); occ > b.maxOcc.Load() {
			b.maxOcc.Store(occ)
		}
	}
}

// drain fails everything still queued at shutdown. Safe because Close
// guarantees no producer is mid-push once quit is closed.
func (b *batcher) drain() {
	for r := b.ring.Pop(); r != nil; r = b.ring.Pop() {
		r.done <- ErrServerClosed
	}
}
