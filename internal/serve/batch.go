package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"rlpm/internal/obs"
)

// batchReq is one session's exploitation lookups awaiting a shared batch.
type batchReq struct {
	lookups  []Lookup
	out      []int
	done     chan error
	enqueued time.Time // submission instant, for the queue-wait histogram
}

// batcherObs is the batcher's slice of the server's metrics registry:
// dispatch counters plus the three batch-side stages of the decide path.
type batcherObs struct {
	batches    *obs.Counter
	lookups    *obs.Counter
	queueWait  *obs.Histogram // submit → joins a dispatching batch
	assemble   *obs.Histogram // batch opens → dispatch (linger + grabbing)
	backendLat *obs.Histogram // backend.Decide wall time
}

// batcher coalesces concurrent decide requests into batched backend calls,
// the software mirror of hwpolicy's multi-channel doorbell: many waiters,
// one conversation with the expensive resource. A single worker goroutine
// owns the backend, so backends need no internal locking.
type batcher struct {
	backend  Backend
	ch       chan *batchReq
	maxBatch int           // max lookups per backend call
	linger   time.Duration // wait for co-travellers after the first arrival
	quit     chan struct{}
	wg       sync.WaitGroup
	closeMu  sync.RWMutex
	closed   bool
	o        batcherObs

	maxOcc atomic.Uint64
}

func newBatcher(backend Backend, maxBatch int, linger time.Duration, o batcherObs) *batcher {
	b := &batcher{
		backend:  backend,
		ch:       make(chan *batchReq, 4*maxBatch),
		maxBatch: maxBatch,
		linger:   linger,
		quit:     make(chan struct{}),
		o:        o,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Do submits lookups and blocks until the worker has resolved them into
// out. Safe for concurrent use.
func (b *batcher) Do(lookups []Lookup, out []int) error {
	req := &batchReq{lookups: lookups, out: out, done: make(chan error, 1), enqueued: time.Now()}
	// The read lock is held across the channel send: Close flips closed
	// under the write lock, so once Close proceeds no sender can be
	// mid-send and the worker's final drain empties the channel for good.
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		return ErrServerClosed
	}
	b.ch <- req
	b.closeMu.RUnlock()
	return <-req.done
}

// Close stops the worker; queued requests fail with ErrServerClosed.
func (b *batcher) Close() {
	b.closeMu.Lock()
	if !b.closed {
		b.closed = true
		close(b.quit)
	}
	b.closeMu.Unlock()
	b.wg.Wait()
}

func (b *batcher) stats() (batches, lookups, maxOcc uint64) {
	return b.o.batches.Load(), b.o.lookups.Load(), b.maxOcc.Load()
}

func (b *batcher) run() {
	defer b.wg.Done()
	var (
		reqs    []*batchReq
		flat    []Lookup
		actions []int
		held    *batchReq // accepted off the channel but over this batch's cap
	)
	for {
		var first *batchReq
		if held != nil {
			first, held = held, nil
		} else {
			select {
			case first = <-b.ch:
			case <-b.quit:
				b.drain()
				return
			}
		}
		opened := time.Now()
		b.o.queueWait.Observe(opened.Sub(first.enqueued).Nanoseconds())
		reqs = append(reqs[:0], first)
		total := len(first.lookups)

		// accept admits r to the current batch unless its lookups would
		// push the batch past the cap; an overflowing request is held back
		// as the seed of the next batch (requests are indivisible — one
		// session's lookups never split across backend calls). A held
		// request's queue wait is observed when it opens the next batch.
		accept := func(r *batchReq) bool {
			if total+len(r.lookups) > b.maxBatch {
				held = r
				return false
			}
			b.o.queueWait.Observe(time.Since(r.enqueued).Nanoseconds())
			reqs = append(reqs, r)
			total += len(r.lookups)
			return true
		}

		// Linger phase: wait a bounded time for co-travellers so light
		// load can still amortize a batch. Skipped when linger is 0.
		if b.linger > 0 && total < b.maxBatch {
			deadline := time.NewTimer(b.linger)
		lingering:
			for total < b.maxBatch {
				select {
				case r := <-b.ch:
					if !accept(r) {
						break lingering
					}
				case <-deadline.C:
					break lingering
				case <-b.quit:
					break lingering
				}
			}
			deadline.Stop()
		}
		// Opportunistic phase: grab whatever is already queued, up to the
		// cap, without waiting.
	grabbing:
		for held == nil && total < b.maxBatch {
			select {
			case r := <-b.ch:
				if !accept(r) {
					break grabbing
				}
			default:
				break grabbing
			}
		}

		flat = flat[:0]
		for _, r := range reqs {
			flat = append(flat, r.lookups...)
		}
		if cap(actions) < len(flat) {
			actions = make([]int, len(flat))
		}
		actions = actions[:len(flat)]
		dispatch := time.Now()
		b.o.assemble.Observe(dispatch.Sub(opened).Nanoseconds())
		err := b.backend.Decide(flat, actions)
		b.o.backendLat.Observe(time.Since(dispatch).Nanoseconds())
		off := 0
		for _, r := range reqs {
			if err == nil {
				copy(r.out, actions[off:off+len(r.lookups)])
			}
			off += len(r.lookups)
			r.done <- err
		}
		b.o.batches.Add(1)
		b.o.lookups.Add(uint64(total))
		if occ := uint64(total); occ > b.maxOcc.Load() {
			b.maxOcc.Store(occ)
		}
	}
}

// drain fails everything still queued at shutdown. Safe because Close
// guarantees no sender is mid-send once quit is closed.
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.ch:
			r.done <- ErrServerClosed
		default:
			return
		}
	}
}
