// BinCaller: single-attempt, caller-owned-scratch calls over a BinClient.
//
// BinSession owns a mirror and retries transparently — exactly what a
// device wants and exactly what a *router* must not do: the router
// forwards calls on behalf of remote devices whose clients already run the
// retry/resume machinery, so a middle tier that retried too would double
// the recovery logic and hide shard failures the device needs to see
// (an unknown-session answer is the handoff signal). BinCaller is the thin
// alternative: one frame out, one frame back, typed errors through
// binCodeErr, no mirror, no retries. All scratch lives in the caller, so a
// router can pool BinCallers and keep its forward path allocation-free.
package serve

import (
	"context"

	"rlpm/internal/wire"
)

// BinSessionInfo is the shard-side identity a create or resume minted.
type BinSessionInfo struct {
	Handle    uint64
	Epoch     uint32
	NumLevels []int // valid until the BinCaller's next Create/Resume
}

// BinCaller holds the encode/decode scratch for single-attempt calls. Not
// goroutine-safe — callers pool them (one per in-flight forward).
type BinCaller struct {
	wbuf      []byte
	dok       wire.DecideOK
	levels    []int
	numLevels []int
	wireObs   []wire.Obs
}

// Create opens a session on c with no client-side mirror. One attempt.
func (b *BinCaller) Create(ctx context.Context, c *BinClient, opts SessionOptions) (BinSessionInfo, error) {
	mc, err := c.conn()
	if err != nil {
		return BinSessionInfo{}, err
	}
	reqID := mc.reqID.Add(1)
	b.wbuf = wire.FinishFrame(
		wire.AppendCreateReq(wire.BeginFrame(b.wbuf), wire.CreateReq{
			Epsilon:      opts.Epsilon,
			EpsilonMin:   opts.EpsilonMin,
			EpsilonDecay: opts.EpsilonDecay,
			Seed:         opts.Seed,
		}),
		wire.TCreate, reqID)
	return b.finishOpen(ctx, c, mc, reqID, wire.TCreateOK)
}

// Resume re-creates a session on c from mirror state. One attempt.
func (b *BinCaller) Resume(ctx context.Context, c *BinClient, st ResumeState) (BinSessionInfo, error) {
	mc, err := c.conn()
	if err != nil {
		return BinSessionInfo{}, err
	}
	reqID := mc.reqID.Add(1)
	rr := wire.ResumeReq{
		Opts: wire.CreateReq{
			Epsilon:      st.Options.Epsilon,
			EpsilonMin:   st.Options.EpsilonMin,
			EpsilonDecay: st.Options.EpsilonDecay,
			Seed:         st.Options.Seed,
		},
		EpsNow:     st.Epsilon,
		Seq:        st.Seq,
		Decisions:  st.Decisions,
		Rewards:    st.Rewards,
		RewardSum:  st.RewardSum,
		Rng:        st.Rng,
		PrevDemand: st.PrevDemand,
		LastLevels: st.LastLevels,
	}
	b.wbuf = wire.FinishFrame(
		wire.AppendResumeReq(wire.BeginFrame(b.wbuf), &rr), wire.TResume, reqID)
	return b.finishOpen(ctx, c, mc, reqID, wire.TResumeOK)
}

func (b *BinCaller) finishOpen(ctx context.Context, c *BinClient, mc *muxConn, reqID uint32, wantType byte) (BinSessionInfo, error) {
	call, _, err := c.call(ctx, mc, b.wbuf, reqID, wantType)
	if err != nil {
		return BinSessionInfo{}, err
	}
	var cok wire.CreateOK
	if err := wire.ParseCreateOK(call.buf, &cok); err != nil {
		putMuxCall(call)
		return BinSessionInfo{}, err
	}
	b.numLevels = append(b.numLevels[:0], cok.NumLevels...)
	putMuxCall(call)
	return BinSessionInfo{Handle: cok.Handle, Epoch: cok.Epoch, NumLevels: b.numLevels}, nil
}

// ObsToWire converts observations into the caller's wire scratch — the
// bridge for fronts (HTTP) that hold serve.Observation rather than raw
// wire frames. The result is valid until the next ObsToWire call.
func (b *BinCaller) ObsToWire(obs []Observation) []wire.Obs {
	if cap(b.wireObs) < len(obs) {
		b.wireObs = make([]wire.Obs, len(obs))
	}
	wobs := b.wireObs[:len(obs)]
	for i, o := range obs {
		wobs[i] = wire.Obs{
			Utilization: o.Utilization,
			DemandRatio: o.DemandRatio,
			QoS:         o.QoS,
			ClusterQoS:  o.ClusterQoS,
			Critical:    o.Critical,
			Level:       o.Level,
		}
	}
	return wobs
}

// DecideSeq forwards one decide frame (possibly multi-period) under the
// shard-side handle/epoch/seq. The returned slice is scratch, valid until
// the caller's next DecideSeq.
func (b *BinCaller) DecideSeq(ctx context.Context, c *BinClient, handle uint64, epoch uint32, seq uint64, wobs []wire.Obs) ([]int, error) {
	mc, err := c.conn()
	if err != nil {
		return nil, err
	}
	reqID := mc.reqID.Add(1)
	b.wbuf = wire.FinishFrame(
		wire.AppendDecideReq(wire.BeginFrame(b.wbuf), handle, epoch, seq, wobs),
		wire.TDecide, reqID)
	call, _, err := c.call(ctx, mc, b.wbuf, reqID, wire.TDecideOK)
	if err != nil {
		return nil, err
	}
	if err := wire.ParseDecideOK(call.buf, &b.dok); err != nil {
		putMuxCall(call)
		return nil, err
	}
	b.levels = append(b.levels[:0], b.dok.Levels...)
	putMuxCall(call)
	return b.levels, nil
}

// Reward forwards a reward report under the shard-side handle/epoch and
// the device's reward sequence number (0 = untagged legacy); Close
// forwards a session close. Both return the shard-side ledger.
func (b *BinCaller) Reward(ctx context.Context, c *BinClient, handle uint64, epoch uint32, seq uint64, reward float64) (wire.Stats, error) {
	return b.statsCall(ctx, c, wire.TReward, wire.TRewardOK, handle, epoch, seq, reward)
}

func (b *BinCaller) Close(ctx context.Context, c *BinClient, handle uint64) (wire.Stats, error) {
	return b.statsCall(ctx, c, wire.TClose, wire.TCloseOK, handle, 0, 0, 0)
}

func (b *BinCaller) statsCall(ctx context.Context, c *BinClient, typ, wantType byte, handle uint64, epoch uint32, seq uint64, reward float64) (wire.Stats, error) {
	mc, err := c.conn()
	if err != nil {
		return wire.Stats{}, err
	}
	reqID := mc.reqID.Add(1)
	buf := wire.BeginFrame(b.wbuf)
	if typ == wire.TReward {
		buf = wire.AppendRewardReq(buf, wire.RewardReq{
			Handle: handle, Reward: reward, Epoch: epoch, Seq: seq,
		})
	} else {
		buf = wire.AppendCloseReq(buf, wire.CloseReq{Handle: handle})
	}
	b.wbuf = wire.FinishFrame(buf, typ, reqID)
	call, _, err := c.call(ctx, mc, b.wbuf, reqID, wantType)
	if err != nil {
		return wire.Stats{}, err
	}
	var st wire.Stats
	if err := wire.ParseStats(call.buf, &st); err != nil {
		putMuxCall(call)
		return wire.Stats{}, err
	}
	putMuxCall(call)
	return st, nil
}

// Addr reports the client's dial address — used by fronts for error text.
func (c *BinClient) Addr() string { return c.addr }
