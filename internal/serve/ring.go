package serve

import "sync/atomic"

// mpscRing is a bounded lock-free multi-producer single-consumer queue —
// the Vyukov bounded-MPMC design specialized to the batcher's shape: many
// request goroutines submit, one worker drains. Each slot carries a
// sequence number that encodes its state machine:
//
//	seq == pos          free, a producer may claim position pos
//	seq == pos+1        full, the consumer may take position pos
//	seq <  pos          still holds the previous lap's item → ring is full
//
// Producers claim a position by CAS on tail, write the slot, then publish
// by storing seq = pos+1 (the atomic store orders the write). The single
// consumer reads head without atomics — only the worker goroutine touches
// it — and recycles a slot by storing seq = pos+len for the next lap.
//
// Push never blocks: a full ring reports false and the caller surfaces
// ErrOverloaded, replacing the old buffered channel whose send blocked
// silently under overload.
type mpscRing struct {
	mask  uint64
	slots []ringSlot
	tail  atomic.Uint64 // next position producers will claim
	head  uint64        // next position the consumer will take; consumer-only
}

type ringSlot struct {
	seq atomic.Uint64
	req *batchReq
}

// newMPSCRing builds a ring holding at least capacity requests, rounded up
// to a power of two (minimum 8) so position→slot mapping is a mask.
func newMPSCRing(capacity int) *mpscRing {
	n := 8
	for n < capacity {
		n <<= 1
	}
	r := &mpscRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot count.
func (r *mpscRing) Cap() int { return len(r.slots) }

// Push enqueues req, returning false — immediately, never blocking — when
// the ring is full. Safe for concurrent producers.
func (r *mpscRing) Push(req *batchReq) bool {
	for {
		pos := r.tail.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.req = req
				slot.seq.Store(pos + 1)
				return true
			}
			continue // lost the claim race; retry at the new tail
		}
		if seq < pos {
			// The slot still holds an item from one lap ago: the
			// consumer hasn't caught up, the ring is full.
			return false
		}
		// seq > pos: another producer already claimed past us; reload tail.
	}
}

// Pop dequeues the oldest request, or nil when the ring is empty (or the
// oldest slot is claimed but not yet published). Single consumer only.
func (r *mpscRing) Pop() *batchReq {
	slot := &r.slots[r.head&r.mask]
	if slot.seq.Load() != r.head+1 {
		return nil
	}
	req := slot.req
	slot.req = nil
	slot.seq.Store(r.head + uint64(len(r.slots)))
	r.head++
	return req
}
