package governor

import (
	"testing"

	"rlpm/internal/sim"
)

func TestNewFixedValidation(t *testing.T) {
	if _, err := NewFixed(nil); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := NewFixed([]int{2, -1}); err == nil {
		t.Fatal("negative level accepted")
	}
	g, err := NewFixed([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "fixed[3 7]" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestFixedReturnsPinnedLevels(t *testing.T) {
	g, _ := NewFixed([]int{2, 6})
	obs := obsWith(0.9, 0)
	for i := 0; i < 5; i++ {
		levels := g.Decide(obs)
		if levels[0] != 2 || levels[1] != 6 {
			t.Fatalf("levels = %v", levels)
		}
	}
}

func TestFixedIsImmutableFromOutside(t *testing.T) {
	in := []int{1, 2}
	g, _ := NewFixed(in)
	in[0] = 9 // mutating the input must not affect the governor
	if got := g.Decide(obsWith(0.5, 0)); got[0] != 1 {
		t.Fatalf("input aliasing: %v", got)
	}
	out := g.Decide(obsWith(0.5, 0))
	out[1] = 99 // mutating the output must not affect later decisions
	if got := g.Decide(obsWith(0.5, 0)); got[1] != 2 {
		t.Fatalf("output aliasing: %v", got)
	}
}

func TestFixedPanicsOnClusterMismatch(t *testing.T) {
	g, _ := NewFixed([]int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("cluster mismatch did not panic")
		}
	}()
	g.Decide(obsWith(0.5, 0)) // two-cluster observations
}

func TestFixedImplementsGovernor(t *testing.T) {
	var _ sim.Governor = (*Fixed)(nil)
}
