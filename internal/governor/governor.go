// Package governor reimplements the six Linux cpufreq governors the paper
// compares against: performance, powersave, userspace, ondemand,
// conservative, and interactive — plus schedutil as a modern extension.
//
// Each governor follows the decision rule of its kernel counterpart,
// transplanted onto the simulator's per-period observation callback. The
// tunables default to the kernel defaults (ondemand up_threshold 80%,
// conservative ±20/80 with one-step moves, interactive go_hispeed_load 85%
// with a min_sample_time hold, schedutil's 1.25 headroom).
package governor

import (
	"fmt"
	"math"

	"rlpm/internal/sim"
)

// pickLevelAtLeast returns the lowest OPP index whose frequency is at least
// targetHz, given the cluster's frequency table expressed through freqs.
func pickLevelAtLeast(freqs []float64, targetHz float64) int {
	for i, f := range freqs {
		if f >= targetHz {
			return i
		}
	}
	return len(freqs) - 1
}

// Every governor in this package implements sim.InPlaceGovernor: Decide is
// DecideInto over a fresh slice, and DecideInto performs no allocation, so
// the simulator's hot loop runs the built-in governors allocation-free.
var (
	_ sim.InPlaceGovernor = (*Performance)(nil)
	_ sim.InPlaceGovernor = (*Powersave)(nil)
	_ sim.InPlaceGovernor = (*Userspace)(nil)
	_ sim.InPlaceGovernor = (*Ondemand)(nil)
	_ sim.InPlaceGovernor = (*Conservative)(nil)
	_ sim.InPlaceGovernor = (*Interactive)(nil)
	_ sim.InPlaceGovernor = (*Schedutil)(nil)
	_ sim.InPlaceGovernor = (*Fixed)(nil)
)

// Performance always runs at the highest OPP.
type Performance struct{}

// NewPerformance returns the performance governor.
func NewPerformance() *Performance { return &Performance{} }

// Name implements sim.Governor.
func (*Performance) Name() string { return "performance" }

// Reset implements sim.Governor.
func (*Performance) Reset() {}

// Decide implements sim.Governor.
func (g *Performance) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (*Performance) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		dst[i] = o.NumLevels - 1
	}
	return dst
}

// Powersave always runs at the lowest OPP.
type Powersave struct{}

// NewPowersave returns the powersave governor.
func NewPowersave() *Powersave { return &Powersave{} }

// Name implements sim.Governor.
func (*Powersave) Name() string { return "powersave" }

// Reset implements sim.Governor.
func (*Powersave) Reset() {}

// Decide implements sim.Governor.
func (g *Powersave) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (*Powersave) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// Userspace pins a fixed fraction of the OPP table, the way a userspace
// daemon pins scaling_setspeed. Fraction 0 is the lowest OPP, 1 the highest.
type Userspace struct {
	fraction float64
}

// NewUserspace returns a userspace governor pinned at the given fraction of
// the table (kernel default behaviour is whatever the daemon asks; the
// conventional evaluation setting is the middle of the table).
func NewUserspace(fraction float64) (*Userspace, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("governor: userspace fraction %v out of [0,1]", fraction)
	}
	return &Userspace{fraction: fraction}, nil
}

// Name implements sim.Governor.
func (*Userspace) Name() string { return "userspace" }

// Reset implements sim.Governor.
func (*Userspace) Reset() {}

// Decide implements sim.Governor.
func (u *Userspace) Decide(obs []sim.Observation) []int {
	return u.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (u *Userspace) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		dst[i] = int(math.Round(u.fraction * float64(o.NumLevels-1)))
	}
	return dst
}

// Ondemand jumps to the maximum OPP when utilization exceeds up_threshold
// and otherwise picks the lowest frequency that would keep utilization at
// the threshold — the classic dbs_check_cpu logic.
type Ondemand struct {
	UpThreshold float64 // kernel default 0.80
}

// NewOndemand returns an ondemand governor with the kernel default
// up_threshold of 80%.
func NewOndemand() *Ondemand { return &Ondemand{UpThreshold: 0.80} }

// Name implements sim.Governor.
func (*Ondemand) Name() string { return "ondemand" }

// Reset implements sim.Governor.
func (g *Ondemand) Reset() {}

// Decide implements sim.Governor.
func (g *Ondemand) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Ondemand) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		if o.Utilization >= g.UpThreshold {
			dst[i] = o.NumLevels - 1
			continue
		}
		// Scale down proportionally: the lowest f with
		// util*f_cur/f <= threshold  ⇔  f >= util*f_cur/threshold.
		curHz := freqOf(o)
		target := o.Utilization * curHz / g.UpThreshold
		dst[i] = pickLevelAtLeast(freqTable(o), target)
	}
	return dst
}

// Conservative moves one OPP step at a time: up when utilization exceeds
// the up threshold, down when below the down threshold.
type Conservative struct {
	UpThreshold   float64 // kernel default 0.80
	DownThreshold float64 // kernel default 0.20
}

// NewConservative returns a conservative governor with kernel defaults.
func NewConservative() *Conservative {
	return &Conservative{UpThreshold: 0.80, DownThreshold: 0.20}
}

// Name implements sim.Governor.
func (*Conservative) Name() string { return "conservative" }

// Reset implements sim.Governor.
func (g *Conservative) Reset() {}

// Decide implements sim.Governor.
func (g *Conservative) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Conservative) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		lvl := o.Level
		switch {
		case o.Utilization > g.UpThreshold && lvl < o.NumLevels-1:
			lvl++
		case o.Utilization < g.DownThreshold && lvl > 0:
			lvl--
		}
		dst[i] = lvl
	}
	return dst
}

// Interactive implements the Android interactive governor: a burst of load
// jumps straight to hispeed_freq, sustained load is served at
// util/target_load, and the frequency is held for MinSampleTime before it
// may drop.
type Interactive struct {
	GoHispeedLoad  float64 // default 0.85
	HispeedFrac    float64 // hispeed_freq as fraction of table, default 0.75
	TargetLoad     float64 // default 0.90
	MinSampleTimeS float64 // default 0.08 (80 ms)

	holdS []float64 // per-cluster remaining hold time
	prev  []int     // per-cluster previous level
}

// NewInteractive returns an interactive governor with Android defaults.
func NewInteractive() *Interactive {
	return &Interactive{
		GoHispeedLoad:  0.85,
		HispeedFrac:    0.75,
		TargetLoad:     0.90,
		MinSampleTimeS: 0.08,
	}
}

// Name implements sim.Governor.
func (*Interactive) Name() string { return "interactive" }

// Reset implements sim.Governor.
func (g *Interactive) Reset() {
	g.holdS = nil
	g.prev = nil
}

// Decide implements sim.Governor.
func (g *Interactive) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Interactive) DecideInto(dst []int, obs []sim.Observation) []int {
	if len(g.holdS) != len(obs) {
		g.holdS = make([]float64, len(obs))
		g.prev = make([]int, len(obs))
		for i, o := range obs {
			g.prev[i] = o.Level
		}
	}
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		freqs := freqTable(o)
		hispeed := int(math.Round(g.HispeedFrac * float64(o.NumLevels-1)))
		var want int
		if o.Utilization >= g.GoHispeedLoad {
			want = hispeed
			if o.Level > hispeed {
				// Already above hispeed: evaluate against target load.
				want = pickLevelAtLeast(freqs, o.Utilization*freqOf(o)/g.TargetLoad)
			}
		} else {
			want = pickLevelAtLeast(freqs, o.Utilization*freqOf(o)/g.TargetLoad)
		}
		if want > g.prev[i] {
			g.prev[i] = want
			g.holdS[i] = g.MinSampleTimeS
		} else if want < g.prev[i] {
			g.holdS[i] -= o.PeriodS
			if g.holdS[i] <= 0 {
				g.prev[i] = want
				g.holdS[i] = g.MinSampleTimeS
			}
		}
		dst[i] = g.prev[i]
	}
	return dst
}

// Schedutil implements the mainline schedutil rule: next_freq = 1.25 ·
// f_max · (scale-invariant utilization), clamped to the table.
type Schedutil struct {
	Headroom float64 // default 1.25
}

// NewSchedutil returns a schedutil governor with the mainline headroom.
func NewSchedutil() *Schedutil { return &Schedutil{Headroom: 1.25} }

// Name implements sim.Governor.
func (*Schedutil) Name() string { return "schedutil" }

// Reset implements sim.Governor.
func (g *Schedutil) Reset() {}

// Decide implements sim.Governor.
func (g *Schedutil) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Schedutil) DecideInto(dst []int, obs []sim.Observation) []int {
	dst = sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		freqs := freqTable(o)
		fmax := freqs[len(freqs)-1]
		invariantUtil := o.Utilization * freqOf(o) / fmax
		target := g.Headroom * fmax * invariantUtil
		dst[i] = pickLevelAtLeast(freqs, target)
	}
	return dst
}

// freqOf returns the frequency of the observation's current level.
func freqOf(o sim.Observation) float64 {
	return o.FreqsHz[o.Level]
}

// freqTable returns the cluster's OPP frequency table from the observation.
func freqTable(o sim.Observation) []float64 {
	return o.FreqsHz
}
