package governor

import (
	"testing"

	"rlpm/internal/sim"
)

// TestDecideIntoAllocFree pins every built-in governor's in-place decision
// path at zero allocations once the destination slice is sized.
func TestDecideIntoAllocFree(t *testing.T) {
	names := append(BaselineNames(), "schedutil")
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			g, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			ip, ok := g.(sim.InPlaceGovernor)
			if !ok {
				t.Fatalf("%s does not implement sim.InPlaceGovernor", name)
			}
			obs := obsWith(0.6, 3)
			dst := make([]int, len(obs))
			// Warm-up: lets stateful governors size their history buffers.
			dst = ip.DecideInto(dst, obs)
			allocs := testing.AllocsPerRun(100, func() {
				dst = ip.DecideInto(dst, obs)
			})
			if allocs != 0 {
				t.Fatalf("%s.DecideInto allocates %.1f times per call, want 0", name, allocs)
			}
		})
	}
}

// TestFixedDecideIntoAllocFree covers the Fixed pin governor separately
// (it is constructed with explicit levels, not via the registry).
func TestFixedDecideIntoAllocFree(t *testing.T) {
	g, err := NewFixed([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	obs := obsWith(0.5, 2)
	dst := make([]int, len(obs))
	dst = g.DecideInto(dst, obs)
	allocs := testing.AllocsPerRun(100, func() {
		dst = g.DecideInto(dst, obs)
	})
	if allocs != 0 {
		t.Fatalf("Fixed.DecideInto allocates %.1f times per call, want 0", allocs)
	}
}

// TestDecideIntoMatchesDecide asserts the fast path is observationally
// identical to the allocating path for every built-in governor, across a
// sweep of utilizations — the contract the simulator's byte-identical
// goldens rest on.
func TestDecideIntoMatchesDecide(t *testing.T) {
	names := append(BaselineNames(), "schedutil")
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			ga, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			ip := gb.(sim.InPlaceGovernor)
			dst := make([]int, 2)
			for step := 0; step <= 20; step++ {
				util := float64(step) / 20
				lvl := step % 8
				obs := obsWith(util, lvl)
				want := ga.Decide(obs)
				dst = ip.DecideInto(dst, obs)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("step %d: DecideInto=%v Decide=%v", step, dst, want)
					}
				}
			}
		})
	}
}
