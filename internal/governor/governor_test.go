package governor

import (
	"testing"
	"testing/quick"

	"rlpm/internal/sim"
)

// obsWith builds a two-cluster observation pair with the default chip's
// OPP shapes.
func obsWith(util float64, level int) []sim.Observation {
	little := []float64{400e6, 600e6, 800e6, 1000e6, 1200e6, 1400e6, 1600e6, 1800e6}
	big := []float64{600e6, 800e6, 1000e6, 1200e6, 1400e6, 1600e6, 1800e6, 2000e6, 2300e6}
	mk := func(freqs []float64) sim.Observation {
		lvl := level
		if lvl >= len(freqs) {
			lvl = len(freqs) - 1
		}
		return sim.Observation{
			Utilization: util,
			Level:       lvl,
			NumLevels:   len(freqs),
			FreqsHz:     freqs,
			QoS:         1,
			PeriodS:     0.05,
		}
	}
	return []sim.Observation{mk(little), mk(big)}
}

func TestPerformanceAlwaysMax(t *testing.T) {
	g := NewPerformance()
	for _, util := range []float64{0, 0.5, 1} {
		levels := g.Decide(obsWith(util, 0))
		if levels[0] != 7 || levels[1] != 8 {
			t.Fatalf("util=%v: levels=%v", util, levels)
		}
	}
}

func TestPowersaveAlwaysMin(t *testing.T) {
	g := NewPowersave()
	levels := g.Decide(obsWith(1.0, 5))
	if levels[0] != 0 || levels[1] != 0 {
		t.Fatalf("levels=%v", levels)
	}
}

func TestUserspacePins(t *testing.T) {
	lo, err := NewUserspace(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := lo.Decide(obsWith(0.9, 3)); got[0] != 0 || got[1] != 0 {
		t.Fatalf("fraction 0: %v", got)
	}
	hi, _ := NewUserspace(1)
	if got := hi.Decide(obsWith(0.1, 3)); got[0] != 7 || got[1] != 8 {
		t.Fatalf("fraction 1: %v", got)
	}
	mid, _ := NewUserspace(0.5)
	got := mid.Decide(obsWith(0.5, 3))
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("fraction 0.5: %v", got)
	}
}

func TestUserspaceValidation(t *testing.T) {
	for _, f := range []float64{-0.1, 1.1} {
		if _, err := NewUserspace(f); err == nil {
			t.Errorf("fraction %v accepted", f)
		}
	}
}

func TestOndemandJumpsToMaxOnHighLoad(t *testing.T) {
	g := NewOndemand()
	levels := g.Decide(obsWith(0.95, 2))
	if levels[0] != 7 || levels[1] != 8 {
		t.Fatalf("high load: %v", levels)
	}
}

func TestOndemandScalesDownProportionally(t *testing.T) {
	g := NewOndemand()
	// At level 7 (little: 1800 MHz) with util 0.2, target = 0.2*1800/0.8 =
	// 450 MHz → level 1 (600 MHz).
	obs := obsWith(0.2, 7)
	levels := g.Decide(obs)
	if levels[0] != 1 {
		t.Fatalf("little scaled to %d, want 1", levels[0])
	}
}

func TestOndemandIdleGoesToMin(t *testing.T) {
	g := NewOndemand()
	levels := g.Decide(obsWith(0, 5))
	if levels[0] != 0 || levels[1] != 0 {
		t.Fatalf("idle: %v", levels)
	}
}

func TestConservativeStepsUpAndDown(t *testing.T) {
	g := NewConservative()
	up := g.Decide(obsWith(0.9, 3))
	if up[0] != 4 || up[1] != 4 {
		t.Fatalf("step up: %v", up)
	}
	down := g.Decide(obsWith(0.1, 3))
	if down[0] != 2 || down[1] != 2 {
		t.Fatalf("step down: %v", down)
	}
	hold := g.Decide(obsWith(0.5, 3))
	if hold[0] != 3 || hold[1] != 3 {
		t.Fatalf("hold: %v", hold)
	}
}

func TestConservativeClampsAtEnds(t *testing.T) {
	g := NewConservative()
	if got := g.Decide(obsWith(0.9, 8)); got[1] != 8 {
		t.Fatalf("top clamp: %v", got)
	}
	if got := g.Decide(obsWith(0.05, 0)); got[0] != 0 {
		t.Fatalf("bottom clamp: %v", got)
	}
}

func TestInteractiveBurstsToHispeed(t *testing.T) {
	g := NewInteractive()
	levels := g.Decide(obsWith(0.9, 0))
	// hispeed_frac 0.75 of (8-1)=7 → 5 for little, of (9-1)=8 → 6 for big.
	if levels[0] != 5 || levels[1] != 6 {
		t.Fatalf("burst: %v", levels)
	}
}

func TestInteractiveHoldsBeforeDropping(t *testing.T) {
	g := NewInteractive()
	_ = g.Decide(obsWith(0.9, 0)) // jump to hispeed
	// Load vanishes; with min_sample_time 80 ms and 50 ms periods the
	// first low sample must hold, the second may drop.
	first := g.Decide(obsWith(0.0, 5))
	if first[0] != 5 {
		t.Fatalf("dropped during hold: %v", first)
	}
	second := g.Decide(obsWith(0.0, 5))
	if second[0] != 0 {
		t.Fatalf("did not drop after hold: %v", second)
	}
}

func TestInteractiveResetClearsHold(t *testing.T) {
	g := NewInteractive()
	_ = g.Decide(obsWith(0.9, 0))
	g.Reset()
	levels := g.Decide(obsWith(0.0, 0))
	if levels[0] != 0 {
		t.Fatalf("after reset: %v", levels)
	}
}

func TestSchedutilTracksInvariantUtil(t *testing.T) {
	g := NewSchedutil()
	// Full util at the top OPP stays at the top.
	top := g.Decide(obsWith(1.0, 8))
	if top[1] != 8 {
		t.Fatalf("full load top: %v", top)
	}
	// Idle goes to the bottom.
	idle := g.Decide(obsWith(0, 4))
	if idle[0] != 0 || idle[1] != 0 {
		t.Fatalf("idle: %v", idle)
	}
	// util 0.5 at little level 7 (1800 MHz): invariant util = 0.5,
	// target = 1.25*1800e6*0.5 = 1125 MHz → level 4 (1200 MHz).
	mid := g.Decide(obsWith(0.5, 7))
	if mid[0] != 4 {
		t.Fatalf("mid little: %v", mid)
	}
}

func TestRegistryKnowsAllBaselines(t *testing.T) {
	names := BaselineNames()
	if len(names) != 6 {
		t.Fatalf("baseline count = %d, want the paper's 6", len(names))
	}
	for _, n := range names {
		g, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if g.Name() != n {
			t.Fatalf("governor %q reports name %q", n, g.Name())
		}
	}
	if _, err := New("schedutil"); err != nil {
		t.Fatal("schedutil extension missing")
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown governor accepted")
	}
}

func TestBaselinesOrder(t *testing.T) {
	gs := Baselines()
	names := BaselineNames()
	for i, g := range gs {
		if g.Name() != names[i] {
			t.Fatalf("Baselines()[%d] = %s, want %s", i, g.Name(), names[i])
		}
	}
}

// Property: every governor returns one in-range level per cluster for any
// plausible observation.
func TestGovernorsReturnValidLevelsProperty(t *testing.T) {
	govs := append(Baselines(), NewSchedutil())
	f := func(utilRaw uint16, levelRaw uint8, which uint8) bool {
		g := govs[int(which)%len(govs)]
		util := float64(utilRaw%1001) / 1000
		obs := obsWith(util, int(levelRaw%9))
		levels := g.Decide(obs)
		if len(levels) != len(obs) {
			return false
		}
		for i, lvl := range levels {
			if lvl < 0 || lvl >= obs[i].NumLevels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ondemand's chosen frequency is monotone in utilization.
func TestOndemandMonotoneProperty(t *testing.T) {
	g := NewOndemand()
	f := func(a, b uint16) bool {
		ua := float64(a%1001) / 1000
		ub := float64(b%1001) / 1000
		if ua > ub {
			ua, ub = ub, ua
		}
		la := g.Decide(obsWith(ua, 4))
		lb := g.Decide(obsWith(ub, 4))
		return la[0] <= lb[0] && la[1] <= lb[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOndemandDecide(b *testing.B) {
	g := NewOndemand()
	obs := obsWith(0.63, 4)
	for i := 0; i < b.N; i++ {
		g.Decide(obs)
	}
}

func BenchmarkInteractiveDecide(b *testing.B) {
	g := NewInteractive()
	obs := obsWith(0.63, 4)
	for i := 0; i < b.N; i++ {
		g.Decide(obs)
	}
}
