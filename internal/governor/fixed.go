package governor

import (
	"fmt"

	"rlpm/internal/sim"
)

// Fixed pins each cluster at an explicit OPP level. It is the building
// block of the oracle-static baseline (brute-force search over all pinned
// combinations) used by the ablation benches, and is handy in examples.
type Fixed struct {
	levels []int
	name   string
}

// NewFixed returns a governor pinning cluster i at levels[i]. Levels are
// clamped into range by the simulator's SetLevel semantics.
func NewFixed(levels []int) (*Fixed, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("governor: fixed governor needs at least one level")
	}
	for i, l := range levels {
		if l < 0 {
			return nil, fmt.Errorf("governor: fixed level %d for cluster %d is negative", l, i)
		}
	}
	return &Fixed{
		levels: append([]int(nil), levels...),
		name:   fmt.Sprintf("fixed%v", levels),
	}, nil
}

// Name implements sim.Governor.
func (g *Fixed) Name() string { return g.name }

// Reset implements sim.Governor.
func (g *Fixed) Reset() {}

// Decide implements sim.Governor.
func (g *Fixed) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Fixed) DecideInto(dst []int, obs []sim.Observation) []int {
	if len(obs) != len(g.levels) {
		panic(fmt.Sprintf("governor: fixed governor built for %d clusters, got %d", len(g.levels), len(obs)))
	}
	dst = sim.FitLevels(dst, len(obs))
	copy(dst, g.levels)
	return dst
}
