package governor

import (
	"fmt"

	"rlpm/internal/sim"
)

// BaselineNames lists the six governors the paper compares against, in
// table order.
func BaselineNames() []string {
	return []string{
		"performance",
		"powersave",
		"userspace",
		"ondemand",
		"conservative",
		"interactive",
	}
}

// New constructs a fresh governor by name. "schedutil" is available as an
// extension beyond the paper's six baselines.
func New(name string) (sim.Governor, error) {
	switch name {
	case "performance":
		return NewPerformance(), nil
	case "powersave":
		return NewPowersave(), nil
	case "userspace":
		// Conventional evaluation pin: middle of the OPP table.
		return mustUserspace(0.5), nil
	case "ondemand":
		return NewOndemand(), nil
	case "conservative":
		return NewConservative(), nil
	case "interactive":
		return NewInteractive(), nil
	case "schedutil":
		return NewSchedutil(), nil
	default:
		return nil, fmt.Errorf("governor: unknown governor %q", name)
	}
}

// Baselines constructs all six baseline governors in table order.
func Baselines() []sim.Governor {
	out := make([]sim.Governor, 0, 6)
	for _, n := range BaselineNames() {
		g, err := New(n)
		if err != nil {
			panic(err) // unreachable: names come from BaselineNames
		}
		out = append(out, g)
	}
	return out
}

func mustUserspace(f float64) *Userspace {
	u, err := NewUserspace(f)
	if err != nil {
		panic(err)
	}
	return u
}
