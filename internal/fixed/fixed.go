// Package fixed implements saturating signed fixed-point arithmetic in the
// Q16.16 format used by the hardware Q-learning datapath model.
//
// The FPGA implementation of the power-management policy stores Q-values in
// BRAM as 32-bit two's-complement words with 16 fractional bits and updates
// them with a multiply-accumulate unit. This package reproduces that
// arithmetic exactly — including saturation on overflow and
// round-to-nearest-even on multiplication — so that the software model of
// the accelerator (internal/hwpolicy) is bit-accurate and can be
// differentially tested against a float64 reference.
package fixed

import (
	"fmt"
	"math"
)

// Q16 is a signed Q16.16 fixed-point number: 16 integer bits (including
// sign) and 16 fractional bits stored in an int32.
type Q16 int32

// Fundamental constants of the format.
const (
	FracBits     = 16
	One      Q16 = 1 << FracBits
	Max      Q16 = math.MaxInt32
	Min      Q16 = math.MinInt32
	// Eps is the smallest positive representable value (2^-16).
	Eps Q16 = 1
)

// FromFloat converts a float64 to Q16.16, rounding to nearest and
// saturating at the representable range. NaN converts to zero, matching the
// hardware's behaviour of never producing NaN.
func FromFloat(f float64) Q16 {
	if math.IsNaN(f) {
		return 0
	}
	scaled := f * float64(One)
	switch {
	case scaled >= float64(Max):
		return Max
	case scaled <= float64(Min):
		return Min
	}
	return Q16(math.RoundToEven(scaled))
}

// FromInt converts an integer to Q16.16, saturating.
func FromInt(i int) Q16 {
	if i > math.MaxInt16 {
		return Max
	}
	if i < math.MinInt16 {
		return Min
	}
	return Q16(i) << FracBits
}

// Float returns the float64 value of q.
func (q Q16) Float() float64 { return float64(q) / float64(One) }

// Int returns the integer part of q, truncating toward negative infinity
// (arithmetic shift), exactly as the hardware truncates.
func (q Q16) Int() int { return int(q >> FracBits) }

// Raw returns the underlying 32-bit word.
func (q Q16) Raw() int32 { return int32(q) }

// FromRaw builds a Q16 from a raw 32-bit word.
func FromRaw(w int32) Q16 { return Q16(w) }

// String formats q with full fractional precision.
func (q Q16) String() string { return fmt.Sprintf("%.6f", q.Float()) }

// Add returns a+b with saturation.
func Add(a, b Q16) Q16 {
	s := int64(a) + int64(b)
	return sat64(s)
}

// Sub returns a-b with saturation.
func Sub(a, b Q16) Q16 {
	s := int64(a) - int64(b)
	return sat64(s)
}

// Neg returns -a with saturation (Neg(Min) == Max, as the hardware clamps).
func Neg(a Q16) Q16 {
	if a == Min {
		return Max
	}
	return -a
}

// Abs returns |a| with saturation.
func Abs(a Q16) Q16 {
	if a < 0 {
		return Neg(a)
	}
	return a
}

// Mul returns a*b with a 64-bit intermediate product, round-to-nearest
// (add half an LSB, then arithmetic shift — exactly the add-half-truncate
// rounding a DSP slice implements) and saturation.
func Mul(a, b Q16) Q16 {
	p := int64(a) * int64(b)
	p += 1 << (FracBits - 1)
	return sat64(p >> FracBits)
}

// Div returns a/b with saturation. Division by zero saturates to Max or Min
// depending on the sign of a (0/0 returns 0), mirroring the hardware's
// clamped divider rather than trapping.
func Div(a, b Q16) Q16 {
	if b == 0 {
		switch {
		case a > 0:
			return Max
		case a < 0:
			return Min
		default:
			return 0
		}
	}
	num := int64(a) << FracBits
	// Round to nearest by biasing with half the divisor magnitude.
	half := int64(b) / 2
	if (num >= 0) == (b > 0) {
		num += abs64(half)
	} else {
		num -= abs64(half)
	}
	return sat64(num / int64(b))
}

// MulAdd returns sat(acc + a*b) in one fused operation with a single
// rounding at the end of the multiply — this is the accelerator's MAC.
func MulAdd(acc, a, b Q16) Q16 {
	return Add(acc, Mul(a, b))
}

// Lerp returns a + t*(b-a), the blend the Q-update uses:
// Q' = Q + alpha*(target - Q). t is typically in [0,1].
func Lerp(a, b, t Q16) Q16 {
	return Add(a, Mul(t, Sub(b, a)))
}

// Clamp limits q to [lo, hi]. Requires lo <= hi.
func Clamp(q, lo, hi Q16) Q16 {
	if lo > hi {
		panic("fixed: Clamp with lo > hi")
	}
	if q < lo {
		return lo
	}
	if q > hi {
		return hi
	}
	return q
}

// MaxOf returns the larger of a and b.
func MaxOf(a, b Q16) Q16 {
	if a > b {
		return a
	}
	return b
}

// MinOf returns the smaller of a and b.
func MinOf(a, b Q16) Q16 {
	if a < b {
		return a
	}
	return b
}

// ArgMax returns the index of the maximum element and the maximum itself.
// Ties resolve to the lowest index, which is also what the hardware
// comparator tree does (the earlier operand wins on equality).
// Panics on an empty slice.
func ArgMax(vals []Q16) (idx int, max Q16) {
	if len(vals) == 0 {
		panic("fixed: ArgMax of empty slice")
	}
	idx, max = 0, vals[0]
	for i := 1; i < len(vals); i++ {
		if vals[i] > max {
			idx, max = i, vals[i]
		}
	}
	return idx, max
}

func sat64(v int64) Q16 {
	if v > int64(Max) {
		return Max
	}
	if v < int64(Min) {
		return Min
	}
	return Q16(v)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
