package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -7.125, 32767, -32768}
	for _, f := range cases {
		if got := FromFloat(f).Float(); got != f {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if got := FromFloat(1e9); got != Max {
		t.Errorf("FromFloat(1e9) = %v, want Max", got)
	}
	if got := FromFloat(-1e9); got != Min {
		t.Errorf("FromFloat(-1e9) = %v, want Min", got)
	}
	if got := FromFloat(math.Inf(1)); got != Max {
		t.Errorf("FromFloat(+Inf) = %v, want Max", got)
	}
	if got := FromFloat(math.Inf(-1)); got != Min {
		t.Errorf("FromFloat(-Inf) = %v, want Min", got)
	}
}

func TestFromFloatNaN(t *testing.T) {
	if got := FromFloat(math.NaN()); got != 0 {
		t.Errorf("FromFloat(NaN) = %v, want 0", got)
	}
}

func TestFromIntSaturates(t *testing.T) {
	if got := FromInt(40000); got != Max {
		t.Errorf("FromInt(40000) = %v, want Max", got)
	}
	if got := FromInt(-40000); got != Min {
		t.Errorf("FromInt(-40000) = %v, want Min", got)
	}
	if got := FromInt(12); got.Int() != 12 {
		t.Errorf("FromInt(12).Int() = %v", got.Int())
	}
}

func TestIntTruncatesTowardNegInf(t *testing.T) {
	if got := FromFloat(-1.5).Int(); got != -2 {
		t.Errorf("Int(-1.5) = %d, want -2 (arithmetic shift)", got)
	}
	if got := FromFloat(1.5).Int(); got != 1 {
		t.Errorf("Int(1.5) = %d, want 1", got)
	}
}

func TestAddSaturation(t *testing.T) {
	if got := Add(Max, One); got != Max {
		t.Errorf("Max+1 = %v, want Max", got)
	}
	if got := Add(Min, Neg(One)); got != Min {
		t.Errorf("Min-1 = %v, want Min", got)
	}
	if got := Add(FromInt(2), FromInt(3)); got != FromInt(5) {
		t.Errorf("2+3 = %v", got)
	}
}

func TestSubSaturation(t *testing.T) {
	if got := Sub(Min, One); got != Min {
		t.Errorf("Min-1 = %v, want Min", got)
	}
	if got := Sub(Max, Neg(One)); got != Max {
		t.Errorf("Max+1 = %v, want Max", got)
	}
}

func TestNegOfMin(t *testing.T) {
	if got := Neg(Min); got != Max {
		t.Errorf("Neg(Min) = %v, want Max", got)
	}
	if got := Neg(FromInt(3)); got != FromInt(-3) {
		t.Errorf("Neg(3) = %v", got)
	}
}

func TestAbs(t *testing.T) {
	if got := Abs(FromInt(-3)); got != FromInt(3) {
		t.Errorf("Abs(-3) = %v", got)
	}
	if got := Abs(Min); got != Max {
		t.Errorf("Abs(Min) = %v, want Max (saturated)", got)
	}
}

func TestMulExact(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{2, 3, 6},
		{0.5, 0.5, 0.25},
		{-2, 3, -6},
		{-0.25, -0.25, 0.0625},
		{1, 0, 0},
	}
	for _, c := range cases {
		got := Mul(FromFloat(c.a), FromFloat(c.b)).Float()
		if got != c.want {
			t.Errorf("Mul(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSaturates(t *testing.T) {
	big := FromInt(30000)
	if got := Mul(big, big); got != Max {
		t.Errorf("30000*30000 = %v, want Max", got)
	}
	if got := Mul(big, FromInt(-30000)); got != Min {
		t.Errorf("30000*-30000 = %v, want Min", got)
	}
}

func TestDivExact(t *testing.T) {
	if got := Div(FromInt(6), FromInt(3)).Float(); got != 2 {
		t.Errorf("6/3 = %v", got)
	}
	if got := Div(FromInt(1), FromInt(2)).Float(); got != 0.5 {
		t.Errorf("1/2 = %v", got)
	}
	if got := Div(FromInt(-1), FromInt(4)).Float(); got != -0.25 {
		t.Errorf("-1/4 = %v", got)
	}
}

func TestDivByZeroClamps(t *testing.T) {
	if got := Div(One, 0); got != Max {
		t.Errorf("1/0 = %v, want Max", got)
	}
	if got := Div(Neg(One), 0); got != Min {
		t.Errorf("-1/0 = %v, want Min", got)
	}
	if got := Div(0, 0); got != 0 {
		t.Errorf("0/0 = %v, want 0", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := FromFloat(2), FromFloat(10)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v, want a", got)
	}
	if got := Lerp(a, b, One); got != b {
		t.Errorf("Lerp t=1 = %v, want b", got)
	}
	if got := Lerp(a, b, FromFloat(0.5)).Float(); got != 6 {
		t.Errorf("Lerp t=0.5 = %v, want 6", got)
	}
}

func TestClamp(t *testing.T) {
	lo, hi := FromInt(-1), FromInt(1)
	if got := Clamp(FromInt(5), lo, hi); got != hi {
		t.Errorf("Clamp(5) = %v", got)
	}
	if got := Clamp(FromInt(-5), lo, hi); got != lo {
		t.Errorf("Clamp(-5) = %v", got)
	}
	if got := Clamp(0, lo, hi); got != 0 {
		t.Errorf("Clamp(0) = %v", got)
	}
}

func TestClampPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(lo>hi) did not panic")
		}
	}()
	Clamp(0, One, 0)
}

func TestArgMaxTieBreaksLow(t *testing.T) {
	idx, max := ArgMax([]Q16{FromInt(3), FromInt(7), FromInt(7), FromInt(1)})
	if idx != 1 || max != FromInt(7) {
		t.Errorf("ArgMax = (%d,%v), want (1,7)", idx, max)
	}
}

func TestArgMaxSingle(t *testing.T) {
	idx, max := ArgMax([]Q16{FromInt(-4)})
	if idx != 0 || max != FromInt(-4) {
		t.Errorf("ArgMax single = (%d,%v)", idx, max)
	}
}

func TestArgMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArgMax(empty) did not panic")
		}
	}()
	ArgMax(nil)
}

func TestMulAddEqualsAddMul(t *testing.T) {
	acc, a, b := FromFloat(1.5), FromFloat(2.25), FromFloat(-0.5)
	if got, want := MulAdd(acc, a, b), Add(acc, Mul(a, b)); got != want {
		t.Errorf("MulAdd = %v, want %v", got, want)
	}
}

// --- Property-based tests -------------------------------------------------

// in16 narrows an arbitrary int32 raw word to a value safely away from the
// saturation rails so exactness properties hold.
func smallQ(raw int32) Q16 { return Q16(raw % (1 << 24)) }

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Q16(a), Q16(b)
		return Add(x, y) == Add(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutativeProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Q16(a), Q16(b)
		return Mul(x, y) == Mul(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddMatchesFloatWhenSmall(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := smallQ(a), smallQ(b)
		got := Add(x, y).Float()
		want := x.Float() + y.Float()
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCloseToFloatWhenSmall(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := smallQ(a%(1<<20)), smallQ(b%(1<<20))
		got := Mul(x, y).Float()
		want := x.Float() * y.Float()
		// One LSB of rounding error is allowed.
		return math.Abs(got-want) <= Eps.Float()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeverPanicsOrWrapsProperty(t *testing.T) {
	// Saturating ops must stay within [Min,Max] for every input — with
	// int32 raw values that is automatic, but this documents that no op
	// panics and results are always ordered.
	f := func(a, b int32) bool {
		x, y := Q16(a), Q16(b)
		for _, v := range []Q16{Add(x, y), Sub(x, y), Mul(x, y), Div(x, y), Lerp(x, y, FromFloat(0.3))} {
			if v > Max || v < Min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpBoundedProperty(t *testing.T) {
	// For t in [0,1] Lerp stays within [min(a,b)-eps, max(a,b)+eps].
	f := func(a, b int32, tt uint16) bool {
		x, y := smallQ(a), smallQ(b)
		tq := Q16(int32(tt) % int32(One+1)) // [0,1]
		v := Lerp(x, y, tq)
		lo, hi := MinOf(x, y), MaxOf(x, y)
		return v >= Sub(lo, Eps) && v <= Add(hi, Eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivMulInverseProperty(t *testing.T) {
	// (a/b)*b ≈ a within a few LSBs when no saturation occurs.
	f := func(a int32, b int32) bool {
		x := smallQ(a % (1 << 20))
		y := smallQ(b % (1 << 20))
		if y == 0 {
			return true
		}
		if Abs(y) < FromFloat(0.01) { // quotient would saturate precision
			return true
		}
		q := Div(x, y)
		back := Mul(q, y)
		return math.Abs(back.Float()-x.Float()) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	if got := FromFloat(1.5).String(); got != "1.500000" {
		t.Errorf("String = %q", got)
	}
}

func TestRawRoundTrip(t *testing.T) {
	f := func(w int32) bool { return FromRaw(w).Raw() == w }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat(1.2345), FromFloat(-0.9876)
	var sink Q16
	for i := 0; i < b.N; i++ {
		sink = Mul(x, y)
	}
	_ = sink
}

func BenchmarkArgMax16(b *testing.B) {
	vals := make([]Q16, 16)
	for i := range vals {
		vals[i] = Q16(i * 1000)
	}
	for i := 0; i < b.N; i++ {
		ArgMax(vals)
	}
}
