package fault_test

import (
	"strings"
	"testing"

	"rlpm/internal/fault"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/obs"
)

// TestEventLogDoesNotPerturbInjection is the determinism guarantee for the
// observability hook: two injectors with the same seed, one narrating into
// an event log, must fabricate the identical fault stream — and the log
// must hold one event per injected fault.
func TestEventLogDoesNotPerturbInjection(t *testing.T) {
	cfg := fault.Config{Seed: 11, ReadErrorRate: 0.3, WriteErrorRate: 0.2, ReadFlipRate: 0.1}
	mk := func(log *obs.EventLog) (*fault.Device, *fault.Injector) {
		accel, err := hwpolicy.New(hwpolicy.Params{NumStates: 4, NumActions: 2, Banks: 1, LFSRSeed: 1})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := fault.NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if log != nil {
			inj.SetEventLog(log)
		}
		return fault.NewDevice(accel, accel, inj), inj
	}

	log := obs.NewEventLog(4096)
	devA, injA := mk(nil)
	devB, injB := mk(log)

	const ops = 500
	for i := 0; i < ops; i++ {
		va, ea := devA.ReadReg(hwpolicy.RegStatus)
		vb, eb := devB.ReadReg(hwpolicy.RegStatus)
		if (ea == nil) != (eb == nil) || va != vb {
			t.Fatalf("op %d: logged injector diverged: (%v,%v) vs (%v,%v)", i, va, ea, vb, eb)
		}
		_, ea = devA.WriteReg(hwpolicy.RegState, uint32(i))
		_, eb = devB.WriteReg(hwpolicy.RegState, uint32(i))
		if (ea == nil) != (eb == nil) {
			t.Fatalf("op %d: write fault pattern diverged", i)
		}
	}
	if injA.Stats() != injB.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", injA.Stats(), injB.Stats())
	}
	st := injB.Stats()
	if st.Total() == 0 {
		t.Fatal("no faults injected at these rates")
	}
	if log.Total() != st.Total() {
		t.Fatalf("%d events for %d injected faults", log.Total(), st.Total())
	}
	for _, e := range log.Events() {
		if e.Kind != "fault" || e.Msg == "" {
			t.Fatalf("malformed fault event %+v", e)
		}
	}
	// Spot-check the narration mentions the fault site.
	joined := ""
	for _, e := range log.Events() {
		joined += e.Msg + "\n"
	}
	if !strings.Contains(joined, "read error") && !strings.Contains(joined, "write error") {
		t.Fatalf("no bus-fault narration in:\n%s", joined)
	}
}
