package fault

import (
	"math"

	"rlpm/internal/sim"
)

// Flags describes what happened to one cluster's telemetry in one period.
type Flags struct {
	// Stale: the sample registers were not refreshed; the previous
	// period's values were delivered again. Silent on real hardware.
	Stale bool
	// Dropped: the telemetry read failed outright. Detectable on real
	// hardware (the read errors), so the filter flags it; the delivered
	// sample is the last good one (or a neutral idle sample at t=0).
	Dropped bool
}

// ObsFilter perturbs the simulator's observation path into a governor:
// stale samples, dropped reads, and sampling noise, per cluster per
// period. Ground-truth energy/QoS accounting in the simulator is never
// touched — only what governors see.
type ObsFilter struct {
	inj  *Injector
	last []sim.Observation // last good telemetry delivered per cluster
	good []bool            // whether last[i] ever held a good sample

	// Reusable output buffers: Apply's returned slices are valid until the
	// next Apply call, so the filter adds no per-period allocation.
	out   []sim.Observation
	flags []Flags
}

// NewObsFilter builds a filter drawing from inj's telemetry stream.
func NewObsFilter(inj *Injector) *ObsFilter {
	return &ObsFilter{inj: inj}
}

// telemetry copies the sampled (sensor-sourced) fields of src into dst,
// leaving structural fields (Level, NumLevels, FreqsHz, Critical,
// PeriodS) intact — those come from the governor's own bookkeeping and
// the scheduler, not from the telemetry path.
func telemetry(dst *sim.Observation, src sim.Observation) {
	dst.Utilization = src.Utilization
	dst.DemandRatio = src.DemandRatio
	dst.QoS = src.QoS
	dst.ClusterQoS = src.ClusterQoS
	dst.EnergyJ = src.EnergyJ
	dst.ClusterEnergyJ = src.ClusterEnergyJ
	dst.TempC = src.TempC
}

// idleTelemetry is what a governor sees before the first good sample
// arrives: an idle, QoS-clean period.
func idleTelemetry(dst *sim.Observation) {
	dst.Utilization = 0
	dst.DemandRatio = 0
	dst.QoS = 1
	dst.ClusterQoS = 1
	dst.EnergyJ = 0
	dst.ClusterEnergyJ = 0
}

// Apply filters one period of observations and returns the (possibly
// perturbed) copy plus per-cluster fault flags. The input slice is never
// mutated; the returned slices are reused by the next Apply call, so
// callers must not retain them across periods. Draw order per cluster is
// fixed (drop, stale, noise) and zero-rate sites draw nothing, so a
// rate-free config returns the input values bit-identically.
func (f *ObsFilter) Apply(obs []sim.Observation) ([]sim.Observation, []Flags) {
	in := f.inj
	if len(f.out) != len(obs) {
		f.out = make([]sim.Observation, len(obs))
		f.flags = make([]Flags, len(obs))
	}
	out, flags := f.out, f.flags
	copy(out, obs)
	for i := range flags {
		flags[i] = Flags{}
	}
	if f.last == nil {
		f.last = make([]sim.Observation, len(obs))
		f.good = make([]bool, len(obs))
	}

	var noiseSigma float64
	if in.cfg.ObsNoiseCV > 0 {
		noiseSigma = math.Sqrt(math.Log(1 + in.cfg.ObsNoiseCV*in.cfg.ObsNoiseCV))
	}

	for i := range out {
		switch {
		case hit(in.obsR, in.cfg.ObsDropRate):
			// Read failed: hold the last good sample (drivers latch the
			// previous register contents) and tell the caller.
			flags[i].Dropped = true
			in.stats.DroppedObs++
			if f.good[i] {
				telemetry(&out[i], f.last[i])
			} else {
				idleTelemetry(&out[i])
			}
		case hit(in.obsR, in.cfg.ObsStaleRate):
			// Sample registers not refreshed: silently re-deliver the
			// previous values. f.last is NOT updated, so consecutive
			// stales repeat the same aging sample.
			flags[i].Stale = true
			in.stats.StaleObs++
			if f.good[i] {
				telemetry(&out[i], f.last[i])
			} else {
				idleTelemetry(&out[i])
			}
		default:
			if noiseSigma > 0 {
				// Mean-one multiplicative log-normal, matching the
				// simulator's own ObsNoiseCV model.
				out[i].Utilization *= in.obsR.LogNorm(-noiseSigma*noiseSigma/2, noiseSigma)
				if out[i].Utilization > 1 {
					out[i].Utilization = 1
				}
				out[i].DemandRatio *= in.obsR.LogNorm(-noiseSigma*noiseSigma/2, noiseSigma)
				in.stats.NoisyObs++
			}
			f.last[i] = out[i]
			f.good[i] = true
		}
	}
	return out, flags
}

// Reset clears the sample history (between episodes/runs).
func (f *ObsFilter) Reset() {
	f.last = nil
	f.good = nil
	f.out = nil
	f.flags = nil
}

// Governor wraps any sim.Governor behind an ObsFilter, so baseline
// governors can be evaluated under telemetry faults without knowing about
// them — they simply see the perturbed samples, the way a cpufreq
// governor sees whatever the counters returned.
type Governor struct {
	inner  sim.Governor
	filter *ObsFilter
}

var _ sim.InPlaceGovernor = (*Governor)(nil)

// Wrap builds the wrapper.
func Wrap(inner sim.Governor, inj *Injector) *Governor {
	return &Governor{inner: inner, filter: NewObsFilter(inj)}
}

// Name implements sim.Governor (transparent: tables keep the inner name).
func (g *Governor) Name() string { return g.inner.Name() }

// Decide implements sim.Governor.
func (g *Governor) Decide(obs []sim.Observation) []int {
	fobs, _ := g.filter.Apply(obs)
	return g.inner.Decide(fobs)
}

// DecideInto implements sim.InPlaceGovernor, passing the simulator's fast
// path through the telemetry filter to the inner governor (which falls
// back to Decide when it has no fast path of its own).
func (g *Governor) DecideInto(dst []int, obs []sim.Observation) []int {
	fobs, _ := g.filter.Apply(obs)
	return sim.DecideInto(g.inner, dst, fobs)
}

// Reset implements sim.Governor.
func (g *Governor) Reset() {
	g.filter.Reset()
	g.inner.Reset()
}
