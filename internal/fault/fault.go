// Package fault is the deterministic fault-injection layer for the
// hardware policy path.
//
// The paper's decision-latency and energy claims assume the CPU↔FPGA
// interconnect, the Q-table BRAM, and the utilization/temperature
// telemetry never misbehave. This package makes each of those assumptions
// breakable on demand, so the rest of the system can be hardened against
// — and measured under — the faults a real platform exhibits:
//
//   - interconnect faults (Device): transient read/write error returns,
//     bit flips on register read data, latency spikes, and stalled-busy
//     devices that hang past the driver's watchdog;
//   - accelerator faults (Device + Corruptor): single-event upsets in the
//     Q BRAM and stuck-at bits on the exploration LFSR;
//   - telemetry faults (ObsFilter): stale, dropped, or noisy
//     utilization/temperature observations on the simulator's path into
//     every governor.
//
// Everything is seed-driven through internal/rng streams: one stream per
// injection site, so a run is bit-reproducible from its seed, and the
// experiment engine's serial-vs-parallel byte-identity guarantee extends
// to fault experiments. A zero rate consumes no randomness at its site,
// so an all-zero Config is byte-transparent: wrapped and unwrapped stacks
// produce identical traces (the differential tests pin this).
package fault

import (
	"errors"
	"fmt"

	"rlpm/internal/obs"
	"rlpm/internal/rng"
)

// ErrInjected is the sentinel wrapped by every transient error the
// injector fabricates, so tests and drivers can tell injected faults from
// genuine protocol errors with errors.Is.
var ErrInjected = errors.New("fault: injected transient error")

// Config sets the per-site fault rates. All rates are probabilities in
// [0,1]; a zero rate disables the site entirely (no RNG draws, no
// perturbation). The zero value injects nothing.
type Config struct {
	// Seed drives all injection streams. Derive it per evaluation cell
	// (e.g. with engine.CellSeed) so parallel cells stay independent.
	Seed uint64

	// ReadErrorRate is the per-read probability of a transient bus error
	// return (the device NACKs or the interconnect drops the response).
	ReadErrorRate float64
	// WriteErrorRate is the per-write probability of a transient error.
	WriteErrorRate float64
	// ReadFlipRate is the per-read probability of a single-bit flip on
	// the returned register data (crosstalk/marginal timing on the bus).
	ReadFlipRate float64
	// StallRate is the per-decision probability of a latency spike:
	// StallCycles extra device-clock cycles before results are readable.
	StallRate float64
	// StallCycles is the magnitude of an injected latency spike
	// (device-clock cycles). Defaults to 512 when a stall fires with a
	// zero value.
	StallCycles uint64
	// TimeoutRate is the per-decision probability the device wedges:
	// it reports TimeoutCycles of busy time, which is meant to exceed
	// any sane watchdog so the driver's recovery path runs.
	TimeoutRate float64
	// TimeoutCycles is the busy time of a wedged device (device-clock
	// cycles). Defaults to 1<<30 (≈10 s at 100 MHz) when a timeout
	// fires with a zero value.
	TimeoutCycles uint64

	// QFlipRate is the per-decision probability of a single-event upset
	// flipping one uniformly chosen bit of one uniformly chosen Q-table
	// word (requires a Corruptor-capable device).
	QFlipRate float64
	// LFSRStuckMask forces the masked exploration-LFSR bits to the
	// corresponding LFSRStuckVal bits after every shift (stuck-at
	// fault). Applied once at wiring time, not probabilistic.
	LFSRStuckMask uint16
	// LFSRStuckVal holds the stuck values for LFSRStuckMask bits.
	LFSRStuckVal uint16

	// ObsStaleRate is the per-cluster-per-period probability the
	// telemetry sample is stale: the previous period's values are
	// delivered again (silent — a real stale register read succeeds).
	ObsStaleRate float64
	// ObsDropRate is the per-cluster-per-period probability the
	// telemetry read fails outright. The filter delivers the last good
	// sample and flags the drop, so health monitors can react.
	ObsDropRate float64
	// ObsNoiseCV adds multiplicative log-normal noise with this
	// coefficient of variation to utilization and demand telemetry.
	ObsNoiseCV float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"ReadErrorRate", c.ReadErrorRate},
		{"WriteErrorRate", c.WriteErrorRate},
		{"ReadFlipRate", c.ReadFlipRate},
		{"StallRate", c.StallRate},
		{"TimeoutRate", c.TimeoutRate},
		{"QFlipRate", c.QFlipRate},
		{"ObsStaleRate", c.ObsStaleRate},
		{"ObsDropRate", c.ObsDropRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v out of [0,1]", r.name, r.v)
		}
	}
	if c.ObsNoiseCV < 0 {
		return fmt.Errorf("fault: negative ObsNoiseCV %v", c.ObsNoiseCV)
	}
	return nil
}

// Any reports whether the config injects anything at all.
func (c Config) Any() bool {
	return c.ReadErrorRate > 0 || c.WriteErrorRate > 0 || c.ReadFlipRate > 0 ||
		c.StallRate > 0 || c.TimeoutRate > 0 || c.QFlipRate > 0 ||
		c.LFSRStuckMask != 0 ||
		c.ObsStaleRate > 0 || c.ObsDropRate > 0 || c.ObsNoiseCV > 0
}

// Stats counts what the injector actually did — the ground truth the
// faults experiment reports next to the system's reaction.
type Stats struct {
	ReadErrors  uint64 // transient read errors returned
	WriteErrors uint64 // transient write errors returned
	ReadFlips   uint64 // read-data bit flips delivered
	Stalls      uint64 // latency spikes injected
	Timeouts    uint64 // wedged-device episodes injected
	QFlips      uint64 // Q-table SEUs injected
	StaleObs    uint64 // stale telemetry samples delivered
	DroppedObs  uint64 // failed telemetry reads
	NoisyObs    uint64 // noise-perturbed telemetry samples
}

// Total sums every injected fault.
func (s Stats) Total() uint64 {
	return s.ReadErrors + s.WriteErrors + s.ReadFlips + s.Stalls +
		s.Timeouts + s.QFlips + s.StaleObs + s.DroppedObs
}

// Injector owns the fault streams and counters for one system instance
// (one evaluation cell). It is not safe for concurrent use — like every
// governor/driver stack in the repo, one instance belongs to one cell.
type Injector struct {
	cfg    Config
	busR   *rng.Rand // interconnect site
	memR   *rng.Rand // BRAM/SEU site
	obsR   *rng.Rand // telemetry site
	stats  Stats
	events *obs.EventLog // nil: injections are counted but not narrated
}

// SetEventLog attaches a bounded event log; every injected fault is then
// recorded as a structured event alongside its Stats counter. The hook
// draws no randomness and never changes injection decisions, so attaching
// it preserves bit-reproducibility of the fault stream.
func (in *Injector) SetEventLog(l *obs.EventLog) { in.events = l }

// event records an injected fault when a log is attached.
func (in *Injector) event(format string, args ...any) {
	if in.events != nil {
		in.events.Addf("fault", format, args...)
	}
}

// Stream IDs keep the three sites statistically independent for one seed.
const (
	streamBus = 0xFA111B05
	streamMem = 0xFA111BEA
	streamObs = 0xFA1110B5
)

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StallCycles == 0 {
		cfg.StallCycles = 512
	}
	if cfg.TimeoutCycles == 0 {
		cfg.TimeoutCycles = 1 << 30
	}
	return &Injector{
		cfg:  cfg,
		busR: rng.NewStream(cfg.Seed, streamBus),
		memR: rng.NewStream(cfg.Seed, streamMem),
		obsR: rng.NewStream(cfg.Seed, streamObs),
	}, nil
}

// Config returns the injector's configuration (with defaults resolved).
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the injection counters so far.
func (in *Injector) Stats() Stats { return in.stats }

// hit draws a Bernoulli decision from stream r — but only when rate > 0,
// so disabled sites consume no randomness and perturb nothing.
func hit(r *rng.Rand, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return r.Float64() < rate
}
