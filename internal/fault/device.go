package fault

import (
	"fmt"

	"rlpm/internal/bus"
)

// Corruptor is the back door a device exposes for memory-array faults:
// the injector flips Q BRAM bits behind the register file's back, the way
// a single-event upset does. internal/hwpolicy.Accel implements it.
type Corruptor interface {
	// QWords returns the number of words in the corruptible array.
	QWords() int
	// CorruptQBit flips one bit of one word without updating any
	// protection metadata (parity planes stay stale — that is the fault).
	CorruptQBit(word int, bit uint)
}

// Device wraps a bus.Device and injects interconnect and memory faults
// according to the injector's config. It implements bus.Device, so it
// slots between any driver and its accelerator:
//
//	accel, _ := hwpolicy.New(params)
//	dev := fault.NewDevice(accel, accel, inj)
//	drv, _ := hwpolicy.NewDriverDevice(busCfg, accel, dev)
//
// Decision-scoped faults (Q-table SEUs, latency spikes, wedged-busy
// episodes) trigger on compute-starting writes — the doorbell — because
// that is when the datapath and BRAM are active; register-scoped faults
// (transient errors, read-data flips) trigger on any transaction.
type Device struct {
	dev bus.Device
	cor Corruptor // may be nil: no memory-array faults possible
	inj *Injector
}

var _ bus.Device = (*Device)(nil)

// NewDevice wraps dev. cor may be nil (or dev itself when it implements
// Corruptor); QFlipRate requires a non-nil cor to have any effect.
func NewDevice(dev bus.Device, cor Corruptor, inj *Injector) *Device {
	return &Device{dev: dev, cor: cor, inj: inj}
}

// ReadReg implements bus.Device: a transient error may replace the read,
// and the returned data may suffer a single-bit flip.
func (d *Device) ReadReg(addr uint32) (uint32, error) {
	in := d.inj
	if hit(in.busR, in.cfg.ReadErrorRate) {
		in.stats.ReadErrors++
		in.event("transient read error at %#x", addr)
		return 0, fmt.Errorf("fault: read %#x: %w", addr, ErrInjected)
	}
	v, err := d.dev.ReadReg(addr)
	if err != nil {
		return v, err
	}
	if hit(in.busR, in.cfg.ReadFlipRate) {
		v ^= 1 << uint(in.busR.Intn(32))
		in.stats.ReadFlips++
		in.event("read-data bit flip at %#x", addr)
	}
	return v, nil
}

// WriteReg implements bus.Device: a transient error may reject the write;
// a successful compute-starting write may additionally suffer a Q-table
// SEU, a latency spike, or a wedged-busy episode.
func (d *Device) WriteReg(addr, val uint32) (uint64, error) {
	in := d.inj
	if hit(in.busR, in.cfg.WriteErrorRate) {
		in.stats.WriteErrors++
		in.event("transient write error at %#x", addr)
		return 0, fmt.Errorf("fault: write %#x: %w", addr, ErrInjected)
	}
	compute, err := d.dev.WriteReg(addr, val)
	if err != nil || compute == 0 {
		return compute, err
	}
	if d.cor != nil && hit(in.memR, in.cfg.QFlipRate) {
		if n := d.cor.QWords(); n > 0 {
			w, b := in.memR.Intn(n), uint(in.memR.Intn(32))
			d.cor.CorruptQBit(w, b)
			in.stats.QFlips++
			in.event("Q BRAM SEU: word %d bit %d", w, b)
		}
	}
	if hit(in.busR, in.cfg.StallRate) {
		compute += in.cfg.StallCycles
		in.stats.Stalls++
		in.event("latency spike: +%d cycles", in.cfg.StallCycles)
	}
	if hit(in.busR, in.cfg.TimeoutRate) {
		compute += in.cfg.TimeoutCycles
		in.stats.Timeouts++
		in.event("device wedge: +%d cycles busy", in.cfg.TimeoutCycles)
	}
	return compute, nil
}
