// External test package so the differential tests can wire the injector
// against the real hwpolicy accelerator without an import cycle.
package fault_test

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"rlpm/internal/bus"
	"rlpm/internal/fault"
	"rlpm/internal/governor"
	"rlpm/internal/hwpolicy"
	"rlpm/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := (fault.Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	bad := []fault.Config{
		{ReadErrorRate: -0.1},
		{ReadErrorRate: 1.1},
		{WriteErrorRate: 2},
		{ReadFlipRate: -1},
		{StallRate: 1.5},
		{TimeoutRate: math.Inf(1)},
		{QFlipRate: -0.01},
		{ObsStaleRate: 1.0001},
		{ObsDropRate: -0.5},
		{ObsNoiseCV: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := fault.NewInjector(c); err == nil {
			t.Errorf("NewInjector accepted bad config %d", i)
		}
	}
}

func TestConfigAny(t *testing.T) {
	if (fault.Config{Seed: 7}).Any() {
		t.Fatal("zero-rate config claims to inject")
	}
	some := []fault.Config{
		{ReadErrorRate: 0.1}, {WriteErrorRate: 0.1}, {ReadFlipRate: 0.1},
		{StallRate: 0.1}, {TimeoutRate: 0.1}, {QFlipRate: 0.1},
		{LFSRStuckMask: 1}, {ObsStaleRate: 0.1}, {ObsDropRate: 0.1},
		{ObsNoiseCV: 0.1},
	}
	for i, c := range some {
		if !c.Any() {
			t.Errorf("config %d claims not to inject: %+v", i, c)
		}
	}
}

// driveSequence runs a fixed, deterministic decision sequence through a
// driver and returns the actions, per-decision latencies (as cycles via
// the bus clock), and the final table.
func driveSequence(t *testing.T, d *hwpolicy.Driver, steps int) ([]int, []float64, [][]float64) {
	t.Helper()
	if err := d.Configure(0.1, 0.9, 0.25, true); err != nil {
		t.Fatal(err)
	}
	p := d.Accel().Params()
	acts := make([]int, 0, steps)
	lats := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		state := (i * 7) % p.NumStates
		reward := math.Sin(float64(i)) // deterministic, sign-varying
		a, lat, err := d.Step(state, reward)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		acts = append(acts, a)
		lats = append(lats, lat.Seconds())
	}
	return acts, lats, d.Accel().Table()
}

// TestZeroRateDeviceTransparent is the differential guarantee the faults
// experiment's rate-0 rows rest on: a fault.Device with an all-zero
// config is byte-transparent — same actions, same latencies, same final
// Q table as the bare accelerator.
func TestZeroRateDeviceTransparent(t *testing.T) {
	params := hwpolicy.Params{NumStates: 32, NumActions: 5, Banks: 2, LFSRSeed: 0xACE1}
	const steps = 400

	bare, err := hwpolicy.New(params)
	if err != nil {
		t.Fatal(err)
	}
	plainDrv, err := hwpolicy.NewDriver(bus.DefaultConfig(), bare)
	if err != nil {
		t.Fatal(err)
	}
	wantActs, wantLats, wantTable := driveSequence(t, plainDrv, steps)

	inj, err := fault.NewInjector(fault.Config{Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := hwpolicy.New(params)
	if err != nil {
		t.Fatal(err)
	}
	dev := fault.NewDevice(wrapped, wrapped, inj)
	faultDrv, err := hwpolicy.NewDriverDevice(bus.DefaultConfig(), wrapped, dev)
	if err != nil {
		t.Fatal(err)
	}
	gotActs, gotLats, gotTable := driveSequence(t, faultDrv, steps)

	for i := range wantActs {
		if gotActs[i] != wantActs[i] {
			t.Fatalf("action %d diverged: %d != %d", i, gotActs[i], wantActs[i])
		}
		if gotLats[i] != wantLats[i] {
			t.Fatalf("latency %d diverged: %v != %v", i, gotLats[i], wantLats[i])
		}
	}
	for s := range wantTable {
		for a := range wantTable[s] {
			if gotTable[s][a] != wantTable[s][a] {
				t.Fatalf("Q[%d][%d] diverged: %v != %v", s, a, gotTable[s][a], wantTable[s][a])
			}
		}
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("zero-rate injector injected: %+v", inj.Stats())
	}
}

// TestInjectedErrorsAreSentinel pins that every fabricated transient
// error is errors.Is-distinguishable from genuine protocol errors.
func TestInjectedErrorsAreSentinel(t *testing.T) {
	accel, err := hwpolicy.New(hwpolicy.Params{NumStates: 4, NumActions: 2, Banks: 1, LFSRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(fault.Config{Seed: 1, ReadErrorRate: 1, WriteErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	dev := fault.NewDevice(accel, accel, inj)
	if _, err := dev.ReadReg(hwpolicy.RegStatus); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if _, err := dev.WriteReg(hwpolicy.RegState, 0); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	st := inj.Stats()
	if st.ReadErrors != 1 || st.WriteErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

var testFreqs = []float64{4e8, 6e8, 8e8, 10e8, 12e8, 14e8, 16e8, 18e8, 20e8}

func obsPeriod(util float64) []sim.Observation {
	return []sim.Observation{
		{Utilization: util, DemandRatio: util * 1.2, QoS: 0.97, ClusterQoS: 0.95,
			EnergyJ: 0.5, ClusterEnergyJ: 0.3, TempC: 55,
			Level: 3, NumLevels: len(testFreqs), FreqsHz: testFreqs},
		{Utilization: util / 2, DemandRatio: util / 2, QoS: 0.97, ClusterQoS: 1,
			EnergyJ: 0.5, ClusterEnergyJ: 0.2, TempC: 48,
			Level: 1, NumLevels: len(testFreqs), FreqsHz: testFreqs},
	}
}

func TestObsFilterZeroRateTransparent(t *testing.T) {
	inj, _ := fault.NewInjector(fault.Config{Seed: 9})
	f := fault.NewObsFilter(inj)
	in := obsPeriod(0.8)
	out, flags := f.Apply(in)
	for i := range in {
		if !reflect.DeepEqual(out[i], in[i]) {
			t.Fatalf("cluster %d perturbed: %+v != %+v", i, out[i], in[i])
		}
		if flags[i].Stale || flags[i].Dropped {
			t.Fatalf("cluster %d flagged: %+v", i, flags[i])
		}
	}
}

func TestObsFilterDrop(t *testing.T) {
	inj, _ := fault.NewInjector(fault.Config{Seed: 9, ObsDropRate: 1})
	f := fault.NewObsFilter(inj)

	// First period: no last-good sample yet — neutral idle telemetry.
	out, flags := f.Apply(obsPeriod(0.8))
	for i := range out {
		if !flags[i].Dropped {
			t.Fatalf("cluster %d not flagged dropped", i)
		}
		if out[i].Utilization != 0 || out[i].QoS != 1 {
			t.Fatalf("cluster %d not idle telemetry: %+v", i, out[i])
		}
		// Structural fields survive: the governor's own bookkeeping.
		if out[i].Level != obsPeriod(0.8)[i].Level || out[i].NumLevels != 9 {
			t.Fatalf("cluster %d structural fields perturbed: %+v", i, out[i])
		}
	}
	if got := inj.Stats().DroppedObs; got != 2 {
		t.Fatalf("DroppedObs = %d, want 2", got)
	}
}

func TestObsFilterStaleHoldsLastGood(t *testing.T) {
	// Rate 1 from the start: the filter never captures a good sample and
	// keeps re-delivering the neutral idle one — which pins both the
	// stale flag and "consecutive stales repeat the same aging sample".
	injStale, _ := fault.NewInjector(fault.Config{Seed: 9, ObsStaleRate: 1})
	fs := fault.NewObsFilter(injStale)
	for p := 0; p < 3; p++ {
		out, flags := fs.Apply(obsPeriod(0.3 + 0.2*float64(p)))
		for i := range out {
			if !flags[i].Stale || flags[i].Dropped {
				t.Fatalf("period %d cluster %d flags = %+v", p, i, flags[i])
			}
			if out[i].Utilization != 0 || out[i].QoS != 1 {
				t.Fatalf("period %d cluster %d not the held sample: %+v", p, i, out[i])
			}
		}
	}
	if got := injStale.Stats().StaleObs; got != 6 {
		t.Fatalf("StaleObs = %d, want 6", got)
	}
}

func TestObsFilterNoiseBounded(t *testing.T) {
	inj, _ := fault.NewInjector(fault.Config{Seed: 42, ObsNoiseCV: 0.5})
	f := fault.NewObsFilter(inj)
	perturbed := false
	for p := 0; p < 50; p++ {
		out, _ := f.Apply(obsPeriod(0.9))
		for i := range out {
			if out[i].Utilization < 0 || out[i].Utilization > 1 {
				t.Fatalf("utilization out of range: %v", out[i].Utilization)
			}
			if out[i].DemandRatio < 0 {
				t.Fatalf("negative demand: %v", out[i].DemandRatio)
			}
			if out[i].Utilization != obsPeriod(0.9)[i].Utilization {
				perturbed = true
			}
		}
	}
	if !perturbed {
		t.Fatal("noise at CV=0.5 never perturbed utilization")
	}
	if inj.Stats().NoisyObs == 0 {
		t.Fatal("NoisyObs not counted")
	}
}

// TestWrapTransparentAtZeroRate pins that baseline governors behind a
// rate-free filter decide identically to the bare governor.
func TestWrapTransparentAtZeroRate(t *testing.T) {
	inj, _ := fault.NewInjector(fault.Config{Seed: 3})
	bare := governor.NewOndemand()
	wrapped := fault.Wrap(governor.NewOndemand(), inj)
	if wrapped.Name() != bare.Name() {
		t.Fatalf("wrapper leaks into the name: %q", wrapped.Name())
	}
	for p := 0; p < 20; p++ {
		obs := obsPeriod(float64(p%10) / 10)
		got := wrapped.Decide(obs)
		want := bare.Decide(obs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("period %d cluster %d: %d != %d", p, i, got[i], want[i])
			}
		}
	}
}

// TestInjectorDeterminism pins that two injectors with the same seed
// deliver the same fault sequence.
func TestInjectorDeterminism(t *testing.T) {
	run := func() ([]int, fault.Stats) {
		accel, _ := hwpolicy.New(hwpolicy.Params{NumStates: 16, NumActions: 4, Banks: 2, LFSRSeed: 0xBEEF})
		inj, _ := fault.NewInjector(fault.Config{
			Seed: 77, ReadErrorRate: 0.2, ReadFlipRate: 0.2, WriteErrorRate: 0.1,
			StallRate: 0.3, QFlipRate: 0.5,
		})
		dev := fault.NewDevice(accel, accel, inj)
		drv, err := hwpolicy.NewDriverDevice(bus.DefaultConfig(), accel, dev)
		if err != nil {
			t.Fatal(err)
		}
		_ = drv.Configure(0.1, 0.9, 0.25, true)
		acts := make([]int, 0, 200)
		for i := 0; i < 200; i++ {
			a, _, err := drv.Step(i%16, 0.5)
			if err != nil {
				a = -1 // record faults in the trace too
			}
			acts = append(acts, a)
		}
		return acts, inj.Stats()
	}
	a1, s1 := run()
	a2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v != %+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Fatal("no faults injected at these rates")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("action %d diverged: %d != %d", i, a1[i], a2[i])
		}
	}
}
