package sim

import "testing"

// inPlaceStub is a minimal InPlaceGovernor so the sim package can pin its
// own loop's allocation behavior without importing the governor package
// (which imports sim).
type inPlaceStub struct{ level int }

func (g *inPlaceStub) Name() string { return "stub" }
func (g *inPlaceStub) Reset()       {}
func (g *inPlaceStub) Decide(obs []Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}
func (g *inPlaceStub) DecideInto(dst []int, obs []Observation) []int {
	dst = FitLevels(dst, len(obs))
	for i := range dst {
		dst[i] = g.level
	}
	return dst
}

// TestRunSteadyStateAllocFree proves the simulation loop allocates nothing
// per step: a run of 2N steps must allocate exactly as much as a run of N
// steps (all allocation is per-run setup, none is per-period). Recorder is
// nil, matching the training/evaluation hot path.
func TestRunSteadyStateAllocFree(t *testing.T) {
	ch := testChip(t)
	scen := testScenario(t, "gaming")
	gov := &inPlaceStub{level: 3}

	allocsFor := func(durS float64) float64 {
		cfg := Config{PeriodS: 0.05, DurationS: durS, Seed: 1}
		// Warm-up run so lazy init (agents, buffers) is excluded.
		if _, err := Run(ch, scen, gov, cfg); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(ch, scen, gov, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}

	short := allocsFor(10) // 200 steps
	long := allocsFor(20)  // 400 steps
	if long != short {
		t.Fatalf("per-step allocation detected: %v allocs at 200 steps vs %v at 400", short, long)
	}
}

// TestRunEpisodesReusesState proves episode loops share one set of
// buffers: E episodes must not allocate E times the single-run overhead.
func TestRunEpisodesReusesState(t *testing.T) {
	ch := testChip(t)
	scen := testScenario(t, "gaming")
	gov := &inPlaceStub{level: 3}
	cfg := Config{PeriodS: 0.05, DurationS: 5, Seed: 1}

	if _, err := RunEpisodes(ch, scen, gov, cfg, 2); err != nil {
		t.Fatal(err)
	}
	two := testing.AllocsPerRun(5, func() {
		if _, err := RunEpisodes(ch, scen, gov, cfg, 2); err != nil {
			t.Fatal(err)
		}
	})
	four := testing.AllocsPerRun(5, func() {
		if _, err := RunEpisodes(ch, scen, gov, cfg, 4); err != nil {
			t.Fatal(err)
		}
	})
	// Doubling the episode count adds only the per-episode result structs
	// (the results slice + stats), not a fresh set of run buffers. Allow
	// a small per-episode bookkeeping margin.
	if four-two > 8 {
		t.Fatalf("RunEpisodes re-allocates run state per episode: 2 episodes = %v allocs, 4 episodes = %v", two, four)
	}
}
