// Package sim runs the closed control loop: scenario → chip → governor.
//
// Each control period the scenario presents per-cluster cycle demands, the
// chip executes them at the current OPPs, the QoS tracker scores the
// service ratio, and the governor observes the outcome and sets the OPPs
// for the next period — exactly the cadence of a cpufreq governor's
// periodic callback. Both the six baseline governors and the RL policy
// implement the same Governor interface, so the comparison in Table 1 is
// apples to apples.
package sim

import (
	"fmt"
	"math"
	"strconv"

	"rlpm/internal/qos"
	"rlpm/internal/rng"
	"rlpm/internal/soc"
	"rlpm/internal/trace"
	"rlpm/internal/workload"
)

// Observation is what a governor sees about one cluster after a period.
type Observation struct {
	// Utilization is the busiest-core utilization: completed cycles over
	// the capacity of the cores the workload could use, in [0,1].
	Utilization float64
	// DemandRatio is demanded cycles over the capacity of the cores the
	// workload could use at the period's frequency — the speedup factor
	// the cluster would have needed to serve the demand fully. May exceed
	// 1 when oversubscribed; 0 when idle.
	DemandRatio float64
	// QoS is the chip-wide service ratio of the period, in [0,1].
	QoS float64
	// ClusterQoS is this cluster's own service ratio (1 when it had no
	// demand) — the per-agent credit-assignment signal.
	ClusterQoS float64
	// Critical reports whether the period carried a deadline.
	Critical bool
	// Level is the OPP index in effect during the period.
	Level int
	// NumLevels is the size of the cluster's OPP table.
	NumLevels int
	// FreqsHz is the cluster's OPP frequency table (ascending, shared
	// slice — governors must not mutate it).
	FreqsHz []float64
	// EnergyJ is the whole-chip energy of the period (clusters + uncore).
	EnergyJ float64
	// ClusterEnergyJ is this cluster's energy plus an equal share of the
	// uncore energy — the attribution the policy's reward uses so each
	// cluster's agent sees the consequences of its own level choice.
	ClusterEnergyJ float64
	// TempC is the cluster junction temperature.
	TempC float64
	// Throttled reports whether the thermal governor capped the level.
	Throttled bool
	// PeriodS is the control period length.
	PeriodS float64
}

// Governor decides the next OPP level for every cluster.
//
// Decide receives one Observation per cluster describing the period that
// just ended and returns the OPP level to use for the next period for each
// cluster. Implementations may learn online inside Decide.
type Governor interface {
	Name() string
	Decide(obs []Observation) []int
	// Reset returns the governor to its initial state (clears learned
	// state for learning governors).
	Reset()
}

// InPlaceGovernor is the optional allocation-free decision path. DecideInto
// writes one level per observation into dst — whose length equals len(obs)
// — and returns the slice it filled (dst, unless the implementation had to
// grow it). Implementations must produce exactly the levels Decide would,
// and must not retain dst. Run uses this path when available, so a
// steady-state simulation step performs no per-period allocation; external
// governors that only implement Decide keep working through the fallback.
type InPlaceGovernor interface {
	Governor
	DecideInto(dst []int, obs []Observation) []int
}

// DecideInto invokes gov's allocation-free path when it implements
// InPlaceGovernor and falls back to Decide otherwise. Wrapper governors
// (fault filters, instrumentation shims) use it to pass the fast path
// through to their inner governor.
func DecideInto(gov Governor, dst []int, obs []Observation) []int {
	if ip, ok := gov.(InPlaceGovernor); ok {
		return ip.DecideInto(dst, obs)
	}
	return gov.Decide(obs)
}

// FitLevels returns dst resized to n levels, reallocating only when the
// capacity is short — the shared first line of every DecideInto.
func FitLevels(dst []int, n int) []int {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]int, n)
}

// Config parameterizes a run.
type Config struct {
	PeriodS   float64 // control period, e.g. 0.05
	DurationS float64 // total simulated time
	Seed      uint64  // scenario seed
	// ViolationThreshold overrides qos.DefaultViolationThreshold when > 0.
	ViolationThreshold float64
	// ObsNoiseCV adds multiplicative log-normal noise (with this
	// coefficient of variation) to the Utilization and DemandRatio every
	// governor observes — modeling the sampling noise of real cpufreq
	// accounting, which sees scheduler tick quantization, idle-state
	// bookkeeping skew, and aliasing. Zero (the default) disables it.
	// Ground-truth energy/QoS accounting is never perturbed.
	ObsNoiseCV float64
	// Recorder, when non-nil, receives one row per period with columns
	// time plus, per cluster i: level_i, util_i; plus power, qos.
	Recorder *trace.Recorder
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.PeriodS <= 0 {
		return fmt.Errorf("sim: non-positive period %v", c.PeriodS)
	}
	if c.DurationS < c.PeriodS {
		return fmt.Errorf("sim: duration %v shorter than one period %v", c.DurationS, c.PeriodS)
	}
	if c.ViolationThreshold < 0 || c.ViolationThreshold > 1 {
		return fmt.Errorf("sim: violation threshold %v out of [0,1]", c.ViolationThreshold)
	}
	if c.ObsNoiseCV < 0 {
		return fmt.Errorf("sim: negative observation noise %v", c.ObsNoiseCV)
	}
	return nil
}

// RecorderColumns returns the trace column set Run expects for a chip with
// n clusters. Pass them to trace.NewRecorder when supplying Config.Recorder.
// It is the single source of the recorder schema: Run resolves its column
// positions against this same list, so the names can never drift apart.
func RecorderColumns(n int) []string {
	cols := make([]string, 0, 2*n+3)
	for i := 0; i < n; i++ {
		cols = append(cols, levelColumn(i))
	}
	for i := 0; i < n; i++ {
		cols = append(cols, utilColumn(i))
	}
	return append(cols, "power", "qos", "critical")
}

// levelColumn and utilColumn name the per-cluster recorder columns.
func levelColumn(i int) string { return "level" + strconv.Itoa(i) }
func utilColumn(i int) string  { return "util" + strconv.Itoa(i) }

// Result is the outcome of a run.
type Result struct {
	Governor string
	Scenario string
	QoS      qos.Summary
	// Decisions counts governor invocations (one per period).
	Decisions int
	// Switches counts DVFS transitions across all clusters — the metric
	// behind the transition-cost ablation (jumpy governors pay more).
	Switches uint64
}

// runState holds every buffer the control loop reuses across steps — and,
// for RunEpisodes, across episodes: the per-cluster frequency tables (built
// once per chip), the observation and level slices, the chip step result,
// and the recorder's columnar row. A runState belongs to one goroutine.
type runState struct {
	freqs   [][]float64
	obs     []Observation
	levels  []int
	chipRes soc.ChipStep

	recorder *trace.Recorder
	recCols  []int     // recorder position of each RecorderColumns entry
	recRow   []float64 // reusable columnar row, in recorder column order
}

// newRunState builds the reusable buffers for chip.
func newRunState(chip *soc.Chip) *runState {
	n := chip.NumClusters()
	st := &runState{
		freqs:  make([][]float64, n),
		obs:    make([]Observation, n),
		levels: make([]int, n),
	}
	for i := 0; i < n; i++ {
		cl := chip.Cluster(i)
		f := make([]float64, cl.NumLevels())
		for l := range f {
			f[l] = cl.OPPAt(l).FreqHz
		}
		st.freqs[i] = f
	}
	return st
}

// bindRecorder resolves the schema columns of RecorderColumns(n) against
// rec's registered columns, erroring on any mismatch — the same strictness
// the map-based path had, paid once per run instead of once per period.
func (st *runState) bindRecorder(rec *trace.Recorder, n int) error {
	if st.recorder == rec && st.recCols != nil {
		return nil
	}
	schema := RecorderColumns(n)
	if got := len(rec.Columns()); got != len(schema) {
		return fmt.Errorf("sim: recorder has %d columns, Run records %d", got, len(schema))
	}
	st.recCols = make([]int, len(schema))
	for j, name := range schema {
		i, ok := rec.ColumnIndex(name)
		if !ok {
			return fmt.Errorf("sim: recorder is missing column %q", name)
		}
		st.recCols[j] = i
	}
	st.recorder = rec
	st.recRow = make([]float64, len(schema))
	return nil
}

// Run simulates scenario scen on chip under governor gov. The chip and
// scenario are reset first so runs are independent; the governor is NOT
// reset, allowing pre-trained policies to be evaluated (call gov.Reset
// yourself for a cold start).
func Run(chip *soc.Chip, scen workload.Scenario, gov Governor, cfg Config) (Result, error) {
	return run(chip, scen, gov, cfg, newRunState(chip))
}

// run is the control loop proper, over caller-provided reusable state.
func run(chip *soc.Chip, scen workload.Scenario, gov Governor, cfg Config, st *runState) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	chip.Reset()
	scen.Reset(cfg.Seed)

	threshold := cfg.ViolationThreshold
	if threshold == 0 {
		threshold = qos.DefaultViolationThreshold
	}
	tracker, err := qos.NewTracker(threshold)
	if err != nil {
		return Result{}, err
	}

	n := chip.NumClusters()
	freqs := st.freqs
	obs := st.obs
	for i := 0; i < n; i++ {
		cl := chip.Cluster(i)
		obs[i] = Observation{
			Level:     cl.Level(),
			NumLevels: cl.NumLevels(),
			FreqsHz:   freqs[i],
			QoS:       1,
			TempC:     cl.TempC(),
			PeriodS:   cfg.PeriodS,
		}
	}
	if cfg.Recorder != nil {
		if err := st.bindRecorder(cfg.Recorder, n); err != nil {
			return Result{}, err
		}
	}

	// Observation-noise stream: deterministic, independent of the
	// workload's streams so enabling noise never perturbs the demands.
	var noise *rng.Rand
	var noiseSigma float64
	if cfg.ObsNoiseCV > 0 {
		noise = rng.NewStream(cfg.Seed, 0xB055)
		sigma2 := math.Log(1 + cfg.ObsNoiseCV*cfg.ObsNoiseCV)
		noiseSigma = math.Sqrt(sigma2)
	}

	// The governor's in-place path is resolved once, not per period.
	inPlace, fastDecide := gov.(InPlaceGovernor)

	steps := int(cfg.DurationS / cfg.PeriodS)
	res := Result{Governor: gov.Name(), Scenario: scen.Name()}
	for step := 0; step < steps; step++ {
		// Governor sets levels based on the previous period's observations.
		var levels []int
		if fastDecide {
			levels = inPlace.DecideInto(st.levels, obs)
			st.levels = levels
		} else {
			levels = gov.Decide(obs)
		}
		if len(levels) != n {
			return Result{}, fmt.Errorf("sim: governor %s returned %d levels for %d clusters", gov.Name(), len(levels), n)
		}
		for i, lvl := range levels {
			chip.Cluster(i).SetLevel(lvl)
		}
		res.Decisions++

		period := scen.Next(cfg.PeriodS)
		if len(period.Demands) != n {
			return Result{}, fmt.Errorf("sim: scenario %s emitted %d demands for %d clusters", scen.Name(), len(period.Demands), n)
		}
		if err := chip.StepInto(&st.chipRes, period.Demands, cfg.PeriodS); err != nil {
			return Result{}, err
		}
		chipRes := &st.chipRes

		var demanded, completed float64
		for i, d := range period.Demands {
			demanded += d.Cycles
			completed += chipRes.Clusters[i].CompletedCycles
		}
		q := tracker.Record(demanded, completed, chipRes.EnergyJ, period.Critical)

		uncoreShare := chipRes.UncorePowerW * cfg.PeriodS / float64(n)
		for i := range obs {
			cr := chipRes.Clusters[i]
			dr := 0.0
			if cr.CapacityCycles > 0 {
				dr = period.Demands[i].Cycles / cr.CapacityCycles
			}
			util := cr.Utilization
			if noise != nil {
				util *= noise.LogNorm(-noiseSigma*noiseSigma/2, noiseSigma)
				if util > 1 {
					util = 1
				}
				dr *= noise.LogNorm(-noiseSigma*noiseSigma/2, noiseSigma)
			}
			obs[i] = Observation{
				Utilization:    util,
				DemandRatio:    dr,
				QoS:            q,
				ClusterQoS:     qos.PeriodQoS(period.Demands[i].Cycles, cr.CompletedCycles),
				Critical:       period.Critical,
				Level:          chip.Cluster(i).Level(),
				NumLevels:      chip.Cluster(i).NumLevels(),
				FreqsHz:        freqs[i],
				EnergyJ:        chipRes.EnergyJ,
				ClusterEnergyJ: cr.EnergyJ + uncoreShare,
				TempC:          cr.TempC,
				Throttled:      cr.Throttled,
				PeriodS:        cfg.PeriodS,
			}
		}

		if cfg.Recorder != nil {
			// Columnar row in RecorderColumns order: level_i, util_i,
			// power, qos, critical — routed through the position map that
			// bindRecorder resolved once.
			row, cols := st.recRow, st.recCols
			for i := 0; i < n; i++ {
				row[cols[i]] = float64(chipRes.Clusters[i].Level)
				row[cols[n+i]] = chipRes.Clusters[i].Utilization
			}
			var power float64
			for _, cr := range chipRes.Clusters {
				power += cr.PowerW()
			}
			power += chipRes.UncorePowerW
			row[cols[2*n]] = power
			row[cols[2*n+1]] = q
			if period.Critical {
				row[cols[2*n+2]] = 1
			} else {
				row[cols[2*n+2]] = 0
			}
			if err := cfg.Recorder.RecordRow(float64(step)*cfg.PeriodS, row); err != nil {
				return Result{}, err
			}
		}
	}
	res.QoS = tracker.Summary()
	for i := 0; i < n; i++ {
		res.Switches += chip.Cluster(i).Switches()
	}
	return res, nil
}

// RunEpisodes runs the same (chip, scenario, governor) tuple for episodes
// consecutive episodes with per-episode seeds derived from cfg.Seed,
// returning every episode's result in order. The governor persists across
// episodes — this is the paper's online-learning setting where the policy
// keeps adapting across scenario repetitions. The per-cluster frequency
// tables and the loop buffers are built once for the (chip, cfg) pair and
// reused across all episodes.
func RunEpisodes(chip *soc.Chip, scen workload.Scenario, gov Governor, cfg Config, episodes int) ([]Result, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("sim: non-positive episode count %d", episodes)
	}
	st := newRunState(chip)
	out := make([]Result, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(ep)*0x9e3779b9
		r, err := run(chip, scen, gov, c, st)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
