package sim

import (
	"testing"

	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

// invariantGovernor checks every observation it receives and records
// violations; it otherwise behaves like ondemand-at-mid.
type invariantGovernor struct {
	t        *testing.T
	lastQoS  float64
	periods  int
	badField string
}

func (g *invariantGovernor) Name() string { return "invariant-probe" }
func (g *invariantGovernor) Reset()       {}
func (g *invariantGovernor) Decide(obs []Observation) []int {
	g.periods++
	var chipEnergy float64
	var clusterSum float64
	for i, o := range obs {
		switch {
		case o.Utilization < 0 || o.Utilization > 1+1e-12:
			g.badField = "Utilization"
		case o.DemandRatio < 0:
			g.badField = "DemandRatio"
		case o.QoS < 0 || o.QoS > 1:
			g.badField = "QoS"
		case o.ClusterQoS < 0 || o.ClusterQoS > 1:
			g.badField = "ClusterQoS"
		case o.EnergyJ < 0 || o.ClusterEnergyJ < 0:
			g.badField = "Energy"
		case o.Level < 0 || o.Level >= o.NumLevels:
			g.badField = "Level"
		case len(o.FreqsHz) != o.NumLevels:
			g.badField = "FreqsHz"
		case o.PeriodS <= 0:
			g.badField = "PeriodS"
		case o.TempC < 0:
			g.badField = "TempC"
		}
		chipEnergy = o.EnergyJ
		clusterSum += o.ClusterEnergyJ
		_ = i
	}
	// Per-cluster attribution must sum back to the chip energy.
	if g.periods > 1 && chipEnergy > 0 {
		if diff := clusterSum - chipEnergy; diff > 1e-9 || diff < -1e-9 {
			g.badField = "ClusterEnergy-sum"
		}
	}
	out := make([]int, len(obs))
	for i, o := range obs {
		out[i] = o.NumLevels / 2
	}
	return out
}

func TestObservationInvariantsAcrossScenariosAndChips(t *testing.T) {
	chips := []struct {
		spec     soc.ChipSpec
		clusters int
	}{
		{soc.DefaultChipSpec(), 2},
		{soc.SymmetricChipSpec(), 1},
		{soc.GPUChipSpec(), 3},
	}
	for _, c := range chips {
		for _, name := range workload.Names() {
			chip, err := soc.NewChip(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			spec, _ := workload.ByName(name)
			scen, err := workload.New(spec, c.clusters, 3)
			if err != nil {
				t.Fatal(err)
			}
			g := &invariantGovernor{t: t}
			if _, err := Run(chip, scen, g, Config{PeriodS: 0.05, DurationS: 5, Seed: 3}); err != nil {
				t.Fatalf("%d-cluster %s: %v", c.clusters, name, err)
			}
			if g.badField != "" {
				t.Fatalf("%d-cluster %s: observation invariant broken: %s", c.clusters, name, g.badField)
			}
		}
	}
}

func TestSwitchesCounted(t *testing.T) {
	chip := testChip(t)
	scen := testScenario(t, "gaming")
	// A governor that alternates levels every period must register one
	// switch per cluster per period after the first.
	alt := &alternatingGovernor{}
	res, err := Run(chip, scen, alt, Config{PeriodS: 0.05, DurationS: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 100 periods, 2 clusters; first period establishes the baseline.
	if res.Switches < 190 {
		t.Fatalf("switches = %d, want ~198", res.Switches)
	}
	// A pinned governor must register at most the initial settling switch.
	chip2 := testChip(t)
	scen2 := testScenario(t, "gaming")
	res2, err := Run(chip2, scen2, &fixedGovernor{level: 3}, Config{PeriodS: 0.05, DurationS: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Switches > 2 {
		t.Fatalf("pinned governor registered %d switches", res2.Switches)
	}
}

type alternatingGovernor struct{ flip bool }

func (g *alternatingGovernor) Name() string { return "alternating" }
func (g *alternatingGovernor) Reset()       { g.flip = false }
func (g *alternatingGovernor) Decide(obs []Observation) []int {
	g.flip = !g.flip
	out := make([]int, len(obs))
	for i := range out {
		if g.flip {
			out[i] = 1
		} else {
			out[i] = 2
		}
	}
	return out
}

func TestObsNoiseValidation(t *testing.T) {
	c := Config{PeriodS: 0.05, DurationS: 1, ObsNoiseCV: -0.1}
	if err := c.Validate(); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestObsNoisePerturbsObservationsNotGroundTruth(t *testing.T) {
	run := func(noise float64) (Result, []float64) {
		chip := testChip(t)
		scen := testScenario(t, "video")
		var utils []float64
		probe := &probeGovernor{probe: func(obs []Observation) {
			utils = append(utils, obs[0].Utilization)
		}}
		res, err := Run(chip, scen, probe, Config{PeriodS: 0.05, DurationS: 5, Seed: 1, ObsNoiseCV: noise})
		if err != nil {
			t.Fatal(err)
		}
		return res, utils
	}
	clean, cleanUtils := run(0)
	noisy, noisyUtils := run(0.3)

	// Same governor decisions (the probe pins level 0 regardless), so the
	// ground-truth energy/QoS must be identical — noise touches only what
	// the governor sees.
	if clean.QoS != noisy.QoS {
		t.Fatalf("ground truth perturbed: %+v vs %+v", clean.QoS, noisy.QoS)
	}
	diff := 0
	for i := range cleanUtils {
		if cleanUtils[i] != noisyUtils[i] {
			diff++
		}
		if noisyUtils[i] < 0 || noisyUtils[i] > 1 {
			t.Fatalf("noisy utilization %v out of range", noisyUtils[i])
		}
	}
	if diff < len(cleanUtils)/2 {
		t.Fatalf("noise perturbed only %d/%d observations", diff, len(cleanUtils))
	}
}

func TestObsNoiseDeterministic(t *testing.T) {
	run := func() float64 {
		chip := testChip(t)
		scen := testScenario(t, "gaming")
		g, _ := newOndemandForTest()
		res, err := Run(chip, scen, g, Config{PeriodS: 0.05, DurationS: 5, Seed: 2, ObsNoiseCV: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoS.TotalEnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("noisy runs diverged: %v vs %v", a, b)
	}
}

// newOndemandForTest builds a utilization-reactive governor without
// importing internal/governor (which would cycle); ondemand-like.
func newOndemandForTest() (Governor, error) {
	return &utilReactive{}, nil
}

type utilReactive struct{}

func (g *utilReactive) Name() string { return "util-reactive" }
func (g *utilReactive) Reset()       {}
func (g *utilReactive) Decide(obs []Observation) []int {
	out := make([]int, len(obs))
	for i, o := range obs {
		if o.Utilization > 0.8 {
			out[i] = o.NumLevels - 1
		} else {
			out[i] = int(o.Utilization * float64(o.NumLevels))
		}
	}
	return out
}
