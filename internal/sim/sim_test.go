package sim

import (
	"math"
	"testing"

	"rlpm/internal/soc"
	"rlpm/internal/trace"
	"rlpm/internal/workload"
)

// fixedGovernor pins every cluster at one level and counts invocations.
type fixedGovernor struct {
	level int
	calls int
}

func (g *fixedGovernor) Name() string { return "fixed" }
func (g *fixedGovernor) Reset()       { g.calls = 0 }
func (g *fixedGovernor) Decide(obs []Observation) []int {
	g.calls++
	out := make([]int, len(obs))
	for i := range out {
		out[i] = g.level
	}
	return out
}

// badGovernor returns the wrong number of levels.
type badGovernor struct{}

func (badGovernor) Name() string                 { return "bad" }
func (badGovernor) Reset()                       {}
func (badGovernor) Decide(o []Observation) []int { return make([]int, len(o)+1) }

func testChip(t *testing.T) *soc.Chip {
	t.Helper()
	ch, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func testScenario(t *testing.T, name string) workload.Scenario {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.New(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{PeriodS: 0.05, DurationS: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PeriodS: 0, DurationS: 10},
		{PeriodS: 0.05, DurationS: 0.01},
		{PeriodS: 0.05, DurationS: 10, ViolationThreshold: -1},
		{PeriodS: 0.05, DurationS: 10, ViolationThreshold: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunBasics(t *testing.T) {
	ch := testChip(t)
	scen := testScenario(t, "video")
	gov := &fixedGovernor{level: 4}
	res, err := Run(ch, scen, gov, Config{PeriodS: 0.05, DurationS: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Governor != "fixed" || res.Scenario != "video" {
		t.Fatalf("labels: %+v", res)
	}
	wantPeriods := int(10 / 0.05)
	if res.QoS.Periods != wantPeriods || res.Decisions != wantPeriods {
		t.Fatalf("periods=%d decisions=%d, want %d", res.QoS.Periods, res.Decisions, wantPeriods)
	}
	if res.QoS.TotalEnergyJ <= 0 {
		t.Fatal("no energy accumulated")
	}
	if res.QoS.MeanQoS <= 0 || res.QoS.MeanQoS > 1 {
		t.Fatalf("MeanQoS = %v", res.QoS.MeanQoS)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{PeriodS: 0.05, DurationS: 20, Seed: 42}
	a, err := Run(testChip(t), testScenario(t, "gaming"), &fixedGovernor{level: 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testChip(t), testScenario(t, "gaming"), &fixedGovernor{level: 5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.QoS != b.QoS {
		t.Fatalf("non-deterministic: %+v vs %+v", a.QoS, b.QoS)
	}
}

func TestRunPerformanceBeatsPowersaveOnQoS(t *testing.T) {
	cfg := Config{PeriodS: 0.05, DurationS: 30, Seed: 7}
	hi, err := Run(testChip(t), testScenario(t, "gaming"), &fixedGovernor{level: 99}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Run(testChip(t), testScenario(t, "gaming"), &fixedGovernor{level: 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.QoS.MeanQoS <= lo.QoS.MeanQoS {
		t.Fatalf("max-freq QoS %v <= min-freq QoS %v", hi.QoS.MeanQoS, lo.QoS.MeanQoS)
	}
	if hi.QoS.TotalEnergyJ <= lo.QoS.TotalEnergyJ {
		t.Fatalf("max-freq energy %v <= min-freq energy %v", hi.QoS.TotalEnergyJ, lo.QoS.TotalEnergyJ)
	}
}

func TestRunRejectsBadGovernor(t *testing.T) {
	if _, err := Run(testChip(t), testScenario(t, "idle"), badGovernor{}, Config{PeriodS: 0.05, DurationS: 1}); err == nil {
		t.Fatal("mismatched level count accepted")
	}
}

func TestRunRejectsScenarioClusterMismatch(t *testing.T) {
	// A 1-cluster scenario against the 2-cluster chip must error.
	spec, _ := workload.ByName("idle")
	scen, err := workload.New(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testChip(t), scen, &fixedGovernor{}, Config{PeriodS: 0.05, DurationS: 1}); err == nil {
		t.Fatal("cluster mismatch accepted")
	}
}

func TestRunRecordsTrace(t *testing.T) {
	ch := testChip(t)
	rec, err := trace.NewRecorder(RecorderColumns(ch.NumClusters())...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PeriodS: 0.05, DurationS: 2, Seed: 3, Recorder: rec}
	if _, err := Run(ch, testScenario(t, "browsing"), &fixedGovernor{level: 3}, cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 40 {
		t.Fatalf("trace rows = %d, want 40", rec.Len())
	}
	lv, err := rec.Series("level0")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range lv {
		if v != 3 {
			t.Fatalf("recorded level %v, want 3", v)
		}
	}
	p, _ := rec.Series("power")
	for _, v := range p {
		if v <= 0 {
			t.Fatalf("non-positive power %v in trace", v)
		}
	}
}

func TestObservationsCarryFreqTable(t *testing.T) {
	ch := testChip(t)
	var captured []Observation
	gov := &probeGovernor{probe: func(obs []Observation) {
		captured = append([]Observation(nil), obs...)
	}}
	if _, err := Run(ch, testScenario(t, "video"), gov, Config{PeriodS: 0.05, DurationS: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 2 {
		t.Fatalf("captured %d observations", len(captured))
	}
	if len(captured[0].FreqsHz) != 8 || len(captured[1].FreqsHz) != 9 {
		t.Fatalf("freq table sizes %d/%d", len(captured[0].FreqsHz), len(captured[1].FreqsHz))
	}
	if captured[0].FreqsHz[0] != 400e6 || captured[1].FreqsHz[8] != 2300e6 {
		t.Fatal("freq tables have wrong endpoints")
	}
	if captured[0].PeriodS != 0.05 {
		t.Fatalf("PeriodS = %v", captured[0].PeriodS)
	}
}

type probeGovernor struct {
	probe func([]Observation)
}

func (g *probeGovernor) Name() string { return "probe" }
func (g *probeGovernor) Reset()       {}
func (g *probeGovernor) Decide(obs []Observation) []int {
	g.probe(obs)
	return make([]int, len(obs))
}

func TestRunEpisodes(t *testing.T) {
	ch := testChip(t)
	gov := &fixedGovernor{level: 4}
	results, err := RunEpisodes(ch, testScenario(t, "mixed"), gov, Config{PeriodS: 0.05, DurationS: 5, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("episodes = %d", len(results))
	}
	// Different seeds per episode: energies should not all be identical.
	allSame := true
	for _, r := range results[1:] {
		if math.Abs(r.QoS.TotalEnergyJ-results[0].QoS.TotalEnergyJ) > 1e-9 {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("all episodes identical; per-episode seeding broken")
	}
	if _, err := RunEpisodes(ch, testScenario(t, "mixed"), gov, Config{PeriodS: 0.05, DurationS: 5}, 0); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

func TestRunResetsChipBetweenRuns(t *testing.T) {
	ch := testChip(t)
	cfg := Config{PeriodS: 0.05, DurationS: 5, Seed: 2}
	first, _ := Run(ch, testScenario(t, "camera"), &fixedGovernor{level: 8}, cfg)
	second, _ := Run(ch, testScenario(t, "camera"), &fixedGovernor{level: 8}, cfg)
	if first.QoS.TotalEnergyJ != second.QoS.TotalEnergyJ {
		t.Fatalf("chip state leaked across runs: %v vs %v", first.QoS.TotalEnergyJ, second.QoS.TotalEnergyJ)
	}
}

func BenchmarkRunGaming10s(b *testing.B) {
	ch, _ := soc.NewChip(soc.DefaultChipSpec())
	spec, _ := workload.ByName("gaming")
	scen, _ := workload.New(spec, 2, 1)
	gov := &fixedGovernor{level: 5}
	cfg := Config{PeriodS: 0.05, DurationS: 10, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run(ch, scen, gov, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
