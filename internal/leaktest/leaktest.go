// Package leaktest asserts that tests do not leak goroutines, using only
// the standard library.
//
// The serving tier's resilience guarantees include "no goroutine leaks":
// every reconnect, drain, crash, and chaos schedule must return the
// process to its baseline goroutine set. This package is the enforcement
// point — a small goleak-style checker that snapshots the live goroutines
// when a test starts and fails the test if new ones are still running
// when it ends. Shutdown is asynchronous (connection pumps, batcher
// workers, TTL reapers all wind down after Close returns), so the checker
// polls for a grace window before declaring a leak rather than demanding
// instantaneous quiescence.
package leaktest

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// grace is how long a leaked-looking goroutine gets to finish winding
// down before the checker declares it a real leak.
const grace = 5 * time.Second

// goroutine is one parsed stanza of a full runtime.Stack dump.
type goroutine struct {
	id     uint64
	top    string // fully qualified function at the top of the stack
	stanza string // the raw stanza, for failure messages
}

// ignoredTops lists top-of-stack function prefixes for goroutines the
// runtime and testing machinery own; they are never charged to a test.
var ignoredTops = []string{
	"testing.",
	"runtime.goexit",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.timer",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"rlpm/internal/leaktest.",
}

func ignored(g goroutine) bool {
	for _, p := range ignoredTops {
		if strings.HasPrefix(g.top, p) {
			return true
		}
	}
	return false
}

// snapshot parses a full goroutine dump into stanzas.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		g, ok := parseStanza(stanza)
		if ok {
			gs = append(gs, g)
		}
	}
	return gs
}

// parseStanza extracts the id and top function from one dump stanza of
// the form "goroutine N [state]:\ntop.Function(args)\n\tfile:line ...".
func parseStanza(stanza string) (goroutine, bool) {
	lines := strings.SplitN(stanza, "\n", 3)
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return goroutine{}, false
	}
	header := strings.TrimPrefix(lines[0], "goroutine ")
	sp := strings.IndexByte(header, ' ')
	if sp < 0 {
		return goroutine{}, false
	}
	id, err := strconv.ParseUint(header[:sp], 10, 64)
	if err != nil {
		return goroutine{}, false
	}
	top := lines[1]
	if i := strings.IndexByte(top, '('); i > 0 {
		top = top[:i]
	}
	return goroutine{id: id, top: strings.TrimSpace(top), stanza: stanza}, true
}

// leakedSince returns the interesting goroutines that are running now but
// were not part of the baseline id set.
func leakedSince(base map[uint64]bool) []goroutine {
	var leaked []goroutine
	for _, g := range snapshot() {
		if base[g.id] || ignored(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// Check snapshots the current goroutines and returns a function to defer;
// the deferred call fails t if goroutines created during the test are
// still alive after the grace window. Typical use:
//
//	defer leaktest.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	base := make(map[uint64]bool)
	for _, g := range snapshot() {
		base[g.id] = true
	}
	return func() {
		t.Helper()
		if err := settle(base); err != nil {
			t.Error(err)
		}
	}
}

// settle polls until no goroutines beyond the baseline remain or the
// grace window expires.
func settle(base map[uint64]bool) error {
	deadline := time.Now().Add(grace)
	var leaked []goroutine
	for {
		// The shared HTTP transport parks keep-alive connections with a
		// reader goroutine each; they are pool bookkeeping, not leaks,
		// so release them before judging.
		http.DefaultClient.CloseIdleConnections()
		if leaked = leakedSince(base); len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "leaktest: %d goroutine(s) leaked:", len(leaked))
	for _, g := range leaked {
		b.WriteString("\n\n")
		b.WriteString(g.stanza)
	}
	return fmt.Errorf("%s", b.String())
}

// Main wraps testing.M for package-level leak checking:
//
//	func TestMain(m *testing.M) { os.Exit(leaktest.Main(m)) }
//
// It runs the package's tests and, when they pass, fails the run if the
// whole package left stray goroutines behind.
func Main(m *testing.M) int {
	code := m.Run()
	if code == 0 {
		if err := settle(map[uint64]bool{}); err != nil {
			fmt.Println(err)
			code = 1
		}
	}
	return code
}
