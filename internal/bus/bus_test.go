package bus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// regFile is a simple test device: 16 registers, writing register 0xF
// starts a computation of the written number of device cycles.
type regFile struct {
	regs     [16]uint32
	failRead bool
}

func (r *regFile) ReadReg(addr uint32) (uint32, error) {
	if r.failRead {
		return 0, errors.New("boom")
	}
	if int(addr) >= len(r.regs) {
		return 0, errors.New("bad addr")
	}
	return r.regs[addr], nil
}

func (r *regFile) WriteReg(addr, val uint32) (uint64, error) {
	if int(addr) >= len(r.regs) {
		return 0, errors.New("bad addr")
	}
	r.regs[addr] = val
	if addr == 0xF {
		return uint64(val), nil
	}
	return 0, nil
}

func newBus(t *testing.T) (*Bus, *regFile) {
	t.Helper()
	dev := &regFile{}
	b, err := New(DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return b, dev
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BusClockHz: 0, DeviceClockHz: 1, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: 1, DeviceClockHz: 0, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: 1, DeviceClockHz: 1, WriteCycles: 0, ReadCycles: 1},
		{BusClockHz: 1, DeviceClockHz: 1, WriteCycles: 1, ReadCycles: 0},
		// Regression: zero/negative/non-finite clocks would silently turn
		// every transaction cost into a division by zero or NaN latency.
		{BusClockHz: -200e6, DeviceClockHz: 100e6, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: 200e6, DeviceClockHz: -100e6, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: math.NaN(), DeviceClockHz: 100e6, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: 200e6, DeviceClockHz: math.NaN(), WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: math.Inf(1), DeviceClockHz: 100e6, WriteCycles: 1, ReadCycles: 1},
		{BusClockHz: 200e6, DeviceClockHz: math.Inf(1), WriteCycles: 1, ReadCycles: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := New(c, &regFile{}); err == nil {
			t.Errorf("constructor accepted bad config %d: %+v", i, c)
		}
	}
}

func TestWatchdogBoundsStalledRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 100
	dev := &regFile{}
	b, err := New(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the device: busy far past the watchdog bound.
	if err := b.Write(0xF, 1<<20); err != nil {
		t.Fatal(err)
	}
	afterWrite := b.NowS()
	_, err = b.Read(1)
	if !errors.Is(err, ErrDeviceTimeout) {
		t.Fatalf("stalled read error = %v, want ErrDeviceTimeout", err)
	}
	// The read charged exactly the watchdog bound plus the round trip —
	// bounded, not the device's full busy time.
	want := afterWrite + float64(cfg.WatchdogCycles+cfg.ReadCycles)/cfg.BusClockHz
	if math.Abs(b.NowS()-want) > 1e-12 {
		t.Fatalf("time after timed-out read = %v, want %v", b.NowS(), want)
	}
	if b.Timeouts() != 1 {
		t.Fatalf("timeouts = %d, want 1", b.Timeouts())
	}
	// Still wedged: a retry without recovery times out again.
	if _, err := b.Read(1); !errors.Is(err, ErrDeviceTimeout) {
		t.Fatalf("retry without recovery = %v, want ErrDeviceTimeout", err)
	}
	// Recover clears the wedge; the next read completes un-stalled.
	b.Recover()
	if b.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", b.Recoveries())
	}
	before := b.NowS()
	if _, err := b.Read(1); err != nil {
		t.Fatal(err)
	}
	if got := b.NowS() - before; math.Abs(got-float64(cfg.ReadCycles)/cfg.BusClockHz) > 1e-15 {
		t.Fatalf("read after recovery cost %v, want plain read", got)
	}
}

func TestWatchdogToleratesShortStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 10000
	b, _ := New(cfg, &regFile{})
	_ = b.Write(0xF, 50) // well under the bound
	if _, err := b.Read(1); err != nil {
		t.Fatalf("short stall tripped the watchdog: %v", err)
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	b, _ := newBus(t)
	cfg := DefaultConfig()
	b.Idle(100)
	want := 100 / cfg.BusClockHz
	if math.Abs(b.NowS()-want) > 1e-15 {
		t.Fatalf("Idle(100) advanced to %v, want %v", b.NowS(), want)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}, &regFile{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b, dev := newBus(t)
	if err := b.Write(3, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if dev.regs[3] != 0xdeadbeef {
		t.Fatalf("register not written: %#x", dev.regs[3])
	}
	v, err := b.Read(3)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Read = %#x, %v", v, err)
	}
	reads, writes, _ := b.Stats()
	if reads != 1 || writes != 1 {
		t.Fatalf("stats = %d/%d", reads, writes)
	}
}

func TestTimingAccounting(t *testing.T) {
	b, _ := newBus(t)
	cfg := DefaultConfig()
	_ = b.Write(0, 1)
	wantWrite := float64(cfg.WriteCycles) / cfg.BusClockHz
	if math.Abs(b.NowS()-wantWrite) > 1e-15 {
		t.Fatalf("time after write = %v, want %v", b.NowS(), wantWrite)
	}
	_, _ = b.Read(0)
	want := wantWrite + float64(cfg.ReadCycles)/cfg.BusClockHz
	if math.Abs(b.NowS()-want) > 1e-15 {
		t.Fatalf("time after read = %v, want %v", b.NowS(), want)
	}
}

func TestComputeStallsRead(t *testing.T) {
	b, _ := newBus(t)
	cfg := DefaultConfig()
	const computeCycles = 50
	if err := b.Write(0xF, computeCycles); err != nil {
		t.Fatal(err)
	}
	afterWrite := b.NowS()
	if _, err := b.Read(1); err != nil {
		t.Fatal(err)
	}
	// The read must have waited for the 50 device cycles then paid the
	// read cost.
	want := afterWrite + computeCycles/cfg.DeviceClockHz + float64(cfg.ReadCycles)/cfg.BusClockHz
	if math.Abs(b.NowS()-want) > 1e-12 {
		t.Fatalf("time after stalled read = %v, want %v", b.NowS(), want)
	}
	_, _, stall := b.Stats()
	if stall == 0 {
		t.Fatal("no stall cycles recorded")
	}
}

func TestNoStallAfterComputeDrains(t *testing.T) {
	b, _ := newBus(t)
	_ = b.Write(0xF, 10)
	_, _ = b.Read(0) // absorbs the stall
	before := b.NowS()
	_, _ = b.Read(0)
	cfg := DefaultConfig()
	if got := b.NowS() - before; math.Abs(got-float64(cfg.ReadCycles)/cfg.BusClockHz) > 1e-15 {
		t.Fatalf("second read cost %v, want plain read", got)
	}
}

func TestWriteErrorsPropagate(t *testing.T) {
	b, _ := newBus(t)
	if err := b.Write(99, 1); err == nil {
		t.Fatal("bad write accepted")
	}
	if _, err := b.Read(99); err == nil {
		t.Fatal("bad read accepted")
	}
}

func TestReadErrorPropagates(t *testing.T) {
	dev := &regFile{failRead: true}
	b, _ := New(DefaultConfig(), dev)
	if _, err := b.Read(0); err == nil {
		t.Fatal("device read error swallowed")
	}
}

func TestResetClock(t *testing.T) {
	b, _ := newBus(t)
	_ = b.Write(0xF, 1000)
	_, _ = b.Read(0)
	b.ResetClock()
	if b.NowS() != 0 {
		t.Fatalf("clock not reset: %v", b.NowS())
	}
	r, w, s := b.Stats()
	if r != 0 || w != 0 || s != 0 {
		t.Fatal("stats not reset")
	}
	// busyUntil cleared: next read is un-stalled.
	_, _ = b.Read(0)
	cfg := DefaultConfig()
	if math.Abs(b.NowS()-float64(cfg.ReadCycles)/cfg.BusClockHz) > 1e-15 {
		t.Fatalf("read after reset stalled: %v", b.NowS())
	}
}

func TestNowDuration(t *testing.T) {
	b, _ := newBus(t)
	_ = b.Write(0, 1)
	if b.Now() <= 0 {
		t.Fatal("Now() not positive after a write")
	}
}

// Property: time is monotone and total time equals the sum of per-op costs
// plus stalls.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		dev := &regFile{}
		b, _ := New(DefaultConfig(), dev)
		prev := 0.0
		for _, op := range ops {
			if op%3 == 0 {
				_ = b.Write(uint32(op%15), uint32(op))
			} else if op%3 == 1 {
				_ = b.Write(0xF, uint32(op%64)) // compute
			} else {
				_, _ = b.Read(uint32(op % 15))
			}
			if b.NowS() < prev {
				return false
			}
			prev = b.NowS()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	dev := &regFile{}
	bus, _ := New(DefaultConfig(), dev)
	for i := 0; i < b.N; i++ {
		_ = bus.Write(1, uint32(i))
		_, _ = bus.Read(1)
	}
}
