// Package bus models the CPU↔accelerator communication interface the paper
// builds for its FPGA-implemented policy.
//
// The interface is an AXI-Lite-style memory-mapped register file: the CPU
// writes the encoded state (and reward fields) into device registers,
// strobes a doorbell, the accelerator runs, and the CPU reads the chosen
// action back. The model is transaction-accurate: every read and write
// costs a fixed number of bus-clock cycles (address + data + response
// phases), and the device can stall reads until its computation finishes —
// exactly the handshake the decision-latency experiment (Table 2) times.
package bus

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrDeviceTimeout is the sentinel wrapped by Read when a stalled device
// holds the bus past the configured watchdog bound. Drivers detect it with
// errors.Is and run their recovery path (Recover + retry/fallback).
var ErrDeviceTimeout = errors.New("bus: device timeout")

// Device is the accelerator side of the interface: a register file plus a
// compute hook. Read/Write work in register words; Busy cycles model
// compute time that gates result reads.
type Device interface {
	// ReadReg returns the value of register addr.
	ReadReg(addr uint32) (uint32, error)
	// WriteReg stores val into register addr. Writing a doorbell register
	// may start computation; the device returns how many device-clock
	// cycles that computation takes (0 for plain stores).
	WriteReg(addr, val uint32) (computeCycles uint64, err error)
}

// Config describes the interconnect timing.
type Config struct {
	// BusClockHz is the interconnect clock (e.g. 200 MHz AXI-Lite).
	BusClockHz float64
	// DeviceClockHz is the accelerator's clock (e.g. 100 MHz fabric).
	DeviceClockHz float64
	// WriteCycles is the bus-clock cost of one posted write
	// (address+data accept).
	WriteCycles uint64
	// ReadCycles is the bus-clock cost of one read round trip
	// (address, data, response).
	ReadCycles uint64
	// WatchdogCycles bounds the read-stall (bus clock) a master will
	// tolerate while the device is busy. A read that would stall longer
	// charges exactly WatchdogCycles + ReadCycles and fails with
	// ErrDeviceTimeout; the device stays busy until Recover is called.
	// 0 disables the watchdog (reads stall indefinitely, the pre-fault
	// behaviour).
	WatchdogCycles uint64
}

// DefaultConfig returns the timing used in the evaluation: a 200 MHz
// AXI-Lite port (4-cycle writes, 6-cycle read round trips) in front of a
// 100 MHz fabric — conservative numbers for a Zynq-class FPGA platform.
func DefaultConfig() Config {
	return Config{
		BusClockHz:    200e6,
		DeviceClockHz: 100e6,
		WriteCycles:   4,
		ReadCycles:    6,
	}
}

// Validate checks the config. Clocks must be positive finite frequencies
// (NaN and ±Inf would silently turn every transaction cost into NaN or
// zero latency) and both transaction costs must be at least one cycle.
func (c Config) Validate() error {
	if !(c.BusClockHz > 0) || math.IsInf(c.BusClockHz, 0) {
		return fmt.Errorf("bus: bus clock must be positive and finite, got %v", c.BusClockHz)
	}
	if !(c.DeviceClockHz > 0) || math.IsInf(c.DeviceClockHz, 0) {
		return fmt.Errorf("bus: device clock must be positive and finite, got %v", c.DeviceClockHz)
	}
	if c.WriteCycles == 0 || c.ReadCycles == 0 {
		return fmt.Errorf("bus: transaction costs must be at least one cycle")
	}
	return nil
}

// Bus connects a master (the CPU-side driver) to one Device and accounts
// for elapsed time. It is transaction-accurate, not signal-accurate: each
// operation advances the wall clock by its full cost.
type Bus struct {
	cfg Config
	dev Device

	// busyUntil is the absolute time (seconds) the device's current
	// computation finishes; reads issued before then stall.
	busyUntil float64
	nowS      float64

	reads, writes, stallCycles uint64
	timeouts, recoveries       uint64
}

// New creates a bus in front of dev.
func New(cfg Config, dev Device) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, fmt.Errorf("bus: nil device")
	}
	return &Bus{cfg: cfg, dev: dev}, nil
}

// Config returns the interconnect timing configuration.
func (b *Bus) Config() Config { return b.cfg }

// NowS returns the bus's current absolute time in seconds.
func (b *Bus) NowS() float64 { return b.nowS }

// Now returns the bus's current absolute time as a duration.
func (b *Bus) Now() time.Duration { return time.Duration(b.nowS * float64(time.Second)) }

// Stats reports transaction counts and total read-stall cycles (bus clock).
func (b *Bus) Stats() (reads, writes, stallCycles uint64) {
	return b.reads, b.writes, b.stallCycles
}

// Write posts one register write. Posted writes complete in WriteCycles of
// bus clock; if the write triggers computation, the device becomes busy
// for the returned device-clock cycles starting when the write lands.
func (b *Bus) Write(addr, val uint32) error {
	b.nowS += float64(b.cfg.WriteCycles) / b.cfg.BusClockHz
	compute, err := b.dev.WriteReg(addr, val)
	if err != nil {
		return fmt.Errorf("bus: write %#x: %w", addr, err)
	}
	b.writes++
	if compute > 0 {
		finish := b.nowS + float64(compute)/b.cfg.DeviceClockHz
		if finish > b.busyUntil {
			b.busyUntil = finish
		}
	}
	return nil
}

// Read performs one register read round trip, stalling until any pending
// computation has finished (result registers are not valid earlier). With
// a watchdog configured, a stall longer than WatchdogCycles is abandoned:
// the read charges the watchdog bound plus the round trip and fails with
// an error wrapping ErrDeviceTimeout. The device remains busy — the
// master must Recover (modeling a device reset line) before retrying.
func (b *Bus) Read(addr uint32) (uint32, error) {
	if b.busyUntil > b.nowS {
		stallS := b.busyUntil - b.nowS
		stall := uint64(stallS*b.cfg.BusClockHz + 0.5)
		if b.cfg.WatchdogCycles > 0 && stall > b.cfg.WatchdogCycles {
			b.stallCycles += b.cfg.WatchdogCycles
			b.nowS += (float64(b.cfg.WatchdogCycles) + float64(b.cfg.ReadCycles)) / b.cfg.BusClockHz
			b.timeouts++
			return 0, fmt.Errorf("bus: read %#x: stalled %d cycles past watchdog %d: %w",
				addr, stall, b.cfg.WatchdogCycles, ErrDeviceTimeout)
		}
		b.stallCycles += stall
		b.nowS = b.busyUntil
	}
	b.nowS += float64(b.cfg.ReadCycles) / b.cfg.BusClockHz
	v, err := b.dev.ReadReg(addr)
	if err != nil {
		return 0, fmt.Errorf("bus: read %#x: %w", addr, err)
	}
	b.reads++
	return v, nil
}

// Timeouts reports how many reads the watchdog abandoned.
func (b *Bus) Timeouts() uint64 { return b.timeouts }

// Recoveries reports how many times the master pulsed the recovery line.
func (b *Bus) Recoveries() uint64 { return b.recoveries }

// Recover models the master pulsing the device reset/abort line: whatever
// computation wedged the device is abandoned and result reads no longer
// stall on it. Register contents are untouched (a driver that needs a
// clean device state issues its own control-register reset afterwards).
func (b *Bus) Recover() {
	if b.busyUntil > b.nowS {
		b.busyUntil = b.nowS
	}
	b.recoveries++
}

// Idle burns cycles of bus clock without issuing a transaction — the
// driver-side backoff delay between retries of a failed transaction.
func (b *Bus) Idle(cycles uint64) {
	b.nowS += float64(cycles) / b.cfg.BusClockHz
}

// ResetClock rewinds the wall clock and statistics without touching the
// device — used between timed transactions when measuring per-decision
// latency.
func (b *Bus) ResetClock() {
	b.nowS = 0
	b.busyUntil = 0
	b.reads, b.writes, b.stallCycles = 0, 0, 0
	b.timeouts, b.recoveries = 0, 0
}
