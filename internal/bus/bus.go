// Package bus models the CPU↔accelerator communication interface the paper
// builds for its FPGA-implemented policy.
//
// The interface is an AXI-Lite-style memory-mapped register file: the CPU
// writes the encoded state (and reward fields) into device registers,
// strobes a doorbell, the accelerator runs, and the CPU reads the chosen
// action back. The model is transaction-accurate: every read and write
// costs a fixed number of bus-clock cycles (address + data + response
// phases), and the device can stall reads until its computation finishes —
// exactly the handshake the decision-latency experiment (Table 2) times.
package bus

import (
	"fmt"
	"time"
)

// Device is the accelerator side of the interface: a register file plus a
// compute hook. Read/Write work in register words; Busy cycles model
// compute time that gates result reads.
type Device interface {
	// ReadReg returns the value of register addr.
	ReadReg(addr uint32) (uint32, error)
	// WriteReg stores val into register addr. Writing a doorbell register
	// may start computation; the device returns how many device-clock
	// cycles that computation takes (0 for plain stores).
	WriteReg(addr, val uint32) (computeCycles uint64, err error)
}

// Config describes the interconnect timing.
type Config struct {
	// BusClockHz is the interconnect clock (e.g. 200 MHz AXI-Lite).
	BusClockHz float64
	// DeviceClockHz is the accelerator's clock (e.g. 100 MHz fabric).
	DeviceClockHz float64
	// WriteCycles is the bus-clock cost of one posted write
	// (address+data accept).
	WriteCycles uint64
	// ReadCycles is the bus-clock cost of one read round trip
	// (address, data, response).
	ReadCycles uint64
}

// DefaultConfig returns the timing used in the evaluation: a 200 MHz
// AXI-Lite port (4-cycle writes, 6-cycle read round trips) in front of a
// 100 MHz fabric — conservative numbers for a Zynq-class FPGA platform.
func DefaultConfig() Config {
	return Config{
		BusClockHz:    200e6,
		DeviceClockHz: 100e6,
		WriteCycles:   4,
		ReadCycles:    6,
	}
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.BusClockHz <= 0 || c.DeviceClockHz <= 0 {
		return fmt.Errorf("bus: clocks must be positive, got bus=%v dev=%v", c.BusClockHz, c.DeviceClockHz)
	}
	if c.WriteCycles == 0 || c.ReadCycles == 0 {
		return fmt.Errorf("bus: transaction costs must be at least one cycle")
	}
	return nil
}

// Bus connects a master (the CPU-side driver) to one Device and accounts
// for elapsed time. It is transaction-accurate, not signal-accurate: each
// operation advances the wall clock by its full cost.
type Bus struct {
	cfg Config
	dev Device

	// busyUntil is the absolute time (seconds) the device's current
	// computation finishes; reads issued before then stall.
	busyUntil float64
	nowS      float64

	reads, writes, stallCycles uint64
}

// New creates a bus in front of dev.
func New(cfg Config, dev Device) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, fmt.Errorf("bus: nil device")
	}
	return &Bus{cfg: cfg, dev: dev}, nil
}

// Config returns the interconnect timing configuration.
func (b *Bus) Config() Config { return b.cfg }

// NowS returns the bus's current absolute time in seconds.
func (b *Bus) NowS() float64 { return b.nowS }

// Now returns the bus's current absolute time as a duration.
func (b *Bus) Now() time.Duration { return time.Duration(b.nowS * float64(time.Second)) }

// Stats reports transaction counts and total read-stall cycles (bus clock).
func (b *Bus) Stats() (reads, writes, stallCycles uint64) {
	return b.reads, b.writes, b.stallCycles
}

// Write posts one register write. Posted writes complete in WriteCycles of
// bus clock; if the write triggers computation, the device becomes busy
// for the returned device-clock cycles starting when the write lands.
func (b *Bus) Write(addr, val uint32) error {
	b.nowS += float64(b.cfg.WriteCycles) / b.cfg.BusClockHz
	compute, err := b.dev.WriteReg(addr, val)
	if err != nil {
		return fmt.Errorf("bus: write %#x: %w", addr, err)
	}
	b.writes++
	if compute > 0 {
		finish := b.nowS + float64(compute)/b.cfg.DeviceClockHz
		if finish > b.busyUntil {
			b.busyUntil = finish
		}
	}
	return nil
}

// Read performs one register read round trip, stalling until any pending
// computation has finished (result registers are not valid earlier).
func (b *Bus) Read(addr uint32) (uint32, error) {
	if b.busyUntil > b.nowS {
		stallS := b.busyUntil - b.nowS
		b.stallCycles += uint64(stallS*b.cfg.BusClockHz + 0.5)
		b.nowS = b.busyUntil
	}
	b.nowS += float64(b.cfg.ReadCycles) / b.cfg.BusClockHz
	v, err := b.dev.ReadReg(addr)
	if err != nil {
		return 0, fmt.Errorf("bus: read %#x: %w", addr, err)
	}
	b.reads++
	return v, nil
}

// ResetClock rewinds the wall clock and statistics without touching the
// device — used between timed transactions when measuring per-decision
// latency.
func (b *Bus) ResetClock() {
	b.nowS = 0
	b.busyUntil = 0
	b.reads, b.writes, b.stallCycles = 0, 0, 0
}
