package hwpolicy

import (
	"fmt"
	"time"

	"rlpm/internal/bus"
	"rlpm/internal/fixed"
)

// Driver is the CPU-side software that talks to the accelerator over the
// bus — the "communication interface between the CPUs and the hardware of
// the proposed policy" from the paper. One Step is one full decision
// transaction: write state, write reward, doorbell, read action.
type Driver struct {
	bus   *bus.Bus
	accel *Accel
}

// NewDriver wires an accelerator behind a bus with the given config.
func NewDriver(cfg bus.Config, accel *Accel) (*Driver, error) {
	return NewDriverDevice(cfg, accel, accel)
}

// NewDriverDevice wires the driver to accel through an arbitrary bus-side
// device view — normally the accelerator itself, but a fault-injection
// wrapper (internal/fault.Device) can sit in between so the driver sees
// the same errors, stalls, and corrupted reads real host software would.
func NewDriverDevice(cfg bus.Config, accel *Accel, dev bus.Device) (*Driver, error) {
	if accel == nil {
		return nil, fmt.Errorf("hwpolicy: nil accelerator")
	}
	if dev == nil {
		dev = accel
	}
	b, err := bus.New(cfg, dev)
	if err != nil {
		return nil, err
	}
	return &Driver{bus: b, accel: accel}, nil
}

// Accel returns the device behind the driver.
func (d *Driver) Accel() *Accel { return d.accel }

// Configure programs the learning parameters into the device registers.
func (d *Driver) Configure(alpha, gamma, epsilon float64, learn bool) error {
	writes := []struct {
		reg uint32
		val uint32
	}{
		{RegAlpha, uint32(fixed.FromFloat(alpha).Raw())},
		{RegGamma, uint32(fixed.FromFloat(gamma).Raw())},
		{RegEpsilon, uint32(fixed.FromFloat(epsilon).Raw())},
		{RegLearn, boolBit(learn)},
	}
	for _, w := range writes {
		if err := d.bus.Write(w.reg, w.val); err != nil {
			return err
		}
	}
	return nil
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Step runs one decision: returns the chosen action and the wall-clock
// latency of the whole transaction (bus writes + compute + result read).
func (d *Driver) Step(state int, reward float64) (action int, latency time.Duration, err error) {
	if state < 0 || state >= d.accel.p.NumStates {
		return 0, 0, fmt.Errorf("hwpolicy: state %d out of range [0,%d): %w", state, d.accel.p.NumStates, ErrOutOfRange)
	}
	start := d.bus.Now()
	if err := d.bus.Write(RegState, uint32(state)); err != nil {
		return 0, 0, err
	}
	if err := d.bus.Write(RegReward, uint32(fixed.FromFloat(reward).Raw())); err != nil {
		return 0, 0, err
	}
	if err := d.bus.Write(RegCtrl, CtrlStep); err != nil {
		return 0, 0, err
	}
	act, err := d.bus.Read(RegAction)
	if err != nil {
		return 0, 0, err
	}
	return int(act), d.bus.Now() - start, nil
}

// UploadTable pushes a software-trained table through the Q-access port,
// word by word, exactly as the real driver initializes BRAM.
func (d *Driver) UploadTable(table [][]float64) error {
	if len(table) != d.accel.p.NumStates {
		return fmt.Errorf("hwpolicy: table has %d states, accelerator sized for %d", len(table), d.accel.p.NumStates)
	}
	for s, row := range table {
		if len(row) != d.accel.p.NumActions {
			return fmt.Errorf("hwpolicy: table row %d has %d actions, want %d", s, len(row), d.accel.p.NumActions)
		}
		for x, v := range row {
			idx := uint32(s*d.accel.p.NumActions + x)
			if err := d.bus.Write(RegQAddr, idx); err != nil {
				return err
			}
			if err := d.bus.Write(RegQData, uint32(fixed.FromFloat(v).Raw())); err != nil {
				return err
			}
		}
	}
	return nil
}

// Bus exposes the underlying bus (for latency accounting in benches).
func (d *Driver) Bus() *bus.Bus { return d.bus }
