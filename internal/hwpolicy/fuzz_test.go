package hwpolicy

import (
	"encoding/binary"
	"testing"
)

// FuzzAccelRegisterFile hammers the accelerator's register file with
// arbitrary (op, addr, value) transactions — the view a misbehaving or
// malicious bus master has of the device. Invariants, regardless of input:
//
//   - no panic and no unbounded loop (the fuzzer enforces both);
//   - every error is an error return, never a crash;
//   - the status register only ever carries defined bits;
//   - the action register always names a real action;
//   - reported compute cycles stay within the datapath's static bound.
func FuzzAccelRegisterFile(f *testing.F) {
	// Seeds: a clean decision sequence, a reset, Q-port traffic, junk.
	seed := func(ops ...uint64) []byte {
		b := make([]byte, 0, 8*len(ops))
		for _, op := range ops {
			b = binary.LittleEndian.AppendUint64(b, op)
		}
		return b
	}
	enc := func(write bool, addr uint32, val uint32) uint64 {
		v := uint64(val)<<16 | uint64(addr)<<1
		if write {
			v |= 1
		}
		return v
	}
	f.Add(seed(
		enc(true, RegState, 3), enc(true, RegReward, 0x8000),
		enc(true, RegCtrl, CtrlStep), enc(false, RegAction, 0),
	))
	f.Add(seed(enc(true, RegCtrl, CtrlReset), enc(false, RegStatus, 0)))
	f.Add(seed(enc(true, RegQAddr, 7), enc(true, RegQData, 0xFFFF_FFFF), enc(false, RegQData, 0)))
	f.Add([]byte{0xFF, 0x00, 0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67})

	f.Fuzz(func(t *testing.T, data []byte) {
		accel, err := New(Params{NumStates: 16, NumActions: 4, Banks: 2, LFSRSeed: 0xACE1})
		if err != nil {
			t.Fatal(err)
		}
		maxCycles := accel.StepCycles()
		for len(data) >= 8 {
			op := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]
			write := op&1 != 0
			addr := uint32(op>>1) & 0x7FFF
			val := uint32(op >> 16)
			if write {
				cycles, err := accel.WriteReg(addr, val)
				if err == nil && cycles > maxCycles {
					t.Fatalf("write %#x=%#x reported %d cycles, static bound %d", addr, val, cycles, maxCycles)
				}
			} else {
				v, err := accel.ReadReg(addr)
				if err != nil {
					continue
				}
				switch addr {
				case RegStatus:
					if v&^uint32(3) != 0 {
						t.Fatalf("status carries undefined bits: %#x", v)
					}
				case RegAction:
					if v >= 4 {
						t.Fatalf("action register out of range: %d", v)
					}
				}
			}
		}
	})
}
