package hwpolicy

import (
	"fmt"
	"time"

	"rlpm/internal/bus"
	"rlpm/internal/fixed"
)

// MultiAccel is the multi-channel accelerator: one Q-learning channel per
// DVFS domain behind a single register file, so the CPU makes all domains'
// decisions in one MMIO conversation instead of one per domain. This is
// the natural next step of the paper's hardware design once the chip has
// more than one DVFS domain — amortizing the bus round trips that dominate
// the single-channel transaction.
//
// Register map: channel c's registers live at base c*ChannelStride using
// the same offsets as the single-channel Accel; a global control register
// at GlobalCtrl steps every channel at once, and the per-channel action
// registers are read back individually (reads are cheap once the compute
// has drained).
type MultiAccel struct {
	channels []*Accel
}

// ChannelStride is the register-address stride between channels.
const ChannelStride uint32 = 0x100

// GlobalCtrl is the all-channel doorbell register.
const GlobalCtrl uint32 = 0xF00

// NewMulti builds a multi-channel accelerator. Channels may be sized
// differently (the LITTLE, big and GPU domains have different OPP counts).
func NewMulti(params []Params) (*MultiAccel, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("hwpolicy: multi-channel accelerator needs at least one channel")
	}
	m := &MultiAccel{}
	for i, p := range params {
		a, err := New(p)
		if err != nil {
			return nil, fmt.Errorf("hwpolicy: channel %d: %w", i, err)
		}
		m.channels = append(m.channels, a)
	}
	return m, nil
}

// NumChannels returns the channel count.
func (m *MultiAccel) NumChannels() int { return len(m.channels) }

// Channel returns channel i's accelerator.
func (m *MultiAccel) Channel(i int) *Accel { return m.channels[i] }

// decode splits a global address into (channel, offset).
func (m *MultiAccel) decode(addr uint32) (int, uint32, error) {
	ch := int(addr / ChannelStride)
	if ch >= len(m.channels) {
		return 0, 0, fmt.Errorf("hwpolicy: address %#x beyond channel %d: %w", addr, len(m.channels)-1, ErrBadRegister)
	}
	return ch, addr % ChannelStride, nil
}

// ReadReg implements bus.Device.
func (m *MultiAccel) ReadReg(addr uint32) (uint32, error) {
	if addr == GlobalCtrl {
		return 0, nil
	}
	ch, off, err := m.decode(addr)
	if err != nil {
		return 0, err
	}
	return m.channels[ch].ReadReg(off)
}

// WriteReg implements bus.Device. Writing CtrlStep to GlobalCtrl steps
// every channel; because the channels are independent datapaths they run
// in parallel, so the compute cost is the maximum channel latency, not
// the sum.
func (m *MultiAccel) WriteReg(addr, val uint32) (uint64, error) {
	if addr == GlobalCtrl {
		if val != CtrlStep {
			return 0, fmt.Errorf("hwpolicy: global control only accepts step, got %#x: %w", val, ErrBadCommand)
		}
		var maxCycles uint64
		for i, ch := range m.channels {
			c, err := ch.WriteReg(RegCtrl, CtrlStep)
			if err != nil {
				return 0, fmt.Errorf("hwpolicy: stepping channel %d: %w", i, err)
			}
			if c > maxCycles {
				maxCycles = c
			}
		}
		return maxCycles, nil
	}
	ch, off, err := m.decode(addr)
	if err != nil {
		return 0, err
	}
	return m.channels[ch].WriteReg(off, val)
}

// MultiDriver is the CPU-side driver for the multi-channel accelerator.
type MultiDriver struct {
	bus   *bus.Bus
	accel *MultiAccel
}

// NewMultiDriver wires the multi-channel accelerator behind a bus.
func NewMultiDriver(cfg bus.Config, accel *MultiAccel) (*MultiDriver, error) {
	if accel == nil {
		return nil, fmt.Errorf("hwpolicy: nil accelerator")
	}
	b, err := bus.New(cfg, accel)
	if err != nil {
		return nil, err
	}
	return &MultiDriver{bus: b, accel: accel}, nil
}

// Accel returns the device.
func (d *MultiDriver) Accel() *MultiAccel { return d.accel }

// Bus returns the underlying bus.
func (d *MultiDriver) Bus() *bus.Bus { return d.bus }

// Configure programs every channel's learning parameters.
func (d *MultiDriver) Configure(alpha, gamma, epsilon float64, learn bool) error {
	for c := range d.accel.channels {
		base := uint32(c) * ChannelStride
		writes := []struct {
			reg uint32
			val uint32
		}{
			{base + RegAlpha, uint32(fixed.FromFloat(alpha).Raw())},
			{base + RegGamma, uint32(fixed.FromFloat(gamma).Raw())},
			{base + RegEpsilon, uint32(fixed.FromFloat(epsilon).Raw())},
			{base + RegLearn, boolBit(learn)},
		}
		for _, w := range writes {
			if err := d.bus.Write(w.reg, w.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// StepAll runs one decision for every channel in a single conversation:
// per-channel state and reward writes, one global doorbell, per-channel
// action reads. Returns the actions and the total transaction latency.
func (d *MultiDriver) StepAll(states []int, rewards []float64) ([]int, time.Duration, error) {
	n := len(d.accel.channels)
	if len(states) != n || len(rewards) != n {
		return nil, 0, fmt.Errorf("hwpolicy: %d states / %d rewards for %d channels", len(states), len(rewards), n)
	}
	start := d.bus.Now()
	for c := 0; c < n; c++ {
		if states[c] < 0 || states[c] >= d.accel.channels[c].Params().NumStates {
			return nil, 0, fmt.Errorf("hwpolicy: channel %d state %d out of range: %w", c, states[c], ErrOutOfRange)
		}
		base := uint32(c) * ChannelStride
		if err := d.bus.Write(base+RegState, uint32(states[c])); err != nil {
			return nil, 0, err
		}
		if err := d.bus.Write(base+RegReward, uint32(fixed.FromFloat(rewards[c]).Raw())); err != nil {
			return nil, 0, err
		}
	}
	if err := d.bus.Write(GlobalCtrl, CtrlStep); err != nil {
		return nil, 0, err
	}
	actions := make([]int, n)
	for c := 0; c < n; c++ {
		base := uint32(c) * ChannelStride
		act, err := d.bus.Read(base + RegAction)
		if err != nil {
			return nil, 0, err
		}
		actions[c] = int(act)
	}
	return actions, d.bus.Now() - start, nil
}
