package hwpolicy

import (
	"fmt"
	"time"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/sim"
)

// Governor runs the power management policy on the modeled hardware: one
// accelerator per cluster behind an MMIO driver. It is a drop-in
// sim.Governor, so the same simulation loop can run the software policy
// (core.Policy) and the hardware policy and compare both quality and
// decision latency.
//
// Exploration in hardware uses the LFSR at a fixed ε (the RTL has no decay
// schedule); the usual deployment flow is to train in software, upload the
// table, and run the accelerator in inference mode — exactly what
// FromPolicy does.
type Governor struct {
	cfg     core.Config
	busCfg  bus.Config
	banks   int
	epsilon float64
	learn   bool

	drivers    []*Driver
	prevDemand []float64

	decisions  uint64
	totalLat   time.Duration
	maxLat     time.Duration
	pendingTab [][][]float64 // optional table to upload at lazy init
}

var _ sim.InPlaceGovernor = (*Governor)(nil)

// NewGovernor builds a hardware-policy governor that learns online at the
// fixed exploration rate cfg.EpsilonMin.
func NewGovernor(cfg core.Config, busCfg bus.Config, banks int) (*Governor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := busCfg.Validate(); err != nil {
		return nil, err
	}
	if banks < 1 {
		return nil, fmt.Errorf("hwpolicy: need at least one BRAM bank")
	}
	return &Governor{
		cfg:     cfg,
		busCfg:  busCfg,
		banks:   banks,
		epsilon: cfg.EpsilonMin,
		learn:   true,
	}, nil
}

// FromPolicy builds a hardware governor pre-loaded with a software-trained
// policy's tables and frozen to inference mode — the paper's deployment
// flow. The policy must have been driven at least once so its agents (and
// their table shapes) exist.
func FromPolicy(p *core.Policy, cfg core.Config, busCfg bus.Config, banks int) (*Governor, error) {
	snap, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	g, err := NewGovernor(cfg, busCfg, banks)
	if err != nil {
		return nil, err
	}
	g.learn = false
	g.epsilon = 0
	g.pendingTab = snap.Tables
	return g, nil
}

// Name implements sim.Governor.
func (*Governor) Name() string { return "rl-policy-hw" }

// Decide implements sim.Governor: one MMIO decision transaction per
// cluster per period.
func (g *Governor) Decide(obs []sim.Observation) []int {
	return g.DecideInto(make([]int, len(obs)), obs)
}

// DecideInto implements sim.InPlaceGovernor.
func (g *Governor) DecideInto(dst []int, obs []sim.Observation) []int {
	if g.drivers == nil {
		g.init(obs)
	}
	if len(obs) != len(g.drivers) {
		panic(fmt.Sprintf("hwpolicy: governor built for %d clusters, got %d observations", len(g.drivers), len(obs)))
	}
	out := sim.FitLevels(dst, len(obs))
	for i, o := range obs {
		state := g.cfg.EncodeState(o, g.prevDemand[i])
		g.prevDemand[i] = o.DemandRatio
		reward := g.cfg.Reward(o)
		action, lat, err := g.drivers[i].Step(state, reward)
		if err != nil {
			panic(fmt.Sprintf("hwpolicy: decision transaction failed: %v", err))
		}
		g.decisions++
		g.totalLat += lat
		if lat > g.maxLat {
			g.maxLat = lat
		}
		out[i] = action
	}
	return out
}

func (g *Governor) init(obs []sim.Observation) {
	g.drivers = make([]*Driver, len(obs))
	g.prevDemand = make([]float64, len(obs))
	for i, o := range obs {
		p := Params{
			NumStates:  g.cfg.State.States(o.NumLevels),
			NumActions: o.NumLevels,
			Banks:      g.banks,
			LFSRSeed:   uint16(0xACE1 + 2*i + 1),
		}
		accel, err := New(p)
		if err != nil {
			panic(fmt.Sprintf("hwpolicy: sizing accelerator for cluster %d: %v", i, err))
		}
		d, err := NewDriver(g.busCfg, accel)
		if err != nil {
			panic(fmt.Sprintf("hwpolicy: wiring driver for cluster %d: %v", i, err))
		}
		if err := d.Configure(g.cfg.Alpha, g.cfg.Gamma, g.epsilon, g.learn); err != nil {
			panic(fmt.Sprintf("hwpolicy: configuring cluster %d: %v", i, err))
		}
		if g.pendingTab != nil {
			if err := d.UploadTable(g.pendingTab[i]); err != nil {
				panic(fmt.Sprintf("hwpolicy: uploading table for cluster %d: %v", i, err))
			}
		}
		g.drivers[i] = d
	}
	g.pendingTab = nil
}

// Reset implements sim.Governor: resets every accelerator and the latency
// accounting.
func (g *Governor) Reset() {
	for i, d := range g.drivers {
		if _, err := d.Accel().WriteReg(RegCtrl, CtrlReset); err != nil {
			panic(fmt.Sprintf("hwpolicy: resetting cluster %d: %v", i, err))
		}
		d.Bus().ResetClock()
		g.prevDemand[i] = 0
	}
	g.decisions, g.totalLat, g.maxLat = 0, 0, 0
}

// Drivers exposes the per-cluster drivers (nil before the first Decide).
func (g *Governor) Drivers() []*Driver { return g.drivers }

// LatencyStats reports decision-transaction latency over the governor's
// lifetime.
func (g *Governor) LatencyStats() (decisions uint64, mean, max time.Duration) {
	if g.decisions == 0 {
		return 0, 0, 0
	}
	return g.decisions, g.totalLat / time.Duration(g.decisions), g.maxLat
}
