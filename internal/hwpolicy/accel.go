// Package hwpolicy models the paper's hardware implementation of the
// Q-learning power management policy.
//
// The paper implements the policy on an FPGA and builds a communication
// interface between the CPUs and the accelerator; decision-making in
// hardware is reported 3.92× faster than the software policy, and the
// average decision latency drops by up to 40× once the software stack's
// invocation overhead is included. This package reproduces that
// architecture at cycle level:
//
//   - a Q-table in BRAM holding Q16.16 fixed-point action values,
//   - a comparator tree computing argmax over the action row,
//   - a single MAC performing the Q-update Q += α·(r + γ·max − Q),
//   - a 16-bit LFSR for ε-greedy exploration,
//   - an AXI-Lite register file (internal/bus.Device) for the CPU side.
//
// The datapath arithmetic is exactly internal/fixed's saturating Q16.16,
// so the hardware model is differentially testable against a software
// reference.
package hwpolicy

import (
	"fmt"
	"math/bits"

	"rlpm/internal/fixed"
)

// Register map (word addresses on the AXI-Lite port).
const (
	RegCtrl    uint32 = 0x0 // write CtrlStep to run one decision, CtrlReset to clear
	RegStatus  uint32 = 0x1 // bit0: done; bit1: table-loaded
	RegState   uint32 = 0x2 // current encoded state index
	RegReward  uint32 = 0x3 // reward as raw Q16.16 bits
	RegAction  uint32 = 0x4 // result: chosen action (valid after a step)
	RegAlpha   uint32 = 0x5 // learning rate, raw Q16.16
	RegGamma   uint32 = 0x6 // discount, raw Q16.16
	RegEpsilon uint32 = 0x7 // exploration rate, raw Q16.16 (0 disables)
	RegQAddr   uint32 = 0x8 // Q-table access port: flat index state*actions+action
	RegQData   uint32 = 0x9 // Q-table access port: raw Q16.16 at RegQAddr
	RegLearn   uint32 = 0xA // bit0: enable Q-updates (1) or inference only (0)
)

// Control register commands.
const (
	CtrlStep  uint32 = 1
	CtrlReset uint32 = 2
)

// Status bits.
const (
	StatusDone uint32 = 1 << 0
)

// Params sizes the accelerator.
type Params struct {
	NumStates  int
	NumActions int
	// Banks is the number of BRAM banks the action row is striped over;
	// row fetch takes ceil(NumActions/Banks) cycles.
	Banks int
	// LFSRSeed seeds the exploration LFSR (must be non-zero).
	LFSRSeed uint16
}

// DefaultParams returns the evaluation-sized accelerator: the default
// policy state space (864 states × 9 actions) striped over 4 BRAM banks.
func DefaultParams() Params {
	return Params{NumStates: 864, NumActions: 9, Banks: 4, LFSRSeed: 0xACE1}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.NumStates < 1 || p.NumActions < 1 {
		return fmt.Errorf("hwpolicy: table must be at least 1x1, got %dx%d", p.NumStates, p.NumActions)
	}
	if p.NumActions > 64 {
		return fmt.Errorf("hwpolicy: comparator tree supports at most 64 actions, got %d", p.NumActions)
	}
	if p.Banks < 1 {
		return fmt.Errorf("hwpolicy: need at least one BRAM bank")
	}
	if p.LFSRSeed == 0 {
		return fmt.Errorf("hwpolicy: LFSR seed must be non-zero")
	}
	return nil
}

// Accel is the cycle-level accelerator model. It implements bus.Device.
type Accel struct {
	p Params
	q []fixed.Q16 // flat [state*NumActions + action]

	// parity is the per-word even-parity bit maintained alongside the Q
	// BRAM when parityOn; scrubs counts words the datapath detected as
	// corrupted and zeroed (an SEU scrub resets the cell to its reset
	// value — the learner relearns it).
	parityOn bool
	parity   []uint8
	scrubs   uint64

	alpha, gamma, epsilon fixed.Q16
	learn                 bool

	lfsr uint16
	// stuckMask/stuckVal model stuck-at faults on the exploration LFSR:
	// bits in stuckMask are forced to stuckVal after every shift.
	stuckMask, stuckVal uint16

	stateReg  uint32
	rewardReg fixed.Q16
	actionReg uint32
	qAddr     uint32
	status    uint32

	prevState  uint32
	prevAction uint32
	hasPrev    bool

	steps       uint64
	totalCycles uint64
}

// New builds an accelerator with a zeroed Q-table and default learning
// parameters of α=0.2, γ=0.85, ε=0 (inference-greedy until configured).
func New(p Params) (*Accel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Accel{
		p:     p,
		q:     make([]fixed.Q16, p.NumStates*p.NumActions),
		alpha: fixed.FromFloat(0.2),
		gamma: fixed.FromFloat(0.85),
		learn: true,
		lfsr:  p.LFSRSeed,
	}, nil
}

// Params returns the sizing parameters.
func (a *Accel) Params() Params { return a.p }

// Steps returns how many decisions the accelerator has run.
func (a *Accel) Steps() uint64 { return a.steps }

// TotalCycles returns the cumulative device-clock compute cycles.
func (a *Accel) TotalCycles() uint64 { return a.totalCycles }

// StepCycles returns the device-clock cycles one decision takes:
// row fetch (banked) + comparator tree + MAC update + write-back +
// action select.
func (a *Accel) StepCycles() uint64 {
	fetch := (a.p.NumActions + a.p.Banks - 1) / a.p.Banks
	tree := treeDepth(a.p.NumActions)
	const mac = 3       // multiply, accumulate, saturate
	const writeback = 1 // BRAM write port
	const sel = 1       // ε-greedy mux
	cycles := uint64(fetch + tree + mac + writeback + sel)
	if a.parityOn {
		cycles++ // parity check/scrub stage on the fetch path
	}
	return cycles
}

func treeDepth(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// ReadReg implements bus.Device.
func (a *Accel) ReadReg(addr uint32) (uint32, error) {
	switch addr {
	case RegCtrl:
		return 0, nil
	case RegStatus:
		return a.status, nil
	case RegState:
		return a.stateReg, nil
	case RegReward:
		return uint32(a.rewardReg.Raw()), nil
	case RegAction:
		return a.actionReg, nil
	case RegAlpha:
		return uint32(a.alpha.Raw()), nil
	case RegGamma:
		return uint32(a.gamma.Raw()), nil
	case RegEpsilon:
		return uint32(a.epsilon.Raw()), nil
	case RegQAddr:
		return a.qAddr, nil
	case RegQData:
		if int(a.qAddr) >= len(a.q) {
			return 0, fmt.Errorf("hwpolicy: Q address %d out of range: %w", a.qAddr, ErrOutOfRange)
		}
		a.checkWord(int(a.qAddr))
		return uint32(a.q[a.qAddr].Raw()), nil
	case RegLearn:
		if a.learn {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("hwpolicy: read of unmapped register %#x: %w", addr, ErrBadRegister)
	}
}

// WriteReg implements bus.Device. Writing CtrlStep runs one decision and
// returns its compute-cycle cost.
func (a *Accel) WriteReg(addr, val uint32) (uint64, error) {
	switch addr {
	case RegCtrl:
		switch val {
		case CtrlStep:
			return a.step(), nil
		case CtrlReset:
			a.reset()
			return 0, nil
		default:
			return 0, fmt.Errorf("hwpolicy: unknown control command %#x: %w", val, ErrBadCommand)
		}
	case RegState:
		if int(val) >= a.p.NumStates {
			return 0, fmt.Errorf("hwpolicy: state %d out of range [0,%d): %w", val, a.p.NumStates, ErrOutOfRange)
		}
		a.stateReg = val
		return 0, nil
	case RegReward:
		a.rewardReg = fixed.FromRaw(int32(val))
		return 0, nil
	case RegAlpha:
		a.alpha = fixed.FromRaw(int32(val))
		return 0, nil
	case RegGamma:
		a.gamma = fixed.FromRaw(int32(val))
		return 0, nil
	case RegEpsilon:
		a.epsilon = fixed.FromRaw(int32(val))
		return 0, nil
	case RegQAddr:
		if int(val) >= len(a.q) {
			return 0, fmt.Errorf("hwpolicy: Q address %d out of range: %w", val, ErrOutOfRange)
		}
		a.qAddr = val
		return 0, nil
	case RegQData:
		if int(a.qAddr) >= len(a.q) {
			return 0, fmt.Errorf("hwpolicy: Q address %d out of range: %w", a.qAddr, ErrOutOfRange)
		}
		a.setQ(int(a.qAddr), fixed.FromRaw(int32(val)))
		return 0, nil
	case RegLearn:
		a.learn = val&1 == 1
		return 0, nil
	case RegStatus, RegAction:
		return 0, fmt.Errorf("hwpolicy: register %#x is read-only: %w", addr, ErrBadRegister)
	default:
		return 0, fmt.Errorf("hwpolicy: write to unmapped register %#x: %w", addr, ErrBadRegister)
	}
}

// step is the hardware decision: argmax over the new state's row, MAC
// update of the previous (state, action), ε-greedy select via LFSR.
func (a *Accel) step() uint64 {
	if a.parityOn {
		// The row fetch passes every word through the parity checker; a
		// mismatch scrubs the word back to reset value before the argmax
		// sees it.
		base := int(a.stateReg) * a.p.NumActions
		for i := 0; i < a.p.NumActions; i++ {
			a.checkWord(base + i)
		}
	}
	row := a.row(a.stateReg)
	bestIdx, bestVal := fixed.ArgMax(row)

	if a.learn && a.hasPrev {
		idx := int(a.prevState)*a.p.NumActions + int(a.prevAction)
		a.checkWord(idx)
		old := a.q[idx]
		target := fixed.Add(a.rewardReg, fixed.Mul(a.gamma, bestVal))
		a.setQ(idx, fixed.Add(old, fixed.Mul(a.alpha, fixed.Sub(target, old))))
	}

	action := uint32(bestIdx)
	if a.learn && a.epsilon > 0 {
		// Two LFSR draws: one against ε (scaled to 16 fractional bits),
		// one to pick the random action — exactly what the RTL does.
		draw := a.nextLFSR()
		if fixed.Q16(draw) < a.epsilon {
			action = uint32(a.nextLFSR()) % uint32(a.p.NumActions)
		} else {
			_ = a.nextLFSR() // RTL consumes both draws every step
		}
	}

	a.actionReg = action
	a.prevState, a.prevAction, a.hasPrev = a.stateReg, action, true
	a.status |= StatusDone
	a.steps++
	cycles := a.StepCycles()
	a.totalCycles += cycles
	return cycles
}

// nextLFSR advances the 16-bit Fibonacci LFSR (taps 16,14,13,11 — maximal
// length) and returns its state. Stuck-at faults force the masked bits
// after every shift, exactly as a shorted flip-flop would.
func (a *Accel) nextLFSR() uint16 {
	l := a.lfsr
	bit := ((l >> 0) ^ (l >> 2) ^ (l >> 3) ^ (l >> 5)) & 1
	l = (l >> 1) | (bit << 15)
	if a.stuckMask != 0 {
		l = (l &^ a.stuckMask) | (a.stuckVal & a.stuckMask)
	}
	a.lfsr = l
	return l
}

func (a *Accel) row(state uint32) []fixed.Q16 {
	base := int(state) * a.p.NumActions
	return a.q[base : base+a.p.NumActions]
}

func (a *Accel) reset() {
	for i := range a.q {
		a.q[i] = 0
	}
	for i := range a.parity {
		a.parity[i] = 0
	}
	a.scrubs = 0
	a.lfsr = a.p.LFSRSeed
	a.stateReg, a.rewardReg, a.actionReg, a.qAddr = 0, 0, 0, 0
	a.prevState, a.prevAction, a.hasPrev = 0, 0, false
	a.status = 0
	a.steps, a.totalCycles = 0, 0
}

// LoadTable writes a float64 Q-table (e.g. trained in software by
// internal/core) into the accelerator, quantizing to Q16.16. Shape must
// match the params.
func (a *Accel) LoadTable(table [][]float64) error {
	if len(table) != a.p.NumStates {
		return fmt.Errorf("hwpolicy: table has %d states, accelerator sized for %d", len(table), a.p.NumStates)
	}
	for s, rowVals := range table {
		if len(rowVals) != a.p.NumActions {
			return fmt.Errorf("hwpolicy: table row %d has %d actions, accelerator sized for %d", s, len(rowVals), a.p.NumActions)
		}
		for x, v := range rowVals {
			a.setQ(s*a.p.NumActions+x, fixed.FromFloat(v))
		}
	}
	a.status |= 1 << 1
	return nil
}

// setQ writes one Q word through the BRAM write port, keeping the parity
// plane in sync when parity protection is enabled.
func (a *Accel) setQ(idx int, v fixed.Q16) {
	a.q[idx] = v
	if a.parityOn {
		a.parity[idx] = wordParity(v)
	}
}

// checkWord runs the parity checker over one Q word. On a mismatch the
// word is scrubbed back to its reset value (zero) and the scrub counter
// increments; without parity protection this is a no-op and corrupted
// words flow into the datapath silently.
func (a *Accel) checkWord(idx int) {
	if !a.parityOn {
		return
	}
	if wordParity(a.q[idx]) != a.parity[idx] {
		a.q[idx] = 0
		a.parity[idx] = 0
		a.scrubs++
	}
}

func wordParity(v fixed.Q16) uint8 {
	return uint8(bits.OnesCount32(uint32(v.Raw())) & 1)
}

// EnableParity turns the per-word parity plane on or off. Enabling it
// recomputes parity over the current table contents (the BRAM initializer
// writes both planes together in the RTL).
func (a *Accel) EnableParity(on bool) {
	a.parityOn = on
	if !on {
		a.parity = nil
		return
	}
	a.parity = make([]uint8, len(a.q))
	for i, v := range a.q {
		a.parity[i] = wordParity(v)
	}
}

// ParityEnabled reports whether the Q BRAM is parity-protected.
func (a *Accel) ParityEnabled() bool { return a.parityOn }

// Scrubs returns how many corrupted Q words the parity checker scrubbed
// since the last reset.
func (a *Accel) Scrubs() uint64 { return a.scrubs }

// QWords returns the number of words in the Q BRAM (the fault injector's
// address space for single-event upsets). Part of fault.Corruptor.
func (a *Accel) QWords() int { return len(a.q) }

// CorruptQBit flips one bit of one Q word *without* updating the parity
// plane — a single-event upset in the BRAM array. Out-of-range targets
// are ignored (an SEU outside the array hits nothing). Part of
// fault.Corruptor.
func (a *Accel) CorruptQBit(word int, bit uint) {
	if word < 0 || word >= len(a.q) || bit > 31 {
		return
	}
	a.q[word] = fixed.FromRaw(a.q[word].Raw() ^ int32(uint32(1)<<bit))
}

// SetLFSRStuck forces the masked bits of the exploration LFSR to the
// corresponding bits of val after every shift — a stuck-at fault on the
// shift register. A zero mask clears the fault.
func (a *Accel) SetLFSRStuck(mask, val uint16) {
	a.stuckMask, a.stuckVal = mask, val
}

// Table returns the Q-table as floats (for inspection/differential tests).
func (a *Accel) Table() [][]float64 {
	out := make([][]float64, a.p.NumStates)
	for s := range out {
		out[s] = make([]float64, a.p.NumActions)
		for x := range out[s] {
			out[s][x] = a.q[s*a.p.NumActions+x].Float()
		}
	}
	return out
}
