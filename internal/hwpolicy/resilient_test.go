package hwpolicy

import (
	"errors"
	"strings"
	"testing"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/fault"
	"rlpm/internal/obs"
	"rlpm/internal/sim"
)

var resFreqs = []float64{4e8, 6e8, 8e8, 10e8, 12e8, 14e8, 16e8, 18e8, 20e8}

// resObs synthesizes one period of two-cluster telemetry, deterministic in
// the period index so differential runs see identical inputs.
func resObs(period int) []sim.Observation {
	u := 0.15 + 0.7*float64(period%10)/10
	return []sim.Observation{
		{Utilization: u, DemandRatio: u * 1.1, QoS: 0.96, ClusterQoS: 0.95,
			EnergyJ: 0.4, ClusterEnergyJ: 0.25, TempC: 50 + u*20,
			Level: period % len(resFreqs), NumLevels: len(resFreqs), FreqsHz: resFreqs},
		{Utilization: 1 - u, DemandRatio: (1 - u) * 0.9, QoS: 0.96, ClusterQoS: 1,
			EnergyJ: 0.4, ClusterEnergyJ: 0.15, TempC: 45,
			Level: (period + 3) % len(resFreqs), NumLevels: len(resFreqs), FreqsHz: resFreqs},
	}
}

// frozenPolicy returns a software policy driven long enough to have
// non-trivial tables, then frozen — the deployment artifact both the plain
// and resilient hardware governors are loaded from.
func frozenPolicy(t *testing.T) *core.Policy {
	t.Helper()
	p, err := core.NewPolicy(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p.Decide(resObs(i))
	}
	p.SetLearning(false)
	return p
}

// TestResilientMatchesPlainHWWithoutFaults is the differential acceptance
// check: with a nil injector the resilient stack decides identically to
// the plain hardware governor deployed from the same policy.
func TestResilientMatchesPlainHWWithoutFaults(t *testing.T) {
	p := frozenPolicy(t)

	plain, err := FromPolicy(p, core.DefaultConfig(), bus.DefaultConfig(), DefaultParams().Banks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResilient(p, DefaultResilientConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	const periods = 150
	for i := 0; i < periods; i++ {
		obs := resObs(i)
		want := plain.Decide(obs)
		got := res.Decide(obs)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("period %d cluster %d: resilient %d != plain %d", i, c, got[c], want[c])
			}
		}
	}
	st := res.Stats()
	if res.Rung() != 0 || st.HWFaults != 0 || st.Demotions != 0 || st.Retries != 0 {
		t.Fatalf("fault-free run dirtied the ladder: rung=%d stats=%+v", res.Rung(), st)
	}
	if st.Decisions != periods || st.PeriodsHW != periods {
		t.Fatalf("period accounting off: %+v", st)
	}
	if st.TotalLat <= 0 {
		t.Fatal("no hardware latency accounted")
	}
}

// TestLadderDemotesToSoftwareUnderBusFaults wedges every register read:
// the hardware path fails all retries each period, the ladder demotes to
// the software policy after DemoteAfter periods, and the probes (reads
// through the same dead bus) keep it there.
func TestLadderDemotesToSoftwareUnderBusFaults(t *testing.T) {
	p := frozenPolicy(t)
	inj, err := fault.NewInjector(fault.Config{Seed: 5, ReadErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultResilientConfig()
	res, err := NewResilient(p, rc, inj)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < rc.DemoteAfter+10; i++ {
		out := res.Decide(resObs(i))
		for c, a := range out {
			if a < 0 || a >= len(resFreqs) {
				t.Fatalf("period %d cluster %d: action %d out of range", i, c, a)
			}
		}
	}
	if res.Rung() != 1 {
		t.Fatalf("rung = %d, want 1 (software policy)", res.Rung())
	}
	st := res.Stats()
	if st.Demotions != 1 || st.HWFaults == 0 || st.Retries == 0 {
		t.Fatalf("ladder stats = %+v", st)
	}
	if st.PeriodsSW == 0 {
		t.Fatalf("no software periods after demotion: %+v", st)
	}
}

// TestLadderDemotesToOndemandOnTelemetryStarvation drops every telemetry
// read: both RL rungs are starved of state, so the ladder falls through to
// ondemand and stays there while the drops persist.
func TestLadderDemotesToOndemandOnTelemetryStarvation(t *testing.T) {
	p := frozenPolicy(t)
	inj, err := fault.NewInjector(fault.Config{Seed: 5, ObsDropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultResilientConfig()
	res, err := NewResilient(p, rc, inj)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2*rc.DemoteAfter+10; i++ {
		out := res.Decide(resObs(i))
		if len(out) != 2 {
			t.Fatalf("period %d: %d actions", i, len(out))
		}
	}
	if res.Rung() != 2 {
		t.Fatalf("rung = %d, want 2 (ondemand)", res.Rung())
	}
	st := res.Stats()
	if st.Demotions != 2 {
		t.Fatalf("demotions = %d, want 2", st.Demotions)
	}
	if st.TelemetryFaults == 0 || st.PeriodsOD == 0 {
		t.Fatalf("ladder stats = %+v", st)
	}
}

// TestLadderPromotesAfterProbation forces the stack onto the software rung
// with healthy hardware underneath: PromoteAfter consecutive clean probes
// must re-promote to the hardware rung.
func TestLadderPromotesAfterProbation(t *testing.T) {
	p := frozenPolicy(t)
	rc := DefaultResilientConfig()
	res, err := NewResilient(p, rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Decide(resObs(0)) // bring the hardware up
	res.rung = 1          // as if a transient burst had demoted us

	i := 1
	for ; res.Rung() != 0 && i < rc.PromoteAfter+5; i++ {
		res.Decide(resObs(i))
	}
	if res.Rung() != 0 {
		t.Fatalf("never promoted back to hardware (rung %d after %d periods)", res.Rung(), i)
	}
	if got := res.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	// Probation length is exact: PromoteAfter clean probes, no fewer.
	if i-1 != rc.PromoteAfter {
		t.Fatalf("promoted after %d periods, want %d", i-1, rc.PromoteAfter)
	}
}

// TestResilientSurvivesWedgedDevice pins the no-unbounded-stall guarantee:
// a device that wedges on every decision costs at most
// watchdog × (Retries+1) per period, and the run completes demoted.
func TestResilientSurvivesWedgedDevice(t *testing.T) {
	p := frozenPolicy(t)
	inj, err := fault.NewInjector(fault.Config{Seed: 11, TimeoutRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultResilientConfig()
	res, err := NewResilient(p, rc, inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res.Decide(resObs(i))
	}
	if res.Rung() == 0 {
		t.Fatalf("still on hardware rung after persistent wedges: %+v", res.Stats())
	}
	if inj.Stats().Timeouts == 0 {
		t.Fatal("no wedges injected")
	}
	for _, d := range res.Drivers() {
		if d.Bus().Timeouts() == 0 {
			t.Fatal("watchdog never fired on the wedged bus")
		}
	}
}

// TestSentinelErrors pins the errors.Is chain from accelerator through bus
// and driver — the contract the retry/degradation logic keys on.
func TestSentinelErrors(t *testing.T) {
	accel, err := New(Params{NumStates: 8, NumActions: 3, Banks: 1, LFSRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := accel.ReadReg(0xFF); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("bad read register error = %v, want ErrBadRegister", err)
	}
	if _, err := accel.WriteReg(0xFF, 0); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("bad write register error = %v, want ErrBadRegister", err)
	}
	if _, err := accel.WriteReg(RegCtrl, 0xAB); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("bad command error = %v, want ErrBadCommand", err)
	}
	if _, err := accel.WriteReg(RegState, 99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range state error = %v, want ErrOutOfRange", err)
	}

	d, err := NewDriver(bus.DefaultConfig(), accel)
	if err != nil {
		t.Fatal(err)
	}
	// Sentinels survive the bus wrapping.
	if _, err := d.Bus().Read(0xFF); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("bus-wrapped error = %v, want ErrBadRegister", err)
	}
	if _, _, err := d.Step(-1, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("driver state range error = %v, want ErrOutOfRange", err)
	}
	if _, _, err := d.Step(8, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("driver state range error = %v, want ErrOutOfRange", err)
	}

	// A wedged device surfaces the bus timeout sentinel through Step.
	inj, err := fault.NewInjector(fault.Config{Seed: 2, TimeoutRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := bus.DefaultConfig()
	cfg.WatchdogCycles = 1024
	wd, err := NewDriverDevice(cfg, accel, fault.NewDevice(accel, accel, inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wd.Step(0, 0); !errors.Is(err, bus.ErrDeviceTimeout) {
		t.Fatalf("wedged step error = %v, want bus.ErrDeviceTimeout", err)
	}
}

// TestParityScrubRecovers pins the Scrub path end to end: a corrupted Q
// word is detected on fetch, zeroed, and counted — and decisions keep
// coming from sane values instead of the corrupted one.
func TestParityScrubRecovers(t *testing.T) {
	accel, err := New(Params{NumStates: 4, NumActions: 3, Banks: 1, LFSRSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	accel.EnableParity(true)
	table := [][]float64{
		{1, 2, 3}, {3, 2, 1}, {2, 3, 1}, {1, 3, 2},
	}
	if err := accel.LoadTable(table); err != nil {
		t.Fatal(err)
	}
	// SEU on word 0 (state 0, action 0): flip the sign bit so the
	// corrupted value would win or lose the argmax wildly.
	accel.CorruptQBit(0, 31)

	d, err := NewDriver(bus.DefaultConfig(), accel)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(0.2, 0.85, 0, false); err != nil {
		t.Fatal(err)
	}
	act, _, err := d.Step(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if accel.Scrubs() != 1 {
		t.Fatalf("scrubs = %d, want 1", accel.Scrubs())
	}
	// Post-scrub row is {0, 2, 3}: argmax is action 2, as if the SEU
	// never steered the decision.
	if act != 2 {
		t.Fatalf("action after scrub = %d, want 2", act)
	}
	if got := accel.Table()[0][0]; got != 0 {
		t.Fatalf("corrupted word not scrubbed: %v", got)
	}
}

// TestResilientReset pins that Reset returns the stack to the hardware
// rung with a fresh upload from the retained snapshot.
func TestResilientReset(t *testing.T) {
	p := frozenPolicy(t)
	inj, err := fault.NewInjector(fault.Config{Seed: 5, ReadErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultResilientConfig()
	res, err := NewResilient(p, rc, inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rc.DemoteAfter+2; i++ {
		res.Decide(resObs(i))
	}
	if res.Rung() == 0 {
		t.Fatal("precondition: expected a demotion")
	}
	res.Reset()
	if res.Rung() != 0 || res.Stats() != (ResilientStats{}) {
		t.Fatalf("reset left state behind: rung=%d stats=%+v", res.Rung(), res.Stats())
	}
	out := res.Decide(resObs(0))
	if len(out) != 2 {
		t.Fatalf("decide after reset returned %d actions", len(out))
	}
}

// TestResilientEventsNarrateLadder attaches an event log and forces a
// demotion and a promotion: each transition must land in the log as a
// "hwpolicy" event naming both rungs, and attaching the log must not
// change a single decision (the hook draws no randomness).
func TestResilientEventsNarrateLadder(t *testing.T) {
	// Each stack gets its own (identically trained) policy: the software
	// rung decides through it statefully, so sharing one object would
	// entangle the two runs.
	mk := func(log *obs.EventLog) *Resilient {
		inj, err := fault.NewInjector(fault.Config{Seed: 5, ReadErrorRate: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewResilient(frozenPolicy(t), DefaultResilientConfig(), inj)
		if err != nil {
			t.Fatal(err)
		}
		if log != nil {
			res.SetEventLog(log)
		}
		return res
	}

	log := obs.NewEventLog(64)
	plain, logged := mk(nil), mk(log)
	rc := DefaultResilientConfig()
	for i := 0; i < rc.DemoteAfter+10; i++ {
		obs := resObs(i)
		want, got := plain.Decide(obs), logged.Decide(obs)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("period %d cluster %d: event log changed decision %d -> %d", i, c, want[c], got[c])
			}
		}
	}
	if logged.Rung() != 1 {
		t.Fatalf("rung %d, want 1", logged.Rung())
	}
	var demote string
	for _, e := range log.Events() {
		if e.Kind != "hwpolicy" {
			t.Fatalf("event kind %q, want hwpolicy", e.Kind)
		}
		if strings.Contains(e.Msg, "demoted hardware -> software policy") {
			demote = e.Msg
		}
	}
	if demote == "" {
		t.Fatalf("no demotion event in %+v", log.Events())
	}

	// Promotion: healthy stack pushed onto the software rung re-promotes
	// after probation and narrates it.
	res := func() *Resilient {
		r, err := NewResilient(frozenPolicy(t), DefaultResilientConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	plog := obs.NewEventLog(64)
	res.SetEventLog(plog)
	res.rung = 1
	for i := 0; i < 3*DefaultResilientConfig().PromoteAfter+10 && res.Rung() != 0; i++ {
		res.Decide(resObs(i))
	}
	if res.Rung() != 0 {
		t.Fatal("never promoted back to hardware")
	}
	found := false
	for _, e := range plog.Events() {
		if strings.Contains(e.Msg, "promoted software policy -> hardware") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no promotion event in %+v", plog.Events())
	}
}
