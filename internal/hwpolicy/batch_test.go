package hwpolicy

import (
	"testing"

	"rlpm/internal/bus"
	"rlpm/internal/fixed"
)

func multiParams() []Params {
	return []Params{
		{NumStates: 96, NumActions: 8, Banks: 2, LFSRSeed: 0xACE1},
		{NumStates: 108, NumActions: 9, Banks: 2, LFSRSeed: 0xACE3},
		{NumStates: 60, NumActions: 5, Banks: 1, LFSRSeed: 0xACE5},
	}
}

func newMulti(t *testing.T) *MultiAccel {
	t.Helper()
	m, err := NewMulti(multiParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiValidates(t *testing.T) {
	if _, err := NewMulti(nil); err == nil {
		t.Fatal("empty channel list accepted")
	}
	if _, err := NewMulti([]Params{{}}); err == nil {
		t.Fatal("invalid channel params accepted")
	}
	m := newMulti(t)
	if m.NumChannels() != 3 {
		t.Fatalf("channels = %d", m.NumChannels())
	}
}

func TestMultiAddressDecoding(t *testing.T) {
	m := newMulti(t)
	// Write a distinct alpha into each channel and read it back through
	// the strided address space.
	for c := 0; c < 3; c++ {
		base := uint32(c) * ChannelStride
		want := uint32(fixed.FromFloat(0.1 * float64(c+1)).Raw())
		if _, err := m.WriteReg(base+RegAlpha, want); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadReg(base + RegAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("channel %d alpha = %#x, want %#x", c, got, want)
		}
	}
	// Channels are isolated: channel 1's alpha differs from channel 0's.
	a0, _ := m.ReadReg(0*ChannelStride + RegAlpha)
	a1, _ := m.ReadReg(1*ChannelStride + RegAlpha)
	if a0 == a1 {
		t.Fatal("channels share register state")
	}
}

func TestMultiRejectsOutOfRange(t *testing.T) {
	m := newMulti(t)
	if _, err := m.ReadReg(5 * ChannelStride); err == nil {
		t.Fatal("read beyond last channel accepted")
	}
	if _, err := m.WriteReg(5*ChannelStride, 0); err == nil {
		t.Fatal("write beyond last channel accepted")
	}
	if _, err := m.WriteReg(GlobalCtrl, 0xbeef); err == nil {
		t.Fatal("bad global command accepted")
	}
}

func TestGlobalStepRunsAllChannels(t *testing.T) {
	m := newMulti(t)
	for c := 0; c < 3; c++ {
		base := uint32(c) * ChannelStride
		if _, err := m.WriteReg(base+RegState, uint32(c)); err != nil {
			t.Fatal(err)
		}
	}
	cycles, err := m.WriteReg(GlobalCtrl, CtrlStep)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel channels: cost is the max channel latency, not the sum.
	var maxC, sumC uint64
	for c := 0; c < 3; c++ {
		sc := m.Channel(c).StepCycles()
		sumC += sc
		if sc > maxC {
			maxC = sc
		}
	}
	if cycles != maxC {
		t.Fatalf("global step cost %d, want max %d (sum would be %d)", cycles, maxC, sumC)
	}
	for c := 0; c < 3; c++ {
		if m.Channel(c).Steps() != 1 {
			t.Fatalf("channel %d did not step", c)
		}
	}
}

func TestMultiDriverStepAll(t *testing.T) {
	m := newMulti(t)
	d, err := NewMultiDriver(bus.DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(0.2, 0.85, 0, true); err != nil {
		t.Fatal(err)
	}
	actions, lat, err := d.StepAll([]int{1, 2, 3}, []float64{-0.5, -0.3, -0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 3 {
		t.Fatalf("actions = %v", actions)
	}
	for c, a := range actions {
		if a < 0 || a >= m.Channel(c).Params().NumActions {
			t.Fatalf("channel %d action %d out of range", c, a)
		}
	}
	if lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
}

func TestMultiDriverValidatesArgs(t *testing.T) {
	d, _ := NewMultiDriver(bus.DefaultConfig(), newMulti(t))
	if _, _, err := d.StepAll([]int{1}, []float64{0}); err == nil {
		t.Fatal("short state vector accepted")
	}
	if _, _, err := d.StepAll([]int{1, 2, 9999}, []float64{0, 0, 0}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if _, err := NewMultiDriver(bus.DefaultConfig(), nil); err == nil {
		t.Fatal("nil accelerator accepted")
	}
}

func TestBatchedBeatsSequentialTransactions(t *testing.T) {
	// The point of the multi-channel design: deciding all three domains in
	// one conversation must be faster than three single-channel
	// transactions.
	m := newMulti(t)
	d, _ := NewMultiDriver(bus.DefaultConfig(), m)
	_, batched, err := d.StepAll([]int{0, 0, 0}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}

	var sequential int64
	for _, p := range multiParams() {
		a, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := NewDriver(bus.DefaultConfig(), a)
		if err != nil {
			t.Fatal(err)
		}
		_, lat, err := sd.Step(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		sequential += lat.Nanoseconds()
	}
	if batched.Nanoseconds() >= sequential {
		t.Fatalf("batched %vns not faster than sequential %vns", batched.Nanoseconds(), sequential)
	}
}

func TestMultiChannelsMatchSingleChannelBitExactly(t *testing.T) {
	// A channel inside the multi-channel device must behave identically to
	// a standalone accelerator with the same parameters and stimulus.
	p := multiParams()[1]
	solo, _ := New(p)
	m := newMulti(t)
	base := uint32(1) * ChannelStride

	stim := []struct {
		state  uint32
		reward float64
	}{{3, -0.5}, {7, -0.2}, {3, -0.9}, {0, 0.1}, {7, -0.4}}
	for _, s := range stim {
		_, _ = solo.WriteReg(RegState, s.state)
		_, _ = solo.WriteReg(RegReward, uint32(fixed.FromFloat(s.reward).Raw()))
		_, _ = solo.WriteReg(RegCtrl, CtrlStep)

		_, _ = m.WriteReg(base+RegState, s.state)
		_, _ = m.WriteReg(base+RegReward, uint32(fixed.FromFloat(s.reward).Raw()))
		_, _ = m.WriteReg(base+RegCtrl, CtrlStep)

		a1, _ := solo.ReadReg(RegAction)
		a2, _ := m.ReadReg(base + RegAction)
		if a1 != a2 {
			t.Fatalf("actions diverged: %d vs %d", a1, a2)
		}
	}
	t1 := solo.Table()
	t2 := m.Channel(1).Table()
	for s := range t1 {
		for x := range t1[s] {
			if t1[s][x] != t2[s][x] {
				t.Fatalf("Q[%d][%d] diverged", s, x)
			}
		}
	}
}

func BenchmarkMultiDriverStepAll(b *testing.B) {
	m, _ := NewMulti(multiParams())
	d, _ := NewMultiDriver(bus.DefaultConfig(), m)
	states := []int{1, 2, 3}
	rewards := []float64{-0.5, -0.3, -0.1}
	for i := 0; i < b.N; i++ {
		if _, _, err := d.StepAll(states, rewards); err != nil {
			b.Fatal(err)
		}
	}
}
