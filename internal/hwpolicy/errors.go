package hwpolicy

import "errors"

// Sentinel errors for the accelerator's register-file protocol. Every
// error the device (and the driver in front of it) returns wraps one of
// these, so callers can classify failures with errors.Is instead of
// matching message strings — the resilient driver's retry/fallback logic
// depends on that, and so does any host software porting against the RTL.
var (
	// ErrBadRegister marks an access to an unmapped register, or a write
	// to a read-only one.
	ErrBadRegister = errors.New("hwpolicy: bad register access")
	// ErrBadCommand marks an unknown control-register command word.
	ErrBadCommand = errors.New("hwpolicy: bad control command")
	// ErrOutOfRange marks a state index or Q-table address outside the
	// accelerator's configured geometry.
	ErrOutOfRange = errors.New("hwpolicy: value out of range")
)
