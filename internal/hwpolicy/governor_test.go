package hwpolicy

import (
	"math"
	"testing"

	"rlpm/internal/bus"
	"rlpm/internal/core"
	"rlpm/internal/sim"
	"rlpm/internal/soc"
	"rlpm/internal/workload"
)

func simSetup(t *testing.T, scenario string) (*soc.Chip, workload.Scenario) {
	t.Helper()
	chip, err := soc.NewChip(soc.DefaultChipSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ByName(scenario)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := workload.New(spec, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return chip, scen
}

func TestNewGovernorValidates(t *testing.T) {
	if _, err := NewGovernor(core.Config{}, bus.DefaultConfig(), 4); err == nil {
		t.Fatal("invalid core config accepted")
	}
	if _, err := NewGovernor(core.DefaultConfig(), bus.Config{}, 4); err == nil {
		t.Fatal("invalid bus config accepted")
	}
	if _, err := NewGovernor(core.DefaultConfig(), bus.DefaultConfig(), 0); err == nil {
		t.Fatal("zero banks accepted")
	}
}

func TestHWGovernorRunsClosedLoop(t *testing.T) {
	chip, scen := simSetup(t, "video")
	g, err := NewGovernor(core.DefaultConfig(), bus.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(chip, scen, g, sim.Config{PeriodS: 0.05, DurationS: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS.Periods != 200 {
		t.Fatalf("periods = %d", res.QoS.Periods)
	}
	decisions, mean, max := g.LatencyStats()
	if decisions != 400 { // 200 periods × 2 clusters
		t.Fatalf("decisions = %d, want 400", decisions)
	}
	if mean <= 0 || max < mean {
		t.Fatalf("latency stats mean=%v max=%v", mean, max)
	}
	// A decision transaction is a few hundred ns — far below a microsecond.
	if mean.Nanoseconds() > 1000 {
		t.Fatalf("mean decision latency %v implausibly high", mean)
	}
}

func TestFromPolicyMatchesSoftwareQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// Train the software policy, freeze it, and deploy to hardware; the
	// hardware policy (quantized to Q16.16, greedy) must achieve
	// energy-per-QoS within a few percent of the software policy.
	chip, scen := simSetup(t, "video")
	cfg := core.DefaultConfig()
	simCfg := sim.Config{PeriodS: 0.05, DurationS: 60, Seed: 1}
	p := core.MustPolicy(cfg)
	if _, err := core.Train(chip, scen, p, simCfg, 20); err != nil {
		t.Fatal(err)
	}
	p.SetLearning(false)
	swRes, err := sim.Run(chip, scen, p, simCfg)
	if err != nil {
		t.Fatal(err)
	}

	hw, err := FromPolicy(p, cfg, bus.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, err := sim.Run(chip, scen, hw, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(hwRes.QoS.EnergyPerQoS-swRes.QoS.EnergyPerQoS) / swRes.QoS.EnergyPerQoS
	if rel > 0.05 {
		t.Fatalf("hardware policy E/QoS %v deviates %.1f%% from software %v",
			hwRes.QoS.EnergyPerQoS, rel*100, swRes.QoS.EnergyPerQoS)
	}
}

func TestFromPolicyRequiresDrivenPolicy(t *testing.T) {
	p := core.MustPolicy(core.DefaultConfig())
	if _, err := FromPolicy(p, core.DefaultConfig(), bus.DefaultConfig(), 4); err == nil {
		t.Fatal("undriven policy accepted")
	}
}

func TestHWGovernorReset(t *testing.T) {
	chip, scen := simSetup(t, "idle")
	g, _ := NewGovernor(core.DefaultConfig(), bus.DefaultConfig(), 4)
	if _, err := sim.Run(chip, scen, g, sim.Config{PeriodS: 0.05, DurationS: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	g.Reset()
	d, mean, max := g.LatencyStats()
	if d != 0 || mean != 0 || max != 0 {
		t.Fatal("latency stats not reset")
	}
	for _, drv := range g.Drivers() {
		if drv.Accel().Steps() != 0 {
			t.Fatal("accelerator not reset")
		}
	}
}

func TestHWGovernorDeterministic(t *testing.T) {
	run := func() float64 {
		chip, scen := simSetup(t, "mixed")
		g, _ := NewGovernor(core.DefaultConfig(), bus.DefaultConfig(), 4)
		res, err := sim.Run(chip, scen, g, sim.Config{PeriodS: 0.05, DurationS: 10, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.QoS.TotalEnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic hardware runs: %v vs %v", a, b)
	}
}
